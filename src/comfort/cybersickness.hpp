#pragma once
// Cybersickness modelling for the Metaverse classroom (§3.3 "Navigation and
// Cybersickness"). Two pieces:
//
//  - SusceptibilityModel: fuzzy-logic mapping of individual factors (age,
//    gaming experience, gender) to a 0-1 susceptibility score, after the
//    authors' IEEE VR 2021 model [44].
//  - CybersicknessModel: sensory-conflict accumulator. Stressors (navigation
//    speed, rotation, latency, low frame rate, wide FOV during locomotion)
//    integrate into an SSQ-like 0-100 score, scaled by susceptibility, with
//    recovery during calm periods.

#include <cstdint>

#include "comfort/fuzzy.hpp"

namespace mvc::comfort {

enum class Gender : std::uint8_t { Female, Male, Other };

struct UserProfile {
    double age{22.0};
    Gender gender{Gender::Other};
    /// Weekly hours of 3D gaming / VR use.
    double gaming_hours_per_week{2.0};
};

class SusceptibilityModel {
public:
    SusceptibilityModel();

    /// Susceptibility in [0,1]; higher = gets sick faster.
    [[nodiscard]] double susceptibility(const UserProfile& user) const;

private:
    FuzzySystem system_;
};

/// Momentary exposure conditions inside the virtual classroom.
struct ExposureConditions {
    /// Virtual locomotion speed (m/s); 0 when seated/teleporting.
    double nav_speed_mps{0.0};
    /// Virtual rotation speed (rad/s) not matched by head motion.
    double rotation_rps{0.0};
    double latency_ms{20.0};
    double fps{72.0};
    double fov_deg{100.0};
};

struct SicknessParams {
    double w_speed{0.9};
    double w_rotation{1.4};
    double w_latency{0.7};
    double w_fps{0.6};
    double w_fov{0.5};
    /// SSQ points per minute at stressor == 1 and susceptibility == 1.
    /// Calibrated so a 45-minute class with intermittent aggressive
    /// locomotion lands in the 10-50 band for susceptible users rather than
    /// saturating (FMS studies report single-digit points per 10 minutes of
    /// moderate exposure).
    double accumulation_per_min{4.0};
    /// SSQ points recovered per minute when stressors are negligible.
    /// Symptoms persist well past the provoking stimulus, so recovery is an
    /// order of magnitude slower than accumulation.
    double recovery_per_min{0.5};
    double max_score{100.0};
};

class CybersicknessModel {
public:
    CybersicknessModel(const UserProfile& user, SicknessParams params = {});
    CybersicknessModel(double susceptibility, SicknessParams params);

    /// Advance the model by dt seconds under the given conditions.
    void advance(double dt_seconds, const ExposureConditions& cond);

    /// Instantaneous stressor intensity (0 = comfortable) — exposed so the
    /// SpeedProtector can budget against it.
    [[nodiscard]] double stressor(const ExposureConditions& cond) const;

    [[nodiscard]] double score() const { return score_; }
    [[nodiscard]] double susceptibility() const { return susceptibility_; }
    [[nodiscard]] const SicknessParams& params() const { return params_; }
    /// Kennedy et al. banding: <5 negligible, 5-10 mild, 10-20 significant,
    /// >20 concerning.
    [[nodiscard]] bool concerning() const { return score_ > 20.0; }

private:
    double susceptibility_;
    SicknessParams params_;
    double score_{0.0};
};

/// Adaptive navigation speed limiter after the authors' "speed protector"
/// [43]: caps requested locomotion speed so the projected sickness score at
/// the end of the session stays under budget.
struct SpeedProtectorParams {
    double score_budget{15.0};
    double session_minutes{45.0};
    double max_speed_mps{5.0};
};

class SpeedProtector {
public:
    using Params = SpeedProtectorParams;

    SpeedProtector(const CybersicknessModel& model, Params params = {});

    /// Largest allowed speed <= `desired` given the current score and the
    /// remaining session time.
    [[nodiscard]] double allowed_speed(double desired_mps, ExposureConditions cond,
                                       double elapsed_minutes) const;

    [[nodiscard]] std::uint64_t interventions() const { return interventions_; }

private:
    const CybersicknessModel& model_;
    Params params_;
    mutable std::uint64_t interventions_{0};
};

}  // namespace mvc::comfort
