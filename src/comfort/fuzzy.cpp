#include "comfort/fuzzy.hpp"

#include <algorithm>
#include <stdexcept>

namespace mvc::comfort {

double Trapezoid::at(double x) const {
    // Degenerate edges make shoulders: a == b extends full membership to the
    // left, c == d to the right.
    if (x < a) return a == b ? 1.0 : 0.0;
    if (x < b) return (x - a) / (b - a);
    if (x <= c) return 1.0;
    if (x < d) return (d - x) / (d - c);
    return c == d ? 1.0 : 0.0;
}

std::size_t FuzzyVar::index_of(std::string_view set_name) const {
    for (std::size_t i = 0; i < sets.size(); ++i) {
        if (sets[i].name == set_name) return i;
    }
    throw std::invalid_argument("FuzzyVar '" + name + "': unknown set '" +
                                std::string{set_name} + "'");
}

FuzzySystem::FuzzySystem(std::vector<FuzzyVar> inputs, FuzzyVar output)
    : inputs_(std::move(inputs)), output_(std::move(output)) {
    if (inputs_.empty()) throw std::invalid_argument("FuzzySystem: need inputs");
    if (output_.sets.empty()) throw std::invalid_argument("FuzzySystem: output needs sets");
}

void FuzzySystem::add_rule(std::span<const std::string_view> antecedents,
                           std::string_view consequent, double weight) {
    if (antecedents.size() != inputs_.size())
        throw std::invalid_argument("FuzzySystem: antecedent count mismatch");
    FuzzyRule r;
    r.antecedent_sets.reserve(antecedents.size());
    for (std::size_t i = 0; i < antecedents.size(); ++i) {
        r.antecedent_sets.push_back(antecedents[i] == "*"
                                        ? FuzzyRule::kAny
                                        : inputs_[i].index_of(antecedents[i]));
    }
    r.consequent_set = output_.index_of(consequent);
    r.weight = weight;
    rules_.push_back(std::move(r));
}

double FuzzySystem::infer(std::span<const double> values) const {
    if (values.size() != inputs_.size())
        throw std::invalid_argument("FuzzySystem: value count mismatch");

    // Firing strength per rule (min-AND, scaled by weight).
    std::vector<double> clip(output_.sets.size(), 0.0);
    for (const FuzzyRule& r : rules_) {
        double strength = 1.0;
        for (std::size_t i = 0; i < inputs_.size(); ++i) {
            if (r.antecedent_sets[i] == FuzzyRule::kAny) continue;
            const double x = std::clamp(values[i], inputs_[i].lo, inputs_[i].hi);
            strength = std::min(strength, inputs_[i].sets[r.antecedent_sets[i]].mf.at(x));
        }
        strength *= r.weight;
        clip[r.consequent_set] = std::max(clip[r.consequent_set], strength);
    }

    // Centroid of the max-aggregated clipped sets, sampled over the universe.
    constexpr int kSamples = 200;
    double num = 0.0;
    double den = 0.0;
    for (int s = 0; s <= kSamples; ++s) {
        const double x = output_.lo + (output_.hi - output_.lo) * s / kSamples;
        double mu = 0.0;
        for (std::size_t k = 0; k < output_.sets.size(); ++k) {
            mu = std::max(mu, std::min(clip[k], output_.sets[k].mf.at(x)));
        }
        num += mu * x;
        den += mu;
    }
    if (den <= 0.0) return (output_.lo + output_.hi) / 2.0;
    return num / den;
}

}  // namespace mvc::comfort
