#pragma once
// Minimal Mamdani fuzzy-inference engine, implemented for the cybersickness
// susceptibility model the paper inherits from the authors' prior work
// (Wang et al., IEEE VR 2021 [44]: "Using Fuzzy Logic to Involve Individual
// Differences for Predicting Cybersickness"). Trapezoidal memberships,
// min-AND rules, max aggregation, centroid defuzzification.

#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace mvc::comfort {

/// Trapezoidal membership (a <= b <= c <= d); triangle when b == c.
struct Trapezoid {
    double a, b, c, d;
    [[nodiscard]] double at(double x) const;
};

struct FuzzySet {
    std::string name;
    Trapezoid mf;
};

struct FuzzyVar {
    std::string name;
    double lo, hi;  // universe of discourse
    std::vector<FuzzySet> sets;

    [[nodiscard]] std::size_t index_of(std::string_view set_name) const;
};

/// IF in[0] is A AND in[1] is B ... THEN out is C. Antecedent entries may be
/// skipped (set index kAny) to express "don't care".
struct FuzzyRule {
    static constexpr std::size_t kAny = static_cast<std::size_t>(-1);
    std::vector<std::size_t> antecedent_sets;  // one per input var, or kAny
    std::size_t consequent_set;
    double weight{1.0};
};

class FuzzySystem {
public:
    FuzzySystem(std::vector<FuzzyVar> inputs, FuzzyVar output);

    /// Add a rule by set names, e.g. {"young", "expert"} -> "low".
    void add_rule(std::span<const std::string_view> antecedents,
                  std::string_view consequent, double weight = 1.0);

    /// Mamdani inference; `values` must match the input count. Returns the
    /// centroid of the aggregated output (midpoint of the universe if no
    /// rule fires).
    [[nodiscard]] double infer(std::span<const double> values) const;

    [[nodiscard]] std::size_t input_count() const { return inputs_.size(); }
    [[nodiscard]] std::size_t rule_count() const { return rules_.size(); }

private:
    std::vector<FuzzyVar> inputs_;
    FuzzyVar output_;
    std::vector<FuzzyRule> rules_;
};

}  // namespace mvc::comfort
