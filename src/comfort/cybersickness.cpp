#include "comfort/cybersickness.hpp"

#include <algorithm>
#include <array>
#include <cmath>

namespace mvc::comfort {

namespace {

FuzzySystem build_susceptibility_system() {
    FuzzyVar age{"age",
                 10.0,
                 80.0,
                 {{"young", {10.0, 10.0, 22.0, 32.0}},
                  {"middle", {25.0, 35.0, 45.0, 55.0}},
                  {"senior", {45.0, 60.0, 80.0, 80.0}}}};
    FuzzyVar gaming{"gaming_hours",
                    0.0,
                    30.0,
                    {{"novice", {0.0, 0.0, 1.0, 4.0}},
                     {"casual", {2.0, 5.0, 8.0, 12.0}},
                     {"expert", {8.0, 14.0, 30.0, 30.0}}}};
    FuzzyVar susceptibility{"susceptibility",
                            0.0,
                            1.0,
                            {{"low", {0.0, 0.0, 0.15, 0.4}},
                             {"medium", {0.25, 0.45, 0.55, 0.75}},
                             {"high", {0.6, 0.85, 1.0, 1.0}}}};

    FuzzySystem fs{{age, gaming}, susceptibility};
    using A = std::array<std::string_view, 2>;
    // Habituated young gamers barely feel it; unhabituated seniors feel it
    // most; everything else grades in between ([44]'s rule structure).
    fs.add_rule(A{"young", "expert"}, "low");
    fs.add_rule(A{"young", "casual"}, "low");
    fs.add_rule(A{"young", "novice"}, "medium");
    fs.add_rule(A{"middle", "expert"}, "low");
    fs.add_rule(A{"middle", "casual"}, "medium");
    fs.add_rule(A{"middle", "novice"}, "high");
    fs.add_rule(A{"senior", "expert"}, "medium");
    fs.add_rule(A{"senior", "casual"}, "high");
    fs.add_rule(A{"senior", "novice"}, "high");
    return fs;
}

}  // namespace

SusceptibilityModel::SusceptibilityModel() : system_(build_susceptibility_system()) {}

double SusceptibilityModel::susceptibility(const UserProfile& user) const {
    const std::array<double, 2> in{user.age, user.gaming_hours_per_week};
    double s = system_.infer(in);
    // Reported gender effect (contested in the literature; [44] includes it
    // as an individual factor): small multiplicative adjustment.
    if (user.gender == Gender::Female) s *= 1.1;
    return std::clamp(s, 0.0, 1.0);
}

CybersicknessModel::CybersicknessModel(const UserProfile& user, SicknessParams params)
    : susceptibility_(SusceptibilityModel{}.susceptibility(user)), params_(params) {}

CybersicknessModel::CybersicknessModel(double susceptibility, SicknessParams params)
    : susceptibility_(std::clamp(susceptibility, 0.0, 1.0)), params_(params) {}

double CybersicknessModel::stressor(const ExposureConditions& cond) const {
    // Each term normalized so ~1.0 is "aggressive" exposure.
    const double f_speed = std::max(0.0, cond.nav_speed_mps - 1.0) / 3.0;
    const double f_rot = cond.rotation_rps / 1.5;
    const double f_lat = std::max(0.0, cond.latency_ms - 20.0) / 300.0;
    const double f_fps = std::max(0.0, 72.0 - cond.fps) / 72.0;
    // Wide FOV hurts only while there is vection (speed- or rotation-gated).
    const double locomoting = std::min(1.0, f_speed + f_rot);
    const double f_fov = std::max(0.0, cond.fov_deg - 60.0) / 50.0 * locomoting;

    return params_.w_speed * f_speed + params_.w_rotation * f_rot +
           params_.w_latency * f_lat + params_.w_fps * f_fps + params_.w_fov * f_fov;
}

void CybersicknessModel::advance(double dt_seconds, const ExposureConditions& cond) {
    const double s = stressor(cond);
    const double dt_min = dt_seconds / 60.0;
    if (s > 0.05) {
        score_ += susceptibility_ * s * params_.accumulation_per_min * dt_min;
    } else {
        score_ -= params_.recovery_per_min * dt_min;
    }
    score_ = std::clamp(score_, 0.0, params_.max_score);
}

SpeedProtector::SpeedProtector(const CybersicknessModel& model, Params params)
    : model_(model), params_(params) {}

double SpeedProtector::allowed_speed(double desired_mps, ExposureConditions cond,
                                     double elapsed_minutes) const {
    desired_mps = std::min(desired_mps, params_.max_speed_mps);
    const double remaining_min =
        std::max(1.0, params_.session_minutes - elapsed_minutes);
    const double budget_left = std::max(0.0, params_.score_budget - model_.score());
    // Max sustainable accumulation rate (points/min) for the rest of class.
    const double max_rate = budget_left / remaining_min;

    // Binary-search the largest speed whose projected rate fits the budget.
    cond.nav_speed_mps = desired_mps;
    const auto rate_at = [&](double v) {
        ExposureConditions c = cond;
        c.nav_speed_mps = v;
        return model_.susceptibility() * model_.stressor(c) *
               model_.params().accumulation_per_min;  // pts/min
    };
    if (rate_at(desired_mps) <= max_rate) return desired_mps;

    ++interventions_;
    double lo = 0.0;
    double hi = desired_mps;
    for (int i = 0; i < 32; ++i) {
        const double mid = (lo + hi) / 2.0;
        if (rate_at(mid) <= max_rate) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    return lo;
}

}  // namespace mvc::comfort
