#pragma once
// Strongly-typed identifiers shared across modules. Header-only; every
// module library already has src/ on its include path.

#include <compare>
#include <cstdint>
#include <functional>

namespace mvc {

/// CRTP-free strong id: distinct Tag types cannot be mixed up.
template <class Tag>
class Id {
public:
    constexpr Id() = default;
    constexpr explicit Id(std::uint32_t v) : value_(v) {}

    [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
    [[nodiscard]] constexpr bool valid() const { return value_ != 0; }

    friend constexpr auto operator<=>(const Id&, const Id&) = default;

private:
    std::uint32_t value_{0};
};

struct ParticipantTag {};
struct ClassroomTag {};
struct EntityTag {};
struct ActivityTag {};
struct ContentTag {};

/// A person in the Metaverse classroom (student, instructor, guest).
using ParticipantId = Id<ParticipantTag>;
/// One physical (MR) or virtual (VR) classroom space.
using ClassroomId = Id<ClassroomTag>;
/// A replicated object in the shared space (avatar, slide deck, lab rig).
using EntityId = Id<EntityTag>;
/// A scheduled teaching activity (lecture, breakout, presentation).
using ActivityId = Id<ActivityTag>;
/// A piece of learner/educator-contributed content.
using ContentId = Id<ContentTag>;

}  // namespace mvc

template <class Tag>
struct std::hash<mvc::Id<Tag>> {
    std::size_t operator()(const mvc::Id<Tag>& id) const noexcept {
        return std::hash<std::uint32_t>{}(id.value());
    }
};
