#pragma once
// Incremental 64-bit FNV-1a hasher shared by the state-digest and replay
// layers. Not cryptographic: the goal is a cheap, platform-independent
// fingerprint of simulation state that two deterministic runs can compare
// byte-for-byte. digest() finishes with a splitmix64 avalanche so single-bit
// input differences flip roughly half the output bits (plain FNV is weak in
// the low bits, which matters when digests are diffed or bucketed).

#include <cstdint>
#include <cstring>
#include <string_view>

namespace mvc::common {

/// splitmix64 finalizer: full-avalanche bijective mix of a 64-bit value.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

class Hash64 {
public:
    Hash64& bytes(const void* data, std::size_t n) {
        const auto* p = static_cast<const std::uint8_t*>(data);
        for (std::size_t i = 0; i < n; ++i) {
            state_ ^= p[i];
            state_ *= kPrime;
        }
        return *this;
    }

    Hash64& u8(std::uint8_t v) { return bytes(&v, sizeof v); }
    Hash64& u32(std::uint32_t v) { return bytes(&v, sizeof v); }
    Hash64& u64(std::uint64_t v) { return bytes(&v, sizeof v); }
    Hash64& i64(std::int64_t v) { return u64(static_cast<std::uint64_t>(v)); }
    Hash64& size(std::size_t v) { return u64(static_cast<std::uint64_t>(v)); }
    Hash64& boolean(bool v) { return u8(v ? 1 : 0); }

    /// Hashes length then content, so ("ab","c") != ("a","bc").
    Hash64& str(std::string_view s) {
        size(s.size());
        return bytes(s.data(), s.size());
    }

    /// Bit pattern of the double — exact, no epsilon. Deterministic runs
    /// produce bit-identical floats, so digests may compare them exactly.
    Hash64& f64(double v) {
        std::uint64_t bits = 0;
        std::memcpy(&bits, &v, sizeof bits);
        return u64(bits);
    }

    [[nodiscard]] std::uint64_t digest() const { return mix64(state_); }

private:
    static constexpr std::uint64_t kPrime = 1099511628211ULL;
    std::uint64_t state_{14695981039346656037ULL};  // FNV offset basis
};

}  // namespace mvc::common
