#include "common/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace mvc::common {

const Json* Json::find(std::string_view key) const {
    const auto* obj = std::get_if<JsonObject>(&value_);
    if (obj == nullptr) return nullptr;
    const auto it = obj->find(std::string{key});
    return it == obj->end() ? nullptr : &it->second;
}

double Json::number_or(std::string_view key, double fallback) const {
    const Json* v = find(key);
    return v == nullptr ? fallback : v->as_number();
}

bool Json::bool_or(std::string_view key, bool fallback) const {
    const Json* v = find(key);
    return v == nullptr ? fallback : v->as_bool();
}

std::string Json::string_or(std::string_view key, std::string fallback) const {
    const Json* v = find(key);
    return v == nullptr ? std::move(fallback) : v->as_string();
}

Json& Json::operator[](const std::string& key) {
    if (is_null()) value_ = JsonObject{};
    return as_object()[key];
}

// ---------------------------------------------------------------------- parse

namespace {

class Parser {
public:
    explicit Parser(std::string_view text) : text_(text) {}

    Json parse_document() {
        Json v = parse_value();
        skip_ws();
        if (pos_ != text_.size()) fail("trailing content");
        return v;
    }

private:
    std::string_view text_;
    std::size_t pos_{0};

    [[noreturn]] void fail(const std::string& message) const {
        throw JsonParseError(message, pos_);
    }

    [[nodiscard]] char peek() const {
        if (pos_ >= text_.size()) throw JsonParseError("unexpected end of input", pos_);
        return text_[pos_];
    }
    char take() {
        const char c = peek();
        ++pos_;
        return c;
    }
    void expect(char c) {
        if (take() != c) {
            --pos_;
            fail(std::string{"expected '"} + c + "'");
        }
    }
    void skip_ws() {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
                text_[pos_] == '\r')) {
            ++pos_;
        }
    }
    bool consume_literal(std::string_view lit) {
        if (text_.substr(pos_, lit.size()) == lit) {
            pos_ += lit.size();
            return true;
        }
        return false;
    }

    Json parse_value() {
        skip_ws();
        const char c = peek();
        switch (c) {
            case '{': return parse_object();
            case '[': return parse_array();
            case '"': return Json{parse_string()};
            case 't':
                if (consume_literal("true")) return Json{true};
                fail("bad literal");
            case 'f':
                if (consume_literal("false")) return Json{false};
                fail("bad literal");
            case 'n':
                if (consume_literal("null")) return Json{nullptr};
                fail("bad literal");
            default: return parse_number();
        }
    }

    Json parse_object() {
        expect('{');
        JsonObject obj;
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return Json{std::move(obj)};
        }
        while (true) {
            skip_ws();
            std::string key = parse_string();
            skip_ws();
            expect(':');
            obj[std::move(key)] = parse_value();
            skip_ws();
            const char c = take();
            if (c == '}') break;
            if (c != ',') {
                --pos_;
                fail("expected ',' or '}'");
            }
        }
        return Json{std::move(obj)};
    }

    Json parse_array() {
        expect('[');
        JsonArray arr;
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return Json{std::move(arr)};
        }
        while (true) {
            arr.push_back(parse_value());
            skip_ws();
            const char c = take();
            if (c == ']') break;
            if (c != ',') {
                --pos_;
                fail("expected ',' or ']'");
            }
        }
        return Json{std::move(arr)};
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        while (true) {
            const char c = take();
            if (c == '"') break;
            if (static_cast<unsigned char>(c) < 0x20) fail("control character in string");
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            const char esc = take();
            switch (esc) {
                case '"': out.push_back('"'); break;
                case '\\': out.push_back('\\'); break;
                case '/': out.push_back('/'); break;
                case 'b': out.push_back('\b'); break;
                case 'f': out.push_back('\f'); break;
                case 'n': out.push_back('\n'); break;
                case 'r': out.push_back('\r'); break;
                case 't': out.push_back('\t'); break;
                case 'u': {
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = take();
                        code <<= 4;
                        if (h >= '0' && h <= '9') {
                            code += static_cast<unsigned>(h - '0');
                        } else if (h >= 'a' && h <= 'f') {
                            code += static_cast<unsigned>(h - 'a' + 10);
                        } else if (h >= 'A' && h <= 'F') {
                            code += static_cast<unsigned>(h - 'A' + 10);
                        } else {
                            --pos_;
                            fail("bad \\u escape");
                        }
                    }
                    if (code >= 0xD800 && code <= 0xDFFF) {
                        fail("surrogate pairs unsupported");
                    }
                    // UTF-8 encode (BMP only).
                    if (code < 0x80) {
                        out.push_back(static_cast<char>(code));
                    } else if (code < 0x800) {
                        out.push_back(static_cast<char>(0xC0 | (code >> 6)));
                        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
                    } else {
                        out.push_back(static_cast<char>(0xE0 | (code >> 12)));
                        out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
                        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
                    }
                    break;
                }
                default:
                    --pos_;
                    fail("bad escape");
            }
        }
        return out;
    }

    Json parse_number() {
        const std::size_t start = pos_;
        if (peek() == '-') ++pos_;
        if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("bad number");
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
                text_[pos_] == '+' || text_[pos_] == '-')) {
            ++pos_;
        }
        double value = 0.0;
        const auto [ptr, ec] =
            std::from_chars(text_.data() + start, text_.data() + pos_, value);
        if (ec != std::errc{} || ptr != text_.data() + pos_) {
            pos_ = start;
            fail("bad number");
        }
        return Json{value};
    }
};

void write_escaped(std::string& out, const std::string& s) {
    out.push_back('"');
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out.push_back(c);
                }
        }
    }
    out.push_back('"');
}

void write_number(std::string& out, double d) {
    if (std::isnan(d) || std::isinf(d)) {
        out += "null";  // JSON has no NaN/Inf; degrade gracefully
        return;
    }
    // Integers print without a trailing ".0"; everything else round-trips.
    if (d == std::floor(d) && std::abs(d) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.0f", d);
        out += buf;
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", d);
    out += buf;
}

void newline_indent(std::string& out, int indent, int depth) {
    if (indent <= 0) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent * depth), ' ');
}

}  // namespace

Json Json::parse(std::string_view text) { return Parser{text}.parse_document(); }

void Json::write(std::string& out, int indent, int depth) const {
    if (const auto* b = std::get_if<bool>(&value_)) {
        out += *b ? "true" : "false";
    } else if (std::holds_alternative<std::nullptr_t>(value_)) {
        out += "null";
    } else if (const auto* d = std::get_if<double>(&value_)) {
        write_number(out, *d);
    } else if (const auto* s = std::get_if<std::string>(&value_)) {
        write_escaped(out, *s);
    } else if (const auto* arr = std::get_if<JsonArray>(&value_)) {
        if (arr->empty()) {
            out += "[]";
            return;
        }
        out.push_back('[');
        for (std::size_t i = 0; i < arr->size(); ++i) {
            if (i > 0) out.push_back(',');
            newline_indent(out, indent, depth + 1);
            (*arr)[i].write(out, indent, depth + 1);
        }
        newline_indent(out, indent, depth);
        out.push_back(']');
    } else if (const auto* obj = std::get_if<JsonObject>(&value_)) {
        if (obj->empty()) {
            out += "{}";
            return;
        }
        out.push_back('{');
        bool first = true;
        for (const auto& [key, val] : *obj) {
            if (!first) out.push_back(',');
            first = false;
            newline_indent(out, indent, depth + 1);
            write_escaped(out, key);
            out.push_back(':');
            if (indent > 0) out.push_back(' ');
            val.write(out, indent, depth + 1);
        }
        newline_indent(out, indent, depth);
        out.push_back('}');
    }
}

std::string Json::dump(int indent) const {
    std::string out;
    write(out, indent, 0);
    return out;
}

}  // namespace mvc::common
