#pragma once
// Minimal JSON value, parser and writer — no third-party dependency. Used
// by the scenario loader (tools/) and the class-report exporter. Supports
// the full JSON grammar except surrogate-pair \u escapes (non-BMP code
// points), which classroom configs never need; \uXXXX below U+0800 decode
// to UTF-8.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace mvc::common {

class Json;

using JsonArray = std::vector<Json>;
/// Ordered map keeps writer output deterministic.
using JsonObject = std::map<std::string, Json>;

class JsonParseError : public std::runtime_error {
public:
    JsonParseError(const std::string& message, std::size_t offset)
        : std::runtime_error(message + " at offset " + std::to_string(offset)),
          offset_(offset) {}
    [[nodiscard]] std::size_t offset() const { return offset_; }

private:
    std::size_t offset_;
};

class Json {
public:
    using Value =
        std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject>;

    Json() : value_(nullptr) {}
    Json(std::nullptr_t) : value_(nullptr) {}
    Json(bool b) : value_(b) {}
    Json(double d) : value_(d) {}
    Json(int i) : value_(static_cast<double>(i)) {}
    Json(std::int64_t i) : value_(static_cast<double>(i)) {}
    Json(std::uint64_t u) : value_(static_cast<double>(u)) {}
    Json(const char* s) : value_(std::string{s}) {}
    Json(std::string s) : value_(std::move(s)) {}
    Json(JsonArray a) : value_(std::move(a)) {}
    Json(JsonObject o) : value_(std::move(o)) {}

    [[nodiscard]] bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
    [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(value_); }
    [[nodiscard]] bool is_number() const { return std::holds_alternative<double>(value_); }
    [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(value_); }
    [[nodiscard]] bool is_array() const { return std::holds_alternative<JsonArray>(value_); }
    [[nodiscard]] bool is_object() const { return std::holds_alternative<JsonObject>(value_); }

    /// Checked accessors; throw std::runtime_error on type mismatch.
    [[nodiscard]] bool as_bool() const { return get<bool>("bool"); }
    [[nodiscard]] double as_number() const { return get<double>("number"); }
    [[nodiscard]] const std::string& as_string() const {
        return get<std::string>("string");
    }
    [[nodiscard]] const JsonArray& as_array() const { return get<JsonArray>("array"); }
    [[nodiscard]] const JsonObject& as_object() const { return get<JsonObject>("object"); }
    [[nodiscard]] JsonArray& as_array() { return get<JsonArray>("array"); }
    [[nodiscard]] JsonObject& as_object() { return get<JsonObject>("object"); }

    /// Object field lookup; nullptr when absent or not an object.
    [[nodiscard]] const Json* find(std::string_view key) const;
    /// Object field with default for missing keys (type-checked when present).
    [[nodiscard]] double number_or(std::string_view key, double fallback) const;
    [[nodiscard]] bool bool_or(std::string_view key, bool fallback) const;
    [[nodiscard]] std::string string_or(std::string_view key, std::string fallback) const;

    /// Index into an object, creating the field (object context only).
    Json& operator[](const std::string& key);

    friend bool operator==(const Json&, const Json&) = default;

    /// Parse a complete JSON document (trailing whitespace allowed, other
    /// trailing content rejected). Throws JsonParseError.
    [[nodiscard]] static Json parse(std::string_view text);

    /// Serialize. `indent` > 0 pretty-prints with that many spaces.
    [[nodiscard]] std::string dump(int indent = 0) const;

private:
    Value value_;

    template <class T>
    [[nodiscard]] const T& get(const char* what) const {
        if (const T* p = std::get_if<T>(&value_)) return *p;
        throw std::runtime_error(std::string{"Json: not a "} + what);
    }
    template <class T>
    [[nodiscard]] T& get(const char* what) {
        if (T* p = std::get_if<T>(&value_)) return *p;
        throw std::runtime_error(std::string{"Json: not a "} + what);
    }

    void write(std::string& out, int indent, int depth) const;
};

}  // namespace mvc::common
