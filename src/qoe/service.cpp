#include "qoe/service.hpp"

#include <algorithm>
#include <string>
#include <utility>

namespace mvc::qoe {

QoeService::QoeService(net::Backend& net, net::PacketDemux& demux,
                       QoeServiceConfig config)
    : net_(net),
      node_(demux.node()),
      ladder_(config.ladder.empty() ? media::default_ladder()
                                    : std::move(config.ladder)) {
    demux.on_flow(std::string{kQoeFeedbackFlow},
                  [this](net::Packet&& p) { handle_feedback(std::move(p)); });
}

void QoeService::add_client(net::NodeId client, net::Priority priority) {
    if (clients_.contains(client)) return;
    ClientState state{
        .tx = net_.open_channel({.src = node_,
                                 .flow = std::string{kVideoFlow},
                                 .options = {.priority = priority}}),
        .source = nullptr,
        .rung = static_cast<int>(ladder_.size()) - 1};
    // Everyone starts at the top rung — the client's controller starts there
    // too, so a clean link never sees a switch. The per-client RNG stream
    // name keys frame-size dispersion deterministically to the client node.
    state.source = std::make_unique<media::VideoSource>(
        net_.clock(), "qoe/" + std::to_string(client),
        ladder_[static_cast<std::size_t>(state.rung)],
        [this, client](media::VideoFrame&& f) { ship_frame(client, f); });
    state.source->start();
    clients_.emplace(client, std::move(state));
}

void QoeService::remove_client(net::NodeId client) {
    const auto it = clients_.find(client);
    if (it == clients_.end()) return;
    it->second.source->stop();
    if (aggregator_ != nullptr) aggregator_->clear_viewer_qoe(client);
    clients_.erase(it);
}

int QoeService::client_rung(net::NodeId client) const {
    const auto it = clients_.find(client);
    return it == clients_.end() ? -1 : it->second.rung;
}

void QoeService::ship_frame(net::NodeId client, const media::VideoFrame& frame) {
    auto it = clients_.find(client);
    if (it == clients_.end()) return;
    ++frames_sent_;
    for (const media::VideoPacket& pkt : media::packetize(frame)) {
        it->second.tx.send_to(client, pkt.size_bytes,
                              VideoWire{.seq = ++it->second.video_seq, .packet = pkt});
    }
}

void QoeService::handle_feedback(net::Packet&& p) {
    const auto it = clients_.find(p.src);
    if (it == clients_.end()) return;
    ClientState& state = it->second;
    const auto wire = p.payload.take<QoeFeedbackWire>();
    // The flow is best-effort; reordered stale feedback must not roll the
    // encoder back to a rung the client has already left.
    if (state.last_feedback_seq != 0 && wire.seq <= state.last_feedback_seq) return;
    state.last_feedback_seq = wire.seq;
    ++feedback_received_;

    const int rung = std::clamp(wire.rung, 0, static_cast<int>(ladder_.size()) - 1);
    if (rung != state.rung) {
        state.rung = rung;
        state.source->set_profile(ladder_[static_cast<std::size_t>(rung)]);
        ++rung_changes_;
    }
    if (aggregator_ != nullptr) {
        aggregator_->set_viewer_qoe(p.src, wire.gaze, wire.fovea_cos, wire.foveal,
                                    wire.peripheral);
    }
}

}  // namespace mvc::qoe
