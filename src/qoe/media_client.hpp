#pragma once
// Client half of the QoE control loop. Owns the video receiver, the ABR
// controller, and the budget allocator for one VR client, and closes the
// loop on a fixed feedback tick:
//
//   PathHealth (shared with the client's degradation ladder — one congestion
//   estimator, two actuators) supplies loss + smoothed delay; delivered
//   bytes (video packets + avatar updates) over the tick window feed an
//   EWMA capacity estimate; AbrController turns both into a ladder rung;
//   BudgetAllocator splits the residual capacity into per-tier avatar rate
//   scales; and one QoeFeedbackWire ships rung + gaze + scales upstream.
//
// Each tick also scores the session (qoe_score) and exports the per-class
// labeled series/counters the scenario SLO gates read:
//   qoe.score{class=}, qoe.score{class=,client=}, qoe.staleness_ms{class=},
//   qoe.rung{class=} (series); qoe.stall_ms{class=}, qoe.switches{class=}
//   (counters).
//
// The receiver is deliberately not finish()ed at stop(): frames still in
// flight at teardown are not stalls, and a clean run must report zero.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "fault/degradation.hpp"
#include "media/video.hpp"
#include "net/channel.hpp"
#include "qoe/abr.hpp"
#include "qoe/budget.hpp"
#include "qoe/feedback.hpp"
#include "qoe/score.hpp"
#include "sync/interest.hpp"

namespace mvc::qoe {

struct MediaClientConfig {
    bool enabled{false};
    /// Bitrate ladder shared with the server; empty = media::default_ladder().
    std::vector<media::VideoProfile> ladder;
    AbrParams abr{};
    BudgetParams budget{};
    ScoreParams score{};
    /// Interest tiers the scale banks are sized for (must match the egress
    /// aggregator's policy).
    sync::InterestPolicy interest{};
    sim::Time feedback_interval{sim::Time::ms(250)};
    sim::Time playout_delay{sim::Time::ms(200)};
    /// Priority-class label stamped on this client's QoE metrics ("high" or
    /// "low" in the shipped scenarios).
    std::string klass{"high"};
    /// EWMA weight of each new goodput sample in the capacity estimate.
    double capacity_alpha{0.3};
};

class MediaClient {
public:
    /// World-space gaze direction provider (the head's forward vector).
    using GazeFn = std::function<math::Vec3()>;

    /// `health` is the client's existing PathHealth — shared, not copied:
    /// the same estimator feeds the degradation ladder and this controller.
    MediaClient(net::Backend& net, net::PacketDemux& demux, ParticipantId who,
                fault::PathHealth& health, MediaClientConfig config);

    MediaClient(const MediaClient&) = delete;
    MediaClient& operator=(const MediaClient&) = delete;

    /// Begin the feedback loop against `server` (the node streaming video
    /// to us). Call after the server's QoeService::add_client.
    void start(net::NodeId server, GazeFn gaze);
    void stop();

    /// Hook from the avatar ingest path: every delivered avatar update
    /// refreshes staleness and counts toward the goodput window.
    void note_avatar(sim::Time now, std::size_t bytes);

    [[nodiscard]] int rung() const { return abr_.rung(); }
    [[nodiscard]] const AbrController& abr() const { return abr_; }
    [[nodiscard]] const media::PlaybackStats& playback() const {
        return receiver_->stats();
    }
    [[nodiscard]] double capacity_bps() const { return capacity_bps_; }
    /// Most recent per-tick QoE score (100 before the first tick).
    [[nodiscard]] double last_score() const { return last_score_; }
    [[nodiscard]] std::uint64_t feedback_sent() const { return feedback_seq_; }

private:
    net::Backend& net_;
    ParticipantId who_;
    MediaClientConfig config_;
    fault::PathHealth& health_;
    AbrController abr_;
    BudgetAllocator allocator_;
    net::Channel feedback_tx_;
    std::unique_ptr<media::VideoReceiver> receiver_;
    GazeFn gaze_;
    net::NodeId server_{net::kInvalidNode};
    sim::EventHandle tick_task_;
    bool running_{false};
    sim::Time started_{};
    sim::Time last_tick_{};
    sim::Time last_avatar_rx_{};
    std::size_t window_bytes_{0};
    double capacity_bps_{0.0};
    double last_score_{100.0};
    std::uint32_t feedback_seq_{0};
    std::uint64_t stall_ms_reported_{0};
    std::uint64_t switches_reported_{0};
    /// Backing storage for the client= label (ids must outlive interning).
    std::string client_label_;
    sim::MetricId score_id_;
    sim::MetricId score_client_id_;
    sim::MetricId staleness_id_;
    sim::MetricId rung_id_;
    sim::MetricId stall_id_;
    sim::MetricId switches_id_;

    void handle_video(net::Packet&& p);
    void tick();
};

}  // namespace mvc::qoe
