#pragma once
// Tiled/foveated LOD allocation: split one client's link budget between its
// video stream and the freshness of the avatars it can see. The ABR rung
// fixes the video spend; whatever capacity remains funds avatar updates,
// expressed as per-interest-tier rate scales the CellDeltaAggregator's rate
// clocks multiply in. Two scale banks come out of each allocation:
//
//  - foveal: cells inside the gaze cone (the student is looking there) keep
//    their update rate high — scales fall off slowly with pressure.
//  - peripheral: cells outside the cone degrade first and hardest, and
//    farther interest tiers degrade before nearer ones (falloff per tier).
//
// So under a squeezed link the avatars a student is actually watching stay
// fresh, the far periphery drops to a floor rate, and nothing ever goes
// fully silent (floor_scale > 0 keeps every tier ticking).

#include <vector>

namespace mvc::qoe {

struct BudgetParams {
    /// Fraction of capacity treated as spendable (same headroom idea as
    /// AbrParams::safety; estimate noise must not oversubscribe the link).
    double safety{0.85};
    /// Avatar-stream bitrate that buys full update rates everywhere. The
    /// residual budget is measured against this to get the pressure scalar.
    double avatar_full_bps{2.0e5};
    /// Floor for every scale: no tier is ever silenced outright.
    double floor_scale{0.1};
    /// Extra exponent per interest tier: tier t's peripheral scale is
    /// pressure^(1 + falloff*t), so far tiers collapse toward the floor
    /// faster than near ones.
    double falloff{0.75};
    /// cos of the gaze-cone half-angle (0.866 = 30 degrees): a cell whose
    /// direction from the viewer is within the cone counts as foveal.
    double fovea_cos{0.866};
    /// Foveal scales use exponent fovea_exponent*(1 + falloff*t) — a root of
    /// the peripheral curve, so gazed-at cells degrade last.
    double fovea_exponent{0.5};
};

/// One allocation verdict: the pressure scalar in [floor_scale, 1] plus the
/// per-tier scale banks (index = interest tier, size = tier count asked for).
struct LodAllocation {
    double pressure{1.0};
    std::vector<double> foveal;
    std::vector<double> peripheral;
};

class BudgetAllocator {
public:
    explicit BudgetAllocator(BudgetParams params = {}) : params_(params) {}

    /// Split `capacity_bps` (estimated link capacity; <= 0 means "no
    /// estimate", which allocates full rates) against a video spend of
    /// `video_bps`, producing `tiers` scale entries per bank.
    [[nodiscard]] LodAllocation allocate(double capacity_bps, double video_bps,
                                         std::size_t tiers) const;

    [[nodiscard]] const BudgetParams& params() const { return params_; }

private:
    BudgetParams params_;
};

}  // namespace mvc::qoe
