#include "qoe/abr.hpp"

#include <algorithm>
#include <stdexcept>

namespace mvc::qoe {

AbrController::AbrController(std::vector<media::VideoProfile> ladder, AbrParams params)
    : ladder_(std::move(ladder)), params_(params) {
    if (ladder_.empty()) throw std::invalid_argument("AbrController: empty ladder");
    for (std::size_t i = 1; i < ladder_.size(); ++i) {
        if (ladder_[i].bitrate_bps < ladder_[i - 1].bitrate_bps)
            throw std::invalid_argument("AbrController: ladder must ascend");
    }
    rung_ = top_rung();
}

int AbrController::best_fit(double usable_bps) const {
    // Highest rung whose bitrate fits the usable budget; rung 0 is the floor
    // (a session never goes fully videoless — the floor rung is the
    // thumbnail stream).
    int fit = 0;
    for (std::size_t i = 0; i < ladder_.size(); ++i) {
        if (ladder_[i].bitrate_bps <= usable_bps) fit = static_cast<int>(i);
    }
    return fit;
}

bool AbrController::update(double loss, double rtt_ms, double capacity_bps,
                           sim::Time now) {
    const bool have_capacity = capacity_bps > 0.0;
    const double usable =
        have_capacity ? params_.safety * capacity_bps - params_.reserve_bps : 0.0;

    // Entry is loss/delay driven only. The capacity estimate comes from
    // delivered goodput, which sits at or below the encode rate even on a
    // clean link — treating "current rung > usable" as congestion would
    // down-switch a perfectly healthy stream. Capacity instead decides how
    // far to drop and gates stepping back up.
    const bool congested =
        loss >= params_.down_loss ||
        (params_.down_rtt_ms > 0.0 && rtt_ms >= params_.down_rtt_ms);
    // Clear only when loss AND delay are back under their exit thresholds
    // and the next rung up already fits (no speculative probing: stepping
    // into a rung the path cannot carry is how oscillation starts).
    const bool next_fits =
        rung_ < top_rung() && have_capacity &&
        ladder_[static_cast<std::size_t>(rung_ + 1)].bitrate_bps <= usable;
    const bool clear = !congested && loss <= params_.up_loss &&
                       (params_.down_rtt_ms <= 0.0 || rtt_ms <= params_.up_rtt_ms) &&
                       next_fits;

    if (congested) {
        if (congested_since_ == sim::Time::max()) congested_since_ = now;
    } else {
        congested_since_ = sim::Time::max();
    }
    if (clear) {
        if (clear_since_ == sim::Time::max()) clear_since_ = now;
    } else {
        clear_since_ = sim::Time::max();
    }

    const bool dwell_ok =
        switches_ == 0 || now - last_switch_ >= params_.min_dwell;
    if (!dwell_ok) return false;

    if (congested && rung_ > 0 && now - congested_since_ >= params_.hold_down) {
        // Drop straight to the rung that fits (at least one step): the fast
        // half of the hysteresis, so a throttled link drains its backlog
        // instead of stalling one rung at a time.
        const int target =
            have_capacity ? std::min(rung_ - 1, best_fit(usable)) : rung_ - 1;
        rung_ = std::max(0, target);
        ++switches_;
        last_switch_ = now;
        congested_since_ = sim::Time::max();
        clear_since_ = sim::Time::max();
        return true;
    }
    if (clear && rung_ < top_rung() && now - clear_since_ >= params_.hold_up) {
        ++rung_;  // the slow half: one rung per hold_up
        ++switches_;
        last_switch_ = now;
        congested_since_ = sim::Time::max();
        clear_since_ = sim::Time::max();
        return true;
    }
    return false;
}

double AbrController::switches_per_minute(sim::Time elapsed) const {
    const double minutes = elapsed.to_seconds() / 60.0;
    return minutes > 0.0 ? static_cast<double>(switches_) / minutes : 0.0;
}

}  // namespace mvc::qoe
