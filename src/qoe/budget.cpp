#include "qoe/budget.hpp"

#include <algorithm>
#include <cmath>

namespace mvc::qoe {

LodAllocation BudgetAllocator::allocate(double capacity_bps, double video_bps,
                                        std::size_t tiers) const {
    LodAllocation out;
    out.foveal.resize(tiers, 1.0);
    out.peripheral.resize(tiers, 1.0);
    if (capacity_bps <= 0.0) return out;  // no estimate: assume a clean link

    const double residual =
        std::max(0.0, params_.safety * capacity_bps - video_bps);
    out.pressure = params_.avatar_full_bps > 0.0
                       ? std::clamp(residual / params_.avatar_full_bps,
                                    params_.floor_scale, 1.0)
                       : 1.0;
    for (std::size_t t = 0; t < tiers; ++t) {
        const double tier_exp = 1.0 + params_.falloff * static_cast<double>(t);
        out.peripheral[t] = std::clamp(std::pow(out.pressure, tier_exp),
                                       params_.floor_scale, 1.0);
        out.foveal[t] =
            std::clamp(std::pow(out.pressure, params_.fovea_exponent * tier_exp),
                       params_.floor_scale, 1.0);
    }
    return out;
}

}  // namespace mvc::qoe
