#pragma once
// Per-client adaptive-bitrate controller over the media::video ladder. The
// controller consumes the shared congestion feedback a client already
// produces — fault::PathHealth loss + smoothed delay plus a delivered-
// goodput (capacity) estimate from per-flow wire-byte accounting — and picks
// a ladder rung with hysteresis: down-switches are fast (loss/delay past the
// enter threshold for a short hold, then drop straight to the highest rung
// that fits the usable capacity), up-switches are slow (a long clear-signal
// hold, one rung at a time, and only when the next rung's bitrate already
// fits the estimate), and a minimum dwell time bounds the switch rate, so a
// 10x oversubscribed link converges instead of oscillating between rungs. The shape mirrors fault::DegradationPolicy's
// enter/exit + hold ladder — same control-theory trick, different actuator.

#include <cstdint>
#include <vector>

#include "media/video.hpp"
#include "sim/time.hpp"

namespace mvc::qoe {

struct AbrParams {
    /// Fraction of the estimated capacity the controller is willing to
    /// commit to media (headroom absorbs estimate noise).
    double safety{0.85};
    /// Bits/s held back from the video budget for avatar freshness: the
    /// budget allocator spends it on interest-tier update rates, so video
    /// never starves the avatar stream outright.
    double reserve_bps{5.0e4};
    /// Loss at/above which the path counts as congested (after hold_down).
    double down_loss{0.08};
    /// Loss must be at/below this before an up-switch is considered.
    double up_loss{0.02};
    /// Delay (ms) at/above which the path counts as congested; zero
    /// disables the delay criterion (mirrors fault::DegradationParams).
    double down_rtt_ms{0.0};
    double up_rtt_ms{0.0};
    /// Congestion must persist this long before stepping down.
    sim::Time hold_down{sim::Time::ms(500)};
    /// The signal must stay clear this long before stepping up.
    sim::Time hold_up{sim::Time::seconds(3.0)};
    /// Floor between any two switches (bounds switches per minute).
    sim::Time min_dwell{sim::Time::seconds(1.0)};
};

class AbrController {
public:
    /// `ladder` is lowest-bitrate-first (media::default_ladder()); the
    /// controller starts at the top rung, so a clean link never switches.
    explicit AbrController(std::vector<media::VideoProfile> ladder,
                           AbrParams params = {});

    /// Feed one feedback observation. `capacity_bps` <= 0 means "no
    /// estimate yet" and skips the throughput criterion. Returns true when
    /// the rung changed (callers re-signal the sender).
    bool update(double loss, double rtt_ms, double capacity_bps, sim::Time now);

    [[nodiscard]] int rung() const { return rung_; }
    [[nodiscard]] int top_rung() const { return static_cast<int>(ladder_.size()) - 1; }
    [[nodiscard]] const media::VideoProfile& profile() const {
        return ladder_[static_cast<std::size_t>(rung_)];
    }
    [[nodiscard]] const std::vector<media::VideoProfile>& ladder() const {
        return ladder_;
    }
    [[nodiscard]] std::uint64_t switches() const { return switches_; }
    [[nodiscard]] double switches_per_minute(sim::Time elapsed) const;
    [[nodiscard]] const AbrParams& params() const { return params_; }

private:
    std::vector<media::VideoProfile> ladder_;
    AbrParams params_;
    int rung_{0};
    std::uint64_t switches_{0};
    // Time::max() means "signal not currently in that regime".
    sim::Time congested_since_{sim::Time::max()};
    sim::Time clear_since_{sim::Time::max()};
    sim::Time last_switch_{};  // dwell ignored until the first switch

    [[nodiscard]] int best_fit(double usable_bps) const;
};

}  // namespace mvc::qoe
