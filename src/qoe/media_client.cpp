#include "qoe/media_client.hpp"

#include <cmath>
#include <utility>

namespace mvc::qoe {

MediaClient::MediaClient(net::Backend& net, net::PacketDemux& demux, ParticipantId who,
                         fault::PathHealth& health, MediaClientConfig config)
    : net_(net),
      who_(who),
      config_(std::move(config)),
      health_(health),
      abr_(config_.ladder.empty() ? media::default_ladder() : config_.ladder,
           config_.abr),
      allocator_(config_.budget),
      feedback_tx_(net.open_channel({.src = demux.node(),
                                     .flow = std::string{kQoeFeedbackFlow},
                                     .options = {.priority = net::Priority::Control}})),
      client_label_(std::to_string(who.value())) {
    // The receiver's freeze accounting uses one fps for the whole session
    // (the top rung's); lower rungs at lower fps slightly under-count
    // per-frame freeze time, which is conservative in the right direction.
    receiver_ = std::make_unique<media::VideoReceiver>(
        net_.clock(), abr_.ladder().back(), config_.playout_delay);
    demux.on_flow(std::string{kVideoFlow},
                  [this](net::Packet&& p) { handle_video(std::move(p)); });

    sim::MetricsRecorder& m = net_.metrics();
    score_id_ = m.series_id("qoe.score", {{"class", config_.klass}});
    score_client_id_ =
        m.series_id("qoe.score", {{"class", config_.klass}, {"client", client_label_}});
    staleness_id_ = m.series_id("qoe.staleness_ms", {{"class", config_.klass}});
    rung_id_ = m.series_id("qoe.rung", {{"class", config_.klass}});
    stall_id_ = m.counter_id("qoe.stall_ms", {{"class", config_.klass}});
    switches_id_ = m.counter_id("qoe.switches", {{"class", config_.klass}});
}

void MediaClient::start(net::NodeId server, GazeFn gaze) {
    if (running_) return;
    running_ = true;
    server_ = server;
    gaze_ = std::move(gaze);
    started_ = net_.clock().now();
    last_tick_ = started_;
    last_avatar_rx_ = started_;
    tick_task_ =
        net_.clock().schedule_every(config_.feedback_interval, [this] { tick(); });
}

void MediaClient::stop() {
    if (!running_) return;
    running_ = false;
    net_.clock().cancel(tick_task_);
}

void MediaClient::note_avatar(sim::Time now, std::size_t bytes) {
    last_avatar_rx_ = now;
    window_bytes_ += bytes;
}

void MediaClient::handle_video(net::Packet&& p) {
    const sim::Time now = net_.clock().now();
    window_bytes_ += p.size_bytes;
    const auto wire = p.payload.take<VideoWire>();
    // The video flow is the honest loss probe: every packet is shipped (no
    // interest filtering), so a sequence gap is a genuine drop. Feeds the
    // same PathHealth the degradation ladder reads — one shared estimator.
    health_.observe(kVideoHealthSource, wire.seq,
                    (now - wire.packet.captured_at).to_ms(), now);
    receiver_->ingest(wire.packet);
}

void MediaClient::tick() {
    const sim::Time now = net_.clock().now();
    health_.roll(now);

    // Delivered goodput over the tick window -> capacity estimate. No
    // delivery yet means no estimate (capacity 0 skips the ABR's throughput
    // criteria rather than reading as a dead link). The estimate only trusts
    // samples taken under load: it ratchets up freely (delivering more than
    // we thought possible is proof), but decays only while the path shows
    // loss — on an unsaturated link delivered goodput equals the encode
    // rate, which says nothing about capacity, and folding it in would walk
    // the estimate down to the current rung and wedge the up-switch gate.
    const double window_s = (now - last_tick_).to_seconds();
    const double inst_bps =
        window_s > 0.0 ? static_cast<double>(window_bytes_) * 8.0 / window_s : 0.0;
    if (inst_bps > 0.0) {
        if (capacity_bps_ <= 0.0) {
            capacity_bps_ = inst_bps;
        } else if (inst_bps > capacity_bps_ || health_.loss() > 0.0) {
            capacity_bps_ = config_.capacity_alpha * inst_bps +
                            (1.0 - config_.capacity_alpha) * capacity_bps_;
        }
    }
    window_bytes_ = 0;
    last_tick_ = now;

    abr_.update(health_.loss(), health_.rtt_ms(), capacity_bps_, now);
    const std::size_t tiers = config_.interest.tiers().size();
    LodAllocation alloc =
        allocator_.allocate(capacity_bps_, abr_.profile().bitrate_bps, tiers);

    QoeFeedbackWire wire{.participant = who_,
                         .seq = ++feedback_seq_,
                         .rung = abr_.rung(),
                         .gaze = gaze_ ? gaze_() : math::Vec3{},
                         .fovea_cos = config_.budget.fovea_cos,
                         .foveal = std::move(alloc.foveal),
                         .peripheral = std::move(alloc.peripheral)};
    const std::size_t size = wire.wire_bytes();
    feedback_tx_.send_to(server_, size, std::move(wire));

    const double staleness_ms = (now - last_avatar_rx_).to_ms();
    const sim::Time elapsed = now - started_;
    last_score_ = qoe_score({.stall_seconds = receiver_->stats().freeze_seconds,
                             .session_seconds = elapsed.to_seconds(),
                             .avatar_staleness_ms = staleness_ms,
                             .switches_per_minute = abr_.switches_per_minute(elapsed),
                             .delivered_rung = abr_.rung(),
                             .top_rung = abr_.top_rung()},
                            config_.score);

    sim::MetricsRecorder& m = net_.metrics();
    m.sample(score_id_, last_score_);
    m.sample(score_client_id_, last_score_);
    m.sample(staleness_id_, staleness_ms);
    m.sample(rung_id_, static_cast<double>(abr_.rung()));
    // Counters take cumulative-value deltas so they stay exact under the
    // per-tick rounding.
    const auto stall_ms_total = static_cast<std::uint64_t>(
        std::llround(receiver_->stats().freeze_seconds * 1000.0));
    m.count(stall_id_, stall_ms_total - stall_ms_reported_);
    stall_ms_reported_ = stall_ms_total;
    m.count(switches_id_, abr_.switches() - switches_reported_);
    switches_reported_ = abr_.switches();
}

}  // namespace mvc::qoe
