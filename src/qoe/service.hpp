#pragma once
// Server half of the QoE control loop. One QoeService sits on an egress
// node (relay or cloud origin): it runs one VideoSource per attached client
// on the shared bitrate ladder, streams the packetized frames down each
// client's priority channel on kVideoFlow, and listens on kQoeFeedbackFlow
// for the client's ABR verdicts — applying a requested rung to that
// client's encoder (forced keyframe, codec-restart semantics) and handing
// the gaze + per-tier rate scales to the egress CellDeltaAggregator so
// avatar update rates degrade by attention. The service is deliberately
// dumb: all control-loop intelligence lives client-side (qoe::MediaClient),
// where the congestion signal is observed; the server just actuates.

#include <cstdint>
#include <map>
#include <memory>

#include "media/video.hpp"
#include "net/channel.hpp"
#include "qoe/feedback.hpp"
#include "sync/aggregator.hpp"

namespace mvc::qoe {

struct QoeServiceConfig {
    /// Bitrate ladder shared with the clients; empty = media::default_ladder().
    std::vector<media::VideoProfile> ladder;
};

class QoeService {
public:
    QoeService(net::Backend& net, net::PacketDemux& demux, QoeServiceConfig config = {});

    QoeService(const QoeService&) = delete;
    QoeService& operator=(const QoeService&) = delete;

    /// Egress aggregator the gaze/scale feedback is applied to (optional —
    /// without one the service only actuates video rungs).
    void set_aggregator(sync::CellDeltaAggregator* aggregator) {
        aggregator_ = aggregator;
    }

    /// Start streaming to `client` at the top rung on a channel of the given
    /// priority class (the scenario's priority knob: Realtime for the high
    /// class, Bulk for the low class — an accounting split, not queueing).
    void add_client(net::NodeId client, net::Priority priority);
    void remove_client(net::NodeId client);

    [[nodiscard]] std::size_t client_count() const { return clients_.size(); }
    /// Current encode rung for `client`; -1 when unknown.
    [[nodiscard]] int client_rung(net::NodeId client) const;
    [[nodiscard]] std::uint64_t feedback_received() const { return feedback_received_; }
    [[nodiscard]] std::uint64_t rung_changes() const { return rung_changes_; }
    [[nodiscard]] std::uint64_t frames_sent() const { return frames_sent_; }
    [[nodiscard]] const std::vector<media::VideoProfile>& ladder() const {
        return ladder_;
    }

private:
    struct ClientState {
        net::Channel tx;
        std::unique_ptr<media::VideoSource> source;
        int rung{0};
        std::uint32_t last_feedback_seq{0};
        std::uint32_t video_seq{0};
    };

    net::Backend& net_;
    net::NodeId node_;
    std::vector<media::VideoProfile> ladder_;
    sync::CellDeltaAggregator* aggregator_{nullptr};
    std::map<net::NodeId, ClientState> clients_;
    std::uint64_t feedback_received_{0};
    std::uint64_t rung_changes_{0};
    std::uint64_t frames_sent_{0};

    void handle_feedback(net::Packet&& p);
    void ship_frame(net::NodeId client, const media::VideoFrame& frame);
};

}  // namespace mvc::qoe
