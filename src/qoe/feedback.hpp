#pragma once
// Wire payloads of the QoE control loop. The loop is client-driven: each
// client periodically folds its PathHealth loss/delay and delivered-goodput
// estimate into an ABR verdict plus a budget allocation, then ships the
// result upstream as one small QoeFeedbackWire — the requested video rung,
// the current gaze direction, and the per-tier avatar rate scales. The
// server applies the rung to that client's VideoSource and hands the gaze +
// scales to the egress CellDeltaAggregator. Video frames come back down on
// kVideoFlow as media::VideoPacket payloads.

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/ids.hpp"
#include "math/vec3.hpp"
#include "media/video.hpp"

namespace mvc::qoe {

/// Downstream video stream (VideoWire payloads).
inline constexpr std::string_view kVideoFlow = "video";
/// Upstream control feedback (QoeFeedbackWire payloads).
inline constexpr std::string_view kQoeFeedbackFlow = "qoe.fb";

/// PathHealth source key for the video flow's sequence stream. Avatar
/// streams key health by participant id; this constant keeps the video
/// sequence space disjoint from any plausible participant.
inline constexpr std::uint32_t kVideoHealthSource = 0x51564944;  // "QVID"

/// One MTU slice of a video frame plus a per-client monotonic wire
/// sequence. The client folds this sequence into the shared PathHealth:
/// unlike avatar wires — which the relay deliberately suppresses by AOI,
/// tier rate clocks, and QoE scales, so their gaps are policy — the video
/// flow ships every packet, and a gap here is a genuine network drop. That
/// makes it the honest loss signal for the ABR.
struct VideoWire {
    std::uint32_t seq{0};
    media::VideoPacket packet;

    [[nodiscard]] std::size_t wire_bytes() const { return packet.size_bytes; }
};

struct QoeFeedbackWire {
    ParticipantId participant;
    /// Per-client feedback counter (stale feedback is dropped on gaps going
    /// backwards; the flow is unreliable by design).
    std::uint32_t seq{0};
    /// Requested ladder rung.
    int rung{0};
    /// Gaze direction in world space (zero vector = no gaze signal; the
    /// whole view is then peripheral).
    math::Vec3 gaze;
    /// cos of the gaze-cone half-angle the scales were allocated for.
    double fovea_cos{0.866};
    /// Per-interest-tier avatar rate scales (see BudgetAllocator).
    std::vector<double> foveal;
    std::vector<double> peripheral;

    /// Approximate wire footprint: fixed header + one float per scale.
    [[nodiscard]] std::size_t wire_bytes() const {
        return 32 + 4 * (foveal.size() + peripheral.size());
    }
};

}  // namespace mvc::qoe
