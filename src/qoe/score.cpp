#include "qoe/score.hpp"

namespace mvc::qoe {

namespace {
double penalty(double value, double cap, double weight) {
    if (cap <= 0.0) return 0.0;
    return weight * std::clamp(value / cap, 0.0, 1.0);
}
}  // namespace

double qoe_score(const QoeInputs& in, const ScoreParams& p) {
    const double stall_frac =
        in.session_seconds > 0.0 ? in.stall_seconds / in.session_seconds : 0.0;
    double score = 100.0;
    score -= penalty(stall_frac, p.stall_cap_frac, p.stall_weight);
    score -= penalty(in.avatar_staleness_ms, p.staleness_cap_ms, p.staleness_weight);
    score -= penalty(in.switches_per_minute, p.switch_cap_per_min, p.switch_weight);
    if (in.top_rung > 0) {
        const double shortfall =
            static_cast<double>(std::max(0, in.top_rung - in.delivered_rung)) /
            static_cast<double>(in.top_rung);
        score -= p.tier_weight * std::clamp(shortfall, 0.0, 1.0);
    }
    return std::clamp(score, 0.0, 100.0);
}

}  // namespace mvc::qoe
