#pragma once
// Per-client QoE score: one number in [0, 100] folding together the four
// things a remote student actually feels — playback stalls, stale avatars,
// quality flapping, and the delivered video tier. Each component is
// normalised against a budget (cap) and clamped, so one pathological input
// cannot push the score below zero or mask the others; the weights say how
// much of the 100 points each component can take away. A pure function of
// its inputs: same inputs, same score, on any thread count.

#include <algorithm>

namespace mvc::qoe {

struct ScoreParams {
    /// Points lost when stall time reaches stall_cap_frac of the session.
    double stall_weight{40.0};
    double stall_cap_frac{0.1};
    /// Points lost when avatar staleness reaches staleness_cap_ms.
    double staleness_weight{25.0};
    double staleness_cap_ms{1000.0};
    /// Points lost when the switch rate reaches switch_cap_per_min.
    double switch_weight{15.0};
    double switch_cap_per_min{6.0};
    /// Points lost per full ladder of tier shortfall (top - delivered)/top.
    double tier_weight{20.0};
};

struct QoeInputs {
    double stall_seconds{0.0};
    double session_seconds{0.0};
    /// Time since the last avatar update arrived (ms).
    double avatar_staleness_ms{0.0};
    double switches_per_minute{0.0};
    int delivered_rung{0};
    int top_rung{0};
};

/// Score = 100 - sum of weighted, capped component penalties, clamped to
/// [0, 100]. Deterministic (pure arithmetic, no global state).
[[nodiscard]] double qoe_score(const QoeInputs& in, const ScoreParams& p = {});

}  // namespace mvc::qoe
