#pragma once
// Synthetic video pipeline for classroom streams (instructor camera, slides,
// whiteboard). Substitutes a real codec with a rate-distortion model:
// frame sizes follow the configured bitrate ladder (keyframes boosted,
// P-frames log-normally dispersed), and delivered quality is estimated from
// encoded bitrate via a log R-D curve minus freeze penalties for frames that
// missed their deadline. This keeps E2 (traffic) and E7 (FEC-vs-ARQ)
// faithful to what matters: sizes, timing, and loss sensitivity.

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "math/stats.hpp"
#include "sim/rng.hpp"
#include "sim/clock.hpp"

namespace mvc::media {

struct VideoProfile {
    std::uint32_t width{1280};
    std::uint32_t height{720};
    double fps{30.0};
    double bitrate_bps{2.5e6};
    /// One keyframe every N frames.
    std::uint32_t keyframe_interval{60};
    /// Keyframes are this many times larger than the average frame.
    double keyframe_boost{6.0};
};

/// Thumbnail rung for heavily throttled links (the ABR floor).
[[nodiscard]] VideoProfile profile_180p();
[[nodiscard]] VideoProfile profile_360p();
[[nodiscard]] VideoProfile profile_720p();
[[nodiscard]] VideoProfile profile_1080p();
/// Slides/whiteboard: low fps, high resolution, keyframe-heavy.
[[nodiscard]] VideoProfile profile_slides();

/// The bitrate ladder adaptive streaming picks rungs on, lowest first
/// (180p -> 360p -> 720p -> 1080p).
[[nodiscard]] std::vector<VideoProfile> default_ladder();

/// Estimated encode quality in PSNR dB from the rate-distortion log model
/// (clamped to a plausible 20-50 dB band).
[[nodiscard]] double encode_psnr_db(const VideoProfile& p);

struct VideoFrame {
    std::uint64_t index{0};
    bool keyframe{false};
    std::size_t size_bytes{0};
    sim::Time captured_at{};
};

/// Produces the frame sequence at the profile's rate.
class VideoSource {
public:
    using FrameFn = std::function<void(VideoFrame&&)>;

    VideoSource(sim::Clock& clock, std::string name, VideoProfile profile, FrameFn emit);

    void start();
    void stop();

    /// Switch the encode profile in place (ABR rung change): the frame index
    /// keeps counting, the producer tick re-arms at the new fps, and the next
    /// frame is forced to be a keyframe (codec restart semantics).
    void set_profile(VideoProfile profile);

    [[nodiscard]] const VideoProfile& profile() const { return profile_; }
    [[nodiscard]] std::uint64_t frames_produced() const { return next_index_; }
    /// Long-run average bytes per second implied by the profile.
    [[nodiscard]] double nominal_bytes_per_second() const;

private:
    sim::Clock& sim_;
    std::string name_;
    VideoProfile profile_;
    FrameFn emit_;
    sim::Rng rng_;
    sim::EventHandle task_;
    bool running_{false};
    bool force_keyframe_{false};
    std::uint64_t next_index_{0};

    void produce();
};

/// Slice of a frame sized to the wire MTU.
struct VideoPacket {
    std::uint64_t frame_index{0};
    std::uint32_t piece{0};
    std::uint32_t piece_count{0};
    bool keyframe{false};
    std::size_t size_bytes{0};
    sim::Time captured_at{};
};

inline constexpr std::size_t kVideoMtu = 1200;

/// Split a frame into MTU-sized packets.
[[nodiscard]] std::vector<VideoPacket> packetize(const VideoFrame& frame);

struct PlaybackStats {
    std::uint64_t frames_complete{0};
    std::uint64_t frames_missed{0};  // deadline passed incomplete
    math::SampleSeries frame_delay_ms;
    double freeze_seconds{0.0};
    /// Delivered quality: encode PSNR scaled by the completed-frame ratio and
    /// penalised for freezes (simple but monotone in the right things).
    [[nodiscard]] double delivered_quality_db(const VideoProfile& p,
                                              double stream_seconds) const;
};

/// Receiver-side reassembly and deadline accounting. Frames are played at
/// capture time + `playout_delay`; a frame not fully received by then counts
/// as missed and freezes playback until the next complete frame.
class VideoReceiver {
public:
    VideoReceiver(sim::Clock& clock, VideoProfile profile, sim::Time playout_delay);

    /// Ingest a (possibly reordered/duplicated) packet that just arrived.
    void ingest(const VideoPacket& packet);
    /// Close accounting at end of run (expires frames still pending).
    void finish();

    [[nodiscard]] const PlaybackStats& stats() const { return stats_; }
    [[nodiscard]] sim::Time playout_delay() const { return playout_delay_; }

private:
    struct Pending {
        std::uint32_t pieces_seen{0};
        std::uint32_t piece_count{0};
        std::vector<bool> seen;
        sim::Time captured_at{};
        bool keyframe{false};
        bool done{false};
        sim::EventHandle deadline;
    };

    sim::Clock& sim_;
    VideoProfile profile_;
    sim::Time playout_delay_;
    std::map<std::uint64_t, Pending> pending_;
    PlaybackStats stats_;
    std::uint64_t highest_complete_{0};

    void expire(std::uint64_t frame_index);
};

}  // namespace mvc::media
