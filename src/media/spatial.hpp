#pragma once
// Spatial audio mixing for the blended classroom: remote participants'
// voices must come *from their avatars' seats* — the spatial cue that makes
// a blended discussion legible in a way flat conference audio is not. This
// mixer computes per-source gain (inverse-distance with a near-field
// clamp), stereo pan from the listener-relative azimuth, and an
// intelligibility estimate against the room's aggregate babble.

#include <vector>

#include "common/ids.hpp"
#include "math/pose.hpp"

namespace mvc::media {

struct SpatialAudioParams {
    /// Distance at which gain is 1.0 (closer does not get louder).
    double reference_distance_m{1.0};
    /// Sources beyond this are inaudible.
    double max_distance_m{25.0};
    /// Rolloff exponent (1 = physical inverse distance, >1 = steeper).
    double rolloff{1.0};
    /// Fraction of every voice that bleeds into the opposite ear (head
    /// shadow is not a brick wall).
    double pan_bleed{0.25};
};

/// One mixed voice at the listener.
struct MixedSource {
    ParticipantId speaker;
    double gain{0.0};
    /// -1 = hard left, +1 = hard right.
    double pan{0.0};
    double left_gain{0.0};
    double right_gain{0.0};
};

struct ActiveSpeaker {
    ParticipantId id;
    math::Vec3 position;
    /// Speech level in [0,1] (voice activity x loudness).
    double level{1.0};
};

class SpatialMixer {
public:
    explicit SpatialMixer(SpatialAudioParams params = {});

    /// Mix `speakers` for a listener at `listener` (orientation defines
    /// left/right; forward is -z). Inaudible sources are omitted.
    [[nodiscard]] std::vector<MixedSource> mix(
        const math::Pose& listener, const std::vector<ActiveSpeaker>& speakers) const;

    /// Gain for a single source-listener distance.
    [[nodiscard]] double gain_at(double distance_m) const;

    /// Pan in [-1, 1] of a world position relative to the listener.
    [[nodiscard]] static double pan_of(const math::Pose& listener,
                                       const math::Vec3& source);

    /// Crude intelligibility of `target` against every other speaker
    /// talking at once: target power over total power at the listener
    /// (0..1; > ~0.5 means you can follow the voice).
    [[nodiscard]] double intelligibility(const math::Pose& listener,
                                         const std::vector<ActiveSpeaker>& speakers,
                                         ParticipantId target) const;

private:
    SpatialAudioParams params_;
};

}  // namespace mvc::media
