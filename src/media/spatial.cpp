#include "media/spatial.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mvc::media {

SpatialMixer::SpatialMixer(SpatialAudioParams params) : params_(params) {
    if (params_.reference_distance_m <= 0.0 ||
        params_.max_distance_m <= params_.reference_distance_m) {
        throw std::invalid_argument("SpatialMixer: bad distance parameters");
    }
}

double SpatialMixer::gain_at(double distance_m) const {
    if (distance_m >= params_.max_distance_m) return 0.0;
    const double d = std::max(distance_m, params_.reference_distance_m);
    const double g = std::pow(params_.reference_distance_m / d, params_.rolloff);
    // Smooth fade to zero over the last 20% before max distance.
    const double fade_start = 0.8 * params_.max_distance_m;
    if (distance_m > fade_start) {
        const double t = (params_.max_distance_m - distance_m) /
                         (params_.max_distance_m - fade_start);
        return g * t;
    }
    return g;
}

double SpatialMixer::pan_of(const math::Pose& listener, const math::Vec3& source) {
    const math::Vec3 local = listener.to_local(math::Pose{source, math::Quat{}}).position;
    const double lateral = local.x;            // +x = listener's right
    const double forward = -local.z;           // -z = ahead
    const double azimuth = std::atan2(lateral, std::max(std::abs(forward), 1e-9));
    return std::clamp(std::sin(azimuth), -1.0, 1.0);
}

std::vector<MixedSource> SpatialMixer::mix(
    const math::Pose& listener, const std::vector<ActiveSpeaker>& speakers) const {
    std::vector<MixedSource> out;
    out.reserve(speakers.size());
    for (const ActiveSpeaker& s : speakers) {
        const double distance = listener.position.distance_to(s.position);
        const double gain = gain_at(distance) * std::clamp(s.level, 0.0, 1.0);
        if (gain <= 1e-6) continue;
        MixedSource m;
        m.speaker = s.id;
        m.gain = gain;
        m.pan = pan_of(listener, s.position);
        // Equal-power pan law with configurable bleed.
        const double right_share = (m.pan + 1.0) / 2.0;
        const double bleed = params_.pan_bleed;
        m.right_gain = gain * std::sqrt(bleed + (1.0 - bleed) * right_share);
        m.left_gain = gain * std::sqrt(bleed + (1.0 - bleed) * (1.0 - right_share));
        out.push_back(m);
    }
    return out;
}

double SpatialMixer::intelligibility(const math::Pose& listener,
                                     const std::vector<ActiveSpeaker>& speakers,
                                     ParticipantId target) const {
    double target_power = 0.0;
    double total_power = 0.0;
    for (const ActiveSpeaker& s : speakers) {
        const double g =
            gain_at(listener.position.distance_to(s.position)) * std::clamp(s.level, 0.0, 1.0);
        const double p = g * g;
        total_power += p;
        if (s.id == target) target_power += p;
    }
    if (total_power <= 0.0) return 0.0;
    return target_power / total_power;
}

}  // namespace mvc::media
