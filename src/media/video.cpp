#include "media/video.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <utility>

namespace mvc::media {

VideoProfile profile_180p() { return {320, 180, 15.0, 0.3e6, 30, 6.0}; }
VideoProfile profile_360p() { return {640, 360, 30.0, 0.8e6, 60, 6.0}; }
VideoProfile profile_720p() { return {1280, 720, 30.0, 2.5e6, 60, 6.0}; }
VideoProfile profile_1080p() { return {1920, 1080, 30.0, 5.0e6, 60, 6.0}; }
VideoProfile profile_slides() { return {1920, 1080, 5.0, 1.0e6, 25, 3.0}; }

std::vector<VideoProfile> default_ladder() {
    return {profile_180p(), profile_360p(), profile_720p(), profile_1080p()};
}

double encode_psnr_db(const VideoProfile& p) {
    // Log rate-distortion: quality grows with bits-per-pixel-per-frame.
    const double pixels_per_second =
        static_cast<double>(p.width) * static_cast<double>(p.height) * p.fps;
    const double bpp = p.bitrate_bps / pixels_per_second;
    const double psnr = 38.0 + 6.5 * std::log2(bpp / 0.1);
    return std::clamp(psnr, 20.0, 50.0);
}

VideoSource::VideoSource(sim::Clock& clock, std::string name, VideoProfile profile,
                         FrameFn emit)
    : sim_(clock),
      name_(std::move(name)),
      profile_(profile),
      emit_(std::move(emit)),
      rng_(clock.rng_stream("video/" + name_)) {
    if (profile_.fps <= 0.0) throw std::invalid_argument("VideoSource: fps must be positive");
    if (!emit_) throw std::invalid_argument("VideoSource: null sink");
}

double VideoSource::nominal_bytes_per_second() const { return profile_.bitrate_bps / 8.0; }

void VideoSource::start() {
    if (running_) return;
    running_ = true;
    task_ = sim_.schedule_every(sim::Time::seconds(1.0 / profile_.fps),
                                [this] { produce(); });
}

void VideoSource::stop() {
    if (!running_) return;
    running_ = false;
    sim_.cancel(task_);
}

void VideoSource::set_profile(VideoProfile profile) {
    if (profile.fps <= 0.0)
        throw std::invalid_argument("VideoSource: fps must be positive");
    const bool fps_changed = profile.fps != profile_.fps;
    profile_ = profile;
    force_keyframe_ = true;
    if (running_ && fps_changed) {
        sim_.cancel(task_);
        task_ = sim_.schedule_every(sim::Time::seconds(1.0 / profile_.fps),
                                    [this] { produce(); });
    }
}

void VideoSource::produce() {
    VideoFrame f;
    f.index = next_index_++;
    f.keyframe = force_keyframe_ || (profile_.keyframe_interval > 0 &&
                                     f.index % profile_.keyframe_interval == 0);
    force_keyframe_ = false;
    f.captured_at = sim_.now();

    // Budget per GOP: keyframe takes `boost` shares, the rest one share each.
    const double gop = static_cast<double>(std::max(1u, profile_.keyframe_interval));
    const double shares = profile_.keyframe_boost + (gop - 1.0);
    const double gop_bytes = profile_.bitrate_bps / 8.0 * gop / profile_.fps;
    const double mean_bytes =
        gop_bytes * (f.keyframe ? profile_.keyframe_boost : 1.0) / shares;
    // Content-dependent dispersion: lognormal around the mean (sigma 0.25).
    const double dispersion = std::exp(rng_.normal(0.0, 0.25));
    f.size_bytes = static_cast<std::size_t>(std::max(64.0, mean_bytes * dispersion));

    emit_(std::move(f));
}

std::vector<VideoPacket> packetize(const VideoFrame& frame) {
    const auto pieces = static_cast<std::uint32_t>(
        (frame.size_bytes + kVideoMtu - 1) / kVideoMtu);
    std::vector<VideoPacket> out;
    out.reserve(pieces);
    std::size_t remaining = frame.size_bytes;
    for (std::uint32_t i = 0; i < pieces; ++i) {
        VideoPacket p;
        p.frame_index = frame.index;
        p.piece = i;
        p.piece_count = pieces;
        p.keyframe = frame.keyframe;
        p.size_bytes = std::min(remaining, kVideoMtu);
        p.captured_at = frame.captured_at;
        remaining -= p.size_bytes;
        out.push_back(p);
    }
    return out;
}

double PlaybackStats::delivered_quality_db(const VideoProfile& p,
                                           double stream_seconds) const {
    const double total = static_cast<double>(frames_complete + frames_missed);
    if (total == 0.0) return 0.0;
    const double complete_ratio = static_cast<double>(frames_complete) / total;
    const double freeze_ratio =
        stream_seconds > 0.0 ? std::min(1.0, freeze_seconds / stream_seconds) : 0.0;
    // Full quality at 100% completion; missed frames and freeze time both
    // drag the effective PSNR down toward the 20 dB floor.
    const double base = encode_psnr_db(p);
    return 20.0 + (base - 20.0) * complete_ratio * (1.0 - 0.5 * freeze_ratio);
}

VideoReceiver::VideoReceiver(sim::Clock& clock, VideoProfile profile,
                             sim::Time playout_delay)
    : sim_(clock), profile_(profile), playout_delay_(playout_delay) {}

void VideoReceiver::ingest(const VideoPacket& packet) {
    auto [it, inserted] = pending_.try_emplace(packet.frame_index);
    Pending& f = it->second;
    if (inserted) {
        f.piece_count = packet.piece_count;
        f.seen.assign(packet.piece_count, false);
        f.captured_at = packet.captured_at;
        f.keyframe = packet.keyframe;
        const std::uint64_t idx = packet.frame_index;
        const sim::Time deadline = packet.captured_at + playout_delay_;
        f.deadline = sim_.schedule_at(std::max(deadline, sim_.now()),
                                      [this, idx] { expire(idx); });
    }
    if (f.done || packet.piece >= f.seen.size() || f.seen[packet.piece]) return;
    f.seen[packet.piece] = true;
    ++f.pieces_seen;
    if (f.pieces_seen == f.piece_count) {
        f.done = true;
        sim_.cancel(f.deadline);
        ++stats_.frames_complete;
        stats_.frame_delay_ms.add((sim_.now() - f.captured_at).to_ms());
        highest_complete_ = std::max(highest_complete_, packet.frame_index);
    }
}

void VideoReceiver::expire(std::uint64_t frame_index) {
    const auto it = pending_.find(frame_index);
    if (it == pending_.end() || it->second.done) return;
    it->second.done = true;
    ++stats_.frames_missed;
    stats_.freeze_seconds += 1.0 / profile_.fps;
}

void VideoReceiver::finish() {
    for (auto& [idx, f] : pending_) {
        if (!f.done) {
            f.done = true;
            sim_.cancel(f.deadline);
            ++stats_.frames_missed;
            stats_.freeze_seconds += 1.0 / profile_.fps;
        }
    }
}

}  // namespace mvc::media
