#include "media/audio.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace mvc::media {

AudioSource::AudioSource(sim::Clock& clock, std::string name, AudioProfile profile,
                         FrameFn emit)
    : sim_(clock),
      name_(std::move(name)),
      profile_(profile),
      emit_(std::move(emit)),
      rng_(clock.rng_stream("audio/" + name_)) {
    if (profile_.frame_duration <= sim::Time::zero())
        throw std::invalid_argument("AudioSource: frame duration must be positive");
    if (!emit_) throw std::invalid_argument("AudioSource: null sink");
}

void AudioSource::set_voice_activity(double p) {
    profile_.voice_activity = std::clamp(p, 0.0, 1.0);
}

void AudioSource::start() {
    if (running_) return;
    running_ = true;
    task_ = sim_.schedule_every(profile_.frame_duration, [this] { produce(); });
}

void AudioSource::stop() {
    if (!running_) return;
    running_ = false;
    sim_.cancel(task_);
}

void AudioSource::produce() {
    AudioFrame f;
    f.index = next_index_++;
    f.captured_at = sim_.now();
    f.voiced = rng_.chance(profile_.voice_activity);
    const double full_bytes =
        profile_.bitrate_bps / 8.0 * profile_.frame_duration.to_seconds();
    f.size_bytes = static_cast<std::size_t>(
        std::max(4.0, f.voiced ? full_bytes : full_bytes / 8.0));
    // Energy-quantized viseme: voiced frames pick one of 14 mouth shapes.
    f.viseme = f.voiced ? static_cast<std::uint8_t>(1 + rng_.index(14)) : 0;
    emit_(std::move(f));
}

void AvSyncTracker::on_audio_played(std::uint64_t /*index*/, sim::Time captured_at,
                                    sim::Time played_at) {
    audio_latency_ms_ = (played_at - captured_at).to_ms();
    have_audio_ = true;
}

void AvSyncTracker::on_video_played(std::uint64_t /*index*/, sim::Time captured_at,
                                    sim::Time played_at) {
    if (!have_audio_) return;
    const double video_latency_ms = (played_at - captured_at).to_ms();
    const double skew = video_latency_ms - audio_latency_ms_;
    skew_ms_.add(skew);
    if (skew > 45.0 || skew < -125.0) ++out_of_tolerance_;
}

double AvSyncTracker::out_of_tolerance_ratio() const {
    if (skew_ms_.empty()) return 0.0;
    return static_cast<double>(out_of_tolerance_) /
           static_cast<double>(skew_ms_.count());
}

}  // namespace mvc::media
