#pragma once
// Classroom audio: Opus-like constant-frame stream plus viseme extraction
// that drives avatar mouths, and an A/V sync tracker (the paper requires
// video frames "transmitted in real-time to match both the avatars' actions
// and the related audio transmission").

#include <cstdint>
#include <functional>
#include <string>

#include "math/stats.hpp"
#include "sim/rng.hpp"
#include "sim/clock.hpp"

namespace mvc::media {

struct AudioProfile {
    double bitrate_bps{24000.0};
    sim::Time frame_duration{sim::Time::ms(20)};
    /// Probability per frame that the speaker is actually talking (voice
    /// activity); silent frames ship as comfort noise at 1/8 size.
    double voice_activity{0.4};
};

struct AudioFrame {
    std::uint64_t index{0};
    std::size_t size_bytes{0};
    bool voiced{false};
    /// Viseme index derived from frame energy (0 = silence, 1..14 mouth shapes).
    std::uint8_t viseme{0};
    sim::Time captured_at{};
};

class AudioSource {
public:
    using FrameFn = std::function<void(AudioFrame&&)>;

    AudioSource(sim::Clock& clock, std::string name, AudioProfile profile, FrameFn emit);

    void start();
    void stop();
    /// Override voice activity (e.g. instructor speaking vs. listening).
    void set_voice_activity(double p);

    [[nodiscard]] const AudioProfile& profile() const { return profile_; }
    [[nodiscard]] std::uint64_t frames_produced() const { return next_index_; }

private:
    sim::Clock& sim_;
    std::string name_;
    AudioProfile profile_;
    FrameFn emit_;
    sim::Rng rng_;
    sim::EventHandle task_;
    bool running_{false};
    std::uint64_t next_index_{0};

    void produce();
};

/// Tracks audio-video skew at the receiver: positive = video lags audio.
/// Lip-sync tolerance per ITU-R BT.1359 is roughly [-125 ms, +45 ms]
/// (audio late vs audio early); we record skews and the out-of-tolerance rate.
class AvSyncTracker {
public:
    void on_audio_played(std::uint64_t index, sim::Time captured_at, sim::Time played_at);
    void on_video_played(std::uint64_t index, sim::Time captured_at, sim::Time played_at);

    [[nodiscard]] const math::SampleSeries& skew_ms() const { return skew_ms_; }
    [[nodiscard]] double out_of_tolerance_ratio() const;

private:
    double audio_latency_ms_{0.0};
    bool have_audio_{false};
    math::SampleSeries skew_ms_;
    std::uint64_t out_of_tolerance_{0};
};

}  // namespace mvc::media
