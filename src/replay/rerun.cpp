#include "replay/rerun.hpp"

#include <algorithm>
#include <utility>
#include <variant>
#include <vector>

#include "common/hash.hpp"
#include "replay/recorder.hpp"
#include "sim/simulator.hpp"
#include "sync/wire.hpp"

namespace mvc::replay {

AvatarMirror::AvatarMirror(avatar::CodecBounds bounds) : codec_(bounds) {}

void AvatarMirror::install(net::Backend& net) {
    chained_ = net.tap();
    net.set_tap(this);
}

void AvatarMirror::on_send(const net::Packet& p, net::Priority priority) {
    if (p.payload.holds<sync::AvatarWire>()) {
        const auto& w = p.payload.get<sync::AvatarWire>();
        apply(w.participant, w.bytes, w.keyframe, w.captured_at.nanos());
    } else if (p.payload.holds<sync::AvatarBatchWire>()) {
        for (const sync::AvatarWire& w : p.payload.get<sync::AvatarBatchWire>().updates)
            apply(w.participant, w.bytes, w.keyframe, w.captured_at.nanos());
    }
    if (chained_ != nullptr) chained_->on_send(p, priority);
}

void AvatarMirror::ingest(const AvatarUpdate& update) {
    apply(ParticipantId{update.participant}, update.bytes, update.keyframe,
          update.captured_ns);
}

void AvatarMirror::apply(ParticipantId who, std::span<const std::uint8_t> bytes,
                         bool keyframe, std::int64_t captured_ns) {
    Remote& r = remotes_[who];
    if (r.replica == nullptr)
        r.replica = std::make_unique<sync::AvatarReplica>(codec_);
    // Feed the capture timestamp as the arrival instant: it is the one clock
    // reading carried verbatim inside the update, so the tap path (real
    // wire) and the trace path (re-run) hand the replica identical inputs.
    r.replica->ingest(bytes, keyframe, sim::Time::ns(captured_ns));
    r.last_captured_ns = std::max(r.last_captured_ns, captured_ns);
    ++updates_;
}

std::uint64_t AvatarMirror::state_hash() const {
    common::Hash64 h;
    h.size(remotes_.size());
    h.u64(updates_);
    for (const auto& [who, remote] : remotes_) {
        h.u32(who.value());
        h.i64(remote.last_captured_ns);
        h.u64(remote.replica->state_digest());
    }
    return h.digest();
}

RerunResult replay_in_sim(const Trace& recorded, avatar::CodecBounds bounds) {
    sim::Simulator sim{recorded.seed()};
    AvatarMirror mirror{bounds};
    MemorySink sink;
    Recorder rec{sink, recorded.seed(), recorded.stamp(), recorded.started_ns()};
    RerunResult out;

    // Record order is the ground truth (on a real wire it is the kernel's
    // delivery order), so timestamps are clamped monotonic before scheduling:
    // the simulator then executes the stream in exactly recorded order, with
    // FIFO tie-break covering equal instants.
    std::int64_t last_ns = 0;
    Trace::Cursor c = recorded.cursor();
    Record r;
    while (c.next(r)) {
        if (const auto* w = std::get_if<WireRecord>(&r)) {
            ++out.wire_records;
            out.avatar_updates += w->avatars.size();
            last_ns = std::max(last_ns, w->t_ns);
            if (w->avatars.empty()) continue;
            sim.schedule_at(sim::Time::ns(last_ns),
                            [&mirror, avatars = w->avatars] {
                                for (const AvatarUpdate& u : avatars) mirror.ingest(u);
                            });
        } else if (const auto* h = std::get_if<HashRecord>(&r)) {
            ++out.hash_records;
            last_ns = std::max(last_ns, h->t_ns);
            const std::uint32_t subject = rec.subject(recorded.subject_name(h->subject));
            sim.schedule_at(sim::Time::ns(last_ns),
                            [&mirror, &rec, subject, epoch = h->epoch, t = h->t_ns] {
                                rec.record_hash(epoch, subject, mirror.state_hash(),
                                                sim::Time::ns(t));
                            });
        }
    }
    sim.run_all();
    rec.finish();
    const Trace rerun = Trace::parse(sink.take());
    out.divergence = diff_state_hashes(recorded, rerun);
    return out;
}

}  // namespace mvc::replay
