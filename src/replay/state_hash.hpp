#pragma once
// Cheap whole-simulation digest recorded once per epoch: event-loop progress
// plus the full counter map and a fingerprint of every sample series. Two
// deterministic runs produce identical digests at every epoch; the first
// differing digest localizes a divergence to an epoch (and, with per-node
// subjects, to a node) instead of a bare end-of-run mismatch.

#include <cstdint>

namespace mvc::net {
class Network;
}
namespace mvc::sim {
class Simulator;
}

namespace mvc::replay {

/// Digest of one shard's simulator + network at its current instant. Cost is
/// O(metrics), not O(samples): each series contributes its count and the bit
/// pattern of its last sample — enough to catch any divergence on the next
/// epoch after it happens, since counts advance monotonically.
[[nodiscard]] std::uint64_t simulation_hash(const sim::Simulator& sim,
                                            const net::Network& net);

}  // namespace mvc::replay
