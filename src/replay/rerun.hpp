#pragma once
// The correctness bridge between the real UDP transport and the simulator.
//
// A run over RealUdpBackend records its ingress packet stream (the kernel's
// delivery order is the ground truth) plus periodic state hashes of an
// AvatarMirror — a passive observer that reconstructs every participant's
// avatar from the payloads crossing the wire. replay_in_sim() then re-drives
// the recorded packet stream through a fresh discrete-event Simulator,
// rebuilding a second mirror and a second trace with the same seed and
// stamp, and diffs the two hash sequences with the replay divergence
// checker. Bit-exact agreement means the wire format, the recorder, and the
// avatar codec round-trip losslessly between wall-clock and virtual time;
// the first differing epoch localizes any regression.

#include <cstdint>
#include <map>
#include <memory>

#include "avatar/codec.hpp"
#include "common/ids.hpp"
#include "net/backend.hpp"
#include "replay/divergence.hpp"
#include "replay/trace.hpp"
#include "sync/replication.hpp"

namespace mvc::replay {

/// Passive avatar-state observer: install as a backend's packet tap (it
/// chains to whatever tap was installed before it, so it stacks with the
/// Recorder) and it reconstructs a replica per participant from every
/// AvatarWire / AvatarBatchWire payload it sees. state_hash() digests the
/// reconstruction deterministically — the same update sequence produces the
/// same hash whether the packets crossed a real socket or a simulated link.
class AvatarMirror final : public net::PacketTap {
public:
    explicit AvatarMirror(avatar::CodecBounds bounds = {});

    /// Become `net`'s tap, forwarding to the previously installed tap (if
    /// any) after mirroring. Install *after* the Recorder so the recorder
    /// still sees every packet.
    void install(net::Backend& net);

    void on_send(const net::Packet& p, net::Priority priority) override;

    /// Trace-record ingest path used by replay_in_sim: apply one captured
    /// update exactly as the tap path would have.
    void ingest(const AvatarUpdate& update);

    /// Order-sensitive digest over all replicas (participants visited in id
    /// order; each contributes its decode counters and reference state).
    [[nodiscard]] std::uint64_t state_hash() const;

    [[nodiscard]] std::uint64_t updates() const { return updates_; }
    [[nodiscard]] std::size_t participant_count() const { return remotes_.size(); }

private:
    void apply(ParticipantId who, std::span<const std::uint8_t> bytes, bool keyframe,
               std::int64_t captured_ns);

    struct Remote {
        std::unique_ptr<sync::AvatarReplica> replica;
        std::int64_t last_captured_ns{-1};
    };

    avatar::AvatarCodec codec_;
    std::map<ParticipantId, Remote> remotes_;
    net::PacketTap* chained_{nullptr};
    std::uint64_t updates_{0};
};

struct RerunResult {
    Divergence divergence;
    std::uint64_t wire_records{0};
    std::uint64_t avatar_updates{0};
    std::uint64_t hash_records{0};
};

/// Re-drive `recorded` through a fresh Simulator: every Wire record is
/// scheduled at its recorded timestamp and fed to a new AvatarMirror; every
/// StateHash record re-hashes the mirror at that instant into a second trace
/// (same seed, stamp, and epoch subjects). Returns the divergence report
/// between the recorded and re-run hash sequences — `diverged == false` is
/// the bit-exact acceptance gate for the real transport.
[[nodiscard]] RerunResult replay_in_sim(const Trace& recorded,
                                        avatar::CodecBounds bounds = {});

}  // namespace mvc::replay
