#pragma once
// Lecture playback from a trace alone — the "recorded lecture for absent
// students" workload. The replayer owns a fresh sync::AvatarReplica per
// participant and feeds it the captured avatar payloads in record order, at
// any speed (0 = as fast as possible, 1 = realtime, 4 = 4x, ...). No
// simulator, no network: the trace carries everything.
//
// Seek rides the recovery layer's checkpoints: each trace Checkpoint record
// is a ClassroomCheckpoint whose ReplicaRecords hold full reference states.
// seek(t) restores the newest checkpoints at or before t as keyframes, then
// fast-forwards the remaining records up to t. Exactly like crash recovery,
// a restored reference re-anchors delta decoding — replicas converge to the
// straight-play state at the next keyframe, and per-update capture
// timestamps make replayed duplicates (fan-out copies of one update) and
// already-applied history idempotent to ingest.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "avatar/codec.hpp"
#include "common/ids.hpp"
#include "replay/trace.hpp"
#include "sim/time.hpp"
#include "sync/replication.hpp"

namespace mvc::replay {

struct PlaybackStats {
    std::uint64_t records{0};         ///< all records processed (any kind)
    std::uint64_t wire_packets{0};
    std::uint64_t wire_bytes{0};      ///< payload + header bytes replayed
    std::uint64_t avatar_updates{0};  ///< ingested into replicas
    std::uint64_t keyframes{0};
    std::uint64_t stale_skipped{0};   ///< dedupe: capture older than applied
    std::uint64_t checkpoints_applied{0};
    std::uint64_t seeks{0};
    /// Wall seconds spent sleeping for pacing (0 when speed == 0).
    double paced_wall_seconds{0.0};
};

class Replayer {
public:
    /// `bounds` must match the codec bounds of the recorded run (the
    /// classroom default unless the scenario overrides them).
    explicit Replayer(const Trace& trace, avatar::CodecBounds bounds = {});

    /// Process records with t <= until, starting after position(). `speed`
    /// is the sim-time-to-wall-time ratio; 0 plays as fast as possible.
    void play_until(sim::Time until, double speed = 0.0);
    void play_all(double speed = 0.0);

    /// Checkpoint-indexed jump; returns the new position. Seeking backwards
    /// rewinds first. Replica state converges to straight-play state after
    /// the next keyframe (same contract as crash recovery).
    sim::Time seek(sim::Time target);

    /// Reset to the start of the trace (fresh replicas, stats kept).
    void rewind();

    [[nodiscard]] sim::Time position() const { return position_; }
    [[nodiscard]] sim::Time end() const { return sim::Time::ns(trace_.last_t_ns()); }

    [[nodiscard]] std::vector<ParticipantId> participants() const;
    /// Freshest reconstructed state for one participant.
    [[nodiscard]] std::optional<avatar::AvatarState> latest(ParticipantId p) const;

    [[nodiscard]] const PlaybackStats& stats() const { return stats_; }
    [[nodiscard]] const Trace& trace() const { return trace_; }

private:
    struct Remote {
        std::unique_ptr<sync::AvatarReplica> replica;
        std::int64_t last_captured_ns{-1};
    };

    Remote& remote(ParticipantId p);
    void apply_wire(const WireRecord& w);
    void apply_checkpoint(const CheckpointRecord& c);

    const Trace& trace_;
    avatar::AvatarCodec codec_;
    Trace::Cursor cursor_;
    /// Decoded-but-not-yet-due record lookahead (cursor reads one past).
    std::optional<Record> pending_;
    sim::Time position_{};
    std::map<ParticipantId, Remote> remotes_;
    PlaybackStats stats_;
};

}  // namespace mvc::replay
