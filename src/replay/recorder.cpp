#include "replay/recorder.hpp"

#include <utility>

#include "recovery/store.hpp"
#include "replay/varint.hpp"
#include "sim/simulator.hpp"
#include "sync/wire.hpp"

namespace mvc::replay {

namespace {
constexpr std::uint8_t kWireHasAvatars = 0x01;

void encode_avatar_update(std::vector<std::uint8_t>& buf, const sync::AvatarWire& w) {
    detail::put_varint(buf, w.participant.value());
    detail::put_varint(buf, w.source_room.value());
    detail::put_u8(buf, w.keyframe ? 1 : 0);
    detail::put_time(buf, w.captured_at.nanos());
    detail::put_varint(buf, w.bytes.size());
    detail::put_bytes(buf, w.bytes);
}
}  // namespace

Recorder::Recorder(TraceSink& sink, std::uint64_t seed, std::string_view stamp,
                   std::int64_t started_ns, RecorderOptions options)
    : options_(options),
      writer_(sink, seed, stamp, started_ns, TraceWriterOptions{options.chunk_bytes}) {
    scratch_.reserve(4 * 1024);
}

Recorder::~Recorder() { finish(); }

Recorder::ShardState& Recorder::shard_state(std::uint32_t shard) {
    while (shards_.size() <= shard) {
        auto s = std::make_unique<ShardState>();
        s->buf.reserve(options_.stage_reserve_bytes);
        shards_.push_back(std::move(s));
    }
    return *shards_[shard];
}

void Recorder::attach(net::Backend& net, std::uint32_t shard) {
    ShardState& s = shard_state(shard);
    s.net = &net;
    s.tap = std::make_unique<ShardTap>(*this, shard);
    net.set_tap(s.tap.get());
    // Name table for dump tooling: nodes present at attach time. (Nodes
    // added later still record — they just dump as "?".)
    scratch_.clear();
    std::size_t defs = 0;
    for (net::NodeId id = 1; id <= net.node_count(); ++id) {
        encode_record(scratch_, NodeDef{shard, id, net.name_of(id)});
        ++defs;
    }
    if (defs == 0) return;
    try {
        writer_.append(scratch_, defs, 0, false);
    } catch (const std::exception& e) {
        fail(e.what());
    }
}

std::uint32_t Recorder::subject(std::string_view name) {
    const auto it = subjects_.find(name);
    if (it != subjects_.end()) return it->second;
    const std::uint32_t id = next_subject_id_++;
    subjects_.emplace(std::string{name}, id);
    scratch_.clear();
    encode_record(scratch_, SubjectDef{id, std::string{name}});
    try {
        writer_.append(scratch_, 1, 0, false);
    } catch (const std::exception& e) {
        fail(e.what());
    }
    return id;
}

std::uint32_t Recorder::intern_flow(std::uint32_t shard, ShardState& s,
                                    const std::string& name) {
    const auto it = s.flow_ids.find(name);
    if (it != s.flow_ids.end()) return it->second;
    // First sighting on this shard: allocate a shard-scoped id and stage
    // the definition ahead of the record that references it.
    const std::uint32_t id = (shard << 16) | s.next_flow++;
    s.flow_ids.emplace(name, id);
    detail::put_u8(s.buf, static_cast<std::uint8_t>(RecordKind::FlowDef));
    detail::put_varint(s.buf, id);
    detail::put_varint(s.buf, name.size());
    detail::put_bytes(s.buf,
                      {reinterpret_cast<const std::uint8_t*>(name.data()), name.size()});
    ++s.records;
    return id;
}

void Recorder::tap_packet(std::uint32_t shard, const net::Packet& p,
                          net::Priority priority) {
    if (!ok_ || finished_) return;
    ShardState& s = *shards_[shard];
    const std::int64_t t = p.sent_at.nanos();
    if (s.records == 0) s.first_t = t;
    const std::uint32_t flow_id = intern_flow(shard, s, p.flow);

    std::vector<std::uint8_t>& buf = s.buf;
    detail::put_u8(buf, static_cast<std::uint8_t>(RecordKind::Wire));
    detail::put_time(buf, t);
    detail::put_varint(buf, shard);
    detail::put_varint(buf, flow_id);
    detail::put_varint(buf, p.src);
    detail::put_varint(buf, p.dst);
    detail::put_varint(buf, p.size_bytes);
    detail::put_u8(buf, static_cast<std::uint8_t>(priority));

    const sync::AvatarWire* one = nullptr;
    const sync::AvatarBatchWire* batch = nullptr;
    if (options_.capture_payloads) {
        if (p.payload.holds<sync::AvatarWire>()) {
            one = &p.payload.get<sync::AvatarWire>();
        } else if (p.payload.holds<sync::AvatarBatchWire>()) {
            batch = &p.payload.get<sync::AvatarBatchWire>();
        }
    }
    if (one != nullptr) {
        detail::put_u8(buf, kWireHasAvatars);
        detail::put_varint(buf, 1);
        encode_avatar_update(buf, *one);
        ++s.avatar_updates;
    } else if (batch != nullptr) {
        detail::put_u8(buf, kWireHasAvatars);
        detail::put_varint(buf, batch->updates.size());
        for (const sync::AvatarWire& u : batch->updates) encode_avatar_update(buf, u);
        s.avatar_updates += batch->updates.size();
    } else {
        detail::put_u8(buf, 0);
    }
    ++s.records;
    ++s.wire_records;
}

void Recorder::record_hash(std::uint64_t epoch, std::uint32_t subject, std::uint64_t hash,
                           sim::Time at) {
    if (!ok_ || finished_) return;
    scratch_.clear();
    encode_record(scratch_, HashRecord{at.nanos(), epoch, subject, hash});
    try {
        writer_.append(scratch_, 1, at.nanos(), false);
        ++hashes_;
    } catch (const std::exception& e) {
        fail(e.what());
    }
}

void Recorder::record_checkpoint(const std::string& owner,
                                 std::span<const std::uint8_t> bytes, sim::Time at) {
    if (!ok_ || finished_) return;
    // Stage into shard 0 so the keyframe lands between the wire records it
    // sits between in time (checkpoints come from the single-sim classroom).
    ShardState& s = shard_state(0);
    if (s.records == 0) s.first_t = at.nanos();
    detail::put_u8(s.buf, static_cast<std::uint8_t>(RecordKind::Checkpoint));
    detail::put_time(s.buf, at.nanos());
    detail::put_varint(s.buf, owner.size());
    detail::put_bytes(s.buf,
                      {reinterpret_cast<const std::uint8_t*>(owner.data()), owner.size()});
    detail::put_varint(s.buf, bytes.size());
    detail::put_bytes(s.buf, bytes);
    ++s.records;
    s.has_checkpoint = true;
    ++checkpoints_;
}

void Recorder::observe_store(recovery::CheckpointStore& store, const sim::Simulator& sim) {
    observed_stores_.push_back(&store);
    store.set_observer(
        [this, &sim](const std::string& owner, const std::vector<std::uint8_t>& bytes) {
            record_checkpoint(owner, bytes, sim.now());
        });
}

void Recorder::drain(std::uint32_t shard) {
    if (shard >= shards_.size()) return;
    ShardState& s = *shards_[shard];
    if (s.records == 0) return;
    if (ok_ && !finished_) {
        try {
            writer_.append(s.buf, s.records, s.first_t, s.has_checkpoint);
        } catch (const std::exception& e) {
            fail(e.what());
        }
    }
    s.buf.clear();  // capacity retained
    s.records = 0;
    s.first_t = 0;
    s.has_checkpoint = false;
}

void Recorder::drain_all() {
    for (std::uint32_t i = 0; i < shards_.size(); ++i) drain(i);
}

void Recorder::finish() {
    if (finished_) return;
    drain_all();
    for (auto& s : shards_) {
        if (s->net != nullptr && s->net->tap() == s->tap.get()) s->net->set_tap(nullptr);
    }
    for (recovery::CheckpointStore* store : observed_stores_) store->set_observer(nullptr);
    observed_stores_.clear();
    if (ok_) {
        try {
            writer_.finish();
        } catch (const std::exception& e) {
            fail(e.what());
        }
    }
    finished_ = true;
}

void Recorder::fail(const char* what) {
    if (!ok_) return;
    ok_ = false;
    error_ = what;
}

std::uint64_t Recorder::wire_records() const {
    std::uint64_t total = 0;
    for (const auto& s : shards_) total += s->wire_records;
    return total;
}

std::uint64_t Recorder::avatar_updates() const {
    std::uint64_t total = 0;
    for (const auto& s : shards_) total += s->avatar_updates;
    return total;
}

}  // namespace mvc::replay
