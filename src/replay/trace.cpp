#include "replay/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "recovery/checkpoint.hpp"  // crc32
#include "replay/varint.hpp"

namespace mvc::replay {

namespace {

// Wire flag bits (WireRecord encoding).
constexpr std::uint8_t kWireHasAvatars = 0x01;

// Fixed chunk header size: magic + payload_len + records + first_t + flags + crc.
constexpr std::size_t kChunkHeaderBytes = 4 + 4 + 4 + 8 + 1 + 4;

void encode_avatar(std::vector<std::uint8_t>& out, const AvatarUpdate& u) {
    detail::put_varint(out, u.participant);
    detail::put_varint(out, u.room);
    detail::put_u8(out, u.keyframe ? 1 : 0);
    detail::put_time(out, u.captured_ns);
    detail::put_varint(out, u.bytes.size());
    detail::put_bytes(out, u.bytes);
}

AvatarUpdate decode_avatar(detail::Reader& r) {
    AvatarUpdate u;
    u.participant = r.varint32();
    u.room = r.varint32();
    u.keyframe = r.u8() != 0;
    u.captured_ns = r.time();
    const std::size_t len = r.varint();
    const auto b = r.bytes(len);
    u.bytes.assign(b.begin(), b.end());
    return u;
}

Record decode_record(detail::Reader& r) {
    const auto kind = static_cast<RecordKind>(r.u8());
    switch (kind) {
        case RecordKind::FlowDef: {
            FlowDef d;
            d.id = r.varint32();
            d.name = r.str(r.varint());
            return d;
        }
        case RecordKind::NodeDef: {
            NodeDef d;
            d.shard = r.varint32();
            d.node = r.varint32();
            d.name = r.str(r.varint());
            return d;
        }
        case RecordKind::SubjectDef: {
            SubjectDef d;
            d.id = r.varint32();
            d.name = r.str(r.varint());
            return d;
        }
        case RecordKind::Wire: {
            WireRecord w;
            w.t_ns = r.time();
            w.shard = r.varint32();
            w.flow = r.varint32();
            w.src = r.varint32();
            w.dst = r.varint32();
            w.size_bytes = r.varint();
            w.priority = r.u8();
            const std::uint8_t flags = r.u8();
            if ((flags & kWireHasAvatars) != 0) {
                const std::size_t n = r.varint();
                w.avatars.reserve(n);
                for (std::size_t i = 0; i < n; ++i) w.avatars.push_back(decode_avatar(r));
            }
            return w;
        }
        case RecordKind::StateHash: {
            HashRecord h;
            h.t_ns = r.time();
            h.epoch = r.varint();
            h.subject = r.varint32();
            h.hash = r.u64();
            return h;
        }
        case RecordKind::Checkpoint: {
            CheckpointRecord c;
            c.t_ns = r.time();
            c.owner = r.str(r.varint());
            const std::size_t len = r.varint();
            const auto b = r.bytes(len);
            c.bytes.assign(b.begin(), b.end());
            return c;
        }
    }
    throw TraceError("trace: unknown record kind");
}

/// Timestamp of a record; nullopt for definition records.
std::optional<std::int64_t> record_time(const Record& r) {
    if (const auto* w = std::get_if<WireRecord>(&r)) return w->t_ns;
    if (const auto* h = std::get_if<HashRecord>(&r)) return h->t_ns;
    if (const auto* c = std::get_if<CheckpointRecord>(&r)) return c->t_ns;
    return std::nullopt;
}

/// Shared tolerant scan behind parse() and verify(). Fills `out` (when
/// non-null) with everything a Trace needs; never throws.
struct Scan {
    TraceCheck check;
    std::uint16_t version{0};
    std::uint64_t seed{0};
    std::string stamp;
    std::int64_t started_ns{0};
    std::vector<ChunkInfo> chunks;
    std::vector<CheckpointRef> checkpoints;
    std::map<std::uint32_t, std::string> flow_names;
    std::map<std::uint32_t, std::string> subject_names;
    std::map<std::uint64_t, std::string> node_names;
};

Scan scan_trace(std::span<const std::uint8_t> bytes) {
    Scan s;
    detail::Reader r{bytes};
    try {
        if (r.u32() != kTraceMagic) {
            s.check.error = "bad trace magic";
            return s;
        }
        s.version = r.u16();
        if (s.version != kTraceVersion) {
            s.check.error = "unsupported trace version " + std::to_string(s.version);
            return s;
        }
        s.seed = r.u64();
        s.started_ns = r.i64();
        s.stamp = r.str(r.varint());
        const std::size_t crc_at = r.pos();
        if (r.u32() != recovery::crc32(bytes.first(crc_at))) {
            s.check.error = "trace header CRC mismatch";
            return s;
        }
    } catch (const TraceError&) {
        s.check.error = "truncated trace header";
        return s;
    }
    s.check.valid_bytes = r.pos();

    while (!r.done()) {
        const std::size_t chunk_start = r.pos();
        ChunkInfo info;
        std::uint32_t crc = 0;
        try {
            if (r.remaining() < kChunkHeaderBytes) throw TraceError("short chunk header");
            if (r.u32() != kChunkMagic) {
                s.check.error = "bad chunk magic at offset " + std::to_string(s.check.valid_bytes);
                return s;
            }
            info.payload_len = r.u32();
            info.records = r.u32();
            info.first_t_ns = r.i64();
            info.flags = r.u8();
            crc = r.u32();
            info.payload_offset = r.pos();
            if (info.payload_len > r.remaining()) throw TraceError("truncated chunk payload");
        } catch (const TraceError&) {
            s.check.error = "truncated chunk at offset " + std::to_string(s.check.valid_bytes);
            return s;
        }
        const std::span<const std::uint8_t> payload =
            bytes.subspan(info.payload_offset, info.payload_len);
        // CRC covers the header fields (through flags) and the payload, so a
        // flipped first_t/flags byte is caught, not just payload damage.
        const std::uint32_t want = recovery::crc32(
            payload, recovery::crc32(bytes.subspan(chunk_start, kChunkHeaderBytes - 4)));
        if (want != crc) {
            s.check.error = "chunk CRC mismatch at offset " + std::to_string(s.check.valid_bytes);
            return s;
        }
        // Decode every record: validates the payload and builds the tables
        // and the checkpoint seek index in one pass.
        detail::Reader pr{payload};
        std::uint32_t decoded = 0;
        try {
            while (!pr.done()) {
                Record rec = decode_record(pr);
                ++decoded;
                if (const auto t = record_time(rec))
                    s.check.last_t_ns = std::max(s.check.last_t_ns, *t);
                if (auto* f = std::get_if<FlowDef>(&rec)) {
                    s.flow_names[f->id] = std::move(f->name);
                } else if (auto* n = std::get_if<NodeDef>(&rec)) {
                    s.node_names[(static_cast<std::uint64_t>(n->shard) << 32) | n->node] =
                        std::move(n->name);
                } else if (auto* sub = std::get_if<SubjectDef>(&rec)) {
                    s.subject_names[sub->id] = std::move(sub->name);
                } else if (const auto* c = std::get_if<CheckpointRecord>(&rec)) {
                    s.checkpoints.push_back(CheckpointRef{c->t_ns, s.chunks.size()});
                }
            }
        } catch (const TraceError& e) {
            s.check.error = std::string{"chunk payload decode failed: "} + e.what();
            return s;
        }
        if (decoded != info.records) {
            s.check.error = "chunk record count mismatch (header says " +
                            std::to_string(info.records) + ", decoded " +
                            std::to_string(decoded) + ")";
            return s;
        }
        (void)r.bytes(info.payload_len);  // consume
        s.chunks.push_back(info);
        ++s.check.chunks;
        s.check.records += decoded;
        s.check.valid_bytes = r.pos();
    }
    s.check.ok = true;
    return s;
}

}  // namespace

// ------------------------------------------------------------ encode_record

void encode_record(std::vector<std::uint8_t>& out, const Record& r) {
    std::visit(
        [&out](const auto& rec) {
            using T = std::decay_t<decltype(rec)>;
            if constexpr (std::is_same_v<T, FlowDef>) {
                detail::put_u8(out, static_cast<std::uint8_t>(RecordKind::FlowDef));
                detail::put_varint(out, rec.id);
                detail::put_varint(out, rec.name.size());
                detail::put_bytes(out, {reinterpret_cast<const std::uint8_t*>(rec.name.data()),
                                        rec.name.size()});
            } else if constexpr (std::is_same_v<T, NodeDef>) {
                detail::put_u8(out, static_cast<std::uint8_t>(RecordKind::NodeDef));
                detail::put_varint(out, rec.shard);
                detail::put_varint(out, rec.node);
                detail::put_varint(out, rec.name.size());
                detail::put_bytes(out, {reinterpret_cast<const std::uint8_t*>(rec.name.data()),
                                        rec.name.size()});
            } else if constexpr (std::is_same_v<T, SubjectDef>) {
                detail::put_u8(out, static_cast<std::uint8_t>(RecordKind::SubjectDef));
                detail::put_varint(out, rec.id);
                detail::put_varint(out, rec.name.size());
                detail::put_bytes(out, {reinterpret_cast<const std::uint8_t*>(rec.name.data()),
                                        rec.name.size()});
            } else if constexpr (std::is_same_v<T, WireRecord>) {
                detail::put_u8(out, static_cast<std::uint8_t>(RecordKind::Wire));
                detail::put_time(out, rec.t_ns);
                detail::put_varint(out, rec.shard);
                detail::put_varint(out, rec.flow);
                detail::put_varint(out, rec.src);
                detail::put_varint(out, rec.dst);
                detail::put_varint(out, rec.size_bytes);
                detail::put_u8(out, rec.priority);
                detail::put_u8(out, rec.avatars.empty() ? 0 : kWireHasAvatars);
                if (!rec.avatars.empty()) {
                    detail::put_varint(out, rec.avatars.size());
                    for (const AvatarUpdate& u : rec.avatars) encode_avatar(out, u);
                }
            } else if constexpr (std::is_same_v<T, HashRecord>) {
                detail::put_u8(out, static_cast<std::uint8_t>(RecordKind::StateHash));
                detail::put_time(out, rec.t_ns);
                detail::put_varint(out, rec.epoch);
                detail::put_varint(out, rec.subject);
                detail::put_u64(out, rec.hash);
            } else if constexpr (std::is_same_v<T, CheckpointRecord>) {
                detail::put_u8(out, static_cast<std::uint8_t>(RecordKind::Checkpoint));
                detail::put_time(out, rec.t_ns);
                detail::put_varint(out, rec.owner.size());
                detail::put_bytes(out, {reinterpret_cast<const std::uint8_t*>(rec.owner.data()),
                                        rec.owner.size()});
                detail::put_varint(out, rec.bytes.size());
                detail::put_bytes(out, rec.bytes);
            }
        },
        r);
}

// -------------------------------------------------------------------- sinks

FileSink::FileSink(const std::string& path) : file_(std::fopen(path.c_str(), "wb")) {
    if (file_ == nullptr) throw TraceError("trace: cannot open " + path + " for writing");
}

FileSink::~FileSink() {
    if (file_ != nullptr) std::fclose(file_);
}

void FileSink::write(const void* data, std::size_t n) {
    if (std::fwrite(data, 1, n, file_) != n) throw TraceError("trace: short write");
}

void FileSink::flush() {
    if (std::fflush(file_) != 0) throw TraceError("trace: flush failed");
}

void MemorySink::write(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + n);
}

// ------------------------------------------------------------------- writer

TraceWriter::TraceWriter(TraceSink& sink, std::uint64_t seed, std::string_view stamp,
                         std::int64_t started_ns, TraceWriterOptions options)
    : sink_(sink), options_(options) {
    std::vector<std::uint8_t> header;
    detail::put_u32(header, kTraceMagic);
    detail::put_u16(header, kTraceVersion);
    detail::put_u64(header, seed);
    detail::put_i64(header, started_ns);
    detail::put_varint(header, stamp.size());
    detail::put_bytes(header,
                      {reinterpret_cast<const std::uint8_t*>(stamp.data()), stamp.size()});
    detail::put_u32(header, recovery::crc32(header));
    sink_.write(header.data(), header.size());
    bytes_written_ += header.size();
    pending_.reserve(options_.chunk_bytes + options_.chunk_bytes / 4);
    chunk_header_.reserve(kChunkHeaderBytes);
}

void TraceWriter::append(std::span<const std::uint8_t> encoded, std::size_t record_count,
                         std::int64_t first_t_ns, bool has_checkpoint) {
    if (finished_) throw TraceError("trace: append after finish");
    if (record_count == 0) return;
    if (pending_records_ == 0) pending_first_t_ = first_t_ns;
    pending_has_checkpoint_ = pending_has_checkpoint_ || has_checkpoint;
    pending_.insert(pending_.end(), encoded.begin(), encoded.end());
    pending_records_ += record_count;
    records_written_ += record_count;
    if (pending_.size() >= options_.chunk_bytes) emit_chunk();
}

void TraceWriter::emit_chunk() {
    if (pending_records_ == 0) return;
    chunk_header_.clear();
    detail::put_u32(chunk_header_, kChunkMagic);
    detail::put_u32(chunk_header_, static_cast<std::uint32_t>(pending_.size()));
    detail::put_u32(chunk_header_, static_cast<std::uint32_t>(pending_records_));
    detail::put_i64(chunk_header_, pending_first_t_);
    detail::put_u8(chunk_header_, pending_has_checkpoint_ ? kChunkHasCheckpoint : 0);
    detail::put_u32(chunk_header_,
                    recovery::crc32(pending_, recovery::crc32(chunk_header_)));
    sink_.write(chunk_header_.data(), chunk_header_.size());
    sink_.write(pending_.data(), pending_.size());
    bytes_written_ += chunk_header_.size() + pending_.size();
    ++chunks_written_;
    pending_.clear();  // capacity retained
    pending_records_ = 0;
    pending_first_t_ = 0;
    pending_has_checkpoint_ = false;
}

void TraceWriter::finish() {
    if (finished_) return;
    emit_chunk();
    sink_.flush();
    finished_ = true;
}

// ------------------------------------------------------------------- reader

Trace Trace::parse(std::vector<std::uint8_t> bytes) {
    Scan s = scan_trace(bytes);
    if (!s.check.ok) throw TraceError("trace: " + s.check.error);
    Trace t;
    t.bytes_ = std::move(bytes);
    t.version_ = s.version;
    t.seed_ = s.seed;
    t.stamp_ = std::move(s.stamp);
    t.started_ns_ = s.started_ns;
    t.chunks_ = std::move(s.chunks);
    t.checkpoint_index_ = std::move(s.checkpoints);
    t.record_count_ = s.check.records;
    t.last_t_ns_ = s.check.last_t_ns;
    t.flow_names_ = std::move(s.flow_names);
    t.subject_names_ = std::move(s.subject_names);
    t.node_names_ = std::move(s.node_names);
    return t;
}

Trace Trace::load(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) throw TraceError("trace: cannot open " + path);
    std::vector<std::uint8_t> bytes;
    std::uint8_t buf[64 * 1024];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) bytes.insert(bytes.end(), buf, buf + n);
    const bool err = std::ferror(f) != 0;
    std::fclose(f);
    if (err) throw TraceError("trace: read failed for " + path);
    return parse(std::move(bytes));
}

TraceCheck Trace::verify(std::span<const std::uint8_t> bytes) {
    return scan_trace(bytes).check;
}

const std::string& Trace::flow_name(std::uint32_t id) const {
    static const std::string kUnknown = "?";
    const auto it = flow_names_.find(id);
    return it == flow_names_.end() ? kUnknown : it->second;
}

const std::string& Trace::subject_name(std::uint32_t id) const {
    static const std::string kUnknown = "?";
    const auto it = subject_names_.find(id);
    return it == subject_names_.end() ? kUnknown : it->second;
}

const std::string& Trace::node_name(std::uint32_t shard, std::uint32_t node) const {
    static const std::string kUnknown = "?";
    const auto it = node_names_.find((static_cast<std::uint64_t>(shard) << 32) | node);
    return it == node_names_.end() ? kUnknown : it->second;
}

bool Trace::Cursor::next(Record& out) {
    while (chunk_ < trace_->chunks_.size()) {
        const ChunkInfo& info = trace_->chunks_[chunk_];
        if (pos_ >= info.payload_len) {
            ++chunk_;
            pos_ = 0;
            continue;
        }
        const std::span<const std::uint8_t> payload{
            trace_->bytes_.data() + info.payload_offset + pos_, info.payload_len - pos_};
        detail::Reader r{payload};
        out = decode_record(r);
        pos_ += r.pos();
        return true;
    }
    return false;
}

void Trace::each_record(std::size_t chunk,
                        const std::function<void(const Record&)>& fn) const {
    if (chunk >= chunks_.size()) return;
    const ChunkInfo& info = chunks_[chunk];
    detail::Reader r{{bytes_.data() + info.payload_offset, info.payload_len}};
    while (!r.done()) fn(decode_record(r));
}

// ----------------------------------------------------------------- truncate

std::vector<std::uint8_t> truncate_trace(const Trace& trace, std::int64_t keep_until_ns) {
    MemorySink sink;
    TraceWriter writer{sink, trace.seed(), trace.stamp(), trace.started_ns()};
    Trace::Cursor c = trace.cursor();
    Record rec;
    std::vector<std::uint8_t> scratch;
    while (c.next(rec)) {
        const auto t = record_time(rec);
        if (t.has_value() && *t > keep_until_ns) continue;
        scratch.clear();
        encode_record(scratch, rec);
        writer.append(scratch, 1, t.value_or(0), std::holds_alternative<CheckpointRecord>(rec));
    }
    writer.finish();
    return sink.take();
}

}  // namespace mvc::replay
