#include "replay/replayer.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "net/packet.hpp"  // kHeaderBytes
#include "recovery/checkpoint.hpp"

namespace mvc::replay {

namespace {
std::optional<std::int64_t> record_t(const Record& r) {
    if (const auto* w = std::get_if<WireRecord>(&r)) return w->t_ns;
    if (const auto* h = std::get_if<HashRecord>(&r)) return h->t_ns;
    if (const auto* c = std::get_if<CheckpointRecord>(&r)) return c->t_ns;
    return std::nullopt;
}
}  // namespace

Replayer::Replayer(const Trace& trace, avatar::CodecBounds bounds)
    : trace_(trace), codec_(bounds, {}), cursor_(trace.cursor()) {}

Replayer::Remote& Replayer::remote(ParticipantId p) {
    const auto it = remotes_.find(p);
    if (it != remotes_.end()) return it->second;
    Remote rm;
    rm.replica = std::make_unique<sync::AvatarReplica>(codec_);
    return remotes_.emplace(p, std::move(rm)).first->second;
}

void Replayer::apply_wire(const WireRecord& w) {
    ++stats_.wire_packets;
    stats_.wire_bytes += w.size_bytes + net::kHeaderBytes;
    for (const AvatarUpdate& u : w.avatars) {
        Remote& rm = remote(ParticipantId{u.participant});
        // Fan-out copies and re-scanned history carry capture timestamps at
        // or before what this replica already holds: skip them. Strictly
        // newer updates (deltas against the current reference) apply.
        if (u.captured_ns <= rm.last_captured_ns) {
            ++stats_.stale_skipped;
            continue;
        }
        rm.replica->ingest(u.bytes, u.keyframe, sim::Time::ns(w.t_ns));
        rm.last_captured_ns = u.captured_ns;
        ++stats_.avatar_updates;
        if (u.keyframe) ++stats_.keyframes;
    }
}

void Replayer::apply_checkpoint(const CheckpointRecord& c) {
    const recovery::ClassroomCheckpoint cp = recovery::decode_checkpoint(c.bytes);
    for (const recovery::ReplicaRecord& r : cp.replicas) {
        if (r.reference.empty()) continue;
        Remote& rm = remote(r.participant);
        if (r.captured_at_ns <= rm.last_captured_ns) continue;
        // The reference is a full encoded state: re-ingest as a keyframe so
        // subsequent deltas decode against it (the crash-recovery contract).
        rm.replica->ingest(r.reference, true, sim::Time::ns(r.captured_at_ns));
        rm.last_captured_ns = r.captured_at_ns;
    }
    ++stats_.checkpoints_applied;
}

void Replayer::play_until(sim::Time until, double speed) {
    const auto wall_start = std::chrono::steady_clock::now();
    const sim::Time base = position_;
    Record rec;
    for (;;) {
        if (!pending_.has_value()) {
            if (!cursor_.next(rec)) break;
            pending_ = std::move(rec);
        }
        const auto t = record_t(*pending_);
        if (t.has_value() && *t > until.nanos()) break;
        if (t.has_value() && speed > 0.0 && *t > base.nanos()) {
            const auto target_offset = std::chrono::nanoseconds(
                static_cast<std::int64_t>(static_cast<double>(*t - base.nanos()) / speed));
            const auto deadline = wall_start + target_offset;
            const auto now = std::chrono::steady_clock::now();
            if (deadline > now + std::chrono::milliseconds(1)) {
                std::this_thread::sleep_until(deadline);
                stats_.paced_wall_seconds +=
                    std::chrono::duration<double>(std::chrono::steady_clock::now() - now)
                        .count();
            }
        }
        ++stats_.records;
        if (const auto* w = std::get_if<WireRecord>(&*pending_)) {
            apply_wire(*w);
        }
        // Checkpoints and hashes need no action during straight play: the
        // replicas already hold state at least as fresh as any checkpoint
        // reference taken before now.
        if (t.has_value()) position_ = std::max(position_, sim::Time::ns(*t));
        pending_.reset();
    }
    position_ = std::max(position_, until);
}

void Replayer::play_all(double speed) { play_until(end(), speed); }

void Replayer::rewind() {
    cursor_ = trace_.cursor();
    pending_.reset();
    remotes_.clear();
    position_ = sim::Time::zero();
}

sim::Time Replayer::seek(sim::Time target) {
    ++stats_.seeks;
    if (target >= position_ && trace_.checkpoint_index().empty()) {
        // Nothing indexed: fast-forward is the only option.
        play_until(target, 0.0);
        return position_;
    }

    // Newest checkpoint per owner at or before the target.
    std::map<std::string, CheckpointRecord> chosen;
    std::vector<std::size_t> scanned;
    for (const CheckpointRef& ref : trace_.checkpoint_index()) {
        if (ref.t_ns > target.nanos()) continue;
        if (std::find(scanned.begin(), scanned.end(), ref.chunk) != scanned.end()) continue;
        scanned.push_back(ref.chunk);
        trace_.each_record(ref.chunk, [&](const Record& r) {
            const auto* c = std::get_if<CheckpointRecord>(&r);
            if (c == nullptr || c->t_ns > target.nanos()) return;
            const auto it = chosen.find(c->owner);
            if (it == chosen.end() || it->second.t_ns < c->t_ns) chosen[c->owner] = *c;
        });
    }

    // Fresh client state, keyframed from the checkpoints.
    remotes_.clear();
    pending_.reset();
    std::vector<const CheckpointRecord*> ordered;
    ordered.reserve(chosen.size());
    for (const auto& [owner, cp] : chosen) ordered.push_back(&cp);
    std::sort(ordered.begin(), ordered.end(),
              [](const CheckpointRecord* a, const CheckpointRecord* b) {
                  return a->t_ns < b->t_ns;
              });
    for (const CheckpointRecord* cp : ordered) apply_checkpoint(*cp);

    // Resume the scan early enough to cover every delta newer than the
    // oldest restored reference (references may predate their checkpoint by
    // up to a keyframe interval). With no checkpoints this degrades to a
    // scan from the start of the trace.
    std::int64_t min_captured = 0;
    bool have_ref = false;
    for (const auto& [p, rm] : remotes_) {
        if (rm.last_captured_ns < 0) continue;
        min_captured = have_ref ? std::min(min_captured, rm.last_captured_ns)
                                : rm.last_captured_ns;
        have_ref = true;
    }
    std::size_t start_chunk = 0;
    if (have_ref) {
        for (std::size_t i = 0; i < trace_.chunks().size(); ++i) {
            if (trace_.chunks()[i].first_t_ns <= min_captured) start_chunk = i;
        }
    }
    cursor_ = trace_.cursor_at(start_chunk);
    position_ = sim::Time::zero();
    play_until(target, 0.0);
    return position_;
}

std::vector<ParticipantId> Replayer::participants() const {
    std::vector<ParticipantId> out;
    out.reserve(remotes_.size());
    for (const auto& [p, rm] : remotes_) out.push_back(p);
    return out;
}

std::optional<avatar::AvatarState> Replayer::latest(ParticipantId p) const {
    const auto it = remotes_.find(p);
    if (it == remotes_.end()) return std::nullopt;
    return it->second.replica->latest();
}

}  // namespace mvc::replay
