#pragma once
// Divergence checker: the record/replay debugging discipline. A recorded
// trace carries per-epoch StateHash records; re-running the deterministic
// simulation from the recorded seed (and the same scenario stamp) produces a
// second trace. Diffing the two hash sequences pinpoints the *first* epoch
// and subject (shard or node) where the runs disagree — a location, not the
// bare yes/no a byte-compare of final artifacts gives.

#include <cstdint>
#include <string>

#include "replay/trace.hpp"

namespace mvc::replay {

struct Divergence {
    bool diverged{false};
    /// Number of hash records compared equal before the divergence (or in
    /// total, when the runs agree).
    std::uint64_t compared{0};
    // Valid when diverged:
    std::uint64_t epoch{0};
    std::string subject;
    std::int64_t t_ns{0};
    std::uint64_t recorded_hash{0};
    std::uint64_t rerun_hash{0};
    /// Human-readable explanation (also covers structural mismatches: seed
    /// or stamp differs, one run recorded more hashes than the other).
    std::string detail;
};

/// Compare the StateHash sequences of two traces in record order. Seeds and
/// stamps are compared first: hashes of different scenarios never match and
/// the report says so instead of pointing at epoch 0.
[[nodiscard]] Divergence diff_state_hashes(const Trace& recorded, const Trace& rerun);

}  // namespace mvc::replay
