#include "replay/divergence.hpp"

#include <vector>

namespace mvc::replay {

namespace {
struct Entry {
    std::uint64_t epoch;
    std::uint32_t subject;
    std::uint64_t hash;
    std::int64_t t_ns;
};

std::vector<Entry> hash_sequence(const Trace& t) {
    std::vector<Entry> out;
    Trace::Cursor c = t.cursor();
    Record rec;
    while (c.next(rec)) {
        if (const auto* h = std::get_if<HashRecord>(&rec))
            out.push_back(Entry{h->epoch, h->subject, h->hash, h->t_ns});
    }
    return out;
}
}  // namespace

Divergence diff_state_hashes(const Trace& recorded, const Trace& rerun) {
    Divergence d;
    if (recorded.seed() != rerun.seed()) {
        d.diverged = true;
        d.detail = "seeds differ: recorded " + std::to_string(recorded.seed()) +
                   " vs rerun " + std::to_string(rerun.seed());
        return d;
    }
    if (recorded.stamp() != rerun.stamp()) {
        d.diverged = true;
        d.detail = "scenario stamps differ: \"" + recorded.stamp() + "\" vs \"" +
                   rerun.stamp() + "\"";
        return d;
    }
    const std::vector<Entry> a = hash_sequence(recorded);
    const std::vector<Entry> b = hash_sequence(rerun);
    const std::size_t n = std::min(a.size(), b.size());
    for (std::size_t i = 0; i < n; ++i) {
        const std::string& sa = recorded.subject_name(a[i].subject);
        const std::string& sb = rerun.subject_name(b[i].subject);
        if (a[i].epoch != b[i].epoch || sa != sb || a[i].hash != b[i].hash) {
            d.diverged = true;
            d.compared = i;
            d.epoch = a[i].epoch;
            d.subject = sa;
            d.t_ns = a[i].t_ns;
            d.recorded_hash = a[i].hash;
            d.rerun_hash = b[i].hash;
            if (a[i].epoch != b[i].epoch || sa != sb) {
                d.detail = "hash stream misaligned at index " + std::to_string(i) +
                           ": recorded epoch " + std::to_string(a[i].epoch) + "/" + sa +
                           " vs rerun epoch " + std::to_string(b[i].epoch) + "/" + sb;
            } else {
                d.detail = "first divergence at epoch " + std::to_string(a[i].epoch) +
                           ", subject \"" + sa + "\"";
            }
            return d;
        }
    }
    d.compared = n;
    if (a.size() != b.size()) {
        d.diverged = true;
        d.detail = "hash counts differ: recorded " + std::to_string(a.size()) +
                   " vs rerun " + std::to_string(b.size()) +
                   " (runs agree over the common prefix)";
        return d;
    }
    if (n == 0) {
        d.diverged = true;
        d.detail = "no StateHash records to compare";
    }
    return d;
}

}  // namespace mvc::replay
