#pragma once
// Byte-level primitives shared by the trace writer/reader and the
// recorder's hot-path encoder: little-endian fixed-width appends and
// unsigned LEB128 varints over a caller-owned byte vector. Appends are
// amortized allocation-free once the vector's capacity is warm — exactly
// the property the zero-allocation-per-send recording tap relies on.

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "replay/trace.hpp"

namespace mvc::replay::detail {

inline void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) { out.push_back(v); }

template <class T>
inline void put_fixed(std::vector<std::uint8_t>& out, T v) {
    std::uint8_t buf[sizeof(T)];
    std::memcpy(buf, &v, sizeof(T));
    out.insert(out.end(), buf, buf + sizeof(T));
}

inline void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) { put_fixed(out, v); }
inline void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) { put_fixed(out, v); }
inline void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) { put_fixed(out, v); }
inline void put_i64(std::vector<std::uint8_t>& out, std::int64_t v) {
    put_u64(out, static_cast<std::uint64_t>(v));
}

inline void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

/// Timestamps are simulated-time nanoseconds, always >= 0; encoded as plain
/// unsigned varints (no zigzag).
inline void put_time(std::vector<std::uint8_t>& out, std::int64_t t_ns) {
    put_varint(out, static_cast<std::uint64_t>(t_ns));
}

inline void put_bytes(std::vector<std::uint8_t>& out, std::span<const std::uint8_t> b) {
    out.insert(out.end(), b.begin(), b.end());
}

/// Bounds-checked reader over a span; throws TraceError on truncation.
class Reader {
public:
    explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

    [[nodiscard]] std::size_t pos() const { return pos_; }
    [[nodiscard]] bool done() const { return pos_ == data_.size(); }
    [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

    std::uint8_t u8() {
        need(1);
        return data_[pos_++];
    }

    template <class T>
    T fixed() {
        need(sizeof(T));
        T v;
        std::memcpy(&v, data_.data() + pos_, sizeof(T));
        pos_ += sizeof(T);
        return v;
    }

    std::uint16_t u16() { return fixed<std::uint16_t>(); }
    std::uint32_t u32() { return fixed<std::uint32_t>(); }
    std::uint64_t u64() { return fixed<std::uint64_t>(); }
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

    std::uint64_t varint() {
        std::uint64_t v = 0;
        int shift = 0;
        for (;;) {
            const std::uint8_t b = u8();
            if (shift >= 63 && (b & 0x7F) > 1)
                throw TraceError("trace: varint overflows 64 bits");
            v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
            if ((b & 0x80) == 0) return v;
            shift += 7;
        }
    }

    std::int64_t time() { return static_cast<std::int64_t>(varint()); }

    std::uint32_t varint32() {
        const std::uint64_t v = varint();
        if (v > 0xFFFFFFFFULL) throw TraceError("trace: varint exceeds 32 bits");
        return static_cast<std::uint32_t>(v);
    }

    std::span<const std::uint8_t> bytes(std::size_t n) {
        need(n);
        const std::span<const std::uint8_t> s = data_.subspan(pos_, n);
        pos_ += n;
        return s;
    }

    std::string str(std::size_t n) {
        const auto s = bytes(n);
        return std::string{reinterpret_cast<const char*>(s.data()), s.size()};
    }

private:
    void need(std::size_t n) const {
        if (pos_ + n > data_.size()) throw TraceError("trace: truncated data");
    }

    std::span<const std::uint8_t> data_;
    std::size_t pos_{0};
};

}  // namespace mvc::replay::detail
