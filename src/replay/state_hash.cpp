#include "replay/state_hash.hpp"

#include "common/hash.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace mvc::replay {

std::uint64_t simulation_hash(const sim::Simulator& sim, const net::Network& net) {
    common::Hash64 h;
    h.i64(sim.now().nanos());
    h.u64(sim.seed());
    h.size(sim.executed_events());
    h.size(sim.pending_events());
    h.u64(net.total_bytes_sent());
    for (const auto& [name, value] : net.metrics().counters()) {
        h.str(name);
        h.u64(value);
    }
    for (const auto& [name, series] : net.metrics().all_series()) {
        h.str(name);
        h.size(series->count());
        if (!series->empty()) h.f64(series->samples().back());
    }
    return h.digest();
}

}  // namespace mvc::replay
