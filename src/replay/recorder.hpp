#pragma once
// Session recorder: taps every backend's packet stream (one tap per shard,
// egress on the simulated Network, ingress on the real UDP backend), stages
// encoded Wire records in per-shard buffers, and drains them into a chunked
// TraceWriter at epoch boundaries. Staging is what keeps two invariants:
//
//  - Zero steady-state allocations per send (the PR-4 contract): the tap
//    appends varints into a pre-reserved, capacity-retaining vector and
//    interns each flow name exactly once. Only a first-sighting of a flow or
//    a buffer high-water growth allocates — both amortize to zero.
//  - Thread safety under the sharded engine: each staging buffer is written
//    only by the thread running its shard within an epoch; the drain (and
//    every writer touch) happens in the ShardSet epoch observer, which runs
//    single-threaded inside the barrier. Records carry absolute timestamps,
//    so concatenating per-shard batches in shard order is losslessly
//    re-sortable on read.
//
// Beyond wire capture the recorder mirrors recovery checkpoints from a
// CheckpointStore (seek keyframes) and records per-epoch state hashes (the
// divergence checker's input). Sink errors are sticky: recording disables
// itself and error() reports the first failure; nothing propagates into the
// simulation.

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "net/backend.hpp"
#include "replay/trace.hpp"
#include "sim/time.hpp"

namespace mvc::recovery {
class CheckpointStore;
}
namespace mvc::sim {
class Simulator;
}

namespace mvc::replay {

struct RecorderOptions {
    std::size_t chunk_bytes{64 * 1024};
    /// Capture avatar payload bytes (needed for lecture playback). Off, the
    /// trace still carries wire envelopes, hashes, and checkpoints — enough
    /// for the divergence checker at a fraction of the size.
    bool capture_payloads{true};
    /// Initial capacity of each shard's staging buffer.
    std::size_t stage_reserve_bytes{256 * 1024};
};

class Recorder {
public:
    /// `stamp` is the free-form scenario/config description replay tooling
    /// uses to rebuild the run (also shown by `metaclass_trace stat`).
    Recorder(TraceSink& sink, std::uint64_t seed, std::string_view stamp,
             std::int64_t started_ns, RecorderOptions options = {});
    ~Recorder();

    Recorder(const Recorder&) = delete;
    Recorder& operator=(const Recorder&) = delete;

    /// Install this recorder as `net`'s packet tap, capturing into shard
    /// `shard`'s staging buffer. Emits NodeDef records for the backend's
    /// current nodes. Call once per backend, before the run.
    void attach(net::Backend& net, std::uint32_t shard = 0);

    /// Intern a state-hash subject name ("sim", "edge/hk", "shard/3", ...).
    [[nodiscard]] std::uint32_t subject(std::string_view name);

    /// Record one per-epoch digest. Call after drain() so the hash lands
    /// behind the wire records it covers.
    void record_hash(std::uint64_t epoch, std::uint32_t subject, std::uint64_t hash,
                     sim::Time at);

    /// Mirror an encoded recovery checkpoint into the trace (seek keyframe).
    void record_checkpoint(const std::string& owner, std::span<const std::uint8_t> bytes,
                           sim::Time at);

    /// Auto-mirror every put on `store` (timestamped with sim.now()).
    void observe_store(recovery::CheckpointStore& store, const sim::Simulator& sim);

    /// Move staged records into the writer. Single-threaded contexts only
    /// (epoch observer, periodic sim task, teardown). Never throws.
    void drain(std::uint32_t shard);
    void drain_all();

    /// Drain everything, detach all taps, and finalize the trace (emit the
    /// last chunk, flush the sink). Idempotent; the destructor calls it.
    void finish();

    [[nodiscard]] bool finished() const { return finished_; }
    /// First sink/encode failure, empty while healthy. Once set, recording
    /// is disabled (taps become no-ops).
    [[nodiscard]] const std::string& error() const { return error_; }

    /// Summed across shards; read only from single-threaded contexts.
    [[nodiscard]] std::uint64_t wire_records() const;
    [[nodiscard]] std::uint64_t avatar_updates() const;
    [[nodiscard]] std::uint64_t checkpoints() const { return checkpoints_; }
    [[nodiscard]] std::uint64_t hashes() const { return hashes_; }
    [[nodiscard]] std::uint64_t bytes_written() const { return writer_.bytes_written(); }
    [[nodiscard]] std::uint64_t chunks_written() const { return writer_.chunks_written(); }
    [[nodiscard]] const RecorderOptions& options() const { return options_; }

private:
    /// Per-backend adapter so one Recorder can tap many shard backends while
    /// net::PacketTap stays a single-method interface.
    class ShardTap final : public net::PacketTap {
    public:
        ShardTap(Recorder& rec, std::uint32_t shard) : rec_(rec), shard_(shard) {}
        void on_send(const net::Packet& p, net::Priority priority) override {
            rec_.tap_packet(shard_, p, priority);
        }

    private:
        Recorder& rec_;
        std::uint32_t shard_;
    };

    struct ShardState {
        net::Backend* net{nullptr};
        std::unique_ptr<ShardTap> tap;
        std::vector<std::uint8_t> buf;
        std::size_t records{0};
        std::int64_t first_t{0};
        bool has_checkpoint{false};
        /// Flow name -> trace flow id, interned on first sight per shard.
        /// Ids are (shard << 16) | per-shard counter: no cross-thread state,
        /// and the assignment is a pure function of each shard's own send
        /// order — trace bytes stay identical for any worker-thread count.
        std::map<std::string, std::uint32_t, std::less<>> flow_ids;
        std::uint32_t next_flow{1};
        // Cumulative stats, owned by this shard's thread during an epoch.
        std::uint64_t wire_records{0};
        std::uint64_t avatar_updates{0};
    };

    void tap_packet(std::uint32_t shard, const net::Packet& p, net::Priority priority);
    std::uint32_t intern_flow(std::uint32_t shard, ShardState& s, const std::string& name);
    ShardState& shard_state(std::uint32_t shard);
    void fail(const char* what);

    RecorderOptions options_;
    TraceWriter writer_;
    std::vector<std::unique_ptr<ShardState>> shards_;
    std::map<std::string, std::uint32_t, std::less<>> subjects_;
    std::vector<std::uint8_t> scratch_;
    std::uint32_t next_subject_id_{1};
    std::vector<recovery::CheckpointStore*> observed_stores_;
    bool finished_{false};
    bool ok_{true};
    std::string error_;
    std::uint64_t checkpoints_{0};
    std::uint64_t hashes_{0};
};

}  // namespace mvc::replay
