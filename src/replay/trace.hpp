#pragma once
// Session trace container: the compact, chunked, checksummed binary format
// behind record/replay. A trace is a header (magic, format version, run seed,
// config stamp, CRC-32 over all of it) followed by chunks; each chunk carries
// a CRC-32 over its own header fields *and* its payload, plus enough metadata
// (record count, first record timestamp, a has-checkpoint flag) for the
// reader to build a seek index without decoding anything. Every byte of a
// trace is therefore under some checksum: flip any one and either the header
// CRC, a chunk CRC, or a magic check fails. Payloads are varint-encoded
// records:
//
//   FlowDef     interned flow-label table entry (id -> name)
//   NodeDef     node name table entry ((shard, node) -> name)
//   SubjectDef  interned state-hash subject (id -> "sim", "edge/hk", ...)
//   Wire        one packet accepted onto a link: time/shard/flow/src/dst/
//               size/priority, plus the captured avatar payload(s) when the
//               packet carried sync::AvatarWire / AvatarBatchWire
//   StateHash   per-epoch digest of one subject (the divergence checker's
//               comparison unit)
//   Checkpoint  a recovery::ClassroomCheckpoint mirrored from the store —
//               the seek keyframes of lecture playback
//
// Corruption of any kind (bad magic, truncation, bit flips, short records,
// trailing garbage) is detected: Trace::parse throws TraceError, and
// Trace::verify returns a report with the longest valid prefix instead.

#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace mvc::replay {

class TraceError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

inline constexpr std::uint32_t kTraceMagic = 0x4D565452;  // "MVTR"
inline constexpr std::uint32_t kChunkMagic = 0x4D564348;  // "MVCH"
inline constexpr std::uint16_t kTraceVersion = 1;

/// Chunk flag: the payload contains at least one Checkpoint record. The
/// seek path scans only flagged chunks when building its keyframe set.
inline constexpr std::uint8_t kChunkHasCheckpoint = 0x01;

// ------------------------------------------------------------------ records

enum class RecordKind : std::uint8_t {
    FlowDef = 1,
    NodeDef = 2,
    SubjectDef = 3,
    Wire = 4,
    StateHash = 5,
    Checkpoint = 6,
};

struct FlowDef {
    std::uint32_t id{0};
    std::string name;
};

struct NodeDef {
    std::uint32_t shard{0};
    std::uint32_t node{0};
    std::string name;
};

struct SubjectDef {
    std::uint32_t id{0};
    std::string name;
};

/// One captured avatar update (full snapshot or delta) embedded in a Wire
/// record. `bytes` is the exact sync::AvatarWire payload the codec emitted.
struct AvatarUpdate {
    std::uint32_t participant{0};
    std::uint32_t room{0};
    bool keyframe{false};
    std::int64_t captured_ns{0};
    std::vector<std::uint8_t> bytes;
};

struct WireRecord {
    std::int64_t t_ns{0};  ///< send instant (simulated)
    std::uint32_t shard{0};
    std::uint32_t flow{0};  ///< FlowDef id
    std::uint32_t src{0};
    std::uint32_t dst{0};
    std::uint64_t size_bytes{0};  ///< payload bytes charged to the link
    std::uint8_t priority{0};     ///< net::Priority
    std::vector<AvatarUpdate> avatars;
};

struct HashRecord {
    std::int64_t t_ns{0};
    std::uint64_t epoch{0};
    std::uint32_t subject{0};  ///< SubjectDef id
    std::uint64_t hash{0};
};

struct CheckpointRecord {
    std::int64_t t_ns{0};
    std::string owner;
    std::vector<std::uint8_t> bytes;  ///< encoded recovery checkpoint
};

using Record =
    std::variant<FlowDef, NodeDef, SubjectDef, WireRecord, HashRecord, CheckpointRecord>;

/// Append the encoding of `r` to `out`. The recorder's hot path hand-encodes
/// Wire records with the same layout; this cold-path encoder exists for
/// definition/hash/checkpoint records and for re-encoding (truncate).
void encode_record(std::vector<std::uint8_t>& out, const Record& r);

// -------------------------------------------------------------------- sinks

/// Byte sink the writer streams chunks into. write() may throw; the caller
/// (Recorder) turns that into a sticky error instead of propagating out of
/// the simulation hot path.
class TraceSink {
public:
    virtual ~TraceSink() = default;
    virtual void write(const void* data, std::size_t n) = 0;
    virtual void flush() {}
};

class FileSink final : public TraceSink {
public:
    explicit FileSink(const std::string& path);
    ~FileSink() override;
    FileSink(const FileSink&) = delete;
    FileSink& operator=(const FileSink&) = delete;
    void write(const void* data, std::size_t n) override;
    void flush() override;

private:
    std::FILE* file_{nullptr};
};

class MemorySink final : public TraceSink {
public:
    void write(const void* data, std::size_t n) override;
    [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return bytes_; }
    [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(bytes_); }

private:
    std::vector<std::uint8_t> bytes_;
};

// ------------------------------------------------------------------- writer

struct TraceWriterOptions {
    /// Emit a chunk once the pending payload reaches this size. Smaller
    /// chunks seek finer; larger chunks amortize header+CRC overhead.
    std::size_t chunk_bytes{64 * 1024};
};

/// Streams header + chunks into a sink. Accepts batches of *whole* encoded
/// records (the recorder's drained staging buffers); buffers them until a
/// chunk fills. Steady-state allocation-free: the pending buffer's capacity
/// is retained across chunks.
class TraceWriter {
public:
    TraceWriter(TraceSink& sink, std::uint64_t seed, std::string_view stamp,
                std::int64_t started_ns, TraceWriterOptions options = {});

    TraceWriter(const TraceWriter&) = delete;
    TraceWriter& operator=(const TraceWriter&) = delete;

    /// Append `record_count` whole records; `first_t_ns` is the timestamp of
    /// the batch's first timestamped record (ignored for pure-definition
    /// batches with record_count > 0 but no timestamp — pass the current
    /// time). `has_checkpoint` marks the chunk for the seek index.
    void append(std::span<const std::uint8_t> encoded, std::size_t record_count,
                std::int64_t first_t_ns, bool has_checkpoint);

    /// Emit the final partial chunk and flush the sink. Idempotent.
    void finish();

    [[nodiscard]] std::uint64_t bytes_written() const { return bytes_written_; }
    [[nodiscard]] std::uint64_t chunks_written() const { return chunks_written_; }
    [[nodiscard]] std::uint64_t records_written() const { return records_written_; }

private:
    void emit_chunk();

    TraceSink& sink_;
    TraceWriterOptions options_;
    std::vector<std::uint8_t> pending_;
    std::vector<std::uint8_t> chunk_header_;  // scratch, capacity retained
    std::size_t pending_records_{0};
    std::int64_t pending_first_t_{0};
    bool pending_has_checkpoint_{false};
    bool finished_{false};
    std::uint64_t bytes_written_{0};
    std::uint64_t chunks_written_{0};
    std::uint64_t records_written_{0};
};

// ------------------------------------------------------------------- reader

struct ChunkInfo {
    std::size_t payload_offset{0};  ///< into the trace byte buffer
    std::uint32_t payload_len{0};
    std::uint32_t records{0};
    std::int64_t first_t_ns{0};
    std::uint8_t flags{0};
};

/// Seek-index entry: one Checkpoint record and the chunk holding it.
struct CheckpointRef {
    std::int64_t t_ns{0};
    std::size_t chunk{0};
};

/// Verification report (never throws): `ok` means every chunk parsed and
/// checksummed clean; otherwise `error` says what broke and `valid_bytes`
/// is the longest cleanly-parseable prefix (header + whole chunks), which
/// is what salvage-truncation keeps.
struct TraceCheck {
    bool ok{false};
    std::string error;
    std::size_t chunks{0};
    std::uint64_t records{0};
    std::size_t valid_bytes{0};
    std::int64_t last_t_ns{0};
};

class Trace {
public:
    /// Strict parse; throws TraceError on any corruption.
    static Trace parse(std::vector<std::uint8_t> bytes);
    static Trace load(const std::string& path);
    /// Tolerant scan; reports instead of throwing.
    static TraceCheck verify(std::span<const std::uint8_t> bytes);

    [[nodiscard]] std::uint16_t version() const { return version_; }
    [[nodiscard]] std::uint64_t seed() const { return seed_; }
    [[nodiscard]] const std::string& stamp() const { return stamp_; }
    [[nodiscard]] std::int64_t started_ns() const { return started_ns_; }

    [[nodiscard]] const std::vector<ChunkInfo>& chunks() const { return chunks_; }
    [[nodiscard]] std::uint64_t record_count() const { return record_count_; }
    /// Largest record timestamp in the trace (0 for an empty trace).
    [[nodiscard]] std::int64_t last_t_ns() const { return last_t_ns_; }
    [[nodiscard]] const std::vector<CheckpointRef>& checkpoint_index() const {
        return checkpoint_index_;
    }

    /// Name tables collected from the definition records ("?" for unknown
    /// ids, so dump code never branches).
    [[nodiscard]] const std::string& flow_name(std::uint32_t id) const;
    [[nodiscard]] const std::string& subject_name(std::uint32_t id) const;
    [[nodiscard]] const std::string& node_name(std::uint32_t shard, std::uint32_t node) const;

    [[nodiscard]] std::span<const std::uint8_t> bytes() const { return bytes_; }

    /// Sequential record iterator. Copyable (seek saves/restores positions).
    class Cursor {
    public:
        /// Decode the next record into `out`; false at end of trace.
        bool next(Record& out);

    private:
        friend class Trace;
        Cursor(const Trace* trace, std::size_t chunk) : trace_(trace), chunk_(chunk) {}
        const Trace* trace_;
        std::size_t chunk_;
        std::size_t pos_{0};  // within the current chunk's payload
    };

    [[nodiscard]] Cursor cursor() const { return Cursor{this, 0}; }
    /// Cursor positioned at the start of chunk `index`.
    [[nodiscard]] Cursor cursor_at(std::size_t index) const { return Cursor{this, index}; }

    /// Decode every record of one chunk (bounded scan; seek uses this to
    /// pull Checkpoint records out of flagged chunks).
    void each_record(std::size_t chunk,
                     const std::function<void(const Record&)>& fn) const;

private:
    Trace() = default;

    std::vector<std::uint8_t> bytes_;
    std::uint16_t version_{0};
    std::uint64_t seed_{0};
    std::string stamp_;
    std::int64_t started_ns_{0};
    std::vector<ChunkInfo> chunks_;
    std::vector<CheckpointRef> checkpoint_index_;
    std::uint64_t record_count_{0};
    std::int64_t last_t_ns_{0};
    std::map<std::uint32_t, std::string> flow_names_;
    std::map<std::uint32_t, std::string> subject_names_;
    std::map<std::uint64_t, std::string> node_names_;  // (shard << 32) | node
};

/// Re-encode `trace` keeping definition records plus every timestamped
/// record with t <= keep_until_ns. Chunk boundaries are rebuilt; the result
/// is a valid trace (same header) that replays the prefix of the session.
[[nodiscard]] std::vector<std::uint8_t> truncate_trace(const Trace& trace,
                                                       std::int64_t keep_until_ns);

}  // namespace mvc::replay
