#pragma once
// Humanoid skeleton used for avatar body reconstruction, retargeting, and
// render cost accounting. Joints form a tree; local poses compose through
// forward kinematics into world poses.

#include <string>
#include <string_view>
#include <vector>

#include "math/pose.hpp"

namespace mvc::avatar {

struct Joint {
    std::string name;
    /// Parent index in the skeleton's joint array; -1 for the root.
    int parent{-1};
    /// Rest offset from the parent joint, in the parent's frame.
    math::Vec3 rest_offset;
};

class Skeleton {
public:
    /// Joints must be topologically ordered (parent before child).
    explicit Skeleton(std::vector<Joint> joints);

    [[nodiscard]] std::size_t joint_count() const { return joints_.size(); }
    [[nodiscard]] const Joint& joint(std::size_t i) const { return joints_.at(i); }
    /// Index lookup by name; -1 when absent.
    [[nodiscard]] int find(std::string_view name) const;

    /// Forward kinematics: compose per-joint local rotations (size must equal
    /// joint_count) under a root world pose into world-space joint poses.
    [[nodiscard]] std::vector<math::Pose> forward_kinematics(
        const math::Pose& root, const std::vector<math::Quat>& local_rotations) const;

    /// The 19-joint upper-body-focused humanoid used by classroom avatars
    /// (hips..head plus arms and hands; legs simplified since participants
    /// are mostly seated).
    [[nodiscard]] static Skeleton classroom_humanoid();

private:
    std::vector<Joint> joints_;
};

}  // namespace mvc::avatar
