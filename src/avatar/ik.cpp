#include "avatar/ik.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mvc::avatar {

TwoBoneSolution solve_two_bone(const math::Vec3& root, double l1, double l2,
                               const math::Vec3& target, const math::Vec3& pole) {
    if (l1 <= 0.0 || l2 <= 0.0)
        throw std::invalid_argument("solve_two_bone: bone lengths must be positive");

    TwoBoneSolution out;
    math::Vec3 to_target = target - root;
    double dist = to_target.norm();

    const double max_reach = l1 + l2;
    const double min_reach = std::abs(l1 - l2);
    double solve_dist = dist;
    if (dist < 1e-9) {
        // Degenerate: target at the shoulder; push along the pole. The
        // replacement direction is unit length.
        to_target = pole.norm() > 1e-9 ? pole.normalized() : math::Vec3::unit_y();
        dist = 1.0;
        solve_dist = min_reach > 1e-9 ? min_reach : 1e-6;
        out.clamped = true;
    } else if (dist > max_reach) {
        solve_dist = max_reach - 1e-9;
        out.clamped = true;
    } else if (dist < min_reach) {
        solve_dist = min_reach + 1e-9;
        out.clamped = true;
    }

    const math::Vec3 dir = to_target / dist;
    // Component of the pole orthogonal to the chain axis gives the bend plane.
    math::Vec3 bend = pole - dir * pole.dot(dir);
    if (bend.norm() < 1e-9) {
        // Pole parallel to the chain: pick any orthogonal direction.
        const math::Vec3 fallback =
            std::abs(dir.y) < 0.9 ? math::Vec3::unit_y() : math::Vec3::unit_x();
        bend = fallback - dir * fallback.dot(dir);
    }
    bend = bend.normalized();

    // Law of cosines: distance from root to the elbow's projection on the
    // chain axis, and the elbow's offset from the axis.
    const double a = (solve_dist * solve_dist + l1 * l1 - l2 * l2) / (2.0 * solve_dist);
    const double h2 = l1 * l1 - a * a;
    const double h = h2 > 0.0 ? std::sqrt(h2) : 0.0;

    out.elbow = root + dir * a + bend * h;
    // Wrist: along the chain toward the (possibly clamped) solve distance.
    const math::Vec3 elbow_to_target = root + dir * solve_dist - out.elbow;
    const double etn = elbow_to_target.norm();
    out.wrist = etn > 1e-12 ? out.elbow + elbow_to_target * (l2 / etn)
                            : out.elbow + dir * l2;
    return out;
}

namespace {

/// Bone length between a joint and its parent, from rest offsets.
double bone_length(const Skeleton& sk, int joint) {
    return sk.joint(static_cast<std::size_t>(joint)).rest_offset.norm();
}

}  // namespace

ReconstructedBody reconstruct_body(const Skeleton& skeleton, const AvatarState& state) {
    const int hips = skeleton.find("hips");
    const int spine = skeleton.find("spine");
    const int chest = skeleton.find("chest");
    const int neck = skeleton.find("neck");
    const int head = skeleton.find("head");
    const int l_shoulder = skeleton.find("l_shoulder");
    const int r_shoulder = skeleton.find("r_shoulder");
    const int l_upper = skeleton.find("l_upper_arm");
    const int r_upper = skeleton.find("r_upper_arm");
    const int l_forearm = skeleton.find("l_forearm");
    const int r_forearm = skeleton.find("r_forearm");
    const int l_hand = skeleton.find("l_hand");
    const int r_hand = skeleton.find("r_hand");
    if (hips < 0 || head < 0 || l_hand < 0 || r_hand < 0)
        throw std::invalid_argument("reconstruct_body: not the classroom humanoid");

    // Start from the rest pose under the replicated root.
    const std::vector<math::Quat> rest(skeleton.joint_count(), math::Quat::identity());
    ReconstructedBody out;
    out.joints = skeleton.forward_kinematics(state.root.pose, rest);

    // --- Spine chain: bend so the head lands on its replicated position.
    const math::Vec3 hips_pos = out.joints[static_cast<std::size_t>(hips)].position;
    const double spine_reach =
        bone_length(skeleton, spine) + bone_length(skeleton, chest) +
        bone_length(skeleton, neck) + bone_length(skeleton, head);
    math::Vec3 to_head = state.body.head.position - hips_pos;
    const double head_dist = to_head.norm();
    if (head_dist > 1e-9) {
        const math::Vec3 dir = to_head / std::max(head_dist, 1e-9);
        const math::Vec3 clamped_head =
            hips_pos + dir * std::min(head_dist, spine_reach);
        // Distribute joints proportionally along the hips->head line
        // (adequate for the lean/nod range of seated participants).
        double acc = 0.0;
        for (const int j : {spine, chest, neck, head}) {
            acc += bone_length(skeleton, j);
            const double frac = acc / spine_reach;
            out.joints[static_cast<std::size_t>(j)].position =
                hips_pos + (clamped_head - hips_pos) * frac;
            out.joints[static_cast<std::size_t>(j)].orientation =
                state.body.head.orientation;
        }
    }
    out.joints[static_cast<std::size_t>(head)].orientation = state.body.head.orientation;

    // --- Shoulders ride the chest.
    const math::Pose& chest_pose = out.joints[static_cast<std::size_t>(chest)];
    for (const int j : {l_shoulder, r_shoulder}) {
        out.joints[static_cast<std::size_t>(j)] = chest_pose.compose(math::Pose{
            skeleton.joint(static_cast<std::size_t>(j)).rest_offset, math::Quat{}});
    }

    // --- Arms: two-bone IK toward the replicated hands.
    const math::Quat& root_q = state.root.pose.orientation;
    const auto solve_arm = [&](int shoulder, int upper, int forearm, int hand,
                               const math::Pose& target, double side) {
        const math::Vec3 shoulder_pos =
            out.joints[static_cast<std::size_t>(shoulder)].position;
        // The upper-arm joint hangs off the shoulder by its rest offset
        // (rotated with the torso); it is the IK chain's root.
        const math::Vec3 upper_pos =
            shoulder_pos +
            root_q.rotate(skeleton.joint(static_cast<std::size_t>(upper)).rest_offset);
        const double l1 = bone_length(skeleton, forearm);
        const double l2 = bone_length(skeleton, hand);
        // Elbows bend outward and down in natural seated posture.
        const math::Vec3 pole = root_q.rotate({side, -0.6, -0.2});
        const TwoBoneSolution sol =
            solve_two_bone(upper_pos, l1, l2, target.position, pole);
        out.joints[static_cast<std::size_t>(upper)].position = upper_pos;
        out.joints[static_cast<std::size_t>(upper)].orientation = root_q;
        out.joints[static_cast<std::size_t>(forearm)].position = sol.elbow;
        out.joints[static_cast<std::size_t>(forearm)].orientation = root_q;
        out.joints[static_cast<std::size_t>(hand)].position = sol.wrist;
        out.joints[static_cast<std::size_t>(hand)].orientation = target.orientation;
        return sol.clamped;
    };
    // Note: in the classroom humanoid the upper-arm bone is the offset of
    // the forearm joint, and the forearm bone is the offset of the hand.
    out.left_arm_clamped =
        solve_arm(l_shoulder, l_upper, l_forearm, l_hand, state.body.left_hand, -1.0);
    out.right_arm_clamped =
        solve_arm(r_shoulder, r_upper, r_forearm, r_hand, state.body.right_hand, 1.0);
    return out;
}

}  // namespace mvc::avatar
