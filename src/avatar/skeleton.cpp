#include "avatar/skeleton.hpp"

#include <stdexcept>

namespace mvc::avatar {

Skeleton::Skeleton(std::vector<Joint> joints) : joints_(std::move(joints)) {
    for (std::size_t i = 0; i < joints_.size(); ++i) {
        const int p = joints_[i].parent;
        if (p >= static_cast<int>(i))
            throw std::invalid_argument("Skeleton: joints must be parent-first ordered");
        if (p < -1) throw std::invalid_argument("Skeleton: bad parent index");
        if (p == -1 && i != 0)
            throw std::invalid_argument("Skeleton: only joint 0 may be the root");
    }
    if (joints_.empty()) throw std::invalid_argument("Skeleton: needs at least a root");
}

int Skeleton::find(std::string_view name) const {
    for (std::size_t i = 0; i < joints_.size(); ++i) {
        if (joints_[i].name == name) return static_cast<int>(i);
    }
    return -1;
}

std::vector<math::Pose> Skeleton::forward_kinematics(
    const math::Pose& root, const std::vector<math::Quat>& local_rotations) const {
    if (local_rotations.size() != joints_.size())
        throw std::invalid_argument("forward_kinematics: rotation count mismatch");
    std::vector<math::Pose> world(joints_.size());
    for (std::size_t i = 0; i < joints_.size(); ++i) {
        const math::Pose local{joints_[i].rest_offset, local_rotations[i]};
        if (joints_[i].parent < 0) {
            world[i] = root.compose(local);
        } else {
            world[i] = world[static_cast<std::size_t>(joints_[i].parent)].compose(local);
        }
    }
    return world;
}

Skeleton Skeleton::classroom_humanoid() {
    using V = math::Vec3;
    std::vector<Joint> j;
    j.push_back({"hips", -1, V{0.0, 0.95, 0.0}});
    j.push_back({"spine", 0, V{0.0, 0.15, 0.0}});
    j.push_back({"chest", 1, V{0.0, 0.15, 0.0}});
    j.push_back({"neck", 2, V{0.0, 0.12, 0.0}});
    j.push_back({"head", 3, V{0.0, 0.10, 0.0}});
    j.push_back({"l_shoulder", 2, V{-0.08, 0.08, 0.0}});
    j.push_back({"l_upper_arm", 5, V{-0.12, 0.0, 0.0}});
    j.push_back({"l_forearm", 6, V{-0.26, 0.0, 0.0}});
    j.push_back({"l_hand", 7, V{-0.24, 0.0, 0.0}});
    j.push_back({"r_shoulder", 2, V{0.08, 0.08, 0.0}});
    j.push_back({"r_upper_arm", 9, V{0.12, 0.0, 0.0}});
    j.push_back({"r_forearm", 10, V{0.26, 0.0, 0.0}});
    j.push_back({"r_hand", 11, V{0.24, 0.0, 0.0}});
    j.push_back({"l_thigh", 0, V{-0.09, -0.05, 0.0}});
    j.push_back({"l_shin", 13, V{0.0, -0.42, 0.0}});
    j.push_back({"l_foot", 14, V{0.0, -0.40, 0.05}});
    j.push_back({"r_thigh", 0, V{0.09, -0.05, 0.0}});
    j.push_back({"r_shin", 16, V{0.0, -0.42, 0.0}});
    j.push_back({"r_foot", 17, V{0.0, -0.40, 0.05}});
    return Skeleton{std::move(j)};
}

}  // namespace mvc::avatar
