#pragma once
// Receiver-side body reconstruction. The wire carries only the tracked
// points (root, head, two hands — §"BodyPose"); the renderer needs a full
// skeleton. A standard two-bone IK solves each arm, and the spine chain is
// distributed between root and head orientation. Bone lengths always come
// from the skeleton, so reconstruction preserves them exactly — the
// property the tests pin down.

#include <vector>

#include "avatar/skeleton.hpp"
#include "avatar/state.hpp"

namespace mvc::avatar {

/// Result of a two-bone (shoulder-elbow-wrist) IK solve, world space.
struct TwoBoneSolution {
    math::Vec3 elbow;
    math::Vec3 wrist;
    /// True when the target was beyond reach and the chain extended fully
    /// toward it (wrist lands short of the target).
    bool clamped{false};
};

/// Solve a two-bone chain: `root` (shoulder), bone lengths `l1` (upper) and
/// `l2` (forearm), reaching for `target`. `pole` hints the elbow's bend
/// direction (need not be normalized; must not be parallel to root->target).
[[nodiscard]] TwoBoneSolution solve_two_bone(const math::Vec3& root, double l1, double l2,
                                             const math::Vec3& target,
                                             const math::Vec3& pole);

/// Full-body pose reconstructed from the replicated avatar state: world
/// pose per skeleton joint, same indexing as the skeleton's joint array.
struct ReconstructedBody {
    std::vector<math::Pose> joints;
    bool left_arm_clamped{false};
    bool right_arm_clamped{false};
};

/// Reconstruct all joint world poses of `skeleton` (must be the classroom
/// humanoid layout) from the tracked points in `state`:
///  - hips from the root pose;
///  - spine/neck/head chain bent toward the replicated head position, head
///    orientation taken from the tracked head;
///  - arms solved by two-bone IK toward the replicated hand positions with
///    outward-and-down elbow poles;
///  - legs kept in their rest pose under the hips (participants are seated).
[[nodiscard]] ReconstructedBody reconstruct_body(const Skeleton& skeleton,
                                                 const AvatarState& state);

}  // namespace mvc::avatar
