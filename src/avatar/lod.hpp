#pragma once
// Avatar level-of-detail ladder. The paper notes that sensor-accurate
// "sophisticated avatars ... may be too complex to render with WebGL and
// lightweight VR headsets"; the ladder quantifies that: each level carries
// the geometry/texture cost the render module charges against a device's
// frame budget, and the sync module uses per-level update rates for
// interest management.

#include <array>
#include <cstdint>
#include <string_view>

namespace mvc::avatar {

enum class LodLevel : std::uint8_t {
    Sophisticated,  // photoreal reconstruction from classroom sensing
    High,
    Medium,
    Low,
    Billboard,      // impostor quad for distant crowd members
    kCount,
};

inline constexpr std::size_t kLodCount = static_cast<std::size_t>(LodLevel::kCount);

struct LodProfile {
    LodLevel level;
    std::string_view name;
    std::uint32_t triangles;
    std::uint32_t texture_bytes;
    /// Suggested replication rate at this detail level.
    double update_rate_hz;
};

[[nodiscard]] const LodProfile& lod_profile(LodLevel level);

/// Pick a LOD from viewer distance (metres), following typical social-VR
/// distance bands.
[[nodiscard]] LodLevel lod_for_distance(double distance_m);

/// Next-coarser level (Billboard stays Billboard).
[[nodiscard]] LodLevel coarser(LodLevel level);

inline constexpr std::array<LodProfile, kLodCount> kLodLadder{{
    {LodLevel::Sophisticated, "sophisticated", 80'000, 8 * 1024 * 1024, 60.0},
    {LodLevel::High, "high", 20'000, 2 * 1024 * 1024, 60.0},
    {LodLevel::Medium, "medium", 5'000, 512 * 1024, 30.0},
    {LodLevel::Low, "low", 1'200, 128 * 1024, 15.0},
    {LodLevel::Billboard, "billboard", 2, 32 * 1024, 5.0},
}};

}  // namespace mvc::avatar
