#include "avatar/codec.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "avatar/serialize.hpp"

namespace mvc::avatar {

namespace {

// Smallest-three quaternion packing: drop the largest-magnitude component
// (recomputable from unit norm), flip sign so it is positive, and quantize
// the remaining three over [-1/sqrt2, 1/sqrt2].
constexpr double kQuatComponentRange = 0.70710678118654752440;

void write_quat(ByteWriter& w, const math::Quat& q_in) {
    const math::Quat q = q_in.normalized();
    const double comps[4] = {q.w, q.x, q.y, q.z};
    std::size_t largest = 0;
    for (std::size_t i = 1; i < 4; ++i) {
        if (std::abs(comps[i]) > std::abs(comps[largest])) largest = i;
    }
    const double sign = comps[largest] < 0.0 ? -1.0 : 1.0;
    w.u8(static_cast<std::uint8_t>(largest));
    for (std::size_t i = 0; i < 4; ++i) {
        if (i == largest) continue;
        w.i16(quantize16(comps[i] * sign, -kQuatComponentRange, kQuatComponentRange));
    }
}

math::Quat read_quat(ByteReader& r) {
    const std::size_t largest = r.u8();
    if (largest > 3) throw std::out_of_range("read_quat: bad component index");
    double comps[4] = {0, 0, 0, 0};
    double sum_sq = 0.0;
    for (std::size_t i = 0; i < 4; ++i) {
        if (i == largest) continue;
        comps[i] = dequantize16(r.i16(), -kQuatComponentRange, kQuatComponentRange);
        sum_sq += comps[i] * comps[i];
    }
    comps[largest] = std::sqrt(std::max(0.0, 1.0 - sum_sq));
    return math::Quat{comps[0], comps[1], comps[2], comps[3]}.normalized();
}

void write_vec(ByteWriter& w, const math::Vec3& v, double range) {
    w.i16(quantize16(v.x, -range, range));
    w.i16(quantize16(v.y, -range, range));
    w.i16(quantize16(v.z, -range, range));
}

math::Vec3 read_vec(ByteReader& r, double range) {
    const double x = dequantize16(r.i16(), -range, range);
    const double y = dequantize16(r.i16(), -range, range);
    const double z = dequantize16(r.i16(), -range, range);
    return {x, y, z};
}

// Delta group bits.
enum : std::uint16_t {
    kRootPos = 1u << 0,
    kRootRot = 1u << 1,
    kLinVel = 1u << 2,
    kAngVel = 1u << 3,
    kHead = 1u << 4,
    kLeftHand = 1u << 5,
    kRightHand = 1u << 6,
    kExpression = 1u << 7,
    kViseme = 1u << 8,
};

bool pose_changed(const math::Pose& a, const math::Pose& b, const DeltaThresholds& t) {
    return a.position.distance_to(b.position) > t.position_m ||
           math::angular_distance(a.orientation, b.orientation) > t.rotation_rad;
}

}  // namespace

std::int16_t quantize16(double v, double lo, double hi) {
    const double clamped = std::clamp(v, lo, hi);
    const double unit = (clamped - lo) / (hi - lo);  // [0,1]
    return static_cast<std::int16_t>(std::lround(unit * 65535.0) - 32768);
}

double dequantize16(std::int16_t q, double lo, double hi) {
    const double unit = (static_cast<double>(q) + 32768.0) / 65535.0;
    return lo + unit * (hi - lo);
}

std::uint8_t quantize8_unit(double v) {
    return static_cast<std::uint8_t>(std::lround(std::clamp(v, 0.0, 1.0) * 255.0));
}

double dequantize8_unit(std::uint8_t q) { return static_cast<double>(q) / 255.0; }

AvatarCodec::AvatarCodec(CodecBounds bounds, DeltaThresholds thresholds)
    : bounds_(bounds), thresholds_(thresholds) {}

double AvatarCodec::position_resolution() const {
    return 2.0 * bounds_.pos_range_m / 65535.0;
}

std::vector<std::uint8_t> AvatarCodec::encode_full(const AvatarState& s) const {
    ByteWriter w;
    w.u32(s.participant.value());
    w.u64(static_cast<std::uint64_t>(s.captured_at.nanos() / 1000));  // microseconds
    write_vec(w, s.root.pose.position, bounds_.pos_range_m);
    write_quat(w, s.root.pose.orientation);
    write_vec(w, s.root.linear_velocity, bounds_.linear_vel_range);
    write_vec(w, s.root.angular_velocity, bounds_.angular_vel_range);
    // Body joints relative to the root, so they fit the tight body range.
    for (const math::Pose* p : {&s.body.head, &s.body.left_hand, &s.body.right_hand}) {
        write_vec(w, p->position - s.root.pose.position, bounds_.body_range_m);
        write_quat(w, p->orientation);
    }
    for (std::size_t i = 0; i < kExpressionChannels; ++i) {
        w.u8(quantize8_unit(i < s.expression.size() ? s.expression[i] : 0.0));
    }
    w.u8(s.viseme);
    return w.take();
}

AvatarState AvatarCodec::decode_full(std::span<const std::uint8_t> bytes) const {
    ByteReader r{bytes};
    AvatarState s;
    s.participant = ParticipantId{r.u32()};
    s.captured_at = sim::Time::us(static_cast<std::int64_t>(r.u64()));
    s.root.pose.position = read_vec(r, bounds_.pos_range_m);
    s.root.pose.orientation = read_quat(r);
    s.root.linear_velocity = read_vec(r, bounds_.linear_vel_range);
    s.root.angular_velocity = read_vec(r, bounds_.angular_vel_range);
    for (math::Pose* p : {&s.body.head, &s.body.left_hand, &s.body.right_hand}) {
        p->position = s.root.pose.position + read_vec(r, bounds_.body_range_m);
        p->orientation = read_quat(r);
    }
    s.expression.resize(kExpressionChannels);
    for (std::size_t i = 0; i < kExpressionChannels; ++i) {
        s.expression[i] = dequantize8_unit(r.u8());
    }
    s.viseme = r.u8();
    return s;
}

std::vector<std::uint8_t> AvatarCodec::encode_delta(const AvatarState& reference,
                                                    const AvatarState& current) const {
    const DeltaThresholds& t = thresholds_;
    std::uint16_t mask = 0;
    if (current.root.pose.position.distance_to(reference.root.pose.position) > t.position_m)
        mask |= kRootPos;
    if (math::angular_distance(current.root.pose.orientation,
                               reference.root.pose.orientation) > t.rotation_rad)
        mask |= kRootRot;
    if ((current.root.linear_velocity - reference.root.linear_velocity).norm() > t.velocity)
        mask |= kLinVel;
    if ((current.root.angular_velocity - reference.root.angular_velocity).norm() > t.velocity)
        mask |= kAngVel;
    if (pose_changed(current.body.head, reference.body.head, t)) mask |= kHead;
    if (pose_changed(current.body.left_hand, reference.body.left_hand, t)) mask |= kLeftHand;
    if (pose_changed(current.body.right_hand, reference.body.right_hand, t))
        mask |= kRightHand;

    std::uint16_t expr_mask = 0;
    for (std::size_t i = 0; i < kExpressionChannels; ++i) {
        const double cur = i < current.expression.size() ? current.expression[i] : 0.0;
        const double ref = i < reference.expression.size() ? reference.expression[i] : 0.0;
        if (std::abs(cur - ref) > t.expression) expr_mask |= static_cast<std::uint16_t>(1u << i);
    }
    if (expr_mask != 0) mask |= kExpression;
    if (current.viseme != reference.viseme) mask |= kViseme;

    ByteWriter w;
    w.u16(mask);
    w.u32(static_cast<std::uint32_t>(current.captured_at.nanos() / 1000000));  // ms
    if (mask & kRootPos) write_vec(w, current.root.pose.position, bounds_.pos_range_m);
    if (mask & kRootRot) write_quat(w, current.root.pose.orientation);
    if (mask & kLinVel) write_vec(w, current.root.linear_velocity, bounds_.linear_vel_range);
    if (mask & kAngVel)
        write_vec(w, current.root.angular_velocity, bounds_.angular_vel_range);
    const math::Vec3 root_pos = (mask & kRootPos) ? current.root.pose.position
                                                  : reference.root.pose.position;
    const auto write_joint = [&](const math::Pose& p) {
        write_vec(w, p.position - root_pos, bounds_.body_range_m);
        write_quat(w, p.orientation);
    };
    if (mask & kHead) write_joint(current.body.head);
    if (mask & kLeftHand) write_joint(current.body.left_hand);
    if (mask & kRightHand) write_joint(current.body.right_hand);
    if (mask & kExpression) {
        w.u16(expr_mask);
        for (std::size_t i = 0; i < kExpressionChannels; ++i) {
            if (expr_mask & (1u << i)) {
                w.u8(quantize8_unit(i < current.expression.size() ? current.expression[i]
                                                                  : 0.0));
            }
        }
    }
    if (mask & kViseme) w.u8(current.viseme);
    return w.take();
}

AvatarState AvatarCodec::decode_delta(const AvatarState& reference,
                                      std::span<const std::uint8_t> bytes) const {
    ByteReader r{bytes};
    AvatarState s = reference;
    const std::uint16_t mask = r.u16();
    s.captured_at = sim::Time::ms(static_cast<double>(r.u32()));
    if (mask & kRootPos) s.root.pose.position = read_vec(r, bounds_.pos_range_m);
    if (mask & kRootRot) s.root.pose.orientation = read_quat(r);
    if (mask & kLinVel) s.root.linear_velocity = read_vec(r, bounds_.linear_vel_range);
    if (mask & kAngVel) s.root.angular_velocity = read_vec(r, bounds_.angular_vel_range);
    const auto read_joint = [&](math::Pose& p) {
        p.position = s.root.pose.position + read_vec(r, bounds_.body_range_m);
        p.orientation = read_quat(r);
    };
    if (mask & kHead) read_joint(s.body.head);
    if (mask & kLeftHand) read_joint(s.body.left_hand);
    if (mask & kRightHand) read_joint(s.body.right_hand);
    if (mask & kExpression) {
        const std::uint16_t expr_mask = r.u16();
        if (s.expression.size() < kExpressionChannels)
            s.expression.resize(kExpressionChannels, 0.0);
        for (std::size_t i = 0; i < kExpressionChannels; ++i) {
            if (expr_mask & (1u << i)) s.expression[i] = dequantize8_unit(r.u8());
        }
    }
    if (mask & kViseme) s.viseme = r.u8();
    return s;
}

}  // namespace mvc::avatar
