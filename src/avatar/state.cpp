#include "avatar/state.hpp"

#include "avatar/lod.hpp"

#include <stdexcept>

namespace mvc::avatar {

double avatar_error(const AvatarState& a, const AvatarState& b) {
    const double root = math::pose_error(a.root.pose, b.root.pose);
    const double joints = (math::pose_error(a.body.head, b.body.head) +
                           math::pose_error(a.body.left_hand, b.body.left_hand) +
                           math::pose_error(a.body.right_hand, b.body.right_hand)) /
                          3.0;
    return root + joints;
}

AvatarState extrapolate(const AvatarState& s, double dt) {
    AvatarState out = s;
    const math::KinematicState next = s.root.extrapolate(dt);
    const math::Vec3 shift = next.pose.position - s.root.pose.position;
    out.root = next;
    out.body.head.position += shift;
    out.body.left_hand.position += shift;
    out.body.right_hand.position += shift;
    return out;
}

const LodProfile& lod_profile(LodLevel level) {
    const auto i = static_cast<std::size_t>(level);
    if (i >= kLodCount) throw std::invalid_argument("lod_profile: bad level");
    return kLodLadder[i];
}

LodLevel lod_for_distance(double distance_m) {
    if (distance_m < 2.0) return LodLevel::Sophisticated;
    if (distance_m < 5.0) return LodLevel::High;
    if (distance_m < 12.0) return LodLevel::Medium;
    if (distance_m < 30.0) return LodLevel::Low;
    return LodLevel::Billboard;
}

LodLevel coarser(LodLevel level) {
    const auto i = static_cast<std::size_t>(level);
    if (i + 1 >= kLodCount) return LodLevel::Billboard;
    return static_cast<LodLevel>(i + 1);
}

}  // namespace mvc::avatar
