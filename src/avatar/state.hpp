#pragma once
// Replicated avatar state: everything the other classrooms need to draw a
// participant's digital twin — root kinematics, the tracked upper-body
// joints, facial expression, and the current speech viseme.

#include <vector>

#include "common/ids.hpp"
#include "math/pose.hpp"
#include "sim/time.hpp"

namespace mvc::avatar {

/// Number of facial blendshape channels on the wire (ARKit-style basis,
/// truncated to the channels that read at classroom distances).
inline constexpr std::size_t kExpressionChannels = 16;

/// Tracked body joints replicated explicitly; the rest of the skeleton is
/// reconstructed by IK on the receiver.
struct BodyPose {
    math::Pose head;
    math::Pose left_hand;
    math::Pose right_hand;
};

struct AvatarState {
    ParticipantId participant;
    /// Root (hips) kinematics in the avatar's source-classroom frame.
    math::KinematicState root;
    BodyPose body;
    /// Blendshape coefficients in [0,1]; size kExpressionChannels.
    std::vector<double> expression;
    /// Current mouth viseme index (0 = silence), driven by the audio stream.
    std::uint8_t viseme{0};
    /// Capture timestamp at the source.
    sim::Time captured_at{};
};

/// Pose error between two avatar states as perceived by a viewer: root pose
/// error plus mean tracked-joint error (metres + weighted radians).
[[nodiscard]] double avatar_error(const AvatarState& a, const AvatarState& b);

/// Extrapolate an avatar state `dt` ahead using its root kinematics; body
/// joints follow the root rigidly (receiver-side dead reckoning).
[[nodiscard]] AvatarState extrapolate(const AvatarState& s, double dt);

}  // namespace mvc::avatar
