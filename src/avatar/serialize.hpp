#pragma once
// Byte-level writer/reader used by the avatar wire codecs. Little-endian,
// byte-aligned. Real bytes, so the traffic numbers in the experiments are
// honest and round-trip precision is testable.

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <vector>

namespace mvc::avatar {

class ByteWriter {
public:
    void u8(std::uint8_t v) { buf_.push_back(v); }
    void u16(std::uint16_t v) { append(&v, sizeof v); }
    void u32(std::uint32_t v) { append(&v, sizeof v); }
    void u64(std::uint64_t v) { append(&v, sizeof v); }
    void i16(std::int16_t v) { append(&v, sizeof v); }
    void f32(float v) { append(&v, sizeof v); }
    void f64(double v) { append(&v, sizeof v); }

    [[nodiscard]] std::size_t size() const { return buf_.size(); }
    [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }
    [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return buf_; }

private:
    std::vector<std::uint8_t> buf_;
    void append(const void* p, std::size_t n) {
        const auto* b = static_cast<const std::uint8_t*>(p);
        buf_.insert(buf_.end(), b, b + n);
    }
};

class ByteReader {
public:
    explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

    [[nodiscard]] std::uint8_t u8() { return read<std::uint8_t>(); }
    [[nodiscard]] std::uint16_t u16() { return read<std::uint16_t>(); }
    [[nodiscard]] std::uint32_t u32() { return read<std::uint32_t>(); }
    [[nodiscard]] std::uint64_t u64() { return read<std::uint64_t>(); }
    [[nodiscard]] std::int16_t i16() { return read<std::int16_t>(); }
    [[nodiscard]] float f32() { return read<float>(); }
    [[nodiscard]] double f64() { return read<double>(); }

    [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
    [[nodiscard]] bool done() const { return remaining() == 0; }

private:
    std::span<const std::uint8_t> data_;
    std::size_t pos_{0};

    template <class T>
    T read() {
        if (pos_ + sizeof(T) > data_.size())
            throw std::out_of_range("ByteReader: truncated buffer");
        T v;
        std::memcpy(&v, data_.data() + pos_, sizeof(T));
        pos_ += sizeof(T);
        return v;
    }
};

/// Quantize a double in [lo, hi] to a signed 16-bit integer; values outside
/// the range clamp. Resolution = (hi-lo)/65535.
[[nodiscard]] std::int16_t quantize16(double v, double lo, double hi);
[[nodiscard]] double dequantize16(std::int16_t q, double lo, double hi);

/// Quantize a value in [0,1] to 8 bits.
[[nodiscard]] std::uint8_t quantize8_unit(double v);
[[nodiscard]] double dequantize8_unit(std::uint8_t q);

}  // namespace mvc::avatar
