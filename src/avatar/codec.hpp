#pragma once
// Quantized wire codecs for avatar state. Two formats:
//  - full snapshot (~90 bytes): everything, sent at keyframe interval or to
//    late joiners;
//  - delta (~2-60 bytes): only the channel groups that moved beyond a
//    perceptual threshold since the acknowledged reference state.
// Encoding produces real byte buffers so the avatar-vs-video traffic
// experiment (E2) measures honest sizes, and round-trip precision bounds are
// unit-tested.

#include <cstdint>
#include <span>
#include <vector>

#include "avatar/state.hpp"

namespace mvc::avatar {

struct CodecBounds {
    /// Root position range per axis (covers any campus classroom).
    double pos_range_m{100.0};
    /// Body-joint offset range relative to the root.
    double body_range_m{2.0};
    double linear_vel_range{10.0};
    double angular_vel_range{20.0};
};

struct DeltaThresholds {
    double position_m{0.002};
    double rotation_rad{0.005};
    double velocity{0.05};
    double expression{0.015};  // ~2 quantization steps
};

class AvatarCodec {
public:
    explicit AvatarCodec(CodecBounds bounds = {}, DeltaThresholds thresholds = {});

    [[nodiscard]] std::vector<std::uint8_t> encode_full(const AvatarState& s) const;
    [[nodiscard]] AvatarState decode_full(std::span<const std::uint8_t> bytes) const;

    /// Delta against `reference` (the last state the receiver is known to
    /// hold). Unchanged groups cost nothing beyond the 2-byte mask.
    [[nodiscard]] std::vector<std::uint8_t> encode_delta(const AvatarState& reference,
                                                         const AvatarState& current) const;
    /// Apply a delta on top of `reference`.
    [[nodiscard]] AvatarState decode_delta(const AvatarState& reference,
                                           std::span<const std::uint8_t> bytes) const;

    [[nodiscard]] const CodecBounds& bounds() const { return bounds_; }
    [[nodiscard]] const DeltaThresholds& thresholds() const { return thresholds_; }

    /// Worst-case round-trip position error of the full codec (metres).
    [[nodiscard]] double position_resolution() const;

private:
    CodecBounds bounds_;
    DeltaThresholds thresholds_;
};

}  // namespace mvc::avatar
