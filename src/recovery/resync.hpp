#pragma once
// Reconnect / late-join resync over net::transport. A node that restarts
// (or rejoins after a partition) sends one "resync.req" to each live peer;
// the peer replies with a "resync.snap" carrying a full-snapshot encoding
// of every avatar it is authoritative for, and simultaneously forces a
// keyframe on its live publishers so the requester's delta chains re-align.
// The rejoiner is thus current after ONE round trip plus in-flight deltas,
// instead of waiting out the keyframe interval cold.
//
// Requests are retried on a timer (the request or reply may be lost during
// the same fault that caused the rejoin) and matched by nonce so stale
// replies are ignored.

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/ids.hpp"
#include "net/channel.hpp"
#include "sim/time.hpp"

namespace mvc::recovery {

/// One avatar in a resync snapshot: a full-state encoding the receiver can
/// ingest as a keyframe.
struct ResyncEntry {
    ParticipantId participant;
    ClassroomId source_room;
    sim::Time captured_at{};
    std::vector<std::uint8_t> bytes;
};

struct ResyncRequest {
    std::uint64_t nonce{0};
    sim::Time requested_at{};
};

struct ResyncSnapshot {
    std::uint64_t nonce{0};
    sim::Time served_at{};
    std::vector<ResyncEntry> entries;
};

inline constexpr const char* kResyncReqFlow = "resync.req";
inline constexpr const char* kResyncSnapFlow = "resync.snap";

/// Serves resync snapshots for the avatars this node is authoritative for.
class ResyncResponder {
public:
    using SnapshotFn = std::function<std::vector<ResyncEntry>()>;
    /// Invoked after serving a snapshot — the owner forces keyframes on its
    /// live publishers so the requester's delta decoding re-anchors.
    using ServedFn = std::function<void()>;

    ResyncResponder(net::Backend& net, net::PacketDemux& demux, SnapshotFn snapshot,
                    ServedFn on_served = {});

    [[nodiscard]] std::uint64_t served() const { return served_; }

private:
    net::Backend& net_;
    net::NodeId node_;
    net::Channel snap_tx_;
    sim::MetricId served_id_;
    SnapshotFn snapshot_;
    ServedFn on_served_;
    std::uint64_t served_{0};
};

struct ResyncClientParams {
    /// Re-send an unanswered request after this long.
    sim::Time retry_interval{sim::Time::ms(250.0)};
    /// Total attempts per request before giving up.
    int max_attempts{5};
};

/// Requests snapshots from peers and applies the replies.
class ResyncClient {
public:
    using ApplyFn = std::function<void(const ResyncSnapshot&, net::NodeId from)>;

    ResyncClient(net::Backend& net, net::PacketDemux& demux, ApplyFn apply,
                 ResyncClientParams params = {});

    /// Fire a resync request at `peer`; retries until answered or exhausted.
    void request(net::NodeId peer);

    [[nodiscard]] std::uint64_t completed() const { return completed_; }
    [[nodiscard]] std::uint64_t abandoned() const { return abandoned_; }
    [[nodiscard]] std::size_t outstanding() const { return pending_.size(); }
    [[nodiscard]] double last_rtt_ms() const { return last_rtt_ms_; }

private:
    struct Pending {
        net::NodeId peer{};
        sim::Time first_sent{};
        int attempts{0};
        sim::EventHandle retry{};
    };

    net::Backend& net_;
    net::NodeId node_;
    net::Channel req_tx_;
    sim::MetricId abandoned_id_;
    sim::MetricId rtt_id_;
    ApplyFn apply_;
    ResyncClientParams params_;
    std::map<std::uint64_t, Pending> pending_;
    std::uint64_t next_nonce_{1};
    std::uint64_t completed_{0};
    std::uint64_t abandoned_{0};
    double last_rtt_ms_{0.0};

    void transmit(std::uint64_t nonce);
    void handle_snapshot(net::Packet&& p);
};

}  // namespace mvc::recovery
