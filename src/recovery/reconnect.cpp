#include "recovery/reconnect.hpp"

#include <stdexcept>

namespace mvc::recovery {

std::string_view link_state_name(LinkState state) {
    switch (state) {
        case LinkState::Connected: return "connected";
        case LinkState::BackingOff: return "backing_off";
        case LinkState::Probing: return "probing";
    }
    return "unknown";
}

Reconnector::Reconnector(sim::Clock& clock, ReconnectParams params, std::string name)
    : clock_(clock),
      params_(params),
      name_(std::move(name)),
      backoff_(params_.backoff, clock.rng_stream("reconnect/" + name_)) {
    if (params_.check_interval <= sim::Time::zero())
        throw std::invalid_argument("Reconnector: check_interval must be positive");
    if (params_.probe_timeout <= sim::Time::zero())
        throw std::invalid_argument("Reconnector: probe_timeout must be positive");
}

Reconnector::~Reconnector() { stop(); }

void Reconnector::start() {
    if (running_) return;
    running_ = true;
    state_ = LinkState::Connected;
    last_seen_ = clock_.now();
    backoff_.reset();
    attempts_ = 0;
    ++epoch_;
    if (params_.liveness_timeout > sim::Time::zero())
        check_task_ =
            clock_.schedule_every(params_.check_interval, [this] { check_liveness(); });
}

void Reconnector::stop() {
    if (!running_) return;
    running_ = false;
    ++epoch_;  // orphan any scheduled probe/timeout closures
    clock_.cancel(check_task_);
}

void Reconnector::touch() {
    last_seen_ = clock_.now();
}

void Reconnector::suspect() {
    if (!running_ || state_ != LinkState::Connected) return;
    begin_outage();
}

void Reconnector::probe_succeeded() {
    if (!running_ || state_ != LinkState::Probing) return;
    ++epoch_;  // cancel the pending probe timeout
    ++reconnects_;
    last_outage_ = clock_.now() - outage_started_;
    last_seen_ = clock_.now();
    backoff_.reset();
    const int attempt = attempts_;
    attempts_ = 0;
    const LinkState from = state_;
    state_ = LinkState::Connected;
    if (state_cb_) state_cb_(from, state_, attempt);
}

void Reconnector::probe_failed() {
    if (!running_ || state_ != LinkState::Probing) return;
    ++epoch_;
    transition(LinkState::BackingOff);
    schedule_probe();
}

void Reconnector::transition(LinkState to) {
    const LinkState from = state_;
    if (from == to) return;
    state_ = to;
    if (state_cb_) state_cb_(from, to, attempts_);
}

void Reconnector::begin_outage() {
    ++outages_;
    outage_started_ = clock_.now();
    attempts_ = 0;
    transition(LinkState::BackingOff);
    schedule_probe();
}

void Reconnector::schedule_probe() {
    const std::uint64_t epoch = epoch_;
    clock_.schedule_after(backoff_.next(), [this, epoch] {
        if (!running_ || epoch != epoch_ || state_ != LinkState::BackingOff) return;
        ++attempts_;
        transition(LinkState::Probing);
        // Arm the silent-failure timeout before probing: the probe callback
        // may itself deliver a synchronous verdict.
        clock_.schedule_after(params_.probe_timeout, [this, epoch] {
            if (!running_ || epoch != epoch_ || state_ != LinkState::Probing) return;
            probe_failed();
        });
        if (probe_cb_) probe_cb_();
    });
}

void Reconnector::check_liveness() {
    if (!running_ || state_ != LinkState::Connected) return;
    if (params_.liveness_timeout <= sim::Time::zero()) return;
    if (clock_.now() - last_seen_ >= params_.liveness_timeout) begin_outage();
}

}  // namespace mvc::recovery
