#include "recovery/checkpoint.hpp"

#include <array>

#include "avatar/serialize.hpp"

namespace mvc::recovery {

namespace {

constexpr std::array<std::uint32_t, 256> make_crc_table() {
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
        table[i] = c;
    }
    return table;
}

void put_string(avatar::ByteWriter& w, const std::string& s) {
    w.u32(static_cast<std::uint32_t>(s.size()));
    for (const char ch : s) w.u8(static_cast<std::uint8_t>(ch));
}

std::string get_string(avatar::ByteReader& r) {
    const std::uint32_t n = r.u32();
    if (n > r.remaining()) throw CheckpointError("checkpoint: truncated string");
    std::string s;
    s.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) s.push_back(static_cast<char>(r.u8()));
    return s;
}

void put_bytes(avatar::ByteWriter& w, const std::vector<std::uint8_t>& b) {
    w.u32(static_cast<std::uint32_t>(b.size()));
    for (const std::uint8_t v : b) w.u8(v);
}

std::vector<std::uint8_t> get_bytes(avatar::ByteReader& r) {
    const std::uint32_t n = r.u32();
    if (n > r.remaining()) throw CheckpointError("checkpoint: truncated byte block");
    std::vector<std::uint8_t> b;
    b.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) b.push_back(r.u8());
    return b;
}

void put_pose(avatar::ByteWriter& w, const math::Pose& p) {
    w.f64(p.position.x);
    w.f64(p.position.y);
    w.f64(p.position.z);
    w.f64(p.orientation.w);
    w.f64(p.orientation.x);
    w.f64(p.orientation.y);
    w.f64(p.orientation.z);
}

math::Pose get_pose(avatar::ByteReader& r) {
    math::Pose p;
    p.position.x = r.f64();
    p.position.y = r.f64();
    p.position.z = r.f64();
    p.orientation.w = r.f64();
    p.orientation.x = r.f64();
    p.orientation.y = r.f64();
    p.orientation.z = r.f64();
    return p;
}

const std::array<std::uint32_t, 256> kCrcTable = make_crc_table();

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) {
    std::uint32_t c = 0xFFFFFFFFu;
    for (const std::uint8_t b : data) c = kCrcTable[(c ^ b) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

std::uint32_t crc32(std::span<const std::uint8_t> data, std::uint32_t prev) {
    std::uint32_t c = prev ^ 0xFFFFFFFFu;
    for (const std::uint8_t b : data) c = kCrcTable[(c ^ b) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

std::vector<std::uint8_t> encode_checkpoint(const ClassroomCheckpoint& cp) {
    avatar::ByteWriter w;
    w.u32(kCheckpointMagic);
    w.u16(kCheckpointVersion);
    put_string(w, cp.node);
    w.u64(cp.sequence);
    w.u64(static_cast<std::uint64_t>(cp.taken_at_ns));

    w.u32(static_cast<std::uint32_t>(cp.seats.size()));
    for (const auto& s : cp.seats) {
        w.u32(s.seat_index);
        w.u32(s.occupant.value());
    }
    w.u32(static_cast<std::uint32_t>(cp.reservations.size()));
    for (const auto& r : cp.reservations) {
        w.u32(r.participant.value());
        w.u32(r.seat_index);
    }
    w.u32(static_cast<std::uint32_t>(cp.members.size()));
    for (const auto& m : cp.members) {
        w.u32(m.id.value());
        put_string(w, m.name);
        w.u8(m.role);
        w.u8(m.device);
        w.u8(m.physical ? 1 : 0);
        w.u32(m.room.value());
        w.u32(m.seat_index);
        w.u8(m.region);
    }
    w.u32(static_cast<std::uint32_t>(cp.content.size()));
    for (const auto& c : cp.content) {
        w.u32(c.id.value());
        w.u32(c.creator.value());
        w.u8(c.kind);
        w.u8(c.scope);
        put_string(w, c.title);
        w.u64(c.size_bytes);
        w.u64(static_cast<std::uint64_t>(c.created_at_ns));
        w.u8(c.anchored_to_person ? 1 : 0);
        w.u32(c.anchor_person.value());
        w.u8(c.anchor_consent ? 1 : 0);
    }
    w.u32(static_cast<std::uint32_t>(cp.replicas.size()));
    for (const auto& rr : cp.replicas) {
        w.u32(rr.participant.value());
        w.u32(rr.source_room.value());
        w.u8(rr.anchored ? 1 : 0);
        w.u8(rr.has_seat ? 1 : 0);
        w.u32(rr.seat_index);
        put_pose(w, rr.source_anchor);
        put_pose(w, rr.seat_pose);
        w.u64(static_cast<std::uint64_t>(rr.captured_at_ns));
        put_bytes(w, rr.reference);
    }

    std::vector<std::uint8_t> out = w.take();
    const std::uint32_t crc = crc32(out);
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>((crc >> (8 * i)) & 0xFFu));
    return out;
}

ClassroomCheckpoint decode_checkpoint(std::span<const std::uint8_t> bytes) {
    if (bytes.size() < 10) throw CheckpointError("checkpoint: too short");
    std::uint32_t stored = 0;
    for (int i = 0; i < 4; ++i)
        stored |= static_cast<std::uint32_t>(bytes[bytes.size() - 4 + i]) << (8 * i);
    if (crc32(bytes.first(bytes.size() - 4)) != stored)
        throw CheckpointError("checkpoint: checksum mismatch");

    avatar::ByteReader r(bytes.first(bytes.size() - 4));
    try {
        if (r.u32() != kCheckpointMagic) throw CheckpointError("checkpoint: bad magic");
        if (r.u16() != kCheckpointVersion)
            throw CheckpointError("checkpoint: unknown version");

        ClassroomCheckpoint cp;
        cp.node = get_string(r);
        cp.sequence = r.u64();
        cp.taken_at_ns = static_cast<std::int64_t>(r.u64());

        const std::uint32_t n_seats = r.u32();
        for (std::uint32_t i = 0; i < n_seats; ++i) {
            SeatRecord s;
            s.seat_index = r.u32();
            s.occupant = ParticipantId{r.u32()};
            cp.seats.push_back(std::move(s));
        }
        const std::uint32_t n_res = r.u32();
        for (std::uint32_t i = 0; i < n_res; ++i) {
            ReservationRecord res;
            res.participant = ParticipantId{r.u32()};
            res.seat_index = r.u32();
            cp.reservations.push_back(res);
        }
        const std::uint32_t n_members = r.u32();
        for (std::uint32_t i = 0; i < n_members; ++i) {
            MemberRecord m;
            m.id = ParticipantId{r.u32()};
            m.name = get_string(r);
            m.role = r.u8();
            m.device = r.u8();
            m.physical = r.u8() != 0;
            m.room = ClassroomId{r.u32()};
            m.seat_index = r.u32();
            m.region = r.u8();
            cp.members.push_back(std::move(m));
        }
        const std::uint32_t n_content = r.u32();
        for (std::uint32_t i = 0; i < n_content; ++i) {
            ContentRecord c;
            c.id = ContentId{r.u32()};
            c.creator = ParticipantId{r.u32()};
            c.kind = r.u8();
            c.scope = r.u8();
            c.title = get_string(r);
            c.size_bytes = r.u64();
            c.created_at_ns = static_cast<std::int64_t>(r.u64());
            c.anchored_to_person = r.u8() != 0;
            c.anchor_person = ParticipantId{r.u32()};
            c.anchor_consent = r.u8() != 0;
            cp.content.push_back(std::move(c));
        }
        const std::uint32_t n_replicas = r.u32();
        for (std::uint32_t i = 0; i < n_replicas; ++i) {
            ReplicaRecord rr;
            rr.participant = ParticipantId{r.u32()};
            rr.source_room = ClassroomId{r.u32()};
            rr.anchored = r.u8() != 0;
            rr.has_seat = r.u8() != 0;
            rr.seat_index = r.u32();
            rr.source_anchor = get_pose(r);
            rr.seat_pose = get_pose(r);
            rr.captured_at_ns = static_cast<std::int64_t>(r.u64());
            rr.reference = get_bytes(r);
            cp.replicas.push_back(std::move(rr));
        }
        if (!r.done()) throw CheckpointError("checkpoint: trailing bytes");
        return cp;
    } catch (const std::out_of_range&) {
        throw CheckpointError("checkpoint: truncated body");
    }
}

}  // namespace mvc::recovery
