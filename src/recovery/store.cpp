#include "recovery/store.hpp"

namespace mvc::recovery {

void CheckpointStore::put(const std::string& owner, std::vector<std::uint8_t> bytes) {
    auto& ring = rings_[owner];
    ring.push_back(std::move(bytes));
    while (ring.size() > retain_) ring.pop_front();
    ++total_puts_;
    if (observer_) observer_(owner, ring.back());
}

std::optional<std::vector<std::uint8_t>> CheckpointStore::latest(
    const std::string& owner) const {
    const auto it = rings_.find(owner);
    if (it == rings_.end() || it->second.empty()) return std::nullopt;
    return it->second.back();
}

std::size_t CheckpointStore::count(const std::string& owner) const {
    const auto it = rings_.find(owner);
    return it == rings_.end() ? 0 : it->second.size();
}

std::uint64_t CheckpointStore::bytes_stored(const std::string& owner) const {
    const auto it = rings_.find(owner);
    if (it == rings_.end()) return 0;
    std::uint64_t total = 0;
    for (const auto& b : it->second) total += b.size();
    return total;
}

}  // namespace mvc::recovery
