#pragma once
// Session-level reconnect state machine. One Reconnector watches one peer
// link: while Connected it expects periodic evidence of life (touch() per
// received packet or ack); when the link goes quiet past the liveness
// timeout — or the owner reports an explicit dead signal (ARQ give-up,
// heartbeat down) via suspect() — it enters an outage loop:
//
//     Connected --silence/suspect--> BackingOff --delay--> Probing
//         ^                              ^                    |
//         |                              +---- probe fails ---+
//         +-------------- probe succeeds --------------------+
//
// Probe spacing is the shared net::Backoff (exponential with decorrelated
// jitter, drawn from a named simulator RNG stream, so same-seed runs retry
// at identical times). The Reconnector never talks to the network itself:
// the owner supplies the probe action (typically a ResyncClient round trip)
// through on_probe and reports its outcome, which keeps the machine
// transport-agnostic and unit-testable.

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "net/backoff.hpp"
#include "sim/clock.hpp"

namespace mvc::recovery {

enum class LinkState : std::uint8_t {
    Connected,   ///< recent evidence of life
    BackingOff,  ///< outage declared; waiting out the current backoff delay
    Probing,     ///< probe in flight; outcome decides the next state
};

[[nodiscard]] std::string_view link_state_name(LinkState state);

struct ReconnectParams {
    /// Silence past this while Connected declares the peer dead. Zero
    /// disables the timer — only explicit suspect() calls start an outage.
    sim::Time liveness_timeout{sim::Time::seconds(2.0)};
    /// How often the liveness timer is evaluated while Connected.
    sim::Time check_interval{sim::Time::ms(250)};
    /// A probe with no verdict after this long counts as failed (covers
    /// probe transports that abandon silently).
    sim::Time probe_timeout{sim::Time::seconds(2.0)};
    /// Probe spacing.
    net::BackoffParams backoff{};
};

class Reconnector {
public:
    /// State-transition callback: old state, new state, and the number of
    /// probes attempted in the current outage (0 outside outages).
    using StateFn = std::function<void(LinkState from, LinkState to, int attempt)>;
    /// Fired on entry to Probing; the owner performs the actual probe and
    /// later calls probe_succeeded() or probe_failed().
    using ProbeFn = std::function<void()>;

    /// `name` scopes the backoff jitter RNG stream ("reconnect/<name>").
    Reconnector(sim::Clock& clock, ReconnectParams params, std::string name);
    ~Reconnector();

    Reconnector(const Reconnector&) = delete;
    Reconnector& operator=(const Reconnector&) = delete;

    void on_state(StateFn fn) { state_cb_ = std::move(fn); }
    void on_probe(ProbeFn fn) { probe_cb_ = std::move(fn); }

    /// Begin watching (starts Connected with the liveness clock at now).
    void start();
    void stop();

    /// Evidence of life from the peer. While Connected this feeds the
    /// liveness timer; during an outage it is ignored (stray packets do not
    /// end an outage — only a successful probe proves the path works and
    /// re-synchronises state).
    void touch();
    /// Explicit dead signal; immediately starts an outage when Connected.
    void suspect();
    /// Probe verdicts, reported by the owner's prober.
    void probe_succeeded();
    void probe_failed();

    [[nodiscard]] LinkState state() const { return state_; }
    [[nodiscard]] bool connected() const { return state_ == LinkState::Connected; }
    /// Probes attempted in the current outage.
    [[nodiscard]] int attempts() const { return attempts_; }
    /// Completed outage -> Connected recoveries.
    [[nodiscard]] std::uint64_t reconnects() const { return reconnects_; }
    /// Outages declared (suspect or liveness expiry while Connected).
    [[nodiscard]] std::uint64_t outages() const { return outages_; }
    /// Duration of the most recently completed outage.
    [[nodiscard]] sim::Time last_outage() const { return last_outage_; }

private:
    sim::Clock& clock_;
    ReconnectParams params_;
    std::string name_;
    net::Backoff backoff_;
    StateFn state_cb_;
    ProbeFn probe_cb_;
    LinkState state_{LinkState::Connected};
    bool running_{false};
    sim::Time last_seen_{};
    sim::Time outage_started_{};
    sim::Time last_outage_{};
    int attempts_{0};
    std::uint64_t reconnects_{0};
    std::uint64_t outages_{0};
    std::uint64_t epoch_{0};  ///< invalidates in-flight timer closures
    sim::EventHandle check_task_;

    void transition(LinkState to);
    void begin_outage();
    void schedule_probe();
    void check_liveness();
};

}  // namespace mvc::recovery
