#include "recovery/resync.hpp"

#include <utility>

namespace mvc::recovery {

namespace {

constexpr std::size_t kRequestBytes = 24;
constexpr std::size_t kEntryOverheadBytes = 16;

std::size_t snapshot_wire_bytes(const ResyncSnapshot& snap) {
    std::size_t total = 24;
    for (const auto& e : snap.entries) total += kEntryOverheadBytes + e.bytes.size();
    return total;
}

}  // namespace

// ------------------------------------------------------------ ResyncResponder

ResyncResponder::ResyncResponder(net::Backend& net, net::PacketDemux& demux,
                                 SnapshotFn snapshot, ServedFn on_served)
    : net_(net),
      node_(demux.node()),
      snap_tx_(net.open_channel({.src = node_,
                                 .flow = kResyncSnapFlow,
                                 .options = {.priority = net::Priority::Control}})),
      served_id_(net.metrics().counter_id("recovery.resync_served",
                                          {{"node", net.name_of(node_)}})),
      snapshot_(std::move(snapshot)),
      on_served_(std::move(on_served)) {
    demux.on_flow(kResyncReqFlow, [this](net::Packet&& p) {
        const auto req = p.payload.get<ResyncRequest>();
        ResyncSnapshot snap;
        snap.nonce = req.nonce;
        snap.served_at = net_.clock().now();
        snap.entries = snapshot_();
        const std::size_t bytes = snapshot_wire_bytes(snap);
        net_.metrics().count(served_id_);
        snap_tx_.send_to(p.src, bytes, std::move(snap));
        ++served_;
        if (on_served_) on_served_();
    });
}

// --------------------------------------------------------------- ResyncClient

ResyncClient::ResyncClient(net::Backend& net, net::PacketDemux& demux, ApplyFn apply,
                           ResyncClientParams params)
    : net_(net),
      node_(demux.node()),
      req_tx_(net.open_channel({.src = node_,
                                .flow = kResyncReqFlow,
                                .options = {.priority = net::Priority::Control}})),
      abandoned_id_(net.metrics().counter_id("recovery.resync_abandoned",
                                             {{"node", net.name_of(node_)}})),
      rtt_id_(net.metrics().series_id("recovery.resync_rtt_ms",
                                      {{"node", net.name_of(node_)}})),
      apply_(std::move(apply)),
      params_(params) {
    demux.on_flow(kResyncSnapFlow,
                  [this](net::Packet&& p) { handle_snapshot(std::move(p)); });
}

void ResyncClient::request(net::NodeId peer) {
    const std::uint64_t nonce = next_nonce_++;
    Pending pending;
    pending.peer = peer;
    pending.first_sent = net_.clock().now();
    pending_.emplace(nonce, pending);
    transmit(nonce);
}

void ResyncClient::transmit(std::uint64_t nonce) {
    auto it = pending_.find(nonce);
    if (it == pending_.end()) return;
    Pending& p = it->second;
    if (p.attempts >= params_.max_attempts) {
        net_.clock().cancel(p.retry);
        pending_.erase(it);
        ++abandoned_;
        net_.metrics().count(abandoned_id_);
        return;
    }
    ++p.attempts;
    ResyncRequest req{nonce, p.first_sent};
    req_tx_.send_to(p.peer, kRequestBytes, req);
    p.retry = net_.clock().schedule_after(params_.retry_interval, [this, nonce] {
        if (pending_.contains(nonce)) transmit(nonce);
    });
}

void ResyncClient::handle_snapshot(net::Packet&& p) {
    auto snap = p.payload.take<ResyncSnapshot>();
    auto it = pending_.find(snap.nonce);
    if (it == pending_.end()) return;  // stale or duplicate reply
    net_.clock().cancel(it->second.retry);
    const net::NodeId from = it->second.peer;
    last_rtt_ms_ = (net_.clock().now() - it->second.first_sent).to_ms();
    pending_.erase(it);
    ++completed_;
    net_.metrics().sample(rtt_id_, last_rtt_ms_);
    apply_(snap, from);
}

}  // namespace mvc::recovery
