#pragma once
// Periodic checkpoint driver. The owning server supplies a capture function
// that fills a ClassroomCheckpoint from its live state; the Checkpointer
// runs it on a fixed cadence, stamps a monotonic sequence number, encodes
// (checksummed, versioned — see checkpoint.hpp) and writes the result into
// the CheckpointStore. Pause/resume brackets a simulated crash: a down
// process takes no checkpoints, but the store keeps what it already wrote.

#include <functional>
#include <string>

#include "recovery/checkpoint.hpp"
#include "recovery/store.hpp"
#include "sim/metrics.hpp"
#include "sim/clock.hpp"

namespace mvc::recovery {

struct RecoveryParams {
    bool enabled{false};
    /// Take periodic checkpoints. Off (with enabled=true) is the
    /// no-checkpoint baseline: crashes still wipe replicated state, but
    /// every restart is a cold start.
    bool checkpoints{true};
    /// Ask live peers for a state snapshot after restart (one round trip).
    bool resync{true};
    /// Cadence of periodic checkpoints.
    sim::Time checkpoint_interval{sim::Time::seconds(2.0)};
    /// Checkpoints retained per owner in the store.
    std::size_t retain{3};
    /// Shared durable store; must outlive the servers. When null with
    /// enabled=true the owner allocates nothing and checkpointing is off.
    CheckpointStore* store{nullptr};
};

class Checkpointer {
public:
    using CaptureFn = std::function<void(ClassroomCheckpoint&)>;

    Checkpointer(sim::Clock& clock, sim::MetricsRecorder& metrics,
                 RecoveryParams params, std::string owner, CaptureFn capture);
    ~Checkpointer();

    Checkpointer(const Checkpointer&) = delete;
    Checkpointer& operator=(const Checkpointer&) = delete;

    void start();
    void pause();   // crash: stop taking checkpoints
    void resume();  // restart: resume the cadence from now

    /// Take one checkpoint immediately (also used by the periodic task).
    void checkpoint_now();

    [[nodiscard]] std::uint64_t taken() const { return taken_; }
    [[nodiscard]] std::uint64_t next_sequence() const { return next_sequence_; }
    [[nodiscard]] const RecoveryParams& params() const { return params_; }

private:
    sim::Clock& sim_;
    sim::MetricsRecorder& metrics_;
    RecoveryParams params_;
    std::string owner_;
    sim::MetricId checkpoint_bytes_id_;
    sim::MetricId checkpoint_id_;
    CaptureFn capture_;
    sim::EventHandle task_{};
    bool running_{false};
    std::uint64_t next_sequence_{1};
    std::uint64_t taken_{0};
};

}  // namespace mvc::recovery
