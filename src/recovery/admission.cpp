#include "recovery/admission.hpp"

namespace mvc::recovery {

AdmissionGate::AdmissionGate(AdmissionParams params) : params_(params) {}

bool AdmissionGate::update(std::size_t depth, sim::Time now) {
    if (!params_.enabled) return false;

    if (depth >= params_.shed_enter_depth) {
        if (above_since_ == sim::Time::max()) above_since_ = now;
    } else {
        above_since_ = sim::Time::max();
    }
    if (depth <= params_.shed_exit_depth) {
        if (below_since_ == sim::Time::max()) below_since_ = now;
    } else {
        below_since_ = sim::Time::max();
    }

    if (!shedding_ && above_since_ != sim::Time::max() &&
        now - above_since_ >= params_.hold) {
        shedding_ = true;
        ++transitions_;
        above_since_ = sim::Time::max();
        return true;
    }
    if (shedding_ && below_since_ != sim::Time::max() &&
        now - below_since_ >= params_.hold) {
        shedding_ = false;
        ++transitions_;
        below_since_ = sim::Time::max();
        return true;
    }
    return false;
}

}  // namespace mvc::recovery
