#pragma once
// Overload admission control for edge/cloud ingress. The server's ingress
// queue is bounded (drop-oldest); on top of it the AdmissionGate watches
// queue depth with the same enter/exit-threshold + hold hysteresis as
// fault::DegradationPolicy: depth at/above `shed_enter_depth` for `hold`
// starts shedding, depth at/below `shed_exit_depth` for `hold` stops. While
// shedding, the server rejects *new* (late-joining, low-priority) avatar
// streams but keeps already-admitted streams flowing, so overload degrades
// the experience of newcomers instead of everyone.

#include <cstddef>

#include "sim/time.hpp"

namespace mvc::recovery {

struct AdmissionParams {
    bool enabled{false};
    /// Bounded ingress queue capacity (packets); oldest dropped on overflow.
    std::size_t queue_capacity{256};
    /// Queue depth at/above which the gate starts shedding after `hold`.
    std::size_t shed_enter_depth{192};
    /// Queue depth at/below which the gate stops shedding after `hold`.
    std::size_t shed_exit_depth{64};
    /// How long depth must stay past a threshold before the gate acts.
    sim::Time hold{sim::Time::ms(50.0)};
};

class AdmissionGate {
public:
    explicit AdmissionGate(AdmissionParams params = {});

    /// Feed one queue-depth observation at simulated time `now`; returns
    /// true when the shedding state flipped.
    bool update(std::size_t depth, sim::Time now);

    [[nodiscard]] bool shedding() const { return shedding_; }
    /// Total shed-state flips (enter + exit) — a flap counter for tests.
    [[nodiscard]] std::uint64_t transitions() const { return transitions_; }
    [[nodiscard]] const AdmissionParams& params() const { return params_; }

private:
    AdmissionParams params_;
    bool shedding_{false};
    std::uint64_t transitions_{0};
    // Time::max() means "signal not currently past that threshold".
    sim::Time above_since_{sim::Time::max()};
    sim::Time below_since_{sim::Time::max()};
};

}  // namespace mvc::recovery
