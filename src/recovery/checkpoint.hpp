#pragma once
// Checkpointed classroom state: everything a server must persist to rejoin
// a running class after a process crash without waiting for the replication
// layer to resend it — seat occupancy and reservations (edge/seats), session
// membership and contributed content (session/), and the reference state of
// every remote avatar replica plus its exact retarget binding
// (sync/replication + edge/retarget). Local participants are deliberately
// NOT checkpointed: they are physically present and re-sensed on restart;
// what a crash loses is the *replicated* view of everyone else.
//
// The wire format is versioned, little-endian (avatar::ByteWriter), and
// carries a trailing CRC-32 over header+body so torn or bit-flipped
// checkpoints are rejected (decode throws CheckpointError) instead of
// silently restoring garbage.

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "math/pose.hpp"
#include "sim/time.hpp"

namespace mvc::recovery {

/// One occupied seat in the room's SeatMap.
struct SeatRecord {
    std::uint32_t seat_index{0};
    ParticipantId occupant;

    friend bool operator==(const SeatRecord&, const SeatRecord&) = default;
};

/// A reserved (held-open) seat, e.g. for a guest speaker.
struct ReservationRecord {
    ParticipantId participant;
    std::uint32_t seat_index{0};

    friend bool operator==(const ReservationRecord&, const ReservationRecord&) = default;
};

/// One enrolled participant (session roster). Comfort profiles are omitted:
/// they are renegotiated by the client device on reconnect.
struct MemberRecord {
    ParticipantId id;
    std::string name;
    std::uint8_t role{0};
    std::uint8_t device{0};
    bool physical{false};
    ClassroomId room;               // valid when physical
    std::uint32_t seat_index{0};    // valid when physical
    std::uint8_t region{0};         // valid when remote

    friend bool operator==(const MemberRecord&, const MemberRecord&) = default;
};

/// One admitted item of the append-only content ledger.
struct ContentRecord {
    ContentId id;
    ParticipantId creator;
    std::uint8_t kind{0};
    std::uint8_t scope{0};
    std::string title;
    std::uint64_t size_bytes{0};
    std::int64_t created_at_ns{0};
    bool anchored_to_person{false};
    ParticipantId anchor_person;
    bool anchor_consent{false};

    friend bool operator==(const ContentRecord&, const ContentRecord&) = default;
};

/// The replicated view of one remote avatar: the last full reference state
/// (re-ingested as a keyframe on restore so delta decoding resumes) plus the
/// seat assignment and the exact retarget transform bound at anchor time.
struct ReplicaRecord {
    ParticipantId participant;
    ClassroomId source_room;
    bool anchored{false};
    bool has_seat{false};
    std::uint32_t seat_index{0};
    math::Pose source_anchor;   // retarget binding (valid when anchored)
    math::Pose seat_pose;
    std::int64_t captured_at_ns{0};
    std::vector<std::uint8_t> reference;  // encoded full avatar state

    friend bool operator==(const ReplicaRecord&, const ReplicaRecord&) = default;
};

struct ClassroomCheckpoint {
    std::string node;           // owning server's node name
    std::uint64_t sequence{0};  // monotonic per owner
    std::int64_t taken_at_ns{0};
    std::vector<SeatRecord> seats;
    std::vector<ReservationRecord> reservations;
    std::vector<MemberRecord> members;
    std::vector<ContentRecord> content;
    std::vector<ReplicaRecord> replicas;

    [[nodiscard]] sim::Time taken_at() const { return sim::Time::ns(taken_at_ns); }

    friend bool operator==(const ClassroomCheckpoint&, const ClassroomCheckpoint&) = default;
};

/// Thrown by decode_checkpoint on any corruption: bad magic, unknown
/// version, checksum mismatch, truncation, or trailing bytes.
class CheckpointError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

inline constexpr std::uint32_t kCheckpointMagic = 0x4D56434B;  // "MVCK"
inline constexpr std::uint16_t kCheckpointVersion = 1;

/// CRC-32 (IEEE 802.3 polynomial, reflected). Exposed for tests.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data);
/// Streaming form: crc32(b, crc32(a)) == crc32(a || b). Lets callers cover
/// a header and a payload without concatenating them.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data, std::uint32_t prev);

[[nodiscard]] std::vector<std::uint8_t> encode_checkpoint(const ClassroomCheckpoint& cp);
[[nodiscard]] ClassroomCheckpoint decode_checkpoint(std::span<const std::uint8_t> bytes);

}  // namespace mvc::recovery
