#include "recovery/checkpointer.hpp"

#include <utility>

namespace mvc::recovery {

Checkpointer::Checkpointer(sim::Clock& clock, sim::MetricsRecorder& metrics,
                           RecoveryParams params, std::string owner, CaptureFn capture)
    : sim_(clock),
      metrics_(metrics),
      params_(params),
      owner_(std::move(owner)),
      checkpoint_bytes_id_(
          metrics.series_id("recovery.checkpoint_bytes", {{"owner", owner_}})),
      checkpoint_id_(metrics.counter_id("recovery.checkpoint", {{"owner", owner_}})),
      capture_(std::move(capture)) {}

Checkpointer::~Checkpointer() { pause(); }

void Checkpointer::start() {
    if (running_ || !params_.enabled || params_.store == nullptr) return;
    running_ = true;
    task_ = sim_.schedule_every(params_.checkpoint_interval, [this] { checkpoint_now(); });
}

void Checkpointer::pause() {
    if (!running_) return;
    running_ = false;
    sim_.cancel(task_);
    task_ = {};
}

void Checkpointer::resume() { start(); }

void Checkpointer::checkpoint_now() {
    if (!params_.enabled || params_.store == nullptr) return;
    ClassroomCheckpoint cp;
    cp.node = owner_;
    cp.sequence = next_sequence_++;
    cp.taken_at_ns = sim_.now().nanos();
    capture_(cp);
    std::vector<std::uint8_t> bytes = encode_checkpoint(cp);
    metrics_.sample(checkpoint_bytes_id_, static_cast<double>(bytes.size()));
    metrics_.count(checkpoint_id_);
    params_.store->put(owner_, std::move(bytes));
    ++taken_;
}

}  // namespace mvc::recovery
