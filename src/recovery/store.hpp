#pragma once
// Durable checkpoint storage, modeled as per-owner local disk: a bounded
// ring of encoded checkpoints keyed by the owning node's name. The store
// lives *outside* the server objects, so a simulated process crash (which
// wipes the server's volatile state) leaves it intact — exactly the
// contract a real deployment gets from the server's local SSD or a
// write-behind object store.

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mvc::recovery {

class CheckpointStore {
public:
    /// Retain at most `retain` checkpoints per owner (oldest evicted first).
    explicit CheckpointStore(std::size_t retain = 3) : retain_(retain) {}

    void put(const std::string& owner, std::vector<std::uint8_t> bytes);

    /// Observe every successful put (after the ring is updated). At most one
    /// observer; pass nullptr to clear. Session recording mirrors each
    /// checkpoint into the trace as a seek keyframe through this hook.
    using PutObserver =
        std::function<void(const std::string& owner, const std::vector<std::uint8_t>& bytes)>;
    void set_observer(PutObserver observer) { observer_ = std::move(observer); }

    /// Most recent checkpoint for `owner`; nullopt when none stored.
    [[nodiscard]] std::optional<std::vector<std::uint8_t>> latest(
        const std::string& owner) const;

    [[nodiscard]] std::size_t count(const std::string& owner) const;
    /// Total encoded bytes currently held for `owner`.
    [[nodiscard]] std::uint64_t bytes_stored(const std::string& owner) const;
    [[nodiscard]] std::uint64_t total_puts() const { return total_puts_; }

private:
    std::size_t retain_;
    std::map<std::string, std::deque<std::vector<std::uint8_t>>> rings_;
    std::uint64_t total_puts_{0};
    PutObserver observer_;
};

}  // namespace mvc::recovery
