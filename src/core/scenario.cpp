#include "core/scenario.hpp"

#include <stdexcept>

namespace mvc::core {

std::optional<net::Region> region_from_name(std::string_view name) {
    for (const net::Region r : net::all_regions()) {
        if (net::region_name(r) == name) return r;
    }
    return std::nullopt;
}

std::optional<session::ActivityKind> activity_from_name(std::string_view name) {
    using session::ActivityKind;
    for (const ActivityKind k :
         {ActivityKind::Lecture, ActivityKind::Qa, ActivityKind::GamifiedBreakout,
          ActivityKind::LearnerPresentation, ActivityKind::VirtualLab}) {
        if (session::activity_name(k) == name) return k;
    }
    return std::nullopt;
}

namespace {

[[noreturn]] void bad_field(const std::string& field, const std::string& why) {
    throw std::runtime_error("scenario: field '" + field + "' " + why);
}

}  // namespace

Scenario scenario_from_json(const common::Json& doc) {
    if (!doc.is_object()) throw std::runtime_error("scenario: document must be an object");
    Scenario s;
    s.config.seed = static_cast<std::uint64_t>(doc.number_or("seed", 42.0));
    s.config.course = doc.string_or("course", "Metaverse Classroom");
    s.config.regional_mesh = doc.bool_or("regional_mesh", false);
    s.config.lightweight_remote_clients = doc.bool_or("lightweight_remote", false);
    s.config.event_bus = doc.bool_or("event_bus", true);
    s.duration = sim::Time::seconds(doc.number_or("duration_s", 60.0));

    if (const common::Json* rooms = doc.find("rooms")) {
        for (const common::Json& room : rooms->as_array()) {
            PhysicalRoomConfig rc;
            rc.name = room.string_or("name",
                                     "room" + std::to_string(s.config.rooms.size() + 1));
            const std::string region_name = room.string_or("region", "HongKong");
            const auto region = region_from_name(region_name);
            if (!region.has_value()) bad_field("rooms[].region", "unknown: " + region_name);
            rc.region = *region;
            rc.seat_rows = static_cast<std::size_t>(room.number_or("rows", 5.0));
            rc.seat_cols = static_cast<std::size_t>(room.number_or("cols", 6.0));
            rc.headset = sensing::tethered_mr_params();
            if (rc.seat_rows == 0 || rc.seat_cols == 0)
                bad_field("rooms[].rows/cols", "must be positive");
            s.config.rooms.push_back(rc);

            Scenario::RoomSpec spec;
            spec.students = static_cast<std::size_t>(room.number_or("students", 0.0));
            spec.instructor = room.bool_or("instructor", false);
            if (spec.students > rc.seat_rows * rc.seat_cols)
                bad_field("rooms[].students", "exceed seat capacity");
            s.room_specs.push_back(spec);
        }
    }
    if (s.config.rooms.empty()) {
        s.config.rooms = {cwb_room_config(), gz_room_config()};
        s.room_specs = {{6, true}, {6, false}};
    }

    if (const common::Json* remote = doc.find("remote")) {
        for (const common::Json& r : remote->as_array()) {
            Scenario::RemoteSpec spec;
            const std::string region_name = r.string_or("region", "Seoul");
            const auto region = region_from_name(region_name);
            if (!region.has_value()) bad_field("remote[].region", "unknown: " + region_name);
            spec.region = *region;
            spec.count = static_cast<std::size_t>(r.number_or("count", 1.0));
            s.remote.push_back(spec);
        }
    }

    if (const common::Json* media = doc.find("lecture_media_room")) {
        const auto idx = static_cast<std::size_t>(media->as_number());
        if (idx >= s.config.rooms.size())
            bad_field("lecture_media_room", "out of range");
        s.lecture_media_room = idx;
    }

    if (const common::Json* schedule = doc.find("schedule")) {
        for (const common::Json& block : schedule->as_array()) {
            Scenario::ScheduleSpec spec;
            const std::string name = block.string_or("activity", "lecture");
            const auto kind = activity_from_name(name);
            if (!kind.has_value()) bad_field("schedule[].activity", "unknown: " + name);
            spec.kind = *kind;
            spec.duration = sim::Time::seconds(block.number_or("minutes", 10.0) * 60.0);
            spec.team_size = static_cast<std::size_t>(block.number_or("team_size", 0.0));
            s.schedule.push_back(spec);
        }
    }
    return s;
}

Scenario scenario_from_text(std::string_view text) {
    return scenario_from_json(common::Json::parse(text));
}

ClassReport run_scenario(const Scenario& scenario) {
    MetaverseClassroom classroom{scenario.config};
    for (std::size_t i = 0; i < scenario.room_specs.size(); ++i) {
        const auto& spec = scenario.room_specs[i];
        if (spec.instructor) classroom.add_instructor(i);
        for (std::size_t n = 0; n < spec.students; ++n) {
            classroom.add_physical_student(i);
        }
    }
    for (const auto& remote : scenario.remote) {
        for (std::size_t n = 0; n < remote.count; ++n) {
            classroom.add_remote_student(remote.region);
        }
    }
    for (const auto& block : scenario.schedule) {
        classroom.class_session().schedule().append(block.kind, block.duration,
                                                    block.team_size);
    }
    if (scenario.lecture_media_room.has_value()) {
        classroom.enable_lecture_media(*scenario.lecture_media_room);
    }
    classroom.start();
    classroom.run_for(scenario.duration);
    classroom.stop();
    return classroom.report();
}

common::Json series_to_json(const math::SampleSeries& s) {
    common::JsonObject obj;
    obj["n"] = common::Json{static_cast<double>(s.count())};
    obj["mean"] = common::Json{s.mean()};
    obj["p50"] = common::Json{s.median()};
    obj["p95"] = common::Json{s.p95()};
    obj["p99"] = common::Json{s.p99()};
    return common::Json{std::move(obj)};
}

common::Json report_to_json(const ClassReport& report) {
    common::JsonObject obj;
    obj["physical_participants"] = common::Json{static_cast<double>(report.physical_participants)};
    obj["remote_participants"] = common::Json{static_cast<double>(report.remote_participants)};
    obj["mr_display_latency_ms"] = series_to_json(report.mr_display_latency_ms);
    obj["mr_cross_campus_ms"] = series_to_json(report.mr_cross_campus_ms);
    obj["mr_remote_origin_ms"] = series_to_json(report.mr_remote_origin_ms);
    obj["vr_display_latency_ms"] = series_to_json(report.vr_display_latency_ms);
    obj["event_visibility_ms"] = series_to_json(report.event_visibility_ms);
    obj["clock_sync_error_ms"] = common::Json{report.clock_sync_error_ms};
    obj["avatar_bytes"] = common::Json{static_cast<double>(report.avatar_bytes)};
    obj["total_bytes"] = common::Json{static_cast<double>(report.total_bytes)};
    obj["wifi_utilization_max"] = common::Json{report.wifi_utilization_max};
    obj["participation_ratio"] = common::Json{report.participation_ratio};
    obj["seats_exhausted"] = common::Json{static_cast<double>(report.seats_exhausted)};
    if (report.media_enabled) {
        common::JsonObject media;
        media["bytes"] = common::Json{static_cast<double>(report.media_bytes)};
        media["worst_camera_db"] = common::Json{report.media_worst_camera_db};
        media["av_skew_p95_ms"] = common::Json{report.media_av_skew_p95_ms};
        obj["media"] = common::Json{std::move(media)};
    }
    return common::Json{std::move(obj)};
}

}  // namespace mvc::core
