#include "core/wire_codecs.hpp"

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "fault/heartbeat.hpp"
#include "net/transport.hpp"
#include "net/wire_format.hpp"
#include "recovery/resync.hpp"
#include "sync/clock.hpp"
#include "sync/wire.hpp"

namespace mvc::core {

namespace {

using net::wiredata::put;
using net::wiredata::put_bytes;
using net::wiredata::Reader;

void put_avatar(std::vector<std::byte>& out, const sync::AvatarWire& w) {
    put<std::uint32_t>(out, w.participant.value());
    put<std::uint32_t>(out, w.source_room.value());
    put<std::uint8_t>(out, w.keyframe ? 1 : 0);
    put<std::uint32_t>(out, w.seq);
    put<std::int64_t>(out, w.captured_at.nanos());
    put_bytes(out, w.bytes);
    put<std::uint32_t>(out, static_cast<std::uint32_t>(w.relay_to.size()));
    for (const std::uint32_t n : w.relay_to) put<std::uint32_t>(out, n);
}

sync::AvatarWire get_avatar(Reader& r) {
    sync::AvatarWire w;
    w.participant = ParticipantId{r.get<std::uint32_t>()};
    w.source_room = ClassroomId{r.get<std::uint32_t>()};
    w.keyframe = r.get<std::uint8_t>() != 0;
    w.seq = r.get<std::uint32_t>();
    w.captured_at = sim::Time::ns(r.get<std::int64_t>());
    w.bytes = r.get_bytes();
    const auto relays = r.get<std::uint32_t>();
    w.relay_to.reserve(r.ok ? relays : 0);
    for (std::uint32_t i = 0; r.ok && i < relays; ++i)
        w.relay_to.push_back(r.get<std::uint32_t>());
    return w;
}

/// Wrap a field-wise decode with the "consumed the whole body, no overrun"
/// check every codec needs.
template <class T, class GetFn>
net::WireCodecs::Decode whole_body(GetFn get) {
    return [get](std::span<const std::byte> body) -> std::optional<net::Payload> {
        Reader r{body};
        T value = get(r);
        if (!r.ok || r.pos != body.size()) return std::nullopt;
        return net::Payload{std::move(value)};
    };
}

}  // namespace

void register_wire_codecs() {
    net::WireCodecs& codecs = net::WireCodecs::instance();

    codecs.register_codec<sync::AvatarWire>(
        kTagAvatar,
        [](const net::Payload& p, std::vector<std::byte>& out) {
            put_avatar(out, p.get<sync::AvatarWire>());
        },
        whole_body<sync::AvatarWire>([](Reader& r) { return get_avatar(r); }));

    codecs.register_codec<sync::AvatarBatchWire>(
        kTagAvatarBatch,
        [](const net::Payload& p, std::vector<std::byte>& out) {
            const auto& batch = p.get<sync::AvatarBatchWire>();
            put<std::uint32_t>(out, static_cast<std::uint32_t>(batch.updates.size()));
            for (const sync::AvatarWire& u : batch.updates) put_avatar(out, u);
        },
        whole_body<sync::AvatarBatchWire>([](Reader& r) {
            sync::AvatarBatchWire batch;
            const auto count = r.get<std::uint32_t>();
            batch.updates.reserve(r.ok ? count : 0);
            for (std::uint32_t i = 0; r.ok && i < count; ++i)
                batch.updates.push_back(get_avatar(r));
            return batch;
        }));

    codecs.register_codec<fault::HeartbeatWire>(
        kTagHeartbeat,
        [](const net::Payload& p, std::vector<std::byte>& out) {
            put<std::uint64_t>(out, p.get<fault::HeartbeatWire>().seq);
        },
        whole_body<fault::HeartbeatWire>([](Reader& r) {
            return fault::HeartbeatWire{r.get<std::uint64_t>()};
        }));

    sync::ClockSyncSession::register_wire_codecs(codecs, kTagClockRequest,
                                                 kTagClockReply);

    codecs.register_codec<recovery::ResyncRequest>(
        kTagResyncRequest,
        [](const net::Payload& p, std::vector<std::byte>& out) {
            const auto& req = p.get<recovery::ResyncRequest>();
            put<std::uint64_t>(out, req.nonce);
            put<std::int64_t>(out, req.requested_at.nanos());
        },
        whole_body<recovery::ResyncRequest>([](Reader& r) {
            recovery::ResyncRequest req;
            req.nonce = r.get<std::uint64_t>();
            req.requested_at = sim::Time::ns(r.get<std::int64_t>());
            return req;
        }));

    codecs.register_codec<recovery::ResyncSnapshot>(
        kTagResyncSnapshot,
        [](const net::Payload& p, std::vector<std::byte>& out) {
            const auto& snap = p.get<recovery::ResyncSnapshot>();
            put<std::uint64_t>(out, snap.nonce);
            put<std::int64_t>(out, snap.served_at.nanos());
            put<std::uint32_t>(out, static_cast<std::uint32_t>(snap.entries.size()));
            for (const recovery::ResyncEntry& e : snap.entries) {
                put<std::uint32_t>(out, e.participant.value());
                put<std::uint32_t>(out, e.source_room.value());
                put<std::int64_t>(out, e.captured_at.nanos());
                put_bytes(out, e.bytes);
            }
        },
        whole_body<recovery::ResyncSnapshot>([](Reader& r) {
            recovery::ResyncSnapshot snap;
            snap.nonce = r.get<std::uint64_t>();
            snap.served_at = sim::Time::ns(r.get<std::int64_t>());
            const auto count = r.get<std::uint32_t>();
            snap.entries.reserve(r.ok ? count : 0);
            for (std::uint32_t i = 0; r.ok && i < count; ++i) {
                recovery::ResyncEntry e;
                e.participant = ParticipantId{r.get<std::uint32_t>()};
                e.source_room = ClassroomId{r.get<std::uint32_t>()};
                e.captured_at = sim::Time::ns(r.get<std::int64_t>());
                e.bytes = r.get_bytes();
                snap.entries.push_back(std::move(e));
            }
            return snap;
        }));

    net::ReliableChannel::register_wire_codecs(codecs, kTagArqData);

    codecs.register_codec<std::uint64_t>(
        kTagSeq,
        [](const net::Payload& p, std::vector<std::byte>& out) {
            put<std::uint64_t>(out, p.get<std::uint64_t>());
        },
        whole_body<std::uint64_t>([](Reader& r) { return r.get<std::uint64_t>(); }));

    codecs.register_codec<std::string>(
        kTagText,
        [](const net::Payload& p, std::vector<std::byte>& out) {
            const auto& s = p.get<std::string>();
            put<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()));
            for (const char c : s) out.push_back(static_cast<std::byte>(c));
        },
        whole_body<std::string>([](Reader& r) {
            const auto n = r.get<std::uint32_t>();
            const auto b = r.bytes(n);
            return std::string{reinterpret_cast<const char*>(b.data()), b.size()};
        }));
}

}  // namespace mvc::core
