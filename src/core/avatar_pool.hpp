#pragma once
// Dense structure-of-arrays avatar storage. A shard's per-tick work over
// its avatars — integrate motion, test dirty thresholds, re-bucket the
// interest grid — should be a cache-linear sweep over parallel arrays, not
// a pointer chase through per-object replica graphs. The pool keeps one
// column per field (position, velocity, wire seq, LOD, dirty bit) indexed
// by a dense row; rows are kept packed by swap-remove, and generation-
// stamped handles stay stable across packing and free-list reuse.
//
// Contract: column spans are index-aligned views over the same rows;
// add/remove invalidates spans and dense indices (handles stay valid).

#include <cstdint>
#include <span>
#include <vector>

#include "common/ids.hpp"
#include "math/vec3.hpp"

namespace mvc::core {

/// Stable reference to a pooled avatar: an index into the slot table plus
/// the slot's generation at acquisition. Reusing a freed slot bumps the
/// generation, so handles to removed avatars go stale instead of aliasing
/// the new occupant.
struct AvatarHandle {
    std::uint32_t slot{UINT32_MAX};
    std::uint32_t generation{0};

    [[nodiscard]] constexpr bool valid() const { return slot != UINT32_MAX; }
    friend constexpr bool operator==(const AvatarHandle&, const AvatarHandle&) = default;
};

class AvatarPool {
public:
    static constexpr std::uint32_t kNoIndex = UINT32_MAX;

    /// Fixed-layout wire record for one avatar row (see encode_record).
    struct Record {
        EntityId id;
        math::Vec3 position;
        math::Vec3 velocity;
        std::uint32_t seq{0};
        std::uint8_t lod{0};
    };
    /// id u32 | seq u32 | lod u8 | position 3xf32 | velocity 3xf32.
    static constexpr std::size_t kRecordBytes = 4 + 4 + 1 + 12 + 12;

    AvatarPool() = default;
    void reserve(std::size_t capacity);

    AvatarHandle add(EntityId id, const math::Vec3& position,
                     const math::Vec3& velocity = math::Vec3::zero());
    /// Removes the avatar behind `h`; false if the handle is stale. The
    /// last row is swapped into the vacated row to keep columns packed.
    bool remove(AvatarHandle h);
    [[nodiscard]] bool alive(AvatarHandle h) const;
    [[nodiscard]] std::size_t size() const { return ids_.size(); }
    [[nodiscard]] std::size_t free_slots() const { return free_.size(); }

    /// Dense row of a live handle, or kNoIndex when stale.
    [[nodiscard]] std::uint32_t index_of(AvatarHandle h) const;
    /// Handle of the avatar currently stored in dense row `index`.
    [[nodiscard]] AvatarHandle handle_at(std::uint32_t index) const;

    // Index-aligned SoA columns. Mutable spans are the per-tick sweep
    // surface; rows are added/removed only through add()/remove().
    [[nodiscard]] std::span<const EntityId> ids() const { return ids_; }
    [[nodiscard]] std::span<math::Vec3> positions() { return positions_; }
    [[nodiscard]] std::span<const math::Vec3> positions() const { return positions_; }
    [[nodiscard]] std::span<math::Vec3> velocities() { return velocities_; }
    [[nodiscard]] std::span<const math::Vec3> velocities() const { return velocities_; }
    [[nodiscard]] std::span<std::uint32_t> seqs() { return seqs_; }
    [[nodiscard]] std::span<const std::uint32_t> seqs() const { return seqs_; }
    [[nodiscard]] std::span<std::uint8_t> lods() { return lods_; }
    [[nodiscard]] std::span<const std::uint8_t> lods() const { return lods_; }
    [[nodiscard]] std::span<std::uint8_t> dirty() { return dirty_; }
    [[nodiscard]] std::span<const std::uint8_t> dirty() const { return dirty_; }

    /// Reset every dirty bit after an egress flush.
    void clear_dirty();

    /// Append row `index` to `out` as a kRecordBytes fixed-layout record
    /// (little-endian scalars, f32 vectors).
    void encode_record(std::uint32_t index, std::vector<std::uint8_t>& out) const;
    /// Decode one record; `data` must hold at least kRecordBytes.
    [[nodiscard]] static Record decode_record(const std::uint8_t* data);

private:
    struct Slot {
        std::uint32_t dense{0};
        std::uint32_t generation{0};
    };

    std::vector<Slot> slots_;
    std::vector<std::uint32_t> free_;     // reusable slot indices (LIFO)
    std::vector<std::uint32_t> slot_of_;  // dense row -> owning slot

    std::vector<EntityId> ids_;
    std::vector<math::Vec3> positions_;
    std::vector<math::Vec3> velocities_;
    std::vector<std::uint32_t> seqs_;
    std::vector<std::uint8_t> lods_;
    std::vector<std::uint8_t> dirty_;
};

}  // namespace mvc::core
