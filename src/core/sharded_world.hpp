#pragma once
// Sharded deployment fabric: partitions a multi-region classroom topology
// into per-region shards — one sim::Simulator event loop plus one
// net::Network each — advanced in parallel by sim::ShardSet under a
// conservative lookahead equal to the minimum cross-shard link latency.
//
// Cross-shard connectivity uses *proxy nodes*: connecting node A (shard i)
// to node B (shard j) registers a remote proxy for B inside shard i's
// network (and vice versa). A's sends address the proxy; the full wire —
// serialization, queueing, jitter, loss — is charged to the link inside
// shard i, and only the timestamped delivery crosses the boundary, where it
// is injected into shard j's network with src rewritten to A's proxy id
// there. Model code (servers, relays, clients) is unchanged: it sees plain
// NodeIds and a plain Network either side of the boundary.
//
// Determinism: shard event streams are independent within an epoch and the
// boundary exchange is ordered by (source shard, post order), so a fixed
// seed yields byte-identical merged metrics for any worker-thread count.

#include <cstdint>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "net/network.hpp"
#include "net/topology.hpp"
#include "sim/shard.hpp"

namespace mvc::replay {
class Recorder;
}

namespace mvc::core {

/// A node addressed across the whole sharded world.
struct GlobalNode {
    std::size_t shard{0};
    net::NodeId node{net::kInvalidNode};
};

class ShardedWorld {
public:
    /// `lookahead` zero (the default) derives the epoch length from the
    /// smallest cross-shard link latency as connections are made; a
    /// non-zero value is used as an upper bound and still tightened to stay
    /// conservative.
    ShardedWorld(std::size_t shard_count, std::uint64_t seed,
                 sim::Time lookahead = sim::Time::zero());

    ShardedWorld(const ShardedWorld&) = delete;
    ShardedWorld& operator=(const ShardedWorld&) = delete;

    [[nodiscard]] std::size_t shard_count() const { return networks_.size(); }
    [[nodiscard]] sim::Simulator& simulator(std::size_t shard) {
        return shards_.shard(shard);
    }
    [[nodiscard]] net::Network& network(std::size_t shard) { return *networks_[shard]; }
    [[nodiscard]] sim::ShardSet& shards() { return shards_; }

    [[nodiscard]] GlobalNode add_node(std::size_t shard, std::string name,
                                      net::Region region);

    /// Bidirectional cross-shard connection with identical parameters each
    /// way. Creates (or reuses) the remote proxies on both sides and local
    /// links to them. Tightens the lookahead to `params.latency` when that
    /// is smaller, keeping the engine conservative.
    void connect_cross(GlobalNode a, GlobalNode b, const net::LinkParams& params);
    /// Cross-shard connection using WAN-path parameters for the two regions.
    void connect_cross_wan(GlobalNode a, GlobalNode b, const net::WanTopology& wan);

    /// Local id, inside `shard`'s network, of the proxy standing in for
    /// `remote` — the handle model code in `shard` uses to address it.
    /// Throws if the pair was never connected through this shard.
    [[nodiscard]] net::NodeId proxy_in(std::size_t shard, GlobalNode remote) const;

    /// Record the whole world into `rec`: one egress tap per shard network
    /// plus a per-epoch state hash per shard (subject "shard/<i>") emitted
    /// from the engine's epoch observer — single-threaded inside the
    /// barrier, so staged records drain race-free and land in shard order
    /// regardless of worker-thread count. Call before run_until; the
    /// recorder must outlive the world's runs (caller finalizes with
    /// Recorder::finish()).
    void enable_recording(replay::Recorder& rec);

    /// Advance all shards to `until` with up to `threads` workers. Returns
    /// events executed across shards.
    std::size_t run_until(sim::Time until, std::size_t threads = 1);

    /// Deterministic join of every shard's metrics (merged in shard order)
    /// plus the engine counters (epochs, cross messages, violations).
    [[nodiscard]] sim::MetricsRecorder merged_metrics() const;

    [[nodiscard]] sim::Time lookahead() const { return shards_.lookahead(); }
    [[nodiscard]] std::uint64_t lookahead_violations() const {
        return shards_.lookahead_violations();
    }

private:
    /// Proxy registry key: the proxy lives in `host` and stands in for
    /// (`remote_shard`, `remote_node`).
    using ProxyKey = std::tuple<std::size_t, std::size_t, net::NodeId>;

    sim::ShardSet shards_;
    std::vector<std::unique_ptr<net::Network>> networks_;
    /// Key-sorted flat registry, binary-searched on the cross-shard deliver
    /// path (one cache-friendly probe per boundary packet instead of a
    /// red-black-tree walk). Read-only once the topology is built; egress
    /// hooks consult it from worker threads, so connect_cross must not be
    /// called mid-run.
    std::vector<std::pair<ProxyKey, net::NodeId>> proxies_;
    // Session recording (nullptr when not recording).
    replay::Recorder* recorder_{nullptr};
    std::vector<std::uint32_t> record_subjects_;

    net::NodeId ensure_proxy(std::size_t host, GlobalNode remote);
    /// kInvalidNode when the key was never registered.
    [[nodiscard]] net::NodeId find_proxy(const ProxyKey& key) const;
};

}  // namespace mvc::core
