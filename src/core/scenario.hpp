#pragma once
// Scenario files: drive a full MetaverseClassroom run from a JSON document
// instead of C++ — the interface downstream users (and the CLI tool in
// tools/) script against. Also exports ClassReport as JSON for dashboards.

#include <optional>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "core/classroom.hpp"

namespace mvc::core {

/// Declarative description of one classroom run.
struct Scenario {
    ClassroomConfig config;
    struct RoomSpec {
        std::size_t students{0};
        bool instructor{false};
    };
    /// Parallel to config.rooms.
    std::vector<RoomSpec> room_specs;
    struct RemoteSpec {
        net::Region region{net::Region::HongKong};
        std::size_t count{0};
    };
    std::vector<RemoteSpec> remote;
    /// Room index that streams lecture media; nullopt = media off.
    std::optional<std::size_t> lecture_media_room;
    sim::Time duration{sim::Time::seconds(60)};
    struct ScheduleSpec {
        session::ActivityKind kind{session::ActivityKind::Lecture};
        sim::Time duration{};
        std::size_t team_size{0};
    };
    std::vector<ScheduleSpec> schedule;
};

/// Parse a region by its canonical name ("HongKong", "Seoul", ...).
[[nodiscard]] std::optional<net::Region> region_from_name(std::string_view name);
/// Parse an activity kind by its canonical name ("lecture", "qa", ...).
[[nodiscard]] std::optional<session::ActivityKind> activity_from_name(
    std::string_view name);

/// Build a Scenario from a JSON document. Throws std::runtime_error with a
/// field-specific message on schema violations.
[[nodiscard]] Scenario scenario_from_json(const common::Json& doc);

/// Convenience: parse text then build.
[[nodiscard]] Scenario scenario_from_text(std::string_view text);

/// Execute a scenario to completion and return the report.
[[nodiscard]] ClassReport run_scenario(const Scenario& scenario);

/// Serialize a latency series as {n, mean, p50, p95, p99}.
[[nodiscard]] common::Json series_to_json(const math::SampleSeries& s);
/// Serialize a full class report.
[[nodiscard]] common::Json report_to_json(const ClassReport& report);

}  // namespace mvc::core
