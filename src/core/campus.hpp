#pragma once
// Campus-scale workload engine: the dense hot path (E22) assembled into a
// runnable world. A campus is B buildings, each its own shard: every
// building sweeps its avatars through a core::AvatarPool (SoA columns),
// re-buckets them in a flat sync::InterestGrid, and egresses dirty deltas
// to that building's viewer nodes — either through the per-update fan-out
// baseline (one tier check and one packet per (update, viewer) pair) or
// through sync::CellDeltaAggregator (per-cell grouping, one coalesced batch
// per viewer per interval). A thin cross-shard mirror ships a strided
// sample of every building's updates to the origin shard, so the flat
// proxy-table deliver path stays on the hot path too.
//
// Everything is deterministic for any worker-thread count: avatar motion is
// stateless in (seed, index, t) (session::CrowdMotion), per-shard event
// streams are sequential, and the boundary exchange is ordered by the
// sharded engine — metrics_json() is byte-identical across 1/2/4/8 threads.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/avatar_pool.hpp"
#include "core/sharded_world.hpp"
#include "net/channel.hpp"
#include "session/behaviour.hpp"
#include "sync/aggregator.hpp"
#include "sync/batcher.hpp"
#include "sync/interest.hpp"

namespace mvc::core {

struct CampusConfig {
    /// One shard per building, plus shard 0 for the origin.
    std::size_t buildings{4};
    std::size_t classrooms_per_building{25};
    std::size_t avatars_per_classroom{100};
    /// Receiving client nodes per building (placed at classroom centres).
    std::size_t viewers_per_building{8};
    double tick_rate_hz{20.0};
    /// Interest-grid / aggregation cell edge (metres).
    double cell_size_m{8.0};
    /// Positions that moved less than this since the last shipped update
    /// are not re-sent (the dirty threshold of the SoA sweep).
    double dirty_threshold_m{0.02};
    /// true = cell-delta aggregated egress; false = per-update fan-out
    /// baseline (the ablation the bytes/avatar claim is measured against).
    bool aggregate{true};
    sim::Time aggregate_interval{sim::Time::ms(50)};
    /// Every stride-th avatar's updates are mirrored cross-shard to the
    /// origin (batched); 0 disables the mirror.
    std::size_t mirror_stride{64};
    sim::Time mirror_interval{sim::Time::ms(50)};
    std::uint64_t seed{42};
    sync::InterestPolicy interest{};
    session::CrowdMotion motion{};
};

class CampusWorld {
public:
    explicit CampusWorld(CampusConfig config = {});

    CampusWorld(const CampusWorld&) = delete;
    CampusWorld& operator=(const CampusWorld&) = delete;

    /// Advance the whole campus to absolute time `until`. Returns events
    /// executed across shards.
    std::size_t run_until(sim::Time until, std::size_t threads = 1);

    [[nodiscard]] sim::Simulator& simulator(std::size_t shard) {
        return world_.simulator(shard);
    }
    [[nodiscard]] net::Network& network(std::size_t shard) {
        return world_.network(shard);
    }
    [[nodiscard]] ShardedWorld& sharded() { return world_; }

    [[nodiscard]] std::size_t avatar_count() const;
    [[nodiscard]] std::size_t viewer_count() const;
    [[nodiscard]] const CampusConfig& config() const { return config_; }

    /// Client-bound egress bytes (payload + packet headers), summed over
    /// buildings; the aggregated/baseline comparison surface.
    [[nodiscard]] std::uint64_t egress_bytes() const;
    /// Updates delivered into viewer handlers, summed over viewers.
    [[nodiscard]] std::uint64_t viewer_updates() const;
    [[nodiscard]] std::uint64_t updates_shipped() const;
    [[nodiscard]] std::uint64_t suppressed_by_aoi() const;
    [[nodiscard]] std::uint64_t suppressed_by_rate() const;
    /// Updates the origin received over the cross-shard mirror.
    [[nodiscard]] std::uint64_t mirror_updates() const { return mirror_updates_; }
    /// Rolling digest of everything the origin decoded off the mirror.
    /// Shard-0 state only, so a shard-0 probe may read it mid-run.
    [[nodiscard]] std::uint64_t origin_digest() const { return origin_digest_; }
    [[nodiscard]] std::uint64_t lookahead_violations() const {
        return world_.lookahead_violations();
    }

    /// Order-sensitive digest of everything every viewer (and the origin)
    /// decoded, folded in fixed building/viewer order.
    [[nodiscard]] std::uint64_t state_digest() const;

    /// Merged per-shard metrics plus the campus counters and digest —
    /// byte-identical across worker-thread counts for a fixed config.
    [[nodiscard]] sim::MetricsRecorder merged_metrics() const;
    [[nodiscard]] std::string metrics_json() const;

private:
    struct ViewerEndpoint {
        net::NodeId node{net::kInvalidNode};
        ParticipantId self;
        math::Vec3 position;
        std::unique_ptr<net::PacketDemux> demux;
        std::uint64_t updates{0};
        std::uint64_t batches{0};
        std::uint64_t bytes{0};
        std::uint64_t digest{0};
    };

    struct Building {
        std::size_t index{0};
        net::Network* net{nullptr};
        net::NodeId gateway{net::kInvalidNode};
        net::NodeId origin_proxy{net::kInvalidNode};
        AvatarPool pool;
        sync::InterestGrid grid;
        std::vector<math::Vec3> anchors;
        std::vector<math::Vec3> last_sent;
        std::vector<ViewerEndpoint> viewers;
        std::unique_ptr<net::Channel> tx;  // baseline per-update sends
        std::unique_ptr<sync::CellDeltaAggregator> aggregator;
        std::unique_ptr<sync::WireBatcher> mirror;
        /// Baseline per-(viewer, avatar) rate clocks, flat [v * n + i].
        std::vector<sim::Time> next_due;
        std::vector<EntityId> query_scratch;
        std::vector<std::uint8_t> record_scratch;
        std::uint64_t ticks{0};
        std::uint64_t updates_generated{0};
        std::uint64_t baseline_sends{0};
        std::uint64_t baseline_egress_bytes{0};
        std::uint64_t suppressed_aoi{0};
        std::uint64_t suppressed_rate{0};
        std::uint64_t query_hits{0};
    };

    CampusConfig config_;
    ShardedWorld world_;
    GlobalNode origin_;
    std::unique_ptr<net::PacketDemux> origin_demux_;
    std::vector<std::unique_ptr<Building>> buildings_;
    std::uint64_t mirror_updates_{0};
    std::uint64_t origin_digest_{0};

    void build_building(std::size_t index);
    void tick(Building& b);
    [[nodiscard]] std::uint64_t client_egress_bytes(const Building& b) const;
    static void fold_wire(std::uint64_t& digest, const sync::AvatarWire& wire);
};

}  // namespace mvc::core
