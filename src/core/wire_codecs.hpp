#pragma once
// One-stop wire-codec registration for every model payload that crosses a
// real datagram socket. The simulated Network moves payloads as in-process
// boxes and never consults this table; a process that opens a RealUdpBackend
// must call register_wire_codecs() once at startup — on *both* ends, since
// the tag numbers below are the wire contract between them.

#include <cstdint>

namespace mvc::core {

// Wire tags, frozen as protocol constants. Renumbering is a wire break.
inline constexpr std::uint16_t kTagAvatar = 1;         ///< sync::AvatarWire
inline constexpr std::uint16_t kTagAvatarBatch = 2;    ///< sync::AvatarBatchWire
inline constexpr std::uint16_t kTagHeartbeat = 3;      ///< fault::HeartbeatWire
inline constexpr std::uint16_t kTagClockRequest = 4;   ///< clock-sync probe
inline constexpr std::uint16_t kTagClockReply = 5;     ///< clock-sync reply
inline constexpr std::uint16_t kTagResyncRequest = 6;  ///< recovery::ResyncRequest
inline constexpr std::uint16_t kTagResyncSnapshot = 7; ///< recovery::ResyncSnapshot
inline constexpr std::uint16_t kTagArqData = 8;        ///< ReliableChannel segment
inline constexpr std::uint16_t kTagSeq = 9;            ///< bare std::uint64_t (ACKs)
inline constexpr std::uint16_t kTagText = 10;          ///< bare std::string

/// Register every model codec with net::WireCodecs::instance(). Idempotent;
/// safe to call from each subsystem that might be first to need them.
void register_wire_codecs();

}  // namespace mvc::core
