#include "core/campus.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "common/hash.hpp"
#include "net/packet.hpp"

namespace mvc::core {

namespace {

/// Smallest grid dimension holding `count` items.
std::size_t grid_dim(std::size_t count) {
    std::size_t d = 1;
    while (d * d < count) ++d;
    return d;
}

/// Classroom pitch and seat spacing (metres): rooms far enough apart that
/// interest tiers differentiate them, seats dense enough that near tiers
/// stay populated.
constexpr double kClassroomPitchM = 14.0;
constexpr double kSeatSpacingM = 1.2;

math::Vec3 classroom_center(std::size_t room, std::size_t rooms_per_building) {
    const std::size_t dim = grid_dim(rooms_per_building);
    return {static_cast<double>(room % dim) * kClassroomPitchM, 0.0,
            static_cast<double>(room / dim) * kClassroomPitchM};
}

math::Vec3 seat_anchor(std::size_t room, std::size_t rooms_per_building,
                       std::size_t seat, std::size_t seats_per_room) {
    const std::size_t dim = grid_dim(seats_per_room);
    const double half = 0.5 * static_cast<double>(dim - 1) * kSeatSpacingM;
    const math::Vec3 center = classroom_center(room, rooms_per_building);
    return {center.x - half + static_cast<double>(seat % dim) * kSeatSpacingM, 0.0,
            center.z - half + static_cast<double>(seat / dim) * kSeatSpacingM};
}

}  // namespace

CampusWorld::CampusWorld(CampusConfig config)
    : config_(std::move(config)), world_(config_.buildings + 1, config_.seed) {
    if (config_.buildings == 0) throw std::invalid_argument("campus: no buildings");
    if (config_.tick_rate_hz <= 0.0) throw std::invalid_argument("campus: tick rate");

    origin_ = world_.add_node(0, "campus-origin", net::Region::HongKong);
    origin_demux_ =
        std::make_unique<net::PacketDemux>(world_.network(0), origin_.node);
    origin_demux_->on_flow(std::string{sync::kAvatarFlow}, [this](net::Packet&& p) {
        const auto wire = p.payload.take<sync::AvatarWire>();
        ++mirror_updates_;
        fold_wire(origin_digest_, wire);
    });
    origin_demux_->on_flow(std::string{sync::kAvatarBatchFlow}, [this](net::Packet&& p) {
        const auto batch = p.payload.take<sync::AvatarBatchWire>();
        for (const sync::AvatarWire& wire : batch.updates) {
            ++mirror_updates_;
            fold_wire(origin_digest_, wire);
        }
    });

    buildings_.reserve(config_.buildings);
    for (std::size_t b = 0; b < config_.buildings; ++b) build_building(b);
}

void CampusWorld::build_building(std::size_t index) {
    auto owned = std::make_unique<Building>();
    Building& b = *owned;
    b.index = index;
    b.grid = sync::InterestGrid{config_.cell_size_m};

    const std::size_t shard = index + 1;
    net::Network& net = world_.network(shard);
    b.net = &net;

    const GlobalNode gw =
        world_.add_node(shard, "campus-gw-" + std::to_string(index),
                        net::Region::HongKong);
    b.gateway = gw.node;
    world_.connect_cross(gw, origin_, net::LinkParams{.latency = sim::Time::ms(5)});
    b.origin_proxy = world_.proxy_in(shard, origin_);

    if (config_.aggregate) {
        b.aggregator = std::make_unique<sync::CellDeltaAggregator>(
            net, b.gateway, config_.aggregate_interval, config_.cell_size_m,
            config_.interest);
    } else {
        b.tx = std::make_unique<net::Channel>(net.open_channel(
            {.src = b.gateway,
             .flow = std::string{sync::kAvatarFlow},
             .options = {.priority = net::Priority::Realtime}}));
    }
    if (config_.mirror_stride != 0) {
        b.mirror = std::make_unique<sync::WireBatcher>(net, b.gateway,
                                                       config_.mirror_interval);
    }

    // Viewer nodes: receiving clients parked at classroom centres, one metro
    // hop from the gateway.
    const net::LinkParams metro{.latency = sim::Time::ms(1)};
    Building* bptr = &b;
    b.viewers.resize(config_.viewers_per_building);
    for (std::size_t v = 0; v < config_.viewers_per_building; ++v) {
        ViewerEndpoint& ve = b.viewers[v];
        ve.node = net.add_node(
            "campus-viewer-" + std::to_string(index) + "-" + std::to_string(v),
            net::Region::HongKong);
        ve.self = ParticipantId{0xF0000000u | (static_cast<std::uint32_t>(index) << 8) |
                                static_cast<std::uint32_t>(v)};
        ve.position =
            classroom_center(v % config_.classrooms_per_building,
                             config_.classrooms_per_building) +
            math::Vec3{0.0, 1.6, 0.0};
        net.connect(ve.node, b.gateway, metro);
        ve.demux = std::make_unique<net::PacketDemux>(net, ve.node);
        ve.demux->on_flow(std::string{sync::kAvatarFlow},
                          [bptr, v](net::Packet&& p) {
                              const auto wire = p.payload.take<sync::AvatarWire>();
                              ViewerEndpoint& me = bptr->viewers[v];
                              ++me.updates;
                              me.bytes += wire.wire_bytes() + net::kHeaderBytes;
                              fold_wire(me.digest, wire);
                          });
        ve.demux->on_flow(std::string{sync::kAvatarBatchFlow},
                          [bptr, v](net::Packet&& p) {
                              const auto batch = p.payload.take<sync::AvatarBatchWire>();
                              ViewerEndpoint& me = bptr->viewers[v];
                              ++me.batches;
                              me.bytes += batch.wire_bytes() + net::kHeaderBytes;
                              for (const sync::AvatarWire& wire : batch.updates) {
                                  ++me.updates;
                                  fold_wire(me.digest, wire);
                              }
                          });
        if (b.aggregator) b.aggregator->add_viewer(ve.node, ve.self, ve.position);
    }

    // Avatars: SoA rows seeded at their seats; the add() dirty bit ships the
    // first full snapshot on tick one.
    const std::size_t per_building =
        config_.classrooms_per_building * config_.avatars_per_classroom;
    b.pool.reserve(per_building);
    b.anchors.reserve(per_building);
    for (std::size_t room = 0; room < config_.classrooms_per_building; ++room) {
        for (std::size_t seat = 0; seat < config_.avatars_per_classroom; ++seat) {
            const std::size_t local = room * config_.avatars_per_classroom + seat;
            const EntityId id{static_cast<std::uint32_t>((index << 20) | local)};
            const math::Vec3 anchor = seat_anchor(room, config_.classrooms_per_building,
                                                  seat, config_.avatars_per_classroom);
            b.pool.add(id, anchor);
            b.anchors.push_back(anchor);
        }
    }
    b.last_sent.assign(per_building, math::Vec3::zero());
    if (!config_.aggregate) {
        b.next_due.assign(config_.viewers_per_building * per_building, sim::Time{});
    }

    net.clock().schedule_every(sim::Time::seconds(1.0 / config_.tick_rate_hz),
                               [this, bptr] { tick(*bptr); });
    buildings_.push_back(std::move(owned));
}

void CampusWorld::tick(Building& b) {
    const sim::Time now = b.net->clock().now();
    const double t = now.to_seconds();
    const std::size_t n = b.pool.size();
    const auto ids = b.pool.ids();
    const auto pos = b.pool.positions();
    const auto vel = b.pool.velocities();
    const auto seqs = b.pool.seqs();
    const auto dirty = b.pool.dirty();

    // Motion integration + grid re-bucketing: one cache-linear SoA sweep.
    const std::uint64_t motion_seed = config_.seed ^ (0xC0FFEEULL * (b.index + 1));
    for (std::size_t i = 0; i < n; ++i) {
        const auto s = config_.motion.at(motion_seed, i, t);
        pos[i] = b.anchors[i] + s.offset;
        vel[i] = s.velocity;
        b.grid.update(ids[i], pos[i]);
    }
    b.grid.rebuild();

    // Per-viewer neighbourhood census through the flat grid (the query hot
    // path the E17 allocation budget covers).
    for (const ViewerEndpoint& v : b.viewers) {
        b.grid.query_radius_into(v.position, config_.interest.max_range(),
                                 b.query_scratch);
        b.query_hits += b.query_scratch.size();
    }

    // Dirty sweep + egress.
    const double thr2 = config_.dirty_threshold_m * config_.dirty_threshold_m;
    for (std::size_t i = 0; i < n; ++i) {
        const bool moved = (pos[i] - b.last_sent[i]).norm_sq() > thr2;
        if (dirty[i] == 0 && !moved) continue;
        ++seqs[i];
        b.last_sent[i] = pos[i];
        ++b.updates_generated;

        std::vector<std::uint8_t> bytes;
        bytes.reserve(AvatarPool::kRecordBytes);
        b.pool.encode_record(static_cast<std::uint32_t>(i), bytes);
        sync::AvatarWire w{ParticipantId{ids[i].value()},
                           ClassroomId{static_cast<std::uint32_t>(b.index + 1)},
                           /*keyframe=*/false, std::move(bytes), now};
        w.seq = seqs[i];

        if (b.mirror && i % config_.mirror_stride == 0)
            b.mirror->enqueue(b.origin_proxy, w);

        if (b.aggregator) {
            b.aggregator->enqueue(pos[i], std::move(w));
            continue;
        }

        // Baseline: one tier check, one rate clock, one packet per viewer.
        const std::size_t size = w.wire_bytes();
        const net::Payload shared{std::move(w)};
        for (std::size_t vi = 0; vi < b.viewers.size(); ++vi) {
            const ViewerEndpoint& v = b.viewers[vi];
            const double dist = (pos[i] - v.position).norm();
            const sync::InterestTier* tier = config_.interest.tier_for(dist);
            if (tier == nullptr) {
                ++b.suppressed_aoi;
                continue;
            }
            sim::Time& due = b.next_due[vi * n + i];
            if (now < due) {
                ++b.suppressed_rate;
                continue;
            }
            due = now + sim::Time::seconds(1.0 / tier->update_rate_hz);
            ++b.baseline_sends;
            b.baseline_egress_bytes += size + net::kHeaderBytes;
            b.tx->send_to(v.node, size, shared);
        }
    }
    b.pool.clear_dirty();
    ++b.ticks;
}

std::size_t CampusWorld::run_until(sim::Time until, std::size_t threads) {
    return world_.run_until(until, threads);
}

std::size_t CampusWorld::avatar_count() const {
    std::size_t total = 0;
    for (const auto& b : buildings_) total += b->pool.size();
    return total;
}

std::size_t CampusWorld::viewer_count() const {
    std::size_t total = 0;
    for (const auto& b : buildings_) total += b->viewers.size();
    return total;
}

std::uint64_t CampusWorld::client_egress_bytes(const Building& b) const {
    if (b.aggregator) {
        const sync::WireBatcher& wb = b.aggregator->batcher();
        return wb.bytes_sent() + wb.batches_sent() * net::kHeaderBytes;
    }
    return b.baseline_egress_bytes;
}

std::uint64_t CampusWorld::egress_bytes() const {
    std::uint64_t total = 0;
    for (const auto& b : buildings_) total += client_egress_bytes(*b);
    return total;
}

std::uint64_t CampusWorld::viewer_updates() const {
    std::uint64_t total = 0;
    for (const auto& b : buildings_)
        for (const ViewerEndpoint& v : b->viewers) total += v.updates;
    return total;
}

std::uint64_t CampusWorld::updates_shipped() const {
    std::uint64_t total = 0;
    for (const auto& b : buildings_)
        total += b->aggregator ? b->aggregator->updates_shipped() : b->baseline_sends;
    return total;
}

std::uint64_t CampusWorld::suppressed_by_aoi() const {
    std::uint64_t total = 0;
    for (const auto& b : buildings_)
        total += b->suppressed_aoi +
                 (b->aggregator ? b->aggregator->suppressed_by_aoi() : 0);
    return total;
}

std::uint64_t CampusWorld::suppressed_by_rate() const {
    std::uint64_t total = 0;
    for (const auto& b : buildings_)
        total += b->suppressed_rate +
                 (b->aggregator ? b->aggregator->suppressed_by_rate() : 0);
    return total;
}

std::uint64_t CampusWorld::state_digest() const {
    std::uint64_t d = 0;
    for (const auto& b : buildings_)
        for (const ViewerEndpoint& v : b->viewers) d = common::mix64(d ^ v.digest);
    return common::mix64(d ^ origin_digest_);
}

std::string CampusWorld::metrics_json() const { return merged_metrics().to_json().dump(2); }

sim::MetricsRecorder CampusWorld::merged_metrics() const {
    sim::MetricsRecorder m = world_.merged_metrics();
    std::uint64_t ticks = 0;
    std::uint64_t generated = 0;
    std::uint64_t batches = 0;
    std::uint64_t viewer_bytes = 0;
    std::uint64_t query_hits = 0;
    std::uint64_t full_rebuilds = 0;
    std::uint64_t incremental_rebuilds = 0;
    for (const auto& b : buildings_) {
        ticks += b->ticks;
        generated += b->updates_generated;
        query_hits += b->query_hits;
        full_rebuilds += b->grid.full_rebuilds();
        incremental_rebuilds += b->grid.incremental_rebuilds();
        for (const ViewerEndpoint& v : b->viewers) {
            batches += v.batches;
            viewer_bytes += v.bytes;
        }
    }
    m.count("campus/ticks", ticks);
    m.count("campus/updates_generated", generated);
    m.count("campus/updates_shipped", updates_shipped());
    m.count("campus/egress_bytes", egress_bytes());
    m.count("campus/viewer_updates", viewer_updates());
    m.count("campus/viewer_batches", batches);
    m.count("campus/viewer_bytes", viewer_bytes);
    m.count("campus/query_hits", query_hits);
    m.count("campus/suppressed_aoi", suppressed_by_aoi());
    m.count("campus/suppressed_rate", suppressed_by_rate());
    m.count("campus/grid_full_rebuilds", full_rebuilds);
    m.count("campus/grid_incremental_rebuilds", incremental_rebuilds);
    m.count("campus/mirror_updates", mirror_updates_);
    m.count("campus/digest", state_digest());
    return m;
}

void CampusWorld::fold_wire(std::uint64_t& digest, const sync::AvatarWire& wire) {
    common::Hash64 h;
    h.u32(wire.participant.value()).u32(wire.seq);
    h.bytes(wire.bytes.data(), wire.bytes.size());
    digest = common::mix64(digest ^ h.digest());
}

}  // namespace mvc::core
