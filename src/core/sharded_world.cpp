#include "core/sharded_world.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "replay/recorder.hpp"
#include "replay/state_hash.hpp"

namespace mvc::core {

namespace {
// Epoch length used until the first cross-shard link pins the real
// lookahead; also the ceiling for worlds that never connect shards.
constexpr sim::Time kDefaultLookahead = sim::Time::seconds(1.0);
}  // namespace

ShardedWorld::ShardedWorld(std::size_t shard_count, std::uint64_t seed,
                           sim::Time lookahead)
    : shards_(shard_count, seed,
              lookahead > sim::Time::zero() ? lookahead : kDefaultLookahead) {
    networks_.reserve(shard_count);
    for (std::size_t i = 0; i < shard_count; ++i)
        networks_.push_back(std::make_unique<net::Network>(shards_.shard(i)));
}

GlobalNode ShardedWorld::add_node(std::size_t shard, std::string name,
                                  net::Region region) {
    return GlobalNode{shard, networks_.at(shard)->add_node(std::move(name), region)};
}

net::NodeId ShardedWorld::find_proxy(const ProxyKey& key) const {
    const auto it = std::lower_bound(
        proxies_.begin(), proxies_.end(), key,
        [](const auto& entry, const ProxyKey& k) { return entry.first < k; });
    if (it == proxies_.end() || it->first != key) return net::kInvalidNode;
    return it->second;
}

net::NodeId ShardedWorld::ensure_proxy(std::size_t host, GlobalNode remote) {
    const ProxyKey key{host, remote.shard, remote.node};
    if (const net::NodeId existing = find_proxy(key); existing != net::kInvalidNode)
        return existing;

    net::Network& remote_net = *networks_.at(remote.shard);
    auto egress = [this, src_shard = host, dst_shard = remote.shard,
                   dst_node = remote.node](net::Packet&& p, sim::Time at) {
        // Rewrite addressing into the destination shard's id space: dst
        // becomes the real node, src becomes the sender's proxy over there
        // (kInvalidNode when the sender has no presence in that shard).
        p.src = find_proxy(ProxyKey{dst_shard, src_shard, p.src});
        p.dst = dst_node;
        net::Network* dst = networks_[dst_shard].get();
        shards_.post(src_shard, dst_shard, at,
                     [dst, p = std::move(p)]() mutable { dst->inject(std::move(p)); });
    };
    const net::NodeId proxy = networks_.at(host)->add_remote(
        remote_net.name_of(remote.node), remote_net.region_of(remote.node),
        std::move(egress));
    const auto at = std::lower_bound(
        proxies_.begin(), proxies_.end(), key,
        [](const auto& entry, const ProxyKey& k) { return entry.first < k; });
    proxies_.insert(at, {key, proxy});
    return proxy;
}

void ShardedWorld::connect_cross(GlobalNode a, GlobalNode b,
                                 const net::LinkParams& params) {
    if (a.shard == b.shard) {
        networks_.at(a.shard)->connect(a.node, b.node, params);
        return;
    }
    const net::NodeId proxy_b = ensure_proxy(a.shard, b);
    const net::NodeId proxy_a = ensure_proxy(b.shard, a);
    networks_.at(a.shard)->connect(a.node, proxy_b, params);
    networks_.at(b.shard)->connect(b.node, proxy_a, params);
    // Conservative lookahead: the epoch can never be longer than the fastest
    // cross-shard path, or deliveries could land inside the epoch that
    // produced them.
    if (params.latency < shards_.lookahead()) shards_.set_lookahead(params.latency);
}

void ShardedWorld::connect_cross_wan(GlobalNode a, GlobalNode b,
                                     const net::WanTopology& wan) {
    const net::Region ra = networks_.at(a.shard)->region_of(a.node);
    const net::Region rb = networks_.at(b.shard)->region_of(b.node);
    connect_cross(a, b, wan.path_params(ra, rb));
}

net::NodeId ShardedWorld::proxy_in(std::size_t shard, GlobalNode remote) const {
    const net::NodeId proxy = find_proxy(ProxyKey{shard, remote.shard, remote.node});
    if (proxy == net::kInvalidNode)
        throw std::invalid_argument("ShardedWorld: no proxy for that remote here");
    return proxy;
}

void ShardedWorld::enable_recording(replay::Recorder& rec) {
    if (recorder_ != nullptr)
        throw std::logic_error("enable_recording: already recording");
    recorder_ = &rec;
    record_subjects_.clear();
    for (std::size_t i = 0; i < networks_.size(); ++i) {
        rec.attach(*networks_[i], static_cast<std::uint32_t>(i));
        record_subjects_.push_back(rec.subject("shard/" + std::to_string(i)));
    }
    // Runs inside the barrier-completion step (single-threaded, noexcept
    // context): drain the per-shard staging buffers the workers filled this
    // epoch, then hash every shard at the epoch boundary. Recorder sink
    // errors are sticky internals, never exceptions.
    shards_.set_epoch_observer([this](std::uint64_t epoch, sim::Time boundary) {
        replay::Recorder& r = *recorder_;
        r.drain_all();
        for (std::size_t i = 0; i < networks_.size(); ++i)
            r.record_hash(epoch, record_subjects_[i],
                          replay::simulation_hash(shards_.shard(i), *networks_[i]),
                          boundary);
    });
}

std::size_t ShardedWorld::run_until(sim::Time until, std::size_t threads) {
    return shards_.run_until(until, threads);
}

sim::MetricsRecorder ShardedWorld::merged_metrics() const {
    sim::MetricsRecorder out;
    for (const auto& n : networks_) out.merge(n->metrics());
    out.count("shard.epochs", shards_.epochs_run());
    out.count("shard.cross_messages", shards_.cross_messages());
    out.count("shard.lookahead_violations", shards_.lookahead_violations());
    return out;
}

}  // namespace mvc::core
