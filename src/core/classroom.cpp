#include "core/classroom.hpp"

#include "net/channel.hpp"
#include "replay/recorder.hpp"
#include "replay/state_hash.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace mvc::core {

namespace {
/// Wire payload of the interaction event bus.
struct EventWire {
    ParticipantId who;
    session::InteractionKind kind{};
    /// Event timestamp expressed in the master (room 0) clock.
    sim::Time master_ts{};
    std::size_t source_room{0};
};
constexpr const char* kEventFlow = "event";
}  // namespace

PhysicalRoomConfig cwb_room_config() {
    PhysicalRoomConfig c;
    c.name = "cwb";
    c.region = net::Region::HongKong;
    c.headset = sensing::tethered_mr_params();
    return c;
}

PhysicalRoomConfig gz_room_config() {
    PhysicalRoomConfig c;
    c.name = "gz";
    c.region = net::Region::Guangzhou;
    c.headset = sensing::tethered_mr_params();
    return c;
}

std::string ClassReport::summary() const {
    std::ostringstream os;
    os << "participants: " << physical_participants << " physical + "
       << remote_participants << " remote\n";
    const auto describe = [&os](const char* label, const math::SampleSeries& s) {
        if (s.empty()) return;
        os << label << ": mean=" << s.mean() << " p50=" << s.median()
           << " p95=" << s.p95() << " p99=" << s.p99() << "\n";
    };
    describe("MR display latency ms (all origins)", mr_display_latency_ms);
    describe("MR cross-campus latency ms", mr_cross_campus_ms);
    describe("MR remote-origin latency ms", mr_remote_origin_ms);
    describe("event visibility ms (synced clocks)", event_visibility_ms);
    if (!vr_display_latency_ms.empty()) {
        os << "VR client latency ms: mean=" << vr_display_latency_ms.mean()
           << " p50=" << vr_display_latency_ms.median()
           << " p95=" << vr_display_latency_ms.p95()
           << " p99=" << vr_display_latency_ms.p99() << "\n";
    }
    os << "avatar bytes: " << avatar_bytes << " / total bytes: " << total_bytes << "\n";
    os << "wifi utilization (max room): " << wifi_utilization_max << "\n";
    os << "participation ratio: " << participation_ratio << "\n";
    os << "seat exhaustion events: " << seats_exhausted << "\n";
    if (media_enabled) {
        os << "lecture media: " << media_bytes << " bytes, worst camera "
           << media_worst_camera_db << " dB, A/V skew p95 " << media_av_skew_p95_ms
           << " ms\n";
    }
    return os.str();
}

MetaverseClassroom::MetaverseClassroom(ClassroomConfig config)
    : config_(std::move(config)),
      sim_(config_.seed),
      net_(sim_),
      event_visibility_id_(net_.metrics().series_id("event.visibility_ms")),
      display_latency_id_(net_.metrics().series_id("mr.display_latency_ms")),
      cross_campus_id_(net_.metrics().series_id("mr.cross_campus_ms")),
      remote_origin_id_(net_.metrics().series_id("mr.remote_origin_ms")),
      stale_displays_id_(net_.metrics().counter_id("mr.stale_displays")),
      store_(config_.recovery.retain),
      session_(config_.course) {
    if (config_.rooms.empty()) {
        config_.rooms = {cwb_room_config(), gz_room_config()};
    }
    build_rooms();
    build_cloud();
    build_event_bus();

    // Edge servers peer with each other and with the cloud; the cloud is
    // also each edge's failover relay for dead edge-to-edge links.
    for (std::size_t i = 0; i < rooms_.size(); ++i) {
        for (std::size_t j = 0; j < rooms_.size(); ++j) {
            if (i == j) continue;
            rooms_[i].server->add_peer(rooms_[j].edge_node);
        }
        rooms_[i].server->set_cloud_relay(cloud_node_);
        cloud_->add_peer(rooms_[i].edge_node);
        // Edge checkpoints carry the session roster + content ledger, so a
        // restarted edge can hand the whole class back to the application.
        rooms_[i].server->set_checkpoint_decorator(
            [this](recovery::ClassroomCheckpoint& cp) { session_.capture(cp); });
    }
}

void MetaverseClassroom::build_rooms() {
    for (std::size_t i = 0; i < config_.rooms.size(); ++i) {
        PhysicalRoomConfig rc = config_.rooms[i];
        Room room;
        room.config = rc;
        room.edge_node = net_.add_node("edge-" + rc.name, rc.region);

        edge::EdgeServerConfig ec = rc.edge;
        ec.room = ClassroomId{static_cast<std::uint32_t>(i + 1)};
        ec.name = rc.name;
        if (config_.heartbeat.enabled) {
            ec.heartbeat = config_.heartbeat;
            ec.degradation = config_.degradation;
        }
        if (config_.recovery.enabled) {
            ec.recovery = config_.recovery;
            ec.recovery.store = &store_;
        }
        if (config_.admission.enabled) ec.admission = config_.admission;
        room.server = std::make_unique<edge::EdgeServer>(
            net_, room.edge_node, ec, edge::SeatMap::grid(rc.seat_rows, rc.seat_cols));

        room.wifi = std::make_unique<net::WifiChannel>(sim_, rc.name, rc.wifi);
        rooms_.push_back(std::move(room));
    }
    // WAN links between every pair of edge nodes.
    for (std::size_t i = 0; i < rooms_.size(); ++i) {
        for (std::size_t j = i + 1; j < rooms_.size(); ++j) {
            net_.connect_wan(rooms_[i].edge_node, rooms_[j].edge_node, wan_);
        }
    }
}

void MetaverseClassroom::build_cloud() {
    cloud_node_ = net_.add_node("cloud", config_.cloud_region);
    cloud::CloudServerConfig cc = config_.cloud;
    cc.room = ClassroomId{static_cast<std::uint32_t>(rooms_.size() + 1)};
    if (config_.heartbeat.enabled) cc.heartbeat = config_.heartbeat;
    if (config_.recovery.enabled) {
        cc.recovery = config_.recovery;
        cc.recovery.store = &store_;
    }
    if (config_.admission.enabled) cc.admission = config_.admission;
    cloud_ = std::make_unique<cloud::CloudServer>(net_, cloud_node_, cc);
    for (auto& room : rooms_) {
        net_.connect_wan(room.edge_node, cloud_node_, wan_);
    }
    if (config_.regional_mesh) {
        mesh_ = std::make_unique<cloud::RegionalMesh>(net_, wan_, *cloud_,
                                                      config_.cloud_region);
    }
}

edge::EdgeServer& MetaverseClassroom::edge_server(std::size_t room_index) {
    return *rooms_.at(room_index).server;
}

cloud::VrClient& MetaverseClassroom::remote_client(ParticipantId who) {
    return *remote_.at(who).client;
}

ParticipantId MetaverseClassroom::add_physical_student(std::size_t room_index,
                                                       comfort::UserProfile profile) {
    Room& room = rooms_.at(room_index);
    // Find the first vacant seat for a physically-present student.
    const auto vacant = room.server->seats().vacant_indices();
    if (vacant.empty()) throw std::runtime_error("add_physical_student: room is full");
    const std::size_t seat_index = vacant.front();

    session::Participant p;
    p.name = room.config.name + "-student-" + std::to_string(++name_counter_);
    p.role = session::Role::Student;
    p.device = session::DeviceClass::TetheredMr;
    p.attendance =
        session::PhysicalAttendance{ClassroomId{static_cast<std::uint32_t>(room_index + 1)},
                                    seat_index};
    p.comfort_profile = profile;
    const ParticipantId id = session_.enroll(std::move(p));

    room.server->add_local_participant(id, seat_index);

    PhysicalPerson person;
    person.room_index = room_index;
    person.seated = std::make_unique<session::SeatedBehaviour>(
        sim_.rng_stream("behaviour/" + std::to_string(id.value())),
        room.server->seats().seat(seat_index).pose);
    person.station = room.wifi->add_station();

    auto* behaviour = person.seated.get();
    auto* wifi = room.wifi.get();
    auto* server = room.server.get();
    const net::StationId station = person.station;
    person.headset = std::make_unique<sensing::Headset>(
        sim_, room.config.name + "/" + std::to_string(id.value()), id,
        room.config.headset, [behaviour, this] { return behaviour->truth(sim_.now()); },
        [wifi, server, station](sensing::SensorSample&& s) {
            // Headset -> WiFi -> edge server. ~90 B per tracking sample.
            net::Packet pkt;
            pkt.size_bytes = 64 + s.expression.size() * 2;
            pkt.payload = std::move(s);
            wifi->send(station, std::move(pkt), [server](net::Packet&& delivered) {
                server->ingest_sample(delivered.payload.take<sensing::SensorSample>());
            });
        });

    // Make the participant visible in the VR classroom too.
    cloud_->place_entity(id);

    // Room cameras track everyone present.
    if (room.sensors) room.sensors->track(id);

    physical_.emplace(id, std::move(person));
    return id;
}

ParticipantId MetaverseClassroom::add_instructor(std::size_t room_index) {
    Room& room = rooms_.at(room_index);

    session::Participant p;
    p.name = room.config.name + "-instructor";
    p.role = session::Role::Instructor;
    p.device = session::DeviceClass::TetheredMr;
    p.attendance = session::PhysicalAttendance{
        ClassroomId{static_cast<std::uint32_t>(room_index + 1)}, 0};
    const ParticipantId id = session_.enroll(std::move(p));

    room.server->add_local_participant(id, std::nullopt);

    PhysicalPerson person;
    person.room_index = room_index;
    person.instructor = std::make_unique<session::InstructorBehaviour>(
        sim_.rng_stream("behaviour/instructor/" + std::to_string(id.value())),
        math::Pose{{0.0, 0.0, 0.5}, math::Quat::identity()});
    person.station = room.wifi->add_station();

    auto* behaviour = person.instructor.get();
    auto* wifi = room.wifi.get();
    auto* server = room.server.get();
    const net::StationId station = person.station;
    person.headset = std::make_unique<sensing::Headset>(
        sim_, room.config.name + "/instructor", id, room.config.headset,
        [behaviour, this] { return behaviour->truth(sim_.now()); },
        [wifi, server, station](sensing::SensorSample&& s) {
            net::Packet pkt;
            pkt.size_bytes = 64 + s.expression.size() * 2;
            pkt.payload = std::move(s);
            wifi->send(station, std::move(pkt), [server](net::Packet&& delivered) {
                server->ingest_sample(delivered.payload.take<sensing::SensorSample>());
            });
        });

    cloud_->place_entity(id);
    if (room.sensors) room.sensors->track(id);
    physical_.emplace(id, std::move(person));
    return id;
}

ParticipantId MetaverseClassroom::add_remote_student(net::Region region,
                                                     comfort::UserProfile profile) {
    const std::string name = "remote-" + std::string{net::region_name(region)} + "-" +
                             std::to_string(++name_counter_);
    session::Participant p;
    p.name = name;
    p.role = session::Role::Student;
    p.device = session::DeviceClass::StandaloneVr;
    p.attendance = session::RemoteAttendance{region};
    p.comfort_profile = profile;
    const ParticipantId id = session_.enroll(std::move(p));

    RemotePerson person;
    person.node = net_.add_node(name, region);

    cloud::VrClientConfig vc = config_.vr_client;
    vc.name = "vr-" + std::to_string(id.value());
    vc.room = ClassroomId{static_cast<std::uint32_t>(rooms_.size() + 1)};
    vc.lightweight = config_.lightweight_remote_clients;
    vc.latency_metric = "vr.e2e_ms";
    person.client = std::make_unique<cloud::VrClient>(net_, person.node, id, vc);

    if (config_.regional_mesh) {
        cloud::RelayServer& relay = mesh_->relay_for(region);
        net_.connect_wan(person.node, relay.node(), wan_);
        const math::Pose seat = mesh_->attach_client(person.node, id, region);
        person.client->join(relay.node(), seat);
    } else {
        net_.connect_wan(person.node, cloud_node_, wan_);
        const auto seat = cloud_->attach_client(person.node, id);
        if (!seat.has_value())
            throw std::runtime_error("add_remote_student: cloud at capacity");
        person.client->join(cloud_node_, *seat);
    }

    remote_.emplace(id, std::move(person));
    return id;
}

void MetaverseClassroom::build_event_bus() {
    if (!config_.event_bus) return;
    sim::Rng rng = sim_.rng_stream("room-clocks");
    for (auto& room : rooms_) {
        room.clock = sync::DriftingClock{
            rng.normal(0.0, config_.clock_skew_ppm_sigma),
            sim::Time::ms(rng.normal(0.0, config_.clock_offset_ms_sigma))};
    }
    // Room 0 is the time master; every other room runs an NTP session to it.
    for (std::size_t i = 1; i < rooms_.size(); ++i) {
        rooms_[i].clock_sync = std::make_unique<sync::ClockSyncSession>(
            net_, rooms_[i].server->demux(), rooms_[0].server->demux(),
            "ntp." + rooms_[i].config.name, rooms_[i].clock, rooms_[0].clock);
    }
    // Every room listens for interaction events from the others.
    for (std::size_t i = 0; i < rooms_.size(); ++i) {
        rooms_[i].server->demux().on_flow(kEventFlow, [this, i](net::Packet&& p) {
            const auto& wire = p.payload.get<EventWire>();
            const Room& room = rooms_[i];
            const sim::Time local_now = room.clock.local_time(sim_.now());
            const sim::Time master_now =
                i == 0 || room.clock_sync == nullptr
                    ? local_now
                    : room.clock_sync->to_server_time(local_now);
            net_.metrics().sample(event_visibility_id_,
                                  (master_now - wire.master_ts).to_ms());
        });
    }
}

void MetaverseClassroom::publish_event(std::size_t room_index, ParticipantId who,
                                       session::InteractionKind kind) {
    if (!config_.event_bus || rooms_.size() < 2) return;
    const Room& source = rooms_[room_index];
    const sim::Time local_now = source.clock.local_time(sim_.now());
    EventWire wire;
    wire.who = who;
    wire.kind = kind;
    wire.source_room = room_index;
    wire.master_ts = room_index == 0 || source.clock_sync == nullptr
                         ? local_now
                         : source.clock_sync->to_server_time(local_now);
    const net::Payload shared{wire};
    net::Channel event_tx = net_.open_channel(
        {.src = source.edge_node,
         .flow = kEventFlow,
         .options = {.priority = net::Priority::Control}});
    for (std::size_t j = 0; j < rooms_.size(); ++j) {
        if (j == room_index) continue;
        event_tx.send_to(rooms_[j].edge_node, 64, shared);
    }
}

ParticipantId MetaverseClassroom::add_guest_speaker(net::Region region,
                                                    std::string name) {
    if (name.empty()) {
        name = "guest-" + std::string{net::region_name(region)};
    }
    session::Participant p;
    p.name = name;
    p.role = session::Role::GuestSpeaker;
    p.device = session::DeviceClass::StandaloneVr;
    p.attendance = session::RemoteAttendance{region};
    const ParticipantId id = session_.enroll(std::move(p));

    RemotePerson person;
    person.node = net_.add_node(name, region);

    cloud::VrClientConfig vc = config_.vr_client;
    vc.name = "guest-" + std::to_string(id.value());
    vc.room = ClassroomId{static_cast<std::uint32_t>(rooms_.size() + 1)};
    vc.lightweight = false;  // a speaker's avatar must reconstruct fully
    vc.latency_metric = "vr.e2e_ms";
    // Speakers gesture constantly and move more than a seated listener.
    vc.sway_amplitude = 0.15;
    vc.gesture_rate = 0.5;
    person.client = std::make_unique<cloud::VrClient>(net_, person.node, id, vc);

    // Every physical room reserves a seat for the speaker so the audience
    // race (nearer regions' streams anchor first) cannot squeeze them out.
    for (auto& room : rooms_) {
        (void)room.server->reserve_seat(id);
    }

    if (config_.regional_mesh) {
        cloud::RelayServer& relay = mesh_->relay_for(region);
        net_.connect_wan(person.node, relay.node(), wan_);
        person.client->join(relay.node(), mesh_->attach_client(person.node, id, region));
    } else {
        net_.connect_wan(person.node, cloud_node_, wan_);
        const auto seat = cloud_->attach_client(person.node, id);
        if (!seat.has_value())
            throw std::runtime_error("add_guest_speaker: cloud at capacity");
        // Speakers stand at the virtual stage, not in the audience rings.
        const math::Pose stage{{0.0, 0.0, 0.5}, math::Quat::identity()};
        person.client->join(cloud_node_, stage);
    }
    remote_.emplace(id, std::move(person));
    return id;
}

void MetaverseClassroom::enable_lecture_media(std::size_t teaching_room) {
    if (started_) throw std::logic_error("enable_lecture_media: call before start()");
    if (media_ != nullptr) return;
    teaching_room_ = teaching_room;
    Room& source = rooms_.at(teaching_room);
    media_ = std::make_unique<MediaBridge>(net_, source.server->demux(), config_.media);
    for (std::size_t i = 0; i < rooms_.size(); ++i) {
        if (i == teaching_room) continue;
        const sim::Time one_way = wan_.one_way_delay(source.config.region,
                                                     rooms_[i].config.region);
        media_->add_destination(rooms_[i].server->demux(), one_way);
    }
}

void MetaverseClassroom::enable_recording(replay::Recorder& rec,
                                          sim::Time hash_interval) {
    if (recorder_ != nullptr)
        throw std::logic_error("enable_recording: already recording");
    if (hash_interval <= sim::Time::zero())
        throw std::invalid_argument("enable_recording: hash_interval must be positive");
    recorder_ = &rec;
    rec.attach(net_, 0);
    rec.observe_store(store_, sim_);
    record_subject_sim_ = rec.subject("sim");
    record_subject_rooms_.clear();
    for (const Room& room : rooms_)
        record_subject_rooms_.push_back(rec.subject("edge/" + room.config.name));
    record_subject_cloud_ = rec.subject("cloud");
    record_task_ = sim_.schedule_every(hash_interval, [this] { record_tick(); });
}

void MetaverseClassroom::record_tick() {
    replay::Recorder& rec = *recorder_;
    rec.drain_all();
    const sim::Time now = sim_.now();
    const std::uint64_t epoch = record_epoch_++;
    rec.record_hash(epoch, record_subject_sim_, replay::simulation_hash(sim_, net_), now);
    for (std::size_t i = 0; i < rooms_.size(); ++i)
        rec.record_hash(epoch, record_subject_rooms_[i],
                        rooms_[i].server->state_digest(), now);
    rec.record_hash(epoch, record_subject_cloud_, cloud_->state_digest(), now);
}

void MetaverseClassroom::start() {
    if (started_) return;
    started_ = true;
    for (std::size_t i = 0; i < rooms_.size(); ++i) {
        Room& room = rooms_[i];
        // Room sensor arrays are created lazily at start so their truth
        // callback can reach every enrolled participant.
        auto* server = room.server.get();
        const sim::Time wire_latency = room.config.sensor_wire_latency;
        room.sensors = std::make_unique<sensing::RoomSensorArray>(
            sim_, room.config.name, room.config.room_sensors,
            [this](ParticipantId who) { return truth_of(who, sim_.now()); },
            [this, server, wire_latency](sensing::SensorSample&& s) {
                sim_.schedule_after(wire_latency,
                                    [server, s = std::move(s)]() mutable {
                                        server->ingest_sample(std::move(s));
                                    });
            });
        for (const auto& [id, person] : physical_) {
            if (person.room_index == i) room.sensors->track(id);
        }
        room.sensors->start();
        room.server->start();
    }
    cloud_->start();
    for (auto& [id, person] : physical_) person.headset->start();
    for (auto& room : rooms_) {
        if (room.clock_sync) room.clock_sync->start();
    }
    if (media_) {
        media_->start();
        media_started_at_ = sim_.now();
    }
    if (config_.probe_rate_hz > 0.0) {
        probe_task_ = sim_.schedule_every(
            sim::Time::seconds(1.0 / config_.probe_rate_hz), [this] { probe_tick(); });
    }
}

void MetaverseClassroom::stop() {
    if (!started_) return;
    started_ = false;
    sim_.cancel(probe_task_);
    if (recorder_ != nullptr) {
        sim_.cancel(record_task_);
        recorder_->drain_all();
    }
    for (auto& room : rooms_) {
        room.server->stop();
        if (room.sensors) room.sensors->stop();
        if (room.clock_sync) room.clock_sync->stop();
    }
    cloud_->stop();
    for (auto& [id, person] : physical_) person.headset->stop();
    for (auto& [id, person] : remote_) person.client->leave();
    if (media_) media_->stop();
}

void MetaverseClassroom::run_for(sim::Time duration) {
    sim_.run_until(sim_.now() + duration);
}

void MetaverseClassroom::probe_tick() {
    const sim::Time now = sim_.now();
    // Interaction bookkeeping: hand-raise rising edges become session events
    // (the engagement signal the blended classroom is meant to lift).
    for (auto& [id, person] : physical_) {
        if (person.seated == nullptr) continue;
        const bool raised = person.seated->hand_raised();
        if (raised && !person.hand_was_raised) {
            session_.record_event(now, id, session::InteractionKind::HandRaise);
            publish_event(person.room_index, id, session::InteractionKind::HandRaise);
        }
        person.hand_was_raised = raised;
    }
    // The lecture audio follows the instructor's speech pattern.
    if (media_) {
        for (const auto& [id, person] : physical_) {
            if (person.instructor != nullptr && person.room_index == teaching_room_) {
                media_->set_speaking(person.instructor->speaking(now));
                break;
            }
        }
    }
    // For every MR room, check the display state of every remote avatar it
    // hosts — the cross-classroom "intervention visibility" latency.
    for (auto& room : rooms_) {
        for (const ParticipantId who : room.server->remote_participants()) {
            const auto shown = room.server->display_remote(who, now);
            if (!shown.has_value()) continue;
            const double ms = (now - shown->captured_at).to_ms();
            // Latency is only meaningful when fresh data arrived: a still
            // participant legitimately sends nothing between keyframes and
            // their (correct) extrapolated display would read as "old".
            // Sample when new network updates were decoded since the last
            // probe; flag real staleness (outages) separately.
            const std::uint64_t key =
                (static_cast<std::uint64_t>(room.edge_node) << 32) | who.value();
            std::uint64_t& last = probe_last_update_[key];
            const std::uint64_t decoded = room.server->remote_update_count(who);
            if (decoded > last) {
                last = decoded;
                net_.metrics().sample(display_latency_id_, ms);
                // Split by origin: campus-to-campus vs remote VR attendee.
                net_.metrics().sample(
                    physical_.contains(who) ? cross_campus_id_ : remote_origin_id_, ms);
            } else if (ms > 1000.0) {
                net_.metrics().count(stale_displays_id_);
            }
        }
    }
}

sensing::GroundTruth MetaverseClassroom::truth_of(ParticipantId who, sim::Time now) {
    const auto it = physical_.find(who);
    if (it == physical_.end()) return {};
    if (it->second.seated) return it->second.seated->truth(now);
    if (it->second.instructor) return it->second.instructor->truth(now);
    return {};
}

std::optional<sensing::GroundTruth> MetaverseClassroom::ground_truth(ParticipantId who,
                                                                     sim::Time now) {
    if (!physical_.contains(who)) return std::nullopt;
    return truth_of(who, now);
}

ClassReport MetaverseClassroom::report() {
    ClassReport r;
    r.physical_participants = physical_.size();
    r.remote_participants = remote_.size();
    r.mr_display_latency_ms = net_.metrics().series("mr.display_latency_ms");
    r.mr_cross_campus_ms = net_.metrics().series("mr.cross_campus_ms");
    r.mr_remote_origin_ms = net_.metrics().series("mr.remote_origin_ms");
    r.vr_display_latency_ms = net_.metrics().series("vr.e2e_ms");

    for (const auto& [name, count] : net_.metrics().counters()) {
        if (name.starts_with("net.tx_bytes.")) {
            r.total_bytes += count;
            if (name == "net.tx_bytes.avatar") r.avatar_bytes += count;
        }
    }
    for (const auto& room : rooms_) {
        r.wifi_utilization_max = std::max(r.wifi_utilization_max, room.wifi->utilization());
        r.seats_exhausted += room.server->seats_exhausted();
    }
    r.participation_ratio = session_.participation_ratio();
    r.event_visibility_ms = net_.metrics().series("event.visibility_ms");
    for (const auto& room : rooms_) {
        if (room.clock_sync && room.clock_sync->synchronized()) {
            r.clock_sync_error_ms = std::max(
                r.clock_sync_error_ms, room.clock_sync->estimation_error().to_ms());
        }
    }

    if (media_) {
        r.media_enabled = true;
        media_->finish();
        r.media_bytes = media_->bytes_sent();
        const double seconds = (sim_.now() - media_started_at_).to_seconds();
        r.media_worst_camera_db = media_->worst_camera_quality_db(seconds);
        math::SampleSeries skews;
        for (std::size_t i = 0; i < media_->destination_count(); ++i) {
            for (const double s : media_->sink(i).av_sync.skew_ms().samples()) {
                skews.add(s);
            }
        }
        r.media_av_skew_p95_ms = skews.p95();
    }
    return r;
}

}  // namespace mvc::core
