#pragma once
// Lecture media distribution across the blended classroom: the instructor's
// camera, the slide deck, and the lecture audio stream from the teaching
// room to every other room and to the VR cloud ("many courses may rely on
// video transmission, whether of the instructor, digital artefacts (e.g.,
// slides), or physical objects in the classroom", §3.3).
//
// Video rides an adaptive FEC stream per destination (the E7 winner for
// interactive deadlines); audio rides plain datagrams (a lost 20 ms Opus
// frame is cheaper to conceal than to recover). Each destination runs a
// deadline VideoReceiver per stream plus an AvSyncTracker, and the audio
// visemes are exposed so the instructor avatar's mouth can be driven
// remotely.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "media/audio.hpp"
#include "media/video.hpp"
#include "net/channel.hpp"
#include "net/fec.hpp"

namespace mvc::core {

struct MediaBridgeConfig {
    media::VideoProfile camera{media::profile_720p()};
    media::VideoProfile slides{media::profile_slides()};
    media::AudioProfile audio{};
    /// Playout deadline applied at every receiver, added to the path's
    /// one-way latency estimate by the caller.
    sim::Time playout_slack{sim::Time::ms(80)};
    net::FecStreamOptions fec{};
};

/// One receiving endpoint's view of the lecture media.
struct MediaSinkStats {
    media::PlaybackStats camera;
    media::PlaybackStats slides;
    std::uint64_t audio_frames{0};
    std::uint64_t audio_lost{0};
    media::AvSyncTracker av_sync;
    std::uint8_t current_viseme{0};
};

/// Publishes the teaching room's media to a set of destination nodes and
/// aggregates per-destination playback statistics.
class MediaBridge {
public:
    MediaBridge(net::Backend& net, net::PacketDemux& source_demux,
                MediaBridgeConfig config);

    MediaBridge(const MediaBridge&) = delete;
    MediaBridge& operator=(const MediaBridge&) = delete;

    /// Add a destination. `demux` must belong to `node`; `one_way` sizes the
    /// playout deadline for that path.
    void add_destination(net::PacketDemux& demux, sim::Time one_way);

    void start();
    void stop();
    /// Toggle instructor speech (drives audio voice activity + visemes).
    void set_speaking(bool speaking);

    [[nodiscard]] std::size_t destination_count() const { return sinks_.size(); }
    [[nodiscard]] const MediaSinkStats& sink(std::size_t i) const;
    /// Wire bytes sent across all media flows (payload + parity + audio).
    [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }
    /// Delivered camera quality at the worst destination (dB).
    [[nodiscard]] double worst_camera_quality_db(double seconds) const;
    /// Close receiver accounting (call once at end of run, before reading
    /// playback stats).
    void finish();

private:
    struct Sink {
        net::NodeId node{net::kInvalidNode};
        std::unique_ptr<net::FecStream> camera_fec;
        std::unique_ptr<net::FecStream> slides_fec;
        std::unique_ptr<media::VideoReceiver> camera_rx;
        std::unique_ptr<media::VideoReceiver> slides_rx;
        std::unique_ptr<MediaSinkStats> stats;
    };

    net::Backend& net_;
    net::PacketDemux& source_demux_;
    net::NodeId source_;
    std::unique_ptr<net::Channel> audio_tx_;
    MediaBridgeConfig config_;
    std::unique_ptr<media::VideoSource> camera_;
    std::unique_ptr<media::VideoSource> slides_;
    std::unique_ptr<media::AudioSource> audio_;
    std::vector<Sink> sinks_;
    std::uint64_t bytes_sent_{0};
    std::uint64_t audio_seq_{0};
    bool running_{false};

    void on_camera_frame(media::VideoFrame&& frame);
    void on_slides_frame(media::VideoFrame&& frame);
    void on_audio_frame(media::AudioFrame&& frame);
};

}  // namespace mvc::core
