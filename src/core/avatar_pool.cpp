#include "core/avatar_pool.hpp"

#include <cstring>

namespace mvc::core {

void AvatarPool::reserve(std::size_t capacity) {
    slots_.reserve(capacity);
    slot_of_.reserve(capacity);
    ids_.reserve(capacity);
    positions_.reserve(capacity);
    velocities_.reserve(capacity);
    seqs_.reserve(capacity);
    lods_.reserve(capacity);
    dirty_.reserve(capacity);
}

AvatarHandle AvatarPool::add(EntityId id, const math::Vec3& position,
                             const math::Vec3& velocity) {
    std::uint32_t slot;
    if (!free_.empty()) {
        slot = free_.back();
        free_.pop_back();
    } else {
        slot = static_cast<std::uint32_t>(slots_.size());
        slots_.push_back(Slot{});
    }
    const auto dense = static_cast<std::uint32_t>(ids_.size());
    slots_[slot].dense = dense;
    slot_of_.push_back(slot);
    ids_.push_back(id);
    positions_.push_back(position);
    velocities_.push_back(velocity);
    seqs_.push_back(0);
    lods_.push_back(0);
    dirty_.push_back(1);  // new avatars need an initial replication
    return AvatarHandle{slot, slots_[slot].generation};
}

bool AvatarPool::alive(AvatarHandle h) const {
    return h.valid() && h.slot < slots_.size() &&
           slots_[h.slot].generation == h.generation &&
           slots_[h.slot].dense < ids_.size() &&
           slot_of_[slots_[h.slot].dense] == h.slot;
}

bool AvatarPool::remove(AvatarHandle h) {
    if (!alive(h)) return false;
    const std::uint32_t dense = slots_[h.slot].dense;
    const auto last = static_cast<std::uint32_t>(ids_.size() - 1);
    if (dense != last) {
        ids_[dense] = ids_[last];
        positions_[dense] = positions_[last];
        velocities_[dense] = velocities_[last];
        seqs_[dense] = seqs_[last];
        lods_[dense] = lods_[last];
        dirty_[dense] = dirty_[last];
        slot_of_[dense] = slot_of_[last];
        slots_[slot_of_[dense]].dense = dense;
    }
    ids_.pop_back();
    positions_.pop_back();
    velocities_.pop_back();
    seqs_.pop_back();
    lods_.pop_back();
    dirty_.pop_back();
    slot_of_.pop_back();
    ++slots_[h.slot].generation;  // stale out every outstanding handle
    free_.push_back(h.slot);
    return true;
}

std::uint32_t AvatarPool::index_of(AvatarHandle h) const {
    return alive(h) ? slots_[h.slot].dense : kNoIndex;
}

AvatarHandle AvatarPool::handle_at(std::uint32_t index) const {
    const std::uint32_t slot = slot_of_[index];
    return AvatarHandle{slot, slots_[slot].generation};
}

void AvatarPool::clear_dirty() {
    std::memset(dirty_.data(), 0, dirty_.size());
}

namespace {
template <class T>
void put(std::vector<std::uint8_t>& out, T v) {
    const auto old = out.size();
    out.resize(old + sizeof(T));
    std::memcpy(out.data() + old, &v, sizeof(T));
}
template <class T>
T get(const std::uint8_t*& p) {
    T v;
    std::memcpy(&v, p, sizeof(T));
    p += sizeof(T);
    return v;
}
}  // namespace

void AvatarPool::encode_record(std::uint32_t index,
                               std::vector<std::uint8_t>& out) const {
    put<std::uint32_t>(out, ids_[index].value());
    put<std::uint32_t>(out, seqs_[index]);
    put<std::uint8_t>(out, lods_[index]);
    const math::Vec3& p = positions_[index];
    put<float>(out, static_cast<float>(p.x));
    put<float>(out, static_cast<float>(p.y));
    put<float>(out, static_cast<float>(p.z));
    const math::Vec3& v = velocities_[index];
    put<float>(out, static_cast<float>(v.x));
    put<float>(out, static_cast<float>(v.y));
    put<float>(out, static_cast<float>(v.z));
}

AvatarPool::Record AvatarPool::decode_record(const std::uint8_t* data) {
    Record r;
    r.id = EntityId{get<std::uint32_t>(data)};
    r.seq = get<std::uint32_t>(data);
    r.lod = get<std::uint8_t>(data);
    const float px = get<float>(data), py = get<float>(data), pz = get<float>(data);
    const float vx = get<float>(data), vy = get<float>(data), vz = get<float>(data);
    r.position = {px, py, pz};
    r.velocity = {vx, vy, vz};
    return r;
}

}  // namespace mvc::core
