#include "core/media_bridge.hpp"

#include <stdexcept>
#include <utility>

namespace mvc::core {

namespace {
constexpr const char* kCameraFlow = "media.camera";
constexpr const char* kSlidesFlow = "media.slides";
constexpr const char* kAudioFlow = "media.audio";
}  // namespace

MediaBridge::MediaBridge(net::Backend& net, net::PacketDemux& source_demux,
                         MediaBridgeConfig config)
    : net_(net),
      source_demux_(source_demux),
      source_(source_demux.node()),
      config_(std::move(config)) {
    audio_tx_ = std::make_unique<net::Channel>(net_.open_channel(
        {.src = source_,
         .flow = kAudioFlow,
         .options = {.priority = net::Priority::Realtime}}));
    camera_ = std::make_unique<media::VideoSource>(
        net_.clock(), "camera", config_.camera,
        [this](media::VideoFrame&& f) { on_camera_frame(std::move(f)); });
    slides_ = std::make_unique<media::VideoSource>(
        net_.clock(), "slides", config_.slides,
        [this](media::VideoFrame&& f) { on_slides_frame(std::move(f)); });
    audio_ = std::make_unique<media::AudioSource>(
        net_.clock(), "lecture-audio", config_.audio,
        [this](media::AudioFrame&& f) { on_audio_frame(std::move(f)); });
}

void MediaBridge::add_destination(net::PacketDemux& demux, sim::Time one_way) {
    if (running_) throw std::logic_error("MediaBridge: add destinations before start()");
    Sink sink;
    sink.node = demux.node();
    sink.stats = std::make_unique<MediaSinkStats>();

    const sim::Time deadline = one_way + config_.playout_slack;
    sink.camera_rx = std::make_unique<media::VideoReceiver>(net_.clock(),
                                                            config_.camera, deadline);
    sink.slides_rx = std::make_unique<media::VideoReceiver>(net_.clock(),
                                                            config_.slides, deadline);

    // FEC streams need a source-side demux only for symmetry; receivers
    // register on the destination demux. Flow names are per-destination so
    // one bridge can serve many sinks over one network.
    const std::string suffix = "." + std::to_string(sink.node);
    net::FecStreamOptions fec = config_.fec;
    fec.adaptive = true;
    fec.block_timeout = deadline;

    sink.camera_fec = std::make_unique<net::FecStream>(net_, source_demux_, demux,
                                                       kCameraFlow + suffix, fec);
    sink.slides_fec = std::make_unique<net::FecStream>(net_, source_demux_, demux,
                                                       kSlidesFlow + suffix, fec);

    MediaSinkStats* stats = sink.stats.get();
    media::VideoReceiver* camera_rx = sink.camera_rx.get();
    media::VideoReceiver* slides_rx = sink.slides_rx.get();
    sink.camera_fec->on_delivered([this, stats, camera_rx](net::Payload payload, sim::Time,
                                                           bool) {
        const auto pkt = payload.take<media::VideoPacket>();
        camera_rx->ingest(pkt);
        // Frame considered "played" when its last piece lands; feed A/V sync
        // with piece-level granularity (close enough at 1200 B MTU).
        stats->av_sync.on_video_played(pkt.frame_index, pkt.captured_at,
                                       net_.clock().now());
    });
    sink.slides_fec->on_delivered([slides_rx](net::Payload payload, sim::Time, bool) {
        slides_rx->ingest(payload.take<media::VideoPacket>());
    });

    demux.on_flow(kAudioFlow, [this, stats](net::Packet&& p) {
        const auto frame = p.payload.take<media::AudioFrame>();
        ++stats->audio_frames;
        stats->current_viseme = frame.viseme;
        stats->av_sync.on_audio_played(frame.index, frame.captured_at,
                                       net_.clock().now());
    });

    sinks_.push_back(std::move(sink));
}

void MediaBridge::start() {
    if (running_) return;
    running_ = true;
    camera_->start();
    slides_->start();
    audio_->start();
}

void MediaBridge::stop() {
    if (!running_) return;
    running_ = false;
    camera_->stop();
    slides_->stop();
    audio_->stop();
}

void MediaBridge::set_speaking(bool speaking) {
    audio_->set_voice_activity(speaking ? 0.8 : 0.05);
}

const MediaSinkStats& MediaBridge::sink(std::size_t i) const {
    return *sinks_.at(i).stats;
}

void MediaBridge::on_camera_frame(media::VideoFrame&& frame) {
    for (auto& sink : sinks_) {
        for (const media::VideoPacket& pkt : media::packetize(frame)) {
            bytes_sent_ += pkt.size_bytes;
            sink.camera_fec->send(pkt.size_bytes, pkt);
        }
        sink.camera_fec->flush();  // low-latency: block per frame
    }
}

void MediaBridge::on_slides_frame(media::VideoFrame&& frame) {
    for (auto& sink : sinks_) {
        for (const media::VideoPacket& pkt : media::packetize(frame)) {
            bytes_sent_ += pkt.size_bytes;
            sink.slides_fec->send(pkt.size_bytes, pkt);
        }
        sink.slides_fec->flush();
    }
}

void MediaBridge::on_audio_frame(media::AudioFrame&& frame) {
    ++audio_seq_;
    for (auto& sink : sinks_) {
        bytes_sent_ += frame.size_bytes;
        if (!audio_tx_->send_to(sink.node, frame.size_bytes, frame)) {
            ++sink.stats->audio_lost;
        }
    }
}

double MediaBridge::worst_camera_quality_db(double seconds) const {
    double worst = 1e9;
    for (const auto& sink : sinks_) {
        worst = std::min(worst,
                         sink.stats->camera.delivered_quality_db(config_.camera, seconds));
    }
    return sinks_.empty() ? 0.0 : worst;
}

void MediaBridge::finish() {
    for (auto& sink : sinks_) {
        sink.camera_rx->finish();
        sink.slides_rx->finish();
        sink.stats->camera = sink.camera_rx->stats();
        sink.stats->slides = sink.slides_rx->stats();
    }
}

}  // namespace mvc::core
