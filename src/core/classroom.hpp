#pragma once
// MetaverseClassroom: the paper's blueprint, assembled. One call site builds
// the whole Figure-3 deployment — N physical MR classrooms (default two:
// HKUST CWB and GZ), each with WiFi-connected headsets, wired room sensors
// and an edge server, plus the cloud-hosted VR classroom serving remote
// attendees — wires them over the WAN, runs a class session, and reports
// latency / traffic / engagement metrics.
//
// This is the library's primary public API; examples/ and most benches build
// on it.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cloud/cloud_server.hpp"
#include "cloud/relay.hpp"
#include "cloud/vr_client.hpp"
#include "core/media_bridge.hpp"
#include "edge/edge_server.hpp"
#include "net/wifi.hpp"
#include "sync/clock.hpp"
#include "sensing/headset.hpp"
#include "sensing/room_sensors.hpp"
#include "session/behaviour.hpp"
#include "session/session.hpp"

namespace mvc::replay {
class Recorder;
}

namespace mvc::core {

struct PhysicalRoomConfig {
    std::string name{"classroom"};
    net::Region region{net::Region::HongKong};
    std::size_t seat_rows{5};
    std::size_t seat_cols{6};
    net::WifiParams wifi{};
    sensing::HeadsetParams headset{};  // filled from tethered_mr defaults
    sensing::RoomSensorParams room_sensors{};
    edge::EdgeServerConfig edge{};     // room/name assigned by the builder
    /// Wired sensor backhaul latency to the edge server.
    sim::Time sensor_wire_latency{sim::Time::us(300)};
};

/// Defaults shaped like the unit case in §3.1: CWB + GZ campuses.
[[nodiscard]] PhysicalRoomConfig cwb_room_config();
[[nodiscard]] PhysicalRoomConfig gz_room_config();

struct ClassroomConfig {
    std::uint64_t seed{42};
    std::string course{"COMP4971: Metaverse Systems"};
    std::vector<PhysicalRoomConfig> rooms{};  // empty => {CWB, GZ}
    net::Region cloud_region{net::Region::HongKong};
    cloud::CloudServerConfig cloud{};
    /// Use regional relay servers for remote clients instead of direct
    /// connections to the origin cloud.
    bool regional_mesh{false};
    cloud::VrClientConfig vr_client{};
    /// Remote clients skip full avatar reconstruction (latency-only), for
    /// large-scale runs.
    bool lightweight_remote_clients{false};
    /// Rate of the cross-room display probes that feed latency metrics.
    double probe_rate_hz{10.0};
    /// Stream the teaching room's camera/slides/audio to the other rooms
    /// (enabled via enable_lecture_media()).
    MediaBridgeConfig media{};
    /// Propagate interaction events (hand raises, ...) between classrooms
    /// with clock-synchronized timestamps; feeds event-visibility metrics.
    bool event_bus{true};
    /// Per-room clock imperfection injected when the event bus is on:
    /// 1-sigma skew (ppm) and boot offset (ms) drawn per room.
    double clock_skew_ppm_sigma{50.0};
    double clock_offset_ms_sigma{500.0};
    /// Peer liveness probing applied to every edge server and the cloud.
    /// When enabled, edges fail avatar streams over to the cloud relay while
    /// a direct peer link is dead, and degrade gracefully under loss.
    fault::HeartbeatParams heartbeat{};
    fault::DegradationParams degradation{};
    /// Crash recovery applied to every edge server and the cloud: periodic
    /// checkpoints into the classroom-owned CheckpointStore (the `store`
    /// field is filled by the builder), restart restoration and peer resync.
    /// Edge checkpoints also carry session membership + content.
    recovery::RecoveryParams recovery{};
    /// Overload admission control applied to every edge server and the cloud.
    recovery::AdmissionParams admission{};
};

/// Aggregated end-of-run report.
struct ClassReport {
    std::size_t physical_participants{0};
    std::size_t remote_participants{0};
    /// Cross-classroom end-to-end latency (capture -> displayable), ms.
    math::SampleSeries mr_display_latency_ms;
    /// Same, restricted to physical-campus sources (the CWB<->GZ pair).
    math::SampleSeries mr_cross_campus_ms;
    /// Same, restricted to remote-VR-origin avatars shown in MR rooms.
    math::SampleSeries mr_remote_origin_ms;
    /// Remote (VR client) end-to-end latency, ms.
    math::SampleSeries vr_display_latency_ms;
    /// Total avatar bytes on the wire / total bytes overall.
    std::uint64_t avatar_bytes{0};
    std::uint64_t total_bytes{0};
    double wifi_utilization_max{0.0};
    double participation_ratio{0.0};
    std::uint64_t seats_exhausted{0};
    /// Cross-room interaction-event visibility lag (detection at the source
    /// room -> delivery at the other rooms), measured on synchronized time.
    math::SampleSeries event_visibility_ms;
    /// Worst cross-room clock-sync estimation error observed (ms).
    double clock_sync_error_ms{0.0};
    /// Lecture media (when enabled): wire bytes, worst delivered camera
    /// quality across rooms, and p95 A/V skew.
    bool media_enabled{false};
    std::uint64_t media_bytes{0};
    double media_worst_camera_db{0.0};
    double media_av_skew_p95_ms{0.0};

    [[nodiscard]] std::string summary() const;
};

class MetaverseClassroom {
public:
    explicit MetaverseClassroom(ClassroomConfig config = {});

    MetaverseClassroom(const MetaverseClassroom&) = delete;
    MetaverseClassroom& operator=(const MetaverseClassroom&) = delete;

    // ------------------------------------------------------------ enrolment
    /// Student physically present in room `room_index`, auto-seated.
    ParticipantId add_physical_student(std::size_t room_index,
                                       comfort::UserProfile profile = {});
    /// Instructor teaching from room `room_index` (paces the lectern area).
    ParticipantId add_instructor(std::size_t room_index);
    /// Remote attendee joining the VR classroom from `region`.
    ParticipantId add_remote_student(net::Region region,
                                     comfort::UserProfile profile = {});
    /// Outside guest (e.g. an invited speaker) joining through the VR
    /// classroom: same transport as a remote student, but enrolled with the
    /// GuestSpeaker role and an animated, speech-heavy behaviour.
    ParticipantId add_guest_speaker(net::Region region, std::string name = {});

    /// Stream the lecture media (camera + slides + audio) from
    /// `teaching_room` to every other room. Call before start(). The audio
    /// voice activity follows the instructor's speaking pattern.
    void enable_lecture_media(std::size_t teaching_room);
    [[nodiscard]] bool lecture_media_enabled() const { return media_ != nullptr; }
    [[nodiscard]] MediaBridge& media_bridge() { return *media_; }

    // ------------------------------------------------------------- lifecycle
    /// Record this class into `rec`: tap the network egress, mirror recovery
    /// checkpoints from the shared store as seek keyframes, and emit a state
    /// hash per subject ("sim", "edge/<room>", "cloud") every
    /// `hash_interval` — the divergence checker's per-epoch comparison
    /// points. Call before start(); recording runs until stop() (the caller
    /// finalizes the trace with Recorder::finish()). The recorder must
    /// outlive the run.
    void enable_recording(replay::Recorder& rec,
                          sim::Time hash_interval = sim::Time::ms(100));

    /// Start sensing, servers, publishers and probes.
    void start();
    /// Advance the simulation.
    void run_for(sim::Time duration);
    void stop();

    // ------------------------------------------------------------- accessors
    [[nodiscard]] sim::Simulator& simulator() { return sim_; }
    [[nodiscard]] net::Network& network() { return net_; }
    [[nodiscard]] const net::WanTopology& wan() const { return wan_; }
    [[nodiscard]] session::ClassSession& class_session() { return session_; }
    /// Durable checkpoint storage shared by all servers (survives simulated
    /// process crashes).
    [[nodiscard]] recovery::CheckpointStore& checkpoint_store() { return store_; }
    [[nodiscard]] std::size_t room_count() const { return rooms_.size(); }
    [[nodiscard]] edge::EdgeServer& edge_server(std::size_t room_index);
    [[nodiscard]] cloud::CloudServer& cloud_server() { return *cloud_; }
    [[nodiscard]] cloud::VrClient& remote_client(ParticipantId who);

    /// Ground-truth state of a physical participant (for error metrics).
    [[nodiscard]] std::optional<sensing::GroundTruth> ground_truth(ParticipantId who,
                                                                   sim::Time now);

    [[nodiscard]] ClassReport report();

private:
    struct Room {
        PhysicalRoomConfig config;
        net::NodeId edge_node{net::kInvalidNode};
        std::unique_ptr<edge::EdgeServer> server;
        std::unique_ptr<net::WifiChannel> wifi;
        std::unique_ptr<sensing::RoomSensorArray> sensors;
        /// Event-bus plumbing: this room's imperfect wall clock and (for
        /// non-master rooms) its sync session to room 0.
        sync::DriftingClock clock;
        std::unique_ptr<sync::ClockSyncSession> clock_sync;
    };
    struct PhysicalPerson {
        std::size_t room_index;
        std::unique_ptr<session::SeatedBehaviour> seated;
        std::unique_ptr<session::InstructorBehaviour> instructor;
        std::unique_ptr<sensing::Headset> headset;
        net::StationId station{};
        bool hand_was_raised{false};
    };
    struct RemotePerson {
        net::NodeId node{net::kInvalidNode};
        std::unique_ptr<cloud::VrClient> client;
    };

    ClassroomConfig config_;
    sim::Simulator sim_;
    net::WanTopology wan_;
    net::Network net_;
    /// Pre-resolved handles for the per-display-tick probe metrics.
    sim::MetricId event_visibility_id_;
    sim::MetricId display_latency_id_;
    sim::MetricId cross_campus_id_;
    sim::MetricId remote_origin_id_;
    sim::MetricId stale_displays_id_;
    recovery::CheckpointStore store_;
    session::ClassSession session_;
    std::vector<Room> rooms_;
    net::NodeId cloud_node_{net::kInvalidNode};
    std::unique_ptr<cloud::CloudServer> cloud_;
    std::unique_ptr<cloud::RegionalMesh> mesh_;
    std::map<ParticipantId, PhysicalPerson> physical_;
    std::map<ParticipantId, RemotePerson> remote_;
    std::unique_ptr<MediaBridge> media_;
    /// Per (room, participant) decoded-update count last seen by the
    /// latency probe (keyed edge_node<<32 | participant).
    std::map<std::uint64_t, std::uint64_t> probe_last_update_;
    std::size_t teaching_room_{0};
    sim::Time media_started_at_{};
    sim::EventHandle probe_task_;
    bool started_{false};
    std::uint32_t name_counter_{0};

    // Session recording (nullptr when not recording).
    replay::Recorder* recorder_{nullptr};
    sim::EventHandle record_task_;
    std::uint64_t record_epoch_{0};
    std::uint32_t record_subject_sim_{0};
    std::uint32_t record_subject_cloud_{0};
    std::vector<std::uint32_t> record_subject_rooms_;

    void build_rooms();
    void record_tick();
    void build_cloud();
    void build_event_bus();
    void probe_tick();
    /// Broadcast an interaction event from `room_index` to the other rooms,
    /// timestamped in master-clock terms via the room's sync session.
    void publish_event(std::size_t room_index, ParticipantId who,
                       session::InteractionKind kind);
    [[nodiscard]] sensing::GroundTruth truth_of(ParticipantId who, sim::Time now);
};

}  // namespace mvc::core
