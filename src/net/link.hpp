#pragma once
// Unidirectional point-to-point link: serialization at a fixed bandwidth,
// propagation delay with optional jitter (Gaussian base + Pareto spikes for
// WAN cross-traffic), Bernoulli loss, and a drop-tail byte queue.

#include <cstdint>
#include <functional>
#include <string>

#include "net/packet.hpp"
#include "sim/rng.hpp"
#include "sim/clock.hpp"

namespace mvc::net {

struct LinkParams {
    /// One-way propagation delay.
    sim::Time latency{sim::Time::ms(1)};
    /// Std-dev of Gaussian jitter added to each packet (ms scale via Time).
    sim::Time jitter{sim::Time::zero()};
    /// Probability of a heavy-tail delay spike per packet, and its scale.
    double spike_probability{0.0};
    sim::Time spike_scale{sim::Time::ms(20)};
    /// Independent per-packet loss probability.
    double loss{0.0};
    /// Serialization bandwidth in bits per second; 0 = infinite.
    double bandwidth_bps{0.0};
    /// Drop-tail queue capacity in bytes awaiting serialization.
    std::size_t queue_bytes{256 * 1024};
};

/// Delivery callback; receives the packet and the arrival time.
using DeliverFn = std::function<void(Packet&&)>;

/// Outcome of admitting one packet onto a link: Rejected (down link or queue
/// overflow — nothing was sent), Lost (accepted by the queue, dropped in
/// flight), or Accepted with the computed arrival instant.
struct LinkAdmission {
    enum class Status : std::uint8_t { Rejected, Lost, Accepted };
    Status status{Status::Rejected};
    sim::Time arrival{};
};

class Link {
public:
    Link(sim::Clock& clock, std::string name, LinkParams params);

    /// Charge the link for one packet of `wire_bytes` and compute its fate
    /// and arrival time without scheduling anything. This is the primitive
    /// beneath send(); the sharded engine uses it directly so a cross-shard
    /// packet's full path (serialization, queueing, jitter, loss) is modeled
    /// in the sender's shard and only the delivery crosses the boundary.
    [[nodiscard]] LinkAdmission admit(std::size_t wire_bytes);

    /// Enqueue a packet. Returns false when the queue overflowed (packet
    /// dropped); otherwise the packet will either be delivered via `deliver`
    /// or silently lost per the loss model.
    bool send(Packet packet, DeliverFn deliver);

    /// Schedule delivery of an already-admitted packet at `arrival` (the
    /// instant admit() returned). Second half of send(), split out so the
    /// network can observe the packet between admission and the move into
    /// the delivery event (the recording tap hooks exactly that window).
    void deliver_at(sim::Time arrival, Packet packet, DeliverFn deliver);

    [[nodiscard]] const LinkParams& params() const { return params_; }
    void set_params(const LinkParams& p) { params_ = p; }
    [[nodiscard]] const std::string& name() const { return name_; }

    /// Administrative state (fault injection). A down link rejects new sends;
    /// packets already in flight still arrive (they were on the wire).
    void set_up(bool up) { up_ = up; }
    [[nodiscard]] bool is_up() const { return up_; }
    [[nodiscard]] std::uint64_t dropped_down() const { return dropped_down_; }

    [[nodiscard]] std::uint64_t delivered() const { return delivered_; }
    [[nodiscard]] std::uint64_t lost() const { return lost_; }
    [[nodiscard]] std::uint64_t dropped_queue() const { return dropped_queue_; }
    [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }

    /// Bytes currently waiting for serialization (queue occupancy).
    [[nodiscard]] std::size_t backlog_bytes() const;

private:
    sim::Clock& sim_;
    std::string name_;
    LinkParams params_;
    sim::Rng rng_;
    sim::Time busy_until_{};
    bool up_{true};
    std::uint64_t delivered_{0};
    std::uint64_t lost_{0};
    std::uint64_t dropped_queue_{0};
    std::uint64_t dropped_down_{0};
    std::uint64_t bytes_sent_{0};

    [[nodiscard]] sim::Time tx_time(std::size_t bytes) const;
    [[nodiscard]] sim::Time draw_jitter();
};

}  // namespace mvc::net
