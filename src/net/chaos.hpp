#pragma once
// net::ChaosBackend — a transport-fault interposer. Wraps any inner Backend
// (the discrete-event Network or the RealUdpBackend) and injects scripted
// adversity per *directed* node pair on the send path: probabilistic and
// burst (Gilbert–Elliott) loss, duplication, bounded reordering, added
// delay/jitter, in-flight payload corruption, bandwidth throttling, and
// asymmetric blackhole windows. Model code opens channels against the chaos
// backend exactly as it would against the inner one; everything except
// do_send forwards through.
//
// Determinism: each directed pair draws from its own named RNG stream
// ("chaos/<src>-><dst>") derived from the inner clock's root seed, and all
// draws happen inside event callbacks, so a chaos soak under a fixed seed on
// the sim backend replays bit-identically (the E20 gate).
//
// Drop semantics mirror Link's lost-in-flight packets: a chaos-dropped send
// returns true (the packet made it onto the wire and died there), so sender
// accounting cannot distinguish chaos loss from link loss — exactly what the
// robustness layers under test must cope with. Corruption is realized
// honestly: the packet is run through encode_frame, one random bit is
// flipped, and the mangled frame is fed back to decode_frame; the CRC-32
// trailer rejects every single-bit flip, so the packet is dropped and
// counted (`chaos.corrupt_caught`). A payload without a registered wire
// codec has no bytes to flip and is dropped outright (`chaos.corrupt`).

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "net/backend.hpp"
#include "sim/rng.hpp"

namespace mvc::net {

/// Adversity recipe for one directed node pair. Default-constructed profile
/// is inert (active() == false): packets pass straight through.
struct ChaosProfile {
    /// Independent per-packet drop probability.
    double drop{0.0};

    /// Gilbert–Elliott burst loss: a two-state Markov chain stepped once per
    /// packet. Enabled when either transition probability is nonzero.
    double ge_p_bad{0.0};    ///< P(good -> bad) per packet
    double ge_p_good{0.0};   ///< P(bad -> good) per packet
    double ge_loss_bad{1.0};   ///< loss probability while in the bad state
    double ge_loss_good{0.0};  ///< loss probability while in the good state

    /// Probability a packet is delivered twice.
    double duplicate{0.0};

    /// Probability a packet is held back `reorder_hold`, letting later
    /// packets overtake it (bounded reordering).
    double reorder{0.0};
    sim::Time reorder_hold{sim::Time::ms(30)};

    /// Fixed added one-way delay plus uniform jitter in [0, jitter).
    sim::Time delay{};
    sim::Time jitter{};

    /// Probability of an in-flight bit flip (caught by the CRC frame).
    double corrupt{0.0};

    /// Serialization-rate cap in bits/s (0 = unthrottled); packets whose
    /// queueing delay would exceed `throttle_backlog` are dropped.
    double throttle_bps{0.0};
    sim::Time throttle_backlog{sim::Time::ms(200)};

    /// Swallow everything on this direction (asymmetric partition half).
    bool blackhole{false};

    [[nodiscard]] bool active() const {
        return drop > 0.0 || ge_p_bad > 0.0 || ge_p_good > 0.0 ||
               duplicate > 0.0 || reorder > 0.0 || corrupt > 0.0 ||
               throttle_bps > 0.0 || blackhole || delay > sim::Time::zero() ||
               jitter > sim::Time::zero();
    }
};

class ChaosBackend final : public Backend {
public:
    explicit ChaosBackend(Backend& inner);

    ChaosBackend(const ChaosBackend&) = delete;
    ChaosBackend& operator=(const ChaosBackend&) = delete;

    [[nodiscard]] Backend& inner() { return inner_; }

    // ------------------------------------------------------- chaos control
    /// Install `profile` on the directed pair src -> dst, replacing whatever
    /// was there; returns the previous profile (FaultPlan windows restore
    /// it). The Gilbert–Elliott chain restarts in the good state.
    ChaosProfile set_profile(NodeId src, NodeId dst, const ChaosProfile& profile);
    /// Install `profile` on both directions between a and b.
    void set_pair_profile(NodeId a, NodeId b, const ChaosProfile& profile);
    void clear_profile(NodeId src, NodeId dst);
    void clear_pair_profile(NodeId a, NodeId b);
    /// Profile currently installed on src -> dst (inert default when none).
    [[nodiscard]] ChaosProfile profile(NodeId src, NodeId dst) const;

    /// Toggle only the blackhole bit of src -> dst, preserving the rest of
    /// the installed profile (partitions compose with lossy windows).
    void set_blackhole(NodeId src, NodeId dst, bool on);

    // ------------------------------------------------ injection accounting
    [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
    [[nodiscard]] std::uint64_t duplicated() const { return duplicated_; }
    [[nodiscard]] std::uint64_t reordered() const { return reordered_; }
    [[nodiscard]] std::uint64_t corrupted() const { return corrupted_; }
    [[nodiscard]] std::uint64_t blackholed() const { return blackholed_; }
    [[nodiscard]] std::uint64_t throttle_dropped() const { return throttle_dropped_; }
    [[nodiscard]] std::uint64_t delayed() const { return delayed_; }

    // ------------------------------------------------- Backend forwarding
    NodeId add_node(std::string name, Region region) override;
    void set_handler(NodeId node, PacketHandler handler) override;
    [[nodiscard]] Region region_of(NodeId node) const override;
    [[nodiscard]] const std::string& name_of(NodeId node) const override;
    [[nodiscard]] std::size_t node_count() const override;
    [[nodiscard]] NodeContext& context(NodeId node) override;
    [[nodiscard]] const NodeContext& context(NodeId node) const override;
    [[nodiscard]] bool node_up(NodeId node) const override;
    void observe_node(NodeId node, NodeObserver observer) override;
    [[nodiscard]] FlowRef flow(std::string_view name) override;
    [[nodiscard]] sim::Clock& clock() override;
    [[nodiscard]] sim::MetricsRecorder& metrics() override;
    [[nodiscard]] const sim::MetricsRecorder& metrics() const override;
    void set_tap(PacketTap* tap) override;
    [[nodiscard]] PacketTap* tap() const override;

protected:
    bool do_send(NodeId src, NodeId dst, std::size_t size_bytes, FlowRef flow,
                 Payload payload, Priority priority) override;

private:
    struct PairState {
        ChaosProfile profile{};
        sim::Rng rng;
        bool ge_bad{false};
        sim::Time throttle_busy_until{};
        explicit PairState(sim::Rng r) : rng(std::move(r)) {}
    };

    Backend& inner_;
    std::map<std::pair<NodeId, NodeId>, PairState> pairs_;

    std::uint64_t dropped_{0};
    std::uint64_t duplicated_{0};
    std::uint64_t reordered_{0};
    std::uint64_t corrupted_{0};
    std::uint64_t blackholed_{0};
    std::uint64_t throttle_dropped_{0};
    std::uint64_t delayed_{0};

    sim::MetricId drop_id_;
    sim::MetricId dup_id_;
    sim::MetricId reorder_id_;
    sim::MetricId corrupt_id_;
    sim::MetricId corrupt_uncodable_id_;
    sim::MetricId blackhole_id_;
    sim::MetricId throttle_id_;
    sim::MetricId delayed_id_;

    PairState& state_for(NodeId src, NodeId dst);
    [[nodiscard]] const PairState* find_state(NodeId src, NodeId dst) const;
    /// True when the packet was corrupted (and therefore consumed).
    bool corrupt_in_flight(PairState& st, NodeId src, NodeId dst,
                           std::size_t size_bytes, const FlowRef& flow,
                           const Payload& payload, Priority priority);
    void forward_after(sim::Time delay, NodeId src, NodeId dst,
                       std::size_t size_bytes, FlowRef flow, Payload payload,
                       Priority priority);
};

}  // namespace mvc::net
