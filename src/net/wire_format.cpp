#include "net/wire_format.hpp"

#include <array>
#include <cstring>
#include <stdexcept>

namespace mvc::net {

namespace {

// Standard CRC-32 (IEEE 802.3, reflected 0xEDB88320), table-driven.
std::array<std::uint32_t, 256> make_crc_table() {
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k) c = (c & 1U) ? 0xEDB88320U ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}


}  // namespace

using wiredata::Reader;
using wiredata::put;

std::uint32_t crc32(std::span<const std::byte> bytes) {
    static const std::array<std::uint32_t, 256> table = make_crc_table();
    std::uint32_t c = 0xFFFFFFFFU;
    for (const std::byte b : bytes)
        c = table[(c ^ static_cast<std::uint8_t>(b)) & 0xFFU] ^ (c >> 8);
    return c ^ 0xFFFFFFFFU;
}

WireCodecs& WireCodecs::instance() {
    static WireCodecs codecs;
    return codecs;
}

void WireCodecs::add(std::uint16_t tag, detail::PayloadTypeId type, Encode encode,
                     Decode decode) {
    if (tag == kTagEmpty)
        throw std::logic_error("WireCodecs: tag 0 is reserved for empty payloads");
    for (const Entry& e : entries_) {
        if (e.tag == tag && e.type == type) return;  // idempotent re-register
        if (e.tag == tag)
            throw std::logic_error("WireCodecs: tag already bound to another type");
        if (e.type == type)
            throw std::logic_error("WireCodecs: type already bound to another tag");
    }
    entries_.push_back(Entry{tag, type, std::move(encode), std::move(decode)});
}

std::optional<std::uint16_t> WireCodecs::tag_of(const Payload& p) const {
    if (p.empty()) return kTagEmpty;
    const detail::PayloadTypeId id = p.type_id();
    for (const Entry& e : entries_)
        if (e.type == id) return e.tag;
    return std::nullopt;
}

const WireCodecs::Encode* WireCodecs::encoder(std::uint16_t tag) const {
    for (const Entry& e : entries_)
        if (e.tag == tag) return &e.encode;
    return nullptr;
}

const WireCodecs::Decode* WireCodecs::decoder(std::uint16_t tag) const {
    for (const Entry& e : entries_)
        if (e.tag == tag) return &e.decode;
    return nullptr;
}

std::optional<std::vector<std::byte>> encode_frame(const Packet& p, Priority priority) {
    const WireCodecs& codecs = WireCodecs::instance();
    const std::optional<std::uint16_t> tag = codecs.tag_of(p.payload);
    if (!tag) return std::nullopt;

    std::vector<std::byte> out;
    out.reserve(64 + p.flow.size());
    put<std::uint32_t>(out, kWireMagic);
    put<std::uint8_t>(out, kWireVersion);
    put<std::uint8_t>(out, static_cast<std::uint8_t>(priority));
    put<std::uint16_t>(out, *tag);
    put<std::uint32_t>(out, p.src);
    put<std::uint32_t>(out, p.dst);
    put<std::uint64_t>(out, p.id);
    put<std::uint64_t>(out, static_cast<std::uint64_t>(p.size_bytes));
    put<std::int64_t>(out, p.sent_at.nanos());

    if (p.flow.size() > 0xFFFF) return std::nullopt;
    put<std::uint16_t>(out, static_cast<std::uint16_t>(p.flow.size()));
    for (const char c : p.flow) out.push_back(static_cast<std::byte>(c));

    std::vector<std::byte> body;
    if (*tag != kTagEmpty) (*codecs.encoder(*tag))(p.payload, body);
    put<std::uint32_t>(out, static_cast<std::uint32_t>(body.size()));
    out.insert(out.end(), body.begin(), body.end());

    put<std::uint32_t>(out, crc32(out));
    return out;
}

std::string_view frame_defect_name(FrameDefect d) {
    switch (d) {
        case FrameDefect::None: return "none";
        case FrameDefect::BadMagic: return "bad_magic";
        case FrameDefect::BadVersion: return "bad_version";
        case FrameDefect::BadPriority: return "bad_priority";
        case FrameDefect::Truncated: return "truncated";
        case FrameDefect::TrailingGarbage: return "trailing_garbage";
        case FrameDefect::CrcMismatch: return "crc_mismatch";
        case FrameDefect::UnknownTag: return "unknown_tag";
        case FrameDefect::BadPayload: return "bad_payload";
    }
    return "unknown";
}

std::optional<DecodedFrame> decode_frame(std::span<const std::byte> frame) {
    FrameDefect defect = FrameDefect::None;
    return decode_frame(frame, defect);
}

std::optional<DecodedFrame> decode_frame(std::span<const std::byte> frame,
                                         FrameDefect& defect) {
    constexpr std::size_t kCrcBytes = 4;
    const auto reject = [&defect](FrameDefect d) {
        defect = d;
        return std::nullopt;
    };
    Reader r{frame};
    const auto magic = r.get<std::uint32_t>();
    if (!r.ok) return reject(FrameDefect::Truncated);
    if (magic != kWireMagic) return reject(FrameDefect::BadMagic);
    const auto version = r.get<std::uint8_t>();
    if (!r.ok) return reject(FrameDefect::Truncated);
    if (version != kWireVersion) return reject(FrameDefect::BadVersion);

    DecodedFrame out;
    const auto prio = r.get<std::uint8_t>();
    if (!r.ok) return reject(FrameDefect::Truncated);
    if (prio > static_cast<std::uint8_t>(Priority::Bulk))
        return reject(FrameDefect::BadPriority);
    out.priority = static_cast<Priority>(prio);
    const auto tag = r.get<std::uint16_t>();
    out.packet.src = r.get<std::uint32_t>();
    out.packet.dst = r.get<std::uint32_t>();
    out.packet.id = r.get<std::uint64_t>();
    out.packet.size_bytes = static_cast<std::size_t>(r.get<std::uint64_t>());
    out.packet.sent_at = sim::Time::ns(r.get<std::int64_t>());

    const auto flow_len = r.get<std::uint16_t>();
    const auto flow_bytes = r.bytes(flow_len);
    if (!r.ok) return reject(FrameDefect::Truncated);
    out.packet.flow.assign(reinterpret_cast<const char*>(flow_bytes.data()),
                           flow_bytes.size());

    const auto body_len = r.get<std::uint32_t>();
    const auto body = r.bytes(body_len);
    if (!r.ok) return reject(FrameDefect::Truncated);

    // The CRC must be exactly the remaining four bytes: trailing garbage is
    // as much a defect as truncation.
    if (frame.size() - r.pos < kCrcBytes) return reject(FrameDefect::Truncated);
    if (frame.size() - r.pos > kCrcBytes)
        return reject(FrameDefect::TrailingGarbage);
    const std::uint32_t stored = r.get<std::uint32_t>();
    if (!r.ok || stored != crc32(frame.first(frame.size() - kCrcBytes)))
        return reject(FrameDefect::CrcMismatch);

    if (tag == kTagEmpty) {
        if (!body.empty()) return reject(FrameDefect::BadPayload);
        defect = FrameDefect::None;
        return out;
    }
    const WireCodecs::Decode* decode = WireCodecs::instance().decoder(tag);
    if (decode == nullptr) return reject(FrameDefect::UnknownTag);
    std::optional<Payload> payload = (*decode)(body);
    if (!payload) return reject(FrameDefect::BadPayload);
    out.packet.payload = std::move(*payload);
    defect = FrameDefect::None;
    return out;
}

bool encode_nested_payload(const Payload& p, std::vector<std::byte>& out) {
    const WireCodecs& codecs = WireCodecs::instance();
    const std::optional<std::uint16_t> tag = codecs.tag_of(p);
    if (!tag) return false;
    put<std::uint16_t>(out, *tag);
    std::vector<std::byte> body;
    if (*tag != kTagEmpty) (*codecs.encoder(*tag))(p, body);
    put<std::uint32_t>(out, static_cast<std::uint32_t>(body.size()));
    out.insert(out.end(), body.begin(), body.end());
    return true;
}

std::optional<Payload> decode_nested_payload(wiredata::Reader& r) {
    const auto tag = r.get<std::uint16_t>();
    const auto body_len = r.get<std::uint32_t>();
    const auto body = r.bytes(body_len);
    if (!r.ok) return std::nullopt;
    if (tag == kTagEmpty) {
        if (!body.empty()) return std::nullopt;
        return Payload{};
    }
    const WireCodecs::Decode* decode = WireCodecs::instance().decoder(tag);
    if (decode == nullptr) return std::nullopt;
    return (*decode)(body);
}

}  // namespace mvc::net
