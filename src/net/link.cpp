#include "net/link.hpp"

#include <algorithm>
#include <utility>

namespace mvc::net {

Link::Link(sim::Clock& clock, std::string name, LinkParams params)
    : sim_(clock),
      name_(std::move(name)),
      params_(params),
      rng_(clock.rng_stream("link/" + name_)) {}

sim::Time Link::tx_time(std::size_t bytes) const {
    if (params_.bandwidth_bps <= 0.0) return sim::Time::zero();
    const double seconds =
        static_cast<double>(bytes) * 8.0 / params_.bandwidth_bps;
    return sim::Time::seconds(seconds);
}

sim::Time Link::draw_jitter() {
    sim::Time j = sim::Time::zero();
    if (params_.jitter > sim::Time::zero()) {
        const double ms = rng_.normal(0.0, params_.jitter.to_ms());
        j += sim::Time::ms(std::max(0.0, ms));
    }
    if (params_.spike_probability > 0.0 && rng_.chance(params_.spike_probability)) {
        // Pareto(alpha=1.5) scaled spike: occasional cross-traffic burst.
        const double spike = rng_.pareto(1.0, 1.5) * params_.spike_scale.to_ms();
        // Cap at 20x scale to keep tails finite.
        j += sim::Time::ms(std::min(spike, 20.0 * params_.spike_scale.to_ms()));
    }
    return j;
}

std::size_t Link::backlog_bytes() const {
    if (params_.bandwidth_bps <= 0.0 || busy_until_ <= sim_.now()) return 0;
    const double backlog_seconds = (busy_until_ - sim_.now()).to_seconds();
    return static_cast<std::size_t>(backlog_seconds * params_.bandwidth_bps / 8.0);
}

LinkAdmission Link::admit(std::size_t wire_bytes) {
    if (!up_) {
        ++dropped_down_;
        return {};
    }
    // The queue models serialization backlog; an infinite-bandwidth link
    // never queues, so nothing can overflow.
    if (params_.bandwidth_bps > 0.0 &&
        backlog_bytes() + wire_bytes > params_.queue_bytes) {
        ++dropped_queue_;
        return {};
    }
    bytes_sent_ += wire_bytes;
    const sim::Time start = std::max(sim_.now(), busy_until_);
    const sim::Time departure = start + tx_time(wire_bytes);
    busy_until_ = departure;

    if (rng_.chance(params_.loss)) {
        ++lost_;
        return {LinkAdmission::Status::Lost, {}};  // accepted, lost in flight
    }

    const sim::Time arrival = departure + params_.latency + draw_jitter();
    return {LinkAdmission::Status::Accepted, arrival};
}

bool Link::send(Packet packet, DeliverFn deliver) {
    const LinkAdmission a = admit(packet.size_bytes + kHeaderBytes);
    switch (a.status) {
        case LinkAdmission::Status::Rejected:
            return false;
        case LinkAdmission::Status::Lost:
            return true;
        case LinkAdmission::Status::Accepted:
            break;
    }
    deliver_at(a.arrival, std::move(packet), std::move(deliver));
    return true;
}

void Link::deliver_at(sim::Time arrival, Packet packet, DeliverFn deliver) {
    sim_.schedule_at(arrival, [this, packet = std::move(packet),
                               deliver = std::move(deliver)]() mutable {
        ++delivered_;
        deliver(std::move(packet));
    });
}

}  // namespace mvc::net
