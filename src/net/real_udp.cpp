#include "net/real_udp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "net/wire_format.hpp"

namespace mvc::net {

namespace {

/// Largest datagram we ever emit or accept. Loopback MTU is ~64 KiB; a
/// frame larger than this fails to encode rather than fragmenting badly.
constexpr std::size_t kMaxDatagram = 65000;

sockaddr_in make_sockaddr(std::uint32_t addr_be, std::uint16_t port) {
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_addr.s_addr = addr_be;
    sa.sin_port = htons(port);
    return sa;
}

}  // namespace

RealUdpBackend::RealUdpBackend() : RealUdpBackend(Options{}) {}

RealUdpBackend::RealUdpBackend(Options options)
    : options_(std::move(options)),
      wall_(options_.seed),
      no_route_(metrics_.counter_id("net.no_route")),
      send_error_(metrics_.counter_id("net.send_error")),
      unencodable_(metrics_.counter_id("net.wire_unencodable")),
      decode_error_(metrics_.counter_id("net.wire_decode_error")),
      dropped_no_handler_(metrics_.counter_id("net.dropped_no_handler")),
      test_drop_(metrics_.counter_id("net.test_drop")) {
    for (std::size_t i = 0; i < kFrameDefectCount; ++i)
        ingress_reject_ids_[i] = metrics_.counter_id(
            "net.ingress_rejected",
            {{"reason", frame_defect_name(static_cast<FrameDefect>(i))}});
}

RealUdpBackend::~RealUdpBackend() {
    for (NodeRec& rec : nodes_)
        if (rec.fd >= 0) ::close(rec.fd);
}

NodeId RealUdpBackend::add_entry(NodeRec rec) {
    nodes_.push_back(std::move(rec));
    // Ids are 1-based so that kInvalidNode (0) never aliases a real node
    // (same convention as the simulated Network).
    return static_cast<NodeId>(nodes_.size());
}

NodeId RealUdpBackend::add_node(std::string name, Region region) {
    NodeRec rec;
    rec.name = std::move(name);
    rec.region = region;

    in_addr addr{};
    if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr) != 1)
        throw std::invalid_argument("RealUdpBackend: bad bind address " +
                                    options_.bind_address);
    rec.addr_be = addr.s_addr;

    rec.fd = ::socket(AF_INET, SOCK_DGRAM, 0);
    if (rec.fd < 0)
        throw std::runtime_error(std::string("RealUdpBackend: socket(): ") +
                                 std::strerror(errno));
    const int flags = ::fcntl(rec.fd, F_GETFL, 0);
    ::fcntl(rec.fd, F_SETFL, flags | O_NONBLOCK);

    const std::uint16_t want =
        options_.base_port == 0
            ? std::uint16_t{0}
            : static_cast<std::uint16_t>(options_.base_port + nodes_.size());
    sockaddr_in sa = make_sockaddr(rec.addr_be, want);
    if (::bind(rec.fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) != 0) {
        const int err = errno;
        ::close(rec.fd);
        throw std::runtime_error("RealUdpBackend: bind(" + rec.name +
                                 "): " + std::strerror(err));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(rec.fd, reinterpret_cast<sockaddr*>(&bound), &len);
    rec.port = ntohs(bound.sin_port);
    return add_entry(std::move(rec));
}

NodeId RealUdpBackend::add_peer(std::string name, Region region,
                                const std::string& address, std::uint16_t port) {
    NodeRec rec;
    rec.name = std::move(name);
    rec.region = region;
    in_addr addr{};
    if (::inet_pton(AF_INET, address.c_str(), &addr) != 1)
        throw std::invalid_argument("RealUdpBackend: bad peer address " + address);
    rec.addr_be = addr.s_addr;
    rec.port = port;
    return add_entry(std::move(rec));
}

RealUdpBackend::NodeRec& RealUdpBackend::node_at(NodeId id) {
    if (id == kInvalidNode || id > nodes_.size())
        throw std::out_of_range("RealUdpBackend: unknown node id");
    return nodes_[id - 1];
}

const RealUdpBackend::NodeRec& RealUdpBackend::node_at(NodeId id) const {
    if (id == kInvalidNode || id > nodes_.size())
        throw std::out_of_range("RealUdpBackend: unknown node id");
    return nodes_[id - 1];
}

void RealUdpBackend::set_handler(NodeId node, PacketHandler handler) {
    node_at(node).handler = std::move(handler);
}

Region RealUdpBackend::region_of(NodeId node) const { return node_at(node).region; }

const std::string& RealUdpBackend::name_of(NodeId node) const {
    return node_at(node).name;
}

NodeContext& RealUdpBackend::context(NodeId node) { return node_at(node).context; }

const NodeContext& RealUdpBackend::context(NodeId node) const {
    return node_at(node).context;
}

void RealUdpBackend::observe_node(NodeId node, NodeObserver observer) {
    node_at(node);  // validate
    (void)observer;  // no fault injection on the real transport; never fires
}

std::uint16_t RealUdpBackend::port_of(NodeId node) const {
    const NodeRec& rec = node_at(node);
    if (rec.fd < 0)
        throw std::logic_error("RealUdpBackend: port_of() on a peer node");
    return rec.port;
}

bool RealUdpBackend::is_local(NodeId node) const { return node_at(node).fd >= 0; }

bool RealUdpBackend::do_send(NodeId src, NodeId dst, std::size_t size_bytes,
                             FlowRef flow, Payload payload, Priority priority) {
    const NodeRec& src_rec = node_at(src);
    const NodeRec& dst_rec = node_at(dst);
    if (src_rec.fd < 0) {
        // Sending "from" a peer stub means the node tables of the two
        // processes disagree; surface it as a routing failure.
        metrics_.count(no_route_);
        return false;
    }
    if (dst_rec.port == 0) {
        metrics_.count(no_route_);
        return false;
    }

    Packet p;
    p.id = next_packet_id_++;
    p.src = src;
    p.dst = dst;
    p.size_bytes = size_bytes;
    p.sent_at = wall_.now();
    p.flow = flow.name();
    p.payload = std::move(payload);

    const FlowMetrics& fm = flow.metric_ids();
    metrics_.count(fm.tx);
    metrics_.count(fm.tx_bytes, size_bytes + kHeaderBytes);

    const std::optional<std::vector<std::byte>> frame = encode_frame(p, priority);
    if (!frame || frame->size() > kMaxDatagram) {
        metrics_.count(unencodable_);
        return false;
    }
    const sockaddr_in to = make_sockaddr(dst_rec.addr_be, dst_rec.port);
    const ssize_t n = ::sendto(src_rec.fd, frame->data(), frame->size(), 0,
                               reinterpret_cast<const sockaddr*>(&to), sizeof(to));
    if (n != static_cast<ssize_t>(frame->size())) {
        metrics_.count(send_error_);
        return false;
    }
    ++datagrams_sent_;
    return true;
}

void RealUdpBackend::dispatch(Packet&& p, Priority priority) {
    if (ingress_drop_ && ingress_drop_(p)) {
        metrics_.count(test_drop_);
        return;
    }
    // The tap fires here, at ingress: on a real wire the receive order is
    // the ground truth a deterministic re-run must reproduce.
    if (tap_ != nullptr) tap_->on_send(p, priority);

    const FlowMetrics& fm = flows_.metrics_of(p.flow);
    metrics_.sample(fm.latency_ms, (wall_.now() - p.sent_at).to_ms());
    metrics_.count(fm.rx);

    if (p.dst == kInvalidNode || p.dst > nodes_.size()) {
        metrics_.count(decode_error_);
        return;
    }
    NodeRec& dst = nodes_[p.dst - 1];
    if (dst.handler) {
        dst.handler(std::move(p));
    } else {
        metrics_.count(dropped_no_handler_);
    }
}

void RealUdpBackend::drain_socket(NodeRec& rec) {
    std::array<std::byte, kMaxDatagram> buf;
    for (;;) {
        const ssize_t n = ::recv(rec.fd, buf.data(), buf.size(), 0);
        if (n < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK) return;
            if (errno == EINTR) continue;
            metrics_.count(send_error_);
            return;
        }
        ++datagrams_received_;
        FrameDefect defect = FrameDefect::None;
        std::optional<DecodedFrame> frame =
            decode_frame({buf.data(), static_cast<std::size_t>(n)}, defect);
        if (!frame) {
            ++decode_errors_;
            metrics_.count(decode_error_);
            const auto idx = static_cast<std::size_t>(defect);
            ++ingress_rejects_[idx];
            metrics_.count(ingress_reject_ids_[idx]);
            continue;
        }
        dispatch(std::move(frame->packet), frame->priority);
    }
}

std::size_t RealUdpBackend::poll_once(sim::Time timeout) {
    std::vector<pollfd> fds;
    fds.reserve(nodes_.size());
    for (const NodeRec& rec : nodes_)
        if (rec.fd >= 0) fds.push_back(pollfd{rec.fd, POLLIN, 0});

    // Wait no longer than the next timer deadline.
    sim::Time wait = timeout;
    if (const std::optional<sim::Time> deadline = wall_.next_deadline()) {
        const sim::Time until = *deadline - wall_.now();
        wait = std::clamp(until, sim::Time::zero(), timeout);
    }
    const int timeout_ms =
        static_cast<int>(std::max<std::int64_t>(0, wait.nanos() / 1'000'000));

    const std::uint64_t before = datagrams_received_;
    const int ready = fds.empty() ? 0 : ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready > 0) {
        std::size_t fd_idx = 0;
        for (NodeRec& rec : nodes_) {
            if (rec.fd < 0) continue;
            if ((fds[fd_idx].revents & POLLIN) != 0) drain_socket(rec);
            ++fd_idx;
        }
    }
    wall_.run_due();
    return static_cast<std::size_t>(datagrams_received_ - before);
}

void RealUdpBackend::run_for(sim::Time duration) {
    const sim::Time deadline = wall_.now() + duration;
    while (wall_.now() < deadline)
        poll_once(std::min(deadline - wall_.now(), sim::Time::ms(10)));
}

}  // namespace mvc::net
