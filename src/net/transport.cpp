#include "net/transport.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "net/wire_format.hpp"

namespace mvc::net {

// ---------------------------------------------------------------- PacketDemux

PacketDemux::PacketDemux(Backend& net, NodeId node)
    : net_(net), node_(node), unmatched_id_(net.metrics().counter_id("demux.unmatched")) {
    net_.set_handler(node_, [this](Packet&& p) {
        const auto it = handlers_.find(p.flow);
        if (it != handlers_.end()) {
            it->second(std::move(p));
        } else {
            net_.metrics().count(unmatched_id_);
        }
    });
}

void PacketDemux::on_flow(std::string flow, PacketHandler handler) {
    handlers_[std::move(flow)] = std::move(handler);
}

// ------------------------------------------------------------ ReliableChannel

ReliableChannel::ReliableChannel(Backend& net, PacketDemux& src_demux,
                                 PacketDemux& dst_demux, std::string flow,
                                 ReliableOptions options)
    : net_(net),
      src_(src_demux.node()),
      dst_(dst_demux.node()),
      flow_(std::move(flow)),
      flow_ref_(net.flow(flow_)),
      ack_ref_(net.flow(flow_ + ".ack")),
      retransmit_id_(net.metrics().counter_id("arq.retransmit", {{"flow", flow_}})),
      failed_id_(net.metrics().counter_id("arq.failed", {{"flow", flow_}})),
      peer_dead_id_(net.metrics().counter_id("arq.peer_dead", {{"flow", flow_}})),
      options_(options) {
    dst_demux.on_flow(flow_, [this](Packet&& p) { handle_data(std::move(p)); });
    src_demux.on_flow(flow_ + ".ack", [this](Packet&& p) { handle_ack(std::move(p)); });
}

void ReliableChannel::register_wire_codecs(WireCodecs& codecs, std::uint16_t data_tag) {
    codecs.register_codec<Wire>(
        data_tag,
        [](const Payload& p, std::vector<std::byte>& out) {
            const auto& w = p.get<Wire>();
            wiredata::put<std::uint64_t>(out, w.seq);
            wiredata::put<std::int64_t>(out, w.first_sent.nanos());
            wiredata::put<std::int32_t>(out, w.transmission);
            if (!encode_nested_payload(w.app_payload, out)) {
                // No codec for the application payload: ship the wrapper with
                // an empty nested payload rather than failing the whole
                // segment (the ACK machinery still needs the seq through).
                wiredata::put<std::uint16_t>(out, kTagEmpty);
                wiredata::put<std::uint32_t>(out, 0);
            }
        },
        [](std::span<const std::byte> body) -> std::optional<Payload> {
            wiredata::Reader r{body};
            Wire w;
            w.seq = r.get<std::uint64_t>();
            w.first_sent = sim::Time::ns(r.get<std::int64_t>());
            w.transmission = r.get<std::int32_t>();
            std::optional<Payload> nested = decode_nested_payload(r);
            if (!nested || !r.ok || r.pos != body.size()) return std::nullopt;
            w.app_payload = std::move(*nested);
            return Payload{std::move(w)};
        });
}

sim::Time ReliableChannel::current_rto() const {
    if (!have_rtt_) return options_.rto_initial;
    const double rto_ms = srtt_ms_ + 4.0 * rttvar_ms_;
    return std::max(options_.rto_min, sim::Time::ms(rto_ms));
}

void ReliableChannel::send(std::size_t size_bytes, Payload payload) {
    const std::uint64_t seq = next_seq_++;
    Outstanding out;
    out.size_bytes = size_bytes;
    out.payload = std::move(payload);
    out.first_sent = net_.clock().now();
    outstanding_.emplace(seq, std::move(out));
    transmit(seq);
}

void ReliableChannel::transmit(std::uint64_t seq) {
    auto it = outstanding_.find(seq);
    if (it == outstanding_.end()) return;  // already acked
    Outstanding& out = it->second;
    if (options_.max_transmissions > 0 &&
        out.transmissions >= options_.max_transmissions) {
        give_up(seq);
        return;
    }
    ++out.transmissions;
    if (out.transmissions > 1) {
        ++retransmissions_;
        net_.metrics().count(retransmit_id_);
    }

    Wire w{seq, out.payload, out.first_sent, out.transmissions};
    net_.send(src_, dst_, out.size_bytes, flow_ref_, std::move(w));
    arm_timer(seq);
}

void ReliableChannel::give_up(std::uint64_t seq) {
    auto it = outstanding_.find(seq);
    if (it == outstanding_.end()) return;
    net_.clock().cancel(it->second.timer);
    Payload payload = std::move(it->second.payload);
    const sim::Time first_sent = it->second.first_sent;
    const int transmissions = it->second.transmissions;
    outstanding_.erase(it);
    ++failed_count_;
    net_.metrics().count(failed_id_);
    if (failed_cb_) failed_cb_(std::move(payload), first_sent, transmissions);
    ++consecutive_failures_;
    if (options_.dead_after_failures > 0 && !peer_dead_ &&
        consecutive_failures_ >= options_.dead_after_failures) {
        peer_dead_ = true;
        net_.metrics().count(peer_dead_id_);
        if (dead_peer_cb_) dead_peer_cb_(dst_, consecutive_failures_);
    }
}

void ReliableChannel::arm_timer(std::uint64_t seq) {
    auto it = outstanding_.find(seq);
    if (it == outstanding_.end()) return;
    // Exponential backoff on consecutive losses of the same segment, capped
    // so a long outage cannot push the next probe arbitrarily far out.
    const int backoff_exp = std::min(it->second.transmissions - 1, 6);
    const sim::Time rto =
        std::min(current_rto() * (std::int64_t{1} << backoff_exp), options_.rto_max);
    it->second.timer = net_.clock().schedule_after(rto, [this, seq] {
        if (outstanding_.contains(seq)) transmit(seq);
    });
}

void ReliableChannel::handle_data(Packet&& p) {
    auto w = p.payload.take<Wire>();
    // Ack every copy (the ack itself may be lost).
    net_.send(dst_, src_, options_.ack_bytes, ack_ref_, w.seq);

    if (w.seq < next_expected_ || reorder_.contains(w.seq)) return;  // duplicate
    reorder_.emplace(w.seq, std::move(w));
    deliver_ready();
}

void ReliableChannel::deliver_ready() {
    if (!options_.ordered) {
        // Deliver immediately; keep the seq in reorder_ as a tombstone (empty
        // payload) so duplicates are still recognised, and advance the
        // watermark over contiguous tombstones to bound memory.
        for (auto& [seq, w] : reorder_) {
            if (w.transmission < 0) continue;  // already-delivered tombstone
            ++delivered_count_;
            if (delivered_cb_)
                delivered_cb_(std::move(w.app_payload), w.first_sent, w.transmission);
            w.transmission = -1;
        }
        for (auto it = reorder_.begin();
             it != reorder_.end() && it->first == next_expected_ && it->second.transmission < 0;) {
            ++next_expected_;
            it = reorder_.erase(it);
        }
        return;
    }
    for (auto it = reorder_.begin();
         it != reorder_.end() && it->first == next_expected_;) {
        ++delivered_count_;
        ++next_expected_;
        if (delivered_cb_)
            delivered_cb_(std::move(it->second.app_payload), it->second.first_sent,
                          it->second.transmission);
        it = reorder_.erase(it);
    }
}

void ReliableChannel::handle_ack(Packet&& p) {
    const auto seq = p.payload.get<std::uint64_t>();
    auto it = outstanding_.find(seq);
    if (it == outstanding_.end()) return;  // duplicate ack
    // Any ACK proves the peer is reachable again.
    consecutive_failures_ = 0;
    peer_dead_ = false;
    // Karn's rule: only first-transmission segments feed the RTT estimator.
    if (it->second.transmissions == 1) {
        observe_rtt((net_.clock().now() - it->second.first_sent).to_ms());
    }
    net_.clock().cancel(it->second.timer);
    outstanding_.erase(it);
}

void ReliableChannel::observe_rtt(double sample_ms) {
    if (!have_rtt_) {
        srtt_ms_ = sample_ms;
        rttvar_ms_ = sample_ms / 2.0;
        have_rtt_ = true;
        return;
    }
    constexpr double kAlpha = 1.0 / 8.0;
    constexpr double kBeta = 1.0 / 4.0;
    rttvar_ms_ = (1.0 - kBeta) * rttvar_ms_ + kBeta * std::abs(srtt_ms_ - sample_ms);
    srtt_ms_ = (1.0 - kAlpha) * srtt_ms_ + kAlpha * sample_ms;
}

// ----------------------------------------------------------------- TokenBucket

TokenBucket::TokenBucket(sim::Clock& clock, double rate_bps, std::size_t burst_bytes)
    : sim_(clock),
      rate_bps_(rate_bps),
      burst_bytes_(static_cast<double>(burst_bytes)),
      tokens_(static_cast<double>(burst_bytes)),
      last_refill_(clock.now()) {
    if (rate_bps <= 0.0) throw std::invalid_argument("TokenBucket: rate must be positive");
}

void TokenBucket::refill() const {
    const sim::Time now = sim_.now();
    const double elapsed = (now - last_refill_).to_seconds();
    if (elapsed > 0.0) {
        tokens_ = std::min(burst_bytes_, tokens_ + elapsed * rate_bps_ / 8.0);
        last_refill_ = now;
    }
}

sim::Time TokenBucket::earliest_send(std::size_t bytes) const {
    refill();
    const double need = static_cast<double>(bytes);
    if (tokens_ >= need) return sim_.now();
    const double deficit = need - tokens_;
    return sim_.now() + sim::Time::seconds(deficit * 8.0 / rate_bps_);
}

void TokenBucket::consume(std::size_t bytes) {
    refill();
    tokens_ -= static_cast<double>(bytes);
}

void TokenBucket::set_rate_bps(double r) {
    if (r <= 0.0) throw std::invalid_argument("TokenBucket: rate must be positive");
    refill();
    rate_bps_ = r;
}

}  // namespace mvc::net
