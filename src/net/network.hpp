#pragma once
// Node registry plus the link fabric between nodes. Endpoints register a
// packet handler; Network::send picks the (direct) link for the node pair,
// charges it, and invokes the destination handler on delivery. Per-flow
// traffic and latency telemetry land in the shared MetricsRecorder.

#include <any>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/link.hpp"
#include "net/packet.hpp"
#include "net/topology.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"

namespace mvc::net {

using PacketHandler = std::function<void(Packet&&)>;

class Network {
public:
    explicit Network(sim::Simulator& sim);

    Network(const Network&) = delete;
    Network& operator=(const Network&) = delete;

    /// Register a node; handlers may be set later (packets to a node with no
    /// handler are counted and discarded).
    NodeId add_node(std::string name, Region region);
    void set_handler(NodeId node, PacketHandler handler);

    [[nodiscard]] Region region_of(NodeId node) const;
    [[nodiscard]] const std::string& name_of(NodeId node) const;
    [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

    /// Create a bidirectional connection with identical parameters each way.
    void connect(NodeId a, NodeId b, const LinkParams& params);
    /// Connect using WAN-path parameters derived from the nodes' regions.
    void connect_wan(NodeId a, NodeId b, const WanTopology& wan);
    [[nodiscard]] bool connected(NodeId a, NodeId b) const;
    /// Directed link a->b; nullptr when not connected.
    [[nodiscard]] Link* link(NodeId a, NodeId b);
    [[nodiscard]] const Link* link(NodeId a, NodeId b) const;

    /// Send `size_bytes` of `flow` traffic from src to dst. Returns false if
    /// there is no link or the link queue dropped the packet.
    bool send(NodeId src, NodeId dst, std::size_t size_bytes, std::string flow,
              std::any payload);

    [[nodiscard]] sim::MetricsRecorder& metrics() { return metrics_; }
    [[nodiscard]] const sim::MetricsRecorder& metrics() const { return metrics_; }
    [[nodiscard]] sim::Simulator& simulator() { return sim_; }

    /// Total wire bytes accepted across all links.
    [[nodiscard]] std::uint64_t total_bytes_sent() const;

private:
    struct NodeRec {
        std::string name;
        Region region{Region::HongKong};
        PacketHandler handler;
    };

    sim::Simulator& sim_;
    std::vector<NodeRec> nodes_;
    std::map<std::pair<NodeId, NodeId>, std::unique_ptr<Link>> links_;
    sim::MetricsRecorder metrics_;
    std::uint64_t next_packet_id_{1};

    void deliver(Packet&& p);
    NodeRec& node_at(NodeId id);
    const NodeRec& node_at(NodeId id) const;
};

}  // namespace mvc::net
