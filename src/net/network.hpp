#pragma once
// The simulated transport backend: node registry plus the link fabric
// between nodes. Endpoints register a packet handler; send picks the
// (direct) link for the node pair, charges it, and invokes the destination
// handler on delivery. Per-flow traffic and latency telemetry land in the
// shared MetricsRecorder.
//
// Network implements net::Backend (see backend.hpp) — model code holds a
// Backend& and never names this class — and adds what only a simulation
// has: explicit links with modeled impairments, WAN topology wiring, the
// fault-injection surface (link/node up/down), and cross-shard remote
// proxies for the sharded engine.
//
// Fault surface: links and nodes carry administrative up/down state driven
// by the fault-injection layer. A down link rejects new sends; a down node
// neither sends, receives, nor completes in-flight deliveries addressed to
// it. Every drop is counted so recovery experiments can audit the outage.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/backend.hpp"
#include "net/link.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"

namespace mvc::net {

class Network final : public Backend {
public:
    explicit Network(sim::Simulator& sim);

    Network(const Network&) = delete;
    Network& operator=(const Network&) = delete;

    NodeId add_node(std::string name, Region region) override;
    void set_handler(NodeId node, PacketHandler handler) override;

    /// Cross-shard egress hook: a *remote proxy* node stands in for a node
    /// hosted by another shard's Network. Sends addressed to it are charged
    /// to the local link as usual, but instead of a local delivery the
    /// packet (with its computed arrival instant) is handed to `egress`,
    /// which ships it across the shard boundary. See core::ShardedWorld.
    using RemoteEgress = std::function<void(Packet&&, sim::Time deliver_at)>;
    NodeId add_remote(std::string name, Region region, RemoteEgress egress);
    [[nodiscard]] bool is_remote(NodeId node) const;

    /// Deliver a packet that crossed the shard boundary: runs the normal
    /// receive path (rx/latency metrics, destination handler). `p.dst` must
    /// be a node of *this* network.
    void inject(Packet&& p);

    [[nodiscard]] Region region_of(NodeId node) const override;
    [[nodiscard]] const std::string& name_of(NodeId node) const override;
    [[nodiscard]] std::size_t node_count() const override { return nodes_.size(); }

    [[nodiscard]] NodeContext& context(NodeId node) override;
    [[nodiscard]] const NodeContext& context(NodeId node) const override;

    /// Create a bidirectional connection with identical parameters each way.
    void connect(NodeId a, NodeId b, const LinkParams& params);
    /// Connect using WAN-path parameters derived from the nodes' regions.
    void connect_wan(NodeId a, NodeId b, const WanTopology& wan);
    [[nodiscard]] bool connected(NodeId a, NodeId b) const;
    /// Directed link a->b; nullptr when not connected.
    [[nodiscard]] Link* link(NodeId a, NodeId b);
    [[nodiscard]] const Link* link(NodeId a, NodeId b) const;

    /// Fault injection: take both directions of a link down/up. Throws if the
    /// nodes are not connected.
    void set_link_up(NodeId a, NodeId b, bool up);
    [[nodiscard]] bool link_up(NodeId a, NodeId b) const;
    /// Fault injection: crash/restart a node. A down node drops all sends
    /// from and to it, including in-flight deliveries.
    void set_node_up(NodeId node, bool up);
    [[nodiscard]] bool node_up(NodeId node) const override;

    void observe_node(NodeId node, NodeObserver observer) override;

    [[nodiscard]] FlowRef flow(std::string_view name) override {
        return flows_.flow(name);
    }

    using Backend::send;

    void set_tap(PacketTap* tap) override { tap_ = tap; }
    [[nodiscard]] PacketTap* tap() const override { return tap_; }

    [[nodiscard]] sim::MetricsRecorder& metrics() override { return metrics_; }
    [[nodiscard]] const sim::MetricsRecorder& metrics() const override {
        return metrics_;
    }
    [[nodiscard]] sim::Clock& clock() override { return sim_; }
    [[nodiscard]] sim::Simulator& simulator() { return sim_; }

    /// Total wire bytes accepted across all links.
    [[nodiscard]] std::uint64_t total_bytes_sent() const;

protected:
    bool do_send(NodeId src, NodeId dst, std::size_t size_bytes, FlowRef flow,
                 Payload payload, Priority priority) override;

private:
    struct NodeRec {
        std::string name;
        Region region{Region::HongKong};
        PacketHandler handler;
        bool up{true};
        NodeContext context;
        std::vector<NodeObserver> observers;
        RemoteEgress egress;  // set only on remote proxy nodes
    };

    sim::Simulator& sim_;
    std::vector<NodeRec> nodes_;
    std::map<std::pair<NodeId, NodeId>, std::unique_ptr<Link>> links_;
    sim::MetricsRecorder metrics_;
    std::uint64_t next_packet_id_{1};
    PacketTap* tap_{nullptr};
    FlowTable flows_{metrics_};
    // Fixed counters off the per-flow path, resolved at construction.
    sim::MetricId node_down_drop_;
    sim::MetricId no_route_;
    sim::MetricId dropped_no_handler_;

    void deliver(Packet&& p);
    NodeRec& node_at(NodeId id);
    const NodeRec& node_at(NodeId id) const;
};

}  // namespace mvc::net
