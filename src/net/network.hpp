#pragma once
// Node registry plus the link fabric between nodes. Endpoints register a
// packet handler; Network::send picks the (direct) link for the node pair,
// charges it, and invokes the destination handler on delivery. Per-flow
// traffic and latency telemetry land in the shared MetricsRecorder.
//
// Fault surface: links and nodes carry administrative up/down state driven
// by the fault-injection layer. A down link rejects new sends; a down node
// neither sends, receives, nor completes in-flight deliveries addressed to
// it. Every drop is counted so recovery experiments can audit the outage.

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/link.hpp"
#include "net/packet.hpp"
#include "net/payload.hpp"
#include "net/topology.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"

namespace mvc::net {

using PacketHandler = std::function<void(Packet&&)>;

/// Per-node typed registry: nodes that host a server object (edge, cloud,
/// relay, client) bind it here so other layers can resolve it back from a
/// NodeId with a compile-time-checked accessor instead of a side map keyed
/// by name. One slot per type per node; `get` returns nullptr when unbound,
/// and the type token guarantees a slot can never be read as the wrong type.
class NodeContext {
public:
    template <class T>
    void bind(T* object) {
        slots_[detail::payload_type_id<T>()] = object;
    }

    template <class T>
    void unbind() {
        slots_.erase(detail::payload_type_id<T>());
    }

    template <class T>
    [[nodiscard]] T* get() const {
        const auto it = slots_.find(detail::payload_type_id<T>());
        return it == slots_.end() ? nullptr : static_cast<T*>(it->second);
    }

    template <class T>
    [[nodiscard]] bool has() const {
        return slots_.contains(detail::payload_type_id<T>());
    }

private:
    std::map<detail::PayloadTypeId, void*> slots_;
};

class Network {
public:
    explicit Network(sim::Simulator& sim);

    Network(const Network&) = delete;
    Network& operator=(const Network&) = delete;

    /// Register a node; handlers may be set later (packets to a node with no
    /// handler are counted and discarded).
    NodeId add_node(std::string name, Region region);
    void set_handler(NodeId node, PacketHandler handler);

    /// Cross-shard egress hook: a *remote proxy* node stands in for a node
    /// hosted by another shard's Network. Sends addressed to it are charged
    /// to the local link as usual, but instead of a local delivery the
    /// packet (with its computed arrival instant) is handed to `egress`,
    /// which ships it across the shard boundary. See core::ShardedWorld.
    using RemoteEgress = std::function<void(Packet&&, sim::Time deliver_at)>;
    NodeId add_remote(std::string name, Region region, RemoteEgress egress);
    [[nodiscard]] bool is_remote(NodeId node) const;

    /// Deliver a packet that crossed the shard boundary: runs the normal
    /// receive path (rx/latency metrics, destination handler). `p.dst` must
    /// be a node of *this* network.
    void inject(Packet&& p);

    [[nodiscard]] Region region_of(NodeId node) const;
    [[nodiscard]] const std::string& name_of(NodeId node) const;
    [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

    /// Typed per-node context registry (see NodeContext).
    [[nodiscard]] NodeContext& context(NodeId node);
    [[nodiscard]] const NodeContext& context(NodeId node) const;

    /// Create a bidirectional connection with identical parameters each way.
    void connect(NodeId a, NodeId b, const LinkParams& params);
    /// Connect using WAN-path parameters derived from the nodes' regions.
    void connect_wan(NodeId a, NodeId b, const WanTopology& wan);
    [[nodiscard]] bool connected(NodeId a, NodeId b) const;
    /// Directed link a->b; nullptr when not connected.
    [[nodiscard]] Link* link(NodeId a, NodeId b);
    [[nodiscard]] const Link* link(NodeId a, NodeId b) const;

    /// Fault injection: take both directions of a link down/up. Throws if the
    /// nodes are not connected.
    void set_link_up(NodeId a, NodeId b, bool up);
    [[nodiscard]] bool link_up(NodeId a, NodeId b) const;
    /// Fault injection: crash/restart a node. A down node drops all sends
    /// from and to it, including in-flight deliveries.
    void set_node_up(NodeId node, bool up);
    [[nodiscard]] bool node_up(NodeId node) const;

    /// Observe administrative up/down transitions of `node`. Observers fire
    /// synchronously from set_node_up, only on actual state changes, in
    /// registration order (deterministic). The recovery layer uses this to
    /// wipe volatile state on crash and restore from checkpoint on restart.
    using NodeObserver = std::function<void(NodeId, bool up)>;
    void observe_node(NodeId node, NodeObserver observer);

    /// Send `size_bytes` of `flow` traffic from src to dst. Returns false if
    /// there is no link, an endpoint or the link is down, or the link queue
    /// dropped the packet.
    bool send(NodeId src, NodeId dst, std::size_t size_bytes, std::string flow,
              Payload payload);

    [[nodiscard]] sim::MetricsRecorder& metrics() { return metrics_; }
    [[nodiscard]] const sim::MetricsRecorder& metrics() const { return metrics_; }
    [[nodiscard]] sim::Simulator& simulator() { return sim_; }

    /// Total wire bytes accepted across all links.
    [[nodiscard]] std::uint64_t total_bytes_sent() const;

private:
    struct NodeRec {
        std::string name;
        Region region{Region::HongKong};
        PacketHandler handler;
        bool up{true};
        NodeContext context;
        std::vector<NodeObserver> observers;
        RemoteEgress egress;  // set only on remote proxy nodes
    };

    sim::Simulator& sim_;
    std::vector<NodeRec> nodes_;
    std::map<std::pair<NodeId, NodeId>, std::unique_ptr<Link>> links_;
    sim::MetricsRecorder metrics_;
    std::uint64_t next_packet_id_{1};

    void deliver(Packet&& p);
    NodeRec& node_at(NodeId id);
    const NodeRec& node_at(NodeId id) const;
};

}  // namespace mvc::net
