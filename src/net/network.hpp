#pragma once
// Node registry plus the link fabric between nodes. Endpoints register a
// packet handler; Network::send picks the (direct) link for the node pair,
// charges it, and invokes the destination handler on delivery. Per-flow
// traffic and latency telemetry land in the shared MetricsRecorder.
//
// Fault surface: links and nodes carry administrative up/down state driven
// by the fault-injection layer. A down link rejects new sends; a down node
// neither sends, receives, nor completes in-flight deliveries addressed to
// it. Every drop is counted so recovery experiments can audit the outage.

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/link.hpp"
#include "net/packet.hpp"
#include "net/payload.hpp"
#include "net/topology.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"

namespace mvc::net {

using PacketHandler = std::function<void(Packet&&)>;

/// Egress observer for session recording: called once per packet *accepted
/// onto a link* (local delivery or cross-shard egress), after admission but
/// before the packet is moved into its delivery event. Lost-in-flight
/// packets are observed too — they were on the wire; rejected ones (down
/// link, queue overflow) are not. The callee must not send, must not retain
/// the reference past the call, and must not allocate in steady state (the
/// tap sits on the PR-4 zero-allocation send path — see src/replay).
/// An abstract class rather than std::function so installing a tap costs one
/// virtual call per send and captures nothing.
class PacketTap {
public:
    virtual ~PacketTap() = default;
    virtual void on_send(const Packet& p, Priority priority) = 0;
};

/// Pre-resolved metric handles for one named flow: every per-packet counter
/// and the latency series the send/deliver path touches. Interned once per
/// flow name by Network::flow(); the hot path then records through dense
/// slot indices instead of building "net.tx.<flow>" strings per packet.
struct FlowMetrics {
    sim::MetricId tx;
    sim::MetricId tx_bytes;
    sim::MetricId rx;
    sim::MetricId queue_drop;
    sim::MetricId link_down_drop;
    sim::MetricId latency_ms;
};

/// Cheap value handle to an interned flow (canonical name + metric ids).
/// Obtained from Network::flow(); points at a map node owned by the Network,
/// so it stays valid for the Network's lifetime and must not cross networks
/// (each shard's Network interns its own flows against its own recorder).
class FlowRef {
public:
    FlowRef() = default;
    [[nodiscard]] bool valid() const { return entry_ != nullptr; }
    [[nodiscard]] const std::string& name() const { return entry_->first; }
    [[nodiscard]] const FlowMetrics& metric_ids() const { return entry_->second; }

private:
    friend class Network;
    using Entry = std::pair<const std::string, FlowMetrics>;
    explicit FlowRef(const Entry* entry) : entry_(entry) {}
    const Entry* entry_{nullptr};
};

/// Per-node typed registry: nodes that host a server object (edge, cloud,
/// relay, client) bind it here so other layers can resolve it back from a
/// NodeId with a compile-time-checked accessor instead of a side map keyed
/// by name. One slot per type per node; `get` returns nullptr when unbound,
/// and the type token guarantees a slot can never be read as the wrong type.
class NodeContext {
public:
    template <class T>
    void bind(T* object) {
        slots_[detail::payload_type_id<T>()] = object;
    }

    template <class T>
    void unbind() {
        slots_.erase(detail::payload_type_id<T>());
    }

    template <class T>
    [[nodiscard]] T* get() const {
        const auto it = slots_.find(detail::payload_type_id<T>());
        return it == slots_.end() ? nullptr : static_cast<T*>(it->second);
    }

    template <class T>
    [[nodiscard]] bool has() const {
        return slots_.contains(detail::payload_type_id<T>());
    }

private:
    std::map<detail::PayloadTypeId, void*> slots_;
};

class Network {
public:
    explicit Network(sim::Simulator& sim);

    Network(const Network&) = delete;
    Network& operator=(const Network&) = delete;

    /// Register a node; handlers may be set later (packets to a node with no
    /// handler are counted and discarded).
    NodeId add_node(std::string name, Region region);
    void set_handler(NodeId node, PacketHandler handler);

    /// Cross-shard egress hook: a *remote proxy* node stands in for a node
    /// hosted by another shard's Network. Sends addressed to it are charged
    /// to the local link as usual, but instead of a local delivery the
    /// packet (with its computed arrival instant) is handed to `egress`,
    /// which ships it across the shard boundary. See core::ShardedWorld.
    using RemoteEgress = std::function<void(Packet&&, sim::Time deliver_at)>;
    NodeId add_remote(std::string name, Region region, RemoteEgress egress);
    [[nodiscard]] bool is_remote(NodeId node) const;

    /// Deliver a packet that crossed the shard boundary: runs the normal
    /// receive path (rx/latency metrics, destination handler). `p.dst` must
    /// be a node of *this* network.
    void inject(Packet&& p);

    [[nodiscard]] Region region_of(NodeId node) const;
    [[nodiscard]] const std::string& name_of(NodeId node) const;
    [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

    /// Typed per-node context registry (see NodeContext).
    [[nodiscard]] NodeContext& context(NodeId node);
    [[nodiscard]] const NodeContext& context(NodeId node) const;

    /// Create a bidirectional connection with identical parameters each way.
    void connect(NodeId a, NodeId b, const LinkParams& params);
    /// Connect using WAN-path parameters derived from the nodes' regions.
    void connect_wan(NodeId a, NodeId b, const WanTopology& wan);
    [[nodiscard]] bool connected(NodeId a, NodeId b) const;
    /// Directed link a->b; nullptr when not connected.
    [[nodiscard]] Link* link(NodeId a, NodeId b);
    [[nodiscard]] const Link* link(NodeId a, NodeId b) const;

    /// Fault injection: take both directions of a link down/up. Throws if the
    /// nodes are not connected.
    void set_link_up(NodeId a, NodeId b, bool up);
    [[nodiscard]] bool link_up(NodeId a, NodeId b) const;
    /// Fault injection: crash/restart a node. A down node drops all sends
    /// from and to it, including in-flight deliveries.
    void set_node_up(NodeId node, bool up);
    [[nodiscard]] bool node_up(NodeId node) const;

    /// Observe administrative up/down transitions of `node`. Observers fire
    /// synchronously from set_node_up, only on actual state changes, in
    /// registration order (deterministic). The recovery layer uses this to
    /// wipe volatile state on crash and restore from checkpoint on restart.
    using NodeObserver = std::function<void(NodeId, bool up)>;
    void observe_node(NodeId node, NodeObserver observer);

    /// Intern `name` as a flow (idempotent) and return its handle. Long-lived
    /// senders resolve their flow once and send through the handle; the
    /// per-name overload below exists for one-off/cold senders.
    [[nodiscard]] FlowRef flow(std::string_view name);

    /// Send `size_bytes` of `flow` traffic from src to dst. Returns false if
    /// there is no link, an endpoint or the link is down, or the link queue
    /// dropped the packet. The FlowRef overload is the hot path: no string
    /// building, no metric-map walks. `priority` is the accounting class
    /// stamped by the channel layer; raw sends default to Realtime.
    bool send(NodeId src, NodeId dst, std::size_t size_bytes, FlowRef flow,
              Payload payload, Priority priority = Priority::Realtime);
    bool send(NodeId src, NodeId dst, std::size_t size_bytes, std::string_view flow,
              Payload payload, Priority priority = Priority::Realtime);

    /// Install (or clear, with nullptr) the egress recording tap. At most
    /// one per network; the tap must outlive the network or be cleared
    /// before it dies.
    void set_tap(PacketTap* tap) { tap_ = tap; }
    [[nodiscard]] PacketTap* tap() const { return tap_; }

    [[nodiscard]] sim::MetricsRecorder& metrics() { return metrics_; }
    [[nodiscard]] const sim::MetricsRecorder& metrics() const { return metrics_; }
    [[nodiscard]] sim::Simulator& simulator() { return sim_; }

    /// Total wire bytes accepted across all links.
    [[nodiscard]] std::uint64_t total_bytes_sent() const;

private:
    struct NodeRec {
        std::string name;
        Region region{Region::HongKong};
        PacketHandler handler;
        bool up{true};
        NodeContext context;
        std::vector<NodeObserver> observers;
        RemoteEgress egress;  // set only on remote proxy nodes
    };

    sim::Simulator& sim_;
    std::vector<NodeRec> nodes_;
    std::map<std::pair<NodeId, NodeId>, std::unique_ptr<Link>> links_;
    sim::MetricsRecorder metrics_;
    std::uint64_t next_packet_id_{1};
    PacketTap* tap_{nullptr};
    // Interned flows (map nodes back the FlowRef handles, so node stability
    // matters). deliver() re-resolves by packet flow name rather than
    // trusting sender-side handles: packets injected across shard
    // boundaries were sent through a *different* Network's flow table.
    std::map<std::string, FlowMetrics, std::less<>> flows_;
    // Fixed counters off the per-flow path, resolved at construction.
    sim::MetricId node_down_drop_;
    sim::MetricId no_route_;
    sim::MetricId dropped_no_handler_;

    FlowMetrics& flow_metrics(std::string_view name);
    void deliver(Packet&& p);
    NodeRec& node_at(NodeId id);
    const NodeRec& node_at(NodeId id) const;
};

}  // namespace mvc::net
