#pragma once
// Shared-medium WiFi model for the in-classroom hop between headsets and the
// edge server. Captures the three effects that matter for sync latency:
// (1) one transmitter at a time (shared serializer), (2) CSMA/CA contention
// backoff that grows with the number of active stations, (3) per-try frame
// corruption with bounded retries, after which the frame is lost.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/link.hpp"
#include "net/packet.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace mvc::net {

struct WifiParams {
    /// PHY rate shared by all stations (802.11ac-class default).
    double rate_bps{200e6};
    /// Fixed per-frame overhead (preamble, SIFS/DIFS, ACK).
    sim::Time frame_overhead{sim::Time::us(60)};
    /// Mean contention backoff per contending station (one 802.11 slot).
    sim::Time backoff_per_station{sim::Time::us(9)};
    /// Contention saturates once this many stations fight for the medium
    /// (the contention window stops growing).
    std::size_t max_contenders{16};
    /// Probability a single transmission attempt is corrupted.
    double per_try_loss{0.02};
    /// Retransmission limit before the frame is dropped.
    int max_retries{4};
    /// Per-station queue capacity in bytes.
    std::size_t queue_bytes{128 * 1024};
};

using StationId = std::uint32_t;

class WifiChannel {
public:
    WifiChannel(sim::Simulator& sim, std::string name, WifiParams params);

    /// Add a station to the BSS; more stations = more contention.
    StationId add_station();
    [[nodiscard]] std::size_t station_count() const { return stations_.size(); }

    /// Transmit a packet from `station`. Returns false if the station's queue
    /// overflowed. Delivery callback runs at the access point / receiver.
    bool send(StationId station, Packet packet, DeliverFn deliver);

    [[nodiscard]] const WifiParams& params() const { return params_; }
    [[nodiscard]] std::uint64_t delivered() const { return delivered_; }
    [[nodiscard]] std::uint64_t lost() const { return lost_; }
    [[nodiscard]] std::uint64_t dropped_queue() const { return dropped_queue_; }
    [[nodiscard]] std::uint64_t retries() const { return retries_; }
    /// Fraction of airtime used over the lifetime of the channel.
    [[nodiscard]] double utilization() const;

private:
    struct Station {
        std::size_t backlog_bytes{0};
    };

    sim::Simulator& sim_;
    std::string name_;
    WifiParams params_;
    sim::Rng rng_;
    std::vector<Station> stations_;
    sim::Time busy_until_{};
    sim::Time airtime_used_{};
    std::uint64_t delivered_{0};
    std::uint64_t lost_{0};
    std::uint64_t dropped_queue_{0};
    std::uint64_t retries_{0};

    /// Number of stations considered "contending" right now: stations with
    /// backlog plus the sender itself.
    [[nodiscard]] std::size_t contenders() const;
};

}  // namespace mvc::net
