#pragma once
// Real-transport implementation of net::Backend: one UDP socket per local
// node, a poll(2) event loop, and a sim::WallClock for timers. The same
// model code that runs inside the discrete-event Network runs here over an
// actual wire — loopback in the benches and tests, any address a deployment
// cares to bind.
//
// Topology model: a process declares its *local* nodes with add_node()
// (each binds a socket) and its peers' nodes with add_peer() (address book
// entry only). NodeIds are positional — both processes must declare the
// same nodes in the same order so ids agree on the wire; the two-process
// demo and the bench both build their node tables from one shared list.
//
// What the simulation has and this backend does not: modeled links (the
// kernel's loopback/NIC queues are the link now), fault injection
// (node_up() is constantly true; observers are accepted and never fired),
// and global virtual time. Time here is the WallClock — monotonic ns since
// backend construction — so latency samples are only meaningful between
// nodes of one process (one epoch). Cross-process latency needs the clock
// sync layer, which is exactly the model code this seam exists to exercise.
//
// Determinism note: receive order is whatever the kernel delivers; the
// PacketTap fires per decoded datagram at ingress, immediately before
// handler dispatch, because that arrival order *is* the ground truth a
// deterministic re-run must reproduce (see src/replay/rerun.hpp).
//
// Single-threaded: send from the loop thread only, and drive the backend by
// calling poll_once()/run_for() from that thread.

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "net/backend.hpp"
#include "net/wire_format.hpp"
#include "sim/wall_clock.hpp"

namespace mvc::net {

class RealUdpBackend final : public Backend {
public:
    struct Options {
        std::uint64_t seed{0x5eed};
        /// Address local node sockets bind to (and that peers implicitly
        /// share unless add_peer says otherwise).
        std::string bind_address{"127.0.0.1"};
        /// 0 = ephemeral ports (single-process tests; read back with
        /// port_of). Non-zero = node i binds base_port + i - 1, the fixed
        /// layout the two-process demo uses so both sides can predict each
        /// other's ports.
        std::uint16_t base_port{0};
    };

    RealUdpBackend();
    explicit RealUdpBackend(Options options);
    ~RealUdpBackend() override;

    RealUdpBackend(const RealUdpBackend&) = delete;
    RealUdpBackend& operator=(const RealUdpBackend&) = delete;

    /// Declare a node hosted by *this* process: binds its UDP socket.
    NodeId add_node(std::string name, Region region) override;
    /// Declare a node hosted by another process: records its address so
    /// sends can route to it. Takes the next NodeId, same as add_node.
    NodeId add_peer(std::string name, Region region, const std::string& address,
                    std::uint16_t port);

    void set_handler(NodeId node, PacketHandler handler) override;

    [[nodiscard]] Region region_of(NodeId node) const override;
    [[nodiscard]] const std::string& name_of(NodeId node) const override;
    [[nodiscard]] std::size_t node_count() const override { return nodes_.size(); }

    [[nodiscard]] NodeContext& context(NodeId node) override;
    [[nodiscard]] const NodeContext& context(NodeId node) const override;

    [[nodiscard]] bool node_up(NodeId) const override { return true; }
    void observe_node(NodeId node, NodeObserver observer) override;

    [[nodiscard]] FlowRef flow(std::string_view name) override {
        return flows_.flow(name);
    }

    using Backend::send;

    [[nodiscard]] sim::Clock& clock() override { return wall_; }
    [[nodiscard]] sim::WallClock& wall_clock() { return wall_; }

    [[nodiscard]] sim::MetricsRecorder& metrics() override { return metrics_; }
    [[nodiscard]] const sim::MetricsRecorder& metrics() const override {
        return metrics_;
    }

    void set_tap(PacketTap* tap) override { tap_ = tap; }
    [[nodiscard]] PacketTap* tap() const override { return tap_; }

    /// Bound port of a local node (after add_node resolved an ephemeral
    /// bind). Throws for peers — their port is whatever add_peer said.
    [[nodiscard]] std::uint16_t port_of(NodeId node) const;
    [[nodiscard]] bool is_local(NodeId node) const;

    /// One event-loop turn: wait up to `timeout` for datagrams or the next
    /// timer deadline (whichever is sooner), drain every ready socket, then
    /// fire due timers. Returns the number of datagrams dispatched.
    std::size_t poll_once(sim::Time timeout);
    /// Drive the loop for a wall-clock duration.
    void run_for(sim::Time duration);

    /// Test hook: drop decoded ingress datagrams for which `fn` returns
    /// true, before the tap and the handler see them — loss injected at the
    /// wire, as the loss model in the simulated Link would. nullptr clears.
    using IngressDrop = std::function<bool(const Packet&)>;
    void set_ingress_drop(IngressDrop fn) { ingress_drop_ = std::move(fn); }

    [[nodiscard]] std::uint64_t datagrams_sent() const { return datagrams_sent_; }
    [[nodiscard]] std::uint64_t datagrams_received() const {
        return datagrams_received_;
    }
    [[nodiscard]] std::uint64_t decode_errors() const { return decode_errors_; }
    /// Ingress datagrams rejected for `defect` (also exported as the labeled
    /// counter "net.ingress_rejected{reason=<defect>}"), so corrupt, foreign
    /// and truncated wire traffic is observable without the test hook.
    [[nodiscard]] std::uint64_t ingress_rejected(FrameDefect defect) const {
        return ingress_rejects_[static_cast<std::size_t>(defect)];
    }

protected:
    bool do_send(NodeId src, NodeId dst, std::size_t size_bytes, FlowRef flow,
                 Payload payload, Priority priority) override;

private:
    struct NodeRec {
        std::string name;
        Region region{Region::HongKong};
        PacketHandler handler;
        NodeContext context;
        int fd{-1};  ///< bound socket for local nodes; -1 for peers
        std::uint32_t addr_be{0};
        std::uint16_t port{0};
    };

    Options options_;
    sim::WallClock wall_;
    std::vector<NodeRec> nodes_;
    sim::MetricsRecorder metrics_;
    FlowTable flows_{metrics_};
    PacketTap* tap_{nullptr};
    IngressDrop ingress_drop_;
    std::uint64_t next_packet_id_{1};
    std::uint64_t datagrams_sent_{0};
    std::uint64_t datagrams_received_{0};
    std::uint64_t decode_errors_{0};
    // Fixed counters off the per-flow path, resolved at construction.
    sim::MetricId no_route_;
    sim::MetricId send_error_;
    sim::MetricId unencodable_;
    sim::MetricId decode_error_;
    sim::MetricId dropped_no_handler_;
    sim::MetricId test_drop_;
    // Per-defect ingress rejects, indexed by FrameDefect.
    std::array<std::uint64_t, kFrameDefectCount> ingress_rejects_{};
    std::array<sim::MetricId, kFrameDefectCount> ingress_reject_ids_{};

    NodeRec& node_at(NodeId id);
    const NodeRec& node_at(NodeId id) const;
    NodeId add_entry(NodeRec rec);
    void drain_socket(NodeRec& rec);
    void dispatch(Packet&& p, Priority priority);
};

}  // namespace mvc::net
