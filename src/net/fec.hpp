#pragma once
// Application-level forward error correction (the paper's pointer to
// Nebula-style joint source coding + FEC for classroom video).
//
// Two layers:
//  - ReedSolomon: a real systematic Reed-Solomon erasure codec over GF(256)
//    (Vandermonde construction): any k of k+r shards reconstruct the data.
//  - FecStream: packet-level sender/receiver over a net::Backend that
//    groups data packets into blocks of k, appends r parity packets, and
//    reconstructs lost packets at the receiver without retransmission.
//    AdaptiveRedundancy picks r from the measured loss rate.

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "net/channel.hpp"

namespace mvc::net {

/// GF(2^8) arithmetic with the 0x11d primitive polynomial.
namespace gf256 {
[[nodiscard]] std::uint8_t mul(std::uint8_t a, std::uint8_t b);
[[nodiscard]] std::uint8_t div(std::uint8_t a, std::uint8_t b);
[[nodiscard]] std::uint8_t inv(std::uint8_t a);
[[nodiscard]] std::uint8_t exp(int e);
}  // namespace gf256

/// Systematic Reed-Solomon erasure code: k data shards, r parity shards,
/// all the same length. Any k surviving shards reconstruct everything.
class ReedSolomon {
public:
    ReedSolomon(std::size_t k, std::size_t r);

    [[nodiscard]] std::size_t data_shards() const { return k_; }
    [[nodiscard]] std::size_t parity_shards() const { return r_; }

    /// Compute parity shards from `data` (size k, equal-length shards).
    [[nodiscard]] std::vector<std::vector<std::uint8_t>> encode(
        std::span<const std::vector<std::uint8_t>> data) const;

    /// `shards` has k+r slots; nullopt marks erasures. Reconstructs all
    /// missing data shards (parity slots are also refilled). Returns false if
    /// fewer than k shards survive.
    bool reconstruct(std::vector<std::optional<std::vector<std::uint8_t>>>& shards) const;

private:
    std::size_t k_;
    std::size_t r_;
    // Full (k+r) x k encoding matrix; the top k rows are the identity.
    std::vector<std::vector<std::uint8_t>> matrix_;
};

/// Chooses parity count r for block size k given an EWMA loss estimate,
/// following the "cover expected losses plus safety margin" rule used by
/// low-latency video systems.
class AdaptiveRedundancy {
public:
    explicit AdaptiveRedundancy(double safety_factor = 2.0, std::size_t max_parity = 16);

    void observe(bool packet_lost);
    [[nodiscard]] double loss_estimate() const { return loss_ewma_; }
    [[nodiscard]] std::size_t parity_for_block(std::size_t k) const;

private:
    double safety_factor_;
    std::size_t max_parity_;
    double loss_ewma_{0.0};
    bool seeded_{false};
};

struct FecStreamOptions {
    std::size_t block_size{8};       // k: data packets per block
    std::size_t parity{2};           // r: parity packets per block (fixed mode)
    bool adaptive{false};            // derive r from measured loss instead
    /// Max time to wait for a block to complete at the receiver before
    /// declaring unrecoverable (delivers what arrived).
    sim::Time block_timeout{sim::Time::ms(150)};
};

/// FEC-protected unidirectional packet stream src -> dst. Data packets are
/// delivered immediately on arrival; lost ones are delivered on recovery
/// (when any k of the block's k+r packets have arrived).
class FecStream {
public:
    /// payload, original send time, and whether it arrived directly (false =
    /// reconstructed from parity).
    using DeliveredFn = std::function<void(Payload payload, sim::Time sent_at, bool direct)>;
    /// Called when a packet could not be recovered before block timeout.
    using LostFn = std::function<void(Payload payload, sim::Time sent_at)>;

    FecStream(Backend& net, PacketDemux& src_demux, PacketDemux& dst_demux,
              std::string flow, FecStreamOptions options = {});

    void on_delivered(DeliveredFn fn) { delivered_cb_ = std::move(fn); }
    void on_lost(LostFn fn) { lost_cb_ = std::move(fn); }

    void send(std::size_t size_bytes, Payload payload);
    /// Force-close the current partial block (pad with parity and ship).
    void flush();

    [[nodiscard]] std::uint64_t recovered() const { return recovered_; }
    [[nodiscard]] std::uint64_t unrecoverable() const { return unrecoverable_; }
    [[nodiscard]] std::uint64_t parity_packets_sent() const { return parity_sent_; }
    [[nodiscard]] double redundancy_overhead() const;

private:
    struct Slot {  // sender-side pending data packet in the open block
        std::size_t size_bytes;
        Payload payload;
        sim::Time sent_at;
    };
    struct Wire {
        std::uint64_t block;
        std::uint32_t index;       // 0..k-1 data, k..k+r-1 parity
        std::uint32_t k;
        std::uint32_t r;
        Payload app_payload;       // empty for parity
        sim::Time first_sent;
    };
    struct RxBlock {
        std::uint32_t k{0};
        std::uint32_t r{0};
        // Data payloads by index; parity arrivals counted only.
        std::map<std::uint32_t, Wire> data;
        std::size_t parity_arrived{0};
        bool completed{false};
        sim::EventHandle timeout;
        std::vector<Wire> sender_copy;  // for reconstruction accounting
    };

    Backend& net_;
    NodeId src_;
    NodeId dst_;
    std::string flow_;
    Channel tx_;
    FecStreamOptions options_;
    AdaptiveRedundancy adaptive_;
    DeliveredFn delivered_cb_;
    LostFn lost_cb_;

    std::uint64_t next_block_{1};
    std::vector<Slot> open_block_;
    // Sender keeps block payload copies so the receiver model can account
    // reconstruction (the simulation does not ship real parity bytes).
    std::map<std::uint64_t, std::vector<Slot>> sender_blocks_;

    std::map<std::uint64_t, RxBlock> rx_;
    std::uint64_t recovered_{0};
    std::uint64_t unrecoverable_{0};
    std::uint64_t parity_sent_{0};
    std::uint64_t data_sent_{0};

    void seal_block();
    void handle_arrival(Packet&& p);
    void try_complete(std::uint64_t block_id);
    void expire_block(std::uint64_t block_id);
};

}  // namespace mvc::net
