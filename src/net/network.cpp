#include "net/network.hpp"

#include <stdexcept>
#include <utility>

namespace mvc::net {

Network::Network(sim::Simulator& sim)
    : sim_(sim),
      node_down_drop_(metrics_.counter_id("net.node_down_drop")),
      no_route_(metrics_.counter_id("net.no_route")),
      dropped_no_handler_(metrics_.counter_id("net.dropped_no_handler")) {}

NodeId Network::add_node(std::string name, Region region) {
    nodes_.push_back(NodeRec{std::move(name), region, nullptr});
    // Ids are 1-based so that kInvalidNode (0) never aliases a real node.
    return static_cast<NodeId>(nodes_.size());
}

Network::NodeRec& Network::node_at(NodeId id) {
    if (id == kInvalidNode || id > nodes_.size())
        throw std::out_of_range("Network: unknown node id");
    return nodes_[id - 1];
}

const Network::NodeRec& Network::node_at(NodeId id) const {
    if (id == kInvalidNode || id > nodes_.size())
        throw std::out_of_range("Network: unknown node id");
    return nodes_[id - 1];
}

void Network::set_handler(NodeId node, PacketHandler handler) {
    node_at(node).handler = std::move(handler);
}

NodeId Network::add_remote(std::string name, Region region, RemoteEgress egress) {
    const NodeId id = add_node(std::move(name), region);
    node_at(id).egress = std::move(egress);
    return id;
}

bool Network::is_remote(NodeId node) const { return node_at(node).egress != nullptr; }

void Network::inject(Packet&& p) { deliver(std::move(p)); }

NodeContext& Network::context(NodeId node) { return node_at(node).context; }
const NodeContext& Network::context(NodeId node) const { return node_at(node).context; }

Region Network::region_of(NodeId node) const { return node_at(node).region; }
const std::string& Network::name_of(NodeId node) const { return node_at(node).name; }

void Network::connect(NodeId a, NodeId b, const LinkParams& params) {
    node_at(a);
    node_at(b);  // validate
    const std::string fwd = name_of(a) + "->" + name_of(b);
    const std::string rev = name_of(b) + "->" + name_of(a);
    links_[{a, b}] = std::make_unique<Link>(sim_, fwd, params);
    links_[{b, a}] = std::make_unique<Link>(sim_, rev, params);
}

void Network::connect_wan(NodeId a, NodeId b, const WanTopology& wan) {
    connect(a, b, wan.path_params(region_of(a), region_of(b)));
}

bool Network::connected(NodeId a, NodeId b) const { return links_.contains({a, b}); }

Link* Network::link(NodeId a, NodeId b) {
    const auto it = links_.find({a, b});
    return it == links_.end() ? nullptr : it->second.get();
}

const Link* Network::link(NodeId a, NodeId b) const {
    const auto it = links_.find({a, b});
    return it == links_.end() ? nullptr : it->second.get();
}

void Network::set_link_up(NodeId a, NodeId b, bool up) {
    Link* fwd = link(a, b);
    Link* rev = link(b, a);
    if (fwd == nullptr || rev == nullptr)
        throw std::invalid_argument("set_link_up: nodes are not connected");
    if (fwd->is_up() != up) metrics_.count(up ? "net.link_restored" : "net.link_failed");
    fwd->set_up(up);
    rev->set_up(up);
}

bool Network::link_up(NodeId a, NodeId b) const {
    const Link* l = link(a, b);
    return l != nullptr && l->is_up();
}

void Network::set_node_up(NodeId node, bool up) {
    NodeRec& rec = node_at(node);
    if (rec.up == up) return;
    metrics_.count(up ? "net.node_restored" : "net.node_crashed");
    rec.up = up;
    for (const auto& obs : rec.observers) obs(node, up);
}

void Network::observe_node(NodeId node, NodeObserver observer) {
    node_at(node).observers.push_back(std::move(observer));
}

bool Network::node_up(NodeId node) const { return node_at(node).up; }

bool Network::do_send(NodeId src, NodeId dst, std::size_t size_bytes, FlowRef flow,
                      Payload payload, Priority priority) {
    const FlowMetrics& fm = flow.metric_ids();
    if (!node_up(src) || !node_up(dst)) {
        metrics_.count(node_down_drop_);
        return false;
    }
    Link* l = link(src, dst);
    if (l == nullptr) {
        metrics_.count(no_route_);
        return false;
    }
    if (!l->is_up()) {
        metrics_.count(fm.link_down_drop);
        return false;
    }
    Packet p;
    p.id = next_packet_id_++;
    p.src = src;
    p.dst = dst;
    p.size_bytes = size_bytes;
    p.sent_at = sim_.now();
    p.flow = flow.name();
    p.payload = std::move(payload);

    metrics_.count(fm.tx);
    metrics_.count(fm.tx_bytes, size_bytes + kHeaderBytes);

    // Both the local and the remote-proxy path model the full wire here via
    // admit(); the RNG draw order (and therefore determinism vs the seed) is
    // identical to the old Link::send-based path. The tap fires once the
    // packet is on the wire — Accepted or Lost — never on Rejected.
    const LinkAdmission a = l->admit(size_bytes + kHeaderBytes);
    if (a.status == LinkAdmission::Status::Rejected) {
        metrics_.count(fm.queue_drop);
        return false;
    }
    if (tap_ != nullptr) tap_->on_send(p, priority);
    if (a.status == LinkAdmission::Status::Lost) return true;

    NodeRec& dst_rec = node_at(dst);
    if (dst_rec.egress) {
        // Remote proxy: the wire was modeled in this shard; hand the packet
        // (timestamped with its arrival) across the shard boundary.
        dst_rec.egress(std::move(p), a.arrival);
        return true;
    }
    l->deliver_at(a.arrival, std::move(p),
                  [this](Packet&& pkt) { deliver(std::move(pkt)); });
    return true;
}

void Network::deliver(Packet&& p) {
    NodeRec& dst = node_at(p.dst);
    // The destination may have crashed while the packet was in flight.
    if (!dst.up) {
        metrics_.count(node_down_drop_);
        return;
    }
    // Resolve by name, not by a sender-side handle: an injected cross-shard
    // packet was sent through another Network and must intern its flow here.
    const FlowMetrics& fm = flows_.metrics_of(p.flow);
    metrics_.sample(fm.latency_ms, (sim_.now() - p.sent_at).to_ms());
    metrics_.count(fm.rx);
    if (dst.handler) {
        dst.handler(std::move(p));
    } else {
        metrics_.count(dropped_no_handler_);
    }
}

std::uint64_t Network::total_bytes_sent() const {
    std::uint64_t total = 0;
    for (const auto& [key, l] : links_) total += l->bytes_sent();
    return total;
}

}  // namespace mvc::net
