#include "net/fec.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace mvc::net {

// --------------------------------------------------------------------- gf256

namespace gf256 {
namespace {
struct Tables {
    std::array<std::uint8_t, 512> exp{};
    std::array<int, 256> log{};
    Tables() {
        int x = 1;
        for (int i = 0; i < 255; ++i) {
            exp[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(x);
            log[static_cast<std::size_t>(x)] = i;
            x <<= 1;
            if (x & 0x100) x ^= 0x11d;  // primitive polynomial x^8+x^4+x^3+x^2+1
        }
        for (int i = 255; i < 512; ++i) exp[static_cast<std::size_t>(i)] = exp[static_cast<std::size_t>(i - 255)];
        log[0] = 0;  // never used; mul/div guard zero explicitly
    }
};
const Tables& tables() {
    static const Tables t;
    return t;
}
}  // namespace

std::uint8_t mul(std::uint8_t a, std::uint8_t b) {
    if (a == 0 || b == 0) return 0;
    const auto& t = tables();
    return t.exp[static_cast<std::size_t>(t.log[a] + t.log[b])];
}

std::uint8_t div(std::uint8_t a, std::uint8_t b) {
    if (b == 0) throw std::domain_error("gf256: division by zero");
    if (a == 0) return 0;
    const auto& t = tables();
    return t.exp[static_cast<std::size_t>(t.log[a] - t.log[b] + 255)];
}

std::uint8_t inv(std::uint8_t a) { return div(1, a); }

std::uint8_t exp(int e) {
    const auto& t = tables();
    e %= 255;
    if (e < 0) e += 255;
    return t.exp[static_cast<std::size_t>(e)];
}

}  // namespace gf256

// --------------------------------------------------------------- ReedSolomon

namespace {

using Matrix = std::vector<std::vector<std::uint8_t>>;

/// Invert a square matrix over GF(256) by Gauss-Jordan elimination.
Matrix invert(Matrix m) {
    const std::size_t n = m.size();
    Matrix inv(n, std::vector<std::uint8_t>(n, 0));
    for (std::size_t i = 0; i < n; ++i) inv[i][i] = 1;

    for (std::size_t col = 0; col < n; ++col) {
        // Find a pivot row.
        std::size_t pivot = col;
        while (pivot < n && m[pivot][col] == 0) ++pivot;
        if (pivot == n) throw std::runtime_error("gf256 matrix not invertible");
        std::swap(m[pivot], m[col]);
        std::swap(inv[pivot], inv[col]);

        const std::uint8_t piv_inv = gf256::inv(m[col][col]);
        for (std::size_t j = 0; j < n; ++j) {
            m[col][j] = gf256::mul(m[col][j], piv_inv);
            inv[col][j] = gf256::mul(inv[col][j], piv_inv);
        }
        for (std::size_t row = 0; row < n; ++row) {
            if (row == col || m[row][col] == 0) continue;
            const std::uint8_t factor = m[row][col];
            for (std::size_t j = 0; j < n; ++j) {
                m[row][j] = static_cast<std::uint8_t>(m[row][j] ^ gf256::mul(factor, m[col][j]));
                inv[row][j] =
                    static_cast<std::uint8_t>(inv[row][j] ^ gf256::mul(factor, inv[col][j]));
            }
        }
    }
    return inv;
}

Matrix multiply(const Matrix& a, const Matrix& b) {
    const std::size_t rows = a.size();
    const std::size_t inner = b.size();
    const std::size_t cols = b[0].size();
    Matrix out(rows, std::vector<std::uint8_t>(cols, 0));
    for (std::size_t i = 0; i < rows; ++i) {
        for (std::size_t k = 0; k < inner; ++k) {
            const std::uint8_t aik = a[i][k];
            if (aik == 0) continue;
            for (std::size_t j = 0; j < cols; ++j) {
                out[i][j] = static_cast<std::uint8_t>(out[i][j] ^ gf256::mul(aik, b[k][j]));
            }
        }
    }
    return out;
}

}  // namespace

ReedSolomon::ReedSolomon(std::size_t k, std::size_t r) : k_(k), r_(r) {
    if (k == 0) throw std::invalid_argument("ReedSolomon: k must be positive");
    if (k + r > 255) throw std::invalid_argument("ReedSolomon: k + r must be <= 255");

    // Vandermonde (k+r) x k: row i evaluates the data polynomial at alpha^i.
    Matrix vander(k_ + r_, std::vector<std::uint8_t>(k_, 0));
    for (std::size_t i = 0; i < k_ + r_; ++i) {
        for (std::size_t j = 0; j < k_; ++j) {
            vander[i][j] = gf256::exp(static_cast<int>(i * j));
        }
    }
    // Make it systematic: M = V * (top k rows of V)^-1, so the first k rows
    // become the identity and parity rows are combinations of the data.
    Matrix top(vander.begin(), vander.begin() + static_cast<std::ptrdiff_t>(k_));
    matrix_ = multiply(vander, invert(std::move(top)));
}

std::vector<std::vector<std::uint8_t>> ReedSolomon::encode(
    std::span<const std::vector<std::uint8_t>> data) const {
    if (data.size() != k_) throw std::invalid_argument("ReedSolomon::encode: need k shards");
    const std::size_t len = data[0].size();
    for (const auto& shard : data) {
        if (shard.size() != len)
            throw std::invalid_argument("ReedSolomon::encode: unequal shard sizes");
    }
    std::vector<std::vector<std::uint8_t>> parity(r_, std::vector<std::uint8_t>(len, 0));
    for (std::size_t p = 0; p < r_; ++p) {
        const auto& row = matrix_[k_ + p];
        for (std::size_t j = 0; j < k_; ++j) {
            const std::uint8_t coeff = row[j];
            if (coeff == 0) continue;
            const auto& src = data[j];
            auto& dst = parity[p];
            for (std::size_t b = 0; b < len; ++b) {
                dst[b] = static_cast<std::uint8_t>(dst[b] ^ gf256::mul(coeff, src[b]));
            }
        }
    }
    return parity;
}

bool ReedSolomon::reconstruct(
    std::vector<std::optional<std::vector<std::uint8_t>>>& shards) const {
    if (shards.size() != k_ + r_)
        throw std::invalid_argument("ReedSolomon::reconstruct: need k + r slots");

    std::vector<std::size_t> present;
    for (std::size_t i = 0; i < shards.size(); ++i) {
        if (shards[i].has_value()) present.push_back(i);
    }
    if (present.size() < k_) return false;

    bool any_data_missing = false;
    for (std::size_t i = 0; i < k_; ++i) {
        if (!shards[i].has_value()) any_data_missing = true;
    }

    if (any_data_missing) {
        // Build the decode matrix from the first k surviving rows.
        Matrix sub(k_, std::vector<std::uint8_t>(k_, 0));
        std::vector<std::size_t> rows(present.begin(), present.begin() + static_cast<std::ptrdiff_t>(k_));
        for (std::size_t i = 0; i < k_; ++i) sub[i] = matrix_[rows[i]];
        const Matrix dec = invert(std::move(sub));

        const std::size_t len = shards[rows[0]]->size();
        for (std::size_t d = 0; d < k_; ++d) {
            if (shards[d].has_value()) continue;
            std::vector<std::uint8_t> out(len, 0);
            for (std::size_t j = 0; j < k_; ++j) {
                const std::uint8_t coeff = dec[d][j];
                if (coeff == 0) continue;
                const auto& src = *shards[rows[j]];
                for (std::size_t b = 0; b < len; ++b) {
                    out[b] = static_cast<std::uint8_t>(out[b] ^ gf256::mul(coeff, src[b]));
                }
            }
            shards[d] = std::move(out);
        }
    }

    // Refill missing parity from the (now complete) data shards.
    std::vector<std::vector<std::uint8_t>> data;
    data.reserve(k_);
    for (std::size_t i = 0; i < k_; ++i) data.push_back(*shards[i]);
    auto parity = encode(data);
    for (std::size_t p = 0; p < r_; ++p) {
        if (!shards[k_ + p].has_value()) shards[k_ + p] = std::move(parity[p]);
    }
    return true;
}

// -------------------------------------------------------- AdaptiveRedundancy

AdaptiveRedundancy::AdaptiveRedundancy(double safety_factor, std::size_t max_parity)
    : safety_factor_(safety_factor), max_parity_(max_parity) {}

void AdaptiveRedundancy::observe(bool packet_lost) {
    constexpr double kAlpha = 0.05;
    const double x = packet_lost ? 1.0 : 0.0;
    if (!seeded_) {
        loss_ewma_ = x;
        seeded_ = true;
    } else {
        loss_ewma_ += kAlpha * (x - loss_ewma_);
    }
}

std::size_t AdaptiveRedundancy::parity_for_block(std::size_t k) const {
    const double expected_losses = loss_ewma_ * static_cast<double>(k);
    const auto r = static_cast<std::size_t>(
        std::ceil(expected_losses * safety_factor_ + 0.5));
    return std::clamp<std::size_t>(r, 1, max_parity_);
}

// ------------------------------------------------------------------ FecStream

FecStream::FecStream(Backend& net, PacketDemux& src_demux, PacketDemux& dst_demux,
                     std::string flow, FecStreamOptions options)
    : net_(net),
      src_(src_demux.node()),
      dst_(dst_demux.node()),
      flow_(std::move(flow)),
      tx_(net.open_channel({.src = src_,
                            .dst = dst_,
                            .flow = flow_,
                            .options = {.priority = Priority::Realtime}})),
      options_(options) {
    if (options_.block_size == 0)
        throw std::invalid_argument("FecStream: block_size must be positive");
    dst_demux.on_flow(flow_, [this](Packet&& p) { handle_arrival(std::move(p)); });
    (void)src_demux;
}

double FecStream::redundancy_overhead() const {
    if (data_sent_ == 0) return 0.0;
    return static_cast<double>(parity_sent_) / static_cast<double>(data_sent_);
}

void FecStream::send(std::size_t size_bytes, Payload payload) {
    open_block_.push_back(Slot{size_bytes, std::move(payload), net_.clock().now()});
    if (open_block_.size() >= options_.block_size) seal_block();
}

void FecStream::flush() {
    if (!open_block_.empty()) seal_block();
}

void FecStream::seal_block() {
    const std::uint64_t block_id = next_block_++;
    const auto k = static_cast<std::uint32_t>(open_block_.size());
    const std::size_t r = options_.adaptive
                              ? adaptive_.parity_for_block(k)
                              : options_.parity;

    std::size_t max_bytes = 0;
    for (const auto& s : open_block_) max_bytes = std::max(max_bytes, s.size_bytes);

    // Ship the data packets.
    for (std::uint32_t i = 0; i < k; ++i) {
        Wire w{block_id, i, k, static_cast<std::uint32_t>(r),
               open_block_[i].payload, open_block_[i].sent_at};
        tx_.send(open_block_[i].size_bytes, std::move(w));
        ++data_sent_;
    }
    // Parity packets are the size of the largest data packet (RS shards).
    for (std::uint32_t p = 0; p < r; ++p) {
        Wire w{block_id, k + p, k, static_cast<std::uint32_t>(r), {}, net_.clock().now()};
        tx_.send(max_bytes, std::move(w));
        ++parity_sent_;
    }
    sender_blocks_.emplace(block_id, std::move(open_block_));
    open_block_.clear();

    // Bound sender memory; keep enough history that bursty senders (many
    // blocks per timeout window) can still deliver recovered payloads.
    while (sender_blocks_.size() > 1024) sender_blocks_.erase(sender_blocks_.begin());
}

void FecStream::handle_arrival(Packet&& p) {
    auto w = p.payload.take<Wire>();
    auto [it, inserted] = rx_.try_emplace(w.block);
    RxBlock& blk = it->second;
    if (inserted) {
        blk.k = w.k;
        blk.r = w.r;
        const std::uint64_t block_id = w.block;
        blk.timeout = net_.clock().schedule_after(
            options_.block_timeout, [this, block_id] { expire_block(block_id); });
    }
    if (blk.completed) return;

    if (w.index < w.k) {
        // Deliver direct data immediately.
        if (!blk.data.contains(w.index)) {
            if (delivered_cb_) delivered_cb_(w.app_payload, w.first_sent, true);
            adaptive_.observe(false);
            blk.data.emplace(w.index, std::move(w));
        }
    } else {
        ++blk.parity_arrived;
    }
    try_complete(it->first);
}

void FecStream::try_complete(std::uint64_t block_id) {
    auto it = rx_.find(block_id);
    if (it == rx_.end()) return;
    RxBlock& blk = it->second;
    if (blk.completed) return;
    if (blk.data.size() + blk.parity_arrived < blk.k) return;

    // Any k of k+r shards suffice (MDS property, verified on ReedSolomon by
    // the unit tests); recover the data packets that did not arrive.
    if (blk.data.size() < blk.k) {
        const auto senders = sender_blocks_.find(block_id);
        for (std::uint32_t i = 0; i < blk.k; ++i) {
            if (blk.data.contains(i)) continue;
            ++recovered_;
            adaptive_.observe(true);
            if (delivered_cb_ && senders != sender_blocks_.end()) {
                const Slot& s = senders->second[i];
                delivered_cb_(s.payload, s.sent_at, false);
            }
        }
    }
    blk.completed = true;
    net_.clock().cancel(blk.timeout);
    // Keep the completed marker briefly via the map; prune old blocks.
    while (rx_.size() > 2048) rx_.erase(rx_.begin());
}

void FecStream::expire_block(std::uint64_t block_id) {
    auto it = rx_.find(block_id);
    if (it == rx_.end() || it->second.completed) return;
    RxBlock& blk = it->second;
    const auto senders = sender_blocks_.find(block_id);
    for (std::uint32_t i = 0; i < blk.k; ++i) {
        if (blk.data.contains(i)) continue;
        ++unrecoverable_;
        adaptive_.observe(true);
        if (lost_cb_ && senders != sender_blocks_.end()) {
            const Slot& s = senders->second[i];
            lost_cb_(s.payload, s.sent_at);
        }
    }
    blk.completed = true;
}

}  // namespace mvc::net
