#pragma once
// Geographic regions and WAN path characteristics between them. One-way
// delays are shaped after public inter-region RTT measurements (WonderNetwork
// / cloud-provider latency matrices, 2022-era): the absolute numbers matter
// less than their ordering, which drives the regional-server experiments.

#include <array>
#include <cstdint>
#include <string_view>

#include "net/link.hpp"

namespace mvc::net {

enum class Region : std::uint8_t {
    HongKong,   // HKUST Clear Water Bay campus
    Guangzhou,  // HKUST Guangzhou campus
    Seoul,      // KAIST guests
    Tokyo,
    Singapore,
    Boston,     // MIT guests
    London,     // Cambridge guests
    Frankfurt,
    SaoPaulo,
    Sydney,
    kCount,
};

inline constexpr std::size_t kRegionCount = static_cast<std::size_t>(Region::kCount);

[[nodiscard]] std::string_view region_name(Region r);

/// All regions, for iteration in benchmarks.
[[nodiscard]] std::array<Region, kRegionCount> all_regions();

class WanTopology {
public:
    WanTopology();

    /// One-way propagation delay between two regions (intra-region pairs get
    /// a small metro delay).
    [[nodiscard]] sim::Time one_way_delay(Region a, Region b) const;

    /// Link parameters for the WAN path a->b: delay from the matrix, jitter
    /// and spike model scaled with distance, configurable loss/bandwidth.
    [[nodiscard]] LinkParams path_params(Region a, Region b) const;

    /// Override the base loss applied to inter-region paths.
    void set_inter_region_loss(double loss) { inter_region_loss_ = loss; }
    void set_path_bandwidth_bps(double bps) { path_bandwidth_bps_ = bps; }

    /// Region whose mean delay to the given set of client regions is lowest —
    /// the "place a regional server here" primitive.
    [[nodiscard]] Region best_region_for(const std::array<std::size_t, kRegionCount>&
                                             clients_per_region) const;

private:
    // Symmetric matrix of one-way delays in ms.
    std::array<std::array<double, kRegionCount>, kRegionCount> delay_ms_{};
    double inter_region_loss_{0.001};
    double path_bandwidth_bps_{1e9};
};

}  // namespace mvc::net
