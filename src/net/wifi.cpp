#include "net/wifi.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace mvc::net {

WifiChannel::WifiChannel(sim::Simulator& sim, std::string name, WifiParams params)
    : sim_(sim),
      name_(std::move(name)),
      params_(params),
      rng_(sim.rng_stream("wifi/" + name_)) {}

StationId WifiChannel::add_station() {
    stations_.push_back(Station{});
    return static_cast<StationId>(stations_.size() - 1);
}

std::size_t WifiChannel::contenders() const {
    std::size_t n = 0;
    for (const auto& s : stations_) {
        if (s.backlog_bytes > 0) ++n;
    }
    return std::clamp<std::size_t>(n, 1, params_.max_contenders);
}

double WifiChannel::utilization() const {
    const double total = sim_.now().to_seconds();
    if (total <= 0.0) return 0.0;
    return airtime_used_.to_seconds() / total;
}

bool WifiChannel::send(StationId station, Packet packet, DeliverFn deliver) {
    if (station >= stations_.size())
        throw std::out_of_range("WifiChannel::send: unknown station");
    Station& st = stations_[station];
    const std::size_t wire_bytes = packet.size_bytes + kHeaderBytes;
    if (st.backlog_bytes + wire_bytes > params_.queue_bytes) {
        ++dropped_queue_;
        return false;
    }
    st.backlog_bytes += wire_bytes;

    // Count attempts up front so airtime accounting matches the retry model:
    // each failed attempt still occupies the medium.
    int attempts = 1;
    bool success = true;
    while (rng_.chance(params_.per_try_loss)) {
        if (attempts > params_.max_retries) {
            success = false;
            break;
        }
        ++attempts;
        ++retries_;
    }

    const double payload_seconds =
        static_cast<double>(wire_bytes) * 8.0 / params_.rate_bps;
    sim::Time per_attempt = sim::Time::seconds(payload_seconds) + params_.frame_overhead;

    // CSMA/CA backoff: exponential with mean scaling in the number of
    // contending stations; doubles per retry attempt (binary exponential).
    sim::Time backoff = sim::Time::zero();
    const double base_ms =
        params_.backoff_per_station.to_ms() * static_cast<double>(contenders());
    for (int a = 0; a < attempts; ++a) {
        backoff += sim::Time::ms(rng_.exponential(base_ms * static_cast<double>(1 << a)));
    }

    const sim::Time occupancy = per_attempt * attempts + backoff;
    const sim::Time start = std::max(sim_.now(), busy_until_);
    const sim::Time done = start + occupancy;
    busy_until_ = done;
    airtime_used_ += occupancy;

    sim_.schedule_at(done, [this, station, wire_bytes, success,
                            packet = std::move(packet),
                            deliver = std::move(deliver)]() mutable {
        stations_[station].backlog_bytes -= std::min(
            stations_[station].backlog_bytes, wire_bytes);
        if (success) {
            ++delivered_;
            deliver(std::move(packet));
        } else {
            ++lost_;
        }
    });
    return true;
}

}  // namespace mvc::net
