#pragma once
// Transport layer above the raw packet fabric:
//  - PacketDemux: per-flow dispatch for a node's single packet handler.
//  - ReliableChannel: ACK + retransmission (Jacobson RTO, bounded attempts)
//    with optional in-order delivery; models the ARQ alternative in the FEC
//    experiments and reports segments abandoned during outages.
//  - TokenBucket: application-level pacing for video senders.

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>

#include "net/backend.hpp"

namespace mvc::net {

/// Splits a node's incoming packets by flow label. Install as the node
/// handler, then register per-flow callbacks.
class PacketDemux {
public:
    PacketDemux(Backend& net, NodeId node);

    void on_flow(std::string flow, PacketHandler handler);
    [[nodiscard]] NodeId node() const { return node_; }

private:
    Backend& net_;
    NodeId node_;
    sim::MetricId unmatched_id_;
    std::map<std::string, PacketHandler, std::less<>> handlers_;
};

struct ReliableOptions {
    /// Lower bound for the retransmission timeout.
    sim::Time rto_min{sim::Time::ms(20)};
    /// Initial RTO before any RTT sample (RFC 6298's conservative 1 s: a
    /// low initial RTO spuriously retransmits every segment on long paths,
    /// and Karn's rule then never lets the estimator converge).
    sim::Time rto_initial{sim::Time::seconds(1.0)};
    /// Deliver strictly in sequence order (head-of-line blocking) or as
    /// packets arrive.
    bool ordered{true};
    /// ACK packet size on the wire.
    std::size_t ack_bytes{16};
    /// Upper bound for the backed-off retransmission timeout.
    sim::Time rto_max{sim::Time::seconds(16.0)};
    /// Total transmission attempts per segment (first send included) before
    /// the channel gives up and reports the segment failed. 0 = unbounded
    /// (retry forever — only sensible on links that cannot stay down).
    int max_transmissions{12};
    /// Consecutive segment give-ups (no ACK in between) before the channel
    /// declares the peer dead and fires the dead-peer callback once. Any ACK
    /// re-arms the detector. 0 = never declare the peer dead.
    int dead_after_failures{3};
};

/// One-directional reliable stream src -> dst. Registers "<flow>" on the
/// destination demux and "<flow>.ack" on the source demux.
class ReliableChannel {
public:
    /// Callback on final delivery at the receiver: payload, original send
    /// time, and number of transmissions it took.
    using DeliveredFn =
        std::function<void(Payload payload, sim::Time sent_at, int transmissions)>;
    /// Callback when a segment exhausts max_transmissions without an ACK.
    using FailedFn =
        std::function<void(Payload payload, sim::Time first_sent, int transmissions)>;
    /// Callback when `dead_after_failures` consecutive segments failed with
    /// no ACK in between: the peer is presumed dead. Fires once per outage
    /// (latched until the next ACK); the session layer reacts by entering
    /// its reconnect path instead of silently retrying forever.
    using DeadPeerFn = std::function<void(NodeId dst, int consecutive_failures)>;

    ReliableChannel(Backend& net, PacketDemux& src_demux, PacketDemux& dst_demux,
                    std::string flow, ReliableOptions options = {});

    /// Register the codec for the ARQ's private data-segment wrapper under
    /// `data_tag` (the ack payload is a plain std::uint64_t sequence number
    /// and is registered by core::register_wire_codecs). The wrapper nests
    /// the application payload, so that payload's own codec must be
    /// registered too before a segment crosses a real wire.
    static void register_wire_codecs(class WireCodecs& codecs, std::uint16_t data_tag);

    void on_delivered(DeliveredFn fn) { delivered_cb_ = std::move(fn); }
    void on_failed(FailedFn fn) { failed_cb_ = std::move(fn); }
    void on_dead_peer(DeadPeerFn fn) { dead_peer_cb_ = std::move(fn); }

    /// Queue application data for reliable delivery.
    void send(std::size_t size_bytes, Payload payload);

    [[nodiscard]] sim::Time current_rto() const;
    [[nodiscard]] double smoothed_rtt_ms() const { return srtt_ms_; }
    [[nodiscard]] std::uint64_t retransmissions() const { return retransmissions_; }
    [[nodiscard]] std::uint64_t delivered_count() const { return delivered_count_; }
    [[nodiscard]] std::uint64_t failed_count() const { return failed_count_; }
    [[nodiscard]] std::size_t in_flight() const { return outstanding_.size(); }
    /// Latched dead-peer verdict (cleared by the next ACK).
    [[nodiscard]] bool peer_dead() const { return peer_dead_; }
    [[nodiscard]] int consecutive_failures() const { return consecutive_failures_; }

private:
    struct Outstanding {
        std::size_t size_bytes;
        Payload payload;
        sim::Time first_sent;
        int transmissions{0};
        sim::EventHandle timer;
    };
    struct Wire {  // payload carried inside the network packet
        std::uint64_t seq;
        Payload app_payload;
        sim::Time first_sent;
        int transmission;
    };

    Backend& net_;
    NodeId src_;
    NodeId dst_;
    std::string flow_;
    // Pre-resolved send handles (data and ack flows) plus the ARQ counters,
    // so retransmission-heavy runs never rebuild labeled keys per segment.
    FlowRef flow_ref_;
    FlowRef ack_ref_;
    sim::MetricId retransmit_id_;
    sim::MetricId failed_id_;
    sim::MetricId peer_dead_id_;
    ReliableOptions options_;
    DeliveredFn delivered_cb_;
    FailedFn failed_cb_;
    DeadPeerFn dead_peer_cb_;
    int consecutive_failures_{0};
    bool peer_dead_{false};

    std::uint64_t next_seq_{1};
    std::map<std::uint64_t, Outstanding> outstanding_;

    // Receiver state (this object models both endpoints of the channel).
    std::uint64_t next_expected_{1};
    std::map<std::uint64_t, Wire> reorder_;

    // Jacobson/Karels RTO estimation.
    double srtt_ms_{0.0};
    double rttvar_ms_{0.0};
    bool have_rtt_{false};

    std::uint64_t retransmissions_{0};
    std::uint64_t delivered_count_{0};
    std::uint64_t failed_count_{0};

    void transmit(std::uint64_t seq);
    void give_up(std::uint64_t seq);
    void arm_timer(std::uint64_t seq);
    void handle_data(Packet&& p);
    void handle_ack(Packet&& p);
    void deliver_ready();
    void observe_rtt(double sample_ms);
};

/// Classic token bucket: `rate_bps` sustained, `burst_bytes` depth.
class TokenBucket {
public:
    TokenBucket(sim::Clock& clock, double rate_bps, std::size_t burst_bytes);

    /// Earliest time the given payload could be sent while conforming.
    [[nodiscard]] sim::Time earliest_send(std::size_t bytes) const;
    /// Consume tokens for a send at now() (callers should schedule at
    /// earliest_send first). Debt is allowed; the bucket goes negative.
    void consume(std::size_t bytes);

    [[nodiscard]] double rate_bps() const { return rate_bps_; }
    void set_rate_bps(double r);

private:
    sim::Clock& sim_;
    double rate_bps_;
    double burst_bytes_;
    mutable double tokens_;
    mutable sim::Time last_refill_{};

    void refill() const;
};

}  // namespace mvc::net
