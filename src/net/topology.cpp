#include "net/topology.hpp"

#include <limits>
#include <stdexcept>

namespace mvc::net {

std::string_view region_name(Region r) {
    switch (r) {
        case Region::HongKong: return "HongKong";
        case Region::Guangzhou: return "Guangzhou";
        case Region::Seoul: return "Seoul";
        case Region::Tokyo: return "Tokyo";
        case Region::Singapore: return "Singapore";
        case Region::Boston: return "Boston";
        case Region::London: return "London";
        case Region::Frankfurt: return "Frankfurt";
        case Region::SaoPaulo: return "SaoPaulo";
        case Region::Sydney: return "Sydney";
        case Region::kCount: break;
    }
    throw std::invalid_argument("region_name: bad region");
}

std::array<Region, kRegionCount> all_regions() {
    std::array<Region, kRegionCount> out{};
    for (std::size_t i = 0; i < kRegionCount; ++i) out[i] = static_cast<Region>(i);
    return out;
}

namespace {
constexpr std::size_t idx(Region r) { return static_cast<std::size_t>(r); }
}  // namespace

WanTopology::WanTopology() {
    // One-way delays in milliseconds (≈ RTT/2 of public measurements).
    // Intra-region: metro/campus backbone.
    for (auto& row : delay_ms_) row.fill(0.0);
    const auto set = [this](Region a, Region b, double ms) {
        delay_ms_[idx(a)][idx(b)] = ms;
        delay_ms_[idx(b)][idx(a)] = ms;
    };
    for (Region r : all_regions()) delay_ms_[idx(r)][idx(r)] = 1.0;

    set(Region::HongKong, Region::Guangzhou, 4.0);    // ~8 ms RTT, dedicated line
    set(Region::HongKong, Region::Seoul, 18.0);
    set(Region::HongKong, Region::Tokyo, 25.0);
    set(Region::HongKong, Region::Singapore, 17.0);
    set(Region::HongKong, Region::Boston, 105.0);
    set(Region::HongKong, Region::London, 95.0);
    set(Region::HongKong, Region::Frankfurt, 92.0);
    set(Region::HongKong, Region::SaoPaulo, 160.0);
    set(Region::HongKong, Region::Sydney, 60.0);

    set(Region::Guangzhou, Region::Seoul, 22.0);
    set(Region::Guangzhou, Region::Tokyo, 28.0);
    set(Region::Guangzhou, Region::Singapore, 20.0);
    set(Region::Guangzhou, Region::Boston, 110.0);
    set(Region::Guangzhou, Region::London, 100.0);
    set(Region::Guangzhou, Region::Frankfurt, 97.0);
    set(Region::Guangzhou, Region::SaoPaulo, 165.0);
    set(Region::Guangzhou, Region::Sydney, 65.0);

    set(Region::Seoul, Region::Tokyo, 12.0);
    set(Region::Seoul, Region::Singapore, 35.0);
    set(Region::Seoul, Region::Boston, 90.0);
    set(Region::Seoul, Region::London, 110.0);
    set(Region::Seoul, Region::Frankfurt, 115.0);
    set(Region::Seoul, Region::SaoPaulo, 170.0);
    set(Region::Seoul, Region::Sydney, 70.0);

    set(Region::Tokyo, Region::Singapore, 34.0);
    set(Region::Tokyo, Region::Boston, 85.0);
    set(Region::Tokyo, Region::London, 105.0);
    set(Region::Tokyo, Region::Frankfurt, 112.0);
    set(Region::Tokyo, Region::SaoPaulo, 155.0);
    set(Region::Tokyo, Region::Sydney, 52.0);

    set(Region::Singapore, Region::Boston, 115.0);
    set(Region::Singapore, Region::London, 85.0);
    set(Region::Singapore, Region::Frankfurt, 80.0);
    set(Region::Singapore, Region::SaoPaulo, 175.0);
    set(Region::Singapore, Region::Sydney, 45.0);

    set(Region::Boston, Region::London, 35.0);
    set(Region::Boston, Region::Frankfurt, 42.0);
    set(Region::Boston, Region::SaoPaulo, 75.0);
    set(Region::Boston, Region::Sydney, 105.0);

    set(Region::London, Region::Frankfurt, 7.0);
    set(Region::London, Region::SaoPaulo, 95.0);
    set(Region::London, Region::Sydney, 130.0);

    set(Region::Frankfurt, Region::SaoPaulo, 100.0);
    set(Region::Frankfurt, Region::Sydney, 135.0);

    set(Region::SaoPaulo, Region::Sydney, 160.0);
}

sim::Time WanTopology::one_way_delay(Region a, Region b) const {
    return sim::Time::ms(delay_ms_[idx(a)][idx(b)]);
}

LinkParams WanTopology::path_params(Region a, Region b) const {
    const double base_ms = delay_ms_[idx(a)][idx(b)];
    LinkParams p;
    p.latency = sim::Time::ms(base_ms);
    // Longer paths cross more queues: jitter and spike odds grow with delay.
    p.jitter = sim::Time::ms(0.5 + base_ms * 0.03);
    p.spike_probability = a == b ? 0.0005 : 0.002 + base_ms * 1e-5;
    p.spike_scale = sim::Time::ms(5.0 + base_ms * 0.2);
    p.loss = a == b ? 0.0001 : inter_region_loss_;
    p.bandwidth_bps = path_bandwidth_bps_;
    p.queue_bytes = 4 * 1024 * 1024;
    return p;
}

Region WanTopology::best_region_for(
    const std::array<std::size_t, kRegionCount>& clients_per_region) const {
    Region best = Region::HongKong;
    double best_cost = std::numeric_limits<double>::max();
    for (Region candidate : all_regions()) {
        double cost = 0.0;
        std::size_t total = 0;
        for (std::size_t c = 0; c < kRegionCount; ++c) {
            cost += delay_ms_[idx(candidate)][c] * static_cast<double>(clients_per_region[c]);
            total += clients_per_region[c];
        }
        if (total == 0) return best;
        if (cost < best_cost) {
            best_cost = cost;
            best = candidate;
        }
    }
    return best;
}

}  // namespace mvc::net
