#pragma once
// The transport-backend seam. Model code (edge/cloud servers, clients,
// channels, ARQ, FEC, heartbeats) talks to the network exclusively through
// net::Backend: node registry, per-flow send, receive dispatch via a node
// handler, a sim::Clock for time and timers, metrics, and named RNG streams.
// Two implementations exist:
//
//  - net::Network (network.hpp): the discrete-event fabric. Virtual time,
//    modeled links (latency/jitter/loss/bandwidth), deterministic.
//  - net::RealUdpBackend (real_udp.hpp): UDP sockets on localhost driven by
//    a poll() event loop and a WallClock. Same model code, real wire.
//
// Channels are created through Backend::open_channel(ChannelSpec) — see
// channel.hpp — so call sites never name a concrete backend type.

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>

#include "net/packet.hpp"
#include "net/payload.hpp"
#include "net/topology.hpp"
#include "sim/clock.hpp"
#include "sim/metrics.hpp"

namespace mvc::net {

class Channel;
struct ChannelSpec;

using PacketHandler = std::function<void(Packet&&)>;

/// Observer for session recording: called once per packet the backend put on
/// the wire. On the simulated Network this fires at egress, per packet
/// *accepted onto a link* (lost-in-flight packets included — they were on
/// the wire; rejected ones are not). On the real UDP backend it fires at
/// ingress, per decoded datagram, immediately before handler dispatch — the
/// receive order *is* the ground truth a deterministic re-run must
/// reproduce. The callee must not send, must not retain the reference past
/// the call, and must not allocate in steady state (the tap sits on the
/// zero-allocation send path — see src/replay). An abstract class rather
/// than std::function so installing a tap costs one virtual call per packet
/// and captures nothing.
class PacketTap {
public:
    virtual ~PacketTap() = default;
    virtual void on_send(const Packet& p, Priority priority) = 0;
};

/// Pre-resolved metric handles for one named flow: every per-packet counter
/// and the latency series the send/deliver path touches. Interned once per
/// flow name by FlowTable; the hot path then records through dense slot
/// indices instead of building "net.tx.<flow>" strings per packet.
struct FlowMetrics {
    sim::MetricId tx;
    sim::MetricId tx_bytes;
    sim::MetricId rx;
    sim::MetricId queue_drop;
    sim::MetricId link_down_drop;
    sim::MetricId latency_ms;
};

/// Cheap value handle to an interned flow (canonical name + metric ids).
/// Obtained from Backend::flow(); points at a map node owned by the
/// backend's FlowTable, so it stays valid for the backend's lifetime and
/// must not cross backends (each shard's Network interns its own flows
/// against its own recorder).
class FlowRef {
public:
    FlowRef() = default;
    [[nodiscard]] bool valid() const { return entry_ != nullptr; }
    [[nodiscard]] const std::string& name() const { return entry_->first; }
    [[nodiscard]] const FlowMetrics& metric_ids() const { return entry_->second; }

private:
    friend class FlowTable;
    using Entry = std::pair<const std::string, FlowMetrics>;
    explicit FlowRef(const Entry* entry) : entry_(entry) {}
    const Entry* entry_{nullptr};
};

/// Flow-name interning table shared by both backends: maps a flow label to
/// its FlowMetrics handles, registering the canonical per-flow metric keys
/// ("net.tx.<flow>", "net.rx.<flow>", ...) against the owning recorder on
/// first sight. Map nodes back the FlowRef handles, so node stability
/// matters (std::map, never erased).
class FlowTable {
public:
    explicit FlowTable(sim::MetricsRecorder& metrics) : metrics_(metrics) {}

    FlowTable(const FlowTable&) = delete;
    FlowTable& operator=(const FlowTable&) = delete;

    /// Intern `name` (idempotent) and return its handle.
    [[nodiscard]] FlowRef flow(std::string_view name) {
        return FlowRef{&*entry(name)};
    }
    /// Metric handles for `name`, interning on first sight. Receive paths
    /// re-resolve by packet flow name rather than trusting sender-side
    /// handles: packets injected across shard (or process) boundaries were
    /// sent through a different backend's table.
    [[nodiscard]] FlowMetrics& metrics_of(std::string_view name) {
        return entry(name)->second;
    }

private:
    using Map = std::map<std::string, FlowMetrics, std::less<>>;
    Map::iterator entry(std::string_view name);

    sim::MetricsRecorder& metrics_;
    Map flows_;
};

/// Per-node typed registry: nodes that host a server object (edge, cloud,
/// relay, client) bind it here so other layers can resolve it back from a
/// NodeId with a compile-time-checked accessor instead of a side map keyed
/// by name. One slot per type per node; `get` returns nullptr when unbound,
/// and the type token guarantees a slot can never be read as the wrong type.
class NodeContext {
public:
    template <class T>
    void bind(T* object) {
        slots_[detail::payload_type_id<T>()] = object;
    }

    template <class T>
    void unbind() {
        slots_.erase(detail::payload_type_id<T>());
    }

    template <class T>
    [[nodiscard]] T* get() const {
        const auto it = slots_.find(detail::payload_type_id<T>());
        return it == slots_.end() ? nullptr : static_cast<T*>(it->second);
    }

    template <class T>
    [[nodiscard]] bool has() const {
        return slots_.contains(detail::payload_type_id<T>());
    }

private:
    std::map<detail::PayloadTypeId, void*> slots_;
};

class Backend {
public:
    virtual ~Backend() = default;

    /// Register a node; handlers may be set later (packets to a node with no
    /// handler are counted and discarded).
    virtual NodeId add_node(std::string name, Region region) = 0;
    virtual void set_handler(NodeId node, PacketHandler handler) = 0;

    [[nodiscard]] virtual Region region_of(NodeId node) const = 0;
    [[nodiscard]] virtual const std::string& name_of(NodeId node) const = 0;
    [[nodiscard]] virtual std::size_t node_count() const = 0;

    /// Typed per-node context registry (see NodeContext).
    [[nodiscard]] virtual NodeContext& context(NodeId node) = 0;
    [[nodiscard]] virtual const NodeContext& context(NodeId node) const = 0;

    /// Administrative liveness of a node. Always true on backends without
    /// fault injection (the real transport: a dead process simply stops
    /// answering).
    [[nodiscard]] virtual bool node_up(NodeId node) const = 0;

    /// Observe administrative up/down transitions of `node`. Observers fire
    /// synchronously from the fault-injection path, only on actual state
    /// changes, in registration order (deterministic). Backends without
    /// fault injection accept observers and never fire them.
    using NodeObserver = std::function<void(NodeId, bool up)>;
    virtual void observe_node(NodeId node, NodeObserver observer) = 0;

    /// Intern `name` as a flow (idempotent) and return its handle. Long-lived
    /// senders resolve their flow once and send through the handle; the
    /// per-name overload of send() exists for one-off/cold senders.
    [[nodiscard]] virtual FlowRef flow(std::string_view name) = 0;

    /// Send `size_bytes` of `flow` traffic from src to dst. Returns false
    /// when the backend could not put the packet on the wire (no route, a
    /// down endpoint or link, queue overflow, unencodable payload). The
    /// FlowRef overload is the hot path: no string building, no metric-map
    /// walks. `priority` is the accounting class stamped by the channel
    /// layer; raw sends default to Realtime.
    bool send(NodeId src, NodeId dst, std::size_t size_bytes, FlowRef flow,
              Payload payload, Priority priority = Priority::Realtime) {
        return do_send(src, dst, size_bytes, flow, std::move(payload), priority);
    }
    bool send(NodeId src, NodeId dst, std::size_t size_bytes, std::string_view flow,
              Payload payload, Priority priority = Priority::Realtime) {
        return do_send(src, dst, size_bytes, this->flow(flow), std::move(payload),
                       priority);
    }

    /// The clock driving this backend: the Simulator itself on the simulated
    /// fabric, a WallClock on the real transport. Model code reads time and
    /// arms timers exclusively through this.
    [[nodiscard]] virtual sim::Clock& clock() = 0;

    [[nodiscard]] virtual sim::MetricsRecorder& metrics() = 0;
    [[nodiscard]] virtual const sim::MetricsRecorder& metrics() const = 0;

    /// Install (or clear, with nullptr) the recording tap. At most one per
    /// backend; the tap must outlive the backend or be cleared before it
    /// dies. See PacketTap for when each backend fires it.
    virtual void set_tap(PacketTap* tap) = 0;
    [[nodiscard]] virtual PacketTap* tap() const = 0;

    /// Create a Channel handle on this backend (the one way model code gets
    /// a send handle — see ChannelSpec in channel.hpp). Defined in
    /// channel.cpp.
    [[nodiscard]] Channel open_channel(ChannelSpec spec);

protected:
    virtual bool do_send(NodeId src, NodeId dst, std::size_t size_bytes, FlowRef flow,
                         Payload payload, Priority priority) = 0;
};

}  // namespace mvc::net
