#pragma once
// Wire unit of the simulated network. Payloads are type-erased but typed:
// endpoints know what flows between them and read back through the checked
// Payload accessors (get/take/holds).

#include <cstdint>
#include <string>
#include <string_view>

#include "net/payload.hpp"
#include "sim/time.hpp"

namespace mvc::net {

using NodeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = 0;

/// Traffic accounting class a packet is charged to (see net::Channel: an
/// accounting dimension, not a queueing discipline — links stay FIFO). Lives
/// with Packet rather than Channel so the raw Network::send path and the
/// recording tap can carry it without depending on the channel layer.
enum class Priority : std::uint8_t {
    Control,   ///< protocol chatter: heartbeats, clock sync, resync requests
    Realtime,  ///< latency-sensitive media: avatar state, audio, video
    Bulk,      ///< throughput-bound transfers: snapshots, FEC repair bursts
};

[[nodiscard]] std::string_view priority_name(Priority p);

struct Packet {
    std::uint64_t id{0};
    NodeId src{kInvalidNode};
    NodeId dst{kInvalidNode};
    std::size_t size_bytes{0};
    sim::Time sent_at{};
    /// Flow label for per-stream metrics ("avatar", "video", "ack", ...).
    std::string flow;
    Payload payload;
};

/// Typical protocol overhead we charge per packet on top of payload bytes
/// (IPv4 + UDP + our application header).
inline constexpr std::size_t kHeaderBytes = 28 + 12;

}  // namespace mvc::net
