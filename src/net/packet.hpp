#pragma once
// Wire unit of the simulated network. Payloads are type-erased but typed:
// endpoints know what flows between them and read back through the checked
// Payload accessors (get/take/holds).

#include <cstdint>
#include <string>

#include "net/payload.hpp"
#include "sim/time.hpp"

namespace mvc::net {

using NodeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = 0;

struct Packet {
    std::uint64_t id{0};
    NodeId src{kInvalidNode};
    NodeId dst{kInvalidNode};
    std::size_t size_bytes{0};
    sim::Time sent_at{};
    /// Flow label for per-stream metrics ("avatar", "video", "ack", ...).
    std::string flow;
    Payload payload;
};

/// Typical protocol overhead we charge per packet on top of payload bytes
/// (IPv4 + UDP + our application header).
inline constexpr std::size_t kHeaderBytes = 28 + 12;

}  // namespace mvc::net
