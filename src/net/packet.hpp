#pragma once
// Wire unit of the simulated network. Payloads are type-erased; endpoints
// know what flows between them and cast back via std::any_cast.

#include <any>
#include <cstdint>
#include <string>

#include "sim/time.hpp"

namespace mvc::net {

using NodeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = 0;

struct Packet {
    std::uint64_t id{0};
    NodeId src{kInvalidNode};
    NodeId dst{kInvalidNode};
    std::size_t size_bytes{0};
    sim::Time sent_at{};
    /// Flow label for per-stream metrics ("avatar", "video", "ack", ...).
    std::string flow;
    std::any payload;
};

/// Typical protocol overhead we charge per packet on top of payload bytes
/// (IPv4 + UDP + our application header).
inline constexpr std::size_t kHeaderBytes = 28 + 12;

}  // namespace mvc::net
