#pragma once
// Shared retry backoff policy: exponential growth with decorrelated jitter.
//
// Plain exponential backoff synchronizes every client that observed the same
// outage — they all retry at t+1s, t+2s, t+4s and stampede the recovering
// peer together. The decorrelated-jitter variant draws each delay uniformly
// from [base, prev * 3] (capped), so retry times spread out while still
// growing geometrically in expectation. Deterministic: delays come from the
// sim::Rng stream the owner passes in, so a reconnect storm replays
// bit-identically under a fixed seed.

#include <algorithm>
#include <cstdint>
#include <utility>

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace mvc::net {

struct BackoffParams {
    /// First delay, and the lower bound of every jittered draw.
    sim::Time base{sim::Time::ms(200)};
    /// Upper bound for any delay.
    sim::Time cap{sim::Time::seconds(10.0)};
    /// Growth factor: next delay is drawn from [base, prev * multiplier].
    double multiplier{3.0};
};

/// One retry sequence. next() yields the delay before the upcoming attempt;
/// reset() on success returns the sequence to `base`.
class Backoff {
public:
    Backoff(BackoffParams params, sim::Rng rng)
        : params_(params), rng_(std::move(rng)) {}

    /// Delay before the next attempt: min(cap, uniform(base, prev * mult)),
    /// starting from `base` on the first call after construction/reset.
    [[nodiscard]] sim::Time next() {
        ++attempts_;
        if (prev_ < params_.base) {
            prev_ = params_.base;
            return prev_;
        }
        const double lo = params_.base.to_seconds();
        const double hi = std::max(lo, prev_.to_seconds() * params_.multiplier);
        const double drawn = lo < hi ? rng_.uniform(lo, hi) : lo;
        prev_ = std::min(params_.cap, sim::Time::seconds(drawn));
        return prev_;
    }

    /// Successful attempt: start the next sequence from `base` again.
    void reset() {
        prev_ = sim::Time::zero();
        attempts_ = 0;
    }

    /// Attempts started since the last reset().
    [[nodiscard]] int attempts() const { return attempts_; }
    /// Last delay handed out (zero before the first next()).
    [[nodiscard]] sim::Time last_delay() const { return prev_; }

private:
    BackoffParams params_;
    sim::Rng rng_;
    sim::Time prev_{};
    int attempts_{0};
};

}  // namespace mvc::net
