#pragma once
// The one way model code hands a message to the network. A Channel is a
// named send handle anchored at a source node: it owns the flow label, the
// reliability mode, and the priority class, so call sites state *intent*
// once at construction instead of re-deriving flow strings and picking
// between Network::send / ReliableChannel at every send.
//
//  - BestEffort channels are datagram handles. The connected form binds a
//    destination; the unconnected form leaves addressing to send_to, which
//    is what fan-out senders (cloud, edge, relay) use to reach many
//    destinations through a single handle.
//  - Reliable channels wrap ReliableChannel (ACK + retransmission) and are
//    necessarily point-to-point: they need a demux at both ends.
//
// Priority is an accounting class, not a queueing discipline — links stay
// FIFO. Every send is charged to a per-(flow, priority) wire-byte counter
// (canonical label order, see MetricsRecorder::keyed) so experiments can
// split control, realtime, and bulk traffic without per-site bookkeeping.
//
// Payloads move through the channel (Payload is a shared box, so an N-way
// fan-out shares one box across sends instead of copying the wire value).

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "net/transport.hpp"

namespace mvc::net {

enum class Reliability : std::uint8_t {
    BestEffort,  ///< fire-and-forget datagram; loss is the receiver's problem
    Reliable,    ///< ARQ with ACKs, retransmission, and bounded attempts
};

// Priority (the accounting class enum) lives in net/packet.hpp; channels
// carry one per handle via ChannelOptions and stamp it on every send.

struct ChannelOptions {
    Reliability reliability{Reliability::BestEffort};
    Priority priority{Priority::Realtime};
    /// ARQ tuning; consulted only when reliability == Reliable.
    ReliableOptions reliable{};
};

class Channel {
public:
    /// Unconnected best-effort handle: addressing happens per send via
    /// send_to. Rejects ChannelOptions asking for Reliable (an ARQ stream
    /// has exactly one peer).
    Channel(Network& net, NodeId src, std::string flow, ChannelOptions options = {});

    /// Connected best-effort handle src -> dst; send() needs no address.
    Channel(Network& net, NodeId src, NodeId dst, std::string flow,
            ChannelOptions options = {});

    /// Connected handle that may be Reliable: the demuxes give the ARQ layer
    /// its data/ack dispatch at both endpoints. Also accepts BestEffort
    /// options, so a call site can flip reliability without changing shape.
    Channel(Network& net, PacketDemux& src, PacketDemux& dst, std::string flow,
            ChannelOptions options = {});

    Channel(const Channel&) = delete;
    Channel& operator=(const Channel&) = delete;

    /// Send on a connected channel. Best-effort: returns Network::send's
    /// verdict. Reliable: queues for ARQ delivery and returns true.
    bool send(std::size_t size_bytes, Payload payload);

    /// Send to an explicit destination (unconnected or connected
    /// best-effort). Throws std::logic_error on a Reliable channel.
    bool send_to(NodeId dst, std::size_t size_bytes, Payload payload);

    /// Delivery/failure callbacks; valid only on Reliable channels (throws
    /// std::logic_error otherwise).
    void on_delivered(ReliableChannel::DeliveredFn fn);
    void on_failed(ReliableChannel::FailedFn fn);

    /// Underlying ARQ stream for stats (RTO, retransmissions); nullptr on
    /// best-effort channels.
    [[nodiscard]] ReliableChannel* arq() { return arq_.get(); }
    [[nodiscard]] const ReliableChannel* arq() const { return arq_.get(); }

    [[nodiscard]] NodeId src() const { return src_; }
    [[nodiscard]] NodeId dst() const { return dst_; }
    [[nodiscard]] bool connected() const { return dst_ != kInvalidNode; }
    [[nodiscard]] const std::string& flow() const { return flow_.name(); }
    [[nodiscard]] const ChannelOptions& options() const { return options_; }

private:
    Network& net_;
    NodeId src_;
    NodeId dst_{kInvalidNode};
    /// Interned flow handle: canonical name plus the per-packet metric ids,
    /// resolved once at construction so sends never touch the metric maps.
    FlowRef flow_;
    ChannelOptions options_;
    /// Pre-resolved "net.prio_bytes{flow=...,priority=...}" counter handle;
    /// one string build per channel instead of one per send.
    sim::MetricId prio_id_;
    std::unique_ptr<ReliableChannel> arq_;

    bool send_impl(NodeId dst, std::size_t size_bytes, Payload payload);
};

}  // namespace mvc::net
