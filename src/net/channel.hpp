#pragma once
// The one way model code hands a message to the network. A Channel is a
// named send handle anchored at a source node: it owns the flow label, the
// reliability mode, and the priority class, so call sites state *intent*
// once at construction instead of re-deriving flow strings and picking
// between Backend::send / ReliableChannel at every send.
//
// Channels are opened, not constructed: fill a ChannelSpec and call
// Backend::open_channel(spec). The spec subsumes the old constructor
// trio —
//
//  - src only               -> unconnected best-effort handle; addressing
//                              happens per send via send_to (fan-out
//                              senders: cloud, edge, relay).
//  - src + dst              -> connected best-effort handle.
//  - src_demux + dst_demux  -> connected handle that may be Reliable; the
//                              demuxes give the ARQ layer its data/ack
//                              dispatch at both endpoints. BestEffort is
//                              also accepted, so a call site can flip
//                              reliability without changing shape.
//
// Because the spec names only nodes, demuxes, and a Backend, the same call
// site opens its channel on the simulated fabric or the real UDP transport
// unchanged.
//
// Priority is an accounting class, not a queueing discipline — links stay
// FIFO. Every send is charged to a per-(flow, priority) wire-byte counter
// (canonical label order, see MetricsRecorder::keyed) so experiments can
// split control, realtime, and bulk traffic without per-site bookkeeping.
//
// Payloads move through the channel (Payload is a shared box, so an N-way
// fan-out shares one box across sends instead of copying the wire value).

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "net/backend.hpp"
#include "net/transport.hpp"

namespace mvc::net {

enum class Reliability : std::uint8_t {
    BestEffort,  ///< fire-and-forget datagram; loss is the receiver's problem
    Reliable,    ///< ARQ with ACKs, retransmission, and bounded attempts
};

// Priority (the accounting class enum) lives in net/packet.hpp; channels
// carry one per handle via ChannelOptions and stamp it on every send.

struct ChannelOptions {
    Reliability reliability{Reliability::BestEffort};
    Priority priority{Priority::Realtime};
    /// ARQ tuning; consulted only when reliability == Reliable.
    ReliableOptions reliable{};
};

/// Everything Backend::open_channel needs to mint a Channel. `flow` is
/// mandatory. Addressing comes from the demuxes when given (their nodes
/// must agree with any explicitly-set src/dst), otherwise from src/dst
/// directly; a Reliable spec must carry both demuxes.
struct ChannelSpec {
    NodeId src{kInvalidNode};
    NodeId dst{kInvalidNode};
    PacketDemux* src_demux{nullptr};
    PacketDemux* dst_demux{nullptr};
    std::string flow;
    ChannelOptions options{};
};

class Channel {
public:
    Channel(const Channel&) = delete;
    Channel& operator=(const Channel&) = delete;
    /// Movable so open_channel's by-value return can be stored anywhere
    /// (members, unique_ptr, containers).
    Channel(Channel&&) = default;

    /// Send on a connected channel. Best-effort: returns Backend::send's
    /// verdict. Reliable: queues for ARQ delivery and returns true.
    bool send(std::size_t size_bytes, Payload payload);

    /// Send to an explicit destination (unconnected or connected
    /// best-effort). Throws std::logic_error on a Reliable channel.
    bool send_to(NodeId dst, std::size_t size_bytes, Payload payload);

    /// Delivery/failure callbacks; valid only on Reliable channels (throws
    /// std::logic_error otherwise).
    void on_delivered(ReliableChannel::DeliveredFn fn);
    void on_failed(ReliableChannel::FailedFn fn);
    /// Dead-peer notification after `ReliableOptions::dead_after_failures`
    /// consecutive give-ups — the session layer's cue to stop retrying and
    /// enter its reconnect path. Reliable channels only.
    void on_dead_peer(ReliableChannel::DeadPeerFn fn);

    /// Underlying ARQ stream for stats (RTO, retransmissions); nullptr on
    /// best-effort channels.
    [[nodiscard]] ReliableChannel* arq() { return arq_.get(); }
    [[nodiscard]] const ReliableChannel* arq() const { return arq_.get(); }

    [[nodiscard]] NodeId src() const { return src_; }
    [[nodiscard]] NodeId dst() const { return dst_; }
    [[nodiscard]] bool connected() const { return dst_ != kInvalidNode; }
    [[nodiscard]] const std::string& flow() const { return flow_.name(); }
    [[nodiscard]] const ChannelOptions& options() const { return options_; }

private:
    friend class Backend;  // sole factory: Backend::open_channel
    Channel(Backend& net, const ChannelSpec& spec);

    Backend& net_;
    NodeId src_;
    NodeId dst_{kInvalidNode};
    /// Interned flow handle: canonical name plus the per-packet metric ids,
    /// resolved once at construction so sends never touch the metric maps.
    FlowRef flow_;
    ChannelOptions options_;
    /// Pre-resolved "net.prio_bytes{flow=...,priority=...}" counter handle;
    /// one string build per channel instead of one per send.
    sim::MetricId prio_id_;
    std::unique_ptr<ReliableChannel> arq_;

    bool send_impl(NodeId dst, std::size_t size_bytes, Payload payload);
};

}  // namespace mvc::net
