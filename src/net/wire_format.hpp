#pragma once
// Datagram wire format for the real UDP transport. The simulated Network
// never serializes — payloads cross node boundaries as in-process boxes —
// but a datagram that leaves the process must carry real bytes. This module
// defines the frame layout and a small codec registry that maps payload
// types to wire tags.
//
// Frame layout (all integers little-endian, fixed width):
//
//   offset size field
//        0    4 magic "MVDG"
//        4    1 version (kWireVersion)
//        5    1 priority (net::Priority)
//        6    2 payload tag (codec registry id; kTagEmpty for no payload)
//        8    4 src node id
//       12    4 dst node id
//       16    8 packet id
//       24    8 size_bytes (the *modeled* application size the sender was
//                charged for; the actual datagram is usually smaller)
//       32    8 sent_at, ns since the sender's clock epoch (signed)
//       40    2 flow label length  -> followed by the flow bytes
//        .    4 payload body length -> followed by the payload bytes
//        .    4 CRC-32 over every preceding byte of the frame
//
// The CRC closes the frame so a truncated, corrupted, or foreign datagram is
// rejected before any payload decode runs. Decoding never throws on bad
// input: malformed frames return std::nullopt and the backend counts them.
//
// Codecs are registered per payload type (register_codec<T>); both endpoint
// processes must register the same tags — src/core/wire_codecs.hpp does
// this for every model payload in one place.

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "net/packet.hpp"

namespace mvc::net {

inline constexpr std::uint32_t kWireMagic = 0x4744564DU;  // "MVDG" little-endian
inline constexpr std::uint8_t kWireVersion = 1;
/// Tag stamped on frames whose packet carried no payload.
inline constexpr std::uint16_t kTagEmpty = 0;

[[nodiscard]] std::uint32_t crc32(std::span<const std::byte> bytes);

/// Little-endian primitives shared by the frame encoder and every payload
/// codec, so each codec does not grow its own byte-order bugs.
namespace wiredata {

template <class T>
inline void put(std::vector<std::byte>& out, T v) {
    static_assert(std::is_integral_v<T>);
    auto u = static_cast<std::make_unsigned_t<T>>(v);
    for (std::size_t i = 0; i < sizeof(T); ++i)
        out.push_back(static_cast<std::byte>((u >> (8 * i)) & 0xFFU));
}

inline void put_bytes(std::vector<std::byte>& out, std::span<const std::uint8_t> b) {
    put<std::uint32_t>(out, static_cast<std::uint32_t>(b.size()));
    for (const std::uint8_t c : b) out.push_back(static_cast<std::byte>(c));
}

/// Bounds-checked little-endian reader; `ok` latches false on overrun, and
/// every accessor returns a zero value once latched so codecs can decode
/// straight through and check `ok` once at the end.
struct Reader {
    std::span<const std::byte> buf;
    std::size_t pos{0};
    bool ok{true};

    template <class T>
    T get() {
        static_assert(std::is_integral_v<T>);
        if (!ok || buf.size() - pos < sizeof(T)) {
            ok = false;
            return T{};
        }
        std::make_unsigned_t<T> u = 0;
        for (std::size_t i = 0; i < sizeof(T); ++i)
            u |= static_cast<std::make_unsigned_t<T>>(
                     static_cast<std::uint8_t>(buf[pos + i]))
                 << (8 * i);
        pos += sizeof(T);
        return static_cast<T>(u);
    }

    std::span<const std::byte> bytes(std::size_t n) {
        if (!ok || buf.size() - pos < n) {
            ok = false;
            return {};
        }
        auto s = buf.subspan(pos, n);
        pos += n;
        return s;
    }

    std::vector<std::uint8_t> get_bytes() {
        const auto n = get<std::uint32_t>();
        const auto s = bytes(n);
        std::vector<std::uint8_t> out;
        out.reserve(s.size());
        for (const std::byte b : s) out.push_back(static_cast<std::uint8_t>(b));
        return out;
    }
};

}  // namespace wiredata

/// Payload codec registry: tag <-> typed encode/decode, process-global.
/// Registration is not thread-safe (do it at startup, before any traffic);
/// lookup is read-only afterwards.
class WireCodecs {
public:
    using Encode = std::function<void(const Payload&, std::vector<std::byte>&)>;
    using Decode = std::function<std::optional<Payload>(std::span<const std::byte>)>;

    [[nodiscard]] static WireCodecs& instance();

    /// Register codec functions for T under `tag`. Throws std::logic_error
    /// on a tag or type collision (same T re-registered with identical tag
    /// is an idempotent no-op, so translation-unit-level registration can
    /// run more than once).
    template <class T>
    void register_codec(std::uint16_t tag, Encode encode, Decode decode) {
        add(tag, detail::payload_type_id<T>(), std::move(encode), std::move(decode));
    }

    /// Tag for a payload's runtime type; nullopt when no codec is registered.
    [[nodiscard]] std::optional<std::uint16_t> tag_of(const Payload& p) const;
    [[nodiscard]] const Encode* encoder(std::uint16_t tag) const;
    [[nodiscard]] const Decode* decoder(std::uint16_t tag) const;

private:
    struct Entry {
        std::uint16_t tag;
        detail::PayloadTypeId type;
        Encode encode;
        Decode decode;
    };

    void add(std::uint16_t tag, detail::PayloadTypeId type, Encode encode,
             Decode decode);

    std::vector<Entry> entries_;  // few codecs; linear scan beats map overhead
};

/// Serialize a packet into one datagram frame. Returns nullopt when the
/// payload's type has no registered codec (the caller counts and drops —
/// sending an undecodable frame would only move the error to the peer).
[[nodiscard]] std::optional<std::vector<std::byte>> encode_frame(const Packet& p,
                                                                 Priority priority);

/// Parse one datagram. Returns nullopt on any defect: short frame, bad
/// magic/version, length fields pointing outside the buffer, CRC mismatch,
/// unknown payload tag, or a payload body its codec rejects.
struct DecodedFrame {
    Packet packet;
    Priority priority{Priority::Realtime};
};
[[nodiscard]] std::optional<DecodedFrame> decode_frame(std::span<const std::byte> frame);

/// Why a frame was rejected. The backend exports per-reason ingress-reject
/// counters so chaos on a real wire is observable, not just droppable.
enum class FrameDefect : std::uint8_t {
    None,             ///< frame decoded fine
    BadMagic,         ///< not our protocol (foreign datagram)
    BadVersion,       ///< our magic, incompatible version
    BadPriority,      ///< priority byte outside the enum
    Truncated,        ///< a length field points past the end of the datagram
    TrailingGarbage,  ///< bytes after the payload body that are not the CRC
    CrcMismatch,      ///< checksum failed: corruption in flight
    UnknownTag,       ///< no codec registered for the payload tag
    BadPayload,       ///< CRC fine but the payload codec rejected the body
};
inline constexpr std::size_t kFrameDefectCount = 9;
[[nodiscard]] std::string_view frame_defect_name(FrameDefect d);

/// decode_frame with the rejection reason reported (FrameDefect::None on
/// success). The reason-less overload above delegates here.
[[nodiscard]] std::optional<DecodedFrame> decode_frame(std::span<const std::byte> frame,
                                                       FrameDefect& defect);

/// Encode a payload nested *inside* another payload's body (the ARQ wrapper
/// carries the application payload this way): tag(u16) + body_len(u32) +
/// body. Returns false when the payload's type has no registered codec.
[[nodiscard]] bool encode_nested_payload(const Payload& p, std::vector<std::byte>& out);

/// Inverse of encode_nested_payload; consumes from `r` and leaves it
/// positioned after the nested body. nullopt on unknown tag or codec reject.
[[nodiscard]] std::optional<Payload> decode_nested_payload(wiredata::Reader& r);

}  // namespace mvc::net
