#pragma once
// Typed replacement for the old std::any packet payload. Values are boxed
// together with a compile-time type token; accessors are checked against the
// token, so a sender/handler type disagreement fails with a clear error at
// the access site instead of a bad_any_cast deep inside a flow handler, and
// `holds<T>()` lets handlers branch without exceptions. Copies share the box
// (like shared_ptr), which makes N-way fan-out of one wire value cheap;
// `take<T>()` moves the value out when the box is uniquely owned.

#include <memory>
#include <stdexcept>
#include <type_traits>
#include <utility>

namespace mvc::net {

namespace detail {
using PayloadTypeId = const void*;

template <class T>
inline constexpr char payload_tag_v = 0;

/// One unique address per distinct payload type — no RTTI required.
template <class T>
[[nodiscard]] constexpr PayloadTypeId payload_type_id() {
    return &payload_tag_v<T>;
}
}  // namespace detail

class Payload {
public:
    Payload() = default;

    template <class T, class D = std::decay_t<T>,
              class = std::enable_if_t<!std::is_same_v<D, Payload>>>
    Payload(T&& value)  // NOLINT(google-explicit-constructor): mirrors std::any
        : box_(std::make_shared<Box<D>>(std::forward<T>(value))) {}

    [[nodiscard]] bool empty() const { return box_ == nullptr; }

    /// Type token of the boxed value (nullptr when empty). This is what the
    /// wire codec registry keys on to pick an encoder without naming types.
    [[nodiscard]] detail::PayloadTypeId type_id() const {
        return box_ == nullptr ? nullptr : box_->id;
    }

    template <class T>
    [[nodiscard]] bool holds() const {
        return box_ != nullptr && box_->id == detail::payload_type_id<T>();
    }

    /// Checked read access; throws on type mismatch or empty payload.
    template <class T>
    [[nodiscard]] const T& get() const {
        return box_of<T>().value;
    }

    /// Checked move-out; falls back to a copy when the box is shared with
    /// other packets. Leaves this payload empty.
    template <class T>
    [[nodiscard]] T take() {
        Box<T>& b = box_of<T>();
        T out = box_.use_count() == 1 ? std::move(b.value) : b.value;
        box_.reset();
        return out;
    }

private:
    struct BoxBase {
        explicit BoxBase(detail::PayloadTypeId type) : id(type) {}
        virtual ~BoxBase() = default;
        detail::PayloadTypeId id;
    };
    template <class T>
    struct Box : BoxBase {
        explicit Box(T v) : BoxBase(detail::payload_type_id<T>()), value(std::move(v)) {}
        T value;
    };

    template <class T>
    [[nodiscard]] Box<T>& box_of() const {
        if (!holds<T>())
            throw std::runtime_error(
                "net::Payload: type mismatch (sender and flow handler disagree)");
        return *static_cast<Box<T>*>(box_.get());
    }

    std::shared_ptr<BoxBase> box_;
};

}  // namespace mvc::net
