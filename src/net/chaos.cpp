#include "net/chaos.hpp"

#include <algorithm>

#include "net/wire_format.hpp"

namespace mvc::net {

ChaosBackend::ChaosBackend(Backend& inner)
    : inner_(inner),
      drop_id_(inner.metrics().counter_id("chaos.drop")),
      dup_id_(inner.metrics().counter_id("chaos.dup")),
      reorder_id_(inner.metrics().counter_id("chaos.reorder")),
      corrupt_id_(inner.metrics().counter_id("chaos.corrupt_caught")),
      corrupt_uncodable_id_(inner.metrics().counter_id("chaos.corrupt")),
      blackhole_id_(inner.metrics().counter_id("chaos.blackhole")),
      throttle_id_(inner.metrics().counter_id("chaos.throttle_drop")),
      delayed_id_(inner.metrics().counter_id("chaos.delayed")) {}

// ----------------------------------------------------------- chaos control

ChaosBackend::PairState& ChaosBackend::state_for(NodeId src, NodeId dst) {
    const auto key = std::make_pair(src, dst);
    auto it = pairs_.find(key);
    if (it == pairs_.end()) {
        // One stream per directed pair: draws stay event-loop ordered no
        // matter how many other pairs (or models) draw around them.
        const std::string name = "chaos/" + std::to_string(src) + "->" +
                                 std::to_string(dst);
        it = pairs_.emplace(key, PairState{inner_.clock().rng_stream(name)}).first;
    }
    return it->second;
}

const ChaosBackend::PairState* ChaosBackend::find_state(NodeId src,
                                                        NodeId dst) const {
    const auto it = pairs_.find(std::make_pair(src, dst));
    return it == pairs_.end() ? nullptr : &it->second;
}

ChaosProfile ChaosBackend::set_profile(NodeId src, NodeId dst,
                                       const ChaosProfile& profile) {
    PairState& st = state_for(src, dst);
    ChaosProfile previous = st.profile;
    st.profile = profile;
    st.ge_bad = false;
    return previous;
}

void ChaosBackend::set_pair_profile(NodeId a, NodeId b,
                                    const ChaosProfile& profile) {
    set_profile(a, b, profile);
    set_profile(b, a, profile);
}

void ChaosBackend::clear_profile(NodeId src, NodeId dst) {
    set_profile(src, dst, ChaosProfile{});
}

void ChaosBackend::clear_pair_profile(NodeId a, NodeId b) {
    clear_profile(a, b);
    clear_profile(b, a);
}

ChaosProfile ChaosBackend::profile(NodeId src, NodeId dst) const {
    const PairState* st = find_state(src, dst);
    return st ? st->profile : ChaosProfile{};
}

void ChaosBackend::set_blackhole(NodeId src, NodeId dst, bool on) {
    state_for(src, dst).profile.blackhole = on;
}

// -------------------------------------------------------------- send path

bool ChaosBackend::do_send(NodeId src, NodeId dst, std::size_t size_bytes,
                           FlowRef flow, Payload payload, Priority priority) {
    const auto it = pairs_.find(std::make_pair(src, dst));
    if (it == pairs_.end() || !it->second.profile.active())
        return inner_.send(src, dst, size_bytes, flow, std::move(payload),
                           priority);
    PairState& st = it->second;
    const ChaosProfile& pr = st.profile;

    // A blackholed or dropped packet was "on the wire" and died there, so
    // the send itself succeeds — mirroring Link's lost-in-flight semantics.
    if (pr.blackhole) {
        ++blackholed_;
        inner_.metrics().count(blackhole_id_);
        return true;
    }

    if (pr.ge_p_bad > 0.0 || pr.ge_p_good > 0.0) {
        if (st.ge_bad) {
            if (st.rng.chance(pr.ge_p_good)) st.ge_bad = false;
        } else {
            if (st.rng.chance(pr.ge_p_bad)) st.ge_bad = true;
        }
        const double loss = st.ge_bad ? pr.ge_loss_bad : pr.ge_loss_good;
        if (loss > 0.0 && st.rng.chance(loss)) {
            ++dropped_;
            inner_.metrics().count(drop_id_);
            return true;
        }
    }
    if (pr.drop > 0.0 && st.rng.chance(pr.drop)) {
        ++dropped_;
        inner_.metrics().count(drop_id_);
        return true;
    }

    if (pr.corrupt > 0.0 && st.rng.chance(pr.corrupt) &&
        corrupt_in_flight(st, src, dst, size_bytes, flow, payload, priority))
        return true;

    sim::Time extra = pr.delay;
    if (pr.jitter > sim::Time::zero())
        extra += sim::Time::seconds(st.rng.uniform(0.0, pr.jitter.to_seconds()));

    if (pr.throttle_bps > 0.0) {
        const double wire_bits =
            static_cast<double>(size_bytes + kHeaderBytes) * 8.0;
        const sim::Time tx = sim::Time::seconds(wire_bits / pr.throttle_bps);
        const sim::Time now = inner_.clock().now();
        const sim::Time start = std::max(now, st.throttle_busy_until);
        if (start + tx - now > pr.throttle_backlog) {
            ++throttle_dropped_;
            inner_.metrics().count(throttle_id_);
            return true;
        }
        st.throttle_busy_until = start + tx;
        extra += st.throttle_busy_until - now;
    }

    if (pr.reorder > 0.0 && st.rng.chance(pr.reorder)) {
        ++reordered_;
        inner_.metrics().count(reorder_id_);
        extra += pr.reorder_hold;
    }

    if (pr.duplicate > 0.0 && st.rng.chance(pr.duplicate)) {
        ++duplicated_;
        inner_.metrics().count(dup_id_);
        if (extra > sim::Time::zero())
            forward_after(extra, src, dst, size_bytes, flow, payload, priority);
        else
            inner_.send(src, dst, size_bytes, flow, payload, priority);
    }

    if (extra > sim::Time::zero()) {
        ++delayed_;
        inner_.metrics().count(delayed_id_);
        forward_after(extra, src, dst, size_bytes, flow, std::move(payload),
                      priority);
        return true;
    }
    return inner_.send(src, dst, size_bytes, flow, std::move(payload), priority);
}

bool ChaosBackend::corrupt_in_flight(PairState& st, NodeId src, NodeId dst,
                                     std::size_t size_bytes, const FlowRef& flow,
                                     const Payload& payload, Priority priority) {
    Packet p;
    p.src = src;
    p.dst = dst;
    p.size_bytes = size_bytes;
    p.sent_at = inner_.clock().now();
    p.flow = flow.name();
    p.payload = payload;
    auto frame = encode_frame(p, priority);
    if (!frame) {
        // No registered wire codec: nothing to flip, but on a real wire the
        // CRC would have rejected the mangled frame anyway — drop directly.
        ++corrupted_;
        inner_.metrics().count(corrupt_uncodable_id_);
        return true;
    }
    auto& bytes = *frame;
    const auto bit = static_cast<std::size_t>(
        st.rng.uniform_int(0, static_cast<std::int64_t>(bytes.size() * 8 - 1)));
    bytes[bit / 8] ^= static_cast<std::byte>(1U << (bit % 8));
    if (auto decoded = decode_frame(bytes)) {
        // CRC-32 catches every single-bit flip; this branch would require a
        // multi-bit collision and cannot be reached by one flip. Deliver the
        // mangled packet if it ever were.
        Packet& mp = decoded->packet;
        inner_.send(mp.src, mp.dst, mp.size_bytes, mp.flow,
                    std::move(mp.payload), decoded->priority);
        return true;
    }
    ++corrupted_;
    inner_.metrics().count(corrupt_id_);
    return true;
}

void ChaosBackend::forward_after(sim::Time delay, NodeId src, NodeId dst,
                                 std::size_t size_bytes, FlowRef flow,
                                 Payload payload, Priority priority) {
    inner_.clock().schedule_after(
        delay, [this, src, dst, size_bytes, flow, payload = std::move(payload),
                priority]() mutable {
            inner_.send(src, dst, size_bytes, flow, std::move(payload), priority);
        });
}

// ------------------------------------------------------ Backend forwarding

NodeId ChaosBackend::add_node(std::string name, Region region) {
    return inner_.add_node(std::move(name), region);
}
void ChaosBackend::set_handler(NodeId node, PacketHandler handler) {
    inner_.set_handler(node, std::move(handler));
}
Region ChaosBackend::region_of(NodeId node) const { return inner_.region_of(node); }
const std::string& ChaosBackend::name_of(NodeId node) const {
    return inner_.name_of(node);
}
std::size_t ChaosBackend::node_count() const { return inner_.node_count(); }
NodeContext& ChaosBackend::context(NodeId node) { return inner_.context(node); }
const NodeContext& ChaosBackend::context(NodeId node) const {
    return std::as_const(inner_).context(node);
}
bool ChaosBackend::node_up(NodeId node) const { return inner_.node_up(node); }
void ChaosBackend::observe_node(NodeId node, NodeObserver observer) {
    inner_.observe_node(node, std::move(observer));
}
FlowRef ChaosBackend::flow(std::string_view name) { return inner_.flow(name); }
sim::Clock& ChaosBackend::clock() { return inner_.clock(); }
sim::MetricsRecorder& ChaosBackend::metrics() { return inner_.metrics(); }
const sim::MetricsRecorder& ChaosBackend::metrics() const {
    return std::as_const(inner_).metrics();
}
void ChaosBackend::set_tap(PacketTap* tap) { inner_.set_tap(tap); }
PacketTap* ChaosBackend::tap() const { return inner_.tap(); }

}  // namespace mvc::net
