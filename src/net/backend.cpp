#include "net/backend.hpp"

namespace mvc::net {

FlowTable::Map::iterator FlowTable::entry(std::string_view name) {
    auto it = flows_.find(name);
    if (it != flows_.end()) return it;
    const std::string n{name};
    FlowMetrics m;
    m.tx = metrics_.counter_id("net.tx." + n);
    m.tx_bytes = metrics_.counter_id("net.tx_bytes." + n);
    m.rx = metrics_.counter_id("net.rx." + n);
    m.queue_drop = metrics_.counter_id("net.queue_drop." + n);
    m.link_down_drop = metrics_.counter_id("net.link_down_drop." + n);
    m.latency_ms = metrics_.series_id("net.latency_ms." + n);
    return flows_.emplace(n, m).first;
}

}  // namespace mvc::net
