#include "net/channel.hpp"

#include <stdexcept>
#include <utility>

namespace mvc::net {

std::string_view priority_name(Priority p) {
    switch (p) {
        case Priority::Control: return "control";
        case Priority::Realtime: return "realtime";
        case Priority::Bulk: return "bulk";
    }
    return "unknown";
}

Channel::Channel(Network& net, NodeId src, std::string flow, ChannelOptions options)
    : net_(net),
      src_(src),
      flow_(net.flow(flow)),
      options_(options),
      prio_id_(net.metrics().counter_id(
          "net.prio_bytes",
          {{"flow", flow}, {"priority", priority_name(options_.priority)}})) {
    if (options_.reliability == Reliability::Reliable)
        throw std::logic_error(
            "net::Channel: a Reliable channel is point-to-point; construct it "
            "from the two endpoint demuxes");
}

Channel::Channel(Network& net, NodeId src, NodeId dst, std::string flow,
                 ChannelOptions options)
    : Channel(net, src, std::move(flow), options) {
    dst_ = dst;
}

Channel::Channel(Network& net, PacketDemux& src, PacketDemux& dst, std::string flow,
                 ChannelOptions options)
    : net_(net),
      src_(src.node()),
      dst_(dst.node()),
      flow_(net.flow(flow)),
      options_(options),
      prio_id_(net.metrics().counter_id(
          "net.prio_bytes",
          {{"flow", flow}, {"priority", priority_name(options_.priority)}})) {
    if (options_.reliability == Reliability::Reliable)
        arq_ = std::make_unique<ReliableChannel>(net, src, dst, flow_.name(),
                                                 options_.reliable);
}

bool Channel::send_impl(NodeId dst, std::size_t size_bytes, Payload payload) {
    net_.metrics().count(prio_id_, size_bytes + kHeaderBytes);
    return net_.send(src_, dst, size_bytes, flow_, std::move(payload),
                     options_.priority);
}

bool Channel::send(std::size_t size_bytes, Payload payload) {
    if (arq_) {
        net_.metrics().count(prio_id_, size_bytes + kHeaderBytes);
        arq_->send(size_bytes, std::move(payload));
        return true;
    }
    if (!connected())
        throw std::logic_error("net::Channel: send() on an unconnected channel");
    return send_impl(dst_, size_bytes, std::move(payload));
}

bool Channel::send_to(NodeId dst, std::size_t size_bytes, Payload payload) {
    if (arq_)
        throw std::logic_error(
            "net::Channel: send_to() is invalid on a Reliable channel");
    return send_impl(dst, size_bytes, std::move(payload));
}

void Channel::on_delivered(ReliableChannel::DeliveredFn fn) {
    if (!arq_) throw std::logic_error("net::Channel: best-effort channels have no ACKs");
    arq_->on_delivered(std::move(fn));
}

void Channel::on_failed(ReliableChannel::FailedFn fn) {
    if (!arq_) throw std::logic_error("net::Channel: best-effort channels have no ACKs");
    arq_->on_failed(std::move(fn));
}

}  // namespace mvc::net
