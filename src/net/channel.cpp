#include "net/channel.hpp"

#include <stdexcept>
#include <utility>

namespace mvc::net {

std::string_view priority_name(Priority p) {
    switch (p) {
        case Priority::Control: return "control";
        case Priority::Realtime: return "realtime";
        case Priority::Bulk: return "bulk";
    }
    return "unknown";
}

namespace {

/// Fold the spec's two addressing sources (explicit id, demux endpoint)
/// into one, rejecting a contradiction instead of silently preferring one.
NodeId resolve_endpoint(const char* which, NodeId explicit_id, PacketDemux* demux) {
    if (demux == nullptr) return explicit_id;
    if (explicit_id != kInvalidNode && explicit_id != demux->node())
        throw std::logic_error(std::string("net::open_channel: ") + which +
                               " and " + which + "_demux name different nodes");
    return demux->node();
}

}  // namespace

Channel Backend::open_channel(ChannelSpec spec) {
    spec.src = resolve_endpoint("src", spec.src, spec.src_demux);
    spec.dst = resolve_endpoint("dst", spec.dst, spec.dst_demux);
    if (spec.flow.empty())
        throw std::logic_error("net::open_channel: spec.flow must be set");
    if (spec.src == kInvalidNode)
        throw std::logic_error("net::open_channel: spec needs a source node");
    if (spec.options.reliability == Reliability::Reliable &&
        (spec.src_demux == nullptr || spec.dst_demux == nullptr))
        throw std::logic_error(
            "net::open_channel: a Reliable channel is point-to-point; the spec "
            "must carry both endpoint demuxes");
    return Channel{*this, spec};
}

Channel::Channel(Backend& net, const ChannelSpec& spec)
    : net_(net),
      src_(spec.src),
      dst_(spec.dst),
      flow_(net.flow(spec.flow)),
      options_(spec.options),
      prio_id_(net.metrics().counter_id(
          "net.prio_bytes",
          {{"flow", spec.flow}, {"priority", priority_name(options_.priority)}})) {
    if (options_.reliability == Reliability::Reliable)
        arq_ = std::make_unique<ReliableChannel>(net, *spec.src_demux, *spec.dst_demux,
                                                 flow_.name(), options_.reliable);
}

bool Channel::send_impl(NodeId dst, std::size_t size_bytes, Payload payload) {
    net_.metrics().count(prio_id_, size_bytes + kHeaderBytes);
    return net_.send(src_, dst, size_bytes, flow_, std::move(payload),
                     options_.priority);
}

bool Channel::send(std::size_t size_bytes, Payload payload) {
    if (arq_) {
        net_.metrics().count(prio_id_, size_bytes + kHeaderBytes);
        arq_->send(size_bytes, std::move(payload));
        return true;
    }
    if (!connected())
        throw std::logic_error("net::Channel: send() on an unconnected channel");
    return send_impl(dst_, size_bytes, std::move(payload));
}

bool Channel::send_to(NodeId dst, std::size_t size_bytes, Payload payload) {
    if (arq_)
        throw std::logic_error(
            "net::Channel: send_to() is invalid on a Reliable channel");
    return send_impl(dst, size_bytes, std::move(payload));
}

void Channel::on_delivered(ReliableChannel::DeliveredFn fn) {
    if (!arq_) throw std::logic_error("net::Channel: best-effort channels have no ACKs");
    arq_->on_delivered(std::move(fn));
}

void Channel::on_failed(ReliableChannel::FailedFn fn) {
    if (!arq_) throw std::logic_error("net::Channel: best-effort channels have no ACKs");
    arq_->on_failed(std::move(fn));
}

void Channel::on_dead_peer(ReliableChannel::DeadPeerFn fn) {
    if (!arq_) throw std::logic_error("net::Channel: best-effort channels have no ACKs");
    arq_->on_dead_peer(std::move(fn));
}

}  // namespace mvc::net
