#include "cloud/cloud_server.hpp"

#include <algorithm>
#include <utility>

#include "common/hash.hpp"

namespace mvc::cloud {

CloudServer::CloudServer(net::Backend& net, net::NodeId node, CloudServerConfig config)
    : net_(net),
      node_(node),
      config_(std::move(config)),
      ids_{.relayed_failover =
               net.metrics().counter_id("cloud." + config_.name + ".relayed_failover"),
           .suppressed_dead_peer = net.metrics().counter_id(
               "cloud." + config_.name + ".suppressed_dead_peer"),
           .admission_shed =
               net.metrics().counter_id("admission.shed", {{"server", config_.name}}),
           .queue_dropped =
               net.metrics().counter_id("queue.dropped", {{"server", config_.name}}),
           .queue_depth =
               net.metrics().series_id("queue.depth", {{"server", config_.name}}),
           .recovery_gap_ms =
               net.metrics().series_id("recovery.gap_ms", {{"server", config_.name}}),
           .recovery_restore =
               net.metrics().counter_id("recovery.restore", {{"server", config_.name}}),
           .recovery_cold_start = net.metrics().counter_id(
               "recovery.cold_start", {{"server", config_.name}})},
      demux_(net, node),
      avatar_tx_(net.open_channel({.src = node_,
                                   .flow = std::string{sync::kAvatarFlow},
                                   .options = {.priority = net::Priority::Realtime}})),
      layout_(config_.layout),
      fanout_(config_.interest, config_.interest_enabled),
      gate_(config_.admission) {
    demux_.on_flow(std::string{sync::kAvatarFlow},
                   [this](net::Packet&& p) { handle_avatar_packet(std::move(p)); });
    demux_.on_flow(std::string{sync::kAvatarBatchFlow},
                   [this](net::Packet&& p) { handle_avatar_batch(std::move(p)); });
    if (config_.batch_interval > sim::Time::zero()) {
        batcher_ = std::make_unique<sync::WireBatcher>(net_, node_,
                                                       config_.batch_interval);
    }
    if (config_.aggregate_interval > sim::Time::zero()) {
        aggregator_ = std::make_unique<sync::CellDeltaAggregator>(
            net_, node_, config_.aggregate_interval, config_.aggregate_cell_size,
            config_.interest);
    }
    net_.context(node_).bind<CloudServer>(this);
    if (config_.heartbeat.enabled) {
        hb_ = std::make_unique<fault::HeartbeatMonitor>(
            net_, demux_, config_.heartbeat, "cloud." + config_.name);
    }
    if (config_.recovery.enabled && config_.recovery.store != nullptr) {
        if (config_.recovery.checkpoints) {
            checkpointer_ = std::make_unique<recovery::Checkpointer>(
                net_.clock(), net_.metrics(), config_.recovery, net_.name_of(node_),
                [this](recovery::ClassroomCheckpoint& cp) { make_checkpoint(cp); });
        }
        net_.observe_node(node_, [this](net::NodeId, bool up) { on_node_state(up); });
    }
}

std::optional<math::Pose> CloudServer::attach_client(net::NodeId client, ParticipantId who) {
    if (config_.capacity != 0 && clients_.size() >= config_.capacity) return std::nullopt;
    const std::size_t seat = next_seat_++;
    clients_[client] = Client{who, seat};
    seats_[who] = seat;
    const math::Pose pose = layout_.seat_pose(seat);
    fanout_.add_viewer(Viewer{client, who, pose.position});
    fanout_.upsert_entity(who, pose.position);
    if (aggregator_) aggregator_->add_viewer(client, who, pose.position);
    return pose;
}

void CloudServer::detach_client(net::NodeId client) {
    const auto it = clients_.find(client);
    if (it == clients_.end()) return;
    fanout_.remove_viewer(client);
    fanout_.remove_entity(it->second.who);
    if (aggregator_) aggregator_->remove_viewer(client);
    seats_.erase(it->second.who);
    clients_.erase(it);
}

void CloudServer::add_relay(net::NodeId relay) {
    if (std::find(relays_.begin(), relays_.end(), relay) == relays_.end()) {
        relays_.push_back(relay);
        if (hb_) hb_->watch(relay);
    }
}

void CloudServer::add_peer(net::NodeId peer) {
    if (std::find(peers_.begin(), peers_.end(), peer) == peers_.end()) {
        peers_.push_back(peer);
        if (hb_) hb_->watch(peer);
    }
}

void CloudServer::start() {
    if (hb_) hb_->start();
    if (checkpointer_) checkpointer_->resume();
}

void CloudServer::stop() {
    if (hb_) hb_->stop();
    if (checkpointer_) checkpointer_->pause();
}

bool CloudServer::target_alive(net::NodeId target) const {
    return hb_ == nullptr || hb_->alive(target);
}

math::Pose CloudServer::place_entity(ParticipantId who) {
    const auto it = seats_.find(who);
    const std::size_t seat = it != seats_.end() ? it->second : next_seat_++;
    seats_[who] = seat;
    const math::Pose pose = layout_.seat_pose(seat);
    fanout_.upsert_entity(who, pose.position);
    return pose;
}

std::optional<math::Pose> CloudServer::seat_of(ParticipantId who) const {
    const auto it = seats_.find(who);
    if (it == seats_.end()) return std::nullopt;
    return layout_.seat_pose(it->second);
}

sim::Time CloudServer::charge(sim::Time amount) {
    const sim::Time start = std::max(net_.clock().now(), busy_until_);
    busy_until_ = start + amount;
    return busy_until_;
}

double CloudServer::mean_queue_delay_ms() const {
    if (messages_in_ == 0) return 0.0;
    return queue_delay_accum_ms_ / static_cast<double>(messages_in_);
}

std::uint64_t CloudServer::state_digest() const {
    common::Hash64 h;
    // std::map iteration is key-ordered: the digest depends on the state,
    // not on the order clients happened to attach.
    h.size(clients_.size());
    for (const auto& [node, client] : clients_)
        h.u32(node).u32(client.who.value()).size(client.seat_index);
    h.size(seats_.size());
    for (const auto& [who, seat] : seats_) h.u32(who.value()).size(seat);
    h.size(next_seat_);
    h.u64(messages_in_).u64(messages_out_).u64(egress_bytes_).u64(relayed_failover_);
    h.u64(shed_).u64(queue_dropped_).u64(restores_).u64(cold_starts_);
    h.size(ingress_.size()).size(admitted_.size());
    return h.digest();
}

void CloudServer::handle_avatar_packet(net::Packet&& p) {
    auto wire = p.payload.take<sync::AvatarWire>();
    ingest(std::move(wire), p.src);
}

void CloudServer::handle_avatar_batch(net::Packet&& p) {
    auto batch = p.payload.take<sync::AvatarBatchWire>();
    const net::NodeId origin = p.src;
    for (sync::AvatarWire& wire : batch.updates) ingest(std::move(wire), origin);
}

void CloudServer::ingest(sync::AvatarWire&& wire, net::NodeId origin) {
    ++messages_in_;
    const sim::Time ready = charge(config_.process_in);
    queue_delay_accum_ms_ += (ready - net_.clock().now()).to_ms();
    if (!config_.admission.enabled) {
        net_.clock().schedule_at(ready,
                                     [this, wire = std::move(wire), origin]() mutable {
                                         forward(std::move(wire), origin);
                                     });
        return;
    }

    // Bounded ingress + admission: depth-triggered shedding of never-seen
    // (late-joining) streams keeps the queue serving the admitted class.
    if (gate_.update(ingress_.size(), net_.clock().now()))
        net_.metrics().count("admission.transition",
                             {{"server", config_.name},
                              {"state", gate_.shedding() ? "shed" : "admit"}});
    if (gate_.shedding() && !admitted_.contains(wire.participant)) {
        ++shed_;
        net_.metrics().count(ids_.admission_shed);
        return;
    }
    admitted_.insert(wire.participant);
    ingress_.push_back(QueuedWire{std::move(wire), origin});
    if (ingress_.size() > config_.admission.queue_capacity) {
        ingress_.pop_front();
        ++queue_dropped_;
        net_.metrics().count(ids_.queue_dropped);
    }
    net_.metrics().sample(ids_.queue_depth, static_cast<double>(ingress_.size()));
    // One drain per push; drops leave excess drains that find an empty queue.
    net_.clock().schedule_at(ready, [this] {
        if (ingress_.empty()) return;
        QueuedWire q = std::move(ingress_.front());
        ingress_.pop_front();
        forward(std::move(q.wire), q.origin);
    });
}

void CloudServer::forward(sync::AvatarWire wire, net::NodeId origin) {
    const sim::Time now = net_.clock().now();
    const std::size_t wire_size = wire.wire_bytes();

    // Failover relaying: the origin edge listed peers whose direct link is
    // dead; forward this update to them on its behalf. The forwarded copy
    // carries no relay_to of its own (one relay hop only — no loops).
    std::vector<std::uint32_t> relay_targets;
    relay_targets.swap(wire.relay_to);

    // One shared payload box backs every outbound copy of this update; the
    // fan-out below duplicates a handle, not the encoded avatar state.
    const net::Payload shared{std::move(wire)};
    const auto& w = shared.get<sync::AvatarWire>();

    for (const std::uint32_t t : relay_targets) {
        const auto target = static_cast<net::NodeId>(t);
        if (target == origin || target == node_) continue;
        charge(config_.process_out);
        ++messages_out_;
        ++relayed_failover_;
        egress_bytes_ += wire_size;
        net_.metrics().count(ids_.relayed_failover);
        avatar_tx_.send_to(target, wire_size, shared);
    }

    // Fan out to attached clients under interest management. With egress
    // aggregation on, the delta is handed to the aggregator once (per-viewer
    // selection happens per cell at flush time); otherwise per-update
    // per-viewer packets.
    if (aggregator_) {
        charge(config_.process_out);
        const math::Vec3* pos = fanout_.entity_position(w.participant);
        aggregator_->enqueue(pos != nullptr ? *pos : math::Vec3::zero(), w);
    } else {
        fanout_.due_targets_into(w.participant, now, fanout_scratch_);
        for (const net::NodeId target : fanout_scratch_) {
            charge(config_.process_out);
            ++messages_out_;
            egress_bytes_ += wire_size;
            avatar_tx_.send_to(target, wire_size, shared);
        }
    }
    // Relays and peer servers always get every update (they run their own
    // interest filtering for their local audiences). Targets the heartbeat
    // monitor considers dead are skipped — their traffic would only die on
    // the wire and inflate egress/compute accounting.
    for (const net::NodeId relay : relays_) {
        if (relay == origin) continue;
        if (!target_alive(relay)) {
            net_.metrics().count(ids_.suppressed_dead_peer);
            continue;
        }
        charge(config_.process_out);
        ++messages_out_;
        egress_bytes_ += wire_size;
        if (batcher_) {
            batcher_->enqueue(relay, w);
        } else {
            avatar_tx_.send_to(relay, wire_size, shared);
        }
    }
    // Mirror to peer MR edges only for streams that originate in the virtual
    // classroom (edge-to-edge traffic flows directly between the edges; re-
    // forwarding it here would double-deliver) — unless this cloud is the
    // sole relay of the deployment.
    if (config_.mirror_all_streams || w.source_room == config_.room) {
        for (const net::NodeId peer : peers_) {
            if (peer == origin) continue;
            if (!target_alive(peer)) {
                net_.metrics().count(ids_.suppressed_dead_peer);
                continue;
            }
            charge(config_.process_out);
            ++messages_out_;
            egress_bytes_ += wire_size;
            if (batcher_) {
                batcher_->enqueue(peer, w);
            } else {
                avatar_tx_.send_to(peer, wire_size, shared);
            }
        }
    }
}

// ------------------------------------------------------------ crash recovery

void CloudServer::make_checkpoint(recovery::ClassroomCheckpoint& cp) const {
    // The cloud's recoverable state is the virtual-room placement: which
    // participant the layout put at which seat. Client connections are not
    // checkpointed — clients notice the outage and re-attach themselves.
    for (const auto& [who, seat] : seats_)
        cp.seats.push_back(
            recovery::SeatRecord{static_cast<std::uint32_t>(seat), who});
}

void CloudServer::restore_checkpoint(const recovery::ClassroomCheckpoint& cp) {
    for (const auto& s : cp.seats) {
        seats_[s.occupant] = s.seat_index;
        fanout_.upsert_entity(s.occupant, layout_.seat_pose(s.seat_index).position);
        next_seat_ = std::max(next_seat_, static_cast<std::size_t>(s.seat_index) + 1);
    }
}

void CloudServer::on_node_state(bool up) {
    if (!up) {
        // Process crash: connections, placement and queued work are volatile.
        stop();
        for (const auto& [client, c] : clients_) {
            fanout_.remove_viewer(client);
            fanout_.remove_entity(c.who);
        }
        for (const auto& [who, seat] : seats_) fanout_.remove_entity(who);
        clients_.clear();
        seats_.clear();
        next_seat_ = 0;
        ingress_.clear();
        admitted_.clear();
        return;
    }
    const sim::Time now = net_.clock().now();
    bool restored = false;
    std::optional<std::vector<std::uint8_t>> bytes;
    if (checkpointer_ != nullptr) {
        bytes = config_.recovery.store->latest(net_.name_of(node_));
    }
    if (bytes) {
        try {
            const recovery::ClassroomCheckpoint cp = recovery::decode_checkpoint(*bytes);
            restore_checkpoint(cp);
            last_recovery_gap_ms_ = (now - cp.taken_at()).to_ms();
            ++restores_;
            restored = true;
            net_.metrics().sample(ids_.recovery_gap_ms, last_recovery_gap_ms_);
            net_.metrics().count(ids_.recovery_restore);
        } catch (const recovery::CheckpointError&) {
            // Corrupt checkpoint: fall through to a cold start.
        }
    }
    if (!restored) {
        ++cold_starts_;
        net_.metrics().count(ids_.recovery_cold_start);
    }
    start();
}

}  // namespace mvc::cloud
