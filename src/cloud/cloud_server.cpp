#include "cloud/cloud_server.hpp"

#include <algorithm>
#include <utility>

namespace mvc::cloud {

CloudServer::CloudServer(net::Network& net, net::NodeId node, CloudServerConfig config)
    : net_(net),
      node_(node),
      config_(std::move(config)),
      demux_(net, node),
      layout_(config_.layout),
      fanout_(config_.interest, config_.interest_enabled) {
    demux_.on_flow(std::string{sync::kAvatarFlow},
                   [this](net::Packet&& p) { handle_avatar_packet(std::move(p)); });
    net_.context(node_).bind<CloudServer>(this);
    if (config_.heartbeat.enabled) {
        hb_ = std::make_unique<fault::HeartbeatMonitor>(
            net_, demux_, config_.heartbeat, "cloud." + config_.name);
    }
}

std::optional<math::Pose> CloudServer::attach_client(net::NodeId client, ParticipantId who) {
    if (config_.capacity != 0 && clients_.size() >= config_.capacity) return std::nullopt;
    const std::size_t seat = next_seat_++;
    clients_[client] = Client{who, seat};
    seats_[who] = seat;
    const math::Pose pose = layout_.seat_pose(seat);
    fanout_.add_viewer(Viewer{client, who, pose.position});
    fanout_.upsert_entity(who, pose.position);
    return pose;
}

void CloudServer::detach_client(net::NodeId client) {
    const auto it = clients_.find(client);
    if (it == clients_.end()) return;
    fanout_.remove_viewer(client);
    fanout_.remove_entity(it->second.who);
    seats_.erase(it->second.who);
    clients_.erase(it);
}

void CloudServer::add_relay(net::NodeId relay) {
    if (std::find(relays_.begin(), relays_.end(), relay) == relays_.end()) {
        relays_.push_back(relay);
        if (hb_) hb_->watch(relay);
    }
}

void CloudServer::add_peer(net::NodeId peer) {
    if (std::find(peers_.begin(), peers_.end(), peer) == peers_.end()) {
        peers_.push_back(peer);
        if (hb_) hb_->watch(peer);
    }
}

void CloudServer::start() {
    if (hb_) hb_->start();
}

void CloudServer::stop() {
    if (hb_) hb_->stop();
}

bool CloudServer::target_alive(net::NodeId target) const {
    return hb_ == nullptr || hb_->alive(target);
}

math::Pose CloudServer::place_entity(ParticipantId who) {
    const auto it = seats_.find(who);
    const std::size_t seat = it != seats_.end() ? it->second : next_seat_++;
    seats_[who] = seat;
    const math::Pose pose = layout_.seat_pose(seat);
    fanout_.upsert_entity(who, pose.position);
    return pose;
}

std::optional<math::Pose> CloudServer::seat_of(ParticipantId who) const {
    const auto it = seats_.find(who);
    if (it == seats_.end()) return std::nullopt;
    return layout_.seat_pose(it->second);
}

sim::Time CloudServer::charge(sim::Time amount) {
    const sim::Time start = std::max(net_.simulator().now(), busy_until_);
    busy_until_ = start + amount;
    return busy_until_;
}

double CloudServer::mean_queue_delay_ms() const {
    if (messages_in_ == 0) return 0.0;
    return queue_delay_accum_ms_ / static_cast<double>(messages_in_);
}

void CloudServer::handle_avatar_packet(net::Packet&& p) {
    ++messages_in_;
    const sim::Time ready = charge(config_.process_in);
    queue_delay_accum_ms_ += (ready - net_.simulator().now()).to_ms();
    auto wire = p.payload.take<sync::AvatarWire>();
    const net::NodeId origin = p.src;
    net_.simulator().schedule_at(ready, [this, wire = std::move(wire), origin]() mutable {
        forward(std::move(wire), origin);
    });
}

void CloudServer::forward(sync::AvatarWire wire, net::NodeId origin) {
    const sim::Time now = net_.simulator().now();
    const std::size_t wire_size = wire.bytes.size() + 8;

    // Failover relaying: the origin edge listed peers whose direct link is
    // dead; forward this update to them on its behalf. The forwarded copy
    // carries no relay_to of its own (one relay hop only — no loops).
    std::vector<std::uint32_t> relay_targets;
    relay_targets.swap(wire.relay_to);
    for (const std::uint32_t t : relay_targets) {
        const auto target = static_cast<net::NodeId>(t);
        if (target == origin || target == node_) continue;
        charge(config_.process_out);
        ++messages_out_;
        ++relayed_failover_;
        egress_bytes_ += wire_size;
        net_.metrics().count("cloud." + config_.name + ".relayed_failover");
        net_.send(node_, target, wire_size, std::string{sync::kAvatarFlow}, wire);
    }

    // Fan out to attached clients under interest management.
    for (const net::NodeId target : fanout_.due_targets(wire.participant, now)) {
        charge(config_.process_out);
        ++messages_out_;
        egress_bytes_ += wire_size;
        net_.send(node_, target, wire_size, std::string{sync::kAvatarFlow}, wire);
    }
    // Relays and peer servers always get every update (they run their own
    // interest filtering for their local audiences). Targets the heartbeat
    // monitor considers dead are skipped — their traffic would only die on
    // the wire and inflate egress/compute accounting.
    for (const net::NodeId relay : relays_) {
        if (relay == origin) continue;
        if (!target_alive(relay)) {
            net_.metrics().count("cloud." + config_.name + ".suppressed_dead_peer");
            continue;
        }
        charge(config_.process_out);
        ++messages_out_;
        egress_bytes_ += wire_size;
        net_.send(node_, relay, wire_size, std::string{sync::kAvatarFlow}, wire);
    }
    // Mirror to peer MR edges only for streams that originate in the virtual
    // classroom (edge-to-edge traffic flows directly between the edges; re-
    // forwarding it here would double-deliver) — unless this cloud is the
    // sole relay of the deployment.
    if (config_.mirror_all_streams || wire.source_room == config_.room) {
        for (const net::NodeId peer : peers_) {
            if (peer == origin) continue;
            if (!target_alive(peer)) {
                net_.metrics().count("cloud." + config_.name + ".suppressed_dead_peer");
                continue;
            }
            charge(config_.process_out);
            ++messages_out_;
            egress_bytes_ += wire_size;
            net_.send(node_, peer, wire_size, std::string{sync::kAvatarFlow}, wire);
        }
    }
}

}  // namespace mvc::cloud
