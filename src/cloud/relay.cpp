#include "cloud/relay.hpp"

#include <utility>

namespace mvc::cloud {

RelayServer::RelayServer(net::Backend& net, net::NodeId node, RelayConfig config)
    : net_(net),
      node_(node),
      config_(std::move(config)),
      demux_(net, node),
      avatar_tx_(net.open_channel({.src = node_,
                                   .flow = std::string{sync::kAvatarFlow},
                                   .options = {.priority = net::Priority::Realtime}})),
      fanout_(config_.interest, config_.interest_enabled) {
    demux_.on_flow(std::string{sync::kAvatarFlow},
                   [this](net::Packet&& p) { handle_avatar_packet(std::move(p)); });
    demux_.on_flow(std::string{sync::kAvatarBatchFlow},
                   [this](net::Packet&& p) { handle_avatar_batch(std::move(p)); });
    if (config_.batch_interval > sim::Time::zero()) {
        batcher_ = std::make_unique<sync::WireBatcher>(net_, node_,
                                                       config_.batch_interval);
    }
    if (config_.aggregate_interval > sim::Time::zero()) {
        aggregator_ = std::make_unique<sync::CellDeltaAggregator>(
            net_, node_, config_.aggregate_interval, config_.aggregate_cell_size,
            config_.interest);
    }
    if (config_.serve_resync) {
        resync_responder_ = std::make_unique<recovery::ResyncResponder>(
            net_, demux_, [this] {
                std::vector<recovery::ResyncEntry> entries;
                const sim::Time now = net_.clock().now();
                for (const auto& [who, kf] : keyframes_) {
                    if (now - kf.captured_at > config_.resync_freshness) continue;
                    entries.push_back(recovery::ResyncEntry{who, kf.source_room,
                                                            kf.captured_at, kf.bytes});
                }
                return entries;
            });
        // No ServedFn: the relay publishes nothing of its own; senders force
        // keyframes on their side (peer-state hooks), and the cache refreshes
        // at the publishers' keyframe interval regardless.
    }
}

void RelayServer::attach_client(net::NodeId client, ParticipantId who,
                                const math::Vec3& position) {
    clients_[client] = who;
    fanout_.add_viewer(Viewer{client, who, position});
    fanout_.upsert_entity(who, position);
    if (aggregator_) aggregator_->add_viewer(client, who, position);
}

void RelayServer::detach_client(net::NodeId client) {
    const auto it = clients_.find(client);
    if (it == clients_.end()) return;
    fanout_.remove_viewer(client);
    if (aggregator_) aggregator_->remove_viewer(client);
    clients_.erase(it);
}

void RelayServer::upsert_entity(ParticipantId who, const math::Vec3& position) {
    fanout_.upsert_entity(who, position);
}

sim::Time RelayServer::charge(sim::Time amount) {
    const sim::Time start = std::max(net_.clock().now(), busy_until_);
    busy_until_ = start + amount;
    return busy_until_;
}

void RelayServer::handle_avatar_packet(net::Packet&& p) {
    const bool from_origin = p.src == origin_;
    auto wire = p.payload.take<sync::AvatarWire>();
    ingest(std::move(wire), from_origin);
}

void RelayServer::handle_avatar_batch(net::Packet&& p) {
    const bool from_origin = p.src == origin_;
    auto batch = p.payload.take<sync::AvatarBatchWire>();
    for (sync::AvatarWire& wire : batch.updates) ingest(std::move(wire), from_origin);
}

void RelayServer::ingest(sync::AvatarWire&& wire, bool from_origin) {
    ++messages_in_;
    if (config_.serve_resync && wire.keyframe) {
        keyframes_[wire.participant] =
            CachedKeyframe{wire.source_room, wire.captured_at, wire.bytes};
    }
    const sim::Time ready = charge(config_.process_in);
    net_.clock().schedule_at(ready, [this, wire = std::move(wire), from_origin] {
        fan_out(wire);
        if (!from_origin && origin_ != net::kInvalidNode) {
            charge(config_.process_out);
            ++messages_out_;
            const std::size_t size = wire.wire_bytes();
            egress_bytes_ += size;
            if (batcher_) {
                batcher_->enqueue(origin_, wire);
            } else {
                avatar_tx_.send_to(origin_, size, wire);
            }
        }
    });
}

void RelayServer::fan_out(const sync::AvatarWire& wire) {
    const sim::Time now = net_.clock().now();
    const std::size_t size = wire.wire_bytes();
    if (aggregator_) {
        // Aggregated egress: the delta is processed once here; per-viewer
        // selection happens per cell at flush time, and the per-packet
        // charges/egress bytes show up on the aggregator's batcher.
        charge(config_.process_out);
        const math::Vec3* pos = fanout_.entity_position(wire.participant);
        aggregator_->enqueue(pos != nullptr ? *pos : math::Vec3::zero(), wire);
        return;
    }
    // One shared payload box for every viewer instead of a copy per target.
    const net::Payload shared{wire};
    fanout_.due_targets_into(wire.participant, now, fanout_scratch_);
    for (const net::NodeId target : fanout_scratch_) {
        charge(config_.process_out);
        ++messages_out_;
        egress_bytes_ += size;
        avatar_tx_.send_to(target, size, shared);
    }
}

RegionalMesh::RegionalMesh(net::Network& net, const net::WanTopology& wan,
                           CloudServer& origin, net::Region origin_region,
                           RelayConfig relay_template)
    : net_(net),
      wan_(wan),
      origin_(origin),
      origin_region_(origin_region),
      relay_template_(std::move(relay_template)) {}

bool RegionalMesh::has_relay(net::Region region) const { return relays_.contains(region); }

RelayServer& RegionalMesh::relay_for(net::Region region) {
    const auto it = relays_.find(region);
    if (it != relays_.end()) return *it->second;

    RelayConfig cfg = relay_template_;
    cfg.name = "relay-" + std::string{net::region_name(region)};
    const net::NodeId node = net_.add_node(cfg.name, region);
    auto relay = std::make_unique<RelayServer>(net_, node, std::move(cfg));
    relay->set_origin(origin_.node());
    net_.connect_wan(node, origin_.node(), wan_);
    origin_.add_relay(node);

    // Entities admitted before this relay existed must be visible to its
    // interest checks too.
    for (const auto& [participant, seat_index] : seat_assignments_) {
        relay->upsert_entity(participant, layout_.seat_pose(seat_index).position);
    }
    auto& ref = *relay;
    relays_.emplace(region, std::move(relay));
    return ref;
}

math::Pose RegionalMesh::attach_client(net::NodeId client, ParticipantId who,
                                       net::Region region) {
    RelayServer& relay = relay_for(region);
    const std::size_t seat_index = next_seat_++;
    seat_assignments_[who] = seat_index;
    const math::Pose seat = layout_.seat_pose(seat_index);
    relay.attach_client(client, who, seat.position);
    for (auto& [r, rs] : relays_) rs->upsert_entity(who, seat.position);
    return seat;
}

std::uint64_t RegionalMesh::total_relay_egress() const {
    std::uint64_t total = 0;
    for (const auto& [r, rs] : relays_) total += rs->egress_bytes();
    return total;
}

}  // namespace mvc::cloud
