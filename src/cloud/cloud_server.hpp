#pragma once
// The cloud server hosting the Digital Metaverse Classroom (Figure 3: "the
// cloud server arranges the avatars of all users within an entirely virtual
// VR classroom and transmits the results back to the remote users").
//
// Responsibilities: admit remote VR clients, place them via VrLayout,
// ingest avatar streams (from edge servers and from the clients themselves),
// and fan updates out under interest management. A single-queue compute
// model charges per-message processing so saturation shows up as queueing
// delay in the scalability experiment (E3).

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cloud/fanout.hpp"
#include "cloud/vr_layout.hpp"
#include "fault/heartbeat.hpp"
#include "net/channel.hpp"
#include "recovery/admission.hpp"
#include "recovery/checkpointer.hpp"
#include "sync/aggregator.hpp"
#include "sync/batcher.hpp"
#include "sync/wire.hpp"

namespace mvc::cloud {

struct CloudServerConfig {
    ClassroomId room;
    std::string name{"cloud"};
    VrLayoutParams layout{};
    sync::InterestPolicy interest{};
    bool interest_enabled{true};
    /// Compute charged per inbound message and per forwarded copy.
    sim::Time process_in{sim::Time::us(20)};
    sim::Time process_out{sim::Time::us(5)};
    /// Hard cap on attendees (0 = unlimited).
    std::size_t capacity{0};
    /// Mirror *every* inbound stream to peer servers, not just streams that
    /// originate in this virtual room. Off in the Figure-3 topology (edges
    /// peer directly); on when the cloud is the sole relay (E11 ablation).
    bool mirror_all_streams{false};
    /// Peer/relay liveness probing; when enabled, fan-out to peers and
    /// relays currently considered dead is suppressed (counted instead).
    fault::HeartbeatParams heartbeat{};
    /// Crash recovery: periodic checkpoints of the virtual-room placement
    /// (who sits where) restored on a FaultPlan node restart.
    recovery::RecoveryParams recovery{};
    /// Overload admission control on the avatar ingress (bounded drop-oldest
    /// queue + hysteresis gate shedding never-seen late-joining streams).
    recovery::AdmissionParams admission{};
    /// Coalesce relay/peer egress into one batch packet per destination per
    /// interval (zero = per-update packets). Client fan-out stays unbatched
    /// unless egress aggregation (below) is enabled.
    sim::Time batch_interval{};
    /// Aggregate client fan-out: dirty deltas accumulate for one interval,
    /// are grouped by interest-grid cell, and each client receives one
    /// tier-selected batch per interval (sync::CellDeltaAggregator) instead
    /// of one packet per update. Zero keeps the per-update fan-out.
    sim::Time aggregate_interval{};
    /// Cell edge length for egress aggregation (metres).
    double aggregate_cell_size{8.0};
};

class CloudServer {
public:
    CloudServer(net::Backend& net, net::NodeId node, CloudServerConfig config);

    CloudServer(const CloudServer&) = delete;
    CloudServer& operator=(const CloudServer&) = delete;

    [[nodiscard]] net::NodeId node() const { return node_; }
    [[nodiscard]] net::PacketDemux& demux() { return demux_; }

    /// Admit a VR client; returns its seat pose in the virtual classroom, or
    /// nullopt when the server is at capacity.
    [[nodiscard]] std::optional<math::Pose> attach_client(net::NodeId client,
                                                          ParticipantId who);
    void detach_client(net::NodeId client);
    [[nodiscard]] std::size_t client_count() const { return clients_.size(); }

    /// Downstream relay that receives every update (regional mode).
    void add_relay(net::NodeId relay);
    /// Mirror every inbound stream to a peer server (e.g. an MR edge) —
    /// this is how VR participants appear back in the physical classrooms.
    void add_peer(net::NodeId peer);

    /// Seat pose the layout gave a participant (for clients and relays).
    [[nodiscard]] std::optional<math::Pose> seat_of(ParticipantId who) const;

    /// Give a non-client entity (e.g. a physical participant mirrored from
    /// an MR classroom) a place in the virtual room, so interest checks and
    /// remote viewers can see them.
    math::Pose place_entity(ParticipantId who);

    /// Start/stop the heartbeat prober (no-op when heartbeats are disabled).
    void start();
    void stop();

    [[nodiscard]] std::uint64_t messages_in() const { return messages_in_; }
    [[nodiscard]] std::uint64_t messages_out() const { return messages_out_; }
    [[nodiscard]] std::uint64_t egress_bytes() const { return egress_bytes_; }
    [[nodiscard]] const InterestFanout& fanout() const { return fanout_; }
    /// Mean queueing delay experienced by inbound messages (ms).
    [[nodiscard]] double mean_queue_delay_ms() const;
    /// Updates forwarded on behalf of an edge whose peer link was dead.
    [[nodiscard]] std::uint64_t relayed_for_failover() const { return relayed_failover_; }
    /// Heartbeat monitor; nullptr when heartbeats are disabled.
    [[nodiscard]] fault::HeartbeatMonitor* heartbeat() { return hb_.get(); }
    /// Relay/peer-bound batcher; nullptr when batching is off.
    [[nodiscard]] sync::WireBatcher* batcher() { return batcher_.get(); }
    /// Client-bound egress aggregator; nullptr when aggregation is off.
    [[nodiscard]] sync::CellDeltaAggregator* aggregator() { return aggregator_.get(); }

    // ----- crash recovery / overload admission ------------------------------

    [[nodiscard]] std::uint64_t restores() const { return restores_; }
    [[nodiscard]] std::uint64_t cold_starts() const { return cold_starts_; }
    [[nodiscard]] double last_recovery_gap_ms() const { return last_recovery_gap_ms_; }
    [[nodiscard]] const recovery::AdmissionGate& admission_gate() const { return gate_; }
    [[nodiscard]] std::uint64_t shed_streams() const { return shed_; }
    [[nodiscard]] std::uint64_t queue_dropped() const { return queue_dropped_; }
    [[nodiscard]] std::size_t ingress_depth() const { return ingress_.size(); }

    /// Deterministic fingerprint of the virtual-room state: client roster,
    /// placement map, message counters. Recorded per epoch so the replay
    /// divergence checker can name the node where two runs split.
    [[nodiscard]] std::uint64_t state_digest() const;

private:
    struct Client {
        ParticipantId who;
        std::size_t seat_index;
    };

    /// Telemetry handles interned once at construction; the per-update
    /// forward/admission paths record through these.
    struct MetricIds {
        sim::MetricId relayed_failover;
        sim::MetricId suppressed_dead_peer;
        sim::MetricId admission_shed;
        sim::MetricId queue_dropped;
        sim::MetricId queue_depth;
        sim::MetricId recovery_gap_ms;
        sim::MetricId recovery_restore;
        sim::MetricId recovery_cold_start;
    };

    net::Backend& net_;
    net::NodeId node_;
    CloudServerConfig config_;
    MetricIds ids_;
    net::PacketDemux demux_;
    net::Channel avatar_tx_;
    VrLayout layout_;
    InterestFanout fanout_;
    std::map<net::NodeId, Client> clients_;
    std::map<ParticipantId, std::size_t> seats_;
    std::vector<net::NodeId> relays_;
    std::vector<net::NodeId> peers_;
    std::unique_ptr<fault::HeartbeatMonitor> hb_;
    std::unique_ptr<sync::WireBatcher> batcher_;
    std::unique_ptr<sync::CellDeltaAggregator> aggregator_;
    std::vector<net::NodeId> fanout_scratch_;
    std::size_t next_seat_{0};
    sim::Time busy_until_{};
    std::uint64_t messages_in_{0};
    std::uint64_t messages_out_{0};
    std::uint64_t egress_bytes_{0};
    std::uint64_t relayed_failover_{0};
    double queue_delay_accum_ms_{0.0};

    // Crash recovery of the placement state.
    std::unique_ptr<recovery::Checkpointer> checkpointer_;
    std::uint64_t restores_{0};
    std::uint64_t cold_starts_{0};
    double last_recovery_gap_ms_{0.0};

    // Overload admission.
    struct QueuedWire {
        sync::AvatarWire wire;
        net::NodeId origin{};
    };
    recovery::AdmissionGate gate_;
    std::deque<QueuedWire> ingress_;
    std::set<ParticipantId> admitted_;
    std::uint64_t shed_{0};
    std::uint64_t queue_dropped_{0};

    void handle_avatar_packet(net::Packet&& p);
    void handle_avatar_batch(net::Packet&& p);
    void ingest(sync::AvatarWire&& wire, net::NodeId origin);
    void forward(sync::AvatarWire wire, net::NodeId origin);
    [[nodiscard]] bool target_alive(net::NodeId target) const;
    /// Queue compute; return value (completion time) used where needed.
    sim::Time charge(sim::Time amount);
    void on_node_state(bool up);
    void make_checkpoint(recovery::ClassroomCheckpoint& cp) const;
    void restore_checkpoint(const recovery::ClassroomCheckpoint& cp);
};

}  // namespace mvc::cloud
