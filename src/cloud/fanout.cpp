#include "cloud/fanout.hpp"

#include <algorithm>

namespace mvc::cloud {

InterestFanout::InterestFanout(sync::InterestPolicy policy, bool enabled)
    : policy_(std::move(policy)), enabled_(enabled) {}

void InterestFanout::upsert_entity(ParticipantId entity, const math::Vec3& position) {
    entities_[entity] = position;
}

void InterestFanout::remove_entity(ParticipantId entity) { entities_.erase(entity); }

void InterestFanout::add_viewer(const Viewer& viewer) {
    remove_viewer(viewer.node);
    viewers_.push_back(viewer);
}

void InterestFanout::remove_viewer(net::NodeId node) {
    std::erase_if(viewers_, [node](const Viewer& v) { return v.node == node; });
}

std::vector<net::NodeId> InterestFanout::due_targets(ParticipantId entity, sim::Time now) {
    std::vector<net::NodeId> out;
    const auto ent = entities_.find(entity);
    const math::Vec3 entity_pos =
        ent != entities_.end() ? ent->second : math::Vec3::zero();

    for (const Viewer& v : viewers_) {
        if (v.self == entity) continue;  // don't echo a viewer's own avatar
        if (!enabled_) {
            out.push_back(v.node);
            continue;
        }
        const double distance = (v.position - entity_pos).norm();
        const sync::InterestTier* tier = policy_.tier_for(distance);
        if (tier == nullptr) {
            ++suppressed_aoi_;
            continue;
        }
        const std::uint64_t key = pair_key(v.node, entity);
        const auto due = next_due_.find(key);
        if (due != next_due_.end() && now < due->second) {
            ++suppressed_rate_;
            continue;
        }
        next_due_[key] = now + sim::Time::seconds(1.0 / tier->update_rate_hz);
        out.push_back(v.node);
    }
    return out;
}

}  // namespace mvc::cloud
