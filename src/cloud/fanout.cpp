#include "cloud/fanout.hpp"

#include <algorithm>

namespace mvc::cloud {

namespace {
/// Grid cells sized so an 80 m replication horizon spans a handful of cells
/// per axis: coarse enough that the query walks tens of buckets, fine enough
/// that far viewers are pruned without an exact distance check.
double viewer_cell_size(const sync::InterestPolicy& policy) {
    return std::max(1.0, policy.max_range() / 2.5);
}
}  // namespace

InterestFanout::InterestFanout(sync::InterestPolicy policy, bool enabled)
    : policy_(std::move(policy)),
      enabled_(enabled),
      viewer_grid_(viewer_cell_size(policy_)) {}

void InterestFanout::upsert_entity(ParticipantId entity, const math::Vec3& position) {
    entities_[entity] = position;
}

void InterestFanout::remove_entity(ParticipantId entity) { entities_.erase(entity); }

const math::Vec3* InterestFanout::entity_position(ParticipantId entity) const {
    const auto it = entities_.find(entity);
    return it == entities_.end() ? nullptr : &it->second;
}

std::vector<Viewer>::iterator InterestFanout::viewer_at(net::NodeId node) {
    return std::lower_bound(viewers_.begin(), viewers_.end(), node,
                            [](const Viewer& v, net::NodeId n) { return v.node < n; });
}

void InterestFanout::add_viewer(const Viewer& viewer) {
    auto it = viewer_at(viewer.node);
    if (it != viewers_.end() && it->node == viewer.node)
        *it = viewer;
    else
        viewers_.insert(it, viewer);
    viewer_grid_.update(EntityId{viewer.node}, viewer.position);
}

void InterestFanout::remove_viewer(net::NodeId node) {
    auto it = viewer_at(node);
    if (it != viewers_.end() && it->node == node) viewers_.erase(it);
    viewer_grid_.remove(EntityId{node});
}

void InterestFanout::due_targets_into(ParticipantId entity, sim::Time now,
                                      std::vector<net::NodeId>& out) {
    out.clear();
    const auto ent = entities_.find(entity);
    const math::Vec3 entity_pos =
        ent != entities_.end() ? ent->second : math::Vec3::zero();

    if (!enabled_) {
        for (const Viewer& v : viewers_) {
            if (v.self == entity) continue;  // don't echo a viewer's own avatar
            out.push_back(v.node);
        }
        return;
    }

    // The grid prunes every viewer beyond the replication horizon in one
    // query; candidates come back in ascending node order.
    viewer_grid_.query_radius_into(entity_pos, policy_.max_range(), scratch_);
    suppressed_aoi_ += viewers_.size() - scratch_.size();
    for (const EntityId vid : scratch_) {
        const auto it = viewer_at(net::NodeId{vid.value()});
        if (it == viewers_.end() || it->node != vid.value()) continue;
        const Viewer& v = *it;
        if (v.self == entity) continue;
        const double distance = (v.position - entity_pos).norm();
        const sync::InterestTier* tier = policy_.tier_for(distance);
        if (tier == nullptr) {
            ++suppressed_aoi_;
            continue;
        }
        const std::uint64_t key = pair_key(v.node, entity);
        const auto due = next_due_.find(key);
        if (due != next_due_.end() && now < due->second) {
            ++suppressed_rate_;
            continue;
        }
        next_due_[key] = now + sim::Time::seconds(1.0 / tier->update_rate_hz);
        out.push_back(v.node);
    }
}

std::vector<net::NodeId> InterestFanout::due_targets(ParticipantId entity,
                                                     sim::Time now) {
    std::vector<net::NodeId> out;
    due_targets_into(entity, now, out);
    return out;
}

}  // namespace mvc::cloud
