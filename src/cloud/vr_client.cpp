#include "cloud/vr_client.hpp"

#include <cmath>
#include <utility>

namespace mvc::cloud {

VrClient::VrClient(net::Backend& net, net::NodeId node, ParticipantId who,
                   VrClientConfig config)
    : net_(net),
      node_(node),
      who_(who),
      config_(std::move(config)),
      latency_id_(net.metrics().series_id(config_.latency_metric)),
      demux_(net, node),
      avatar_tx_(net.open_channel({.src = node_,
                                   .flow = std::string{sync::kAvatarFlow},
                                   .options = {.priority = net::Priority::Realtime}})),
      codec_(config_.codec_bounds),
      rng_(net.clock().rng_stream("vrclient/" + config_.name)),
      health_(config_.path_health),
      degrade_(config_.degradation) {
    demux_.on_flow(std::string{sync::kAvatarFlow},
                   [this](net::Packet&& p) { handle_avatar_packet(std::move(p)); });
    demux_.on_flow(std::string{sync::kAvatarBatchFlow},
                   [this](net::Packet&& p) { handle_avatar_batch(std::move(p)); });
    sway_phase_ = rng_.uniform(0.0, 6.28318);
}

void VrClient::join(net::NodeId server, const math::Pose& seat) {
    server_ = server;
    seat_ = seat;
    state_.participant = who_;
    state_.root.pose = seat_;
    state_.expression.assign(avatar::kExpressionChannels, 0.0);
    joined_ = true;

    publisher_ = std::make_unique<sync::AvatarPublisher>(
        net_.clock(), codec_, config_.replication,
        [this](std::vector<std::uint8_t> bytes, bool keyframe, sim::Time captured_at) {
            sync::AvatarWire wire{who_, config_.room, keyframe, std::move(bytes),
                                  captured_at};
            wire.seq = static_cast<std::uint32_t>(++updates_sent_);
            const std::size_t size = wire.wire_bytes();
            avatar_tx_.send_to(server_, size, std::move(wire));
        });
    // Pull-mode: timestamp states at the send tick so receiver-side jitter
    // reflects the network, not the behaviour sampling grid.
    publisher_->set_provider([this]() -> std::optional<avatar::AvatarState> {
        avatar::AvatarState s = state_;
        s.captured_at = net_.clock().now();
        return s;
    });

    // Behaviour runs at half the replication tick: plenty for seated motion.
    const double rate = std::max(10.0, config_.replication.tick_rate_hz / 2.0);
    behaviour_task_ =
        net_.clock().schedule_every(sim::Time::seconds(1.0 / rate), [this] { behave(); });
    behave();  // publish an initial state before the first tick
    publisher_->start();
    publishing_ = true;

    if (config_.auto_reconnect) {
        resync_ = std::make_unique<recovery::ResyncClient>(
            net_, demux_,
            [this](const recovery::ResyncSnapshot& snap, net::NodeId) {
                apply_snapshot(snap);
            });
        reconnector_ = std::make_unique<recovery::Reconnector>(
            net_.clock(), config_.reconnect, config_.name);
        reconnector_->on_state(
            [this](recovery::LinkState, recovery::LinkState to, int) {
                // Outage declared: stop flooding a dead path. The publisher
                // resumes from apply_snapshot once a probe lands.
                if (to == recovery::LinkState::BackingOff && publishing_) {
                    publisher_->stop();
                    publishing_ = false;
                }
            });
        reconnector_->on_probe([this] { resync_->request(server_); });
        reconnector_->start();
    }
    if (config_.self_adapt) {
        adapt_task_ = net_.clock().schedule_every(sim::Time::ms(250),
                                                  [this] { adapt_tick(); });
    }
    if (config_.qoe.enabled) {
        media_ = std::make_unique<qoe::MediaClient>(net_, demux_, who_, health_,
                                                    config_.qoe);
        // Gaze follows the behaviour model's head: forward is -z in the
        // head frame, same convention as the render/comfort layers.
        media_->start(server, [this] {
            return state_.body.head.orientation.rotate({0.0, 0.0, -1.0});
        });
    }
}

void VrClient::leave() {
    if (!joined_) return;
    joined_ = false;
    publisher_->stop();
    publishing_ = false;
    net_.clock().cancel(behaviour_task_);
    if (reconnector_) reconnector_->stop();
    reconnector_.reset();
    resync_.reset();
    if (config_.self_adapt) net_.clock().cancel(adapt_task_);
    if (media_) media_->stop();
    media_.reset();
}

void VrClient::apply_snapshot(const recovery::ResyncSnapshot& snap) {
    ++resyncs_applied_;
    const sim::Time now = net_.clock().now();
    if (!config_.lightweight) {
        for (const recovery::ResyncEntry& e : snap.entries) {
            if (e.participant == who_) continue;
            auto [it, inserted] = replicas_.try_emplace(e.participant);
            if (inserted)
                it->second = std::make_unique<sync::AvatarReplica>(codec_, config_.jitter);
            it->second->ingest(e.bytes, /*keyframe=*/true, now);
        }
    }
    // Sequence baselines are discontinuous across the outage; don't let the
    // gap read as loss.
    health_.reset();
    if (reconnector_) reconnector_->probe_succeeded();
    if (!publishing_ && joined_) {
        publisher_->start();
        publisher_->request_keyframe();
        publishing_ = true;
    }
}

void VrClient::adapt_tick() {
    const sim::Time now = net_.clock().now();
    health_.roll(now);
    if (degrade_.update(health_.loss(), health_.rtt_ms(), now)) {
        publisher_->set_rate_scale(degrade_.rate_scale());
        publisher_->set_threshold_scale(degrade_.threshold_scale());
    }
}

void VrClient::behave() {
    const double t = net_.clock().now().to_seconds();
    const double dt = 2.0 / std::max(10.0, config_.replication.tick_rate_hz);

    // Seated idle sway: slow figure-of-eight of the torso around the seat.
    const double sway = config_.sway_amplitude;
    const math::Vec3 offset{sway * std::sin(0.4 * t + sway_phase_), 0.0,
                            0.5 * sway * std::sin(0.8 * t + sway_phase_)};
    const math::Vec3 prev = state_.root.pose.position;
    state_.root.pose.position = seat_.position + offset;
    state_.root.linear_velocity = (state_.root.pose.position - prev) / dt;
    // Gentle head turning toward the stage with small wander.
    const double yaw_wander = 0.15 * std::sin(0.23 * t + sway_phase_);
    state_.root.pose.orientation =
        (math::Quat::from_axis_angle(math::Vec3::unit_y(), yaw_wander) * seat_.orientation)
            .normalized();

    // Occasional hand-raise gesture lasting ~2 s.
    if (gesture_phase_ <= 0.0 && rng_.chance(config_.gesture_rate * dt)) {
        gesture_phase_ = 2.0;
    }
    const math::Quat& q = state_.root.pose.orientation;
    const math::Vec3& base = state_.root.pose.position;
    state_.body.head = {base + q.rotate({0.0, 0.65, 0.0}), q};
    state_.body.left_hand = {base + q.rotate({-0.25, 0.35, -0.20}), q};
    if (gesture_phase_ > 0.0) {
        gesture_phase_ -= dt;
        const double lift = 0.5 * std::sin(3.14159 * std::min(1.0, (2.0 - gesture_phase_)));
        state_.body.right_hand = {base + q.rotate({0.25, 0.35 + lift, -0.10}), q};
    } else {
        state_.body.right_hand = {base + q.rotate({0.25, 0.35, -0.20}), q};
    }
    state_.captured_at = net_.clock().now();
}

void VrClient::handle_avatar_packet(net::Packet&& p) {
    const auto wire = p.payload.take<sync::AvatarWire>();
    ingest_wire(wire);
}

void VrClient::handle_avatar_batch(net::Packet&& p) {
    const auto batch = p.payload.take<sync::AvatarBatchWire>();
    ++batches_received_;
    for (const sync::AvatarWire& wire : batch.updates) ingest_wire(wire);
}

void VrClient::ingest_wire(const sync::AvatarWire& wire) {
    if (wire.participant == who_) return;
    ++updates_received_;
    const sim::Time now = net_.clock().now();
    const double e2e_ms = (now - wire.captured_at).to_ms();
    net_.metrics().sample(latency_id_, e2e_ms);
    if (reconnector_) reconnector_->touch();
    // One shared estimator: the degradation ladder (self_adapt) and the QoE
    // media loop both read this PathHealth rather than keeping private
    // copies of the EWMA wiring. Avatar seq gaps only count as loss under
    // self_adapt (per-update fan-out): with aggregated egress the relay
    // deliberately suppresses updates (AOI, tier rate clocks, QoE scales),
    // so gaps are policy, not drops — the media loop observes the video
    // flow's own sequence instead (qoe::MediaClient::handle_video).
    if (config_.self_adapt)
        health_.observe(wire.participant.value(), wire.seq, e2e_ms, now);
    if (media_) media_->note_avatar(now, wire.wire_bytes());
    if (config_.lightweight) return;

    auto [it, inserted] = replicas_.try_emplace(wire.participant);
    if (inserted) {
        it->second = std::make_unique<sync::AvatarReplica>(codec_, config_.jitter);
    }
    it->second->ingest(wire.bytes, wire.keyframe, now);
}

std::optional<avatar::AvatarState> VrClient::view_of(ParticipantId peer,
                                                     sim::Time now) const {
    const auto it = replicas_.find(peer);
    if (it == replicas_.end()) return std::nullopt;
    return it->second->display(now);
}

}  // namespace mvc::cloud
