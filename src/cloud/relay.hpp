#pragma once
// Regional relay servers ("Most gaming platforms solve this issue by setting
// up regional servers"). A RelayServer sits in one region: its clients send
// updates to it instead of to the far-away origin; the relay reflects them
// to same-region viewers immediately (one metro hop) and forwards them to
// the origin, which distributes to the other relays. RegionalMesh is the
// control plane that places relays, wires the topology, and admits clients.

#include <map>
#include <memory>
#include <string>

#include "cloud/cloud_server.hpp"
#include "net/network.hpp"
#include "recovery/resync.hpp"
#include "sync/aggregator.hpp"
#include "sync/batcher.hpp"

namespace mvc::cloud {

struct RelayConfig {
    std::string name{"relay"};
    sync::InterestPolicy interest{};
    bool interest_enabled{true};
    sim::Time process_in{sim::Time::us(20)};
    sim::Time process_out{sim::Time::us(5)};
    /// Coalesce updates bound for the origin into one batch packet per
    /// interval (zero = send each update in its own packet). The win is on
    /// WAN/cross-shard paths; client fan-out is per-packet unless egress
    /// aggregation (below) is enabled.
    sim::Time batch_interval{};
    /// Aggregate client fan-out: dirty deltas accumulate for one interval,
    /// are grouped by interest-grid cell, and each client receives one
    /// tier-selected batch per interval (sync::CellDeltaAggregator) instead
    /// of one packet per update. Zero keeps the per-update fan-out.
    sim::Time aggregate_interval{};
    /// Cell edge length for egress aggregation (metres).
    double aggregate_cell_size{8.0};
    /// Serve resync snapshots to reconnecting clients from a cache of each
    /// participant's most recent keyframe update. The relay is not
    /// authoritative for any avatar, but it is the node a recovering client
    /// can reach — fresh cached keyframes cover the one-round-trip rejoin.
    bool serve_resync{false};
    /// Cached keyframes older than this are not served (stale state is
    /// worse than letting the live stream re-anchor the client).
    sim::Time resync_freshness{sim::Time::seconds(2.0)};
};

class RelayServer {
public:
    RelayServer(net::Backend& net, net::NodeId node, RelayConfig config);

    RelayServer(const RelayServer&) = delete;
    RelayServer& operator=(const RelayServer&) = delete;

    [[nodiscard]] net::NodeId node() const { return node_; }
    void set_origin(net::NodeId origin) { origin_ = origin; }
    /// The relay node's flow demux, for co-located services (qoe::QoeService)
    /// that register their own flows on this node.
    [[nodiscard]] net::PacketDemux& demux() { return demux_; }

    void attach_client(net::NodeId client, ParticipantId who, const math::Vec3& position);
    void detach_client(net::NodeId client);
    [[nodiscard]] std::size_t client_count() const { return clients_.size(); }

    /// Make the relay aware of an entity's virtual-classroom position (all
    /// entities, not just local ones — interest checks need them).
    void upsert_entity(ParticipantId who, const math::Vec3& position);

    [[nodiscard]] std::uint64_t messages_in() const { return messages_in_; }
    [[nodiscard]] std::uint64_t messages_out() const { return messages_out_; }
    [[nodiscard]] std::uint64_t egress_bytes() const { return egress_bytes_; }
    /// Origin-bound batcher; nullptr when batching is off.
    [[nodiscard]] sync::WireBatcher* batcher() { return batcher_.get(); }
    /// Client-bound egress aggregator; nullptr when aggregation is off.
    [[nodiscard]] sync::CellDeltaAggregator* aggregator() { return aggregator_.get(); }
    /// Resync responder; nullptr when serve_resync is off.
    [[nodiscard]] recovery::ResyncResponder* resync_responder() {
        return resync_responder_.get();
    }
    /// Keyframes currently cached for resync service.
    [[nodiscard]] std::size_t cached_keyframes() const { return keyframes_.size(); }

private:
    net::Backend& net_;
    net::NodeId node_;
    RelayConfig config_;
    net::PacketDemux demux_;
    net::Channel avatar_tx_;
    InterestFanout fanout_;
    std::unique_ptr<sync::WireBatcher> batcher_;
    std::unique_ptr<sync::CellDeltaAggregator> aggregator_;
    std::unique_ptr<recovery::ResyncResponder> resync_responder_;
    /// Latest keyframe seen per participant (bytes + capture time), the
    /// source for resync snapshots.
    struct CachedKeyframe {
        ClassroomId source_room;
        sim::Time captured_at{};
        std::vector<std::uint8_t> bytes;
    };
    std::map<ParticipantId, CachedKeyframe> keyframes_;
    net::NodeId origin_{net::kInvalidNode};
    std::map<net::NodeId, ParticipantId> clients_;
    std::vector<net::NodeId> fanout_scratch_;
    sim::Time busy_until_{};
    std::uint64_t messages_in_{0};
    std::uint64_t messages_out_{0};
    std::uint64_t egress_bytes_{0};

    void handle_avatar_packet(net::Packet&& p);
    void handle_avatar_batch(net::Packet&& p);
    void ingest(sync::AvatarWire&& wire, bool from_origin);
    void fan_out(const sync::AvatarWire& wire);
    sim::Time charge(sim::Time amount);
};

/// Control plane for the regional deployment: one relay per region with
/// clients, all feeding a single origin CloudServer.
class RegionalMesh {
public:
    RegionalMesh(net::Network& net, const net::WanTopology& wan, CloudServer& origin,
                 net::Region origin_region, RelayConfig relay_template = {});

    /// Relay serving `region`, created and wired on first use.
    RelayServer& relay_for(net::Region region);
    [[nodiscard]] bool has_relay(net::Region region) const;

    /// Admit a client in `region`: seats them in the shared VR layout,
    /// attaches them to their regional relay, and propagates the entity
    /// position to every relay. Returns the seat pose. The client's network
    /// node must already be connected to the relay's node by the caller
    /// (RegionalMesh::relay_for exposes the node id).
    math::Pose attach_client(net::NodeId client, ParticipantId who, net::Region region);

    [[nodiscard]] std::size_t relay_count() const { return relays_.size(); }
    [[nodiscard]] std::uint64_t total_relay_egress() const;

private:
    net::Network& net_;
    const net::WanTopology& wan_;
    CloudServer& origin_;
    net::Region origin_region_;
    RelayConfig relay_template_;
    VrLayout layout_;
    std::size_t next_seat_{0};
    std::map<ParticipantId, std::size_t> seat_assignments_;
    std::map<net::Region, std::unique_ptr<RelayServer>> relays_;
};

}  // namespace mvc::cloud
