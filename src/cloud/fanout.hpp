#pragma once
// Interest-gated fan-out bookkeeping shared by the cloud server and the
// regional relays: which attached viewers should receive an update for a
// given entity right now, at which tier rate, given the VR-classroom seat
// geometry.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/packet.hpp"
#include "sync/interest.hpp"

namespace mvc::cloud {

struct Viewer {
    net::NodeId node{net::kInvalidNode};
    ParticipantId self;
    math::Vec3 position;
};

class InterestFanout {
public:
    explicit InterestFanout(sync::InterestPolicy policy = {}, bool enabled = true);

    void set_enabled(bool enabled) { enabled_ = enabled; }
    [[nodiscard]] bool enabled() const { return enabled_; }

    void upsert_entity(ParticipantId entity, const math::Vec3& position);
    void remove_entity(ParticipantId entity);

    void add_viewer(const Viewer& viewer);
    void remove_viewer(net::NodeId node);
    [[nodiscard]] std::size_t viewer_count() const { return viewers_.size(); }

    /// Viewers due to receive an update of `entity` at time `now`; advances
    /// their per-pair rate clocks. When interest management is disabled every
    /// viewer (except the entity itself) is always due — the E4 baseline.
    [[nodiscard]] std::vector<net::NodeId> due_targets(ParticipantId entity, sim::Time now);

    [[nodiscard]] std::uint64_t suppressed_by_aoi() const { return suppressed_aoi_; }
    [[nodiscard]] std::uint64_t suppressed_by_rate() const { return suppressed_rate_; }

private:
    sync::InterestPolicy policy_;
    bool enabled_;
    std::unordered_map<ParticipantId, math::Vec3> entities_;
    std::vector<Viewer> viewers_;
    /// (viewer node, entity) -> next time an update is due.
    std::unordered_map<std::uint64_t, sim::Time> next_due_;
    std::uint64_t suppressed_aoi_{0};
    std::uint64_t suppressed_rate_{0};

    static std::uint64_t pair_key(net::NodeId viewer, ParticipantId entity) {
        return (static_cast<std::uint64_t>(viewer) << 32) | entity.value();
    }
};

}  // namespace mvc::cloud
