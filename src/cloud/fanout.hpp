#pragma once
// Interest-gated fan-out bookkeeping shared by the cloud server and the
// regional relays: which attached viewers should receive an update for a
// given entity right now, at which tier rate, given the VR-classroom seat
// geometry. Viewers are indexed in a sync::InterestGrid, so the per-update
// question "which viewers are in replication range" is a spatial query into
// a caller-owned scratch buffer instead of a linear scan — allocation-free
// in steady state via due_targets_into.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/packet.hpp"
#include "sync/interest.hpp"

namespace mvc::cloud {

struct Viewer {
    net::NodeId node{net::kInvalidNode};
    ParticipantId self;
    math::Vec3 position;
};

class InterestFanout {
public:
    explicit InterestFanout(sync::InterestPolicy policy = {}, bool enabled = true);

    void set_enabled(bool enabled) { enabled_ = enabled; }
    [[nodiscard]] bool enabled() const { return enabled_; }

    void upsert_entity(ParticipantId entity, const math::Vec3& position);
    void remove_entity(ParticipantId entity);
    [[nodiscard]] const math::Vec3* entity_position(ParticipantId entity) const;

    void add_viewer(const Viewer& viewer);
    void remove_viewer(net::NodeId node);
    [[nodiscard]] std::size_t viewer_count() const { return viewers_.size(); }

    /// Viewers due to receive an update of `entity` at time `now`, written
    /// into `out` (cleared first) in ascending node order; advances their
    /// per-pair rate clocks. When interest management is disabled every
    /// viewer (except the entity itself) is always due — the E4 baseline.
    void due_targets_into(ParticipantId entity, sim::Time now,
                          std::vector<net::NodeId>& out);
    [[nodiscard]] std::vector<net::NodeId> due_targets(ParticipantId entity,
                                                       sim::Time now);

    [[nodiscard]] std::uint64_t suppressed_by_aoi() const { return suppressed_aoi_; }
    [[nodiscard]] std::uint64_t suppressed_by_rate() const { return suppressed_rate_; }

private:
    sync::InterestPolicy policy_;
    bool enabled_;
    std::unordered_map<ParticipantId, math::Vec3> entities_;
    std::vector<Viewer> viewers_;  // sorted by node id
    /// Spatial index over viewer positions, keyed by EntityId{node}.
    sync::InterestGrid viewer_grid_;
    std::vector<EntityId> scratch_;
    /// (viewer node, entity) -> next time an update is due.
    std::unordered_map<std::uint64_t, sim::Time> next_due_;
    std::uint64_t suppressed_aoi_{0};
    std::uint64_t suppressed_rate_{0};

    static std::uint64_t pair_key(net::NodeId viewer, ParticipantId entity) {
        return (static_cast<std::uint64_t>(viewer) << 32) | entity.value();
    }
    [[nodiscard]] std::vector<Viewer>::iterator viewer_at(net::NodeId node);
};

}  // namespace mvc::cloud
