#pragma once
// A remote VR attendee of the Digital Metaverse Classroom: HKUST students
// who "cannot attend the physical lecture due to unexpected circumstances"
// or outside auditors. Owns a behaviour model (seated idle motion with
// occasional gestures), publishes its avatar stream to its server (cloud
// origin or regional relay), and reconstructs the avatars forwarded to it.
//
// `lightweight` mode skips per-peer replicas and only records end-to-end
// latency — used to scale the E3 benchmark to thousands of clients.

#include <map>
#include <memory>
#include <string>

#include "fault/degradation.hpp"
#include "net/channel.hpp"
#include "qoe/media_client.hpp"
#include "recovery/reconnect.hpp"
#include "recovery/resync.hpp"
#include "sync/replication.hpp"
#include "sync/wire.hpp"

namespace mvc::cloud {

struct VrClientConfig {
    std::string name{"vr-client"};
    ClassroomId room;  // the virtual classroom id
    sync::ReplicationParams replication{};
    avatar::CodecBounds codec_bounds{};
    sync::JitterBufferParams jitter{};
    /// Amplitude of the idle sway behaviour (metres).
    double sway_amplitude{0.06};
    /// Probability per second of starting a hand-raise gesture.
    double gesture_rate{0.05};
    bool lightweight{false};
    /// Metric series name for end-to-end latency samples.
    std::string latency_metric{"cloud.e2e_ms"};
    /// Session reconnect hardening: when true the client watches its
    /// downstream for liveness, pauses publishing during an outage, probes
    /// the server with backoff-spaced resync requests, and resumes (with a
    /// forced keyframe) once a snapshot lands. Off by default — healthy
    /// setups pay nothing.
    bool auto_reconnect{false};
    recovery::ReconnectParams reconnect{};
    /// Self-adaptation: when true the client drives its own degradation
    /// ladder from the observed per-path loss (wire sequence gaps) and e2e
    /// delay, scaling its publisher down under adversity.
    bool self_adapt{false};
    fault::DegradationParams degradation{};
    fault::PathHealthParams path_health{};
    /// Adaptive streaming + QoE control loop (qoe::MediaClient), enabled via
    /// qoe.enabled. Feeds on the same PathHealth estimator as self_adapt —
    /// one congestion signal, two actuators (publisher ladder, video rung).
    qoe::MediaClientConfig qoe{};
};

class VrClient {
public:
    VrClient(net::Backend& net, net::NodeId node, ParticipantId who, VrClientConfig config);

    VrClient(const VrClient&) = delete;
    VrClient& operator=(const VrClient&) = delete;

    [[nodiscard]] net::NodeId node() const { return node_; }
    [[nodiscard]] ParticipantId participant() const { return who_; }

    /// Join the classroom: avatar anchored at `seat`, updates sent to
    /// `server`. Starts behaviour + publishing.
    void join(net::NodeId server, const math::Pose& seat);
    void leave();

    /// Reconstructed view of a peer (nullopt in lightweight mode or unknown).
    [[nodiscard]] std::optional<avatar::AvatarState> view_of(ParticipantId peer,
                                                             sim::Time now) const;
    [[nodiscard]] std::size_t visible_peers() const { return replicas_.size(); }
    [[nodiscard]] std::uint64_t updates_received() const { return updates_received_; }
    /// Coalesced batches received on kAvatarBatchFlow (aggregated egress).
    [[nodiscard]] std::uint64_t batches_received() const { return batches_received_; }
    [[nodiscard]] std::uint64_t updates_sent() const { return updates_sent_; }
    /// Ground-truth state of this client's own avatar (for error metrics).
    [[nodiscard]] const avatar::AvatarState& true_state() const { return state_; }

    /// Reconnect machinery; nullptr unless auto_reconnect is on and joined.
    [[nodiscard]] recovery::Reconnector* reconnector() { return reconnector_.get(); }
    [[nodiscard]] const recovery::Reconnector* reconnector() const {
        return reconnector_.get();
    }
    /// Snapshots applied through the reconnect path.
    [[nodiscard]] std::uint64_t resyncs_applied() const { return resyncs_applied_; }
    /// Observed inbound path health (loss from wire seq gaps, EWMA delay).
    [[nodiscard]] const fault::PathHealth& path_health() const { return health_; }
    /// Current self-adaptation level (0 = full fidelity).
    [[nodiscard]] int degradation_level() const { return degrade_.level(); }
    /// QoE media loop; nullptr unless config.qoe.enabled and joined.
    [[nodiscard]] qoe::MediaClient* media() { return media_.get(); }
    [[nodiscard]] const qoe::MediaClient* media() const { return media_.get(); }

private:
    net::Backend& net_;
    net::NodeId node_;
    ParticipantId who_;
    VrClientConfig config_;
    /// Pre-resolved handle for config_.latency_metric (one sample per
    /// received avatar update — the hottest client-side record).
    sim::MetricId latency_id_;
    net::PacketDemux demux_;
    net::Channel avatar_tx_;
    avatar::AvatarCodec codec_;
    std::unique_ptr<sync::AvatarPublisher> publisher_;
    std::map<ParticipantId, std::unique_ptr<sync::AvatarReplica>> replicas_;
    sim::Rng rng_;
    net::NodeId server_{net::kInvalidNode};
    math::Pose seat_;
    avatar::AvatarState state_;
    sim::EventHandle behaviour_task_;
    bool joined_{false};
    double gesture_phase_{0.0};  // > 0 while a hand-raise is in progress
    double sway_phase_{0.0};
    std::uint64_t updates_received_{0};
    std::uint64_t updates_sent_{0};
    std::uint64_t batches_received_{0};

    // Reconnect + self-adaptation (config-gated; see VrClientConfig).
    std::unique_ptr<recovery::Reconnector> reconnector_;
    std::unique_ptr<recovery::ResyncClient> resync_;
    fault::PathHealth health_;
    fault::DegradationPolicy degrade_;
    std::unique_ptr<qoe::MediaClient> media_;
    sim::EventHandle adapt_task_;
    bool publishing_{false};
    std::uint64_t resyncs_applied_{0};

    void behave();
    void handle_avatar_packet(net::Packet&& p);
    void handle_avatar_batch(net::Packet&& p);
    void ingest_wire(const sync::AvatarWire& wire);
    void apply_snapshot(const recovery::ResyncSnapshot& snap);
    void adapt_tick();
};

}  // namespace mvc::cloud
