#include "cloud/vr_layout.hpp"

#include <cmath>
#include <stdexcept>

namespace mvc::cloud {

VrLayout::VrLayout(VrLayoutParams params) : params_(params) {
    if (params_.first_ring_seats == 0)
        throw std::invalid_argument("VrLayout: first ring needs seats");
    if (params_.arc <= 0.0) throw std::invalid_argument("VrLayout: arc must be positive");
}

std::size_t VrLayout::ring_of(std::size_t attendee_index) const {
    std::size_t ring = 0;
    std::size_t ring_capacity = params_.first_ring_seats;
    std::size_t offset = attendee_index;
    while (offset >= ring_capacity) {
        offset -= ring_capacity;
        ++ring;
        ring_capacity += params_.seats_per_ring_increment;
    }
    return ring;
}

std::size_t VrLayout::capacity(std::size_t rings) const {
    std::size_t total = 0;
    std::size_t ring_capacity = params_.first_ring_seats;
    for (std::size_t r = 0; r < rings; ++r) {
        total += ring_capacity;
        ring_capacity += params_.seats_per_ring_increment;
    }
    return total;
}

math::Pose VrLayout::seat_pose(std::size_t attendee_index) const {
    // Locate ring and index within the ring.
    std::size_t ring = 0;
    std::size_t ring_capacity = params_.first_ring_seats;
    std::size_t offset = attendee_index;
    while (offset >= ring_capacity) {
        offset -= ring_capacity;
        ++ring;
        ring_capacity += params_.seats_per_ring_increment;
    }

    const double radius =
        params_.first_ring_radius + static_cast<double>(ring) * params_.ring_spacing;
    // Spread seats across the arc, centred on the stage axis (+z side).
    const double frac = ring_capacity > 1
                            ? static_cast<double>(offset) /
                                  static_cast<double>(ring_capacity - 1)
                            : 0.5;
    const double angle = -params_.arc / 2.0 + frac * params_.arc;

    math::Pose p;
    p.position = {radius * std::sin(angle), 0.0, radius * std::cos(angle)};
    // Face the stage at the origin: forward (-z in local frame) must point
    // from the seat toward the origin => yaw so that -z maps to -position.
    const double yaw = std::atan2(p.position.x, p.position.z);
    p.orientation = math::Quat::from_axis_angle(math::Vec3::unit_y(), yaw);
    return p;
}

}  // namespace mvc::cloud
