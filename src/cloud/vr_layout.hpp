#pragma once
// Layout manager for the fully virtual VR classroom: places remote
// attendees in concentric amphitheatre arcs facing the virtual stage, with
// an expandable capacity (new rings appear as attendance grows).

#include <vector>

#include "common/ids.hpp"
#include "math/pose.hpp"

namespace mvc::cloud {

struct VrLayoutParams {
    /// Seats in the innermost arc.
    std::size_t first_ring_seats{12};
    /// Radius of the innermost arc (metres from the stage).
    double first_ring_radius{4.0};
    /// Radial spacing between rings.
    double ring_spacing{1.6};
    /// Additional seats per successive ring.
    std::size_t seats_per_ring_increment{6};
    /// Arc swept by each ring (radians); pi = half circle facing the stage.
    double arc{3.14159265358979};
};

class VrLayout {
public:
    explicit VrLayout(VrLayoutParams params = {});

    /// Deterministic seat pose for the i-th attendee (0-based). Position on
    /// the appropriate ring, oriented to face the stage at the origin.
    [[nodiscard]] math::Pose seat_pose(std::size_t attendee_index) const;

    /// Ring index an attendee lands on.
    [[nodiscard]] std::size_t ring_of(std::size_t attendee_index) const;

    /// Capacity of the first `rings` rings combined.
    [[nodiscard]] std::size_t capacity(std::size_t rings) const;

    [[nodiscard]] const VrLayoutParams& params() const { return params_; }

private:
    VrLayoutParams params_;
};

}  // namespace mvc::cloud
