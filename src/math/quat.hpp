#pragma once
// Unit quaternion for avatar/headset orientation. Convention: w + xi + yj + zk,
// right-handed, radians everywhere.

#include <algorithm>
#include <cmath>
#include <iosfwd>

#include "math/vec3.hpp"

namespace mvc::math {

struct Quat {
    double w{1.0};
    double x{0.0};
    double y{0.0};
    double z{0.0};

    constexpr Quat() = default;
    constexpr Quat(double w_, double x_, double y_, double z_)
        : w(w_), x(x_), y(y_), z(z_) {}

    friend constexpr bool operator==(const Quat&, const Quat&) = default;

    /// Quaternion from rotation of `angle_rad` around (normalized) `axis`.
    [[nodiscard]] static Quat from_axis_angle(const Vec3& axis, double angle_rad) {
        const Vec3 u = axis.normalized();
        const double h = 0.5 * angle_rad;
        const double s = std::sin(h);
        return {std::cos(h), u.x * s, u.y * s, u.z * s};
    }

    /// Yaw (about +y, heading) / pitch (about +x) / roll (about +z) in radians.
    [[nodiscard]] static Quat from_yaw_pitch_roll(double yaw, double pitch, double roll) {
        return from_axis_angle(Vec3::unit_y(), yaw) *
               from_axis_angle(Vec3::unit_x(), pitch) *
               from_axis_angle(Vec3::unit_z(), roll);
    }

    [[nodiscard]] static constexpr Quat identity() { return {}; }

    [[nodiscard]] constexpr double dot(const Quat& o) const {
        return w * o.w + x * o.x + y * o.y + z * o.z;
    }
    [[nodiscard]] constexpr double norm_sq() const { return dot(*this); }
    [[nodiscard]] double norm() const { return std::sqrt(norm_sq()); }

    [[nodiscard]] Quat normalized() const {
        const double n = norm();
        if (n <= 0.0) return identity();
        return {w / n, x / n, y / n, z / n};
    }

    [[nodiscard]] constexpr Quat conjugate() const { return {w, -x, -y, -z}; }

    /// Inverse; for unit quaternions equal to the conjugate.
    [[nodiscard]] Quat inverse() const {
        const double n2 = norm_sq();
        if (n2 <= 0.0) return identity();
        const Quat c = conjugate();
        return {c.w / n2, c.x / n2, c.y / n2, c.z / n2};
    }

    /// Hamilton product: applies `o` first, then *this.
    friend constexpr Quat operator*(const Quat& a, const Quat& b) {
        return {a.w * b.w - a.x * b.x - a.y * b.y - a.z * b.z,
                a.w * b.x + a.x * b.w + a.y * b.z - a.z * b.y,
                a.w * b.y - a.x * b.z + a.y * b.w + a.z * b.x,
                a.w * b.z + a.x * b.y - a.y * b.x + a.z * b.w};
    }

    /// Rotate a vector by this (unit) quaternion.
    [[nodiscard]] Vec3 rotate(const Vec3& v) const {
        // v' = q * (0, v) * q^-1, expanded for efficiency.
        const Vec3 u{x, y, z};
        const Vec3 t = 2.0 * u.cross(v);
        return v + w * t + u.cross(t);
    }

    /// Angle of the rotation this quaternion encodes, in [0, pi].
    [[nodiscard]] double angle() const {
        const double c = std::clamp(std::abs(normalized().w), 0.0, 1.0);
        return 2.0 * std::acos(c);
    }

    /// Heading extracted by rotating -z and projecting onto the xz plane.
    [[nodiscard]] double yaw() const {
        const Vec3 fwd = rotate({0.0, 0.0, -1.0});
        return std::atan2(-fwd.x, -fwd.z);
    }
};

/// Angular distance between two orientations in radians, in [0, pi].
[[nodiscard]] inline double angular_distance(const Quat& a, const Quat& b) {
    const double d = std::clamp(std::abs(a.normalized().dot(b.normalized())), 0.0, 1.0);
    return 2.0 * std::acos(d);
}

/// Spherical linear interpolation on the shortest arc; t in [0,1].
[[nodiscard]] Quat slerp(const Quat& a, const Quat& b, double t);

[[nodiscard]] inline bool approx_equal(const Quat& a, const Quat& b, double eps = 1e-9) {
    // q and -q represent the same rotation.
    return angular_distance(a, b) <= eps;
}

std::ostream& operator<<(std::ostream& os, const Quat& q);

}  // namespace mvc::math
