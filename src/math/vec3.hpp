#pragma once
// Minimal 3-D vector used throughout the classroom pipeline (poses, seat
// positions, navigation). Value type: trivially copyable, constexpr-friendly.

#include <cmath>
#include <cstddef>
#include <iosfwd>

namespace mvc::math {

struct Vec3 {
    double x{0.0};
    double y{0.0};
    double z{0.0};

    constexpr Vec3() = default;
    constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

    constexpr Vec3& operator+=(const Vec3& o) {
        x += o.x;
        y += o.y;
        z += o.z;
        return *this;
    }
    constexpr Vec3& operator-=(const Vec3& o) {
        x -= o.x;
        y -= o.y;
        z -= o.z;
        return *this;
    }
    constexpr Vec3& operator*=(double s) {
        x *= s;
        y *= s;
        z *= s;
        return *this;
    }
    constexpr Vec3& operator/=(double s) {
        x /= s;
        y /= s;
        z /= s;
        return *this;
    }

    friend constexpr Vec3 operator+(Vec3 a, const Vec3& b) { return a += b; }
    friend constexpr Vec3 operator-(Vec3 a, const Vec3& b) { return a -= b; }
    friend constexpr Vec3 operator*(Vec3 a, double s) { return a *= s; }
    friend constexpr Vec3 operator*(double s, Vec3 a) { return a *= s; }
    friend constexpr Vec3 operator/(Vec3 a, double s) { return a /= s; }
    friend constexpr Vec3 operator-(const Vec3& a) { return {-a.x, -a.y, -a.z}; }

    friend constexpr bool operator==(const Vec3&, const Vec3&) = default;

    [[nodiscard]] constexpr double dot(const Vec3& o) const {
        return x * o.x + y * o.y + z * o.z;
    }
    [[nodiscard]] constexpr Vec3 cross(const Vec3& o) const {
        return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
    }
    [[nodiscard]] constexpr double norm_sq() const { return dot(*this); }
    [[nodiscard]] double norm() const { return std::sqrt(norm_sq()); }

    /// Unit vector in the same direction; returns zero vector for zero input.
    [[nodiscard]] Vec3 normalized() const {
        const double n = norm();
        return n > 0.0 ? *this / n : Vec3{};
    }

    [[nodiscard]] double distance_to(const Vec3& o) const { return (*this - o).norm(); }

    static constexpr Vec3 zero() { return {}; }
    static constexpr Vec3 unit_x() { return {1.0, 0.0, 0.0}; }
    static constexpr Vec3 unit_y() { return {0.0, 1.0, 0.0}; }
    static constexpr Vec3 unit_z() { return {0.0, 0.0, 1.0}; }
};

/// Component-wise linear interpolation, t in [0,1] (not clamped).
[[nodiscard]] constexpr Vec3 lerp(const Vec3& a, const Vec3& b, double t) {
    return a + (b - a) * t;
}

/// True when every component differs by at most eps.
[[nodiscard]] inline bool approx_equal(const Vec3& a, const Vec3& b, double eps = 1e-9) {
    return std::abs(a.x - b.x) <= eps && std::abs(a.y - b.y) <= eps &&
           std::abs(a.z - b.z) <= eps;
}

std::ostream& operator<<(std::ostream& os, const Vec3& v);

}  // namespace mvc::math
