#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "math/pose.hpp"
#include "math/quat.hpp"
#include "math/stats.hpp"
#include "math/vec3.hpp"

namespace mvc::math {

std::ostream& operator<<(std::ostream& os, const Vec3& v) {
    return os << '(' << v.x << ", " << v.y << ", " << v.z << ')';
}

std::ostream& operator<<(std::ostream& os, const Quat& q) {
    return os << '[' << q.w << "; " << q.x << ", " << q.y << ", " << q.z << ']';
}

std::ostream& operator<<(std::ostream& os, const Pose& p) {
    return os << "{pos=" << p.position << " rot=" << p.orientation << '}';
}

Quat slerp(const Quat& a_in, const Quat& b_in, double t) {
    Quat a = a_in.normalized();
    Quat b = b_in.normalized();
    double cos_omega = a.dot(b);
    // Take the shortest arc: q and -q are the same rotation.
    if (cos_omega < 0.0) {
        b = {-b.w, -b.x, -b.y, -b.z};
        cos_omega = -cos_omega;
    }
    // Nearly parallel: fall back to nlerp to avoid division by sin(~0).
    if (cos_omega > 0.9995) {
        const Quat r{a.w + (b.w - a.w) * t, a.x + (b.x - a.x) * t,
                     a.y + (b.y - a.y) * t, a.z + (b.z - a.z) * t};
        return r.normalized();
    }
    const double omega = std::acos(std::clamp(cos_omega, -1.0, 1.0));
    const double sin_omega = std::sin(omega);
    const double ka = std::sin((1.0 - t) * omega) / sin_omega;
    const double kb = std::sin(t * omega) / sin_omega;
    return Quat{ka * a.w + kb * b.w, ka * a.x + kb * b.x, ka * a.y + kb * b.y,
                ka * a.z + kb * b.z}
        .normalized();
}

Pose interpolate(const Pose& a, const Pose& b, double t) {
    return {lerp(a.position, b.position, t), slerp(a.orientation, b.orientation, t)};
}

double pose_error(const Pose& a, const Pose& b, double angle_weight) {
    return a.position.distance_to(b.position) +
           angle_weight * angular_distance(a.orientation, b.orientation);
}

KinematicState KinematicState::extrapolate(double dt) const {
    KinematicState out = *this;
    out.pose.position = pose.position + linear_velocity * dt;
    const double w = angular_velocity.norm();
    if (w > 1e-12) {
        const Quat spin = Quat::from_axis_angle(angular_velocity / w, w * dt);
        out.pose.orientation = (spin * pose.orientation).normalized();
    }
    return out;
}

// ---------------------------------------------------------------- RunningStats

void RunningStats::add(double x) {
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = na + nb;
    mean_ += delta * nb / n;
    m2_ += other.m2_ + delta * delta * na * nb / n;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
    if (count_ < 2) return 0.0;
    return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

// ---------------------------------------------------------------- SampleSeries

void SampleSeries::ensure_sorted() const {
    if (sorted_valid_ && sorted_.size() == samples_.size()) return;
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
}

double SampleSeries::mean() const {
    if (samples_.empty()) return 0.0;
    double s = 0.0;
    for (double x : samples_) s += x;
    return s / static_cast<double>(samples_.size());
}

double SampleSeries::min() const {
    ensure_sorted();
    return sorted_.empty() ? 0.0 : sorted_.front();
}

double SampleSeries::max() const {
    ensure_sorted();
    return sorted_.empty() ? 0.0 : sorted_.back();
}

double SampleSeries::quantile(double q) const {
    ensure_sorted();
    return quantile_of(sorted_, q);
}

double quantile_of(std::span<const double> xs, double q) {
    if (xs.empty()) return 0.0;
    if (xs.size() == 1) return xs[0];
    q = std::clamp(q, 0.0, 1.0);
    // Assumes xs sorted when called from SampleSeries; sort a copy otherwise.
    std::vector<double> tmp;
    const double* data = xs.data();
    if (!std::is_sorted(xs.begin(), xs.end())) {
        tmp.assign(xs.begin(), xs.end());
        std::sort(tmp.begin(), tmp.end());
        data = tmp.data();
    }
    const double idx = q * static_cast<double>(xs.size() - 1);
    const auto lo = static_cast<std::size_t>(idx);
    const std::size_t hi = std::min(lo + 1, xs.size() - 1);
    const double frac = idx - static_cast<double>(lo);
    return data[lo] + (data[hi] - data[lo]) * frac;
}

// ------------------------------------------------------------------- Histogram

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
    if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must exceed lo");
    if (bins == 0) throw std::invalid_argument("Histogram: need at least one bin");
}

void Histogram::add(double x) {
    std::size_t i = 0;
    if (x >= hi_) {
        i = counts_.size() - 1;
    } else if (x > lo_) {
        i = static_cast<std::size_t>((x - lo_) / width_);
        i = std::min(i, counts_.size() - 1);
    }
    ++counts_[i];
    ++total_;
}

double Histogram::bin_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }
double Histogram::bin_hi(std::size_t i) const { return bin_lo(i) + width_; }

double Histogram::cdf(double x) const {
    if (total_ == 0) return 0.0;
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (bin_hi(i) <= x) {
            acc += counts_[i];
        } else {
            break;
        }
    }
    return static_cast<double>(acc) / static_cast<double>(total_);
}

std::string Histogram::to_string() const {
    std::ostringstream os;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (counts_[i] == 0) continue;
        os << bin_lo(i) << ".." << bin_hi(i) << ": " << counts_[i] << "  ";
    }
    return os.str();
}

// ------------------------------------------------------------------------ Ewma

Ewma::Ewma(double alpha) : alpha_(alpha) {
    if (alpha <= 0.0 || alpha > 1.0) throw std::invalid_argument("Ewma: alpha in (0,1]");
}

void Ewma::add(double x) {
    if (!initialized_) {
        value_ = x;
        initialized_ = true;
    } else {
        value_ += alpha_ * (x - value_);
    }
}

void Ewma::reset() {
    value_ = 0.0;
    initialized_ = false;
}

}  // namespace mvc::math
