#pragma once
// Rigid-body pose (position + orientation) plus kinematic state used for
// dead-reckoning of avatars between network updates.

#include <iosfwd>

#include "math/quat.hpp"
#include "math/vec3.hpp"

namespace mvc::math {

struct Pose {
    Vec3 position;
    Quat orientation;

    friend constexpr bool operator==(const Pose&, const Pose&) = default;

    /// Compose: apply `local` in the frame of *this (this ∘ local).
    [[nodiscard]] Pose compose(const Pose& local) const {
        return {position + orientation.rotate(local.position),
                (orientation * local.orientation).normalized()};
    }

    /// Express a world-space pose in the frame of *this.
    [[nodiscard]] Pose to_local(const Pose& world) const {
        const Quat inv = orientation.inverse();
        return {inv.rotate(world.position - position),
                (inv * world.orientation).normalized()};
    }

    static constexpr Pose identity() { return {}; }
};

/// Interpolate position linearly and orientation along the shortest arc.
[[nodiscard]] Pose interpolate(const Pose& a, const Pose& b, double t);

/// Combined pose error: positional distance plus weighted angular distance.
/// `angle_weight` converts radians into metre-equivalents (default: 0.5 m
/// per radian, roughly a shoulder-width of visual error at arm's length).
[[nodiscard]] double pose_error(const Pose& a, const Pose& b, double angle_weight = 0.5);

/// Kinematic state: pose + first derivatives, timestamped by the caller.
struct KinematicState {
    Pose pose;
    Vec3 linear_velocity;
    Vec3 angular_velocity;  // axis * rad/s

    /// Constant-velocity extrapolation `dt` seconds ahead (dead reckoning).
    [[nodiscard]] KinematicState extrapolate(double dt) const;
};

std::ostream& operator<<(std::ostream& os, const Pose& p);

}  // namespace mvc::math
