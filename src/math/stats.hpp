#pragma once
// Small statistics toolkit used by the telemetry layer and every benchmark:
// streaming summaries, exact percentiles over retained samples, fixed-bin
// histograms, and exponentially weighted moving averages.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace mvc::math {

/// Streaming count/mean/variance/min/max without retaining samples
/// (Welford's online algorithm).
class RunningStats {
public:
    void add(double x);
    void merge(const RunningStats& other);
    void reset();

    [[nodiscard]] std::size_t count() const { return count_; }
    [[nodiscard]] bool empty() const { return count_ == 0; }
    [[nodiscard]] double mean() const { return mean_; }
    /// Population variance; 0 for fewer than 2 samples.
    [[nodiscard]] double variance() const;
    [[nodiscard]] double stddev() const;
    [[nodiscard]] double min() const { return min_; }
    [[nodiscard]] double max() const { return max_; }
    [[nodiscard]] double sum() const { return mean_ * static_cast<double>(count_); }

private:
    std::size_t count_{0};
    double mean_{0.0};
    double m2_{0.0};
    double min_{0.0};
    double max_{0.0};
};

/// Retains every sample; supports exact quantiles. Used for latency series
/// where p99 fidelity matters more than memory.
class SampleSeries {
public:
    void add(double x) { samples_.push_back(x); }
    void reserve(std::size_t n) { samples_.reserve(n); }
    void clear() { samples_.clear(); }

    [[nodiscard]] std::size_t count() const { return samples_.size(); }
    [[nodiscard]] bool empty() const { return samples_.empty(); }
    [[nodiscard]] double mean() const;
    [[nodiscard]] double min() const;
    [[nodiscard]] double max() const;
    /// Exact quantile by linear interpolation between order statistics.
    /// q in [0,1]; returns 0 for an empty series.
    [[nodiscard]] double quantile(double q) const;
    [[nodiscard]] double median() const { return quantile(0.5); }
    [[nodiscard]] double p95() const { return quantile(0.95); }
    [[nodiscard]] double p99() const { return quantile(0.99); }

    [[nodiscard]] std::span<const double> samples() const { return samples_; }

private:
    std::vector<double> samples_;
    mutable std::vector<double> sorted_;  // lazily rebuilt cache
    mutable bool sorted_valid_{false};
    void ensure_sorted() const;
};

/// Fixed-width binning over [lo, hi); out-of-range samples clamp to the
/// first/last bin so totals are preserved.
class Histogram {
public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x);
    [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
    [[nodiscard]] std::uint64_t count_in_bin(std::size_t i) const { return counts_.at(i); }
    [[nodiscard]] std::uint64_t total() const { return total_; }
    [[nodiscard]] double bin_lo(std::size_t i) const;
    [[nodiscard]] double bin_hi(std::size_t i) const;
    /// Fraction of samples at or below x (empirical CDF at bin granularity).
    [[nodiscard]] double cdf(double x) const;
    /// Compact one-line rendering for logs: "lo..hi: n | ...".
    [[nodiscard]] std::string to_string() const;

private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_{0};
};

/// Exponentially weighted moving average; alpha in (0,1], larger = snappier.
class Ewma {
public:
    explicit Ewma(double alpha);
    void add(double x);
    void reset();
    [[nodiscard]] bool initialized() const { return initialized_; }
    [[nodiscard]] double value() const { return value_; }

private:
    double alpha_;
    double value_{0.0};
    bool initialized_{false};
};

/// Percentile over an ad-hoc span without building a SampleSeries.
[[nodiscard]] double quantile_of(std::span<const double> xs, double q);

}  // namespace mvc::math
