#include "fault/fault_plan.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace mvc::fault {

std::string_view fault_kind_name(FaultKind kind) {
    switch (kind) {
        case FaultKind::LinkDown: return "link_down";
        case FaultKind::LinkUp: return "link_up";
        case FaultKind::LossBurstStart: return "loss_burst_start";
        case FaultKind::LossBurstEnd: return "loss_burst_end";
        case FaultKind::LatencySpikeStart: return "latency_spike_start";
        case FaultKind::LatencySpikeEnd: return "latency_spike_end";
        case FaultKind::NodeCrash: return "node_crash";
        case FaultKind::NodeRestart: return "node_restart";
        case FaultKind::ChaosStart: return "chaos_start";
        case FaultKind::ChaosEnd: return "chaos_end";
        case FaultKind::BlackholeStart: return "blackhole_start";
        case FaultKind::BlackholeEnd: return "blackhole_end";
    }
    return "unknown";
}

FaultPlan::FaultPlan(net::Network& net) : net_(net) {}

void FaultPlan::link_outage(net::NodeId a, net::NodeId b, sim::Time at,
                            sim::Time duration) {
    if (duration <= sim::Time::zero())
        throw std::invalid_argument("FaultPlan: outage duration must be positive");
    events_.push_back(FaultEvent{at, FaultKind::LinkDown, a, b, 0.0, {}});
    events_.push_back(FaultEvent{at + duration, FaultKind::LinkUp, a, b, 0.0, {}});
}

void FaultPlan::loss_burst(net::NodeId a, net::NodeId b, sim::Time at, sim::Time duration,
                           double loss) {
    if (duration <= sim::Time::zero())
        throw std::invalid_argument("FaultPlan: burst duration must be positive");
    if (loss < 0.0 || loss > 1.0)
        throw std::invalid_argument("FaultPlan: burst loss must be in [0,1]");
    events_.push_back(FaultEvent{at, FaultKind::LossBurstStart, a, b, loss, {}});
    events_.push_back(FaultEvent{at + duration, FaultKind::LossBurstEnd, a, b, 0.0, {}});
}

void FaultPlan::latency_spike(net::NodeId a, net::NodeId b, sim::Time at,
                              sim::Time duration, sim::Time extra) {
    if (duration <= sim::Time::zero())
        throw std::invalid_argument("FaultPlan: spike duration must be positive");
    events_.push_back(FaultEvent{at, FaultKind::LatencySpikeStart, a, b, 0.0, extra});
    events_.push_back(FaultEvent{at + duration, FaultKind::LatencySpikeEnd, a, b, 0.0, {}});
}

void FaultPlan::node_outage(net::NodeId node, sim::Time at, sim::Time duration) {
    if (duration <= sim::Time::zero())
        throw std::invalid_argument("FaultPlan: outage duration must be positive");
    events_.push_back(FaultEvent{at, FaultKind::NodeCrash, node, net::kInvalidNode, 0.0, {}});
    events_.push_back(
        FaultEvent{at + duration, FaultKind::NodeRestart, node, net::kInvalidNode, 0.0, {}});
}

void FaultPlan::chaos_window(net::NodeId a, net::NodeId b, sim::Time at,
                             sim::Time duration, const net::ChaosProfile& profile) {
    if (duration <= sim::Time::zero())
        throw std::invalid_argument("FaultPlan: chaos duration must be positive");
    FaultEvent start{at, FaultKind::ChaosStart, a, b, 0.0, {}};
    start.chaos = profile;
    events_.push_back(std::move(start));
    events_.push_back(FaultEvent{at + duration, FaultKind::ChaosEnd, a, b, 0.0, {}});
}

void FaultPlan::blackhole(net::NodeId src, net::NodeId dst, sim::Time at,
                          sim::Time duration) {
    if (duration <= sim::Time::zero())
        throw std::invalid_argument("FaultPlan: blackhole duration must be positive");
    events_.push_back(FaultEvent{at, FaultKind::BlackholeStart, src, dst, 0.0, {}});
    events_.push_back(
        FaultEvent{at + duration, FaultKind::BlackholeEnd, src, dst, 0.0, {}});
}

void FaultPlan::partition(net::NodeId a, net::NodeId b, sim::Time at,
                          sim::Time duration) {
    blackhole(a, b, at, duration);
    blackhole(b, a, at, duration);
}

void FaultPlan::randomize(const FaultModel& model,
                          std::span<const std::pair<net::NodeId, net::NodeId>> links,
                          std::span<const net::NodeId> nodes, sim::Time from,
                          sim::Time until, std::string_view stream) {
    sim::Rng rng = net_.simulator().rng_stream(stream);
    const double span_min = (until - from).to_seconds() / 60.0;
    if (span_min <= 0.0) return;

    // Draws happen in a fixed order (per category, then per link/node, then
    // per arrival), so the schedule depends only on the seed and arguments.
    const auto arrivals = [&](double per_min, sim::Time mean_duration, auto&& emit) {
        if (per_min <= 0.0) return;
        const double mean_gap_s = 60.0 / per_min;
        sim::Time t = from;
        while (true) {
            t += sim::Time::seconds(rng.exponential(mean_gap_s));
            if (t >= until) break;
            const double dur_s =
                std::max(1e-3, rng.exponential(mean_duration.to_seconds()));
            emit(t, sim::Time::seconds(dur_s));
        }
    };

    for (const auto& [a, b] : links) {
        arrivals(model.link_flaps_per_min, model.mean_outage,
                 [&](sim::Time at, sim::Time d) { link_outage(a, b, at, d); });
    }
    for (const auto& [a, b] : links) {
        arrivals(model.loss_bursts_per_min, model.mean_burst, [&](sim::Time at, sim::Time d) {
            loss_burst(a, b, at, d, model.burst_loss);
        });
    }
    for (const auto& [a, b] : links) {
        arrivals(model.latency_spikes_per_min, model.mean_spike,
                 [&](sim::Time at, sim::Time d) {
                     latency_spike(a, b, at, d, model.spike_extra_latency);
                 });
    }
    for (const net::NodeId node : nodes) {
        arrivals(model.node_crashes_per_min, model.mean_downtime,
                 [&](sim::Time at, sim::Time d) { node_outage(node, at, d); });
    }
}

void FaultPlan::arm() {
    if (armed_) throw std::logic_error("FaultPlan: already armed");
    for (const FaultEvent& e : events_) {
        if ((e.kind == FaultKind::ChaosStart || e.kind == FaultKind::ChaosEnd ||
             e.kind == FaultKind::BlackholeStart ||
             e.kind == FaultKind::BlackholeEnd) &&
            chaos_ == nullptr)
            throw std::logic_error(
                "FaultPlan: chaos events scheduled but no ChaosBackend attached "
                "(call set_chaos before arm)");
    }
    armed_ = true;
    // Stable order: by time, ties in insertion order (End events inserted
    // right after their Start, so a zero-gap restore still happens last).
    std::stable_sort(events_.begin(), events_.end(),
                     [](const FaultEvent& x, const FaultEvent& y) { return x.at < y.at; });
    sim::Simulator& sim = net_.simulator();
    for (const FaultEvent& e : events_) {
        const sim::Time at = std::max(e.at, sim.now());
        sim.schedule_at(at, [this, e] { apply(e); });
    }
}

void FaultPlan::apply(const FaultEvent& e) {
    ++injected_;
    net_.metrics().count("fault.injected", {{"kind", fault_kind_name(e.kind)}});
    switch (e.kind) {
        case FaultKind::LinkDown: net_.set_link_up(e.a, e.b, false); break;
        case FaultKind::LinkUp: net_.set_link_up(e.a, e.b, true); break;
        case FaultKind::LossBurstStart: override_params(e, /*spike=*/false); break;
        case FaultKind::LossBurstEnd: restore_params(e, /*spike=*/false); break;
        case FaultKind::LatencySpikeStart: override_params(e, /*spike=*/true); break;
        case FaultKind::LatencySpikeEnd: restore_params(e, /*spike=*/true); break;
        case FaultKind::NodeCrash: net_.set_node_up(e.a, false); break;
        case FaultKind::NodeRestart: net_.set_node_up(e.a, true); break;
        case FaultKind::ChaosStart: apply_chaos(e, /*start=*/true); break;
        case FaultKind::ChaosEnd: apply_chaos(e, /*start=*/false); break;
        case FaultKind::BlackholeStart: chaos_->set_blackhole(e.a, e.b, true); break;
        case FaultKind::BlackholeEnd: chaos_->set_blackhole(e.a, e.b, false); break;
    }
}

void FaultPlan::apply_chaos(const FaultEvent& e, bool start) {
    for (const auto& [src, dst] : {std::pair{e.a, e.b}, std::pair{e.b, e.a}}) {
        const auto key = std::make_pair(src, dst);
        if (start) {
            // Preserve an already-active blackhole on this direction: the
            // partition outlives the lossy window's edges.
            net::ChaosProfile profile = e.chaos;
            profile.blackhole =
                profile.blackhole || chaos_->profile(src, dst).blackhole;
            net::ChaosProfile previous = chaos_->set_profile(src, dst, profile);
            // Overlapping windows on one direction: keep the first saved
            // baseline so the final End restores the true original.
            saved_chaos_.try_emplace(key, std::move(previous));
        } else {
            const auto it = saved_chaos_.find(key);
            if (it == saved_chaos_.end()) continue;
            net::ChaosProfile restored = it->second;
            restored.blackhole = chaos_->profile(src, dst).blackhole;
            chaos_->set_profile(src, dst, restored);
            saved_chaos_.erase(it);
        }
    }
}

void FaultPlan::override_params(const FaultEvent& e, bool spike) {
    for (const auto& [src, dst] : {std::pair{e.a, e.b}, std::pair{e.b, e.a}}) {
        net::Link* l = net_.link(src, dst);
        if (l == nullptr) continue;
        const auto key = std::make_tuple(src, dst, spike ? 1 : 0);
        // Overlapping same-kind windows on one link: keep the first saved
        // baseline so the final End restores the true original parameters.
        saved_.try_emplace(key, l->params());
        net::LinkParams p = l->params();
        if (spike) {
            p.latency += e.extra_latency;
        } else {
            p.loss = std::max(p.loss, e.loss);
        }
        l->set_params(p);
    }
}

void FaultPlan::restore_params(const FaultEvent& e, bool spike) {
    for (const auto& [src, dst] : {std::pair{e.a, e.b}, std::pair{e.b, e.a}}) {
        net::Link* l = net_.link(src, dst);
        if (l == nullptr) continue;
        const auto key = std::make_tuple(src, dst, spike ? 1 : 0);
        const auto it = saved_.find(key);
        if (it == saved_.end()) continue;
        // Restore only the field this override touched, so a concurrent
        // override of the other kind on the same link stays in effect.
        net::LinkParams p = l->params();
        if (spike) {
            p.latency = it->second.latency;
        } else {
            p.loss = it->second.loss;
        }
        l->set_params(p);
        saved_.erase(it);
    }
}

std::string FaultPlan::to_string() const {
    std::vector<const FaultEvent*> ordered;
    ordered.reserve(events_.size());
    for (const FaultEvent& e : events_) ordered.push_back(&e);
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const FaultEvent* x, const FaultEvent* y) { return x->at < y->at; });
    std::ostringstream os;
    for (const FaultEvent* e : ordered) {
        os << e->at.to_ms() << "ms " << fault_kind_name(e->kind) << " a=" << e->a;
        if (e->b != net::kInvalidNode) os << " b=" << e->b;
        if (e->loss > 0.0) os << " loss=" << e->loss;
        if (e->extra_latency > sim::Time::zero())
            os << " extra=" << e->extra_latency.to_ms() << "ms";
        if (e->kind == FaultKind::ChaosStart) {
            const net::ChaosProfile& c = e->chaos;
            if (c.drop > 0.0) os << " drop=" << c.drop;
            if (c.ge_p_bad > 0.0 || c.ge_p_good > 0.0)
                os << " ge=" << c.ge_p_bad << '/' << c.ge_p_good;
            if (c.duplicate > 0.0) os << " dup=" << c.duplicate;
            if (c.reorder > 0.0) os << " reorder=" << c.reorder;
            if (c.corrupt > 0.0) os << " corrupt=" << c.corrupt;
            if (c.throttle_bps > 0.0) os << " throttle_bps=" << c.throttle_bps;
            if (c.delay > sim::Time::zero()) os << " delay=" << c.delay.to_ms() << "ms";
        }
        os << '\n';
    }
    return os.str();
}

}  // namespace mvc::fault
