#include "fault/heartbeat.hpp"

#include <algorithm>
#include <utility>

namespace mvc::fault {

HeartbeatMonitor::HeartbeatMonitor(net::Backend& net, net::PacketDemux& demux,
                                   HeartbeatParams params, std::string metric_prefix)
    : net_(net),
      node_(demux.node()),
      tx_(net.open_channel({.src = node_,
                            .flow = std::string{kHeartbeatFlow},
                            .options = {.priority = net::Priority::Control}})),
      params_(params),
      metric_prefix_(std::move(metric_prefix)),
      failover_id_(net.metrics().counter_id(metric_prefix_ + ".failover")),
      failback_id_(net.metrics().counter_id(metric_prefix_ + ".failback")) {
    demux.on_flow(std::string{kHeartbeatFlow},
                  [this](net::Packet&& p) { handle(std::move(p)); });
}

void HeartbeatMonitor::watch(net::NodeId peer) {
    Peer rec;
    rec.last_seen = net_.clock().now();
    peers_.emplace(peer, rec);
}

void HeartbeatMonitor::start() {
    if (running_) return;
    running_ = true;
    // Grace period: a peer is not dead until it has had `timeout` to speak.
    for (auto& [peer, rec] : peers_) rec.last_seen = net_.clock().now();
    task_ = net_.clock().schedule_every(params_.interval, [this] { tick(); });
}

void HeartbeatMonitor::stop() {
    if (!running_) return;
    running_ = false;
    net_.clock().cancel(task_);
}

bool HeartbeatMonitor::alive(net::NodeId peer) const {
    const auto it = peers_.find(peer);
    return it == peers_.end() || it->second.alive;
}

double HeartbeatMonitor::loss_estimate(net::NodeId peer) const {
    const auto it = peers_.find(peer);
    return it == peers_.end() ? 0.0 : it->second.loss;
}

double HeartbeatMonitor::worst_loss() const {
    double worst = 0.0;
    for (const auto& [peer, rec] : peers_) {
        if (rec.alive) worst = std::max(worst, rec.loss);
    }
    return worst;
}

sim::Time HeartbeatMonitor::last_seen(net::NodeId peer) const {
    const auto it = peers_.find(peer);
    return it == peers_.end() ? sim::Time::zero() : it->second.last_seen;
}

void HeartbeatMonitor::tick() {
    const sim::Time now = net_.clock().now();
    for (auto& [peer, rec] : peers_) {
        tx_.send_to(peer, params_.wire_bytes, HeartbeatWire{++rec.tx_seq});
        if (rec.alive && now - rec.last_seen > params_.timeout) {
            rec.alive = false;
            rec.loss = 1.0;
            rec.window_expected = 0;
            rec.window_received = 0;
            ++failovers_;
            net_.metrics().count(failover_id_);
            if (on_state_) on_state_(peer, false);
        }
    }
}

void HeartbeatMonitor::handle(net::Packet&& p) {
    const auto it = peers_.find(p.src);
    if (it == peers_.end()) return;  // not a watched peer
    Peer& rec = it->second;
    const auto wire = p.payload.get<HeartbeatWire>();
    rec.last_seen = net_.clock().now();

    // Seq-gap loss estimation over a rolling window of expected probes.
    if (rec.last_rx_seq != 0 && wire.seq > rec.last_rx_seq) {
        rec.window_expected += wire.seq - rec.last_rx_seq;
    } else {
        rec.window_expected += 1;
    }
    rec.window_received += 1;
    rec.last_rx_seq = std::max(rec.last_rx_seq, wire.seq);
    if (rec.window_expected >= params_.loss_window) {
        rec.loss = 1.0 - static_cast<double>(rec.window_received) /
                             static_cast<double>(rec.window_expected);
        rec.window_expected = 0;
        rec.window_received = 0;
    }

    if (!rec.alive) {
        rec.alive = true;
        rec.loss = 0.0;
        ++failbacks_;
        net_.metrics().count(failback_id_);
        if (on_state_) on_state_(p.src, true);
    }
}

}  // namespace mvc::fault
