#pragma once
// Graceful degradation under sustained path adversity. A hysteresis ladder
// over an observed health signal (loss estimate, optionally RTT): when the
// signal stays at/above the enter threshold for `hold`, the sender steps one
// level down — halving the avatar update rate, coarsening the dead-reckoning
// threshold, and dropping one codec LOD — and steps back up only after the
// signal stays at/below the exit threshold for `hold`. The enter/exit gap
// plus the hold time prevent level flapping on a noisy signal.
//
// PathHealth produces that signal from the avatar stream itself: per-sender
// wire sequence numbers expose genuine loss (dead-reckoning suppression
// makes receiver silence ambiguous — suppressed != lost), and the e2e
// latency of each delivered update feeds an EWMA delay estimate.

#include <cstdint>
#include <map>

#include "avatar/lod.hpp"
#include "sim/time.hpp"

namespace mvc::fault {

struct DegradationParams {
    /// Loss at/above which the policy steps down one level after `hold`.
    double enter_loss{0.08};
    /// Loss at/below which the policy steps back up after `hold`.
    double exit_loss{0.02};
    /// RTT/delay (ms) at/above which the policy steps down after `hold`.
    /// Zero disables the delay criterion (loss-only, the historical mode).
    double enter_rtt_ms{0.0};
    /// RTT/delay (ms) the signal must return to before stepping back up.
    double exit_rtt_ms{0.0};
    /// How long the signal must stay past a threshold before acting.
    sim::Time hold{sim::Time::seconds(1.0)};
    /// Deepest level (0 = full fidelity).
    int max_level{3};
};

class DegradationPolicy {
public:
    explicit DegradationPolicy(DegradationParams params = {});

    /// Feed one loss observation at simulated time `now`; returns true when
    /// the degradation level changed (callers re-apply the scales).
    bool update(double loss, sim::Time now) { return update(loss, 0.0, now); }
    /// Combined criterion: the path is unhealthy when loss *or* delay is past
    /// its enter threshold, and healthy again only when both are back under
    /// their exit thresholds (delay ignored when enter_rtt_ms == 0).
    bool update(double loss, double rtt_ms, sim::Time now);

    [[nodiscard]] int level() const { return level_; }
    /// Multiplier for the avatar publisher tick rate (halves per level).
    [[nodiscard]] double rate_scale() const;
    /// Multiplier for the dead-reckoning error threshold (doubles per level).
    [[nodiscard]] double threshold_scale() const;
    /// Codec LOD to publish at this level (one rung coarser per level,
    /// starting from High).
    [[nodiscard]] avatar::LodLevel lod() const;

private:
    DegradationParams params_;
    int level_{0};
    // Time::max() means "signal not currently past that threshold".
    sim::Time above_since_{sim::Time::max()};
    sim::Time below_since_{sim::Time::max()};
};

struct PathHealthParams {
    /// Length of one loss-measurement window; the loss estimate is the
    /// fraction of expected-but-missing sequence numbers over the last
    /// completed window.
    sim::Time window{sim::Time::seconds(1.0)};
    /// EWMA smoothing factor for the delay estimate (weight of each new
    /// sample).
    double rtt_alpha{0.125};
};

/// Receiver-side estimator of the health of one inbound path, fed by the
/// per-sender `AvatarWire::seq` counters and per-update e2e latency. Gaps in
/// a sender's sequence are counted as losses; duplicates and reorders past
/// an already-seen sequence are ignored (they were either counted missing
/// already or are chaos duplicates, and neither should push loss negative).
class PathHealth {
public:
    explicit PathHealth(PathHealthParams params = {});

    /// Record one delivered update from `source` carrying wire sequence
    /// `seq`, delivered with end-to-end latency `latency_ms`. Rolls the loss
    /// window as a side effect when `now` has moved past it.
    void observe(std::uint32_t source, std::uint32_t seq, double latency_ms,
                 sim::Time now);
    /// Close the current window if it has elapsed (call from a periodic tick
    /// so loss decays toward the window estimate even when nothing arrives —
    /// a totally dead path cannot refresh itself via observe()).
    void roll(sim::Time now);
    /// Forget all per-sender sequence state (after a resync the sequence
    /// baseline is discontinuous) while keeping the smoothed delay.
    void reset();

    /// Loss fraction over the last completed window, in [0, 1].
    [[nodiscard]] double loss() const { return loss_; }
    /// Smoothed e2e delay estimate (ms); 0 before any sample.
    [[nodiscard]] double rtt_ms() const { return rtt_ms_; }
    [[nodiscard]] std::uint64_t received() const { return received_total_; }
    [[nodiscard]] std::uint64_t lost() const { return lost_total_; }

private:
    struct SourceState {
        std::uint32_t last_seq{0};
    };

    PathHealthParams params_;
    std::map<std::uint32_t, SourceState> sources_;
    sim::Time window_start_{sim::Time::max()};  // max() = window not yet open
    std::uint64_t window_expected_{0};
    std::uint64_t window_received_{0};
    double loss_{0.0};
    double rtt_ms_{0.0};
    bool have_rtt_{false};
    std::uint64_t received_total_{0};
    std::uint64_t lost_total_{0};
};

}  // namespace mvc::fault
