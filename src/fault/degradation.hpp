#pragma once
// Graceful degradation under sustained loss. A hysteresis ladder over the
// heartbeat loss estimate: when loss stays at/above the enter threshold for
// `hold`, the sender steps one level down — halving the avatar update rate,
// coarsening the dead-reckoning threshold, and dropping one codec LOD — and
// steps back up only after loss stays at/below the exit threshold for
// `hold`. The enter/exit gap plus the hold time prevent level flapping on a
// noisy loss signal.

#include "avatar/lod.hpp"
#include "sim/time.hpp"

namespace mvc::fault {

struct DegradationParams {
    /// Loss at/above which the policy steps down one level after `hold`.
    double enter_loss{0.08};
    /// Loss at/below which the policy steps back up after `hold`.
    double exit_loss{0.02};
    /// How long the signal must stay past a threshold before acting.
    sim::Time hold{sim::Time::seconds(1.0)};
    /// Deepest level (0 = full fidelity).
    int max_level{3};
};

class DegradationPolicy {
public:
    explicit DegradationPolicy(DegradationParams params = {});

    /// Feed one loss observation at simulated time `now`; returns true when
    /// the degradation level changed (callers re-apply the scales).
    bool update(double loss, sim::Time now);

    [[nodiscard]] int level() const { return level_; }
    /// Multiplier for the avatar publisher tick rate (halves per level).
    [[nodiscard]] double rate_scale() const;
    /// Multiplier for the dead-reckoning error threshold (doubles per level).
    [[nodiscard]] double threshold_scale() const;
    /// Codec LOD to publish at this level (one rung coarser per level,
    /// starting from High).
    [[nodiscard]] avatar::LodLevel lod() const;

private:
    DegradationParams params_;
    int level_{0};
    // Time::max() means "signal not currently past that threshold".
    sim::Time above_since_{sim::Time::max()};
    sim::Time below_since_{sim::Time::max()};
};

}  // namespace mvc::fault
