#include "fault/degradation.hpp"

#include <cmath>
#include <stdexcept>

namespace mvc::fault {

DegradationPolicy::DegradationPolicy(DegradationParams params) : params_(params) {
    if (params_.exit_loss > params_.enter_loss)
        throw std::invalid_argument(
            "DegradationPolicy: exit_loss must not exceed enter_loss");
    if (params_.enter_rtt_ms > 0.0 && params_.exit_rtt_ms > params_.enter_rtt_ms)
        throw std::invalid_argument(
            "DegradationPolicy: exit_rtt_ms must not exceed enter_rtt_ms");
    if (params_.max_level < 0)
        throw std::invalid_argument("DegradationPolicy: max_level must be >= 0");
}

bool DegradationPolicy::update(double loss, double rtt_ms, sim::Time now) {
    const bool rtt_enabled = params_.enter_rtt_ms > 0.0;
    const bool past_enter = loss >= params_.enter_loss ||
                            (rtt_enabled && rtt_ms >= params_.enter_rtt_ms);
    const bool past_exit = loss <= params_.exit_loss &&
                           (!rtt_enabled || rtt_ms <= params_.exit_rtt_ms);
    if (past_enter) {
        below_since_ = sim::Time::max();
        if (above_since_ == sim::Time::max()) above_since_ = now;
        if (level_ < params_.max_level && now - above_since_ >= params_.hold) {
            ++level_;
            above_since_ = now;  // each further step needs its own hold
            return true;
        }
    } else if (past_exit) {
        above_since_ = sim::Time::max();
        if (below_since_ == sim::Time::max()) below_since_ = now;
        if (level_ > 0 && now - below_since_ >= params_.hold) {
            --level_;
            below_since_ = now;
            return true;
        }
    } else {
        // In the hysteresis band: hold the current level, restart both clocks.
        above_since_ = sim::Time::max();
        below_since_ = sim::Time::max();
    }
    return false;
}

double DegradationPolicy::rate_scale() const {
    return 1.0 / static_cast<double>(std::int64_t{1} << level_);
}

double DegradationPolicy::threshold_scale() const {
    return static_cast<double>(std::int64_t{1} << level_);
}

avatar::LodLevel DegradationPolicy::lod() const {
    avatar::LodLevel lod = avatar::LodLevel::High;
    for (int i = 0; i < level_; ++i) lod = avatar::coarser(lod);
    return lod;
}

PathHealth::PathHealth(PathHealthParams params) : params_(params) {
    if (params_.window <= sim::Time::zero())
        throw std::invalid_argument("PathHealth: window must be positive");
    if (params_.rtt_alpha <= 0.0 || params_.rtt_alpha > 1.0)
        throw std::invalid_argument("PathHealth: rtt_alpha must be in (0, 1]");
}

void PathHealth::observe(std::uint32_t source, std::uint32_t seq, double latency_ms,
                         sim::Time now) {
    roll(now);
    auto [it, inserted] = sources_.try_emplace(source);
    if (inserted) {
        // First sighting establishes the baseline: one expected, one received.
        it->second.last_seq = seq;
        ++window_expected_;
        ++window_received_;
        ++received_total_;
    } else if (seq > it->second.last_seq) {
        // A jump of k sequences means k - 1 updates never arrived.
        window_expected_ += seq - it->second.last_seq;
        ++window_received_;
        ++received_total_;
        it->second.last_seq = seq;
    }
    // seq <= last_seq: duplicate or late reorder; already accounted.
    rtt_ms_ = have_rtt_ ? rtt_ms_ + params_.rtt_alpha * (latency_ms - rtt_ms_)
                        : latency_ms;
    have_rtt_ = true;
}

void PathHealth::roll(sim::Time now) {
    if (window_start_ == sim::Time::max()) {
        window_start_ = now;
        return;
    }
    if (now - window_start_ < params_.window) return;
    if (window_expected_ > 0) {
        const std::uint64_t missing = window_expected_ - window_received_;
        loss_ = static_cast<double>(missing) / static_cast<double>(window_expected_);
        lost_total_ += missing;
    } else {
        // Silent window: nothing was provably expected (senders may simply
        // be suppressing), so decay toward healthy rather than inventing
        // loss. Dead-path detection is the Reconnector's job, not ours.
        loss_ = 0.0;
    }
    window_expected_ = 0;
    window_received_ = 0;
    window_start_ = now;
}

void PathHealth::reset() {
    sources_.clear();
    window_start_ = sim::Time::max();
    window_expected_ = 0;
    window_received_ = 0;
    loss_ = 0.0;
}

}  // namespace mvc::fault
