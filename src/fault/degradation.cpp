#include "fault/degradation.hpp"

#include <cmath>
#include <stdexcept>

namespace mvc::fault {

DegradationPolicy::DegradationPolicy(DegradationParams params) : params_(params) {
    if (params_.exit_loss > params_.enter_loss)
        throw std::invalid_argument(
            "DegradationPolicy: exit_loss must not exceed enter_loss");
    if (params_.max_level < 0)
        throw std::invalid_argument("DegradationPolicy: max_level must be >= 0");
}

bool DegradationPolicy::update(double loss, sim::Time now) {
    if (loss >= params_.enter_loss) {
        below_since_ = sim::Time::max();
        if (above_since_ == sim::Time::max()) above_since_ = now;
        if (level_ < params_.max_level && now - above_since_ >= params_.hold) {
            ++level_;
            above_since_ = now;  // each further step needs its own hold
            return true;
        }
    } else if (loss <= params_.exit_loss) {
        above_since_ = sim::Time::max();
        if (below_since_ == sim::Time::max()) below_since_ = now;
        if (level_ > 0 && now - below_since_ >= params_.hold) {
            --level_;
            below_since_ = now;
            return true;
        }
    } else {
        // In the hysteresis band: hold the current level, restart both clocks.
        above_since_ = sim::Time::max();
        below_since_ = sim::Time::max();
    }
    return false;
}

double DegradationPolicy::rate_scale() const {
    return 1.0 / static_cast<double>(std::int64_t{1} << level_);
}

double DegradationPolicy::threshold_scale() const {
    return static_cast<double>(std::int64_t{1} << level_);
}

avatar::LodLevel DegradationPolicy::lod() const {
    avatar::LodLevel lod = avatar::LodLevel::High;
    for (int i = 0; i < level_; ++i) lod = avatar::coarser(lod);
    return lod;
}

}  // namespace mvc::fault
