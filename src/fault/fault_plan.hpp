#pragma once
// Deterministic fault injection for the simulated deployment. A FaultPlan is
// a schedule of fault events — link outages, loss bursts, latency spikes,
// node crash/restart, and (when a ChaosBackend is attached via set_chaos)
// transport-chaos windows and asymmetric blackholes — built either from
// explicit script calls or from a Poisson arrival model drawn on one of the
// simulator's named RNG streams (same seed, same schedule). `arm()`
// registers every event with the Simulator; the plan then mutates the
// Network (administrative link/node state, temporary LinkParams overrides)
// and the chaos interposer as simulated time passes, and restores the
// original parameters/profiles when each window ends.

#include <map>
#include <span>
#include <string>
#include <string_view>
#include <tuple>
#include <utility>
#include <vector>

#include "net/chaos.hpp"
#include "net/network.hpp"

namespace mvc::fault {

enum class FaultKind : std::uint8_t {
    LinkDown,
    LinkUp,
    LossBurstStart,
    LossBurstEnd,
    LatencySpikeStart,
    LatencySpikeEnd,
    NodeCrash,
    NodeRestart,
    // Transport chaos (require set_chaos before arm()):
    ChaosStart,      ///< install a ChaosProfile on both directions of a pair
    ChaosEnd,        ///< restore the profiles saved at ChaosStart
    BlackholeStart,  ///< swallow a -> b (directed; script both ways for a partition)
    BlackholeEnd,
};

[[nodiscard]] std::string_view fault_kind_name(FaultKind kind);

struct FaultEvent {
    sim::Time at{};
    FaultKind kind{};
    net::NodeId a{net::kInvalidNode};  // node for crash/restart; first endpoint otherwise
    net::NodeId b{net::kInvalidNode};  // second endpoint for link faults
    double loss{0.0};                  // loss bursts: temporary loss probability
    sim::Time extra_latency{};         // latency spikes: added one-way delay
    net::ChaosProfile chaos{};         // chaos windows: the profile to install
};

/// Arrival-rate knobs for `randomize`. Rates are events per simulated
/// minute; durations are exponential with the given mean.
struct FaultModel {
    double link_flaps_per_min{1.0};
    sim::Time mean_outage{sim::Time::seconds(5.0)};
    double loss_bursts_per_min{2.0};
    sim::Time mean_burst{sim::Time::seconds(3.0)};
    double burst_loss{0.25};
    double latency_spikes_per_min{2.0};
    sim::Time mean_spike{sim::Time::seconds(2.0)};
    sim::Time spike_extra_latency{sim::Time::ms(120)};
    double node_crashes_per_min{0.0};
    sim::Time mean_downtime{sim::Time::seconds(8.0)};
};

class FaultPlan {
public:
    explicit FaultPlan(net::Network& net);

    FaultPlan(const FaultPlan&) = delete;
    FaultPlan& operator=(const FaultPlan&) = delete;

    /// Scripted faults. Endpoints must be connected when the event fires.
    void link_outage(net::NodeId a, net::NodeId b, sim::Time at, sim::Time duration);
    void loss_burst(net::NodeId a, net::NodeId b, sim::Time at, sim::Time duration,
                    double loss);
    void latency_spike(net::NodeId a, net::NodeId b, sim::Time at, sim::Time duration,
                       sim::Time extra);
    void node_outage(net::NodeId node, sim::Time at, sim::Time duration);

    /// Attach the chaos interposer the transport-fault events drive. Must be
    /// called before arm() when the schedule contains chaos/blackhole
    /// events; the plan does not own the backend.
    void set_chaos(net::ChaosBackend* chaos) { chaos_ = chaos; }

    /// Install `profile` on both directions of a<->b during the window,
    /// restoring whatever was installed before (an active blackhole bit
    /// survives both edges of the window).
    void chaos_window(net::NodeId a, net::NodeId b, sim::Time at, sim::Time duration,
                      const net::ChaosProfile& profile);
    /// Swallow all src -> dst traffic during the window (asymmetric).
    void blackhole(net::NodeId src, net::NodeId dst, sim::Time at, sim::Time duration);
    /// Full partition: blackhole both directions of a<->b.
    void partition(net::NodeId a, net::NodeId b, sim::Time at, sim::Time duration);

    /// Generate Poisson-arrival faults over [from, until) for the given
    /// links and nodes, drawn from the simulator's `stream` RNG stream. Two
    /// plans built with the same seed, arguments, and call order produce an
    /// identical schedule.
    void randomize(const FaultModel& model,
                   std::span<const std::pair<net::NodeId, net::NodeId>> links,
                   std::span<const net::NodeId> nodes, sim::Time from, sim::Time until,
                   std::string_view stream = "fault");

    /// Register every queued event with the Simulator. Call once after the
    /// schedule is complete and before the run.
    void arm();

    [[nodiscard]] const std::vector<FaultEvent>& events() const { return events_; }
    /// Number of fault events applied to the network so far.
    [[nodiscard]] std::size_t injected() const { return injected_; }
    /// Deterministic one-line-per-event rendering (for logs and the schedule
    /// determinism test).
    [[nodiscard]] std::string to_string() const;

private:
    net::Network& net_;
    net::ChaosBackend* chaos_{nullptr};
    std::vector<FaultEvent> events_;
    bool armed_{false};
    std::size_t injected_{0};
    // Original LinkParams saved while a burst/spike override is active,
    // keyed by (src, dst, kind-of-override) so overlapping burst and spike
    // on the same link restore independently.
    std::map<std::tuple<net::NodeId, net::NodeId, int>, net::LinkParams> saved_;
    // Profiles saved while a chaos window is active, per direction.
    std::map<std::pair<net::NodeId, net::NodeId>, net::ChaosProfile> saved_chaos_;

    void apply(const FaultEvent& e);
    void override_params(const FaultEvent& e, bool spike);
    void restore_params(const FaultEvent& e, bool spike);
    void apply_chaos(const FaultEvent& e, bool start);
};

}  // namespace mvc::fault
