#pragma once
// Heartbeat-based peer liveness. Each monitored endpoint sends a small
// sequenced probe to every watched peer at a fixed interval on the "hb"
// flow; silence past the timeout declares the peer dead (failover), the
// next received probe declares it alive again (failback). Sequence gaps in
// received probes double as a cheap loss estimator that feeds the graceful-
// degradation policy without extra traffic.

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "net/channel.hpp"

namespace mvc::fault {

inline constexpr std::string_view kHeartbeatFlow = "hb";

struct HeartbeatParams {
    /// Off by default: existing healthy-network scenarios pay nothing.
    bool enabled{false};
    sim::Time interval{sim::Time::ms(100)};
    /// Silence before a peer is declared dead. Must exceed the interval by
    /// enough margin that routine jitter/loss does not flap liveness.
    sim::Time timeout{sim::Time::ms(350)};
    /// Probes per loss-estimation window (loss = 1 - received/expected).
    std::uint64_t loss_window{20};
    std::size_t wire_bytes{24};
};

struct HeartbeatWire {
    std::uint64_t seq{0};
};

class HeartbeatMonitor {
public:
    /// alive=false -> the peer just failed over; alive=true -> failback.
    using PeerStateFn = std::function<void(net::NodeId peer, bool alive)>;

    /// `metric_prefix` scopes this monitor's counters, e.g. "edge.cwb".
    HeartbeatMonitor(net::Backend& net, net::PacketDemux& demux, HeartbeatParams params,
                     std::string metric_prefix = "hb");

    HeartbeatMonitor(const HeartbeatMonitor&) = delete;
    HeartbeatMonitor& operator=(const HeartbeatMonitor&) = delete;

    void watch(net::NodeId peer);
    void on_peer_state(PeerStateFn fn) { on_state_ = std::move(fn); }

    void start();
    void stop();

    /// Unwatched peers are reported alive (no evidence of death).
    [[nodiscard]] bool alive(net::NodeId peer) const;
    [[nodiscard]] double loss_estimate(net::NodeId peer) const;
    /// Highest loss estimate across watched peers still considered alive
    /// (dead peers are a routing problem, not a congestion signal).
    [[nodiscard]] double worst_loss() const;
    [[nodiscard]] sim::Time last_seen(net::NodeId peer) const;
    [[nodiscard]] std::uint64_t failovers() const { return failovers_; }
    [[nodiscard]] std::uint64_t failbacks() const { return failbacks_; }
    [[nodiscard]] const HeartbeatParams& params() const { return params_; }

private:
    struct Peer {
        bool alive{true};
        sim::Time last_seen{};
        std::uint64_t tx_seq{0};
        std::uint64_t last_rx_seq{0};
        std::uint64_t window_expected{0};
        std::uint64_t window_received{0};
        double loss{0.0};
    };

    net::Backend& net_;
    net::NodeId node_;
    net::Channel tx_;
    HeartbeatParams params_;
    std::string metric_prefix_;
    sim::MetricId failover_id_;
    sim::MetricId failback_id_;
    std::map<net::NodeId, Peer> peers_;
    PeerStateFn on_state_;
    sim::EventHandle task_;
    bool running_{false};
    std::uint64_t failovers_{0};
    std::uint64_t failbacks_{0};

    void tick();
    void handle(net::Packet&& p);
};

}  // namespace mvc::fault
