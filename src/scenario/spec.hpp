#pragma once
// ScenarioSpec — the versioned declarative description of one experiment
// run: which world to build (a blended classroom, a relay + VR-client
// cluster, or a sharded multi-region campus), which transport backend to
// run it on (the discrete-event Network, the ChaosBackend interposer, or
// the real UDP loopback), the cohorts that populate it, the fault & load
// timeline that batters it, and the SLO gates the run must hold.
//
// Specs are data: a `.scenario.json` file (or an inline JSON string) parses
// into this struct through a *strict* loader — unknown keys are rejected
// with the offending field's path, type mismatches name the field, and
// JSON syntax errors carry line/column context — and serializes back out
// through spec_to_json() losslessly, which is what the round-trip tests and
// the mutation fuzzer rely on.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/json.hpp"
#include "fault/degradation.hpp"
#include "fault/fault_plan.hpp"
#include "net/chaos.hpp"
#include "net/topology.hpp"
#include "qoe/abr.hpp"
#include "qoe/budget.hpp"
#include "recovery/admission.hpp"
#include "session/session.hpp"
#include "sim/time.hpp"

namespace mvc::scenario {

/// Schema violation: `path` is the dotted field path ("timeline[2].loss"),
/// and what() carries path + reason (+ line/column for syntax errors).
class SpecError : public std::runtime_error {
public:
    SpecError(std::string path, const std::string& why)
        : std::runtime_error("scenario: " + (path.empty() ? why : path + ": " + why)),
          path_(std::move(path)) {}
    [[nodiscard]] const std::string& path() const { return path_; }

private:
    std::string path_;
};

inline constexpr int kSpecVersion = 1;

enum class WorldKind : std::uint8_t { Classroom, Relay, Campus };
enum class BackendKind : std::uint8_t { Sim, Chaos, RealUdp };

[[nodiscard]] std::string_view world_name(WorldKind kind);
[[nodiscard]] std::optional<WorldKind> world_from_name(std::string_view name);
[[nodiscard]] std::string_view backend_name(BackendKind kind);
[[nodiscard]] std::optional<BackendKind> backend_from_name(std::string_view name);

// ------------------------------------------------------- classroom world

/// One physical MR room. A non-empty `preset` ("cwb"/"gz") uses the paper's
/// deployment config verbatim — geometry keys are rejected for preset rooms
/// so spec-built worlds stay byte-equivalent to the historical defaults —
/// and only the occupancy fields (students/instructor) apply.
struct RoomSpec {
    std::string preset;  ///< "", "cwb" or "gz"
    std::string name;    ///< custom rooms only; defaults to "room<N>"
    net::Region region{net::Region::HongKong};
    std::size_t rows{5};
    std::size_t cols{6};
    std::size_t students{0};
    bool instructor{false};
};

/// Remote attendees joining the VR classroom from one region. A nonzero
/// `join_at` makes this a *load* event: the cohort enrols mid-run (flash
/// crowds, late joiners).
struct RemoteCohort {
    net::Region region{net::Region::Seoul};
    std::size_t count{1};
    sim::Time join_at{};
    bool guest{false};  ///< enrol as guest speakers instead of students
};

struct ScheduleBlock {
    session::ActivityKind kind{session::ActivityKind::Lecture};
    sim::Time duration{};
    std::size_t team_size{0};
};

struct HeartbeatSpec {
    bool enabled{false};
    sim::Time interval{sim::Time::ms(100)};
    sim::Time timeout{sim::Time::ms(350)};
};

struct DegradationSpec {
    bool enabled{false};
    fault::DegradationParams params{};
};

struct RecoverySpec {
    bool enabled{false};
    sim::Time checkpoint_interval{sim::Time::seconds(2.0)};
};

struct AdmissionSpec {
    bool enabled{false};
    recovery::AdmissionParams params{};
};

struct ClassroomSpec {
    std::string course{"Metaverse Classroom"};
    bool regional_mesh{false};
    bool lightweight_remote{false};
    bool event_bus{true};
    double probe_rate_hz{10.0};
    HeartbeatSpec heartbeat{};
    DegradationSpec degradation{};
    RecoverySpec recovery{};
    AdmissionSpec admission{};
    /// Empty => the CWB + GZ default deployment (6 students + instructor /
    /// 6 students), matching the historical loader.
    std::vector<RoomSpec> rooms;
    std::vector<RemoteCohort> remote;
    std::optional<std::size_t> lecture_media_room;
    std::vector<ScheduleBlock> schedule;
};

// ----------------------------------------------------------- relay world

struct ReconnectSpec {
    bool enabled{false};
    sim::Time liveness_timeout{sim::Time::seconds(2.0)};
    sim::Time check_interval{sim::Time::ms(100)};
    sim::Time probe_timeout{sim::Time::ms(500)};
    sim::Time backoff_base{sim::Time::ms(100)};
    sim::Time backoff_cap{sim::Time::seconds(2.0)};
};

struct SelfAdaptSpec {
    bool enabled{false};
    fault::DegradationParams params{};
};

/// A group of VR clients attached to the relay. `join_at` > 0 delays the
/// whole cohort's join (load timeline).
struct ClientCohort {
    std::size_t count{1};
    net::Region region{net::Region::HongKong};
    sim::Time join_at{};
    ReconnectSpec reconnect{};
    SelfAdaptSpec adapt{};
    /// QoE priority class ("high" or "low"): stamps this cohort's QoE
    /// metrics and maps to the video channel's accounting class (Realtime
    /// vs Bulk). Only meaningful when the spec's qoe block is enabled.
    std::string priority{"high"};
};

/// Optional ARQ control pair riding the same adversity as the clients —
/// the exactly-once delivery probe of the chaos soaks ("ctrl/a", "ctrl/b").
struct ControlSpec {
    bool enabled{false};
    sim::Time interval{sim::Time::ms(20)};
    net::Region region_a{net::Region::HongKong};
    net::Region region_b{net::Region::Guangzhou};
};

struct RelaySpec {
    net::Region region{net::Region::HongKong};
    bool serve_resync{true};
    sim::Time resync_freshness{sim::Time::seconds(2.0)};
    sim::Time access_latency{sim::Time::ms(8)};
    sim::Time batch_interval{};
    ControlSpec control{};
    std::vector<ClientCohort> clients;
};

// ---------------------------------------------------------- campus world

/// Dense pooled campus (core::CampusWorld, E22): one building per shard,
/// each sweeping SoA avatar pools through a flat interest grid with
/// cell-delta aggregated (or per-update baseline) egress. Enabled when
/// `buildings` > 0, replacing the relay + VR-client campus — the validator
/// then requires `regions` to be empty and the timeline unused.
struct PooledCampusSpec {
    std::size_t buildings{0};
    std::size_t classrooms_per_building{25};
    std::size_t avatars_per_classroom{100};
    std::size_t viewers_per_building{8};
    double tick_rate_hz{20.0};
    bool aggregate{true};
    sim::Time aggregate_interval{sim::Time::ms(50)};
};

/// E16-shaped sharded deployment: the origin cloud is shard 0, one relay
/// shard per region, lightweight VR clients spread round-robin.
struct CampusSpec {
    std::vector<net::Region> regions;
    std::size_t clients_per_region{8};
    sim::Time batch_interval{sim::Time::ms(20)};
    bool lightweight{true};
    PooledCampusSpec pooled{};
};

// -------------------------------------------------------- qoe control loop

/// Adaptive streaming + QoE control loop (src/qoe, E23). Relay world only:
/// the relay runs a qoe::QoeService (per-client video ladder + feedback
/// actuation), every client runs a qoe::MediaClient (ABR + budget + score),
/// and the relay's egress aggregation is forced on so the gaze/scale
/// feedback has tier clocks to drive.
struct QoeSpec {
    bool enabled{false};
    sim::Time feedback_interval{sim::Time::ms(250)};
    /// Relay egress aggregation interval while qoe is on.
    sim::Time aggregate_interval{sim::Time::ms(50)};
    sim::Time playout_delay{sim::Time::ms(200)};
    qoe::AbrParams abr{};
    qoe::BudgetParams budget{};
};

// -------------------------------------------------------- fault timeline

enum class TimelineKind : std::uint8_t {
    LinkOutage,
    LossBurst,
    LatencySpike,
    NodeOutage,
    ChaosWindow,
    Blackhole,
    Partition,
    Random,
};

[[nodiscard]] std::string_view timeline_kind_name(TimelineKind kind);
[[nodiscard]] std::optional<TimelineKind> timeline_kind_from_name(std::string_view name);

/// One scheduled adversity window. Endpoints are *symbolic* node
/// references resolved against the built world:
///   classroom:  "cloud", "edge/<index>", "edge/<room-name>"
///   relay:      "relay", "client/<index>", "client/*", "ctrl/a", "ctrl/b"
///   campus:     "cloud", "relay/<region>", "client/<index>"  (same shard only)
struct TimelineEntry {
    TimelineKind kind{TimelineKind::LinkOutage};
    sim::Time at{};
    sim::Time duration{};
    std::string a;  ///< first endpoint; crash/restart node for NodeOutage
    std::string b;  ///< second endpoint (unused for NodeOutage)
    double loss{0.25};                      ///< LossBurst
    sim::Time extra_latency{};              ///< LatencySpike
    net::ChaosProfile profile{};            ///< ChaosWindow
    // Random (Poisson arrival model over explicit links/nodes):
    fault::FaultModel model{};
    std::vector<std::pair<std::string, std::string>> links;
    std::vector<std::string> nodes;
    std::string stream{"fault"};
    sim::Time from{};
    sim::Time until{};
};

// ------------------------------------------------------------- SLO gates

/// Declarative pass/fail bound on one exported metric. `metric` is either
/// a counter name ("chaos.drop") or "<series>.<stat>" where stat is one of
/// count/mean/min/max/p50/p95/p99 ("vr.e2e_ms.p95").
struct SloGate {
    std::string metric;
    std::optional<double> min;
    std::optional<double> max;
};

// ------------------------------------------------------------- the spec

struct ScenarioSpec {
    int version{kSpecVersion};
    std::string name{"scenario"};
    WorldKind world{WorldKind::Classroom};
    BackendKind backend{BackendKind::Sim};
    std::uint64_t seed{42};
    sim::Time duration{sim::Time::seconds(60)};
    /// Cadence of the per-epoch state-hash stream (the determinism /
    /// divergence comparison unit). Zero disables hashing.
    sim::Time hash_interval{sim::Time::ms(100)};
    ClassroomSpec classroom{};
    RelaySpec relay{};
    CampusSpec campus{};
    QoeSpec qoe{};
    std::vector<TimelineEntry> timeline;
    std::vector<SloGate> slos;
};

/// Parse a region / activity by canonical name.
[[nodiscard]] std::optional<net::Region> region_from_name(std::string_view name);
[[nodiscard]] std::optional<session::ActivityKind> activity_from_name(
    std::string_view name);

/// Build a spec from a JSON document. Strict: unknown keys, type errors and
/// cross-field violations throw SpecError with the field's path.
[[nodiscard]] ScenarioSpec scenario_from_json(const common::Json& doc);

/// Parse text then build. JSON syntax errors are rethrown as SpecError with
/// "line L, column C" context computed from the parser's byte offset.
[[nodiscard]] ScenarioSpec scenario_from_text(std::string_view text);

/// Lossless serialization: scenario_from_json(spec_to_json(s)) == s. Fields
/// equal to their defaults are still emitted for schema discoverability.
[[nodiscard]] common::Json spec_to_json(const ScenarioSpec& spec);

/// Cross-field validation (world/backend compatibility, room capacities,
/// timeline endpoint kinds). Called by the parser; call it directly after
/// mutating a spec programmatically. Throws SpecError.
void validate_spec(const ScenarioSpec& spec);

/// Canonical one-line stamp for traces recorded from this spec
/// ("scenario:<name> v1 world=classroom seed=20 dur_s=42").
[[nodiscard]] std::string spec_stamp(const ScenarioSpec& spec);

}  // namespace mvc::scenario
