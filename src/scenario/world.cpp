#include "scenario/world.hpp"

#include <charconv>
#include <stdexcept>
#include <utility>

#include "cloud/cloud_server.hpp"
#include "cloud/relay.hpp"
#include "cloud/vr_client.hpp"
#include "cloud/vr_layout.hpp"
#include "core/campus.hpp"
#include "core/classroom.hpp"
#include "core/sharded_world.hpp"
#include "core/wire_codecs.hpp"
#include "net/chaos.hpp"
#include "net/network.hpp"
#include "net/real_udp.hpp"
#include "net/transport.hpp"
#include "qoe/service.hpp"
#include "replay/rerun.hpp"
#include "sensing/headset.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"

namespace mvc::scenario {

namespace {

/// Parse the "<index>" of a "prefix/<index>" ref; nullopt for non-numeric.
[[nodiscard]] std::optional<std::size_t> ref_index(std::string_view suffix) {
    std::size_t value = 0;
    const auto* end = suffix.data() + suffix.size();
    const auto [ptr, ec] = std::from_chars(suffix.data(), end, value);
    if (ec != std::errc{} || ptr != end) return std::nullopt;
    return value;
}

[[nodiscard]] std::uint64_t mix_digest(std::uint64_t h, std::uint64_t v) {
    // Boost-style hash combine over splitmix's constant: order-sensitive,
    // platform-stable.
    return h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
}

}  // namespace

// ---------------------------------------------------------- world states

struct ScenarioWorld::ClassroomState {
    std::unique_ptr<core::MetaverseClassroom> classroom;
    bool started{false};
};

struct ScenarioWorld::RelayState {
    // Construction order IS teardown safety: clients/channels (declared
    // last) are destroyed before the chaos interposer and the inner
    // network/simulator they send through.
    std::unique_ptr<sim::Simulator> sim;
    std::unique_ptr<net::Network> inner;
    std::unique_ptr<net::RealUdpBackend> real;
    std::unique_ptr<net::ChaosBackend> chaos;
    std::unique_ptr<replay::AvatarMirror> mirror;
    net::Backend* backend{nullptr};
    net::NodeId relay_node{net::kInvalidNode};
    std::unique_ptr<cloud::RelayServer> relay;
    /// QoE video service co-located on the relay node (registers flows on
    /// the relay's demux — declared after it so teardown drops it first).
    std::unique_ptr<qoe::QoeService> qoe;
    std::vector<std::unique_ptr<cloud::VrClient>> clients;
    net::NodeId ctrl_a{net::kInvalidNode};
    net::NodeId ctrl_b{net::kInvalidNode};
    std::unique_ptr<net::PacketDemux> demux_a;
    std::unique_ptr<net::PacketDemux> demux_b;
    std::unique_ptr<net::ReliableChannel> ctrl;
};

struct ScenarioWorld::CampusState {
    std::unique_ptr<core::ShardedWorld> world;
    /// Dense pooled campus (spec.campus.pooled.buildings > 0); `world` is
    /// then null and the sharded engine lives inside the CampusWorld.
    std::unique_ptr<core::CampusWorld> pooled;
    net::WanTopology wan;
    core::GlobalNode cloud_node;
    std::unique_ptr<cloud::CloudServer> origin;
    std::vector<std::unique_ptr<cloud::RelayServer>> relays;
    std::vector<core::GlobalNode> relay_nodes;
    std::vector<std::unique_ptr<cloud::VrClient>> clients;
    std::vector<std::size_t> client_shards;
};

// -------------------------------------------------------------- building

ScenarioWorld::ScenarioWorld(ScenarioSpec spec) : spec_(std::move(spec)) {
    validate_spec(spec_);
    core::register_wire_codecs();
    switch (spec_.world) {
        case WorldKind::Classroom: build_classroom(); break;
        case WorldKind::Relay: build_relay(); break;
        case WorldKind::Campus: build_campus(); break;
    }
    arm_timeline();
    schedule_hashes();
}

ScenarioWorld::~ScenarioWorld() {
    try {
        stop();
    } catch (...) {
        // Teardown must not throw out of the destructor.
    }
}

void ScenarioWorld::build_classroom() {
    const ClassroomSpec& c = spec_.classroom;
    core::ClassroomConfig config;
    config.seed = spec_.seed;
    config.course = c.course;
    config.regional_mesh = c.regional_mesh;
    config.lightweight_remote_clients = c.lightweight_remote;
    config.event_bus = c.event_bus;
    config.probe_rate_hz = c.probe_rate_hz;
    if (c.heartbeat.enabled) {
        config.heartbeat.enabled = true;
        config.heartbeat.interval = c.heartbeat.interval;
        config.heartbeat.timeout = c.heartbeat.timeout;
    }
    if (c.degradation.enabled) config.degradation = c.degradation.params;
    if (c.recovery.enabled) {
        config.recovery.enabled = true;
        config.recovery.checkpoint_interval = c.recovery.checkpoint_interval;
    }
    if (c.admission.enabled) config.admission = c.admission.params;
    for (const RoomSpec& room : c.rooms) {
        if (room.preset == "cwb") {
            config.rooms.push_back(core::cwb_room_config());
        } else if (room.preset == "gz") {
            config.rooms.push_back(core::gz_room_config());
        } else {
            core::PhysicalRoomConfig rc;
            rc.name = room.name;
            rc.region = room.region;
            rc.seat_rows = room.rows;
            rc.seat_cols = room.cols;
            rc.headset = sensing::tethered_mr_params();
            config.rooms.push_back(std::move(rc));
        }
    }

    classroom_state_ = std::make_unique<ClassroomState>();
    classroom_state_->classroom = std::make_unique<core::MetaverseClassroom>(config);
    core::MetaverseClassroom& room = *classroom_state_->classroom;

    // Occupancy: when the spec leaves rooms implicit (the CWB+GZ default
    // deployment) it also gets the historical default occupancy.
    if (c.rooms.empty()) {
        room.add_instructor(0);
        for (std::size_t n = 0; n < 6; ++n) room.add_physical_student(0);
        for (std::size_t n = 0; n < 6; ++n) room.add_physical_student(1);
    } else {
        for (std::size_t i = 0; i < c.rooms.size(); ++i) {
            if (c.rooms[i].instructor) room.add_instructor(i);
            for (std::size_t n = 0; n < c.rooms[i].students; ++n)
                room.add_physical_student(i);
        }
    }
    for (const RemoteCohort& cohort : c.remote) {
        auto enrol = [&room, cohort] {
            for (std::size_t n = 0; n < cohort.count; ++n) {
                if (cohort.guest)
                    room.add_guest_speaker(cohort.region);
                else
                    room.add_remote_student(cohort.region);
            }
        };
        if (cohort.join_at > sim::Time::zero()) {
            room.simulator().schedule_at(cohort.join_at, enrol);  // load event
        } else {
            enrol();
        }
    }
    for (const ScheduleBlock& block : c.schedule)
        room.class_session().schedule().append(block.kind, block.duration,
                                               block.team_size);
    if (c.lecture_media_room) room.enable_lecture_media(*c.lecture_media_room);
}

void ScenarioWorld::build_relay() {
    const RelaySpec& r = spec_.relay;
    relay_state_ = std::make_unique<RelayState>();
    RelayState& st = *relay_state_;

    if (spec_.backend == BackendKind::RealUdp) {
        st.real = std::make_unique<net::RealUdpBackend>(
            net::RealUdpBackend::Options{.seed = spec_.seed});
        st.backend = st.real.get();
    } else {
        st.sim = std::make_unique<sim::Simulator>(spec_.seed);
        st.inner = std::make_unique<net::Network>(*st.sim);
        if (spec_.backend == BackendKind::Chaos) {
            st.chaos = std::make_unique<net::ChaosBackend>(*st.inner);
            st.backend = st.chaos.get();
        } else {
            st.backend = st.inner.get();
        }
    }

    st.relay_node = st.backend->add_node("relay", r.region);
    cloud::RelayConfig rc;
    rc.name = "relay";
    rc.serve_resync = r.serve_resync;
    rc.resync_freshness = r.resync_freshness;
    rc.batch_interval = r.batch_interval;
    // The QoE loop drives per-viewer tier rate clocks, which only exist on
    // the aggregated egress path — force aggregation on.
    if (spec_.qoe.enabled) rc.aggregate_interval = spec_.qoe.aggregate_interval;
    st.relay = std::make_unique<cloud::RelayServer>(*st.backend, st.relay_node, rc);
    if (spec_.qoe.enabled) {
        st.qoe = std::make_unique<qoe::QoeService>(*st.backend, st.relay->demux());
        st.qoe->set_aggregator(st.relay->aggregator());
    }

    st.mirror = std::make_unique<replay::AvatarMirror>();
    st.mirror->install(*st.backend);

    net::LinkParams access;
    access.latency = r.access_latency;

    cloud::VrLayout layout;
    std::size_t index = 0;
    for (const ClientCohort& cohort : r.clients) {
        for (std::size_t n = 0; n < cohort.count; ++n, ++index) {
            const ParticipantId who{static_cast<std::uint32_t>(index + 1)};
            const net::NodeId node =
                st.backend->add_node("c" + std::to_string(index), cohort.region);
            if (st.inner) st.inner->connect(node, st.relay_node, access);

            cloud::VrClientConfig vc;
            vc.name = "c" + std::to_string(index);
            vc.room = ClassroomId{1};
            if (cohort.reconnect.enabled) {
                vc.auto_reconnect = true;
                vc.reconnect.liveness_timeout = cohort.reconnect.liveness_timeout;
                vc.reconnect.check_interval = cohort.reconnect.check_interval;
                vc.reconnect.probe_timeout = cohort.reconnect.probe_timeout;
                vc.reconnect.backoff.base = cohort.reconnect.backoff_base;
                vc.reconnect.backoff.cap = cohort.reconnect.backoff_cap;
            }
            if (cohort.adapt.enabled) {
                vc.self_adapt = true;
                vc.degradation = cohort.adapt.params;
            }
            if (spec_.qoe.enabled) {
                vc.qoe.enabled = true;
                vc.qoe.abr = spec_.qoe.abr;
                vc.qoe.budget = spec_.qoe.budget;
                vc.qoe.feedback_interval = spec_.qoe.feedback_interval;
                vc.qoe.playout_delay = spec_.qoe.playout_delay;
                vc.qoe.klass = cohort.priority;
                // Tier count must match the relay aggregator's policy: the
                // client's per-tier scale vectors index into its clocks.
                vc.qoe.interest = rc.interest;
            }
            const net::Priority video_class = cohort.priority == "low"
                                                  ? net::Priority::Bulk
                                                  : net::Priority::Realtime;
            auto client =
                std::make_unique<cloud::VrClient>(*st.backend, node, who, vc);
            cloud::VrClient* raw = client.get();
            const math::Pose seat = layout.seat_pose(index);
            auto join = [&st, raw, who, node, seat, video_class] {
                st.relay->upsert_entity(who, seat.position);
                st.relay->attach_client(node, who, seat.position);
                if (st.qoe) st.qoe->add_client(node, video_class);
                raw->join(st.relay_node, seat);
            };
            if (cohort.join_at > sim::Time::zero()) {
                st.backend->clock().schedule_at(cohort.join_at, join);  // load event
            } else {
                join();
            }
            st.clients.push_back(std::move(client));
            clients_.push_back(raw);
        }
    }

    if (r.control.enabled) {
        st.ctrl_a = st.backend->add_node("ctrl-a", r.control.region_a);
        st.ctrl_b = st.backend->add_node("ctrl-b", r.control.region_b);
        if (st.inner) st.inner->connect(st.ctrl_a, st.ctrl_b, access);
        st.demux_a = std::make_unique<net::PacketDemux>(*st.backend, st.ctrl_a);
        st.demux_b = std::make_unique<net::PacketDemux>(*st.backend, st.ctrl_b);
        st.ctrl = std::make_unique<net::ReliableChannel>(*st.backend, *st.demux_a,
                                                         *st.demux_b, "ctrl");
        st.ctrl->on_delivered(
            [this](net::Payload, sim::Time, int) { ++ctrl_delivered_; });
        st.backend->clock().schedule_every(r.control.interval, [this, &st] {
            st.ctrl->send(200, ctrl_sent_);
            ++ctrl_sent_;
        });
    }
}

void ScenarioWorld::build_campus() {
    const CampusSpec& c = spec_.campus;
    campus_state_ = std::make_unique<CampusState>();
    CampusState& st = *campus_state_;

    if (c.pooled.buildings > 0) {
        core::CampusConfig cc;
        cc.buildings = c.pooled.buildings;
        cc.classrooms_per_building = c.pooled.classrooms_per_building;
        cc.avatars_per_classroom = c.pooled.avatars_per_classroom;
        cc.viewers_per_building = c.pooled.viewers_per_building;
        cc.tick_rate_hz = c.pooled.tick_rate_hz;
        cc.aggregate = c.pooled.aggregate;
        cc.aggregate_interval = c.pooled.aggregate_interval;
        cc.seed = spec_.seed;
        st.pooled = std::make_unique<core::CampusWorld>(std::move(cc));
        return;
    }

    const std::size_t shard_count = 1 + c.regions.size();
    st.world = std::make_unique<core::ShardedWorld>(shard_count, spec_.seed);

    cloud::CloudServerConfig cc;
    cc.room = ClassroomId{1};
    cc.batch_interval = c.batch_interval;
    st.cloud_node = st.world->add_node(0, "cloud", net::Region::HongKong);
    st.origin = std::make_unique<cloud::CloudServer>(st.world->network(0),
                                                     st.cloud_node.node, cc);

    for (std::size_t r = 0; r < c.regions.size(); ++r) {
        const std::size_t shard = r + 1;
        cloud::RelayConfig rc;
        rc.name = "relay-" + std::string{net::region_name(c.regions[r])};
        rc.batch_interval = c.batch_interval;
        const core::GlobalNode node = st.world->add_node(shard, rc.name, c.regions[r]);
        auto relay = std::make_unique<cloud::RelayServer>(st.world->network(shard),
                                                          node.node, std::move(rc));
        st.world->connect_cross_wan(node, st.cloud_node, st.wan);
        relay->set_origin(st.world->proxy_in(shard, st.cloud_node));
        st.origin->add_relay(st.world->proxy_in(0, node));
        st.relays.push_back(std::move(relay));
        st.relay_nodes.push_back(node);
    }

    cloud::VrLayout layout;
    const std::size_t total = c.clients_per_region * c.regions.size();
    for (std::size_t i = 0; i < total; ++i) {
        const std::size_t r = i % c.regions.size();
        const std::size_t shard = r + 1;
        net::Network& net = st.world->network(shard);
        const ParticipantId who{static_cast<std::uint32_t>(i + 1)};
        const net::NodeId node = net.add_node("c" + std::to_string(i), c.regions[r]);
        net.connect_wan(node, st.relay_nodes[r].node, st.wan);

        cloud::VrClientConfig vc;
        vc.name = "c" + std::to_string(i);
        vc.room = ClassroomId{1};
        vc.lightweight = c.lightweight;
        vc.latency_metric = "e2e_ms";
        auto client = std::make_unique<cloud::VrClient>(net, node, who, vc);

        const math::Pose seat = layout.seat_pose(i);
        for (auto& relay : st.relays) relay->upsert_entity(who, seat.position);
        st.origin->place_entity(who);
        st.relays[r]->attach_client(node, who, seat.position);
        client->join(st.relay_nodes[r].node, seat);
        clients_.push_back(client.get());
        st.clients.push_back(std::move(client));
        st.client_shards.push_back(shard);
    }
}

// --------------------------------------------------- timeline and hashes

std::vector<ResolvedNode> ScenarioWorld::resolve(const std::string& ref) const {
    auto fail = [&ref]() -> std::vector<ResolvedNode> {
        throw SpecError("timeline", "unknown node ref '" + ref + "'");
    };
    const auto split = ref.find('/');
    const std::string head = ref.substr(0, split);
    const std::string tail = split == std::string::npos ? "" : ref.substr(split + 1);

    if (classroom_state_) {
        core::MetaverseClassroom& room = *classroom_state_->classroom;
        if (ref == "cloud") return {{0, room.cloud_server().node()}};
        if (head == "edge") {
            const auto idx = ref_index(tail);
            if (!idx || *idx >= room.room_count()) return fail();
            return {{0, room.edge_server(*idx).node()}};
        }
        return fail();
    }
    if (relay_state_) {
        const RelayState& st = *relay_state_;
        if (ref == "relay") return {{0, st.relay_node}};
        if (ref == "ctrl/a" && st.ctrl_a != net::kInvalidNode) return {{0, st.ctrl_a}};
        if (ref == "ctrl/b" && st.ctrl_b != net::kInvalidNode) return {{0, st.ctrl_b}};
        if (head == "client") {
            if (tail == "*") {
                std::vector<ResolvedNode> all;
                for (const auto& c : st.clients) all.push_back({0, c->node()});
                return all;
            }
            const auto idx = ref_index(tail);
            if (!idx || *idx >= st.clients.size()) return fail();
            return {{0, st.clients[*idx]->node()}};
        }
        return fail();
    }
    if (campus_state_) {
        const CampusState& st = *campus_state_;
        if (st.pooled) return fail();  // pooled campus has no symbolic nodes
        if (ref == "cloud") return {{0, st.cloud_node.node}};
        if (head == "relay") {
            for (std::size_t r = 0; r < spec_.campus.regions.size(); ++r) {
                if (net::region_name(spec_.campus.regions[r]) == tail)
                    return {{r + 1, st.relay_nodes[r].node}};
            }
            return fail();
        }
        if (head == "client") {
            if (tail == "*") {
                std::vector<ResolvedNode> all;
                for (std::size_t i = 0; i < st.clients.size(); ++i)
                    all.push_back({st.client_shards[i], st.clients[i]->node()});
                return all;
            }
            const auto idx = ref_index(tail);
            if (!idx || *idx >= st.clients.size()) return fail();
            return {{st.client_shards[*idx], st.clients[*idx]->node()}};
        }
        return fail();
    }
    return fail();
}

fault::FaultPlan* ScenarioWorld::plan(std::size_t shard) {
    return shard < plans_.size() ? plans_[shard].get() : nullptr;
}

void ScenarioWorld::arm_timeline() {
    if (spec_.timeline.empty()) return;
    const std::size_t shard_count =
        campus_state_ ? campus_state_->world->shard_count() : 1;
    plans_.resize(shard_count);
    auto plan_for = [this](std::size_t shard) -> fault::FaultPlan& {
        if (!plans_[shard]) {
            net::Network& net =
                campus_state_
                    ? campus_state_->world->network(shard)
                    : (classroom_state_ ? classroom_state_->classroom->network()
                                        : *relay_state_->inner);
            plans_[shard] = std::make_unique<fault::FaultPlan>(net);
            if (relay_state_ && relay_state_->chaos)
                plans_[shard]->set_chaos(relay_state_->chaos.get());
        }
        return *plans_[shard];
    };
    compile_timeline(
        spec_.timeline, [this](const std::string& ref) { return resolve(ref); },
        plan_for);
    for (auto& plan : plans_)
        if (plan) plan->arm();
}

void ScenarioWorld::schedule_hashes() {
    if (spec_.hash_interval <= sim::Time::zero()) return;
    if (classroom_state_) {
        core::MetaverseClassroom& room = *classroom_state_->classroom;
        room.simulator().schedule_every(spec_.hash_interval, [this, &room] {
            std::uint64_t h = 0;
            for (std::size_t i = 0; i < room.room_count(); ++i)
                h = mix_digest(h, room.edge_server(i).state_digest());
            h = mix_digest(h, room.cloud_server().state_digest());
            hashes_.push_back(h);
        });
    } else if (relay_state_) {
        RelayState& st = *relay_state_;
        st.backend->clock().schedule_every(spec_.hash_interval, [this, &st] {
            hashes_.push_back(st.mirror->state_hash());
        });
    } else if (campus_state_) {
        CampusState& st = *campus_state_;
        // Scheduled in shard 0, reading only shard-0 state (the origin), so
        // the stream is identical for every worker-thread count.
        if (st.pooled) {
            st.pooled->simulator(0).schedule_every(spec_.hash_interval, [this, &st] {
                hashes_.push_back(st.pooled->origin_digest());
            });
        } else {
            st.world->simulator(0).schedule_every(spec_.hash_interval, [this, &st] {
                hashes_.push_back(st.origin->state_digest());
            });
        }
    }
}

// --------------------------------------------------------------- driving

void ScenarioWorld::enable_recording(replay::Recorder& rec) {
    if (classroom_state_) {
        classroom_state_->classroom->enable_recording(rec, spec_.hash_interval);
    } else if (campus_state_) {
        (campus_state_->pooled ? campus_state_->pooled->sharded()
                               : *campus_state_->world)
            .enable_recording(rec);
    } else {
        throw std::logic_error("scenario: recording is classroom/campus only");
    }
}

void ScenarioWorld::run(std::size_t threads) {
    if (classroom_state_) {
        if (!classroom_state_->started) {
            classroom_state_->classroom->start();
            classroom_state_->started = true;
        }
        classroom_state_->classroom->run_for(spec_.duration);
    } else if (relay_state_) {
        if (relay_state_->sim) {
            relay_state_->sim->run_until(relay_state_->sim->now() + spec_.duration);
        } else {
            relay_state_->real->run_for(spec_.duration);
        }
    } else if (campus_state_) {
        if (campus_state_->pooled) {
            campus_state_->pooled->run_until(spec_.duration, threads);
        } else {
            campus_state_->world->run_until(spec_.duration, threads);
        }
    }
}

void ScenarioWorld::stop() {
    if (stopped_) return;
    stopped_ = true;
    if (classroom_state_ && classroom_state_->started)
        classroom_state_->classroom->stop();
    if (relay_state_) {
        for (auto& c : relay_state_->clients) {
            if (relay_state_->qoe) relay_state_->qoe->remove_client(c->node());
            c->leave();
        }
    }
}

// --------------------------------------------------------------- metrics

sim::MetricsRecorder ScenarioWorld::collect_metrics() const {
    sim::MetricsRecorder out;
    if (classroom_state_) {
        out.merge(classroom_state_->classroom->network().metrics());
    } else if (relay_state_) {
        const RelayState& st = *relay_state_;
        out.merge(st.inner ? st.inner->metrics() : st.real->metrics());
        if (st.chaos) {
            out.count("chaos.dropped", st.chaos->dropped());
            out.count("chaos.duplicated", st.chaos->duplicated());
            out.count("chaos.reordered", st.chaos->reordered());
            out.count("chaos.corrupted", st.chaos->corrupted());
            out.count("chaos.blackholed", st.chaos->blackholed());
        }
        if (st.ctrl) {
            out.count("scenario.ctrl_sent", ctrl_sent_);
            out.count("scenario.ctrl_delivered", ctrl_delivered_);
        }
        std::uint64_t resyncs = 0;
        std::uint64_t outages = 0;
        std::uint64_t reconnects = 0;
        std::uint64_t max_level = 0;
        for (const auto& c : st.clients) {
            resyncs += c->resyncs_applied();
            if (const recovery::Reconnector* rec = c->reconnector()) {
                outages += rec->outages();
                reconnects += rec->reconnects();
            }
            max_level =
                std::max(max_level, static_cast<std::uint64_t>(c->degradation_level()));
        }
        out.count("scenario.resyncs_applied", resyncs);
        out.count("scenario.outages", outages);
        out.count("scenario.reconnects", reconnects);
        out.count("scenario.degradation_level_now", max_level);
        if (st.qoe) {
            out.count("qoe.feedback_received", st.qoe->feedback_received());
            out.count("qoe.rung_changes", st.qoe->rung_changes());
            out.count("qoe.frames_sent", st.qoe->frames_sent());
            if (sync::CellDeltaAggregator* agg = st.relay->aggregator())
                out.count("sync.suppressed_budget", agg->suppressed_by_budget());
        }
    } else if (campus_state_) {
        out.merge(campus_state_->pooled ? campus_state_->pooled->merged_metrics()
                                        : campus_state_->world->merged_metrics());
    }
    out.count("scenario.hash_epochs", hashes_.size());
    return out;
}

// ------------------------------------------------------------- accessors

sim::Simulator& ScenarioWorld::simulator() {
    if (classroom_state_) return classroom_state_->classroom->simulator();
    if (relay_state_) {
        if (!relay_state_->sim)
            throw std::logic_error("scenario: real_udp runs on a wall clock");
        return *relay_state_->sim;
    }
    return campus_state_->pooled ? campus_state_->pooled->simulator(0)
                                 : campus_state_->world->simulator(0);
}

net::Backend& ScenarioWorld::backend() {
    if (classroom_state_) return classroom_state_->classroom->network();
    if (relay_state_) return *relay_state_->backend;
    return campus_state_->pooled ? campus_state_->pooled->network(0)
                                 : campus_state_->world->network(0);
}

core::MetaverseClassroom& ScenarioWorld::classroom() {
    if (!classroom_state_) throw std::logic_error("scenario: not a classroom world");
    return *classroom_state_->classroom;
}

cloud::RelayServer& ScenarioWorld::relay() {
    if (!relay_state_) throw std::logic_error("scenario: not a relay world");
    return *relay_state_->relay;
}

cloud::VrClient& ScenarioWorld::client(std::size_t i) {
    if (i >= clients_.size()) throw std::out_of_range("scenario: client index");
    return *clients_[i];
}

net::ChaosBackend* ScenarioWorld::chaos() {
    return relay_state_ ? relay_state_->chaos.get() : nullptr;
}

replay::AvatarMirror* ScenarioWorld::mirror() {
    return relay_state_ ? relay_state_->mirror.get() : nullptr;
}

core::ShardedWorld& ScenarioWorld::campus() {
    if (!campus_state_) throw std::logic_error("scenario: not a campus world");
    return campus_state_->pooled ? campus_state_->pooled->sharded()
                                 : *campus_state_->world;
}

core::CampusWorld* ScenarioWorld::pooled_campus() {
    return campus_state_ ? campus_state_->pooled.get() : nullptr;
}

std::unique_ptr<ScenarioWorld> build(const ScenarioSpec& spec) {
    return std::make_unique<ScenarioWorld>(spec);
}

}  // namespace mvc::scenario
