#pragma once
// ScenarioRunner: drive a built ScenarioWorld for its declared duration,
// snapshot metrics, evaluate the spec's declarative SLO gates, and package
// everything as a ScenarioReport the benches/CLI export as BENCH_<name>.json.
//
// SLO metric names resolve against the collected MetricsRecorder: an exact
// counter name ("chaos.dropped", "shard.lookahead_violations"), or
// "<series>.<stat>" with stat one of count/mean/min/max/p50/p95/p99
// ("cloud.e2e_ms.p95"). A gate whose metric does not exist fails — a typo'd
// gate must not silently pass.

#include <optional>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "scenario/spec.hpp"
#include "scenario/world.hpp"
#include "sim/metrics.hpp"

namespace mvc::core {
struct ClassReport;
}  // namespace mvc::core

namespace mvc::scenario {

struct SloResult {
    SloGate gate;
    std::optional<double> value;  ///< nullopt: metric missing from the run
    bool passed{false};
};

struct ScenarioReport {
    std::string name;
    std::string stamp;
    common::Json metrics;  ///< MetricsRecorder::to_json() snapshot
    std::vector<std::uint64_t> hashes;
    std::vector<SloResult> slos;
    bool passed{true};  ///< every SLO held
};

/// Look one SLO metric up in a recorder (counter name or "<series>.<stat>").
[[nodiscard]] std::optional<double> metric_value(const sim::MetricsRecorder& metrics,
                                                 const std::string& name);

/// Evaluate the spec's gates against collected metrics.
[[nodiscard]] std::vector<SloResult> evaluate_slos(const sim::MetricsRecorder& metrics,
                                                   const std::vector<SloGate>& gates);

/// Drive an already-built world for the spec's duration and report. The
/// world must not have been run yet.
[[nodiscard]] ScenarioReport run_world(ScenarioWorld& world, std::size_t threads = 1);

/// The one-call path: build(spec), run, report.
[[nodiscard]] ScenarioReport run_scenario(const ScenarioSpec& spec,
                                          std::size_t threads = 1);

[[nodiscard]] common::Json report_to_json(const ScenarioReport& report);

/// Read + parse a `.scenario.json` file. Unreadable files and schema
/// violations throw SpecError (path context = the file name).
[[nodiscard]] ScenarioSpec load_spec_file(const std::string& path);

/// Serialize a latency series as {n, mean, p50, p95, p99}.
[[nodiscard]] common::Json series_to_json(const math::SampleSeries& series);
/// Classroom-world dashboard export: the full ClassReport as JSON.
[[nodiscard]] common::Json class_report_to_json(const core::ClassReport& report);

}  // namespace mvc::scenario
