#include "scenario/spec.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "session/activity.hpp"

namespace mvc::scenario {

namespace {

// Round-trip-stable time parsing: spec_to_json emits Time as a double via
// to_seconds()/to_ms(), and Time::seconds()/ms() TRUNCATE the product, so
// ns -> double -> ns-1 is possible. Rounding recovers the exact nanosecond
// count, which the fuzzer's lossless round-trip contract depends on.
[[nodiscard]] sim::Time seconds_of(double v) {
    return sim::Time::ns(std::llround(v * 1e9));
}
[[nodiscard]] sim::Time millis_of(double v) {
    return sim::Time::ns(std::llround(v * 1e6));
}

// Strict object walker: every read marks its key as consumed, and done()
// rejects anything left over with the full dotted path. All type errors
// carry the path too, which is what makes typos in a 200-line spec file
// debuggable instead of silently ignored.
class Obj {
public:
    Obj(const common::Json& j, std::string path) : path_(std::move(path)) {
        if (!j.is_object()) throw SpecError(path_, "must be an object");
        obj_ = &j.as_object();
    }

    [[nodiscard]] const common::Json* find(std::string_view key) {
        seen_.insert(std::string{key});
        const auto it = obj_->find(std::string{key});
        return it == obj_->end() ? nullptr : &it->second;
    }

    [[nodiscard]] double number(std::string_view key, double fallback) {
        const common::Json* v = find(key);
        if (!v) return fallback;
        if (!v->is_number()) throw SpecError(child(key), "must be a number");
        return v->as_number();
    }

    [[nodiscard]] std::size_t count(std::string_view key, std::size_t fallback) {
        const double d = number(key, static_cast<double>(fallback));
        if (d < 0.0 || d != static_cast<double>(static_cast<std::uint64_t>(d)))
            throw SpecError(child(key), "must be a non-negative integer");
        return static_cast<std::size_t>(d);
    }

    [[nodiscard]] bool boolean(std::string_view key, bool fallback) {
        const common::Json* v = find(key);
        if (!v) return fallback;
        if (!v->is_bool()) throw SpecError(child(key), "must be a boolean");
        return v->as_bool();
    }

    [[nodiscard]] std::string str(std::string_view key, std::string fallback) {
        const common::Json* v = find(key);
        if (!v) return fallback;
        if (!v->is_string()) throw SpecError(child(key), "must be a string");
        return v->as_string();
    }

    [[nodiscard]] sim::Time seconds(std::string_view key, sim::Time fallback) {
        const common::Json* v = find(key);
        if (!v) return fallback;
        if (!v->is_number()) throw SpecError(child(key), "must be a number (seconds)");
        if (v->as_number() < 0.0) throw SpecError(child(key), "must be >= 0");
        return seconds_of(v->as_number());
    }

    [[nodiscard]] sim::Time millis(std::string_view key, sim::Time fallback) {
        const common::Json* v = find(key);
        if (!v) return fallback;
        if (!v->is_number()) throw SpecError(child(key), "must be a number (ms)");
        if (v->as_number() < 0.0) throw SpecError(child(key), "must be >= 0");
        return millis_of(v->as_number());
    }

    [[nodiscard]] net::Region region(std::string_view key, net::Region fallback) {
        const common::Json* v = find(key);
        if (!v) return fallback;
        if (!v->is_string()) throw SpecError(child(key), "must be a region name string");
        const auto r = region_from_name(v->as_string());
        if (!r) throw SpecError(child(key), "unknown region '" + v->as_string() + "'");
        return *r;
    }

    [[nodiscard]] const common::JsonArray* array(std::string_view key) {
        const common::Json* v = find(key);
        if (!v) return nullptr;
        if (!v->is_array()) throw SpecError(child(key), "must be an array");
        return &v->as_array();
    }

    void done() {
        for (const auto& [key, value] : *obj_) {
            if (!seen_.contains(key))
                throw SpecError(child(key), "unknown key");
        }
    }

    [[nodiscard]] std::string child(std::string_view key) const {
        return path_.empty() ? std::string{key} : path_ + "." + std::string{key};
    }

private:
    const common::JsonObject* obj_;
    std::string path_;
    std::set<std::string, std::less<>> seen_;
};

[[nodiscard]] std::string elem(const std::string& path, std::size_t i) {
    return path + "[" + std::to_string(i) + "]";
}

HeartbeatSpec parse_heartbeat(const common::Json& j, const std::string& path) {
    Obj o{j, path};
    HeartbeatSpec hb;
    hb.enabled = true;  // presence enables
    hb.interval = o.millis("interval_ms", hb.interval);
    hb.timeout = o.millis("timeout_ms", hb.timeout);
    o.done();
    return hb;
}

fault::DegradationParams parse_degradation_params(Obj& o) {
    fault::DegradationParams p;
    p.enter_loss = o.number("enter_loss", p.enter_loss);
    p.exit_loss = o.number("exit_loss", p.exit_loss);
    p.enter_rtt_ms = o.number("enter_rtt_ms", p.enter_rtt_ms);
    p.exit_rtt_ms = o.number("exit_rtt_ms", p.exit_rtt_ms);
    p.max_level = static_cast<int>(o.count("max_level", static_cast<std::size_t>(p.max_level)));
    return p;
}

ClassroomSpec parse_classroom(const common::Json& j, const std::string& path) {
    Obj o{j, path};
    ClassroomSpec c;
    c.course = o.str("course", c.course);
    c.regional_mesh = o.boolean("regional_mesh", c.regional_mesh);
    c.lightweight_remote = o.boolean("lightweight_remote", c.lightweight_remote);
    c.event_bus = o.boolean("event_bus", c.event_bus);
    c.probe_rate_hz = o.number("probe_rate_hz", c.probe_rate_hz);

    if (const common::Json* hb = o.find("heartbeat"))
        c.heartbeat = parse_heartbeat(*hb, o.child("heartbeat"));
    if (const common::Json* dg = o.find("degradation")) {
        Obj d{*dg, o.child("degradation")};
        c.degradation.enabled = true;
        c.degradation.params = parse_degradation_params(d);
        c.degradation.params.hold = d.seconds("hold_s", c.degradation.params.hold);
        d.done();
    }
    if (const common::Json* rc = o.find("recovery")) {
        Obj r{*rc, o.child("recovery")};
        c.recovery.enabled = true;
        c.recovery.checkpoint_interval =
            r.seconds("checkpoint_s", c.recovery.checkpoint_interval);
        r.done();
    }
    if (const common::Json* ad = o.find("admission")) {
        Obj a{*ad, o.child("admission")};
        c.admission.enabled = true;
        c.admission.params.enabled = true;
        c.admission.params.queue_capacity =
            a.count("queue_capacity", c.admission.params.queue_capacity);
        c.admission.params.shed_enter_depth =
            a.count("shed_enter_depth", c.admission.params.shed_enter_depth);
        c.admission.params.shed_exit_depth =
            a.count("shed_exit_depth", c.admission.params.shed_exit_depth);
        c.admission.params.hold = a.millis("hold_ms", c.admission.params.hold);
        a.done();
    }

    if (const common::JsonArray* rooms = o.array("rooms")) {
        for (std::size_t i = 0; i < rooms->size(); ++i) {
            const std::string rp = elem(o.child("rooms"), i);
            Obj r{(*rooms)[i], rp};
            RoomSpec room;
            room.preset = r.str("preset", "");
            if (!room.preset.empty() && room.preset != "cwb" && room.preset != "gz")
                throw SpecError(rp + ".preset", "must be \"cwb\" or \"gz\"");
            if (room.preset.empty()) {
                // Custom room: full geometry required/derivable.
                room.name = r.str("name", "room" + std::to_string(i + 1));
                room.region = r.region("region", room.region);
                room.rows = r.count("rows", room.rows);
                room.cols = r.count("cols", room.cols);
                if (room.rows == 0 || room.cols == 0)
                    throw SpecError(rp + ".rows", "rows/cols must be positive");
            }
            // Preset rooms take the paper config verbatim: geometry keys are
            // left unconsumed so done() rejects them.
            room.students = r.count("students", 0);
            room.instructor = r.boolean("instructor", false);
            r.done();
            c.rooms.push_back(std::move(room));
        }
    }

    if (const common::JsonArray* remote = o.array("remote")) {
        for (std::size_t i = 0; i < remote->size(); ++i) {
            Obj r{(*remote)[i], elem(o.child("remote"), i)};
            RemoteCohort cohort;
            cohort.region = r.region("region", cohort.region);
            cohort.count = r.count("count", cohort.count);
            cohort.join_at = r.seconds("join_at_s", cohort.join_at);
            cohort.guest = r.boolean("guest", cohort.guest);
            r.done();
            c.remote.push_back(cohort);
        }
    }

    if (const common::Json* media = o.find("lecture_media_room")) {
        if (!media->is_number())
            throw SpecError(o.child("lecture_media_room"), "must be a room index");
        c.lecture_media_room = static_cast<std::size_t>(media->as_number());
    }

    if (const common::JsonArray* schedule = o.array("schedule")) {
        for (std::size_t i = 0; i < schedule->size(); ++i) {
            const std::string bp = elem(o.child("schedule"), i);
            Obj b{(*schedule)[i], bp};
            ScheduleBlock block;
            const std::string name = b.str("activity", "lecture");
            const auto kind = activity_from_name(name);
            if (!kind) throw SpecError(bp + ".activity", "unknown activity '" + name + "'");
            block.kind = *kind;
            block.duration = seconds_of(b.number("minutes", 10.0) * 60.0);
            block.team_size = b.count("team_size", 0);
            b.done();
            c.schedule.push_back(block);
        }
    }
    o.done();
    return c;
}

RelaySpec parse_relay(const common::Json& j, const std::string& path) {
    Obj o{j, path};
    RelaySpec r;
    r.region = o.region("region", r.region);
    r.serve_resync = o.boolean("serve_resync", r.serve_resync);
    r.resync_freshness = o.seconds("resync_freshness_s", r.resync_freshness);
    r.access_latency = o.millis("access_ms", r.access_latency);
    r.batch_interval = o.millis("batch_ms", r.batch_interval);

    if (const common::Json* ctrl = o.find("control")) {
        Obj c{*ctrl, o.child("control")};
        r.control.enabled = true;
        r.control.interval = c.millis("interval_ms", r.control.interval);
        r.control.region_a = c.region("region_a", r.control.region_a);
        r.control.region_b = c.region("region_b", r.control.region_b);
        c.done();
    }

    if (const common::JsonArray* clients = o.array("clients")) {
        for (std::size_t i = 0; i < clients->size(); ++i) {
            const std::string cp = elem(o.child("clients"), i);
            Obj c{(*clients)[i], cp};
            ClientCohort cohort;
            cohort.count = c.count("count", cohort.count);
            cohort.region = c.region("region", cohort.region);
            cohort.join_at = c.seconds("join_at_s", cohort.join_at);
            if (const common::Json* rec = c.find("reconnect")) {
                Obj rr{*rec, cp + ".reconnect"};
                cohort.reconnect.enabled = true;
                cohort.reconnect.liveness_timeout =
                    rr.seconds("liveness_s", cohort.reconnect.liveness_timeout);
                cohort.reconnect.check_interval =
                    rr.millis("check_ms", cohort.reconnect.check_interval);
                cohort.reconnect.probe_timeout =
                    rr.millis("probe_ms", cohort.reconnect.probe_timeout);
                cohort.reconnect.backoff_base =
                    rr.millis("backoff_base_ms", cohort.reconnect.backoff_base);
                cohort.reconnect.backoff_cap =
                    rr.seconds("backoff_cap_s", cohort.reconnect.backoff_cap);
                rr.done();
            }
            if (const common::Json* ad = c.find("self_adapt")) {
                Obj aa{*ad, cp + ".self_adapt"};
                cohort.adapt.enabled = true;
                cohort.adapt.params = parse_degradation_params(aa);
                cohort.adapt.params.hold = aa.millis("hold_ms", cohort.adapt.params.hold);
                aa.done();
            }
            cohort.priority = c.str("priority", cohort.priority);
            if (cohort.priority != "high" && cohort.priority != "low")
                throw SpecError(cp + ".priority", "must be \"high\" or \"low\"");
            c.done();
            r.clients.push_back(cohort);
        }
    }
    o.done();
    return r;
}

QoeSpec parse_qoe(const common::Json& j, const std::string& path) {
    Obj o{j, path};
    QoeSpec q;
    q.enabled = true;  // presence enables
    q.feedback_interval = o.millis("feedback_ms", q.feedback_interval);
    q.aggregate_interval = o.millis("aggregate_ms", q.aggregate_interval);
    q.playout_delay = o.millis("playout_ms", q.playout_delay);
    q.abr.safety = o.number("safety", q.abr.safety);
    q.abr.reserve_bps = o.number("reserve_bps", q.abr.reserve_bps);
    q.abr.down_loss = o.number("down_loss", q.abr.down_loss);
    q.abr.up_loss = o.number("up_loss", q.abr.up_loss);
    q.abr.hold_down = o.millis("hold_down_ms", q.abr.hold_down);
    q.abr.hold_up = o.millis("hold_up_ms", q.abr.hold_up);
    q.abr.min_dwell = o.millis("dwell_ms", q.abr.min_dwell);
    q.budget.safety = q.abr.safety;
    q.budget.avatar_full_bps = o.number("avatar_full_bps", q.budget.avatar_full_bps);
    q.budget.floor_scale = o.number("floor_scale", q.budget.floor_scale);
    q.budget.fovea_cos = o.number("fovea_cos", q.budget.fovea_cos);
    o.done();
    if (q.abr.down_loss <= q.abr.up_loss)
        throw SpecError(path + ".down_loss", "must exceed up_loss (hysteresis gap)");
    return q;
}

CampusSpec parse_campus(const common::Json& j, const std::string& path) {
    Obj o{j, path};
    CampusSpec c;
    if (const common::JsonArray* regions = o.array("regions")) {
        for (std::size_t i = 0; i < regions->size(); ++i) {
            const common::Json& v = (*regions)[i];
            const std::string rp = elem(o.child("regions"), i);
            if (!v.is_string()) throw SpecError(rp, "must be a region name string");
            const auto r = region_from_name(v.as_string());
            if (!r) throw SpecError(rp, "unknown region '" + v.as_string() + "'");
            c.regions.push_back(*r);
        }
    }
    c.clients_per_region = o.count("clients_per_region", c.clients_per_region);
    c.batch_interval = o.millis("batch_ms", c.batch_interval);
    c.lightweight = o.boolean("lightweight", c.lightweight);
    if (const common::Json* pooled = o.find("pooled")) {
        Obj p{*pooled, o.child("pooled")};
        c.pooled.buildings = p.count("buildings", c.pooled.buildings);
        c.pooled.classrooms_per_building =
            p.count("classrooms_per_building", c.pooled.classrooms_per_building);
        c.pooled.avatars_per_classroom =
            p.count("avatars_per_classroom", c.pooled.avatars_per_classroom);
        c.pooled.viewers_per_building =
            p.count("viewers_per_building", c.pooled.viewers_per_building);
        c.pooled.tick_rate_hz = p.number("tick_rate_hz", c.pooled.tick_rate_hz);
        c.pooled.aggregate = p.boolean("aggregate", c.pooled.aggregate);
        c.pooled.aggregate_interval =
            p.millis("aggregate_ms", c.pooled.aggregate_interval);
        p.done();
    }
    o.done();
    return c;
}

net::ChaosProfile parse_profile(const common::Json& j, const std::string& path) {
    Obj o{j, path};
    net::ChaosProfile p;
    p.drop = o.number("drop", p.drop);
    p.ge_p_bad = o.number("ge_p_bad", p.ge_p_bad);
    p.ge_p_good = o.number("ge_p_good", p.ge_p_good);
    p.ge_loss_bad = o.number("ge_loss_bad", p.ge_loss_bad);
    p.ge_loss_good = o.number("ge_loss_good", p.ge_loss_good);
    p.duplicate = o.number("duplicate", p.duplicate);
    p.reorder = o.number("reorder", p.reorder);
    p.reorder_hold = o.millis("reorder_hold_ms", p.reorder_hold);
    p.delay = o.millis("delay_ms", p.delay);
    p.jitter = o.millis("jitter_ms", p.jitter);
    p.corrupt = o.number("corrupt", p.corrupt);
    p.throttle_bps = o.number("throttle_bps", p.throttle_bps);
    p.throttle_backlog = o.millis("throttle_backlog_ms", p.throttle_backlog);
    o.done();
    return p;
}

fault::FaultModel parse_fault_model(const common::Json& j, const std::string& path) {
    Obj o{j, path};
    fault::FaultModel m;
    m.link_flaps_per_min = o.number("flaps_per_min", m.link_flaps_per_min);
    m.mean_outage = o.seconds("mean_outage_s", m.mean_outage);
    m.loss_bursts_per_min = o.number("bursts_per_min", m.loss_bursts_per_min);
    m.mean_burst = o.seconds("mean_burst_s", m.mean_burst);
    m.burst_loss = o.number("burst_loss", m.burst_loss);
    m.latency_spikes_per_min = o.number("spikes_per_min", m.latency_spikes_per_min);
    m.mean_spike = o.seconds("mean_spike_s", m.mean_spike);
    m.spike_extra_latency = o.millis("spike_extra_ms", m.spike_extra_latency);
    m.node_crashes_per_min = o.number("crashes_per_min", m.node_crashes_per_min);
    m.mean_downtime = o.seconds("mean_downtime_s", m.mean_downtime);
    o.done();
    return m;
}

[[nodiscard]] std::string required_str(Obj& o, std::string_view key) {
    const std::string v = o.str(key, "");
    if (v.empty()) throw SpecError(o.child(key), "required");
    return v;
}

TimelineEntry parse_timeline_entry(const common::Json& j, const std::string& path) {
    Obj o{j, path};
    TimelineEntry e;
    const std::string kind_name = required_str(o, "kind");
    const auto kind = timeline_kind_from_name(kind_name);
    if (!kind) throw SpecError(o.child("kind"), "unknown kind '" + kind_name + "'");
    e.kind = *kind;

    switch (e.kind) {
        case TimelineKind::LinkOutage:
            e.at = o.seconds("at_s", e.at);
            e.duration = o.seconds("duration_s", e.duration);
            e.a = required_str(o, "a");
            e.b = required_str(o, "b");
            break;
        case TimelineKind::LossBurst:
            e.at = o.seconds("at_s", e.at);
            e.duration = o.seconds("duration_s", e.duration);
            e.a = required_str(o, "a");
            e.b = required_str(o, "b");
            e.loss = o.number("loss", e.loss);
            if (e.loss < 0.0 || e.loss > 1.0)
                throw SpecError(o.child("loss"), "must be in [0, 1]");
            break;
        case TimelineKind::LatencySpike:
            e.at = o.seconds("at_s", e.at);
            e.duration = o.seconds("duration_s", e.duration);
            e.a = required_str(o, "a");
            e.b = required_str(o, "b");
            e.extra_latency = o.millis("extra_ms", sim::Time::ms(80));
            break;
        case TimelineKind::NodeOutage:
            e.at = o.seconds("at_s", e.at);
            e.duration = o.seconds("duration_s", e.duration);
            e.a = required_str(o, "node");
            break;
        case TimelineKind::ChaosWindow: {
            e.at = o.seconds("at_s", e.at);
            e.duration = o.seconds("duration_s", e.duration);
            e.a = required_str(o, "a");
            e.b = required_str(o, "b");
            const common::Json* profile = o.find("profile");
            if (!profile) throw SpecError(o.child("profile"), "required");
            e.profile = parse_profile(*profile, o.child("profile"));
            if (!e.profile.active())
                throw SpecError(o.child("profile"), "profile injects nothing");
            break;
        }
        case TimelineKind::Blackhole:
            e.at = o.seconds("at_s", e.at);
            e.duration = o.seconds("duration_s", e.duration);
            e.a = required_str(o, "from");
            e.b = required_str(o, "to");
            break;
        case TimelineKind::Partition:
            e.at = o.seconds("at_s", e.at);
            e.duration = o.seconds("duration_s", e.duration);
            e.a = required_str(o, "a");
            e.b = required_str(o, "b");
            break;
        case TimelineKind::Random: {
            e.from = o.seconds("from_s", e.from);
            e.until = o.seconds("until_s", e.until);
            if (e.until <= e.from)
                throw SpecError(o.child("until_s"), "must exceed from_s");
            e.stream = o.str("stream", e.stream);
            const common::Json* model = o.find("model");
            if (!model) throw SpecError(o.child("model"), "required");
            e.model = parse_fault_model(*model, o.child("model"));
            if (const common::JsonArray* links = o.array("links")) {
                for (std::size_t i = 0; i < links->size(); ++i) {
                    const common::Json& pair = (*links)[i];
                    const std::string lp = elem(o.child("links"), i);
                    if (!pair.is_array() || pair.as_array().size() != 2 ||
                        !pair.as_array()[0].is_string() || !pair.as_array()[1].is_string())
                        throw SpecError(lp, "must be a [a, b] node-ref pair");
                    e.links.emplace_back(pair.as_array()[0].as_string(),
                                         pair.as_array()[1].as_string());
                }
            }
            if (const common::JsonArray* nodes = o.array("nodes")) {
                for (std::size_t i = 0; i < nodes->size(); ++i) {
                    const common::Json& node = (*nodes)[i];
                    if (!node.is_string())
                        throw SpecError(elem(o.child("nodes"), i),
                                        "must be a node-ref string");
                    e.nodes.push_back(node.as_string());
                }
            }
            if (e.links.empty() && e.nodes.empty())
                throw SpecError(path, "random entry needs links and/or nodes");
            break;
        }
    }
    o.done();
    // Every scheduled (non-Random) kind is a window; zero-length windows are
    // always spec bugs.
    if (e.kind != TimelineKind::Random && e.duration <= sim::Time::zero())
        throw SpecError(o.child("duration_s"), "must be > 0");
    return e;
}

SloGate parse_slo(const common::Json& j, const std::string& path) {
    Obj o{j, path};
    SloGate g;
    g.metric = required_str(o, "metric");
    if (const common::Json* v = o.find("min")) {
        if (!v->is_number()) throw SpecError(o.child("min"), "must be a number");
        g.min = v->as_number();
    }
    if (const common::Json* v = o.find("max")) {
        if (!v->is_number()) throw SpecError(o.child("max"), "must be a number");
        g.max = v->as_number();
    }
    o.done();
    if (!g.min && !g.max) throw SpecError(path, "needs min and/or max");
    if (g.min && g.max && *g.min > *g.max)
        throw SpecError(o.child("min"), "min exceeds max");
    return g;
}

}  // namespace

std::string_view world_name(WorldKind kind) {
    switch (kind) {
        case WorldKind::Classroom: return "classroom";
        case WorldKind::Relay: return "relay";
        case WorldKind::Campus: return "campus";
    }
    return "?";
}

std::optional<WorldKind> world_from_name(std::string_view name) {
    for (const WorldKind k : {WorldKind::Classroom, WorldKind::Relay, WorldKind::Campus})
        if (world_name(k) == name) return k;
    return std::nullopt;
}

std::string_view backend_name(BackendKind kind) {
    switch (kind) {
        case BackendKind::Sim: return "sim";
        case BackendKind::Chaos: return "chaos";
        case BackendKind::RealUdp: return "real_udp";
    }
    return "?";
}

std::optional<BackendKind> backend_from_name(std::string_view name) {
    for (const BackendKind k :
         {BackendKind::Sim, BackendKind::Chaos, BackendKind::RealUdp})
        if (backend_name(k) == name) return k;
    return std::nullopt;
}

std::string_view timeline_kind_name(TimelineKind kind) {
    switch (kind) {
        case TimelineKind::LinkOutage: return "link_outage";
        case TimelineKind::LossBurst: return "loss_burst";
        case TimelineKind::LatencySpike: return "latency_spike";
        case TimelineKind::NodeOutage: return "node_outage";
        case TimelineKind::ChaosWindow: return "chaos";
        case TimelineKind::Blackhole: return "blackhole";
        case TimelineKind::Partition: return "partition";
        case TimelineKind::Random: return "random";
    }
    return "?";
}

std::optional<TimelineKind> timeline_kind_from_name(std::string_view name) {
    for (const TimelineKind k :
         {TimelineKind::LinkOutage, TimelineKind::LossBurst, TimelineKind::LatencySpike,
          TimelineKind::NodeOutage, TimelineKind::ChaosWindow, TimelineKind::Blackhole,
          TimelineKind::Partition, TimelineKind::Random})
        if (timeline_kind_name(k) == name) return k;
    return std::nullopt;
}

std::optional<net::Region> region_from_name(std::string_view name) {
    for (const net::Region r : net::all_regions())
        if (net::region_name(r) == name) return r;
    return std::nullopt;
}

std::optional<session::ActivityKind> activity_from_name(std::string_view name) {
    using session::ActivityKind;
    for (const ActivityKind k :
         {ActivityKind::Lecture, ActivityKind::Qa, ActivityKind::GamifiedBreakout,
          ActivityKind::LearnerPresentation, ActivityKind::VirtualLab})
        if (session::activity_name(k) == name) return k;
    return std::nullopt;
}

ScenarioSpec scenario_from_json(const common::Json& doc) {
    Obj o{doc, ""};
    ScenarioSpec s;

    const common::Json* version = o.find("scenario_version");
    if (!version) throw SpecError("scenario_version", "required");
    if (!version->is_number() || version->as_number() != kSpecVersion)
        throw SpecError("scenario_version",
                        "unsupported (this build understands version " +
                            std::to_string(kSpecVersion) + ")");
    s.version = kSpecVersion;

    s.name = o.str("name", s.name);
    const std::string world = o.str("world", std::string{world_name(s.world)});
    const auto wk = world_from_name(world);
    if (!wk) throw SpecError("world", "unknown world '" + world + "'");
    s.world = *wk;

    const std::string backend = o.str("backend", std::string{backend_name(s.backend)});
    const auto bk = backend_from_name(backend);
    if (!bk) throw SpecError("backend", "unknown backend '" + backend + "'");
    s.backend = *bk;

    s.seed = static_cast<std::uint64_t>(o.count("seed", static_cast<std::size_t>(s.seed)));
    s.duration = o.seconds("duration_s", s.duration);
    s.hash_interval = o.millis("hash_ms", s.hash_interval);

    for (const WorldKind k : {WorldKind::Classroom, WorldKind::Relay, WorldKind::Campus}) {
        const std::string key{world_name(k)};
        const common::Json* section = o.find(key);
        if (!section) continue;
        if (k != s.world)
            throw SpecError(key, "section present but world is '" +
                                     std::string{world_name(s.world)} + "'");
        switch (k) {
            case WorldKind::Classroom: s.classroom = parse_classroom(*section, key); break;
            case WorldKind::Relay: s.relay = parse_relay(*section, key); break;
            case WorldKind::Campus: s.campus = parse_campus(*section, key); break;
        }
    }

    if (const common::Json* q = o.find("qoe")) s.qoe = parse_qoe(*q, "qoe");

    if (const common::JsonArray* timeline = o.array("timeline")) {
        for (std::size_t i = 0; i < timeline->size(); ++i)
            s.timeline.push_back(parse_timeline_entry((*timeline)[i], elem("timeline", i)));
    }
    if (const common::JsonArray* slos = o.array("slos")) {
        for (std::size_t i = 0; i < slos->size(); ++i)
            s.slos.push_back(parse_slo((*slos)[i], elem("slos", i)));
    }
    o.done();
    validate_spec(s);
    return s;
}

ScenarioSpec scenario_from_text(std::string_view text) {
    common::Json doc;
    try {
        doc = common::Json::parse(text);
    } catch (const common::JsonParseError& err) {
        // Re-throw with line/column context so a broken spec file points at
        // the offending line, not a byte offset.
        const std::size_t offset = std::min(err.offset(), text.size());
        std::size_t line = 1;
        std::size_t col = 1;
        for (std::size_t i = 0; i < offset; ++i) {
            if (text[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
        std::ostringstream msg;
        msg << "invalid JSON at line " << line << ", column " << col << ": "
            << err.what();
        throw SpecError("", msg.str());
    }
    return scenario_from_json(doc);
}

void validate_spec(const ScenarioSpec& spec) {
    using common::Json;
    if (spec.version != kSpecVersion)
        throw SpecError("scenario_version", "unsupported");
    if (spec.duration <= sim::Time::zero())
        throw SpecError("duration_s", "must be > 0");
    if (spec.name.empty()) throw SpecError("name", "must not be empty");

    const bool chaos_ok = spec.world == WorldKind::Relay;
    switch (spec.world) {
        case WorldKind::Classroom:
            if (spec.backend != BackendKind::Sim)
                throw SpecError("backend",
                                "classroom world runs on the sim backend only "
                                "(the classroom owns its net::Network)");
            break;
        case WorldKind::Relay:
            if (spec.relay.clients.empty())
                throw SpecError("relay.clients", "needs at least one cohort");
            if (spec.backend == BackendKind::RealUdp && !spec.timeline.empty())
                throw SpecError("timeline",
                                "real_udp backend cannot schedule faults "
                                "(no simulated links to fail)");
            break;
        case WorldKind::Campus:
            if (spec.backend != BackendKind::Sim)
                throw SpecError("backend", "campus world runs on the sim backend only");
            if (spec.campus.pooled.buildings > 0) {
                if (!spec.campus.regions.empty())
                    throw SpecError("campus.regions",
                                    "pooled campus declares buildings, not regions");
                if (!spec.timeline.empty())
                    throw SpecError("timeline",
                                    "faults are not supported on the pooled campus");
                const PooledCampusSpec& p = spec.campus.pooled;
                if (p.classrooms_per_building == 0 || p.avatars_per_classroom == 0)
                    throw SpecError("campus.pooled", "buildings must hold avatars");
                if (p.tick_rate_hz <= 0.0)
                    throw SpecError("campus.pooled.tick_rate_hz", "must be > 0");
            } else if (spec.campus.regions.empty()) {
                throw SpecError("campus.regions", "needs at least one region");
            }
            break;
    }

    if (spec.qoe.enabled) {
        if (spec.world != WorldKind::Relay)
            throw SpecError("qoe", "the QoE control loop runs on the relay world only");
        if (spec.backend == BackendKind::RealUdp)
            throw SpecError("qoe",
                            "qoe payloads have no real-wire codecs (sim/chaos only)");
        if (spec.qoe.feedback_interval <= sim::Time::zero())
            throw SpecError("qoe.feedback_ms", "must be > 0");
        if (spec.qoe.aggregate_interval <= sim::Time::zero())
            throw SpecError("qoe.aggregate_ms", "must be > 0");
    }

    if (spec.world == WorldKind::Classroom) {
        const std::size_t room_count =
            spec.classroom.rooms.empty() ? 2 : spec.classroom.rooms.size();
        for (std::size_t i = 0; i < spec.classroom.rooms.size(); ++i) {
            const RoomSpec& room = spec.classroom.rooms[i];
            // Preset rooms defer capacity to the paper config (the seats
            // counter reports exhaustion at run time).
            if (room.preset.empty() && room.students > room.rows * room.cols)
                throw SpecError(elem("classroom.rooms", i) + ".students",
                                "exceed seat capacity");
        }
        if (spec.classroom.lecture_media_room &&
            *spec.classroom.lecture_media_room >= room_count)
            throw SpecError("classroom.lecture_media_room", "out of range");
    }

    for (std::size_t i = 0; i < spec.timeline.size(); ++i) {
        const TimelineEntry& e = spec.timeline[i];
        const std::string path = elem("timeline", i);
        switch (e.kind) {
            case TimelineKind::ChaosWindow:
            case TimelineKind::Blackhole:
            case TimelineKind::Partition:
                if (!chaos_ok || spec.backend != BackendKind::Chaos)
                    throw SpecError(path, std::string{timeline_kind_name(e.kind)} +
                                              " needs world=relay, backend=chaos");
                break;
            case TimelineKind::Random:
                if (spec.world == WorldKind::Campus)
                    throw SpecError(path, "random faults are not supported on the "
                                          "sharded campus world");
                break;
            default:
                break;
        }
    }
}

namespace {

common::Json time_s(sim::Time t) { return common::Json{t.to_seconds()}; }
common::Json time_ms(sim::Time t) { return common::Json{t.to_ms()}; }

common::Json degradation_to_json(const fault::DegradationParams& p) {
    common::JsonObject o;
    o["enter_loss"] = common::Json{p.enter_loss};
    o["exit_loss"] = common::Json{p.exit_loss};
    o["enter_rtt_ms"] = common::Json{p.enter_rtt_ms};
    o["exit_rtt_ms"] = common::Json{p.exit_rtt_ms};
    o["max_level"] = common::Json{p.max_level};
    return common::Json{std::move(o)};
}

common::Json classroom_to_json(const ClassroomSpec& c) {
    common::JsonObject o;
    o["course"] = common::Json{c.course};
    o["regional_mesh"] = common::Json{c.regional_mesh};
    o["lightweight_remote"] = common::Json{c.lightweight_remote};
    o["event_bus"] = common::Json{c.event_bus};
    o["probe_rate_hz"] = common::Json{c.probe_rate_hz};
    if (c.heartbeat.enabled) {
        common::JsonObject hb;
        hb["interval_ms"] = time_ms(c.heartbeat.interval);
        hb["timeout_ms"] = time_ms(c.heartbeat.timeout);
        o["heartbeat"] = common::Json{std::move(hb)};
    }
    if (c.degradation.enabled) {
        common::Json d = degradation_to_json(c.degradation.params);
        d.as_object()["hold_s"] = time_s(c.degradation.params.hold);
        o["degradation"] = std::move(d);
    }
    if (c.recovery.enabled) {
        common::JsonObject r;
        r["checkpoint_s"] = time_s(c.recovery.checkpoint_interval);
        o["recovery"] = common::Json{std::move(r)};
    }
    if (c.admission.enabled) {
        common::JsonObject a;
        a["queue_capacity"] = common::Json{static_cast<double>(c.admission.params.queue_capacity)};
        a["shed_enter_depth"] = common::Json{static_cast<double>(c.admission.params.shed_enter_depth)};
        a["shed_exit_depth"] = common::Json{static_cast<double>(c.admission.params.shed_exit_depth)};
        a["hold_ms"] = time_ms(c.admission.params.hold);
        o["admission"] = common::Json{std::move(a)};
    }
    if (!c.rooms.empty()) {
        common::JsonArray rooms;
        for (const RoomSpec& room : c.rooms) {
            common::JsonObject r;
            if (!room.preset.empty()) {
                r["preset"] = common::Json{room.preset};
            } else {
                r["name"] = common::Json{room.name};
                r["region"] = common::Json{std::string{net::region_name(room.region)}};
                r["rows"] = common::Json{static_cast<double>(room.rows)};
                r["cols"] = common::Json{static_cast<double>(room.cols)};
            }
            r["students"] = common::Json{static_cast<double>(room.students)};
            r["instructor"] = common::Json{room.instructor};
            rooms.push_back(common::Json{std::move(r)});
        }
        o["rooms"] = common::Json{std::move(rooms)};
    }
    if (!c.remote.empty()) {
        common::JsonArray remote;
        for (const RemoteCohort& cohort : c.remote) {
            common::JsonObject r;
            r["region"] = common::Json{std::string{net::region_name(cohort.region)}};
            r["count"] = common::Json{static_cast<double>(cohort.count)};
            if (cohort.join_at > sim::Time::zero()) r["join_at_s"] = time_s(cohort.join_at);
            if (cohort.guest) r["guest"] = common::Json{true};
            remote.push_back(common::Json{std::move(r)});
        }
        o["remote"] = common::Json{std::move(remote)};
    }
    if (c.lecture_media_room)
        o["lecture_media_room"] =
            common::Json{static_cast<double>(*c.lecture_media_room)};
    if (!c.schedule.empty()) {
        common::JsonArray schedule;
        for (const ScheduleBlock& block : c.schedule) {
            common::JsonObject b;
            b["activity"] = common::Json{std::string{session::activity_name(block.kind)}};
            b["minutes"] = common::Json{block.duration.to_seconds() / 60.0};
            if (block.team_size > 0)
                b["team_size"] = common::Json{static_cast<double>(block.team_size)};
            schedule.push_back(common::Json{std::move(b)});
        }
        o["schedule"] = common::Json{std::move(schedule)};
    }
    return common::Json{std::move(o)};
}

common::Json relay_to_json(const RelaySpec& r) {
    common::JsonObject o;
    o["region"] = common::Json{std::string{net::region_name(r.region)}};
    o["serve_resync"] = common::Json{r.serve_resync};
    o["resync_freshness_s"] = time_s(r.resync_freshness);
    o["access_ms"] = time_ms(r.access_latency);
    o["batch_ms"] = time_ms(r.batch_interval);
    if (r.control.enabled) {
        common::JsonObject c;
        c["interval_ms"] = time_ms(r.control.interval);
        c["region_a"] = common::Json{std::string{net::region_name(r.control.region_a)}};
        c["region_b"] = common::Json{std::string{net::region_name(r.control.region_b)}};
        o["control"] = common::Json{std::move(c)};
    }
    common::JsonArray clients;
    for (const ClientCohort& cohort : r.clients) {
        common::JsonObject c;
        c["count"] = common::Json{static_cast<double>(cohort.count)};
        c["region"] = common::Json{std::string{net::region_name(cohort.region)}};
        if (cohort.join_at > sim::Time::zero()) c["join_at_s"] = time_s(cohort.join_at);
        if (cohort.reconnect.enabled) {
            common::JsonObject rr;
            rr["liveness_s"] = time_s(cohort.reconnect.liveness_timeout);
            rr["check_ms"] = time_ms(cohort.reconnect.check_interval);
            rr["probe_ms"] = time_ms(cohort.reconnect.probe_timeout);
            rr["backoff_base_ms"] = time_ms(cohort.reconnect.backoff_base);
            rr["backoff_cap_s"] = time_s(cohort.reconnect.backoff_cap);
            c["reconnect"] = common::Json{std::move(rr)};
        }
        if (cohort.adapt.enabled) {
            common::Json a = degradation_to_json(cohort.adapt.params);
            a.as_object()["hold_ms"] = time_ms(cohort.adapt.params.hold);
            c["self_adapt"] = std::move(a);
        }
        if (cohort.priority != "high") c["priority"] = common::Json{cohort.priority};
        clients.push_back(common::Json{std::move(c)});
    }
    o["clients"] = common::Json{std::move(clients)};
    return common::Json{std::move(o)};
}

common::Json campus_to_json(const CampusSpec& c) {
    common::JsonObject o;
    common::JsonArray regions;
    for (const net::Region r : c.regions)
        regions.push_back(common::Json{std::string{net::region_name(r)}});
    o["regions"] = common::Json{std::move(regions)};
    o["clients_per_region"] = common::Json{static_cast<double>(c.clients_per_region)};
    o["batch_ms"] = time_ms(c.batch_interval);
    o["lightweight"] = common::Json{c.lightweight};
    common::JsonObject p;
    p["buildings"] = common::Json{static_cast<double>(c.pooled.buildings)};
    p["classrooms_per_building"] =
        common::Json{static_cast<double>(c.pooled.classrooms_per_building)};
    p["avatars_per_classroom"] =
        common::Json{static_cast<double>(c.pooled.avatars_per_classroom)};
    p["viewers_per_building"] =
        common::Json{static_cast<double>(c.pooled.viewers_per_building)};
    p["tick_rate_hz"] = common::Json{c.pooled.tick_rate_hz};
    p["aggregate"] = common::Json{c.pooled.aggregate};
    p["aggregate_ms"] = time_ms(c.pooled.aggregate_interval);
    o["pooled"] = common::Json{std::move(p)};
    return common::Json{std::move(o)};
}

common::Json qoe_to_json(const QoeSpec& q) {
    common::JsonObject o;
    o["feedback_ms"] = time_ms(q.feedback_interval);
    o["aggregate_ms"] = time_ms(q.aggregate_interval);
    o["playout_ms"] = time_ms(q.playout_delay);
    o["safety"] = common::Json{q.abr.safety};
    o["reserve_bps"] = common::Json{q.abr.reserve_bps};
    o["down_loss"] = common::Json{q.abr.down_loss};
    o["up_loss"] = common::Json{q.abr.up_loss};
    o["hold_down_ms"] = time_ms(q.abr.hold_down);
    o["hold_up_ms"] = time_ms(q.abr.hold_up);
    o["dwell_ms"] = time_ms(q.abr.min_dwell);
    o["avatar_full_bps"] = common::Json{q.budget.avatar_full_bps};
    o["floor_scale"] = common::Json{q.budget.floor_scale};
    o["fovea_cos"] = common::Json{q.budget.fovea_cos};
    return common::Json{std::move(o)};
}

common::Json profile_to_json(const net::ChaosProfile& p) {
    common::JsonObject o;
    if (p.drop > 0.0) o["drop"] = common::Json{p.drop};
    if (p.ge_p_bad > 0.0) o["ge_p_bad"] = common::Json{p.ge_p_bad};
    if (p.ge_p_good > 0.0) o["ge_p_good"] = common::Json{p.ge_p_good};
    if (p.ge_loss_bad != 1.0) o["ge_loss_bad"] = common::Json{p.ge_loss_bad};
    if (p.ge_loss_good != 0.0) o["ge_loss_good"] = common::Json{p.ge_loss_good};
    if (p.duplicate > 0.0) o["duplicate"] = common::Json{p.duplicate};
    if (p.reorder > 0.0) {
        o["reorder"] = common::Json{p.reorder};
        o["reorder_hold_ms"] = time_ms(p.reorder_hold);
    }
    if (p.delay > sim::Time::zero()) o["delay_ms"] = time_ms(p.delay);
    if (p.jitter > sim::Time::zero()) o["jitter_ms"] = time_ms(p.jitter);
    if (p.corrupt > 0.0) o["corrupt"] = common::Json{p.corrupt};
    if (p.throttle_bps > 0.0) {
        o["throttle_bps"] = common::Json{p.throttle_bps};
        o["throttle_backlog_ms"] = time_ms(p.throttle_backlog);
    }
    return common::Json{std::move(o)};
}

common::Json model_to_json(const fault::FaultModel& m) {
    common::JsonObject o;
    o["flaps_per_min"] = common::Json{m.link_flaps_per_min};
    o["mean_outage_s"] = time_s(m.mean_outage);
    o["bursts_per_min"] = common::Json{m.loss_bursts_per_min};
    o["mean_burst_s"] = time_s(m.mean_burst);
    o["burst_loss"] = common::Json{m.burst_loss};
    o["spikes_per_min"] = common::Json{m.latency_spikes_per_min};
    o["mean_spike_s"] = time_s(m.mean_spike);
    o["spike_extra_ms"] = time_ms(m.spike_extra_latency);
    o["crashes_per_min"] = common::Json{m.node_crashes_per_min};
    o["mean_downtime_s"] = time_s(m.mean_downtime);
    return common::Json{std::move(o)};
}

common::Json timeline_entry_to_json(const TimelineEntry& e) {
    common::JsonObject o;
    o["kind"] = common::Json{std::string{timeline_kind_name(e.kind)}};
    switch (e.kind) {
        case TimelineKind::LinkOutage:
        case TimelineKind::Partition:
            o["at_s"] = time_s(e.at);
            o["duration_s"] = time_s(e.duration);
            o["a"] = common::Json{e.a};
            o["b"] = common::Json{e.b};
            break;
        case TimelineKind::LossBurst:
            o["at_s"] = time_s(e.at);
            o["duration_s"] = time_s(e.duration);
            o["a"] = common::Json{e.a};
            o["b"] = common::Json{e.b};
            o["loss"] = common::Json{e.loss};
            break;
        case TimelineKind::LatencySpike:
            o["at_s"] = time_s(e.at);
            o["duration_s"] = time_s(e.duration);
            o["a"] = common::Json{e.a};
            o["b"] = common::Json{e.b};
            o["extra_ms"] = time_ms(e.extra_latency);
            break;
        case TimelineKind::NodeOutage:
            o["at_s"] = time_s(e.at);
            o["duration_s"] = time_s(e.duration);
            o["node"] = common::Json{e.a};
            break;
        case TimelineKind::ChaosWindow:
            o["at_s"] = time_s(e.at);
            o["duration_s"] = time_s(e.duration);
            o["a"] = common::Json{e.a};
            o["b"] = common::Json{e.b};
            o["profile"] = profile_to_json(e.profile);
            break;
        case TimelineKind::Blackhole:
            o["at_s"] = time_s(e.at);
            o["duration_s"] = time_s(e.duration);
            o["from"] = common::Json{e.a};
            o["to"] = common::Json{e.b};
            break;
        case TimelineKind::Random: {
            o["from_s"] = time_s(e.from);
            o["until_s"] = time_s(e.until);
            o["stream"] = common::Json{e.stream};
            o["model"] = model_to_json(e.model);
            if (!e.links.empty()) {
                common::JsonArray links;
                for (const auto& [a, b] : e.links) {
                    common::JsonArray pair;
                    pair.push_back(common::Json{a});
                    pair.push_back(common::Json{b});
                    links.push_back(common::Json{std::move(pair)});
                }
                o["links"] = common::Json{std::move(links)};
            }
            if (!e.nodes.empty()) {
                common::JsonArray nodes;
                for (const std::string& n : e.nodes) nodes.push_back(common::Json{n});
                o["nodes"] = common::Json{std::move(nodes)};
            }
            break;
        }
    }
    return common::Json{std::move(o)};
}

}  // namespace

common::Json spec_to_json(const ScenarioSpec& spec) {
    common::JsonObject o;
    o["scenario_version"] = common::Json{spec.version};
    o["name"] = common::Json{spec.name};
    o["world"] = common::Json{std::string{world_name(spec.world)}};
    o["backend"] = common::Json{std::string{backend_name(spec.backend)}};
    o["seed"] = common::Json{static_cast<double>(spec.seed)};
    o["duration_s"] = time_s(spec.duration);
    o["hash_ms"] = time_ms(spec.hash_interval);
    switch (spec.world) {
        case WorldKind::Classroom:
            o["classroom"] = classroom_to_json(spec.classroom);
            break;
        case WorldKind::Relay:
            o["relay"] = relay_to_json(spec.relay);
            break;
        case WorldKind::Campus:
            o["campus"] = campus_to_json(spec.campus);
            break;
    }
    if (spec.qoe.enabled) o["qoe"] = qoe_to_json(spec.qoe);
    if (!spec.timeline.empty()) {
        common::JsonArray timeline;
        for (const TimelineEntry& e : spec.timeline)
            timeline.push_back(timeline_entry_to_json(e));
        o["timeline"] = common::Json{std::move(timeline)};
    }
    if (!spec.slos.empty()) {
        common::JsonArray slos;
        for (const SloGate& g : spec.slos) {
            common::JsonObject s;
            s["metric"] = common::Json{g.metric};
            if (g.min) s["min"] = common::Json{*g.min};
            if (g.max) s["max"] = common::Json{*g.max};
            slos.push_back(common::Json{std::move(s)});
        }
        o["slos"] = common::Json{std::move(slos)};
    }
    return common::Json{std::move(o)};
}

std::string spec_stamp(const ScenarioSpec& spec) {
    std::ostringstream out;
    out << "scenario:" << spec.name << " v" << spec.version << " world="
        << world_name(spec.world) << " backend=" << backend_name(spec.backend)
        << " seed=" << spec.seed << " dur_s=" << spec.duration.to_seconds();
    return out.str();
}

}  // namespace mvc::scenario
