#pragma once
// Mutation fuzzing for the scenario engine and the trace format.
//
// fuzz_specs() perturbs a base ScenarioSpec (seeds, cohort sizes, fault
// window timings) through named sim::Rng streams and replays every surviving
// mutant TWICE with the same seed: the engine's contract is that a valid
// spec either parses+builds+runs deterministically (byte-identical hash
// stream and metrics) or is rejected with a SpecError — it never crashes and
// never diverges. fuzz_trace() batters recorded trace bytes (bit flips,
// truncations, splices): Trace::verify must always return a report and
// Trace::parse must either succeed or throw TraceError.
//
// Both are deterministic in (base, options.seed): CI failures reproduce.

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/spec.hpp"

namespace mvc::scenario {

struct FuzzOptions {
    std::size_t iterations{50};
    std::uint64_t seed{1};
    /// Cap every mutant's run length so fuzzing stays fast; zero keeps the
    /// base spec's duration.
    sim::Time duration_cap{sim::Time::seconds(5.0)};
};

struct FuzzFailure {
    std::size_t iteration{0};
    std::string what;
};

struct FuzzReport {
    std::size_t iterations{0};
    std::size_t ran{0};       ///< mutants that built and ran
    std::size_t rejected{0};  ///< mutants the validator refused (expected)
    std::vector<FuzzFailure> failures;
    [[nodiscard]] bool ok() const { return failures.empty(); }
};

/// One deterministic mutation of `base`, keyed by (base.seed, salt).
[[nodiscard]] ScenarioSpec mutate_spec(const ScenarioSpec& base, std::uint64_t salt);

/// One deterministic corruption of trace bytes, keyed by salt.
[[nodiscard]] std::vector<std::uint8_t> mutate_trace(std::vector<std::uint8_t> bytes,
                                                     std::uint64_t salt);

[[nodiscard]] FuzzReport fuzz_specs(const ScenarioSpec& base, const FuzzOptions& options);

[[nodiscard]] FuzzReport fuzz_trace(const std::vector<std::uint8_t>& bytes,
                                    const FuzzOptions& options);

}  // namespace mvc::scenario
