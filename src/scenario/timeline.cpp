#include "scenario/timeline.hpp"

#include <string>
#include <utility>

namespace mvc::scenario {

namespace {

[[nodiscard]] std::vector<ResolvedNode> expand(const ResolveFn& resolve,
                                               const std::string& ref) {
    std::vector<ResolvedNode> nodes = resolve(ref);
    if (nodes.empty())
        throw SpecError("timeline", "node ref '" + ref + "' expands to nothing");
    return nodes;
}

/// All (a, b) combinations of the two expansions, shard-checked.
[[nodiscard]] std::vector<std::pair<ResolvedNode, ResolvedNode>> pairs_of(
    const ResolveFn& resolve, const std::string& ref_a, const std::string& ref_b) {
    std::vector<std::pair<ResolvedNode, ResolvedNode>> out;
    for (const ResolvedNode& a : expand(resolve, ref_a)) {
        for (const ResolvedNode& b : expand(resolve, ref_b)) {
            if (a.node == b.node && a.shard == b.shard) continue;  // wildcard self-pair
            if (a.shard != b.shard)
                throw SpecError("timeline", "'" + ref_a + "' and '" + ref_b +
                                                "' live in different shards; "
                                                "cross-shard faults are not supported");
            out.emplace_back(a, b);
        }
    }
    if (out.empty())
        throw SpecError("timeline", "'" + ref_a + "' x '" + ref_b +
                                        "' expands to no usable pair");
    return out;
}

}  // namespace

void compile_timeline(const std::vector<TimelineEntry>& timeline,
                      const ResolveFn& resolve, const PlanFn& plan_for) {
    for (const TimelineEntry& e : timeline) {
        switch (e.kind) {
            case TimelineKind::LinkOutage:
                for (const auto& [a, b] : pairs_of(resolve, e.a, e.b))
                    plan_for(a.shard).link_outage(a.node, b.node, e.at, e.duration);
                break;
            case TimelineKind::LossBurst:
                for (const auto& [a, b] : pairs_of(resolve, e.a, e.b))
                    plan_for(a.shard).loss_burst(a.node, b.node, e.at, e.duration,
                                                 e.loss);
                break;
            case TimelineKind::LatencySpike:
                for (const auto& [a, b] : pairs_of(resolve, e.a, e.b))
                    plan_for(a.shard).latency_spike(a.node, b.node, e.at, e.duration,
                                                    e.extra_latency);
                break;
            case TimelineKind::NodeOutage:
                for (const ResolvedNode& n : expand(resolve, e.a))
                    plan_for(n.shard).node_outage(n.node, e.at, e.duration);
                break;
            case TimelineKind::ChaosWindow:
                for (const auto& [a, b] : pairs_of(resolve, e.a, e.b))
                    plan_for(a.shard).chaos_window(a.node, b.node, e.at, e.duration,
                                                   e.profile);
                break;
            case TimelineKind::Blackhole:
                for (const auto& [a, b] : pairs_of(resolve, e.a, e.b))
                    plan_for(a.shard).blackhole(a.node, b.node, e.at, e.duration);
                break;
            case TimelineKind::Partition:
                for (const auto& [a, b] : pairs_of(resolve, e.a, e.b))
                    plan_for(a.shard).partition(a.node, b.node, e.at, e.duration);
                break;
            case TimelineKind::Random: {
                // validate_spec rejects Random on the campus world, so every
                // resolved endpoint lives in shard 0.
                std::vector<std::pair<net::NodeId, net::NodeId>> links;
                for (const auto& [ra, rb] : e.links)
                    for (const auto& [a, b] : pairs_of(resolve, ra, rb))
                        links.emplace_back(a.node, b.node);
                std::vector<net::NodeId> nodes;
                for (const std::string& ref : e.nodes)
                    for (const ResolvedNode& n : expand(resolve, ref))
                        nodes.push_back(n.node);
                plan_for(0).randomize(e.model, links, nodes, e.from, e.until,
                                      e.stream);
                break;
            }
        }
    }
}

}  // namespace mvc::scenario
