#include "scenario/fuzz.hpp"

#include <algorithm>
#include <utility>

#include "replay/trace.hpp"
#include "scenario/runner.hpp"
#include "sim/rng.hpp"

namespace mvc::scenario {

namespace {

[[nodiscard]] sim::Time jitter(sim::Rng& rng, sim::Time t) {
    return sim::Time::ms(t.to_ms() * rng.uniform(0.8, 1.2));
}

}  // namespace

ScenarioSpec mutate_spec(const ScenarioSpec& base, std::uint64_t salt) {
    // The stream is keyed by (base seed, salt) only, so a failing salt
    // reproduces without the fuzz campaign's draw history.
    sim::Rng rng = sim::Rng{base.seed ^ (salt * 0x9e3779b97f4a7c15ULL)}.stream("fuzz");
    ScenarioSpec spec = base;
    spec.name = base.name + "-fuzz" + std::to_string(salt);
    spec.seed = static_cast<std::uint64_t>(rng.uniform_int(1, 1 << 30));

    // Cohort resizes (small bounds keep mutants cheap to run).
    for (RemoteCohort& cohort : spec.classroom.remote) {
        if (rng.uniform() < 0.5)
            cohort.count = static_cast<std::size_t>(rng.uniform_int(0, 4));
        if (rng.uniform() < 0.3) cohort.join_at = jitter(rng, cohort.join_at);
    }
    for (ClientCohort& cohort : spec.relay.clients) {
        if (rng.uniform() < 0.5)
            cohort.count = static_cast<std::size_t>(rng.uniform_int(1, 6));
        if (rng.uniform() < 0.3) cohort.join_at = jitter(rng, cohort.join_at);
    }
    if (spec.world == WorldKind::Campus && rng.uniform() < 0.5)
        spec.campus.clients_per_region =
            static_cast<std::size_t>(rng.uniform_int(1, 8));

    // Fault-window skews: shift and stretch every timeline entry, nudge the
    // knob the entry actually uses. Mutants whose windows land outside the
    // run or collapse to zero are rejected by validate_spec — also a result.
    for (TimelineEntry& e : spec.timeline) {
        if (rng.uniform() < 0.7) e.at = jitter(rng, e.at);
        if (rng.uniform() < 0.7) e.duration = jitter(rng, e.duration);
        if (e.kind == TimelineKind::LossBurst && rng.uniform() < 0.5)
            e.loss = std::clamp(e.loss * rng.uniform(0.5, 1.5), 0.0, 1.0);
        if (e.kind == TimelineKind::LatencySpike && rng.uniform() < 0.5)
            e.extra_latency = jitter(rng, e.extra_latency);
        if (e.kind == TimelineKind::Random) {
            if (rng.uniform() < 0.5) e.from = jitter(rng, e.from);
            if (rng.uniform() < 0.5) e.until = jitter(rng, e.until);
        }
    }
    return spec;
}

std::vector<std::uint8_t> mutate_trace(std::vector<std::uint8_t> bytes,
                                       std::uint64_t salt) {
    sim::Rng rng = sim::Rng{salt * 0x9e3779b97f4a7c15ULL + 1}.stream("fuzz-trace");
    if (bytes.empty()) return bytes;
    switch (rng.uniform_int(0, 3)) {
        case 0: {  // bit flips
            const auto flips = static_cast<std::size_t>(rng.uniform_int(1, 8));
            for (std::size_t i = 0; i < flips; ++i) {
                const std::size_t at = rng.index(bytes.size());
                bytes[at] ^= static_cast<std::uint8_t>(1U << rng.index(8));
            }
            break;
        }
        case 1:  // truncate
            bytes.resize(rng.index(bytes.size()));
            break;
        case 2: {  // zero a span
            const std::size_t at = rng.index(bytes.size());
            const std::size_t len =
                std::min(bytes.size() - at,
                         static_cast<std::size_t>(rng.uniform_int(1, 64)));
            std::fill_n(bytes.begin() + static_cast<std::ptrdiff_t>(at), len, 0);
            break;
        }
        case 3: {  // duplicate a span onto another offset (stale-chunk splice)
            const std::size_t src = rng.index(bytes.size());
            const std::size_t dst = rng.index(bytes.size());
            const std::size_t len =
                std::min({bytes.size() - src, bytes.size() - dst,
                          static_cast<std::size_t>(rng.uniform_int(1, 64))});
            std::copy_n(bytes.begin() + static_cast<std::ptrdiff_t>(src), len,
                        bytes.begin() + static_cast<std::ptrdiff_t>(dst));
            break;
        }
        default: break;
    }
    return bytes;
}

FuzzReport fuzz_specs(const ScenarioSpec& base, const FuzzOptions& options) {
    FuzzReport report;
    report.iterations = options.iterations;
    for (std::size_t i = 0; i < options.iterations; ++i) {
        ScenarioSpec mutant = mutate_spec(base, options.seed + i);
        if (options.duration_cap > sim::Time::zero() &&
            mutant.duration > options.duration_cap)
            mutant.duration = options.duration_cap;
        try {
            validate_spec(mutant);
        } catch (const SpecError&) {
            ++report.rejected;  // the validator refusing a mutant is a pass
            continue;
        }
        try {
            // Round-trip through JSON first: serializing a valid mutant and
            // reparsing it must reproduce the spec exactly.
            const ScenarioSpec reparsed = scenario_from_json(spec_to_json(mutant));
            if (spec_to_json(reparsed) != spec_to_json(mutant)) {
                report.failures.push_back(
                    {options.seed + i, "spec round-trip diverged"});
                continue;
            }
            const ScenarioReport first = run_scenario(mutant);
            const ScenarioReport second = run_scenario(mutant);
            ++report.ran;
            if (first.hashes != second.hashes)
                report.failures.push_back(
                    {options.seed + i, "hash stream diverged between same-seed runs"});
            else if (first.metrics.dump(2) != second.metrics.dump(2))
                report.failures.push_back(
                    {options.seed + i, "metrics diverged between same-seed runs"});
        } catch (const SpecError& e) {
            // Build-time rejection (e.g. a timeline ref the smaller mutant
            // world no longer has) is acceptable; it must just be a SpecError.
            ++report.rejected;
            (void)e;
        } catch (const std::exception& e) {
            report.failures.push_back({options.seed + i, e.what()});
        }
    }
    return report;
}

FuzzReport fuzz_trace(const std::vector<std::uint8_t>& bytes,
                      const FuzzOptions& options) {
    FuzzReport report;
    report.iterations = options.iterations;
    for (std::size_t i = 0; i < options.iterations; ++i) {
        std::vector<std::uint8_t> mutant = mutate_trace(bytes, options.seed + i);
        try {
            const replay::TraceCheck check = replay::Trace::verify(mutant);
            try {
                replay::Trace trace = replay::Trace::parse(mutant);
                // Parsed clean: walking every record must not crash either.
                replay::Record record;
                auto cursor = trace.cursor();
                while (cursor.next(record)) {
                }
                ++report.ran;
            } catch (const replay::TraceError&) {
                if (check.ok) {
                    report.failures.push_back(
                        {options.seed + i,
                         "verify accepted bytes that parse rejects"});
                } else {
                    ++report.rejected;
                }
            }
        } catch (const std::exception& e) {
            report.failures.push_back({options.seed + i, e.what()});
        }
    }
    return report;
}

}  // namespace mvc::scenario
