#pragma once
// Compiles a ScenarioSpec's declarative fault & load timeline into armed
// fault::FaultPlan events against the built world. Endpoints in the spec are
// symbolic node references ("edge/1", "client/*", "relay"); the world
// supplies a resolver that expands them to concrete NodeIds (wildcards may
// expand to many), and — for the sharded campus world — names the shard
// each node lives in, so every entry lands on that shard's plan.

#include <functional>
#include <vector>

#include "fault/fault_plan.hpp"
#include "net/packet.hpp"
#include "scenario/spec.hpp"

namespace mvc::scenario {

/// A node reference resolved against the world: the shard it lives in
/// (always 0 for the single-simulator worlds) and its local NodeId.
struct ResolvedNode {
    std::size_t shard{0};
    net::NodeId node{net::kInvalidNode};
};

/// Expand one symbolic reference. Throws SpecError (with the ref in the
/// message) for unknown names; returns >1 entry for wildcards.
using ResolveFn = std::function<std::vector<ResolvedNode>(const std::string& ref)>;

/// The FaultPlan events for `shard` are queued on (plans are created lazily
/// by the world, one per shard; single-simulator worlds only ever see 0).
using PlanFn = std::function<fault::FaultPlan&(std::size_t shard)>;

/// Queue every timeline entry on its shard's plan. Pair entries take the
/// cross product of both expansions (so "client/*" x "relay" becomes one
/// window per client); both endpoints of any pair must resolve to the same
/// shard. Does not arm the plans.
void compile_timeline(const std::vector<TimelineEntry>& timeline,
                      const ResolveFn& resolve, const PlanFn& plan_for);

}  // namespace mvc::scenario
