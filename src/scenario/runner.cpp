#include "scenario/runner.hpp"

#include <fstream>
#include <sstream>

#include "core/classroom.hpp"

namespace mvc::scenario {

namespace {

/// "<series>.<stat>" → the stat applied to `series`, if the suffix names one.
[[nodiscard]] std::optional<double> series_stat(const math::SampleSeries& series,
                                                std::string_view stat) {
    if (stat == "count") return static_cast<double>(series.count());
    if (series.empty()) return std::nullopt;
    if (stat == "mean") return series.mean();
    if (stat == "min") return series.min();
    if (stat == "max") return series.max();
    if (stat == "p50") return series.median();
    if (stat == "p95") return series.p95();
    if (stat == "p99") return series.p99();
    return std::nullopt;
}

}  // namespace

std::optional<double> metric_value(const sim::MetricsRecorder& metrics,
                                   const std::string& name) {
    const auto counters = metrics.counters();
    if (const auto it = counters.find(name); it != counters.end())
        return static_cast<double>(it->second);
    const auto dot = name.rfind('.');
    if (dot == std::string::npos) return std::nullopt;
    const std::string base = name.substr(0, dot);
    if (!metrics.has_series(base)) return std::nullopt;
    return series_stat(metrics.series(base), std::string_view{name}.substr(dot + 1));
}

std::vector<SloResult> evaluate_slos(const sim::MetricsRecorder& metrics,
                                     const std::vector<SloGate>& gates) {
    std::vector<SloResult> out;
    out.reserve(gates.size());
    for (const SloGate& gate : gates) {
        SloResult r;
        r.gate = gate;
        r.value = metric_value(metrics, gate.metric);
        r.passed = r.value.has_value() &&
                   (!gate.min || *r.value >= *gate.min) &&
                   (!gate.max || *r.value <= *gate.max);
        out.push_back(std::move(r));
    }
    return out;
}

ScenarioReport run_world(ScenarioWorld& world, std::size_t threads) {
    world.run(threads);
    world.stop();

    ScenarioReport report;
    report.name = world.spec().name;
    report.stamp = spec_stamp(world.spec());
    const sim::MetricsRecorder metrics = world.collect_metrics();
    report.metrics = metrics.to_json();
    report.hashes = world.hashes();
    report.slos = evaluate_slos(metrics, world.spec().slos);
    for (const SloResult& r : report.slos) report.passed = report.passed && r.passed;
    return report;
}

ScenarioReport run_scenario(const ScenarioSpec& spec, std::size_t threads) {
    const std::unique_ptr<ScenarioWorld> world = build(spec);
    return run_world(*world, threads);
}

common::Json report_to_json(const ScenarioReport& report) {
    common::JsonObject doc;
    doc["name"] = common::Json{report.name};
    doc["stamp"] = common::Json{report.stamp};
    doc["passed"] = common::Json{report.passed};
    doc["hash_epochs"] = common::Json{static_cast<double>(report.hashes.size())};
    if (!report.hashes.empty()) {
        // The final hash summarises the stream; full streams live in traces.
        std::ostringstream hex;
        hex << std::hex << report.hashes.back();
        doc["final_hash"] = common::Json{hex.str()};
    }
    common::JsonArray slos;
    for (const SloResult& r : report.slos) {
        common::JsonObject row;
        row["metric"] = common::Json{r.gate.metric};
        if (r.gate.min) row["min"] = common::Json{*r.gate.min};
        if (r.gate.max) row["max"] = common::Json{*r.gate.max};
        if (r.value)
            row["value"] = common::Json{*r.value};
        else
            row["value"] = common::Json{};  // null: metric missing
        row["passed"] = common::Json{r.passed};
        slos.push_back(common::Json{std::move(row)});
    }
    doc["slos"] = common::Json{std::move(slos)};
    doc["metrics"] = report.metrics;
    return common::Json{std::move(doc)};
}

ScenarioSpec load_spec_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw SpecError(path, "cannot open spec file");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    try {
        return scenario_from_text(buffer.str());
    } catch (const SpecError& e) {
        std::string why = e.what();
        if (constexpr std::string_view prefix = "scenario: "; why.starts_with(prefix))
            why.erase(0, prefix.size());
        throw SpecError(path, why);
    }
}

common::Json series_to_json(const math::SampleSeries& series) {
    common::JsonObject obj;
    obj["n"] = common::Json{static_cast<double>(series.count())};
    obj["mean"] = common::Json{series.mean()};
    obj["p50"] = common::Json{series.median()};
    obj["p95"] = common::Json{series.p95()};
    obj["p99"] = common::Json{series.p99()};
    return common::Json{std::move(obj)};
}

common::Json class_report_to_json(const core::ClassReport& report) {
    common::JsonObject obj;
    obj["physical_participants"] =
        common::Json{static_cast<double>(report.physical_participants)};
    obj["remote_participants"] =
        common::Json{static_cast<double>(report.remote_participants)};
    obj["mr_display_latency_ms"] = series_to_json(report.mr_display_latency_ms);
    obj["mr_cross_campus_ms"] = series_to_json(report.mr_cross_campus_ms);
    obj["mr_remote_origin_ms"] = series_to_json(report.mr_remote_origin_ms);
    obj["vr_display_latency_ms"] = series_to_json(report.vr_display_latency_ms);
    obj["event_visibility_ms"] = series_to_json(report.event_visibility_ms);
    obj["clock_sync_error_ms"] = common::Json{report.clock_sync_error_ms};
    obj["avatar_bytes"] = common::Json{static_cast<double>(report.avatar_bytes)};
    obj["total_bytes"] = common::Json{static_cast<double>(report.total_bytes)};
    obj["wifi_utilization_max"] = common::Json{report.wifi_utilization_max};
    obj["participation_ratio"] = common::Json{report.participation_ratio};
    obj["seats_exhausted"] = common::Json{static_cast<double>(report.seats_exhausted)};
    if (report.media_enabled) {
        common::JsonObject media;
        media["bytes"] = common::Json{static_cast<double>(report.media_bytes)};
        media["worst_camera_db"] = common::Json{report.media_worst_camera_db};
        media["av_skew_p95_ms"] = common::Json{report.media_av_skew_p95_ms};
        obj["media"] = common::Json{std::move(media)};
    }
    return common::Json{std::move(obj)};
}

}  // namespace mvc::scenario
