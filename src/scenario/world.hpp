#pragma once
// ScenarioWorld: one ScenarioSpec, built. scenario::build(spec) assembles
// the declared deployment — a MetaverseClassroom, a relay + VR-client
// cluster (on the sim Network, under a ChaosBackend, or over real UDP
// loopback), or a sharded multi-region campus — enrols the cohorts,
// schedules the late-join load events, compiles and arms the fault
// timeline, and wires the per-epoch state-hash stream. Callers may attach
// extra probes to the simulator before run(); run() drives the declared
// duration and stop() tears the session down.
//
// The world exposes its underlying objects (classroom(), relay(),
// client(i), chaos(), campus()) so benches can keep their domain-specific
// probes while all topology/fault construction lives in the spec.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "scenario/spec.hpp"
#include "scenario/timeline.hpp"

namespace mvc::core {
class CampusWorld;
class MetaverseClassroom;
class ShardedWorld;
}  // namespace mvc::core
namespace mvc::cloud {
class RelayServer;
class VrClient;
class CloudServer;
}  // namespace mvc::cloud
namespace mvc::net {
class Network;
class ChaosBackend;
class RealUdpBackend;
class Backend;
}  // namespace mvc::net
namespace mvc::replay {
class AvatarMirror;
class Recorder;
}  // namespace mvc::replay
namespace mvc::sim {
class Simulator;
class MetricsRecorder;
}  // namespace mvc::sim

namespace mvc::scenario {

class ScenarioWorld {
public:
    explicit ScenarioWorld(ScenarioSpec spec);
    ~ScenarioWorld();

    ScenarioWorld(const ScenarioWorld&) = delete;
    ScenarioWorld& operator=(const ScenarioWorld&) = delete;

    [[nodiscard]] const ScenarioSpec& spec() const { return spec_; }

    /// Record the run into `rec` (classroom world only for now; taps the
    /// network egress + per-epoch state hashes). Call before run().
    void enable_recording(replay::Recorder& rec);

    /// Drive the world for the spec's full duration. `threads` applies to
    /// the campus world only (the single-simulator worlds ignore it).
    void run(std::size_t threads = 1);
    /// Tear the session down (clients leave, classroom stops). Called by
    /// the destructor when not called explicitly.
    void stop();

    /// Per-epoch state-hash stream (every spec.hash_interval): classroom =
    /// mix of edge + cloud digests, relay = AvatarMirror digest, campus =
    /// origin cloud digest. The determinism gates byte-compare this.
    [[nodiscard]] const std::vector<std::uint64_t>& hashes() const { return hashes_; }

    /// Deterministic snapshot of the world's metrics plus scenario counters
    /// ("scenario.hash_epochs", control-pair and chaos counters, client
    /// aggregates) — the input to SLO evaluation and the BENCH export.
    [[nodiscard]] sim::MetricsRecorder collect_metrics() const;

    /// Expand a symbolic timeline node ref ("edge/1", "client/*", "relay",
    /// "cloud", "relay/Seoul", "ctrl/a"). Throws SpecError when unknown.
    [[nodiscard]] std::vector<ResolvedNode> resolve(const std::string& ref) const;

    // ------------------------------------------------- underlying objects
    /// Simulator driving shard 0 (the only shard for classroom/relay).
    /// Throws for the real_udp backend (wall-clock; use backend().clock()).
    [[nodiscard]] sim::Simulator& simulator();
    [[nodiscard]] net::Backend& backend();

    [[nodiscard]] core::MetaverseClassroom& classroom();
    [[nodiscard]] cloud::RelayServer& relay();
    [[nodiscard]] std::size_t client_count() const { return clients_.size(); }
    [[nodiscard]] cloud::VrClient& client(std::size_t i);
    /// Chaos interposer; nullptr unless backend == chaos.
    [[nodiscard]] net::ChaosBackend* chaos();
    /// Relay world's avatar-state mirror; nullptr for other worlds.
    [[nodiscard]] replay::AvatarMirror* mirror();
    [[nodiscard]] core::ShardedWorld& campus();
    /// Dense pooled campus (campus.pooled.buildings > 0); nullptr otherwise.
    [[nodiscard]] core::CampusWorld* pooled_campus();
    [[nodiscard]] fault::FaultPlan* plan(std::size_t shard = 0);

    [[nodiscard]] std::uint64_t ctrl_sent() const { return ctrl_sent_; }
    [[nodiscard]] std::uint64_t ctrl_delivered() const { return ctrl_delivered_; }

private:
    struct ClassroomState;
    struct RelayState;
    struct CampusState;

    void build_classroom();
    void build_relay();
    void build_campus();
    void arm_timeline();
    void schedule_hashes();

    ScenarioSpec spec_;
    std::vector<std::uint64_t> hashes_;
    std::uint64_t ctrl_sent_{0};
    std::uint64_t ctrl_delivered_{0};
    bool stopped_{false};

    // Exactly one of these is populated, per spec_.world. The states own
    // the simulators/backends/servers in construction order so teardown
    // (reverse order) drops clients before the transport they reference.
    std::unique_ptr<ClassroomState> classroom_state_;
    std::unique_ptr<RelayState> relay_state_;
    std::unique_ptr<CampusState> campus_state_;

    std::vector<cloud::VrClient*> clients_;  // non-owning views, join order

    // One FaultPlan per shard, created lazily by the timeline compiler.
    // Declared after the states so plans (which reference the networks)
    // are destroyed first.
    std::vector<std::unique_ptr<fault::FaultPlan>> plans_;
};

/// The one entry point: validate + build. Throws SpecError on an invalid
/// spec (validate_spec rules) or unresolvable timeline refs.
[[nodiscard]] std::unique_ptr<ScenarioWorld> build(const ScenarioSpec& spec);

}  // namespace mvc::scenario
