#include "edge/seats.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace mvc::edge {

SeatMap SeatMap::grid(std::size_t rows, std::size_t cols, double pitch,
                      double first_row_z) {
    std::vector<Seat> seats;
    seats.reserve(rows * cols);
    const double half_width = (static_cast<double>(cols) - 1.0) * pitch / 2.0;
    std::uint32_t index = 0;
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
            Seat s;
            s.index = index++;
            s.pose.position = {static_cast<double>(c) * pitch - half_width, 0.0,
                               first_row_z + static_cast<double>(r) * pitch};
            // All seats face the lectern (-z direction = identity in our
            // convention of forward = -z).
            s.pose.orientation = math::Quat::identity();
            seats.push_back(s);
        }
    }
    return SeatMap{std::move(seats)};
}

SeatMap::SeatMap(std::vector<Seat> seats) : seats_(std::move(seats)) {
    if (seats_.empty()) throw std::invalid_argument("SeatMap: needs at least one seat");
}

std::size_t SeatMap::vacant_count() const {
    return static_cast<std::size_t>(
        std::count_if(seats_.begin(), seats_.end(),
                      [](const Seat& s) { return !s.occupied; }));
}

bool SeatMap::occupy(std::size_t index, ParticipantId who) {
    Seat& s = seats_.at(index);
    if (s.occupied) return false;
    s.occupied = true;
    s.occupant = who;
    return true;
}

void SeatMap::vacate(std::size_t index) {
    Seat& s = seats_.at(index);
    s.occupied = false;
    s.occupant = ParticipantId{};
}

std::optional<std::size_t> SeatMap::seat_of(ParticipantId who) const {
    for (const Seat& s : seats_) {
        if (s.occupied && s.occupant == who) return s.index;
    }
    return std::nullopt;
}

std::vector<std::size_t> SeatMap::vacant_indices() const {
    std::vector<std::size_t> out;
    for (const Seat& s : seats_) {
        if (!s.occupied) out.push_back(s.index);
    }
    return out;
}

std::vector<std::size_t> hungarian(const std::vector<std::vector<double>>& cost) {
    const std::size_t n = cost.size();
    if (n == 0) return {};
    const std::size_t m = cost[0].size();
    if (m < n) throw std::invalid_argument("hungarian: need cols >= rows");
    for (const auto& row : cost) {
        if (row.size() != m) throw std::invalid_argument("hungarian: ragged cost matrix");
    }
    constexpr double kInf = std::numeric_limits<double>::max() / 4.0;

    // Potentials + augmenting-path method (1-indexed), O(n^2 m).
    std::vector<double> u(n + 1, 0.0), v(m + 1, 0.0);
    std::vector<std::size_t> p(m + 1, 0), way(m + 1, 0);
    for (std::size_t i = 1; i <= n; ++i) {
        p[0] = i;
        std::size_t j0 = 0;
        std::vector<double> minv(m + 1, kInf);
        std::vector<bool> used(m + 1, false);
        do {
            used[j0] = true;
            const std::size_t i0 = p[j0];
            double delta = kInf;
            std::size_t j1 = 0;
            for (std::size_t j = 1; j <= m; ++j) {
                if (used[j]) continue;
                const double cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                if (cur < minv[j]) {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if (minv[j] < delta) {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for (std::size_t j = 0; j <= m; ++j) {
                if (used[j]) {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
        } while (p[j0] != 0);
        do {
            const std::size_t j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
        } while (j0 != 0);
    }

    std::vector<std::size_t> row_to_col(n, 0);
    for (std::size_t j = 1; j <= m; ++j) {
        if (p[j] != 0) row_to_col[p[j] - 1] = j - 1;
    }
    return row_to_col;
}

namespace {

/// Centroid of a point set.
math::Vec3 centroid_of(const std::vector<math::Vec3>& pts) {
    math::Vec3 c;
    for (const auto& p : pts) c += p;
    return pts.empty() ? c : c / static_cast<double>(pts.size());
}

AssignmentResult finalize(const std::vector<SeatRequest>& requests,
                          const std::vector<std::size_t>& vacant,
                          const std::vector<std::size_t>& request_order,
                          const std::vector<std::size_t>& chosen_vacant_idx,
                          const std::vector<std::vector<double>>& cost) {
    AssignmentResult result;
    for (std::size_t k = 0; k < request_order.size(); ++k) {
        const std::size_t req = request_order[k];
        const std::size_t seat_index = vacant[chosen_vacant_idx[k]];
        const double c = cost[k][chosen_vacant_idx[k]];
        result.assignments.push_back({requests[req].participant, seat_index, c});
        result.total_cost += c;
    }
    return result;
}

}  // namespace

AssignmentResult assign_seats_optimal(const SeatMap& seats,
                                      const std::vector<SeatRequest>& requests) {
    AssignmentResult result;
    const std::vector<std::size_t> vacant = seats.vacant_indices();
    if (requests.empty()) return result;

    // More requests than seats: seat the first `vacant` requests, report the
    // rest unseated (admission control happens upstream).
    std::vector<std::size_t> order(requests.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::vector<std::size_t> seated(order.begin(),
                                    order.begin() + static_cast<std::ptrdiff_t>(std::min(
                                                        requests.size(), vacant.size())));
    for (std::size_t i = seated.size(); i < requests.size(); ++i) {
        result.unseated.push_back(requests[i].participant);
    }
    if (seated.empty()) return result;

    // Translate both point sets to their centroids so the matching cares
    // about relative geometry, not absolute source coordinates.
    std::vector<math::Vec3> req_pts;
    for (const std::size_t i : seated) req_pts.push_back(requests[i].source_position);
    std::vector<math::Vec3> seat_pts;
    for (const std::size_t v : vacant) seat_pts.push_back(seats.seat(v).pose.position);
    const math::Vec3 req_c = centroid_of(req_pts);
    const math::Vec3 seat_c = centroid_of(seat_pts);

    std::vector<std::vector<double>> cost(seated.size(),
                                          std::vector<double>(vacant.size(), 0.0));
    for (std::size_t i = 0; i < seated.size(); ++i) {
        for (std::size_t j = 0; j < vacant.size(); ++j) {
            cost[i][j] = (req_pts[i] - req_c).distance_to(seat_pts[j] - seat_c);
        }
    }
    const std::vector<std::size_t> match = hungarian(cost);
    AssignmentResult out = finalize(requests, vacant, seated, match, cost);
    out.unseated = std::move(result.unseated);
    return out;
}

AssignmentResult assign_seats_greedy(const SeatMap& seats,
                                     const std::vector<SeatRequest>& requests) {
    AssignmentResult result;
    const std::vector<std::size_t> vacant = seats.vacant_indices();
    std::vector<bool> taken(vacant.size(), false);

    std::vector<math::Vec3> req_pts;
    for (const auto& r : requests) req_pts.push_back(r.source_position);
    std::vector<math::Vec3> seat_pts;
    for (const std::size_t v : vacant) seat_pts.push_back(seats.seat(v).pose.position);
    const math::Vec3 req_c = centroid_of(req_pts);
    const math::Vec3 seat_c = centroid_of(seat_pts);

    for (std::size_t i = 0; i < requests.size(); ++i) {
        double best = std::numeric_limits<double>::max();
        std::size_t best_j = vacant.size();
        for (std::size_t j = 0; j < vacant.size(); ++j) {
            if (taken[j]) continue;
            const double c = (req_pts[i] - req_c).distance_to(seat_pts[j] - seat_c);
            if (c < best) {
                best = c;
                best_j = j;
            }
        }
        if (best_j == vacant.size()) {
            result.unseated.push_back(requests[i].participant);
            continue;
        }
        taken[best_j] = true;
        result.assignments.push_back({requests[i].participant, vacant[best_j], best});
        result.total_cost += best;
    }
    return result;
}

}  // namespace mvc::edge
