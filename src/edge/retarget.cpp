#include "edge/retarget.hpp"

namespace mvc::edge {

PoseRetargeter::PoseRetargeter(RetargetParams params) : params_(params) {}

void PoseRetargeter::bind(ParticipantId who, const math::Pose& source_anchor,
                          const math::Pose& seat) {
    anchors_[who] = Binding{source_anchor, seat};
}

void PoseRetargeter::unbind(ParticipantId who) { anchors_.erase(who); }

std::optional<avatar::AvatarState> PoseRetargeter::retarget(
    const avatar::AvatarState& source) const {
    const auto it = anchors_.find(source.participant);
    if (it == anchors_.end()) return std::nullopt;
    const Binding& b = it->second;

    const auto map_pose = [&](const math::Pose& world) {
        // Express relative to the source anchor, replay in the seat frame.
        return b.seat.compose(b.source_anchor.to_local(world));
    };

    avatar::AvatarState out = source;
    out.root.pose = map_pose(source.root.pose);
    out.body.head = map_pose(source.body.head);
    out.body.left_hand = map_pose(source.body.left_hand);
    out.body.right_hand = map_pose(source.body.right_hand);
    // Velocities rotate with the frame change (anchor -> seat).
    const math::Quat frame_rot =
        (b.seat.orientation * b.source_anchor.orientation.inverse()).normalized();
    out.root.linear_velocity = frame_rot.rotate(source.root.linear_velocity);
    out.root.angular_velocity = frame_rot.rotate(source.root.angular_velocity);

    // Clamp horizontal drift so the avatar stays at its seat.
    math::Vec3 offset = out.root.pose.position - b.seat.position;
    const math::Vec3 horizontal{offset.x, 0.0, offset.z};
    const double dist = horizontal.norm();
    if (dist > params_.roam_radius_m) {
        ++clamped_;
        const math::Vec3 capped = horizontal * (params_.roam_radius_m / dist);
        const math::Vec3 delta{capped.x - horizontal.x, 0.0, capped.z - horizontal.z};
        out.root.pose.position += delta;
        out.body.head.position += delta;
        out.body.left_hand.position += delta;
        out.body.right_hand.position += delta;
    }
    return out;
}

}  // namespace mvc::edge
