#pragma once
// The per-classroom edge server from Figure 3. Ingests headset + room-sensor
// observations, fuses them into participant tracks, publishes avatar update
// streams to peer servers (the other MR classroom's edge and the VR cloud),
// and — for inbound remote avatars — assigns vacant seats, retargets poses
// into the local room frame, and serves display states to the renderer.
//
// Resilience: with heartbeats enabled the server monitors each peer. While
// a peer is dead its avatar stream is rerouted through the cloud relay
// (AvatarWire::relay_to), and on failback the direct path resumes with a
// forced keyframe so the recovered peer resyncs immediately. A degradation
// policy driven by the heartbeat loss estimate scales down publisher rate
// and dead-reckoning sensitivity under sustained loss.
//
// Crash recovery: with RecoveryParams enabled the server periodically
// checkpoints its replicated state (seat occupancy, reservations, remote
// replica references + retarget bindings, plus whatever the owner's
// checkpoint decorator adds — session membership and content when embedded
// in a MetaverseClassroom) into a durable CheckpointStore. A FaultPlan node
// crash wipes the volatile replicated state; on restart the server restores
// from its last checkpoint, reports the measured recovery gap, resyncs
// anything newer from live peers in one round trip (ResyncClient), and
// forces keyframes so its own outbound delta chains re-anchor.
//
// Overload: with AdmissionParams enabled the avatar ingress runs through a
// bounded drop-oldest queue, and an AdmissionGate sheds never-before-seen
// (late-joining) streams while queue depth stays past the hysteresis
// threshold — newcomers wait, admitted streams keep their bounds.

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "edge/retarget.hpp"
#include "edge/seats.hpp"
#include "fault/degradation.hpp"
#include "fault/heartbeat.hpp"
#include "net/channel.hpp"
#include "sync/batcher.hpp"
#include "recovery/admission.hpp"
#include "recovery/checkpointer.hpp"
#include "recovery/reconnect.hpp"
#include "recovery/resync.hpp"
#include "sensing/fusion.hpp"
#include "sync/replication.hpp"
#include "sync/wire.hpp"

namespace mvc::edge {

struct EdgeServerConfig {
    ClassroomId room;
    std::string name{"edge"};
    sensing::FusionParams fusion{};
    sync::ReplicationParams replication{};
    avatar::CodecBounds codec_bounds{};
    sync::JitterBufferParams jitter{};
    RetargetParams retarget{};
    /// Server compute time charged per inbound avatar packet.
    sim::Time process_time{sim::Time::us(30)};
    /// Peer liveness probing; disabled by default (healthy-network setups
    /// pay nothing).
    fault::HeartbeatParams heartbeat{};
    /// Loss-driven graceful degradation (active only with heartbeats on,
    /// which provide the loss signal; the avatar-stream PathHealth loss and
    /// delay estimates are folded in when available).
    fault::DegradationParams degradation{};
    /// Avatar-stream health estimation (wire seq gaps + e2e delay EWMA).
    fault::PathHealthParams path_health{};
    /// Per-peer reconnect state machines: a dead peer (heartbeat failover)
    /// enters a backoff-probe loop instead of waiting passively; each probe
    /// is a resync round trip, and success re-anchors state immediately.
    /// Liveness here defaults to explicit suspicion only — the heartbeat
    /// monitor is the silence detector on this path.
    bool reconnect_enabled{false};
    recovery::ReconnectParams reconnect{.liveness_timeout = sim::Time::zero()};
    /// Crash recovery: periodic checkpoints + restart restoration + resync.
    recovery::RecoveryParams recovery{};
    /// Overload admission control on the avatar ingress.
    recovery::AdmissionParams admission{};
    /// Coalesce peer-bound avatar updates into one batch packet per peer per
    /// interval (zero = per-update packets, the default).
    sim::Time batch_interval{};
};

class EdgeServer {
public:
    EdgeServer(net::Backend& net, net::NodeId node, EdgeServerConfig config, SeatMap seats);

    EdgeServer(const EdgeServer&) = delete;
    EdgeServer& operator=(const EdgeServer&) = delete;

    [[nodiscard]] net::NodeId node() const { return node_; }
    [[nodiscard]] ClassroomId room() const { return config_.room; }
    [[nodiscard]] net::PacketDemux& demux() { return demux_; }
    [[nodiscard]] SeatMap& seats() { return seats_; }
    [[nodiscard]] const SeatMap& seats() const { return seats_; }

    /// Register a physically present participant (occupies `seat` if given).
    void add_local_participant(ParticipantId who, std::optional<std::size_t> seat = {});
    void remove_local_participant(ParticipantId who);
    [[nodiscard]] std::size_t local_count() const { return locals_.size(); }

    /// Peer server that should receive this classroom's avatar streams.
    void add_peer(net::NodeId peer);
    /// Designate the cloud node that can relay avatar updates to peers whose
    /// direct link is dead. Also registers it as a peer.
    void set_cloud_relay(net::NodeId relay);
    /// Liveness of a peer as seen by this server (true without heartbeats).
    [[nodiscard]] bool peer_alive(net::NodeId peer) const;

    /// Reserve a vacant seat for a remote participant before their stream
    /// arrives (keynote speakers, admitted-late students). Returns the seat
    /// index, or nullopt when the room is full.
    std::optional<std::size_t> reserve_seat(ParticipantId who);

    /// Feed one sensor observation (wired sensors call this directly; WiFi
    /// ingestion delivers here via the channel callback).
    void ingest_sample(sensing::SensorSample&& sample);

    /// Start aggregation + publishing.
    void start();
    void stop();

    /// Retargeted display state of a remote participant at local time `now`.
    [[nodiscard]] std::optional<avatar::AvatarState> display_remote(ParticipantId who,
                                                                    sim::Time now) const;
    /// All remote participants currently represented in this room.
    [[nodiscard]] std::vector<ParticipantId> remote_participants() const;
    /// Count of decoded network updates for a remote participant (0 if
    /// unknown) — lets probes distinguish fresh data from extrapolation.
    [[nodiscard]] std::uint64_t remote_update_count(ParticipantId who) const;
    /// Fused local state (what we are publishing), for verification.
    [[nodiscard]] std::optional<avatar::AvatarState> local_state(ParticipantId who,
                                                                 sim::Time now) const;

    [[nodiscard]] const sensing::PoseFusion& fusion() const { return fusion_; }
    [[nodiscard]] std::uint64_t avatar_packets_in() const { return packets_in_; }
    [[nodiscard]] std::uint64_t avatar_packets_out() const { return packets_out_; }
    [[nodiscard]] std::uint64_t seats_exhausted() const { return seats_exhausted_; }

    /// Heartbeat monitor; nullptr when heartbeats are disabled.
    [[nodiscard]] fault::HeartbeatMonitor* heartbeat() { return hb_.get(); }
    [[nodiscard]] const fault::HeartbeatMonitor* heartbeat() const { return hb_.get(); }
    /// Current graceful-degradation level (0 = full fidelity).
    [[nodiscard]] int degradation_level() const { return degrade_.level(); }
    /// Updates sent indirectly through the cloud relay during failover.
    [[nodiscard]] std::uint64_t relayed_out() const { return relayed_out_; }
    /// Observed inbound avatar-path health (loss from wire seq gaps).
    [[nodiscard]] const fault::PathHealth& path_health() const { return health_; }
    /// Reconnect machine for `peer`; nullptr unless reconnect_enabled.
    [[nodiscard]] recovery::Reconnector* reconnector_for(net::NodeId peer);

    // ----- crash recovery ---------------------------------------------------

    /// Extra capture step merged into every checkpoint (the embedding layer
    /// adds session membership/content here).
    using CheckpointDecorator = std::function<void(recovery::ClassroomCheckpoint&)>;
    void set_checkpoint_decorator(CheckpointDecorator fn) {
        checkpoint_decorator_ = std::move(fn);
    }

    /// Capture this server's replicated state into `cp` (also used by the
    /// periodic checkpointer).
    void make_checkpoint(recovery::ClassroomCheckpoint& cp) const;
    /// Re-apply a decoded checkpoint: seats, reservations, replicas with
    /// their exact retarget bindings.
    void restore_checkpoint(const recovery::ClassroomCheckpoint& cp);

    [[nodiscard]] std::uint64_t restores() const { return restores_; }
    [[nodiscard]] std::uint64_t cold_starts() const { return cold_starts_; }
    [[nodiscard]] double last_recovery_gap_ms() const { return last_recovery_gap_ms_; }
    /// The checkpoint applied by the most recent restart; nullopt before any.
    [[nodiscard]] const std::optional<recovery::ClassroomCheckpoint>& last_restored()
        const {
        return last_restored_;
    }
    [[nodiscard]] recovery::Checkpointer* checkpointer() { return checkpointer_.get(); }
    [[nodiscard]] recovery::ResyncClient* resync_client() { return resync_client_.get(); }

    // ----- overload admission -----------------------------------------------

    [[nodiscard]] const recovery::AdmissionGate& admission_gate() const { return gate_; }
    [[nodiscard]] std::uint64_t shed_streams() const { return shed_; }
    [[nodiscard]] std::uint64_t queue_dropped() const { return queue_dropped_; }
    [[nodiscard]] std::size_t ingress_depth() const { return ingress_.size(); }

    /// Deterministic fingerprint of this server's replicated state: local
    /// roster, remote replicas (seat bindings + replica digests), seat
    /// reservations, and the packet/shed counters. Recorded per epoch so the
    /// replay divergence checker can name the node — not just the epoch —
    /// where two runs split.
    [[nodiscard]] std::uint64_t state_digest() const;

private:
    struct LocalParticipant {
        std::unique_ptr<sync::AvatarPublisher> publisher;
        std::optional<std::size_t> seat;
        /// Wire sequence of this participant's outbound stream (stamped on
        /// every transmitted update; receivers read gaps as genuine loss).
        std::uint32_t next_seq{0};
    };
    struct RemoteParticipant {
        std::unique_ptr<sync::AvatarReplica> replica;
        std::optional<std::size_t> seat;
        ClassroomId source_room;
        bool anchored{false};
        /// Seat shortage already reported for this participant (the seat
        /// search still retries quietly as seats free up).
        bool seat_shortage_reported{false};
    };
    struct PeerLink {
        net::NodeId node;
        bool alive{true};
    };

    /// Telemetry handles interned once at construction; per-packet and
    /// per-tick paths record through these instead of building labeled keys.
    struct MetricIds {
        sim::MetricId relayed_out;
        sim::MetricId sensor_ingest_ms;
        sim::MetricId degrade_level;
        sim::MetricId ingest_ms;
        sim::MetricId admission_shed;
        sim::MetricId queue_dropped;
        sim::MetricId queue_depth;
        sim::MetricId recovery_gap_ms;
        sim::MetricId recovery_restore;
        sim::MetricId recovery_cold_start;
    };

    net::Backend& net_;
    net::NodeId node_;
    EdgeServerConfig config_;
    MetricIds ids_;
    SeatMap seats_;
    net::PacketDemux demux_;
    net::Channel avatar_tx_;
    avatar::AvatarCodec codec_;
    sensing::PoseFusion fusion_;
    PoseRetargeter retargeter_;
    std::map<ParticipantId, LocalParticipant> locals_;
    std::map<ParticipantId, RemoteParticipant> remotes_;
    std::map<ParticipantId, std::size_t> reserved_seats_;
    std::vector<PeerLink> peers_;
    net::NodeId cloud_relay_{net::kInvalidNode};
    std::unique_ptr<fault::HeartbeatMonitor> hb_;
    std::unique_ptr<sync::WireBatcher> batcher_;
    fault::DegradationPolicy degrade_;
    fault::PathHealth health_;
    std::map<net::NodeId, std::unique_ptr<recovery::Reconnector>> reconnectors_;
    sim::EventHandle degrade_task_;
    bool running_{false};
    sim::Time busy_until_{};
    std::uint64_t packets_in_{0};
    std::uint64_t packets_out_{0};
    std::uint64_t seats_exhausted_{0};
    std::uint64_t relayed_out_{0};

    // Crash recovery.
    std::unique_ptr<recovery::Checkpointer> checkpointer_;
    std::unique_ptr<recovery::ResyncResponder> resync_responder_;
    std::unique_ptr<recovery::ResyncClient> resync_client_;
    CheckpointDecorator checkpoint_decorator_;
    std::optional<recovery::ClassroomCheckpoint> last_restored_;
    std::uint64_t restores_{0};
    std::uint64_t cold_starts_{0};
    double last_recovery_gap_ms_{0.0};

    // Overload admission.
    struct QueuedWire {
        sync::AvatarWire wire;
        sim::Time sent_at{};
    };
    recovery::AdmissionGate gate_;
    std::deque<QueuedWire> ingress_;
    std::set<ParticipantId> admitted_;
    std::uint64_t shed_{0};
    std::uint64_t queue_dropped_{0};

    void handle_avatar_packet(net::Packet&& p);
    void handle_avatar_batch(net::Packet&& p);
    void ingest_avatar(sync::AvatarWire&& wire, sim::Time sent_at);
    void process_avatar_wire(sync::AvatarWire&& wire, sim::Time sent_at);
    void try_anchor(ParticipantId who, RemoteParticipant& rp);
    void on_node_state(bool up);
    void wipe_replicated_state();
    [[nodiscard]] std::vector<recovery::ResyncEntry> build_resync_entries() const;
    void publish(ParticipantId who, std::vector<std::uint8_t> bytes, bool keyframe,
                 sim::Time captured_at);
    void on_peer_state(net::NodeId peer, bool alive);
    void degrade_tick();
    [[nodiscard]] avatar::AvatarState synthesize_avatar(ParticipantId who,
                                                        const sensing::FusedTrack& track,
                                                        sim::Time now) const;
    /// Queue a unit of server compute; returns when the result is ready.
    [[nodiscard]] sim::Time charge_processing();
};

}  // namespace mvc::edge
