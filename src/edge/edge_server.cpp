#include "edge/edge_server.hpp"

#include <algorithm>
#include <utility>

#include "common/hash.hpp"

namespace mvc::edge {

EdgeServer::EdgeServer(net::Backend& net, net::NodeId node, EdgeServerConfig config,
                       SeatMap seats)
    : net_(net),
      node_(node),
      config_(std::move(config)),
      ids_{.relayed_out =
               net.metrics().counter_id("edge." + config_.name + ".relayed_out"),
           .sensor_ingest_ms =
               net.metrics().series_id("edge." + config_.name + ".sensor_ingest_ms"),
           .degrade_level =
               net.metrics().series_id("edge." + config_.name + ".degrade_level"),
           .ingest_ms = net.metrics().series_id("edge." + config_.name + ".ingest_ms"),
           .admission_shed =
               net.metrics().counter_id("admission.shed", {{"server", config_.name}}),
           .queue_dropped =
               net.metrics().counter_id("queue.dropped", {{"server", config_.name}}),
           .queue_depth =
               net.metrics().series_id("queue.depth", {{"server", config_.name}}),
           .recovery_gap_ms =
               net.metrics().series_id("recovery.gap_ms", {{"server", config_.name}}),
           .recovery_restore =
               net.metrics().counter_id("recovery.restore", {{"server", config_.name}}),
           .recovery_cold_start = net.metrics().counter_id(
               "recovery.cold_start", {{"server", config_.name}})},
      seats_(std::move(seats)),
      demux_(net, node),
      avatar_tx_(net.open_channel({.src = node_,
                                   .flow = std::string{sync::kAvatarFlow},
                                   .options = {.priority = net::Priority::Realtime}})),
      codec_(config_.codec_bounds),
      fusion_(config_.fusion),
      retargeter_(config_.retarget),
      degrade_(config_.degradation),
      health_(config_.path_health),
      gate_(config_.admission) {
    demux_.on_flow(std::string{sync::kAvatarFlow},
                   [this](net::Packet&& p) { handle_avatar_packet(std::move(p)); });
    demux_.on_flow(std::string{sync::kAvatarBatchFlow},
                   [this](net::Packet&& p) { handle_avatar_batch(std::move(p)); });
    if (config_.batch_interval > sim::Time::zero()) {
        batcher_ = std::make_unique<sync::WireBatcher>(net_, node_,
                                                       config_.batch_interval);
    }
    net_.context(node_).bind<EdgeServer>(this);
    if (config_.heartbeat.enabled) {
        hb_ = std::make_unique<fault::HeartbeatMonitor>(
            net_, demux_, config_.heartbeat, "edge." + config_.name);
        hb_->on_peer_state(
            [this](net::NodeId peer, bool alive) { on_peer_state(peer, alive); });
    }
    if (config_.recovery.enabled && config_.recovery.store != nullptr) {
        if (config_.recovery.checkpoints) {
            checkpointer_ = std::make_unique<recovery::Checkpointer>(
                net_.clock(), net_.metrics(), config_.recovery, net_.name_of(node_),
                [this](recovery::ClassroomCheckpoint& cp) {
                    make_checkpoint(cp);
                    if (checkpoint_decorator_) checkpoint_decorator_(cp);
                });
        }
        if (config_.recovery.resync) {
            resync_responder_ = std::make_unique<recovery::ResyncResponder>(
                net_, demux_, [this] { return build_resync_entries(); },
                [this] {
                    for (auto& [who, lp] : locals_) lp.publisher->request_keyframe();
                });
            resync_client_ = std::make_unique<recovery::ResyncClient>(
                net_, demux_,
                [this](const recovery::ResyncSnapshot& snap, net::NodeId from) {
                    const sim::Time now = net_.clock().now();
                    for (const auto& entry : snap.entries) {
                        auto [it, inserted] = remotes_.try_emplace(entry.participant);
                        RemoteParticipant& rp = it->second;
                        if (inserted)
                            rp.replica = std::make_unique<sync::AvatarReplica>(
                                codec_, config_.jitter);
                        rp.source_room = entry.source_room;
                        rp.replica->ingest(entry.bytes, /*keyframe=*/true, now);
                        try_anchor(entry.participant, rp);
                    }
                    // A served snapshot is proof the path to `from` works;
                    // if a reconnect probe is in flight, this is its verdict.
                    if (recovery::Reconnector* rc = reconnector_for(from))
                        rc->probe_succeeded();
                });
        }
        net_.observe_node(node_, [this](net::NodeId, bool up) { on_node_state(up); });
    }
}

void EdgeServer::add_local_participant(ParticipantId who, std::optional<std::size_t> seat) {
    LocalParticipant lp;
    if (seat.has_value()) {
        seats_.occupy(*seat, who);
        lp.seat = seat;
    }
    lp.publisher = std::make_unique<sync::AvatarPublisher>(
        net_.clock(), codec_, config_.replication,
        [this, who](std::vector<std::uint8_t> bytes, bool keyframe,
                    sim::Time captured_at) {
            publish(who, std::move(bytes), keyframe, captured_at);
        });
    // Pull-mode: each publisher tick samples fusion at send time, so capture
    // timestamps track transmission and receiver jitter stays network-only.
    lp.publisher->set_provider([this, who]() -> std::optional<avatar::AvatarState> {
        const sim::Time now = net_.clock().now();
        const auto track = fusion_.estimate(who, now);
        if (!track.has_value()) return std::nullopt;
        return synthesize_avatar(who, *track, now);
    });
    if (running_) lp.publisher->start();
    locals_.emplace(who, std::move(lp));
}

void EdgeServer::remove_local_participant(ParticipantId who) {
    const auto it = locals_.find(who);
    if (it == locals_.end()) return;
    if (it->second.seat.has_value()) seats_.vacate(*it->second.seat);
    it->second.publisher->stop();
    locals_.erase(it);
    fusion_.drop(who);
}

void EdgeServer::publish(ParticipantId who, std::vector<std::uint8_t> bytes, bool keyframe,
                         sim::Time captured_at) {
    sync::AvatarWire wire{who, config_.room, keyframe, std::move(bytes), captured_at, {}};
    if (const auto lp = locals_.find(who); lp != locals_.end())
        wire.seq = ++lp->second.next_seq;
    const std::size_t wire_size = wire.wire_bytes();
    // Failover routing: peers whose direct link is dead receive this update
    // through the cloud relay instead (piggybacked on the relay's own copy).
    std::vector<std::uint32_t> relay_to;
    for (const PeerLink& peer : peers_) {
        if (!peer.alive && peer.node != cloud_relay_ && cloud_relay_ != net::kInvalidNode)
            relay_to.push_back(peer.node);
    }
    // Every plain peer shares one payload box; only the cloud-relay copy
    // (which piggybacks the failover routing list) needs its own value.
    const net::Payload shared{wire};
    for (const PeerLink& peer : peers_) {
        if (!peer.alive) continue;
        ++packets_out_;
        if (peer.node == cloud_relay_ && !relay_to.empty()) {
            sync::AvatarWire copy = wire;
            copy.relay_to = relay_to;
            relayed_out_ += relay_to.size();
            net_.metrics().count(ids_.relayed_out, relay_to.size());
            if (batcher_) {
                batcher_->enqueue(peer.node, std::move(copy));
            } else {
                avatar_tx_.send_to(peer.node, copy.wire_bytes(), std::move(copy));
            }
            continue;
        }
        if (batcher_) {
            batcher_->enqueue(peer.node, wire);
        } else {
            avatar_tx_.send_to(peer.node, wire_size, shared);
        }
    }
}

void EdgeServer::add_peer(net::NodeId peer) {
    const auto it = std::find_if(peers_.begin(), peers_.end(),
                                 [peer](const PeerLink& p) { return p.node == peer; });
    if (it != peers_.end()) return;
    peers_.push_back(PeerLink{peer, true});
    if (hb_) hb_->watch(peer);
    if (config_.reconnect_enabled) {
        auto rc = std::make_unique<recovery::Reconnector>(
            net_.clock(), config_.reconnect,
            config_.name + "/" + net_.name_of(peer));
        rc->on_probe([this, peer] {
            // A resync round trip doubles as the probe: success both proves
            // the path and re-anchors state in one RTT. Without a resync
            // client fall back to the heartbeat verdict.
            if (resync_client_ != nullptr) {
                resync_client_->request(peer);
            } else if (hb_ == nullptr || hb_->alive(peer)) {
                if (recovery::Reconnector* self = reconnector_for(peer))
                    self->probe_succeeded();
            }
        });
        if (running_) rc->start();
        reconnectors_.emplace(peer, std::move(rc));
    }
}

recovery::Reconnector* EdgeServer::reconnector_for(net::NodeId peer) {
    const auto it = reconnectors_.find(peer);
    return it == reconnectors_.end() ? nullptr : it->second.get();
}

void EdgeServer::set_cloud_relay(net::NodeId relay) {
    add_peer(relay);
    cloud_relay_ = relay;
}

bool EdgeServer::peer_alive(net::NodeId peer) const {
    const auto it = std::find_if(peers_.begin(), peers_.end(),
                                 [peer](const PeerLink& p) { return p.node == peer; });
    return it == peers_.end() || it->alive;
}

void EdgeServer::on_peer_state(net::NodeId peer, bool alive) {
    const auto it = std::find_if(peers_.begin(), peers_.end(),
                                 [peer](const PeerLink& p) { return p.node == peer; });
    if (it != peers_.end()) it->alive = alive;
    // Dead peer: the relayed stream starts mid-delta, so force a keyframe to
    // resync relay-path receivers. Recovered peer: same, for the direct path
    // (it missed everything sent while its inbound deliveries were dying).
    for (auto& [who, lp] : locals_) lp.publisher->request_keyframe();
    if (recovery::Reconnector* rc = reconnector_for(peer)) {
        if (alive) {
            rc->touch();
        } else {
            rc->suspect();  // starts the backoff-probe loop
        }
    }
}

std::optional<std::size_t> EdgeServer::reserve_seat(ParticipantId who) {
    const auto existing = reserved_seats_.find(who);
    if (existing != reserved_seats_.end()) return existing->second;
    const auto vacant = seats_.vacant_indices();
    if (vacant.empty()) return std::nullopt;
    // Front-row seats first: reservations are for people the room should see.
    const std::size_t seat = vacant.front();
    seats_.occupy(seat, who);
    reserved_seats_[who] = seat;
    return seat;
}

void EdgeServer::ingest_sample(sensing::SensorSample&& sample) {
    net_.metrics().sample(ids_.sensor_ingest_ms,
                          (net_.clock().now() - sample.captured_at).to_ms());
    fusion_.observe(sample);
}

void EdgeServer::start() {
    if (running_) return;
    running_ = true;
    for (auto& [who, lp] : locals_) lp.publisher->start();
    if (hb_) {
        hb_->start();
        degrade_task_ =
            net_.clock().schedule_every(config_.heartbeat.interval, [this] {
                degrade_tick();
            });
    }
    for (auto& [peer, rc] : reconnectors_) rc->start();
    if (checkpointer_) checkpointer_->resume();
}

void EdgeServer::stop() {
    if (!running_) return;
    running_ = false;
    for (auto& [who, lp] : locals_) lp.publisher->stop();
    if (hb_) {
        hb_->stop();
        net_.clock().cancel(degrade_task_);
    }
    for (auto& [peer, rc] : reconnectors_) rc->stop();
    if (checkpointer_) checkpointer_->pause();
}

void EdgeServer::degrade_tick() {
    const sim::Time now = net_.clock().now();
    health_.roll(now);
    // Worst of the two loss signals: heartbeat seq gaps (cheap, all peers)
    // and avatar-stream seq gaps (the traffic that actually matters). The
    // PathHealth delay EWMA adds the latency criterion when configured.
    const double loss = std::max(hb_->worst_loss(), health_.loss());
    if (!degrade_.update(loss, health_.rtt_ms(), now)) return;
    const double rate_scale = degrade_.rate_scale();
    const double threshold_scale = degrade_.threshold_scale();
    for (auto& [who, lp] : locals_) {
        lp.publisher->set_rate_scale(rate_scale);
        lp.publisher->set_threshold_scale(threshold_scale);
    }
    net_.metrics().sample(ids_.degrade_level, static_cast<double>(degrade_.level()));
    net_.metrics().count(
        "edge.degrade_transition",
        {{"server", config_.name},
         {"lod", avatar::lod_profile(degrade_.lod()).name}});
}

avatar::AvatarState EdgeServer::synthesize_avatar(ParticipantId who,
                                                  const sensing::FusedTrack& track,
                                                  sim::Time now) const {
    avatar::AvatarState s;
    s.participant = who;
    s.root = track.state;
    s.captured_at = now;
    // Body joints synthesized from the fused root: head above the root,
    // hands in a natural rest pose; all rotate with the torso.
    const math::Quat& q = track.state.pose.orientation;
    const math::Vec3& base = track.state.pose.position;
    s.body.head = {base + q.rotate({0.0, 0.65, 0.0}), q};
    s.body.left_hand = {base + q.rotate({-0.25, 0.35, -0.20}), q};
    s.body.right_hand = {base + q.rotate({0.25, 0.35, -0.20}), q};
    s.expression = track.expression;
    if (s.expression.size() > avatar::kExpressionChannels)
        s.expression.resize(avatar::kExpressionChannels);
    return s;
}

sim::Time EdgeServer::charge_processing() {
    const sim::Time start = std::max(net_.clock().now(), busy_until_);
    busy_until_ = start + config_.process_time;
    return busy_until_;
}

void EdgeServer::handle_avatar_packet(net::Packet&& p) {
    auto wire = p.payload.take<sync::AvatarWire>();
    ingest_avatar(std::move(wire), p.sent_at);
}

void EdgeServer::handle_avatar_batch(net::Packet&& p) {
    auto batch = p.payload.take<sync::AvatarBatchWire>();
    const sim::Time sent_at = p.sent_at;
    for (sync::AvatarWire& wire : batch.updates)
        ingest_avatar(std::move(wire), sent_at);
}

void EdgeServer::ingest_avatar(sync::AvatarWire&& wire, sim::Time sent_at) {
    ++packets_in_;
    if (!config_.admission.enabled) {
        const sim::Time ready = charge_processing();
        net_.clock().schedule_at(ready,
                                     [this, wire = std::move(wire), sent_at]() mutable {
                                         process_avatar_wire(std::move(wire), sent_at);
                                     });
        return;
    }

    // Bounded ingress with admission control: the gate watches queue depth;
    // while shedding, streams never seen before (late joiners) are rejected
    // so the queue capacity serves the already-admitted class.
    if (gate_.update(ingress_.size(), net_.clock().now()))
        net_.metrics().count("admission.transition",
                             {{"server", config_.name},
                              {"state", gate_.shedding() ? "shed" : "admit"}});
    if (gate_.shedding() && !admitted_.contains(wire.participant)) {
        ++shed_;
        net_.metrics().count(ids_.admission_shed);
        return;
    }
    admitted_.insert(wire.participant);
    ingress_.push_back(QueuedWire{std::move(wire), sent_at});
    if (ingress_.size() > config_.admission.queue_capacity) {
        ingress_.pop_front();
        ++queue_dropped_;
        net_.metrics().count(ids_.queue_dropped);
    }
    net_.metrics().sample(ids_.queue_depth, static_cast<double>(ingress_.size()));
    const sim::Time ready = charge_processing();
    // One drain per push; drops leave excess drains that find an empty queue.
    net_.clock().schedule_at(ready, [this] {
        if (ingress_.empty()) return;
        QueuedWire q = std::move(ingress_.front());
        ingress_.pop_front();
        process_avatar_wire(std::move(q.wire), q.sent_at);
    });
}

void EdgeServer::process_avatar_wire(sync::AvatarWire&& wire, sim::Time sent_at) {
    const sim::Time now = net_.clock().now();
    health_.observe(wire.participant.value(), wire.seq,
                    (now - wire.captured_at).to_ms(), now);
    auto [it, inserted] = remotes_.try_emplace(wire.participant);
    RemoteParticipant& rp = it->second;
    if (inserted) {
        rp.replica = std::make_unique<sync::AvatarReplica>(codec_, config_.jitter);
    }
    rp.source_room = wire.source_room;
    rp.replica->ingest(wire.bytes, wire.keyframe, now);
    if (!rp.anchored) try_anchor(wire.participant, rp);
    net_.metrics().sample(ids_.ingest_ms, (now - sent_at).to_ms());
}

void EdgeServer::try_anchor(ParticipantId who, RemoteParticipant& rp) {
    if (rp.anchored) return;
    const auto latest = rp.replica->latest();
    if (!latest.has_value()) return;
    // Reserved participants anchor at their held seat.
    const auto reservation = reserved_seats_.find(who);
    if (reservation != reserved_seats_.end()) {
        rp.seat = reservation->second;
        retargeter_.bind(who, latest->root.pose, seats_.seat(reservation->second).pose);
        rp.anchored = true;
        reserved_seats_.erase(reservation);
        return;
    }
    // First decodable state: pick a vacant seat and anchor the retargeting
    // transform there.
    const std::vector<SeatRequest> req{{who, latest->root.pose.position}};
    const AssignmentResult res = assign_seats_optimal(seats_, req);
    if (res.assignments.empty()) {
        if (!rp.seat_shortage_reported) {
            rp.seat_shortage_reported = true;
            ++seats_exhausted_;
        }
        return;
    }
    const std::size_t seat_index = res.assignments.front().seat_index;
    seats_.occupy(seat_index, who);
    rp.seat = seat_index;
    retargeter_.bind(who, latest->root.pose, seats_.seat(seat_index).pose);
    rp.anchored = true;
}

std::optional<avatar::AvatarState> EdgeServer::display_remote(ParticipantId who,
                                                              sim::Time now) const {
    const auto it = remotes_.find(who);
    if (it == remotes_.end() || !it->second.anchored) return std::nullopt;
    const auto displayed = it->second.replica->display(now);
    if (!displayed.has_value()) return std::nullopt;
    return retargeter_.retarget(*displayed);
}

std::vector<ParticipantId> EdgeServer::remote_participants() const {
    std::vector<ParticipantId> out;
    out.reserve(remotes_.size());
    for (const auto& [who, rp] : remotes_) out.push_back(who);
    return out;
}

std::uint64_t EdgeServer::state_digest() const {
    common::Hash64 h;
    // std::map iteration is key-ordered, so the digest is independent of
    // insertion history — only of the state itself.
    h.size(locals_.size());
    for (const auto& [who, local] : locals_) {
        h.u32(who.value());
        h.boolean(local.seat.has_value());
        if (local.seat) h.size(*local.seat);
    }
    h.size(remotes_.size());
    for (const auto& [who, remote] : remotes_) {
        h.u32(who.value());
        h.u32(remote.source_room.value());
        h.boolean(remote.anchored);
        h.boolean(remote.seat.has_value());
        if (remote.seat) h.size(*remote.seat);
        h.u64(remote.replica->state_digest());
    }
    h.size(reserved_seats_.size());
    for (const auto& [who, seat] : reserved_seats_) h.u32(who.value()).size(seat);
    for (const auto& s : seats_.seats())
        h.boolean(s.occupied).u32(s.occupied ? s.occupant.value() : 0);
    h.u64(packets_in_).u64(packets_out_).u64(seats_exhausted_).u64(relayed_out_);
    h.u64(shed_).u64(queue_dropped_).u64(restores_).u64(cold_starts_);
    h.size(ingress_.size()).size(admitted_.size());
    return h.digest();
}

std::uint64_t EdgeServer::remote_update_count(ParticipantId who) const {
    const auto it = remotes_.find(who);
    return it == remotes_.end() ? 0 : it->second.replica->decoded();
}

std::optional<avatar::AvatarState> EdgeServer::local_state(ParticipantId who,
                                                           sim::Time now) const {
    const auto track = fusion_.estimate(who, now);
    if (!track.has_value()) return std::nullopt;
    return synthesize_avatar(who, *track, now);
}

// ------------------------------------------------------------ crash recovery

void EdgeServer::make_checkpoint(recovery::ClassroomCheckpoint& cp) const {
    for (const Seat& s : seats_.seats()) {
        if (s.occupied) cp.seats.push_back(recovery::SeatRecord{s.index, s.occupant});
    }
    for (const auto& [who, seat] : reserved_seats_)
        cp.reservations.push_back(
            recovery::ReservationRecord{who, static_cast<std::uint32_t>(seat)});
    for (const auto& [who, rp] : remotes_) {
        const auto latest = rp.replica->latest();
        if (!latest.has_value()) continue;  // nothing decodable to persist yet
        recovery::ReplicaRecord rr;
        rr.participant = who;
        rr.source_room = rp.source_room;
        rr.anchored = rp.anchored;
        rr.has_seat = rp.seat.has_value();
        rr.seat_index = rp.seat.has_value() ? static_cast<std::uint32_t>(*rp.seat) : 0;
        if (const auto binding = retargeter_.binding_of(who)) {
            rr.source_anchor = binding->source_anchor;
            rr.seat_pose = binding->seat;
        }
        rr.captured_at_ns = latest->captured_at.nanos();
        rr.reference = codec_.encode_full(*latest);
        cp.replicas.push_back(std::move(rr));
    }
}

void EdgeServer::restore_checkpoint(const recovery::ClassroomCheckpoint& cp) {
    const sim::Time now = net_.clock().now();
    for (const auto& res : cp.reservations) {
        seats_.occupy(res.seat_index, res.participant);
        reserved_seats_[res.participant] = res.seat_index;
    }
    for (const auto& rr : cp.replicas) {
        auto [it, inserted] = remotes_.try_emplace(rr.participant);
        RemoteParticipant& rp = it->second;
        if (inserted)
            rp.replica = std::make_unique<sync::AvatarReplica>(codec_, config_.jitter);
        rp.source_room = rr.source_room;
        // The checkpointed reference re-enters as a keyframe, so later deltas
        // decode again (exact once the peer's forced keyframe lands).
        rp.replica->ingest(rr.reference, /*keyframe=*/true, now);
        if (rr.anchored) {
            if (rr.has_seat) {
                seats_.occupy(rr.seat_index, rr.participant);
                rp.seat = rr.seat_index;
            }
            retargeter_.bind(rr.participant, rr.source_anchor, rr.seat_pose);
            rp.anchored = true;
        }
    }
    // Any checkpointed occupancy not re-established above (e.g. a remote that
    // never became decodable) is reclaimed so the seat map matches.
    for (const auto& s : cp.seats) {
        if (!seats_.seat(s.seat_index).occupied) seats_.occupy(s.seat_index, s.occupant);
    }
}

void EdgeServer::wipe_replicated_state() {
    for (auto& [who, rp] : remotes_) {
        if (rp.seat.has_value()) seats_.vacate(*rp.seat);
        retargeter_.unbind(who);
    }
    remotes_.clear();
    for (const auto& [who, seat] : reserved_seats_) seats_.vacate(seat);
    reserved_seats_.clear();
    ingress_.clear();
    admitted_.clear();
}

void EdgeServer::on_node_state(bool up) {
    if (!up) {
        // Process crash: publishers, heartbeats and the checkpointer stop;
        // the replicated view (remote replicas, their seats, reservations)
        // is volatile and dies with the process. Locals are physically
        // present and re-sensed on restart, so fusion state stays.
        stop();
        wipe_replicated_state();
        return;
    }
    // Restart: restore from the last durable checkpoint, report the gap,
    // then resync live peers for everything newer.
    const sim::Time now = net_.clock().now();
    bool restored = false;
    std::optional<std::vector<std::uint8_t>> bytes;
    if (checkpointer_ != nullptr) {
        bytes = config_.recovery.store->latest(net_.name_of(node_));
    }
    if (bytes) {
        try {
            recovery::ClassroomCheckpoint cp = recovery::decode_checkpoint(*bytes);
            restore_checkpoint(cp);
            last_recovery_gap_ms_ = (now - cp.taken_at()).to_ms();
            last_restored_ = std::move(cp);
            ++restores_;
            restored = true;
            net_.metrics().sample(ids_.recovery_gap_ms, last_recovery_gap_ms_);
            net_.metrics().count(ids_.recovery_restore);
        } catch (const recovery::CheckpointError&) {
            // Corrupt checkpoint: fall through to a cold start.
        }
    }
    if (!restored) {
        ++cold_starts_;
        net_.metrics().count(ids_.recovery_cold_start);
    }
    start();
    // A real restart loses publisher delta chains; re-anchor the receivers.
    for (auto& [who, lp] : locals_) lp.publisher->request_keyframe();
    for (const PeerLink& peer : peers_) {
        if (resync_client_ != nullptr && net_.node_up(peer.node)) {
            resync_client_->request(peer.node);
        }
    }
}

std::vector<recovery::ResyncEntry> EdgeServer::build_resync_entries() const {
    const sim::Time now = net_.clock().now();
    std::vector<recovery::ResyncEntry> entries;
    entries.reserve(locals_.size());
    for (const auto& [who, lp] : locals_) {
        const auto state = local_state(who, now);
        if (!state.has_value()) continue;
        recovery::ResyncEntry e;
        e.participant = who;
        e.source_room = config_.room;
        e.captured_at = now;
        e.bytes = codec_.encode_full(*state);
        entries.push_back(std::move(e));
    }
    return entries;
}

}  // namespace mvc::edge
