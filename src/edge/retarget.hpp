#pragma once
// Pose correction for displaying a remote avatar at a local seat (Figure 3:
// "it corrects the pose to match the new position of the avatar"). Each
// remote participant gets an anchor captured at assignment time; subsequent
// motion is expressed relative to that anchor and replayed in the local
// seat's frame, so leaning, pointing and head turns survive the move while
// the avatar stays planted at its seat.

#include <optional>
#include <unordered_map>

#include "avatar/state.hpp"
#include "edge/seats.hpp"

namespace mvc::edge {

struct RetargetParams {
    /// Max displacement from the seat before motion is clamped (the avatar
    /// should not wander into a neighbour's seat).
    double roam_radius_m{0.8};
};

class PoseRetargeter {
public:
    struct Binding {
        math::Pose source_anchor;
        math::Pose seat;
    };

    explicit PoseRetargeter(RetargetParams params = {});

    /// Bind a participant: their *current* source pose becomes the anchor
    /// mapped onto `seat`.
    void bind(ParticipantId who, const math::Pose& source_anchor, const math::Pose& seat);
    void unbind(ParticipantId who);
    [[nodiscard]] bool bound(ParticipantId who) const { return anchors_.contains(who); }
    /// The exact anchor/seat transform in effect for `who`; nullopt when
    /// unbound. Checkpointing uses this to restore bindings bit-exactly.
    [[nodiscard]] std::optional<Binding> binding_of(ParticipantId who) const {
        const auto it = anchors_.find(who);
        if (it == anchors_.end()) return std::nullopt;
        return it->second;
    }

    /// Map a source-frame avatar state into the local classroom frame.
    /// Returns nullopt when the participant is not bound.
    [[nodiscard]] std::optional<avatar::AvatarState> retarget(
        const avatar::AvatarState& source) const;

    [[nodiscard]] std::uint64_t clamped() const { return clamped_; }

private:
    RetargetParams params_;
    std::unordered_map<ParticipantId, Binding> anchors_;
    mutable std::uint64_t clamped_{0};
};

}  // namespace mvc::edge
