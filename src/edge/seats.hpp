#pragma once
// Classroom seat geometry and the vacant-seat assignment step from Figure 3:
// "The edge server in Classroom 2 identifies the vacant seats to display
// virtual avatars in the MR classroom."
//
// Assignment minimizes total mismatch cost between remote participants'
// relative positions and local seat positions, so a remote cluster of
// friends stays a cluster. Exact solution via the Hungarian algorithm
// (O(n^3)); a greedy nearest-seat baseline is kept for the E9 ablation.

#include <optional>
#include <vector>

#include "common/ids.hpp"
#include "math/pose.hpp"

namespace mvc::edge {

struct Seat {
    std::uint32_t index{0};
    /// Seat anchor pose in the classroom frame (position + facing).
    math::Pose pose;
    bool occupied{false};
    /// Occupant when occupied (local participant or assigned remote avatar).
    ParticipantId occupant;
};

class SeatMap {
public:
    /// Rectangular classroom: `rows` x `cols` seats, spaced `pitch` metres,
    /// all facing -z (toward the lectern at the origin).
    static SeatMap grid(std::size_t rows, std::size_t cols, double pitch = 1.2,
                        double first_row_z = 2.0);

    explicit SeatMap(std::vector<Seat> seats);

    [[nodiscard]] std::size_t size() const { return seats_.size(); }
    [[nodiscard]] std::size_t vacant_count() const;
    [[nodiscard]] const Seat& seat(std::size_t i) const { return seats_.at(i); }
    [[nodiscard]] const std::vector<Seat>& seats() const { return seats_; }

    /// Mark a seat taken by a physically present participant.
    bool occupy(std::size_t index, ParticipantId who);
    void vacate(std::size_t index);
    /// Seat currently assigned to `who`, if any.
    [[nodiscard]] std::optional<std::size_t> seat_of(ParticipantId who) const;
    [[nodiscard]] std::vector<std::size_t> vacant_indices() const;

private:
    std::vector<Seat> seats_;
};

/// One remote participant awaiting a seat, with their position in the
/// *source* classroom frame (used to preserve relative geometry).
struct SeatRequest {
    ParticipantId participant;
    math::Vec3 source_position;
};

struct SeatAssignment {
    ParticipantId participant;
    std::size_t seat_index;
    double cost;
};

struct AssignmentResult {
    std::vector<SeatAssignment> assignments;
    /// Requests that could not be seated (more avatars than vacant seats).
    std::vector<ParticipantId> unseated;
    double total_cost{0.0};
};

/// Exact min-cost matching of requests to vacant seats (Hungarian algorithm).
/// Cost of (request, seat) = distance between the request's normalized
/// source position and the seat position, after translating both point sets
/// to their centroids — i.e. preserve the remote room's relative layout.
[[nodiscard]] AssignmentResult assign_seats_optimal(const SeatMap& seats,
                                                    const std::vector<SeatRequest>& requests);

/// Greedy baseline: requests in order take their nearest free seat.
[[nodiscard]] AssignmentResult assign_seats_greedy(const SeatMap& seats,
                                                   const std::vector<SeatRequest>& requests);

/// Solve the rectangular assignment problem on an n_rows x n_cols cost
/// matrix (rows <= cols); returns for each row the chosen column. Exposed
/// for direct testing against brute force.
[[nodiscard]] std::vector<std::size_t> hungarian(
    const std::vector<std::vector<double>>& cost);

}  // namespace mvc::edge
