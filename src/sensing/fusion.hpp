#pragma once
// Edge-side sensor fusion (Figure 3: "the edge server ... aggregates the data
// to estimate the pose and facial expression of the participants").
//
// Per participant: a constant-velocity Kalman filter over position fed by
// both headset (precise) and room-camera (coarse, orientation-less)
// observations, an orientation tracker with angular-velocity estimation from
// consecutive headset samples, and EWMA-smoothed expression channels. The
// fused KinematicState is what gets encoded into avatar updates.

#include <optional>
#include <unordered_map>
#include <vector>

#include "sensing/sample.hpp"

namespace mvc::sensing {

struct FusionParams {
    /// Process noise: 1-sigma unmodelled acceleration (m/s^2). Humans in a
    /// classroom rarely exceed ~2 m/s^2.
    double accel_noise{2.0};
    /// Measurement noise used for headset / room-camera position updates.
    double headset_noise_m{0.002};
    double camera_noise_m{0.03};
    /// Blend factor pulling the orientation estimate toward each headset
    /// measurement (per sample).
    double orientation_alpha{0.6};
    /// EWMA factor for expression channels.
    double expression_alpha{0.4};
    /// A track not updated for this long is reported lost.
    sim::Time stale_after{sim::Time::ms(500)};
};

/// Fused, time-stamped participant state.
struct FusedTrack {
    math::KinematicState state;
    std::vector<double> expression;
    sim::Time last_update{};
    std::uint64_t updates{0};
};

class PoseFusion {
public:
    explicit PoseFusion(FusionParams params = {});

    /// Ingest one observation (any source, any order; out-of-order samples
    /// older than the track's last update are ignored).
    void observe(const SensorSample& sample);

    /// Best estimate extrapolated to `now`; nullopt if unknown or stale.
    [[nodiscard]] std::optional<FusedTrack> estimate(ParticipantId p, sim::Time now) const;

    [[nodiscard]] std::size_t track_count() const { return tracks_.size(); }
    [[nodiscard]] std::vector<ParticipantId> tracked(sim::Time now) const;
    void drop(ParticipantId p);

private:
    struct AxisKf {  // 2-state (position, velocity) Kalman filter, one axis
        double pos{0.0};
        double vel{0.0};
        // Covariance [p_pp p_pv; p_pv p_vv]; starts wide until first update.
        double p_pp{1.0};
        double p_pv{0.0};
        double p_vv{1.0};

        void predict(double dt, double accel_noise);
        void update(double meas, double meas_noise);
    };
    struct Track {
        AxisKf x, y, z;
        math::Quat orientation{};
        math::Quat last_meas_orientation{};
        math::Vec3 angular_velocity{};
        bool have_orientation{false};
        sim::Time last_orientation_at{};
        std::vector<double> expression;
        sim::Time last_update{};
        bool initialized{false};
        std::uint64_t updates{0};
    };

    FusionParams params_;
    std::unordered_map<ParticipantId, Track> tracks_;
};

}  // namespace mvc::sensing
