#pragma once
// Non-intrusive classroom sensor array (Figure 3: "the physical classroom is
// equipped with non-intrusive sensors that can estimate the exact pose of the
// participants"). Models a set of ceiling cameras observing every tracked
// participant at a fixed rate: position-only, noisier than headset tracking,
// and subject to per-participant occlusion stretches.

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sensing/sample.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace mvc::sensing {

struct RoomSensorParams {
    double sample_rate_hz{30.0};
    /// 1-sigma positional noise (cm-scale for multi-camera triangulation).
    double position_noise_m{0.03};
    /// Probability an unoccluded participant becomes occluded per sample.
    double occlusion_start{0.02};
    /// Probability an occluded participant becomes visible again per sample.
    double occlusion_end{0.3};
};

class RoomSensorArray {
public:
    using TruthFn = std::function<GroundTruth(ParticipantId)>;
    using EmitFn = std::function<void(SensorSample&&)>;

    RoomSensorArray(sim::Simulator& sim, std::string name, RoomSensorParams params,
                    TruthFn truth, EmitFn emit);

    void track(ParticipantId participant);
    void untrack(ParticipantId participant);
    [[nodiscard]] std::size_t tracked_count() const { return tracked_.size(); }

    void start();
    void stop();

    [[nodiscard]] std::uint64_t emitted() const { return emitted_; }
    [[nodiscard]] std::uint64_t occluded_samples() const { return occluded_samples_; }
    [[nodiscard]] bool is_occluded(ParticipantId p) const;

private:
    sim::Simulator& sim_;
    std::string name_;
    RoomSensorParams params_;
    TruthFn truth_;
    EmitFn emit_;
    sim::Rng rng_;
    sim::EventHandle task_;
    bool running_{false};
    std::vector<ParticipantId> tracked_;
    std::unordered_map<ParticipantId, bool> occluded_;
    std::uint64_t emitted_{0};
    std::uint64_t occluded_samples_{0};

    void sweep();
};

}  // namespace mvc::sensing
