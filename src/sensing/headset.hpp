#pragma once
// MR/VR headset tracking model. Substitutes real HMD hardware: samples a
// ground-truth provider at the device tracking rate, corrupts it with
// calibrated noise, and occasionally drops samples (tracking loss). The
// downstream pipeline only ever sees the emitted SensorSamples, so fidelity
// to real hardware is a matter of the rate/noise/dropout statistics, which
// are configurable per device class.

#include <functional>
#include <string>

#include "sensing/sample.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace mvc::sensing {

struct HeadsetParams {
    double sample_rate_hz{60.0};
    /// 1-sigma positional noise per axis (metres). Inside-out trackers sit
    /// around 1-3 mm under good lighting.
    double position_noise_m{0.002};
    /// 1-sigma orientation noise (radians, ~0.1 deg for modern HMDs).
    double orientation_noise_rad{0.002};
    /// Probability a sample is lost (tracking hiccup, camera blur).
    double dropout{0.01};
    /// Number of facial blendshape channels captured (0 = no face tracking).
    std::size_t expression_channels{16};
    /// 1-sigma noise on each blendshape coefficient.
    double expression_noise{0.02};
};

/// Preset device classes used across experiments.
[[nodiscard]] HeadsetParams standalone_hmd_params();   // Quest-class
[[nodiscard]] HeadsetParams tethered_mr_params();      // HoloLens/Varjo-class
[[nodiscard]] HeadsetParams phone_viewer_params();     // phone-in-shell viewer

class Headset {
public:
    using TruthFn = std::function<GroundTruth()>;
    using EmitFn = std::function<void(SensorSample&&)>;

    /// `name` keys the deterministic RNG stream; `truth` supplies the
    /// wearer's ground-truth state; `emit` receives each surviving sample.
    Headset(sim::Simulator& sim, std::string name, ParticipantId wearer,
            HeadsetParams params, TruthFn truth, EmitFn emit);

    /// Begin periodic sampling (first sample one period from now).
    void start();
    void stop();

    [[nodiscard]] const HeadsetParams& params() const { return params_; }
    [[nodiscard]] ParticipantId wearer() const { return wearer_; }
    [[nodiscard]] std::uint64_t emitted() const { return emitted_; }
    [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

private:
    sim::Simulator& sim_;
    std::string name_;
    ParticipantId wearer_;
    HeadsetParams params_;
    TruthFn truth_;
    EmitFn emit_;
    sim::Rng rng_;
    sim::EventHandle task_;
    bool running_{false};
    std::uint64_t emitted_{0};
    std::uint64_t dropped_{0};

    void sample_once();
};

}  // namespace mvc::sensing
