#pragma once
// Raw observations produced by the tracking hardware models before fusion.

#include <vector>

#include "common/ids.hpp"
#include "math/pose.hpp"
#include "sim/time.hpp"

namespace mvc::sensing {

enum class SensorSource : std::uint8_t {
    Headset,      // 6-DoF inside-out tracking + face capture
    RoomCamera,   // external, position-only, subject to occlusion
};

/// One tracking observation of one participant.
struct SensorSample {
    ParticipantId participant;
    sim::Time captured_at{};
    SensorSource source{SensorSource::Headset};
    /// Measured pose; room cameras report identity orientation with
    /// `has_orientation == false`.
    math::Pose pose;
    bool has_orientation{true};
    /// Facial blendshape coefficients in [0,1]; empty for room cameras.
    std::vector<double> expression;
};

/// Ground-truth kinematics + expression, supplied by the behaviour scripts.
struct GroundTruth {
    math::KinematicState kinematics;
    std::vector<double> expression;
};

}  // namespace mvc::sensing
