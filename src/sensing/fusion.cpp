#include "sensing/fusion.hpp"

#include <algorithm>
#include <cmath>

namespace mvc::sensing {

PoseFusion::PoseFusion(FusionParams params) : params_(params) {}

void PoseFusion::AxisKf::predict(double dt, double accel_noise) {
    if (dt <= 0.0) return;
    pos += vel * dt;
    // F = [1 dt; 0 1], Q from white-noise acceleration model.
    const double q = accel_noise * accel_noise;
    const double dt2 = dt * dt;
    const double dt3 = dt2 * dt;
    const double dt4 = dt3 * dt;
    const double new_pp = p_pp + 2.0 * dt * p_pv + dt2 * p_vv + q * dt4 / 4.0;
    const double new_pv = p_pv + dt * p_vv + q * dt3 / 2.0;
    const double new_vv = p_vv + q * dt2;
    p_pp = new_pp;
    p_pv = new_pv;
    p_vv = new_vv;
}

void PoseFusion::AxisKf::update(double meas, double meas_noise) {
    const double r = meas_noise * meas_noise;
    const double s = p_pp + r;
    const double k_pos = p_pp / s;
    const double k_vel = p_pv / s;
    const double innovation = meas - pos;
    pos += k_pos * innovation;
    vel += k_vel * innovation;
    const double new_pp = (1.0 - k_pos) * p_pp;
    const double new_pv = (1.0 - k_pos) * p_pv;
    const double new_vv = p_vv - k_vel * p_pv;
    p_pp = new_pp;
    p_pv = new_pv;
    p_vv = new_vv;
}

void PoseFusion::observe(const SensorSample& sample) {
    Track& t = tracks_[sample.participant];
    if (t.initialized && sample.captured_at < t.last_update) return;  // stale arrival

    const double meas_noise = sample.source == SensorSource::Headset
                                  ? params_.headset_noise_m
                                  : params_.camera_noise_m;

    if (!t.initialized) {
        t.x.pos = sample.pose.position.x;
        t.y.pos = sample.pose.position.y;
        t.z.pos = sample.pose.position.z;
        t.initialized = true;
    } else {
        const double dt = (sample.captured_at - t.last_update).to_seconds();
        t.x.predict(dt, params_.accel_noise);
        t.y.predict(dt, params_.accel_noise);
        t.z.predict(dt, params_.accel_noise);
        t.x.update(sample.pose.position.x, meas_noise);
        t.y.update(sample.pose.position.y, meas_noise);
        t.z.update(sample.pose.position.z, meas_noise);
    }

    if (sample.has_orientation) {
        if (t.have_orientation) {
            const double dt = (sample.captured_at - t.last_orientation_at).to_seconds();
            if (dt > 1e-6) {
                // Angular velocity from consecutive raw measurements (the
                // smoothed estimate lags and would inflate the rate).
                const math::Quat delta =
                    (sample.pose.orientation * t.last_meas_orientation.inverse())
                        .normalized();
                const double angle = delta.angle();
                if (angle > 1e-9) {
                    const math::Vec3 axis =
                        math::Vec3{delta.x, delta.y, delta.z}.normalized();
                    const math::Vec3 w_meas = axis * (angle / dt);
                    t.angular_velocity =
                        math::lerp(t.angular_velocity, w_meas, params_.orientation_alpha);
                } else {
                    t.angular_velocity =
                        math::lerp(t.angular_velocity, math::Vec3::zero(),
                                   params_.orientation_alpha);
                }
            }
            t.orientation = math::slerp(t.orientation, sample.pose.orientation,
                                        params_.orientation_alpha);
        } else {
            t.orientation = sample.pose.orientation;
            t.have_orientation = true;
        }
        t.last_meas_orientation = sample.pose.orientation;
        t.last_orientation_at = sample.captured_at;
    }

    if (!sample.expression.empty()) {
        if (t.expression.size() < sample.expression.size())
            t.expression.resize(sample.expression.size(), 0.0);
        for (std::size_t i = 0; i < sample.expression.size(); ++i) {
            t.expression[i] += params_.expression_alpha *
                               (sample.expression[i] - t.expression[i]);
        }
    }

    t.last_update = sample.captured_at;
    ++t.updates;
}

std::optional<FusedTrack> PoseFusion::estimate(ParticipantId p, sim::Time now) const {
    const auto it = tracks_.find(p);
    if (it == tracks_.end() || !it->second.initialized) return std::nullopt;
    const Track& t = it->second;
    if (now - t.last_update > params_.stale_after) return std::nullopt;

    const double dt = std::max(0.0, (now - t.last_update).to_seconds());
    math::KinematicState ks;
    ks.pose.position = {t.x.pos + t.x.vel * dt, t.y.pos + t.y.vel * dt,
                        t.z.pos + t.z.vel * dt};
    ks.linear_velocity = {t.x.vel, t.y.vel, t.z.vel};
    ks.angular_velocity = t.angular_velocity;
    ks.pose.orientation = t.orientation;
    const double w = t.angular_velocity.norm();
    if (t.have_orientation && w > 1e-9 && dt > 0.0) {
        ks.pose.orientation = (math::Quat::from_axis_angle(t.angular_velocity / w, w * dt) *
                               t.orientation)
                                  .normalized();
    }

    FusedTrack out;
    out.state = ks;
    out.expression = t.expression;
    out.last_update = t.last_update;
    out.updates = t.updates;
    return out;
}

std::vector<ParticipantId> PoseFusion::tracked(sim::Time now) const {
    std::vector<ParticipantId> out;
    out.reserve(tracks_.size());
    for (const auto& [p, t] : tracks_) {
        if (t.initialized && now - t.last_update <= params_.stale_after) out.push_back(p);
    }
    std::sort(out.begin(), out.end());
    return out;
}

void PoseFusion::drop(ParticipantId p) { tracks_.erase(p); }

}  // namespace mvc::sensing
