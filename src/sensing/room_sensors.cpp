#include "sensing/room_sensors.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace mvc::sensing {

RoomSensorArray::RoomSensorArray(sim::Simulator& sim, std::string name,
                                 RoomSensorParams params, TruthFn truth, EmitFn emit)
    : sim_(sim),
      name_(std::move(name)),
      params_(params),
      truth_(std::move(truth)),
      emit_(std::move(emit)),
      rng_(sim.rng_stream("roomsensors/" + name_)) {
    if (params_.sample_rate_hz <= 0.0)
        throw std::invalid_argument("RoomSensorArray: sample rate must be positive");
    if (!truth_ || !emit_) throw std::invalid_argument("RoomSensorArray: null callbacks");
}

void RoomSensorArray::track(ParticipantId participant) {
    if (std::find(tracked_.begin(), tracked_.end(), participant) != tracked_.end()) return;
    tracked_.push_back(participant);
    occluded_[participant] = false;
}

void RoomSensorArray::untrack(ParticipantId participant) {
    std::erase(tracked_, participant);
    occluded_.erase(participant);
}

bool RoomSensorArray::is_occluded(ParticipantId p) const {
    const auto it = occluded_.find(p);
    return it != occluded_.end() && it->second;
}

void RoomSensorArray::start() {
    if (running_) return;
    running_ = true;
    task_ = sim_.schedule_every(sim::Time::seconds(1.0 / params_.sample_rate_hz),
                                [this] { sweep(); });
}

void RoomSensorArray::stop() {
    if (!running_) return;
    running_ = false;
    sim_.cancel(task_);
}

void RoomSensorArray::sweep() {
    for (const ParticipantId p : tracked_) {
        // Two-state occlusion Markov chain: bursts of missing observations
        // rather than independent drops, matching real camera coverage gaps.
        bool& occ = occluded_[p];
        occ = occ ? !rng_.chance(params_.occlusion_end) : rng_.chance(params_.occlusion_start);
        if (occ) {
            ++occluded_samples_;
            continue;
        }
        const GroundTruth gt = truth_(p);
        SensorSample s;
        s.participant = p;
        s.captured_at = sim_.now();
        s.source = SensorSource::RoomCamera;
        s.has_orientation = false;
        s.pose.position = gt.kinematics.pose.position +
                          math::Vec3{rng_.normal(0.0, params_.position_noise_m),
                                     rng_.normal(0.0, params_.position_noise_m),
                                     rng_.normal(0.0, params_.position_noise_m)};
        ++emitted_;
        emit_(std::move(s));
    }
}

}  // namespace mvc::sensing
