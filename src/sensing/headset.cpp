#include "sensing/headset.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace mvc::sensing {

HeadsetParams standalone_hmd_params() {
    return HeadsetParams{72.0, 0.002, 0.002, 0.01, 16, 0.02};
}

HeadsetParams tethered_mr_params() {
    return HeadsetParams{90.0, 0.001, 0.001, 0.005, 32, 0.01};
}

HeadsetParams phone_viewer_params() {
    return HeadsetParams{30.0, 0.006, 0.006, 0.03, 0, 0.0};
}

Headset::Headset(sim::Simulator& sim, std::string name, ParticipantId wearer,
                 HeadsetParams params, TruthFn truth, EmitFn emit)
    : sim_(sim),
      name_(std::move(name)),
      wearer_(wearer),
      params_(params),
      truth_(std::move(truth)),
      emit_(std::move(emit)),
      rng_(sim.rng_stream("headset/" + name_)) {
    if (params_.sample_rate_hz <= 0.0)
        throw std::invalid_argument("Headset: sample rate must be positive");
    if (!truth_ || !emit_) throw std::invalid_argument("Headset: null callbacks");
}

void Headset::start() {
    if (running_) return;
    running_ = true;
    task_ = sim_.schedule_every(sim::Time::seconds(1.0 / params_.sample_rate_hz),
                                [this] { sample_once(); });
}

void Headset::stop() {
    if (!running_) return;
    running_ = false;
    sim_.cancel(task_);
}

void Headset::sample_once() {
    if (rng_.chance(params_.dropout)) {
        ++dropped_;
        return;
    }
    const GroundTruth gt = truth_();

    SensorSample s;
    s.participant = wearer_;
    s.captured_at = sim_.now();
    s.source = SensorSource::Headset;
    s.has_orientation = true;

    const auto& pose = gt.kinematics.pose;
    s.pose.position = pose.position + math::Vec3{rng_.normal(0.0, params_.position_noise_m),
                                                 rng_.normal(0.0, params_.position_noise_m),
                                                 rng_.normal(0.0, params_.position_noise_m)};
    // Orientation noise: small random-axis perturbation.
    const math::Vec3 axis{rng_.normal(0.0, 1.0), rng_.normal(0.0, 1.0),
                          rng_.normal(0.0, 1.0)};
    const double wobble = rng_.normal(0.0, params_.orientation_noise_rad);
    s.pose.orientation =
        (math::Quat::from_axis_angle(axis, wobble) * pose.orientation).normalized();

    s.expression.reserve(params_.expression_channels);
    for (std::size_t i = 0; i < params_.expression_channels; ++i) {
        const double truth_coeff = i < gt.expression.size() ? gt.expression[i] : 0.0;
        s.expression.push_back(
            std::clamp(truth_coeff + rng_.normal(0.0, params_.expression_noise), 0.0, 1.0));
    }

    ++emitted_;
    emit_(std::move(s));
}

}  // namespace mvc::sensing
