#include "session/behaviour.hpp"

#include <algorithm>
#include <cmath>

#include "avatar/state.hpp"

namespace mvc::session {

SeatedBehaviour::SeatedBehaviour(sim::Rng rng, math::Pose seat,
                                 SeatedBehaviourParams params)
    : rng_(std::move(rng)), seat_(seat), params_(params) {
    sway_phase_ = rng_.uniform(0.0, 6.28318);
    look_phase_ = rng_.uniform(0.0, 6.28318);
}

sensing::GroundTruth SeatedBehaviour::truth(sim::Time now) {
    const double t = now.to_seconds();
    const double dt = std::max(0.0, t - last_eval_s_);
    last_eval_s_ = t;

    // Start stochastic gestures/emotes as time advances.
    if (gesture_until_s_ < t && rng_.chance(params_.hand_raise_rate / 60.0 * dt)) {
        gesture_until_s_ = t + 2.5;  // hand stays up ~2.5 s
    }
    if (emote_until_s_ < t && rng_.chance(params_.emote_rate / 60.0 * dt)) {
        emote_until_s_ = t + 1.5;
        emote_channel_ = rng_.index(avatar::kExpressionChannels);
    }

    sensing::GroundTruth gt;
    const double sway = params_.sway_amplitude_m;
    const math::Vec3 offset{sway * std::sin(0.5 * t + sway_phase_),
                            0.02 * std::sin(0.9 * t + sway_phase_),
                            0.5 * sway * std::sin(0.3 * t + 2.0 * sway_phase_)};
    gt.kinematics.pose.position = seat_.position + offset;
    gt.kinematics.linear_velocity = {sway * 0.5 * std::cos(0.5 * t + sway_phase_),
                                     0.02 * 0.9 * std::cos(0.9 * t + sway_phase_),
                                     0.5 * sway * 0.3 * std::cos(0.3 * t + 2.0 * sway_phase_)};
    const double yaw = params_.look_around_rad * std::sin(0.21 * t + look_phase_);
    gt.kinematics.pose.orientation =
        (math::Quat::from_axis_angle(math::Vec3::unit_y(), yaw) * seat_.orientation)
            .normalized();
    gt.kinematics.angular_velocity = {0.0,
                                      params_.look_around_rad * 0.21 *
                                          std::cos(0.21 * t + look_phase_),
                                      0.0};

    gt.expression.assign(avatar::kExpressionChannels, 0.0);
    if (emote_until_s_ >= t) {
        // Raised-cosine envelope over the emote window.
        const double u = 1.0 - (emote_until_s_ - t) / 1.5;
        gt.expression[emote_channel_] = 0.5 * (1.0 - std::cos(2.0 * 3.14159 * u));
    }
    // Channel 0 doubles as "attention" baseline.
    gt.expression[0] = std::max(gt.expression[0], 0.3);
    return gt;
}

InstructorBehaviour::InstructorBehaviour(sim::Rng rng, math::Pose lectern,
                                         InstructorBehaviourParams params)
    : rng_(std::move(rng)), lectern_(lectern), params_(params) {
    walk_phase_ = rng_.uniform(0.0, 6.28318);
    speak_phase_ = rng_.uniform(0.0, 6.28318);
}

bool InstructorBehaviour::speaking(sim::Time now) const {
    // Pseudo-periodic speech bouts sized to the speaking ratio.
    const double t = now.to_seconds();
    const double cycle = std::fmod(t / 15.0 + speak_phase_, 1.0);
    return cycle < params_.speaking_ratio;
}

sensing::GroundTruth InstructorBehaviour::truth(sim::Time now) {
    const double t = now.to_seconds();
    sensing::GroundTruth gt;

    // Lissajous pacing across the teaching area.
    const double omega = params_.pace_speed_mps / std::max(0.5, params_.pace_extent_m);
    const double x = params_.pace_extent_m * std::sin(omega * t + walk_phase_);
    const double z = 0.3 * params_.pace_extent_m * std::sin(2.0 * omega * t);
    gt.kinematics.pose.position = lectern_.position + math::Vec3{x, 0.0, z};
    gt.kinematics.linear_velocity = {params_.pace_extent_m * omega *
                                         std::cos(omega * t + walk_phase_),
                                     0.0,
                                     0.6 * params_.pace_extent_m * omega *
                                         std::cos(2.0 * omega * t)};
    // Face the class (+z side), slightly tracking the pacing direction.
    const double yaw = 3.14159 + 0.3 * std::sin(omega * t + walk_phase_);
    gt.kinematics.pose.orientation =
        math::Quat::from_axis_angle(math::Vec3::unit_y(), yaw);
    gt.kinematics.angular_velocity = {
        0.0, 0.3 * omega * std::cos(omega * t + walk_phase_), 0.0};

    gt.expression.assign(avatar::kExpressionChannels, 0.0);
    if (speaking(now)) {
        // Mouth channels 1-3 oscillate while speaking.
        gt.expression[1] = 0.5 + 0.5 * std::sin(12.0 * t);
        gt.expression[2] = 0.3 + 0.3 * std::sin(9.0 * t + 1.0);
        gt.expression[3] = 0.2 + 0.2 * std::sin(15.0 * t + 2.0);
    }
    gt.expression[0] = 0.6;  // engaged baseline
    return gt;
}

}  // namespace mvc::session
