#pragma once
// Content democratization (§3.3): every participant may contribute content
// into the blended cyberspace. The ledger is an append-only record with
// contribution credits ("NFTs and well-design[ed] economics models are the
// keys to the sustainability of user contributions"), and the privacy filter
// screens overlays before they become visible ("we have to consider the
// appropriateness of content overlays under the privacy-preserving
// perspective").

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "sim/time.hpp"

namespace mvc::session {

enum class ContentKind : std::uint8_t {
    Slide,
    Annotation,   // overlay anchored in the shared space
    Model3d,
    Recording,    // captured segment of the class
    LabResult,
};

enum class AudienceScope : std::uint8_t {
    Class,        // everyone in this session
    Team,         // the contributor's breakout team
    Instructors,  // staff only
};

struct ContentItem {
    ContentId id;
    ParticipantId creator;
    ContentKind kind{ContentKind::Annotation};
    AudienceScope scope{AudienceScope::Class};
    std::string title;
    std::size_t size_bytes{0};
    sim::Time created_at{};
    /// True when the overlay is anchored to a person (e.g. a note pinned
    /// above someone's avatar) — the privacy-sensitive case.
    bool anchored_to_person{false};
    ParticipantId anchor_person;
    /// Whether the anchored person consented to overlays.
    bool anchor_consent{false};
};

/// Append-only ledger with per-creator credit accounting.
class ContentLedger {
public:
    /// Record a contribution; returns the assigned id. Credits accrue to the
    /// creator (weights per kind — a 3D model earns more than an annotation).
    ContentId add(ContentItem item);

    [[nodiscard]] std::size_t size() const { return items_.size(); }
    [[nodiscard]] const ContentItem* find(ContentId id) const;
    [[nodiscard]] const std::vector<ContentItem>& items() const { return items_; }
    [[nodiscard]] double credits_of(ParticipantId creator) const;
    /// Creators ranked by credit, highest first.
    [[nodiscard]] std::vector<std::pair<ParticipantId, double>> leaderboard() const;

    [[nodiscard]] static double credit_value(ContentKind kind);

    /// Rebuild a ledger from checkpointed items: ids are preserved, credits
    /// recomputed, and the id counter advanced past the highest restored id.
    [[nodiscard]] static ContentLedger restore(std::vector<ContentItem> items);

private:
    std::vector<ContentItem> items_;
    std::map<ParticipantId, double> credits_;
    std::uint32_t next_id_{1};
};

enum class PrivacyVerdict : std::uint8_t {
    Allowed,
    RequiresConsent,  // anchored to a person without consent
    Blocked,          // scope violation (e.g. recording scoped to class
                      // without instructor approval)
};

struct PrivacyDecision {
    PrivacyVerdict verdict{PrivacyVerdict::Allowed};
    std::string reason;
};

struct PrivacyPolicy {
    /// Recordings require instructor approval before class-wide visibility.
    bool recordings_need_approval{true};
    /// Person-anchored overlays require the anchor's consent.
    bool person_anchors_need_consent{true};
};

/// Screens content items before they enter the shared space.
class PrivacyFilter {
public:
    explicit PrivacyFilter(PrivacyPolicy policy = {});

    [[nodiscard]] PrivacyDecision evaluate(const ContentItem& item,
                                           bool instructor_approved = false) const;

    [[nodiscard]] std::uint64_t evaluated() const { return evaluated_; }
    [[nodiscard]] std::uint64_t blocked() const { return blocked_; }

private:
    PrivacyPolicy policy_;
    mutable std::uint64_t evaluated_{0};
    mutable std::uint64_t blocked_{0};
};

}  // namespace mvc::session
