#pragma once
// ClassSession: the bookkeeping heart of one blended class meeting —
// roster, activity schedule, interaction events, contributed content with
// privacy screening, and per-session engagement statistics.

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "recovery/checkpoint.hpp"
#include "session/activity.hpp"
#include "session/content.hpp"
#include "session/participant.hpp"

namespace mvc::session {

enum class InteractionKind : std::uint8_t {
    HandRaise,
    Question,
    Answer,
    ContentShare,
    LabAction,
    TeamMessage,
};

struct InteractionEvent {
    sim::Time at{};
    ParticipantId who;
    InteractionKind kind{InteractionKind::HandRaise};
    std::optional<ActivityId> during;
};

class ClassSession {
public:
    explicit ClassSession(std::string course_name);

    [[nodiscard]] const std::string& course() const { return course_; }

    /// Enroll a participant; assigns and returns their id.
    ParticipantId enroll(Participant p);
    [[nodiscard]] const Participant* find(ParticipantId id) const;
    [[nodiscard]] const std::vector<Participant>& roster() const { return roster_; }
    [[nodiscard]] std::vector<ParticipantId> ids_with_role(Role r) const;
    [[nodiscard]] std::size_t physical_count(ClassroomId room) const;
    [[nodiscard]] std::size_t remote_count() const;

    [[nodiscard]] ActivitySchedule& schedule() { return schedule_; }
    [[nodiscard]] const ActivitySchedule& schedule() const { return schedule_; }

    [[nodiscard]] ContentLedger& ledger() { return ledger_; }
    [[nodiscard]] const ContentLedger& ledger() const { return ledger_; }
    [[nodiscard]] PrivacyFilter& privacy() { return privacy_; }

    /// Record an interaction; tags it with the active activity block.
    void record_event(sim::Time at, ParticipantId who, InteractionKind kind);
    [[nodiscard]] const std::vector<InteractionEvent>& events() const { return events_; }
    [[nodiscard]] std::size_t event_count(InteractionKind kind) const;
    /// Fraction of enrolled participants with at least one interaction —
    /// the engagement measure the paper wants improved over flat video.
    [[nodiscard]] double participation_ratio() const;

    /// Submit content through the privacy filter; returns the id when
    /// admitted, nullopt when screened out.
    std::optional<ContentId> contribute(ContentItem item, bool instructor_approved = false);

    /// Fill the checkpoint's membership + content sections from this session
    /// (installed as the edge servers' checkpoint decorator by core).
    void capture(recovery::ClassroomCheckpoint& cp) const;
    /// Rebuild a session from a checkpoint: roster ids, attendance and the
    /// content ledger (with credits) are restored exactly; comfort profiles
    /// reset to defaults — the client device renegotiates them on reconnect.
    [[nodiscard]] static ClassSession restore(const recovery::ClassroomCheckpoint& cp,
                                              std::string course_name);

private:
    std::string course_;
    std::vector<Participant> roster_;
    ActivitySchedule schedule_;
    ContentLedger ledger_;
    PrivacyFilter privacy_;
    std::vector<InteractionEvent> events_;
    std::uint32_t next_participant_{1};
};

}  // namespace mvc::session
