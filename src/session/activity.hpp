#pragma once
// Teaching activities (§3.1): lectures, gamified breakouts, learner-driven
// presentations, virtual-lab access, Q&A. A schedule sequences activities
// over a class session; each activity modulates participant behaviour
// (speech, movement, interaction rate) and may form teams.

#include <optional>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "sim/time.hpp"

namespace mvc::session {

enum class ActivityKind : std::uint8_t {
    Lecture,
    Qa,                   // questions from the floor and remote auditors
    GamifiedBreakout,     // digital "breakouts" in teams
    LearnerPresentation,  // learner-driven "choose your own adventure"
    VirtualLab,           // access to limited/restricted equipment twins
};

[[nodiscard]] std::string_view activity_name(ActivityKind k);

/// Behaviour modulation an activity imposes on participants.
struct ActivityTraits {
    /// Instructor voice activity during this block.
    double instructor_speaking{0.7};
    /// Student voice activity (e.g. high in breakouts).
    double student_speaking{0.05};
    /// Student gesture/interaction rate multiplier.
    double interaction_boost{1.0};
    /// Students locomote (breakout regrouping, lab stations).
    bool students_move{false};
    /// Content contributions per student per minute.
    double contribution_rate{0.02};
};

[[nodiscard]] ActivityTraits traits_of(ActivityKind k);

struct ActivityBlock {
    ActivityId id;
    ActivityKind kind{ActivityKind::Lecture};
    sim::Time start{};
    sim::Time duration{};
    /// Team size for breakout-style activities (0 = whole class).
    std::size_t team_size{0};

    [[nodiscard]] sim::Time end() const { return start + duration; }
};

class ActivitySchedule {
public:
    /// Append a block immediately after the last one.
    ActivityId append(ActivityKind kind, sim::Time duration, std::size_t team_size = 0);

    [[nodiscard]] const std::vector<ActivityBlock>& blocks() const { return blocks_; }
    [[nodiscard]] sim::Time total_duration() const;
    /// Active block at `t`, nullptr outside the session.
    [[nodiscard]] const ActivityBlock* active_at(sim::Time t) const;

    /// Partition `participants` into teams of `team_size` (round-robin, so
    /// physical and remote attendees mix — the blended-classroom point).
    [[nodiscard]] static std::vector<std::vector<ParticipantId>> form_teams(
        const std::vector<ParticipantId>& participants, std::size_t team_size);

private:
    std::vector<ActivityBlock> blocks_;
    std::uint32_t next_id_{1};
};

}  // namespace mvc::session
