#include "session/activity.hpp"

#include <stdexcept>

namespace mvc::session {

std::string_view activity_name(ActivityKind k) {
    switch (k) {
        case ActivityKind::Lecture: return "lecture";
        case ActivityKind::Qa: return "qa";
        case ActivityKind::GamifiedBreakout: return "gamified-breakout";
        case ActivityKind::LearnerPresentation: return "learner-presentation";
        case ActivityKind::VirtualLab: return "virtual-lab";
    }
    return "?";
}

ActivityTraits traits_of(ActivityKind k) {
    switch (k) {
        case ActivityKind::Lecture:
            return {0.8, 0.02, 1.0, false, 0.01};
        case ActivityKind::Qa:
            return {0.4, 0.15, 2.0, false, 0.05};
        case ActivityKind::GamifiedBreakout:
            return {0.1, 0.5, 3.0, true, 0.2};
        case ActivityKind::LearnerPresentation:
            return {0.1, 0.35, 1.5, false, 0.3};
        case ActivityKind::VirtualLab:
            return {0.3, 0.25, 2.5, true, 0.1};
    }
    return {};
}

ActivityId ActivitySchedule::append(ActivityKind kind, sim::Time duration,
                                    std::size_t team_size) {
    if (duration <= sim::Time::zero())
        throw std::invalid_argument("ActivitySchedule: duration must be positive");
    ActivityBlock b;
    b.id = ActivityId{next_id_++};
    b.kind = kind;
    b.start = blocks_.empty() ? sim::Time::zero() : blocks_.back().end();
    b.duration = duration;
    b.team_size = team_size;
    blocks_.push_back(b);
    return b.id;
}

sim::Time ActivitySchedule::total_duration() const {
    return blocks_.empty() ? sim::Time::zero() : blocks_.back().end();
}

const ActivityBlock* ActivitySchedule::active_at(sim::Time t) const {
    for (const auto& b : blocks_) {
        if (t >= b.start && t < b.end()) return &b;
    }
    return nullptr;
}

std::vector<std::vector<ParticipantId>> ActivitySchedule::form_teams(
    const std::vector<ParticipantId>& participants, std::size_t team_size) {
    if (team_size == 0 || participants.empty()) {
        return participants.empty()
                   ? std::vector<std::vector<ParticipantId>>{}
                   : std::vector<std::vector<ParticipantId>>{participants};
    }
    const std::size_t teams = (participants.size() + team_size - 1) / team_size;
    std::vector<std::vector<ParticipantId>> out(teams);
    // Round-robin deal so consecutive ids (often co-located) spread across
    // teams, mixing campuses and remote attendees.
    for (std::size_t i = 0; i < participants.size(); ++i) {
        out[i % teams].push_back(participants[i]);
    }
    return out;
}

}  // namespace mvc::session
