#pragma once
// Scripted ground-truth behaviour for physical participants — the workload
// generator standing in for real students and teachers. Deterministic given
// the RNG stream: seated students sway, look around, raise hands and emote;
// instructors pace the lectern area, gesture while speaking.

#include "sensing/sample.hpp"
#include "sim/rng.hpp"

namespace mvc::session {

struct SeatedBehaviourParams {
    double sway_amplitude_m{0.05};
    double look_around_rad{0.5};
    /// Mean hand-raises per minute.
    double hand_raise_rate{0.5};
    /// Mean expression bursts (smile, nod) per minute.
    double emote_rate{2.0};
};

/// A student (or TA) seated at a fixed seat.
class SeatedBehaviour {
public:
    SeatedBehaviour(sim::Rng rng, math::Pose seat, SeatedBehaviourParams params = {});

    /// Ground truth at simulation time `now`. Pure in `now` given internal
    /// phase state; advances gesture state machines as time passes.
    [[nodiscard]] sensing::GroundTruth truth(sim::Time now);

    [[nodiscard]] const math::Pose& seat() const { return seat_; }
    /// Whether the hand-raise gesture was active at the last truth() call.
    [[nodiscard]] bool hand_raised() const { return gesture_until_s_ >= last_eval_s_; }

private:
    sim::Rng rng_;
    math::Pose seat_;
    SeatedBehaviourParams params_;
    double sway_phase_;
    double look_phase_;
    double gesture_until_s_{-1.0};
    double emote_until_s_{-1.0};
    std::size_t emote_channel_{0};
    double last_eval_s_{0.0};
};

struct InstructorBehaviourParams {
    /// Half-extent of the teaching area around the lectern (metres).
    double pace_extent_m{2.5};
    double pace_speed_mps{0.5};
    /// Fraction of time actively speaking (drives visemes/gestures).
    double speaking_ratio{0.7};
};

/// The instructor pacing in front of the class.
class InstructorBehaviour {
public:
    InstructorBehaviour(sim::Rng rng, math::Pose lectern,
                        InstructorBehaviourParams params = {});

    [[nodiscard]] sensing::GroundTruth truth(sim::Time now);
    [[nodiscard]] bool speaking(sim::Time now) const;

private:
    sim::Rng rng_;
    math::Pose lectern_;
    InstructorBehaviourParams params_;
    double walk_phase_;
    double speak_phase_;
};

}  // namespace mvc::session
