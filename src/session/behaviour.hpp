#pragma once
// Scripted ground-truth behaviour for physical participants — the workload
// generator standing in for real students and teachers. Deterministic given
// the RNG stream: seated students sway, look around, raise hands and emote;
// instructors pace the lectern area, gesture while speaking.

#include <cmath>
#include <cstdint>

#include "common/hash.hpp"
#include "math/vec3.hpp"
#include "sensing/sample.hpp"
#include "sim/rng.hpp"

namespace mvc::session {

struct SeatedBehaviourParams {
    double sway_amplitude_m{0.05};
    double look_around_rad{0.5};
    /// Mean hand-raises per minute.
    double hand_raise_rate{0.5};
    /// Mean expression bursts (smile, nod) per minute.
    double emote_rate{2.0};
};

/// A student (or TA) seated at a fixed seat.
class SeatedBehaviour {
public:
    SeatedBehaviour(sim::Rng rng, math::Pose seat, SeatedBehaviourParams params = {});

    /// Ground truth at simulation time `now`. Pure in `now` given internal
    /// phase state; advances gesture state machines as time passes.
    [[nodiscard]] sensing::GroundTruth truth(sim::Time now);

    [[nodiscard]] const math::Pose& seat() const { return seat_; }
    /// Whether the hand-raise gesture was active at the last truth() call.
    [[nodiscard]] bool hand_raised() const { return gesture_until_s_ >= last_eval_s_; }

private:
    sim::Rng rng_;
    math::Pose seat_;
    SeatedBehaviourParams params_;
    double sway_phase_;
    double look_phase_;
    double gesture_until_s_{-1.0};
    double emote_until_s_{-1.0};
    std::size_t emote_channel_{0};
    double last_eval_s_{0.0};
};

struct InstructorBehaviourParams {
    /// Half-extent of the teaching area around the lectern (metres).
    double pace_extent_m{2.5};
    double pace_speed_mps{0.5};
    /// Fraction of time actively speaking (drives visemes/gestures).
    double speaking_ratio{0.7};
};

/// The instructor pacing in front of the class.
class InstructorBehaviour {
public:
    InstructorBehaviour(sim::Rng rng, math::Pose lectern,
                        InstructorBehaviourParams params = {});

    [[nodiscard]] sensing::GroundTruth truth(sim::Time now);
    [[nodiscard]] bool speaking(sim::Time now) const;

private:
    sim::Rng rng_;
    math::Pose lectern_;
    InstructorBehaviourParams params_;
    double walk_phase_;
    double speak_phase_;
};

/// Stateless index-seeded sway for campus-scale crowds. Unlike the RNG-backed
/// behaviours above, samples depend only on (seed, index, t): there is no
/// draw-order state, so any number of worker threads evaluating any subset of
/// avatars in any order produces identical trajectories — the property the
/// sharded determinism gates (E16/E22) rely on. Velocity is the analytic
/// derivative of the offset, so dirty-threshold checks see consistent motion.
struct CrowdMotion {
    /// Peak lateral displacement from the seat (metres).
    double amplitude_m{0.08};
    /// Base sway frequency; per-avatar frequency lands in [0.5x, 1.5x].
    double frequency_hz{0.4};

    struct Sample {
        math::Vec3 offset;
        math::Vec3 velocity;
    };

    [[nodiscard]] Sample at(std::uint64_t seed, std::uint64_t index, double t) const {
        // Three decorrelated unit draws per avatar via the splitmix finalizer.
        const auto unit = [](std::uint64_t h) {
            return static_cast<double>(h >> 11) * 0x1.0p-53;
        };
        const std::uint64_t h = common::mix64(seed ^ (0x9e3779b97f4a7c15ULL * (index + 1)));
        const double phase_x = 6.28318530717958647692 * unit(h);
        const double phase_z = 6.28318530717958647692 * unit(common::mix64(h + 1));
        const double freq =
            6.28318530717958647692 * frequency_hz * (0.5 + unit(common::mix64(h + 2)));
        const double ax = amplitude_m;
        const double az = 0.6 * amplitude_m;
        Sample s;
        s.offset = {ax * std::sin(freq * t + phase_x), 0.0,
                    az * std::sin(1.7 * freq * t + phase_z)};
        s.velocity = {ax * freq * std::cos(freq * t + phase_x), 0.0,
                      az * 1.7 * freq * std::cos(1.7 * freq * t + phase_z)};
        return s;
    }
};

}  // namespace mvc::session
