#pragma once
// People in the Metaverse classroom: roles, where they attend from, what
// device they use, and their comfort profile.

#include <string>
#include <variant>

#include "comfort/cybersickness.hpp"
#include "common/ids.hpp"
#include "net/topology.hpp"

namespace mvc::session {

enum class Role : std::uint8_t {
    Student,
    Instructor,
    TeachingAssistant,
    GuestSpeaker,
    Auditor,  // outside learner auditing the course
};

[[nodiscard]] std::string_view role_name(Role r);

enum class DeviceClass : std::uint8_t {
    TetheredMr,     // MR headset in a physical classroom
    StandaloneVr,   // remote VR headset
    PhoneViewer,    // phone / WebGL thin client
};

/// Attending physically in a given classroom.
struct PhysicalAttendance {
    ClassroomId room;
    std::size_t seat_index{0};
};

/// Attending remotely through the VR classroom, from some region.
struct RemoteAttendance {
    net::Region region{net::Region::HongKong};
};

using Attendance = std::variant<PhysicalAttendance, RemoteAttendance>;

struct Participant {
    ParticipantId id;
    std::string name;
    Role role{Role::Student};
    DeviceClass device{DeviceClass::StandaloneVr};
    Attendance attendance{RemoteAttendance{}};
    comfort::UserProfile comfort_profile{};

    [[nodiscard]] bool is_physical() const {
        return std::holds_alternative<PhysicalAttendance>(attendance);
    }
    [[nodiscard]] bool is_remote() const { return !is_physical(); }
};

}  // namespace mvc::session
