#include "session/session.hpp"

#include <algorithm>
#include <set>

namespace mvc::session {

std::string_view role_name(Role r) {
    switch (r) {
        case Role::Student: return "student";
        case Role::Instructor: return "instructor";
        case Role::TeachingAssistant: return "ta";
        case Role::GuestSpeaker: return "guest-speaker";
        case Role::Auditor: return "auditor";
    }
    return "?";
}

ClassSession::ClassSession(std::string course_name) : course_(std::move(course_name)) {}

ParticipantId ClassSession::enroll(Participant p) {
    p.id = ParticipantId{next_participant_++};
    roster_.push_back(std::move(p));
    return roster_.back().id;
}

const Participant* ClassSession::find(ParticipantId id) const {
    for (const auto& p : roster_) {
        if (p.id == id) return &p;
    }
    return nullptr;
}

std::vector<ParticipantId> ClassSession::ids_with_role(Role r) const {
    std::vector<ParticipantId> out;
    for (const auto& p : roster_) {
        if (p.role == r) out.push_back(p.id);
    }
    return out;
}

std::size_t ClassSession::physical_count(ClassroomId room) const {
    return static_cast<std::size_t>(std::count_if(
        roster_.begin(), roster_.end(), [room](const Participant& p) {
            const auto* phys = std::get_if<PhysicalAttendance>(&p.attendance);
            return phys != nullptr && phys->room == room;
        }));
}

std::size_t ClassSession::remote_count() const {
    return static_cast<std::size_t>(std::count_if(
        roster_.begin(), roster_.end(),
        [](const Participant& p) { return p.is_remote(); }));
}

void ClassSession::record_event(sim::Time at, ParticipantId who, InteractionKind kind) {
    InteractionEvent ev;
    ev.at = at;
    ev.who = who;
    ev.kind = kind;
    if (const ActivityBlock* block = schedule_.active_at(at)) ev.during = block->id;
    events_.push_back(ev);
}

std::size_t ClassSession::event_count(InteractionKind kind) const {
    return static_cast<std::size_t>(std::count_if(
        events_.begin(), events_.end(),
        [kind](const InteractionEvent& e) { return e.kind == kind; }));
}

double ClassSession::participation_ratio() const {
    if (roster_.empty()) return 0.0;
    std::set<ParticipantId> active;
    for (const auto& e : events_) active.insert(e.who);
    return static_cast<double>(active.size()) / static_cast<double>(roster_.size());
}

std::optional<ContentId> ClassSession::contribute(ContentItem item,
                                                  bool instructor_approved) {
    const PrivacyDecision decision = privacy_.evaluate(item, instructor_approved);
    if (decision.verdict != PrivacyVerdict::Allowed) return std::nullopt;
    return ledger_.add(std::move(item));
}

}  // namespace mvc::session
