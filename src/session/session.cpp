#include "session/session.hpp"

#include <algorithm>
#include <set>

namespace mvc::session {

std::string_view role_name(Role r) {
    switch (r) {
        case Role::Student: return "student";
        case Role::Instructor: return "instructor";
        case Role::TeachingAssistant: return "ta";
        case Role::GuestSpeaker: return "guest-speaker";
        case Role::Auditor: return "auditor";
    }
    return "?";
}

ClassSession::ClassSession(std::string course_name) : course_(std::move(course_name)) {}

ParticipantId ClassSession::enroll(Participant p) {
    p.id = ParticipantId{next_participant_++};
    roster_.push_back(std::move(p));
    return roster_.back().id;
}

const Participant* ClassSession::find(ParticipantId id) const {
    for (const auto& p : roster_) {
        if (p.id == id) return &p;
    }
    return nullptr;
}

std::vector<ParticipantId> ClassSession::ids_with_role(Role r) const {
    std::vector<ParticipantId> out;
    for (const auto& p : roster_) {
        if (p.role == r) out.push_back(p.id);
    }
    return out;
}

std::size_t ClassSession::physical_count(ClassroomId room) const {
    return static_cast<std::size_t>(std::count_if(
        roster_.begin(), roster_.end(), [room](const Participant& p) {
            const auto* phys = std::get_if<PhysicalAttendance>(&p.attendance);
            return phys != nullptr && phys->room == room;
        }));
}

std::size_t ClassSession::remote_count() const {
    return static_cast<std::size_t>(std::count_if(
        roster_.begin(), roster_.end(),
        [](const Participant& p) { return p.is_remote(); }));
}

void ClassSession::record_event(sim::Time at, ParticipantId who, InteractionKind kind) {
    InteractionEvent ev;
    ev.at = at;
    ev.who = who;
    ev.kind = kind;
    if (const ActivityBlock* block = schedule_.active_at(at)) ev.during = block->id;
    events_.push_back(ev);
}

std::size_t ClassSession::event_count(InteractionKind kind) const {
    return static_cast<std::size_t>(std::count_if(
        events_.begin(), events_.end(),
        [kind](const InteractionEvent& e) { return e.kind == kind; }));
}

double ClassSession::participation_ratio() const {
    if (roster_.empty()) return 0.0;
    std::set<ParticipantId> active;
    for (const auto& e : events_) active.insert(e.who);
    return static_cast<double>(active.size()) / static_cast<double>(roster_.size());
}

std::optional<ContentId> ClassSession::contribute(ContentItem item,
                                                  bool instructor_approved) {
    const PrivacyDecision decision = privacy_.evaluate(item, instructor_approved);
    if (decision.verdict != PrivacyVerdict::Allowed) return std::nullopt;
    return ledger_.add(std::move(item));
}

void ClassSession::capture(recovery::ClassroomCheckpoint& cp) const {
    for (const auto& p : roster_) {
        recovery::MemberRecord m;
        m.id = p.id;
        m.name = p.name;
        m.role = static_cast<std::uint8_t>(p.role);
        m.device = static_cast<std::uint8_t>(p.device);
        if (const auto* phys = std::get_if<PhysicalAttendance>(&p.attendance)) {
            m.physical = true;
            m.room = phys->room;
            m.seat_index = static_cast<std::uint32_t>(phys->seat_index);
        } else {
            m.region = static_cast<std::uint8_t>(
                std::get<RemoteAttendance>(p.attendance).region);
        }
        cp.members.push_back(std::move(m));
    }
    for (const auto& item : ledger_.items()) {
        recovery::ContentRecord c;
        c.id = item.id;
        c.creator = item.creator;
        c.kind = static_cast<std::uint8_t>(item.kind);
        c.scope = static_cast<std::uint8_t>(item.scope);
        c.title = item.title;
        c.size_bytes = item.size_bytes;
        c.created_at_ns = item.created_at.nanos();
        c.anchored_to_person = item.anchored_to_person;
        c.anchor_person = item.anchor_person;
        c.anchor_consent = item.anchor_consent;
        cp.content.push_back(std::move(c));
    }
}

ClassSession ClassSession::restore(const recovery::ClassroomCheckpoint& cp,
                                   std::string course_name) {
    ClassSession s(std::move(course_name));
    for (const auto& m : cp.members) {
        Participant p;
        p.id = m.id;
        p.name = m.name;
        p.role = static_cast<Role>(m.role);
        p.device = static_cast<DeviceClass>(m.device);
        if (m.physical) {
            p.attendance =
                PhysicalAttendance{m.room, static_cast<std::size_t>(m.seat_index)};
        } else {
            p.attendance = RemoteAttendance{static_cast<net::Region>(m.region)};
        }
        s.next_participant_ = std::max(s.next_participant_, m.id.value() + 1);
        s.roster_.push_back(std::move(p));
    }
    std::vector<ContentItem> items;
    items.reserve(cp.content.size());
    for (const auto& c : cp.content) {
        ContentItem item;
        item.id = c.id;
        item.creator = c.creator;
        item.kind = static_cast<ContentKind>(c.kind);
        item.scope = static_cast<AudienceScope>(c.scope);
        item.title = c.title;
        item.size_bytes = static_cast<std::size_t>(c.size_bytes);
        item.created_at = sim::Time::ns(c.created_at_ns);
        item.anchored_to_person = c.anchored_to_person;
        item.anchor_person = c.anchor_person;
        item.anchor_consent = c.anchor_consent;
        items.push_back(std::move(item));
    }
    s.ledger_ = ContentLedger::restore(std::move(items));
    return s;
}

}  // namespace mvc::session
