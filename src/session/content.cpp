#include "session/content.hpp"

#include <algorithm>

namespace mvc::session {

double ContentLedger::credit_value(ContentKind kind) {
    switch (kind) {
        case ContentKind::Slide: return 2.0;
        case ContentKind::Annotation: return 0.5;
        case ContentKind::Model3d: return 5.0;
        case ContentKind::Recording: return 1.0;
        case ContentKind::LabResult: return 3.0;
    }
    return 0.0;
}

ContentId ContentLedger::add(ContentItem item) {
    item.id = ContentId{next_id_++};
    credits_[item.creator] += credit_value(item.kind);
    items_.push_back(item);
    return item.id;
}

ContentLedger ContentLedger::restore(std::vector<ContentItem> items) {
    ContentLedger l;
    for (auto& item : items) {
        l.credits_[item.creator] += credit_value(item.kind);
        l.next_id_ = std::max(l.next_id_, item.id.value() + 1);
        l.items_.push_back(std::move(item));
    }
    return l;
}

const ContentItem* ContentLedger::find(ContentId id) const {
    for (const auto& item : items_) {
        if (item.id == id) return &item;
    }
    return nullptr;
}

double ContentLedger::credits_of(ParticipantId creator) const {
    const auto it = credits_.find(creator);
    return it == credits_.end() ? 0.0 : it->second;
}

std::vector<std::pair<ParticipantId, double>> ContentLedger::leaderboard() const {
    std::vector<std::pair<ParticipantId, double>> out(credits_.begin(), credits_.end());
    std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
        if (a.second != b.second) return a.second > b.second;
        return a.first < b.first;
    });
    return out;
}

PrivacyFilter::PrivacyFilter(PrivacyPolicy policy) : policy_(policy) {}

PrivacyDecision PrivacyFilter::evaluate(const ContentItem& item,
                                        bool instructor_approved) const {
    ++evaluated_;
    if (policy_.person_anchors_need_consent && item.anchored_to_person &&
        !item.anchor_consent) {
        ++blocked_;
        return {PrivacyVerdict::RequiresConsent,
                "overlay anchored to a person without consent"};
    }
    if (policy_.recordings_need_approval && item.kind == ContentKind::Recording &&
        item.scope == AudienceScope::Class && !instructor_approved) {
        ++blocked_;
        return {PrivacyVerdict::Blocked,
                "class-wide recording requires instructor approval"};
    }
    return {PrivacyVerdict::Allowed, ""};
}

}  // namespace mvc::session
