#pragma once
// Frame pipeline cost model: how long a device takes to draw a classroom
// scene, what frame rate it sustains, and the visual quality of what it
// drew. Quality is a 0-100 score log-scaled in rendered triangle count
// (diminishing returns, billboard ≈ 25, sophisticated ≈ 100).

#include <array>
#include <cstdint>

#include "avatar/lod.hpp"
#include "render/device.hpp"

namespace mvc::render {

/// What is on screen: avatars per LOD level plus static environment.
struct Scene {
    std::array<std::uint32_t, avatar::kLodCount> avatars_per_lod{};
    std::uint32_t environment_triangles{200'000};

    void add_avatars(avatar::LodLevel level, std::uint32_t count) {
        avatars_per_lod[static_cast<std::size_t>(level)] += count;
    }
    [[nodiscard]] std::uint64_t total_triangles() const;
    [[nodiscard]] std::uint32_t avatar_count() const;
};

struct FrameStats {
    double frame_time_ms{0.0};
    double achieved_fps{0.0};
    /// Motion-to-photon for locally rendered content: frame time + display.
    double motion_to_photon_ms{0.0};
    /// Mean per-avatar visual quality (0-100).
    double avatar_quality{0.0};
    bool meets_target_fps{false};
};

/// Visual quality score of one avatar at a LOD level.
[[nodiscard]] double lod_visual_quality(avatar::LodLevel level);

/// Simulate rendering `scene` on `device`.
[[nodiscard]] FrameStats simulate_frame(const DeviceProfile& device, const Scene& scene);

/// Finest uniform LOD at which `avatar_count` avatars (plus environment)
/// still meet the device's target fps; Billboard if nothing fits.
[[nodiscard]] avatar::LodLevel best_uniform_lod(const DeviceProfile& device,
                                                std::uint32_t avatar_count,
                                                std::uint32_t environment_triangles = 200'000);

}  // namespace mvc::render
