#pragma once
// Split (collaborative) rendering, after the paper's pointer to Outatime
// [26]: "render a low-quality version of the models on-device and merge the
// rendered frame with high-quality frames rendered in the cloud."
//
// Three strategies are evaluated under identical conditions:
//  - LocalOnly: device renders everything at the finest LOD it can afford.
//  - CloudOnly: cloud GPU renders sophisticated avatars; device decodes a
//    video stream; every photon paid for with a network round trip.
//  - Split: device renders a low-LOD base layer every frame (local-rate
//    responsiveness) while the cloud streams a speculative high-quality
//    layer predicted one RTT ahead; misprediction shows up as artifacts
//    that grow with head angular velocity x RTT.

#include "render/pipeline.hpp"

namespace mvc::render {

enum class RenderMode : std::uint8_t { LocalOnly, CloudOnly, Split };

[[nodiscard]] std::string_view render_mode_name(RenderMode m);

struct SplitConditions {
    std::uint32_t avatar_count{30};
    std::uint32_t environment_triangles{200'000};
    /// Device-to-cloud round-trip time (ms).
    double cloud_rtt_ms{40.0};
    /// Downlink available for the cloud video layer (bits per second).
    double downlink_bps{50e6};
    /// Viewer head angular speed (rad/s) — drives speculation error.
    double head_angular_speed{0.8};
    /// Cloud video layer resolution scale relative to 1080p (1.0 = 1080p).
    double video_scale{1.0};
};

struct SplitOutcome {
    RenderMode mode;
    double fps{0.0};
    /// Latency from head motion to the *responsive* layer updating (ms).
    double motion_to_photon_ms{0.0};
    /// Latency until full-quality imagery reflects the motion (ms).
    double full_quality_latency_ms{0.0};
    double visual_quality{0.0};  // 0-100
    /// Artifact penalty actually deducted (split mode misprediction).
    double artifact_penalty{0.0};
};

/// Evaluate one strategy on one device under the given conditions.
[[nodiscard]] SplitOutcome evaluate(RenderMode mode, const DeviceProfile& device,
                                    const SplitConditions& cond);

}  // namespace mvc::render
