#include <algorithm>
#include <cmath>

#include "render/device.hpp"
#include "render/pipeline.hpp"
#include "render/split.hpp"

namespace mvc::render {

DeviceProfile pc_vr_profile() {
    return {"pc-vr", 90.0, 1.5, 1'200'000.0, 4.0, 1.5, 2.0};
}

DeviceProfile standalone_hmd_profile() {
    return {"standalone-hmd", 72.0, 2.0, 180'000.0, 5.0, 4.0, 6.0};
}

DeviceProfile phone_webgl_profile() {
    // WebGL overhead + thermal throttling keep browser clients far below
    // native mobile throughput.
    return {"phone-webgl", 30.0, 4.0, 8'000.0, 10.0, 8.0, 12.0};
}

DeviceProfile cloud_gpu_profile() {
    return {"cloud-gpu", 120.0, 1.0, 4'000'000.0, 0.0, 1.0, 1.2};
}

std::uint64_t Scene::total_triangles() const {
    std::uint64_t total = environment_triangles;
    for (std::size_t i = 0; i < avatar::kLodCount; ++i) {
        total += static_cast<std::uint64_t>(avatars_per_lod[i]) *
                 avatar::kLodLadder[i].triangles;
    }
    return total;
}

std::uint32_t Scene::avatar_count() const {
    std::uint32_t n = 0;
    for (const std::uint32_t c : avatars_per_lod) n += c;
    return n;
}

double lod_visual_quality(avatar::LodLevel level) {
    const double tris = static_cast<double>(avatar::lod_profile(level).triangles);
    const double top = std::log10(80'000.0);
    return std::clamp(100.0 * std::log10(std::max(2.0, tris)) / top, 10.0, 100.0);
}

FrameStats simulate_frame(const DeviceProfile& device, const Scene& scene) {
    FrameStats out;
    const double tri_ms =
        static_cast<double>(scene.total_triangles()) / device.triangles_per_ms;
    out.frame_time_ms = device.base_frame_ms + tri_ms;
    // VSync quantization: the compositor releases frames on device intervals.
    const double interval_ms = 1000.0 / device.target_fps;
    const double intervals = std::max(1.0, std::ceil(out.frame_time_ms / interval_ms));
    out.achieved_fps = device.target_fps / intervals;
    out.meets_target_fps = intervals <= 1.0;
    out.motion_to_photon_ms = intervals * interval_ms + device.display_latency_ms;

    const std::uint32_t n = scene.avatar_count();
    if (n > 0) {
        double q = 0.0;
        for (std::size_t i = 0; i < avatar::kLodCount; ++i) {
            q += static_cast<double>(scene.avatars_per_lod[i]) *
                 lod_visual_quality(static_cast<avatar::LodLevel>(i));
        }
        out.avatar_quality = q / static_cast<double>(n);
    }
    return out;
}

avatar::LodLevel best_uniform_lod(const DeviceProfile& device, std::uint32_t avatar_count,
                                  std::uint32_t environment_triangles) {
    for (std::size_t i = 0; i < avatar::kLodCount; ++i) {
        Scene s;
        s.environment_triangles = environment_triangles;
        s.add_avatars(static_cast<avatar::LodLevel>(i), avatar_count);
        if (simulate_frame(device, s).meets_target_fps)
            return static_cast<avatar::LodLevel>(i);
    }
    return avatar::LodLevel::Billboard;
}

std::string_view render_mode_name(RenderMode m) {
    switch (m) {
        case RenderMode::LocalOnly: return "local-only";
        case RenderMode::CloudOnly: return "cloud-only";
        case RenderMode::Split: return "split";
    }
    return "?";
}

namespace {

/// Frame interval of the cloud video layer given downlink and resolution:
/// a 1080p H.264-class layer needs roughly 12 Mbit/s at 60 fps; scale
/// linearly in area and rate.
double cloud_layer_fps(const SplitConditions& cond) {
    const double bits_per_frame = 12e6 / 60.0 * cond.video_scale;
    const double fps = cond.downlink_bps / bits_per_frame;
    return std::clamp(fps, 1.0, 60.0);
}

}  // namespace

SplitOutcome evaluate(RenderMode mode, const DeviceProfile& device,
                      const SplitConditions& cond) {
    SplitOutcome out;
    out.mode = mode;
    const DeviceProfile cloud = cloud_gpu_profile();

    switch (mode) {
        case RenderMode::LocalOnly: {
            const avatar::LodLevel lod =
                best_uniform_lod(device, cond.avatar_count, cond.environment_triangles);
            Scene s;
            s.environment_triangles = cond.environment_triangles;
            s.add_avatars(lod, cond.avatar_count);
            const FrameStats fs = simulate_frame(device, s);
            out.fps = fs.achieved_fps;
            out.motion_to_photon_ms = fs.motion_to_photon_ms;
            out.full_quality_latency_ms = fs.motion_to_photon_ms;
            out.visual_quality = fs.avatar_quality;
            break;
        }
        case RenderMode::CloudOnly: {
            // Cloud renders sophisticated avatars; device only decodes.
            Scene s;
            s.environment_triangles = cond.environment_triangles;
            s.add_avatars(avatar::LodLevel::Sophisticated, cond.avatar_count);
            const FrameStats cloud_fs = simulate_frame(cloud, s);
            const double stream_fps = std::min(cloud_fs.achieved_fps, cloud_layer_fps(cond));
            const double decode_ms = device.video_decode_ms * cond.video_scale;
            const double encode_ms = cloud.video_encode_ms * cond.video_scale;
            // Pose upstream (RTT/2) + cloud render + encode + downstream
            // (RTT/2) + decode + display.
            const double mtp = cond.cloud_rtt_ms + cloud_fs.frame_time_ms + encode_ms +
                               decode_ms + device.display_latency_ms;
            out.fps = stream_fps;
            out.motion_to_photon_ms = mtp;
            out.full_quality_latency_ms = mtp;
            // Video compression shaves a few points off the rendered quality.
            out.visual_quality =
                lod_visual_quality(avatar::LodLevel::Sophisticated) - 4.0;
            break;
        }
        case RenderMode::Split: {
            // Base layer: everything at Low locally, every frame.
            Scene base;
            base.environment_triangles = cond.environment_triangles;
            base.add_avatars(avatar::LodLevel::Low, cond.avatar_count);
            const FrameStats base_fs = simulate_frame(device, base);

            // Cloud layer: sophisticated, speculated one RTT ahead; add the
            // device cost of decoding + compositing it (half a decode).
            Scene hi;
            hi.environment_triangles = 0;
            hi.add_avatars(avatar::LodLevel::Sophisticated, cond.avatar_count);
            const FrameStats cloud_fs = simulate_frame(cloud, hi);
            const double layer_latency = cond.cloud_rtt_ms + cloud_fs.frame_time_ms +
                                         cloud.video_encode_ms * cond.video_scale +
                                         device.video_decode_ms * cond.video_scale;

            // Misprediction: the speculative pose was extrapolated
            // layer_latency ahead; angular error (rad) maps to artifact
            // penalty points. Outatime hides ~40 ms well; beyond that
            // reprojection holes grow.
            const double angular_error =
                cond.head_angular_speed * layer_latency / 1000.0;
            const double artifact = std::min(45.0, 60.0 * angular_error * angular_error +
                                                       8.0 * angular_error);

            out.fps = base_fs.achieved_fps;
            out.motion_to_photon_ms = base_fs.motion_to_photon_ms;
            out.full_quality_latency_ms = layer_latency + device.display_latency_ms;
            out.artifact_penalty = artifact;
            const double hi_quality =
                lod_visual_quality(avatar::LodLevel::Sophisticated) - 4.0 - artifact;
            // The displayed image is the merge: never worse than the base.
            out.visual_quality =
                std::max(lod_visual_quality(avatar::LodLevel::Low), hi_quality);
            break;
        }
    }
    return out;
}

}  // namespace mvc::render
