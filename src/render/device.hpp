#pragma once
// Rendering device profiles. The paper's concern: sophisticated avatars
// "may be too complex to render with WebGL and lightweight VR headsets".
// Each profile is an analytical cost model — fixed per-frame overhead plus
// triangle throughput — calibrated to the device class's public GPU specs.
// Absolute numbers matter less than the ordering (PC >> standalone >> phone),
// which drives the split-rendering experiment (E6).

#include <string_view>

namespace mvc::render {

struct DeviceProfile {
    std::string_view name;
    double target_fps;
    /// Fixed per-frame cost (scene setup, compositor, lens warp) in ms.
    double base_frame_ms;
    /// Geometry/shading throughput in triangles per millisecond.
    double triangles_per_ms;
    /// Display latency: scan-out + persistence (ms).
    double display_latency_ms;
    /// Time to decode one remotely-rendered 1080p frame (ms); scales with
    /// area for other resolutions.
    double video_decode_ms;
    /// Hardware encode time for cloud-side renderers (ms/frame at 1080p).
    double video_encode_ms;
};

/// Tethered PC VR (desktop GPU).
[[nodiscard]] DeviceProfile pc_vr_profile();
/// Standalone HMD (mobile SoC, Quest-class).
[[nodiscard]] DeviceProfile standalone_hmd_profile();
/// Browser/WebGL on a phone or thin laptop — the weakest classroom client.
[[nodiscard]] DeviceProfile phone_webgl_profile();
/// Cloud GPU render node.
[[nodiscard]] DeviceProfile cloud_gpu_profile();

}  // namespace mvc::render
