#pragma once
// Telemetry sink shared by every subsystem. Named counters and latency
// series are registered lazily; benchmarks read them out at the end of a
// run to print the experiment tables.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "math/stats.hpp"

namespace mvc::sim {

class MetricsRecorder {
public:
    /// Add `delta` to the named monotonic counter.
    void count(std::string_view name, std::uint64_t delta = 1);
    /// Record one sample into the named series (e.g. a latency in ms).
    void sample(std::string_view name, double value);

    [[nodiscard]] std::uint64_t counter(std::string_view name) const;
    /// Series accessor; returns an empty static series for unknown names so
    /// report code never branches on existence.
    [[nodiscard]] const math::SampleSeries& series(std::string_view name) const;
    [[nodiscard]] bool has_series(std::string_view name) const;

    [[nodiscard]] const std::map<std::string, std::uint64_t, std::less<>>& counters() const {
        return counters_;
    }
    [[nodiscard]] const std::map<std::string, math::SampleSeries, std::less<>>& all_series()
        const {
        return series_;
    }

    void reset();

    /// Multi-line human-readable dump ("name: count" / "name: mean/p50/p95/p99").
    [[nodiscard]] std::string to_string() const;

private:
    std::map<std::string, std::uint64_t, std::less<>> counters_;
    std::map<std::string, math::SampleSeries, std::less<>> series_;
};

}  // namespace mvc::sim
