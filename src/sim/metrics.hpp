#pragma once
// Telemetry sink shared by every subsystem. Named counters and latency
// series are registered lazily; benchmarks read them out at the end of a
// run to print the experiment tables and export BENCH_<exp>.json.
//
// Metrics can carry labels (dimension key/value pairs). Labeled metrics are
// flattened into one canonical key — `name{k1=v1,k2=v2}` with labels sorted
// by key, independent of call-site order — so storage stays a flat ordered
// map, exports are deterministic, and the same metric emitted from two
// shards (or two code paths) can never land under two different keys.

#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>
#include <string_view>

#include "common/json.hpp"
#include "math/stats.hpp"
#include "sim/time.hpp"

namespace mvc::sim {

class Simulator;

/// One dimension of a labeled metric, e.g. {"flow", "avatar"}. Views must
/// outlive the call only (keys are copied into the canonical name).
struct Label {
    std::string_view key;
    std::string_view value;
};

class MetricsRecorder {
public:
    /// Add `delta` to the named monotonic counter.
    void count(std::string_view name, std::uint64_t delta = 1);
    void count(std::string_view name, std::initializer_list<Label> labels,
               std::uint64_t delta = 1);
    /// Record one sample into the named series (e.g. a latency in ms).
    void sample(std::string_view name, double value);
    void sample(std::string_view name, std::initializer_list<Label> labels, double value);

    /// Canonical flattened key for a labeled metric: `name{k1=v1,k2=v2}`,
    /// labels ordered by key regardless of the order given at the call site.
    [[nodiscard]] static std::string keyed(std::string_view name,
                                           std::initializer_list<Label> labels);

    /// Merge-on-join for sharded runs: fold `other` into this recorder —
    /// counters add, series append their samples in recording order. Merging
    /// shard recorders in a fixed (shard-index) order yields byte-identical
    /// exports regardless of how many threads executed the shards.
    void merge(const MetricsRecorder& other);

    [[nodiscard]] std::uint64_t counter(std::string_view name) const;
    [[nodiscard]] std::uint64_t counter(std::string_view name,
                                        std::initializer_list<Label> labels) const;
    /// Series accessor; returns an empty static series for unknown names so
    /// report code never branches on existence.
    [[nodiscard]] const math::SampleSeries& series(std::string_view name) const;
    [[nodiscard]] const math::SampleSeries& series(
        std::string_view name, std::initializer_list<Label> labels) const;
    [[nodiscard]] bool has_series(std::string_view name) const;

    [[nodiscard]] const std::map<std::string, std::uint64_t, std::less<>>& counters() const {
        return counters_;
    }
    [[nodiscard]] const std::map<std::string, math::SampleSeries, std::less<>>& all_series()
        const {
        return series_;
    }

    void reset();

    /// Multi-line human-readable dump ("name: count" / "name: mean/p50/p95/p99").
    [[nodiscard]] std::string to_string() const;

    /// Machine-readable export: {"counters": {name: value}, "series":
    /// {name: {count, mean, min, max, p50, p95, p99}}}. Key order (and thus
    /// the serialized bytes) is deterministic for a given set of metrics.
    [[nodiscard]] common::Json to_json() const;

private:
    std::map<std::string, std::uint64_t, std::less<>> counters_;
    std::map<std::string, math::SampleSeries, std::less<>> series_;
};

/// RAII section timer: samples the elapsed time (in ms) into a recorder
/// series when it goes out of scope. Constructed with a Simulator it measures
/// deterministic simulated time; without one it falls back to wall-clock,
/// which is meant for harness-side sections of benchmarks, not model code.
class ScopedTimer {
public:
    ScopedTimer(MetricsRecorder& recorder, std::string name);
    ScopedTimer(MetricsRecorder& recorder, std::string name, const Simulator& sim);
    ~ScopedTimer();

    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

private:
    MetricsRecorder& recorder_;
    std::string name_;
    const Simulator* sim_{nullptr};
    Time sim_start_{};
    std::chrono::steady_clock::time_point wall_start_{};
};

}  // namespace mvc::sim
