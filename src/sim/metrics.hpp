#pragma once
// Telemetry sink shared by every subsystem. Named counters and latency
// series are registered lazily; benchmarks read them out at the end of a
// run to print the experiment tables and export BENCH_<exp>.json.
//
// Metrics can carry labels (dimension key/value pairs). Labeled metrics are
// flattened into one canonical key — `name{k1=v1,k2=v2}` with labels sorted
// by key, independent of call-site order — so storage stays a flat ordered
// map, exports are deterministic, and the same metric emitted from two
// shards (or two code paths) can never land under two different keys.
//
// Hot paths intern a MetricId once (name + labels -> dense slot index) and
// then record through it with a single bounds-checked indexed add — no string
// build, no map walk. The canonical string key set is unchanged: merge(),
// to_json() and to_string() iterate the same sorted key index whether a
// metric was recorded through a handle or through the string API, so sharded
// exports stay byte-identical.

#include <chrono>
#include <cstdint>
#include <deque>
#include <initializer_list>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.hpp"
#include "math/stats.hpp"
#include "sim/time.hpp"

namespace mvc::sim {

class Simulator;

/// One dimension of a labeled metric, e.g. {"flow", "avatar"}. Views must
/// outlive the call only (keys are copied into the canonical name).
struct Label {
    std::string_view key;
    std::string_view value;
};

/// Interned handle for one metric slot of one recorder. Resolve once with
/// MetricsRecorder::counter_id()/series_id(), then count()/sample() through
/// it from the hot path. A default-constructed id is inert: recording through
/// it is a no-op, so optional metrics need no branches at the call site.
/// Handles are invalidated by reset() (recording through a stale handle is a
/// safe no-op until re-resolved) and are only meaningful for the recorder
/// that issued them.
class MetricId {
public:
    constexpr MetricId() = default;

    [[nodiscard]] constexpr bool valid() const { return index_ != kInvalid; }

private:
    friend class MetricsRecorder;
    static constexpr std::uint32_t kInvalid = 0xFFFFFFFFu;

    constexpr explicit MetricId(std::uint32_t index) : index_(index) {}

    std::uint32_t index_{kInvalid};
};

class MetricsRecorder {
public:
    /// Add `delta` to the named monotonic counter.
    void count(std::string_view name, std::uint64_t delta = 1);
    void count(std::string_view name, std::initializer_list<Label> labels,
               std::uint64_t delta = 1);
    /// Record one sample into the named series (e.g. a latency in ms).
    void sample(std::string_view name, double value);
    void sample(std::string_view name, std::initializer_list<Label> labels, double value);

    /// Intern a counter/series slot and return its handle. The slot is
    /// created immediately (with value 0 / no samples) so the canonical key
    /// appears in exports even before the first record — interning is part
    /// of construction, which keeps sharded exports independent of how much
    /// traffic each shard happened to carry.
    MetricId counter_id(std::string_view name);
    MetricId counter_id(std::string_view name, std::initializer_list<Label> labels);
    MetricId series_id(std::string_view name);
    MetricId series_id(std::string_view name, std::initializer_list<Label> labels);

    /// Hot-path record through a pre-resolved handle: one indexed add.
    void count(MetricId id, std::uint64_t delta = 1) {
        if (id.index_ < counter_values_.size()) counter_values_[id.index_] += delta;
    }
    void sample(MetricId id, double value) {
        if (id.index_ < series_values_.size()) series_values_[id.index_].add(value);
    }

    /// Canonical flattened key for a labeled metric: `name{k1=v1,k2=v2}`,
    /// labels ordered by key regardless of the order given at the call site.
    [[nodiscard]] static std::string keyed(std::string_view name,
                                           std::initializer_list<Label> labels);

    /// Merge-on-join for sharded runs: fold `other` into this recorder —
    /// counters add, series append their samples in recording order. Merging
    /// shard recorders in a fixed (shard-index) order yields byte-identical
    /// exports regardless of how many threads executed the shards.
    void merge(const MetricsRecorder& other);

    [[nodiscard]] std::uint64_t counter(std::string_view name) const;
    [[nodiscard]] std::uint64_t counter(std::string_view name,
                                        std::initializer_list<Label> labels) const;
    /// Series accessor; returns an empty static series for unknown names so
    /// report code never branches on existence.
    [[nodiscard]] const math::SampleSeries& series(std::string_view name) const;
    [[nodiscard]] const math::SampleSeries& series(
        std::string_view name, std::initializer_list<Label> labels) const;
    [[nodiscard]] bool has_series(std::string_view name) const;

    /// Snapshot of all counters by canonical key (sorted). Cold path: built
    /// on demand now that live values sit in dense slots.
    [[nodiscard]] std::map<std::string, std::uint64_t, std::less<>> counters() const;
    /// Sorted (key, series) view; pointers are valid until reset().
    [[nodiscard]] std::vector<std::pair<std::string_view, const math::SampleSeries*>>
    all_series() const;

    void reset();

    /// Multi-line human-readable dump ("name: count" / "name: mean/p50/p95/p99").
    [[nodiscard]] std::string to_string() const;

    /// Machine-readable export: {"counters": {name: value}, "series":
    /// {name: {count, mean, min, max, p50, p95, p99}}}. Key order (and thus
    /// the serialized bytes) is deterministic for a given set of metrics.
    [[nodiscard]] common::Json to_json() const;

private:
    std::uint32_t counter_slot(std::string_view name);
    std::uint32_t series_slot(std::string_view name);

    // Sorted key -> dense slot index. The index maps carry the canonical
    // string keys (and the deterministic iteration order for exports); the
    // value arrays are what the hot path touches. series_values_ is a deque
    // so series() references stay stable as slots are interned.
    std::map<std::string, std::uint32_t, std::less<>> counter_index_;
    std::vector<std::uint64_t> counter_values_;
    std::map<std::string, std::uint32_t, std::less<>> series_index_;
    std::deque<math::SampleSeries> series_values_;
};

/// RAII section timer: samples the elapsed time (in ms) into a recorder
/// series when it goes out of scope. Constructed with a Simulator it measures
/// deterministic simulated time; without one it falls back to wall-clock,
/// which is meant for harness-side sections of benchmarks, not model code.
class ScopedTimer {
public:
    ScopedTimer(MetricsRecorder& recorder, std::string name);
    ScopedTimer(MetricsRecorder& recorder, std::string name, const Simulator& sim);
    ~ScopedTimer();

    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

private:
    MetricsRecorder& recorder_;
    std::string name_;
    const Simulator* sim_{nullptr};
    Time sim_start_{};
    std::chrono::steady_clock::time_point wall_start_{};
};

}  // namespace mvc::sim
