#pragma once
// The time seam between model code and whatever drives it. Model components
// (token buckets, ARQ timers, FEC block deadlines, replication ticks) read
// time and arm timers through sim::Clock; the discrete-event Simulator and
// the wall-clock WallClock both implement it, so the same component runs
// unchanged inside a deterministic simulation or a real UDP event loop.
//
// The interface is deliberately the subset of Simulator the model layer
// actually uses: now(), one-shot and periodic scheduling, cancellation, and
// named deterministic RNG streams. Scheduling is type-erased through EventFn
// (64-byte inline small-buffer, pool-backed fallback) so the simulator's
// allocation-free hot path is preserved — the template wrappers below build
// the EventFn against the clock's own pool before crossing the virtual call.

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string_view>

#include "sim/event_fn.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace mvc::sim {

/// Handle used to cancel a scheduled event. Cheap value type; cancelling an
/// already-fired or already-cancelled event is a no-op. Issued by any Clock
/// implementation; only meaningful for the clock that issued it.
class EventHandle {
public:
    EventHandle() = default;
    [[nodiscard]] bool valid() const { return id_ != 0; }

private:
    explicit EventHandle(std::uint64_t id) : id_(id) {}
    std::uint64_t id_{0};
    friend class Simulator;
    friend class Clock;
};

class Clock {
public:
    virtual ~Clock() = default;

    /// Current time: simulated time on a Simulator, nanoseconds since
    /// construction on a WallClock.
    [[nodiscard]] virtual Time now() const = 0;

    /// Independent deterministic RNG stream for a named model; a pure
    /// function of (root seed, name) on every implementation, so a model
    /// seeded identically draws identical streams under either clock.
    [[nodiscard]] virtual Rng rng_stream(std::string_view name) const = 0;

    /// Type-erased one-shot scheduling primitive beneath the templates.
    virtual EventHandle schedule_at_erased(Time at, EventFn fn) = 0;

    /// Schedule `fn` every `period`, first firing at now() + `phase`
    /// (defaults to one full period). Returns a handle cancelling the whole
    /// periodic chain.
    virtual EventHandle schedule_every(Time period, std::function<void()> fn) = 0;
    virtual EventHandle schedule_every(Time period, Time phase,
                                       std::function<void()> fn) = 0;

    /// Cancel a pending event; safe on fired/invalid handles.
    virtual void cancel(EventHandle h) = 0;

    /// Schedule `fn` to run at absolute time `at`. The callable is captured
    /// into the event record in place (see EventFn); steady-state captures
    /// of <= 64 bytes never allocate.
    template <class F>
    EventHandle schedule_at(Time at, F&& fn) {
        return schedule_at_erased(at, EventFn(std::forward<F>(fn), timer_pool()));
    }

    /// Schedule `fn` to run `delay` after now().
    template <class F>
    EventHandle schedule_after(Time delay, F&& fn) {
        if (delay < Time::zero())
            throw std::invalid_argument("schedule_after: negative delay");
        return schedule_at_erased(now() + delay,
                                  EventFn(std::forward<F>(fn), timer_pool()));
    }

protected:
    /// Pool backing oversized captures of events scheduled through this
    /// clock; may be null (captures then fall back to operator new).
    [[nodiscard]] virtual EventPool* timer_pool() = 0;

    // Implementations outside the Simulator friendship mint and inspect
    // handles through these.
    [[nodiscard]] static EventHandle make_handle(std::uint64_t id) {
        return EventHandle{id};
    }
    [[nodiscard]] static std::uint64_t handle_id(EventHandle h) { return h.id_; }
};

}  // namespace mvc::sim
