#pragma once
// Discrete-event simulation core. Single-threaded, deterministic: events at
// equal timestamps fire in scheduling order (FIFO via a sequence number).
// Everything in the classroom — sensors, links, servers, renderers — runs as
// callbacks on one Simulator instance.
//
// The steady-state loop is allocation-free: callbacks are stored as EventFn
// (64-byte small-buffer, pool-backed fallback), the queue is an explicit
// binary heap over a flat vector (so the next event is moved out, never
// copied), and liveness tracking is a growable bitmap instead of a per-event
// hash-set insert. Pop order depends only on the (time, seq) total order, so
// determinism is unaffected by the container swap.

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

#include "sim/clock.hpp"
#include "sim/event_fn.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace mvc::sim {

class Simulator : public Clock {
public:
    /// `seed` roots every Rng stream created through `rng_stream`.
    explicit Simulator(std::uint64_t seed = 1);

    Simulator(const Simulator&) = delete;
    Simulator& operator=(const Simulator&) = delete;

    [[nodiscard]] Time now() const override { return now_; }
    [[nodiscard]] std::uint64_t seed() const { return seed_; }

    /// Independent deterministic RNG stream for a named model. Pure function
    /// of (seed(), name): calling this in any order, any number of times,
    /// consumes no randomness and never perturbs other streams — two calls
    /// with the same name return identical streams. Draw order *within* the
    /// returned stream must be stable for reproducible runs; see the
    /// determinism contract at the top of sim/rng.hpp.
    [[nodiscard]] Rng rng_stream(std::string_view name) const override;

    /// One-shot scheduling primitive beneath Clock's schedule_at /
    /// schedule_after templates. `at` must be >= now().
    EventHandle schedule_at_erased(Time at, EventFn fn) override {
        if (at < now_) throw std::invalid_argument("schedule_at: time in the past");
        return push(at, std::move(fn));
    }
    /// Schedule `fn` every `period`, first firing at now() + `phase`
    /// (defaults to one full period). Returns a handle cancelling the
    /// whole periodic chain. The chain body is type-erased once at setup;
    /// each subsequent firing re-arms with a 16-byte inline capture.
    EventHandle schedule_every(Time period, std::function<void()> fn) override;
    EventHandle schedule_every(Time period, Time phase,
                               std::function<void()> fn) override;

    /// Cancel a pending event; safe on fired/invalid handles.
    void cancel(EventHandle h) override;

    /// Run until the event queue drains or the horizon passes. Returns the
    /// number of events executed. Events scheduled exactly at `until` run.
    std::size_t run_until(Time until);
    /// Run until the queue is fully drained (use only with finite models).
    std::size_t run_all();
    /// Execute the single next event, if any; returns whether one ran.
    bool step();

    [[nodiscard]] std::size_t pending_events() const;
    [[nodiscard]] std::size_t executed_events() const { return executed_; }
    /// Number of cancellation tombstones currently held. Bounded by the
    /// number of still-pending cancelled events; exposed so tests can assert
    /// long-running simulations don't accumulate bookkeeping.
    [[nodiscard]] std::size_t cancelled_backlog() const { return cancelled_.size(); }
    /// Free-list pool backing oversized event captures; exposed for the
    /// hot-path benchmark and pool-reuse tests.
    [[nodiscard]] const EventPool& event_pool() const { return pool_; }

protected:
    [[nodiscard]] EventPool* timer_pool() override { return &pool_; }

private:
    struct Event {
        Time at;
        std::uint64_t seq;  // tie-break: FIFO among equal timestamps
        std::uint64_t id;
        EventFn fn;
    };
    struct Later {
        bool operator()(const Event& a, const Event& b) const {
            if (a.at != b.at) return a.at > b.at;
            return a.seq > b.seq;
        }
    };

    EventHandle push(Time at, EventFn fn);

    Time now_{};
    std::uint64_t seed_;
    std::uint64_t next_seq_{1};
    std::uint64_t next_id_{1};
    std::size_t executed_{0};
    // pool_ is declared before queue_ so queued EventFns (which may hold
    // pool blocks) are destroyed before the pool frees its list.
    EventPool pool_;
    // Explicit binary heap (std::push_heap/pop_heap over a vector): popping
    // moves the event out instead of copying priority_queue::top(), which a
    // move-only EventFn requires anyway. Heap shape is irrelevant to pop
    // order because (at, seq) is a strict total order.
    std::vector<Event> queue_;
    // Cancellation is rare; a sorted vector of cancelled ids is enough and
    // keeps the hot path allocation-free. Every tombstone is retired when its
    // event pops (or, for periodic chains, when the chain notices the
    // cancellation), and `cancel` refuses ids that can no longer fire, so the
    // vector cannot grow without bound over a long simulation.
    std::vector<std::uint64_t> cancelled_;
    // Ids that may still fire: queued one-shot events plus active periodic
    // chains. Gate for `cancel` so fired/stale handles never leave tombstones.
    // One bit per id ever issued (ids are dense, starting at 1); marking a
    // new id is a word index + OR, amortized allocation-free.
    std::vector<std::uint64_t> live_bits_;
    void mark_live(std::uint64_t id);
    void clear_live(std::uint64_t id);
    [[nodiscard]] bool is_live(std::uint64_t id) const;
    [[nodiscard]] bool is_cancelled(std::uint64_t id) const;
    void retire_cancelled(std::uint64_t id);
};

}  // namespace mvc::sim
