#pragma once
// Discrete-event simulation core. Single-threaded, deterministic: events at
// equal timestamps fire in scheduling order (FIFO via a sequence number).
// Everything in the classroom — sensors, links, servers, renderers — runs as
// callbacks on one Simulator instance.

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace mvc::sim {

/// Handle used to cancel a scheduled event. Cheap value type; cancelling an
/// already-fired or already-cancelled event is a no-op.
class EventHandle {
public:
    EventHandle() = default;
    [[nodiscard]] bool valid() const { return id_ != 0; }

private:
    explicit EventHandle(std::uint64_t id) : id_(id) {}
    std::uint64_t id_{0};
    friend class Simulator;
};

class Simulator {
public:
    /// `seed` roots every Rng stream created through `rng_stream`.
    explicit Simulator(std::uint64_t seed = 1);

    Simulator(const Simulator&) = delete;
    Simulator& operator=(const Simulator&) = delete;

    [[nodiscard]] Time now() const { return now_; }
    [[nodiscard]] std::uint64_t seed() const { return seed_; }

    /// Independent deterministic RNG stream for a named model.
    [[nodiscard]] Rng rng_stream(std::string_view name) const;

    /// Schedule `fn` to run at absolute time `at` (must be >= now()).
    EventHandle schedule_at(Time at, std::function<void()> fn);
    /// Schedule `fn` to run `delay` after now().
    EventHandle schedule_after(Time delay, std::function<void()> fn);
    /// Schedule `fn` every `period`, first firing at now() + `phase`
    /// (defaults to one full period). Returns a handle cancelling the
    /// whole periodic chain.
    EventHandle schedule_every(Time period, std::function<void()> fn);
    EventHandle schedule_every(Time period, Time phase, std::function<void()> fn);

    /// Cancel a pending event; safe on fired/invalid handles.
    void cancel(EventHandle h);

    /// Run until the event queue drains or the horizon passes. Returns the
    /// number of events executed. Events scheduled exactly at `until` run.
    std::size_t run_until(Time until);
    /// Run until the queue is fully drained (use only with finite models).
    std::size_t run_all();
    /// Execute the single next event, if any; returns whether one ran.
    bool step();

    [[nodiscard]] std::size_t pending_events() const;
    [[nodiscard]] std::size_t executed_events() const { return executed_; }
    /// Number of cancellation tombstones currently held. Bounded by the
    /// number of still-pending cancelled events; exposed so tests can assert
    /// long-running simulations don't accumulate bookkeeping.
    [[nodiscard]] std::size_t cancelled_backlog() const { return cancelled_.size(); }

private:
    struct Event {
        Time at;
        std::uint64_t seq;  // tie-break: FIFO among equal timestamps
        std::uint64_t id;
        std::function<void()> fn;
    };
    struct Later {
        bool operator()(const Event& a, const Event& b) const {
            if (a.at != b.at) return a.at > b.at;
            return a.seq > b.seq;
        }
    };

    EventHandle push(Time at, std::function<void()> fn);
    struct PeriodicState;

    Time now_{};
    std::uint64_t seed_;
    std::uint64_t next_seq_{1};
    std::uint64_t next_id_{1};
    std::size_t executed_{0};
    std::priority_queue<Event, std::vector<Event>, Later> queue_;
    // Cancellation is rare; a sorted vector of cancelled ids is enough and
    // keeps the hot path allocation-free. Every tombstone is retired when its
    // event pops (or, for periodic chains, when the chain notices the
    // cancellation), and `cancel` refuses ids that can no longer fire, so the
    // vector cannot grow without bound over a long simulation.
    std::vector<std::uint64_t> cancelled_;
    // Ids that may still fire: queued one-shot events plus active periodic
    // chains. Gate for `cancel` so fired/stale handles never leave tombstones.
    std::unordered_set<std::uint64_t> live_;
    [[nodiscard]] bool is_cancelled(std::uint64_t id) const;
    void retire_cancelled(std::uint64_t id);
};

}  // namespace mvc::sim
