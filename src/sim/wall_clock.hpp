#pragma once
// Wall-clock implementation of sim::Clock for the real-transport backend.
// now() is nanoseconds of std::chrono::steady_clock elapsed since
// construction (so timestamps start near zero, like a simulation run), and
// timers sit in a deadline-ordered map that the owning event loop drains:
// poll the sockets with a timeout derived from next_deadline(), then call
// run_due() to fire everything whose instant has passed.
//
// Unlike the simulator there is no event queue driving time forward — time
// passes on its own — so scheduling into the past is legal (the timer fires
// on the next run_due()) and periodic timers re-arm relative to now() when
// the loop falls behind, instead of bursting to catch up.
//
// Single-threaded by design, exactly like the Simulator: one thread owns the
// clock, its sockets, and every timer callback.

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string_view>

#include "sim/clock.hpp"

namespace mvc::sim {

class WallClock final : public Clock {
public:
    /// `seed` roots rng_stream, mirroring Simulator(seed): a model built on
    /// the real backend with the same seed draws identical named streams.
    explicit WallClock(std::uint64_t seed = 1);

    WallClock(const WallClock&) = delete;
    WallClock& operator=(const WallClock&) = delete;

    [[nodiscard]] Time now() const override;
    [[nodiscard]] std::uint64_t seed() const { return seed_; }
    [[nodiscard]] Rng rng_stream(std::string_view name) const override;

    EventHandle schedule_at_erased(Time at, EventFn fn) override;
    EventHandle schedule_every(Time period, std::function<void()> fn) override;
    EventHandle schedule_every(Time period, Time phase,
                               std::function<void()> fn) override;
    void cancel(EventHandle h) override;

    /// Earliest pending deadline; nullopt when no timers are armed. The
    /// event loop turns this into its poll timeout.
    [[nodiscard]] std::optional<Time> next_deadline() const;

    /// Fire every timer whose deadline is <= now(), in deadline order
    /// (FIFO among equal deadlines). Returns how many fired. Callbacks may
    /// schedule and cancel freely, including cancelling their own periodic
    /// chain.
    std::size_t run_due();

    [[nodiscard]] std::size_t pending_timers() const { return timers_.size(); }
    [[nodiscard]] std::uint64_t fired() const { return fired_; }

protected:
    [[nodiscard]] EventPool* timer_pool() override { return &pool_; }

private:
    struct Timer {
        std::uint64_t id{0};
        std::uint64_t seq{0};          // FIFO tie-break among equal deadlines
        EventFn once;                  // one-shot body (periodic timers leave it empty)
        std::function<void()> every;   // periodic body (empty for one-shots)
        Time period{};
    };
    using Queue = std::multimap<Time, Timer>;

    EventHandle arm(Time at, Timer t);

    std::uint64_t seed_;
    std::chrono::steady_clock::time_point epoch_;
    EventPool pool_;
    Queue timers_;
    std::map<std::uint64_t, Queue::iterator> by_id_;
    std::uint64_t next_id_{1};
    std::uint64_t next_seq_{1};
    std::uint64_t fired_{0};
    // Cancellation of the timer currently mid-callback (the common
    // stop()-from-inside-tick pattern) is flagged here: its map entry is
    // already gone, so cancel() has nothing to erase.
    std::uint64_t firing_id_{0};
    bool firing_cancelled_{false};
};

}  // namespace mvc::sim
