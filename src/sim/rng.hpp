#pragma once
// Deterministic random-number streams. Every stochastic model in the
// simulation draws from a named stream derived from the run seed, so two
// runs with the same seed are bit-identical regardless of how many other
// models exist or in which order they are constructed.
//
// Determinism contract (what record/replay relies on):
//  1. Stream *creation* is a pure function of (root seed, stream name):
//     derive_seed hashes the name and mixes it with the seed, consuming no
//     randomness from any parent stream. Creating streams in a different
//     order — or creating extra streams — can never perturb a sibling's
//     draw sequence. (Regression-tested in sim_test.)
//  2. Draws *within* one stream are order-sensitive: a stream is a single
//     mt19937_64, so reproducing a run requires each named stream's draw
//     sequence to be issued in the same order. In practice this falls out
//     of the event loop's total order — models only draw from event
//     callbacks, and the (time, seq) order is deterministic.
//  3. Corollary: never share one stream between two models whose relative
//     execution order is not fixed by the event loop; give each model its
//     own name instead. Names are cheap and collision-resistant.

#include <cstdint>
#include <random>
#include <string_view>

namespace mvc::sim {

/// One random stream. Thin wrapper over mt19937_64 with the distributions
/// the models need; constructed via Rng::stream() in normal use.
class Rng {
public:
    explicit Rng(std::uint64_t seed) : engine_(seed), base_seed_(seed) {}

    /// Derive an independent child stream from this one, keyed by name.
    /// Uses splitmix-style mixing of the name hash so sibling streams do
    /// not correlate.
    [[nodiscard]] Rng stream(std::string_view name) const;

    /// Uniform in [0, 1).
    [[nodiscard]] double uniform();
    /// Uniform in [lo, hi).
    [[nodiscard]] double uniform(double lo, double hi);
    /// Uniform integer in [lo, hi] inclusive.
    [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
    /// Normal with the given mean and standard deviation.
    [[nodiscard]] double normal(double mean, double stddev);
    /// Exponential with the given mean (= 1/rate); mean <= 0 returns 0.
    [[nodiscard]] double exponential(double mean);
    /// Bernoulli trial with probability p (clamped to [0,1]).
    [[nodiscard]] bool chance(double p);
    /// Poisson with the given mean (mean <= 0 returns 0).
    [[nodiscard]] std::uint64_t poisson(double mean);
    /// Pareto-distributed value with scale xm > 0 and shape alpha > 0
    /// (heavy tail used for WAN jitter spikes and think-time bursts).
    [[nodiscard]] double pareto(double xm, double alpha);

    /// Pick a uniformly random index in [0, n); n must be > 0.
    [[nodiscard]] std::size_t index(std::size_t n);

    [[nodiscard]] std::uint64_t raw() { return engine_(); }

private:
    std::mt19937_64 engine_;
    std::uint64_t base_seed_{0};
};

/// Mixes a seed and a label into a child seed (splitmix64 finalizer).
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t seed, std::string_view label);

}  // namespace mvc::sim
