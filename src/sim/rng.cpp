#include "sim/rng.hpp"

#include <algorithm>
#include <cmath>

namespace mvc::sim {

namespace {
constexpr std::uint64_t splitmix64(std::uint64_t z) {
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}
}  // namespace

std::uint64_t derive_seed(std::uint64_t seed, std::string_view label) {
    // FNV-1a over the label, then splitmix the combination. Stable across
    // platforms (no std::hash, whose value is unspecified).
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : label) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return splitmix64(seed ^ splitmix64(h));
}

Rng Rng::stream(std::string_view name) const { return Rng{derive_seed(base_seed_, name)}; }

double Rng::uniform() {
    return std::uniform_real_distribution<double>{0.0, 1.0}(engine_);
}

double Rng::uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>{lo, hi}(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>{lo, hi}(engine_);
}

double Rng::normal(double mean, double stddev) {
    if (stddev <= 0.0) return mean;
    return std::normal_distribution<double>{mean, stddev}(engine_);
}

double Rng::exponential(double mean) {
    if (mean <= 0.0) return 0.0;
    return std::exponential_distribution<double>{1.0 / mean}(engine_);
}

bool Rng::chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
}

std::uint64_t Rng::poisson(double mean) {
    if (mean <= 0.0) return 0;
    return std::poisson_distribution<std::uint64_t>{mean}(engine_);
}

double Rng::pareto(double xm, double alpha) {
    // Inverse-CDF sampling; guard the log singularity at u == 0.
    const double u = std::max(uniform(), 1e-12);
    return xm / std::pow(u, 1.0 / alpha);
}

std::size_t Rng::index(std::size_t n) {
    return static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

}  // namespace mvc::sim
