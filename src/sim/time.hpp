#pragma once
// Simulated time as a strong type over integer nanoseconds. Integer ticks
// keep event ordering exact and runs bit-reproducible across platforms;
// helpers convert to/from the floating-point seconds used by models.

#include <compare>
#include <cstdint>
#include <iosfwd>

namespace mvc::sim {

class Time {
public:
    constexpr Time() = default;

    [[nodiscard]] static constexpr Time ns(std::int64_t v) { return Time{v}; }
    [[nodiscard]] static constexpr Time us(std::int64_t v) { return Time{v * 1'000}; }
    [[nodiscard]] static constexpr Time ms(double v) {
        return Time{static_cast<std::int64_t>(v * 1e6)};
    }
    [[nodiscard]] static constexpr Time seconds(double v) {
        return Time{static_cast<std::int64_t>(v * 1e9)};
    }
    [[nodiscard]] static constexpr Time zero() { return Time{}; }
    /// Largest representable instant; used as "never".
    [[nodiscard]] static constexpr Time max() { return Time{INT64_MAX}; }

    [[nodiscard]] constexpr std::int64_t nanos() const { return ns_; }
    [[nodiscard]] constexpr double to_us() const { return static_cast<double>(ns_) * 1e-3; }
    [[nodiscard]] constexpr double to_ms() const { return static_cast<double>(ns_) * 1e-6; }
    [[nodiscard]] constexpr double to_seconds() const {
        return static_cast<double>(ns_) * 1e-9;
    }

    friend constexpr Time operator+(Time a, Time b) { return Time{a.ns_ + b.ns_}; }
    friend constexpr Time operator-(Time a, Time b) { return Time{a.ns_ - b.ns_}; }
    friend constexpr Time operator*(Time a, std::int64_t k) { return Time{a.ns_ * k}; }
    friend constexpr Time operator*(std::int64_t k, Time a) { return Time{a.ns_ * k}; }
    friend constexpr Time operator/(Time a, std::int64_t k) { return Time{a.ns_ / k}; }
    constexpr Time& operator+=(Time o) {
        ns_ += o.ns_;
        return *this;
    }
    constexpr Time& operator-=(Time o) {
        ns_ -= o.ns_;
        return *this;
    }

    friend constexpr auto operator<=>(const Time&, const Time&) = default;

private:
    constexpr explicit Time(std::int64_t v) : ns_(v) {}
    std::int64_t ns_{0};
};

std::ostream& operator<<(std::ostream& os, Time t);

}  // namespace mvc::sim
