#include "sim/simulator.hpp"

#include <algorithm>
#include <memory>
#include <ostream>
#include <stdexcept>

namespace mvc::sim {

std::ostream& operator<<(std::ostream& os, Time t) { return os << t.to_ms() << "ms"; }

Simulator::Simulator(std::uint64_t seed) : seed_(seed) {}

Rng Simulator::rng_stream(std::string_view name) const {
    return Rng{derive_seed(seed_, name)};
}

EventHandle Simulator::push(Time at, std::function<void()> fn) {
    const std::uint64_t id = next_id_++;
    queue_.push(Event{at, next_seq_++, id, std::move(fn)});
    live_.insert(id);
    return EventHandle{id};
}

EventHandle Simulator::schedule_at(Time at, std::function<void()> fn) {
    if (at < now_) throw std::invalid_argument("schedule_at: time in the past");
    return push(at, std::move(fn));
}

EventHandle Simulator::schedule_after(Time delay, std::function<void()> fn) {
    if (delay < Time::zero()) throw std::invalid_argument("schedule_after: negative delay");
    return push(now_ + delay, std::move(fn));
}

EventHandle Simulator::schedule_every(Time period, std::function<void()> fn) {
    return schedule_every(period, period, std::move(fn));
}

EventHandle Simulator::schedule_every(Time period, Time phase, std::function<void()> fn) {
    if (period <= Time::zero())
        throw std::invalid_argument("schedule_every: period must be positive");
    // The chain is identified by its own id; each firing checks whether the
    // chain has been cancelled before running and rescheduling.
    const std::uint64_t chain_id = next_id_++;
    live_.insert(chain_id);
    // Ownership: each queued thunk holds the shared_ptr; the closure itself
    // holds only a weak_ptr, so dropping the last queued copy frees the chain
    // (a self-capturing shared_ptr would cycle and leak).
    auto tick = std::make_shared<std::function<void()>>();
    std::weak_ptr<std::function<void()>> weak = tick;
    *tick = [this, chain_id, period, fn = std::move(fn), weak]() {
        // A cancelled chain retires its own tombstone here — the chain id is
        // virtual (never in the queue), so nothing else would purge it.
        if (is_cancelled(chain_id)) {
            retire_cancelled(chain_id);
            return;
        }
        fn();
        if (is_cancelled(chain_id)) {
            retire_cancelled(chain_id);
        } else if (auto self = weak.lock()) {
            push(now_ + period, [self] { (*self)(); });
        }
    };
    push(now_ + phase, [tick] { (*tick)(); });
    return EventHandle{chain_id};
}

void Simulator::cancel(EventHandle h) {
    if (!h.valid()) return;
    // Fired, drained, or already-retired handles can never pop again, so a
    // tombstone for them would live forever — refuse to record one.
    if (!live_.contains(h.id_)) return;
    const auto it = std::lower_bound(cancelled_.begin(), cancelled_.end(), h.id_);
    if (it == cancelled_.end() || *it != h.id_) cancelled_.insert(it, h.id_);
}

bool Simulator::is_cancelled(std::uint64_t id) const {
    return std::binary_search(cancelled_.begin(), cancelled_.end(), id);
}

void Simulator::retire_cancelled(std::uint64_t id) {
    const auto it = std::lower_bound(cancelled_.begin(), cancelled_.end(), id);
    if (it != cancelled_.end() && *it == id) cancelled_.erase(it);
    live_.erase(id);
}

bool Simulator::step() {
    while (!queue_.empty()) {
        // priority_queue::top is const; move out via const_cast is UB-adjacent,
        // so copy the function handle (cheap relative to model work).
        Event ev = queue_.top();
        queue_.pop();
        if (is_cancelled(ev.id)) {
            // Retire the tombstone so cancelled_ stays small.
            retire_cancelled(ev.id);
            continue;
        }
        live_.erase(ev.id);
        now_ = ev.at;
        ++executed_;
        ev.fn();
        return true;
    }
    return false;
}

std::size_t Simulator::run_until(Time until) {
    std::size_t n = 0;
    while (!queue_.empty() && queue_.top().at <= until) {
        if (step()) ++n;
    }
    // Advance the clock to the horizon so back-to-back run_until calls see
    // monotonic time even across empty stretches.
    if (now_ < until) now_ = until;
    return n;
}

std::size_t Simulator::run_all() {
    std::size_t n = 0;
    while (step()) ++n;
    return n;
}

std::size_t Simulator::pending_events() const { return queue_.size(); }

}  // namespace mvc::sim
