#include "sim/simulator.hpp"

#include <algorithm>
#include <memory>
#include <ostream>
#include <stdexcept>

namespace mvc::sim {

std::ostream& operator<<(std::ostream& os, Time t) { return os << t.to_ms() << "ms"; }

Simulator::Simulator(std::uint64_t seed) : seed_(seed) {}

Rng Simulator::rng_stream(std::string_view name) const {
    return Rng{derive_seed(seed_, name)};
}

EventHandle Simulator::push(Time at, EventFn fn) {
    const std::uint64_t id = next_id_++;
    queue_.push_back(Event{at, next_seq_++, id, std::move(fn)});
    std::push_heap(queue_.begin(), queue_.end(), Later{});
    mark_live(id);
    return EventHandle{id};
}

void Simulator::mark_live(std::uint64_t id) {
    const std::size_t word = id >> 6;
    if (word >= live_bits_.size()) live_bits_.resize(word + 1, 0);
    live_bits_[word] |= std::uint64_t{1} << (id & 63);
}

void Simulator::clear_live(std::uint64_t id) {
    const std::size_t word = id >> 6;
    if (word < live_bits_.size()) live_bits_[word] &= ~(std::uint64_t{1} << (id & 63));
}

bool Simulator::is_live(std::uint64_t id) const {
    const std::size_t word = id >> 6;
    return word < live_bits_.size() &&
           (live_bits_[word] & (std::uint64_t{1} << (id & 63))) != 0;
}

EventHandle Simulator::schedule_every(Time period, std::function<void()> fn) {
    return schedule_every(period, period, std::move(fn));
}

EventHandle Simulator::schedule_every(Time period, Time phase, std::function<void()> fn) {
    if (period <= Time::zero())
        throw std::invalid_argument("schedule_every: period must be positive");
    // The chain is identified by its own id; each firing checks whether the
    // chain has been cancelled before running and rescheduling.
    const std::uint64_t chain_id = next_id_++;
    mark_live(chain_id);
    // Ownership: each queued thunk holds the shared_ptr; the closure itself
    // holds only a weak_ptr, so dropping the last queued copy frees the chain
    // (a self-capturing shared_ptr would cycle and leak). The chain body is
    // type-erased once here; each firing and re-arm captures only the 16-byte
    // shared_ptr, which lives inline in the event record — no per-tick heap.
    auto tick = std::make_shared<std::function<void()>>();
    std::weak_ptr<std::function<void()>> weak = tick;
    *tick = [this, chain_id, period, fn = std::move(fn), weak]() {
        // A cancelled chain retires its own tombstone here — the chain id is
        // virtual (never in the queue), so nothing else would purge it.
        if (is_cancelled(chain_id)) {
            retire_cancelled(chain_id);
            return;
        }
        fn();
        if (is_cancelled(chain_id)) {
            retire_cancelled(chain_id);
        } else if (auto self = weak.lock()) {
            push(now_ + period, EventFn([self] { (*self)(); }, &pool_));
        }
    };
    push(now_ + phase, EventFn([tick] { (*tick)(); }, &pool_));
    return EventHandle{chain_id};
}

void Simulator::cancel(EventHandle h) {
    if (!h.valid()) return;
    // Fired, drained, or already-retired handles can never pop again, so a
    // tombstone for them would live forever — refuse to record one.
    if (!is_live(h.id_)) return;
    const auto it = std::lower_bound(cancelled_.begin(), cancelled_.end(), h.id_);
    if (it == cancelled_.end() || *it != h.id_) cancelled_.insert(it, h.id_);
}

bool Simulator::is_cancelled(std::uint64_t id) const {
    return std::binary_search(cancelled_.begin(), cancelled_.end(), id);
}

void Simulator::retire_cancelled(std::uint64_t id) {
    const auto it = std::lower_bound(cancelled_.begin(), cancelled_.end(), id);
    if (it != cancelled_.end() && *it == id) cancelled_.erase(it);
    clear_live(id);
}

bool Simulator::step() {
    while (!queue_.empty()) {
        // pop_heap moves the min-(at, seq) event to the back; moving it out
        // of the vector transfers the EventFn without copying its capture.
        std::pop_heap(queue_.begin(), queue_.end(), Later{});
        Event ev = std::move(queue_.back());
        queue_.pop_back();
        if (is_cancelled(ev.id)) {
            // Retire the tombstone so cancelled_ stays small.
            retire_cancelled(ev.id);
            continue;
        }
        clear_live(ev.id);
        now_ = ev.at;
        ++executed_;
        ev.fn();
        return true;
    }
    return false;
}

std::size_t Simulator::run_until(Time until) {
    std::size_t n = 0;
    while (!queue_.empty() && queue_.front().at <= until) {
        if (step()) ++n;
    }
    // Advance the clock to the horizon so back-to-back run_until calls see
    // monotonic time even across empty stretches.
    if (now_ < until) now_ = until;
    return n;
}

std::size_t Simulator::run_all() {
    std::size_t n = 0;
    while (step()) ++n;
    return n;
}

std::size_t Simulator::pending_events() const { return queue_.size(); }

}  // namespace mvc::sim
