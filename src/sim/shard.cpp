#include "sim/shard.hpp"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <stdexcept>
#include <thread>
#include <utility>

namespace mvc::sim {

ShardSet::ShardSet(std::size_t shard_count, std::uint64_t seed, Time lookahead)
    : lookahead_(lookahead) {
    if (shard_count == 0) throw std::invalid_argument("ShardSet: need >= 1 shard");
    if (lookahead <= Time::zero())
        throw std::invalid_argument("ShardSet: lookahead must be positive");
    shards_.reserve(shard_count);
    for (std::size_t i = 0; i < shard_count; ++i)
        shards_.push_back(std::make_unique<Simulator>(seed));
    outboxes_.resize(shard_count);
    for (auto& row : outboxes_) row.resize(shard_count);
}

void ShardSet::set_lookahead(Time lookahead) {
    if (running_) throw std::logic_error("ShardSet: cannot change lookahead mid-run");
    if (lookahead <= Time::zero())
        throw std::invalid_argument("ShardSet: lookahead must be positive");
    lookahead_ = lookahead;
}

void ShardSet::set_epoch_observer(EpochObserver observer) {
    if (running_) throw std::logic_error("ShardSet: cannot change observer mid-run");
    epoch_observer_ = std::move(observer);
}

void ShardSet::post(std::size_t src, std::size_t dst, Time deliver_at,
                    std::function<void()> fn) {
    outboxes_.at(src).at(dst).push_back(Pending{deliver_at, std::move(fn)});
}

void ShardSet::exchange(Time boundary) {
    for (std::size_t src = 0; src < outboxes_.size(); ++src) {
        for (std::size_t dst = 0; dst < outboxes_[src].size(); ++dst) {
            std::vector<Pending>& box = outboxes_[src][dst];
            for (Pending& p : box) {
                Time at = p.at;
                if (at < boundary) {
                    // The sender under-estimated the cross-shard latency
                    // (lookahead violation): the destination already ran past
                    // the timestamp. Clamp to the boundary so the message is
                    // still delivered causally, and count it so benches and
                    // tests can assert the topology honours the lookahead.
                    ++violations_;
                    at = boundary;
                }
                ++cross_messages_;
                shards_[dst]->schedule_at(at, std::move(p.fn));
            }
            box.clear();
        }
    }
}

std::size_t ShardSet::total_executed() const {
    std::size_t total = 0;
    for (const auto& s : shards_) total += s->executed_events();
    return total;
}

std::size_t ShardSet::run_until(Time until, std::size_t threads) {
    const std::size_t before = total_executed();
    const std::size_t workers =
        std::max<std::size_t>(1, std::min(threads, shards_.size()));
    running_ = true;

    if (workers == 1) {
        while (now_ < until) {
            const Time boundary = std::min(now_ + lookahead_, until);
            for (auto& s : shards_) s->run_until(boundary);
            exchange(boundary);
            now_ = boundary;
            ++epochs_;
            if (epoch_observer_) epoch_observer_(epochs_, boundary);
        }
        running_ = false;
        return total_executed() - before;
    }

    // Parallel epochs: shard i is owned by worker i % workers for the whole
    // run, the barrier's completion step performs the (single-threaded)
    // outbox exchange, and barrier release publishes the next epoch boundary
    // to every worker. The schedule each shard executes is identical to the
    // serial path above.
    Time boundary = std::min(now_ + lookahead_, until);
    std::atomic<bool> done{now_ >= until};
    std::barrier sync(static_cast<std::ptrdiff_t>(workers), [&]() noexcept {
        exchange(boundary);
        now_ = boundary;
        ++epochs_;
        // Single-threaded window: every worker is parked in the barrier, so
        // the observer may touch any shard. It must not throw (noexcept
        // context — a throw here is std::terminate).
        if (epoch_observer_) epoch_observer_(epochs_, boundary);
        if (now_ >= until) {
            done.store(true, std::memory_order_relaxed);
        } else {
            boundary = std::min(now_ + lookahead_, until);
        }
    });

    auto worker = [&](std::size_t w) {
        while (!done.load(std::memory_order_relaxed)) {
            for (std::size_t i = w; i < shards_.size(); i += workers)
                shards_[i]->run_until(boundary);
            sync.arrive_and_wait();
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (std::size_t w = 1; w < workers; ++w) pool.emplace_back(worker, w);
    worker(0);
    for (auto& t : pool) t.join();

    running_ = false;
    return total_executed() - before;
}

}  // namespace mvc::sim
