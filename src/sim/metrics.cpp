#include "sim/metrics.hpp"

#include <algorithm>
#include <iterator>
#include <sstream>
#include <utility>

#include "sim/simulator.hpp"

namespace mvc::sim {

std::string MetricsRecorder::keyed(std::string_view name,
                                   std::initializer_list<Label> labels) {
    std::string key{name};
    if (labels.size() == 0) return key;
    // Canonicalize label order by key so the flattened name is call-site
    // independent. Label counts are tiny (<= 4 in practice); an insertion
    // sort over a small pointer array avoids any allocation.
    const Label* order[8];
    const std::size_t n = std::min<std::size_t>(labels.size(), std::size(order));
    std::size_t used = 0;
    for (const Label& l : labels) {
        if (used == n) break;
        std::size_t at = used;
        while (at > 0 && l.key < order[at - 1]->key) {
            order[at] = order[at - 1];
            --at;
        }
        order[at] = &l;
        ++used;
    }
    key.push_back('{');
    for (std::size_t i = 0; i < used; ++i) {
        if (i > 0) key.push_back(',');
        key.append(order[i]->key);
        key.push_back('=');
        key.append(order[i]->value);
    }
    key.push_back('}');
    return key;
}

void MetricsRecorder::merge(const MetricsRecorder& other) {
    for (const auto& [name, v] : other.counters_) count(name, v);
    for (const auto& [name, s] : other.series_) {
        auto it = series_.find(name);
        if (it == series_.end()) {
            it = series_.emplace(name, math::SampleSeries{}).first;
        }
        for (const double v : s.samples()) it->second.add(v);
    }
}

void MetricsRecorder::count(std::string_view name, std::uint64_t delta) {
    const auto it = counters_.find(name);
    if (it == counters_.end()) {
        counters_.emplace(std::string{name}, delta);
    } else {
        it->second += delta;
    }
}

void MetricsRecorder::count(std::string_view name, std::initializer_list<Label> labels,
                            std::uint64_t delta) {
    count(keyed(name, labels), delta);
}

void MetricsRecorder::sample(std::string_view name, double value) {
    auto it = series_.find(name);
    if (it == series_.end()) {
        it = series_.emplace(std::string{name}, math::SampleSeries{}).first;
    }
    it->second.add(value);
}

void MetricsRecorder::sample(std::string_view name, std::initializer_list<Label> labels,
                             double value) {
    sample(keyed(name, labels), value);
}

std::uint64_t MetricsRecorder::counter(std::string_view name) const {
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

std::uint64_t MetricsRecorder::counter(std::string_view name,
                                       std::initializer_list<Label> labels) const {
    return counter(keyed(name, labels));
}

const math::SampleSeries& MetricsRecorder::series(std::string_view name) const {
    static const math::SampleSeries empty;
    const auto it = series_.find(name);
    return it == series_.end() ? empty : it->second;
}

const math::SampleSeries& MetricsRecorder::series(
    std::string_view name, std::initializer_list<Label> labels) const {
    return series(keyed(name, labels));
}

bool MetricsRecorder::has_series(std::string_view name) const {
    return series_.contains(name);
}

void MetricsRecorder::reset() {
    counters_.clear();
    series_.clear();
}

std::string MetricsRecorder::to_string() const {
    std::ostringstream os;
    for (const auto& [name, v] : counters_) os << name << ": " << v << '\n';
    for (const auto& [name, s] : series_) {
        os << name << ": n=" << s.count() << " mean=" << s.mean()
           << " p50=" << s.median() << " p95=" << s.p95() << " p99=" << s.p99()
           << '\n';
    }
    return os.str();
}

common::Json MetricsRecorder::to_json() const {
    common::JsonObject counters;
    for (const auto& [name, v] : counters_) counters[name] = v;
    common::JsonObject series;
    for (const auto& [name, s] : series_) {
        common::JsonObject summary;
        summary["count"] = static_cast<std::uint64_t>(s.count());
        summary["mean"] = s.mean();
        summary["min"] = s.min();
        summary["max"] = s.max();
        summary["p50"] = s.median();
        summary["p95"] = s.p95();
        summary["p99"] = s.p99();
        series[name] = std::move(summary);
    }
    common::JsonObject root;
    root["counters"] = std::move(counters);
    root["series"] = std::move(series);
    return root;
}

ScopedTimer::ScopedTimer(MetricsRecorder& recorder, std::string name)
    : recorder_(recorder),
      name_(std::move(name)),
      wall_start_(std::chrono::steady_clock::now()) {}

ScopedTimer::ScopedTimer(MetricsRecorder& recorder, std::string name, const Simulator& sim)
    : recorder_(recorder), name_(std::move(name)), sim_(&sim), sim_start_(sim.now()) {}

ScopedTimer::~ScopedTimer() {
    if (sim_ != nullptr) {
        recorder_.sample(name_, (sim_->now() - sim_start_).to_ms());
    } else {
        const auto elapsed = std::chrono::steady_clock::now() - wall_start_;
        recorder_.sample(
            name_,
            std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(elapsed)
                .count());
    }
}

}  // namespace mvc::sim
