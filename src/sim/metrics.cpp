#include "sim/metrics.hpp"

#include <sstream>

namespace mvc::sim {

void MetricsRecorder::count(std::string_view name, std::uint64_t delta) {
    const auto it = counters_.find(name);
    if (it == counters_.end()) {
        counters_.emplace(std::string{name}, delta);
    } else {
        it->second += delta;
    }
}

void MetricsRecorder::sample(std::string_view name, double value) {
    auto it = series_.find(name);
    if (it == series_.end()) {
        it = series_.emplace(std::string{name}, math::SampleSeries{}).first;
    }
    it->second.add(value);
}

std::uint64_t MetricsRecorder::counter(std::string_view name) const {
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

const math::SampleSeries& MetricsRecorder::series(std::string_view name) const {
    static const math::SampleSeries empty;
    const auto it = series_.find(name);
    return it == series_.end() ? empty : it->second;
}

bool MetricsRecorder::has_series(std::string_view name) const {
    return series_.contains(name);
}

void MetricsRecorder::reset() {
    counters_.clear();
    series_.clear();
}

std::string MetricsRecorder::to_string() const {
    std::ostringstream os;
    for (const auto& [name, v] : counters_) os << name << ": " << v << '\n';
    for (const auto& [name, s] : series_) {
        os << name << ": n=" << s.count() << " mean=" << s.mean()
           << " p50=" << s.median() << " p95=" << s.p95() << " p99=" << s.p99()
           << '\n';
    }
    return os.str();
}

}  // namespace mvc::sim
