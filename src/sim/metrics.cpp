#include "sim/metrics.hpp"

#include <algorithm>
#include <iterator>
#include <sstream>
#include <utility>

#include "sim/simulator.hpp"

namespace mvc::sim {

std::string MetricsRecorder::keyed(std::string_view name,
                                   std::initializer_list<Label> labels) {
    std::string key{name};
    if (labels.size() == 0) return key;
    // Canonicalize label order by key so the flattened name is call-site
    // independent. Label counts are tiny (<= 4 in practice); an insertion
    // sort over a small pointer array avoids any allocation.
    const Label* order[8];
    const std::size_t n = std::min<std::size_t>(labels.size(), std::size(order));
    std::size_t used = 0;
    for (const Label& l : labels) {
        if (used == n) break;
        std::size_t at = used;
        while (at > 0 && l.key < order[at - 1]->key) {
            order[at] = order[at - 1];
            --at;
        }
        order[at] = &l;
        ++used;
    }
    key.push_back('{');
    for (std::size_t i = 0; i < used; ++i) {
        if (i > 0) key.push_back(',');
        key.append(order[i]->key);
        key.push_back('=');
        key.append(order[i]->value);
    }
    key.push_back('}');
    return key;
}

std::uint32_t MetricsRecorder::counter_slot(std::string_view name) {
    const auto it = counter_index_.find(name);
    if (it != counter_index_.end()) return it->second;
    const auto slot = static_cast<std::uint32_t>(counter_values_.size());
    counter_values_.push_back(0);
    counter_index_.emplace(std::string{name}, slot);
    return slot;
}

std::uint32_t MetricsRecorder::series_slot(std::string_view name) {
    const auto it = series_index_.find(name);
    if (it != series_index_.end()) return it->second;
    const auto slot = static_cast<std::uint32_t>(series_values_.size());
    series_values_.emplace_back();
    series_index_.emplace(std::string{name}, slot);
    return slot;
}

MetricId MetricsRecorder::counter_id(std::string_view name) {
    return MetricId{counter_slot(name)};
}

MetricId MetricsRecorder::counter_id(std::string_view name,
                                     std::initializer_list<Label> labels) {
    return MetricId{counter_slot(keyed(name, labels))};
}

MetricId MetricsRecorder::series_id(std::string_view name) {
    return MetricId{series_slot(name)};
}

MetricId MetricsRecorder::series_id(std::string_view name,
                                    std::initializer_list<Label> labels) {
    return MetricId{series_slot(keyed(name, labels))};
}

void MetricsRecorder::merge(const MetricsRecorder& other) {
    for (const auto& [name, slot] : other.counter_index_) {
        counter_values_[counter_slot(name)] += other.counter_values_[slot];
    }
    for (const auto& [name, slot] : other.series_index_) {
        math::SampleSeries& mine = series_values_[series_slot(name)];
        for (const double v : other.series_values_[slot].samples()) mine.add(v);
    }
}

void MetricsRecorder::count(std::string_view name, std::uint64_t delta) {
    counter_values_[counter_slot(name)] += delta;
}

void MetricsRecorder::count(std::string_view name, std::initializer_list<Label> labels,
                            std::uint64_t delta) {
    count(keyed(name, labels), delta);
}

void MetricsRecorder::sample(std::string_view name, double value) {
    series_values_[series_slot(name)].add(value);
}

void MetricsRecorder::sample(std::string_view name, std::initializer_list<Label> labels,
                             double value) {
    sample(keyed(name, labels), value);
}

std::uint64_t MetricsRecorder::counter(std::string_view name) const {
    const auto it = counter_index_.find(name);
    return it == counter_index_.end() ? 0 : counter_values_[it->second];
}

std::uint64_t MetricsRecorder::counter(std::string_view name,
                                       std::initializer_list<Label> labels) const {
    return counter(keyed(name, labels));
}

const math::SampleSeries& MetricsRecorder::series(std::string_view name) const {
    static const math::SampleSeries empty;
    const auto it = series_index_.find(name);
    return it == series_index_.end() ? empty : series_values_[it->second];
}

const math::SampleSeries& MetricsRecorder::series(
    std::string_view name, std::initializer_list<Label> labels) const {
    return series(keyed(name, labels));
}

bool MetricsRecorder::has_series(std::string_view name) const {
    return series_index_.contains(name);
}

std::map<std::string, std::uint64_t, std::less<>> MetricsRecorder::counters() const {
    std::map<std::string, std::uint64_t, std::less<>> out;
    for (const auto& [name, slot] : counter_index_) {
        out.emplace_hint(out.end(), name, counter_values_[slot]);
    }
    return out;
}

std::vector<std::pair<std::string_view, const math::SampleSeries*>>
MetricsRecorder::all_series() const {
    std::vector<std::pair<std::string_view, const math::SampleSeries*>> out;
    out.reserve(series_index_.size());
    for (const auto& [name, slot] : series_index_) {
        out.emplace_back(name, &series_values_[slot]);
    }
    return out;
}

void MetricsRecorder::reset() {
    counter_index_.clear();
    counter_values_.clear();
    series_index_.clear();
    series_values_.clear();
}

std::string MetricsRecorder::to_string() const {
    std::ostringstream os;
    for (const auto& [name, slot] : counter_index_) {
        os << name << ": " << counter_values_[slot] << '\n';
    }
    for (const auto& [name, slot] : series_index_) {
        const math::SampleSeries& s = series_values_[slot];
        os << name << ": n=" << s.count() << " mean=" << s.mean()
           << " p50=" << s.median() << " p95=" << s.p95() << " p99=" << s.p99()
           << '\n';
    }
    return os.str();
}

common::Json MetricsRecorder::to_json() const {
    common::JsonObject counters;
    for (const auto& [name, slot] : counter_index_) counters[name] = counter_values_[slot];
    common::JsonObject series;
    for (const auto& [name, slot] : series_index_) {
        const math::SampleSeries& s = series_values_[slot];
        common::JsonObject summary;
        summary["count"] = static_cast<std::uint64_t>(s.count());
        summary["mean"] = s.mean();
        summary["min"] = s.min();
        summary["max"] = s.max();
        summary["p50"] = s.median();
        summary["p95"] = s.p95();
        summary["p99"] = s.p99();
        series[name] = std::move(summary);
    }
    common::JsonObject root;
    root["counters"] = std::move(counters);
    root["series"] = std::move(series);
    return root;
}

ScopedTimer::ScopedTimer(MetricsRecorder& recorder, std::string name)
    : recorder_(recorder),
      name_(std::move(name)),
      wall_start_(std::chrono::steady_clock::now()) {}

ScopedTimer::ScopedTimer(MetricsRecorder& recorder, std::string name, const Simulator& sim)
    : recorder_(recorder), name_(std::move(name)), sim_(&sim), sim_start_(sim.now()) {}

ScopedTimer::~ScopedTimer() {
    if (sim_ != nullptr) {
        recorder_.sample(name_, (sim_->now() - sim_start_).to_ms());
    } else {
        const auto elapsed = std::chrono::steady_clock::now() - wall_start_;
        recorder_.sample(
            name_,
            std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(elapsed)
                .count());
    }
}

}  // namespace mvc::sim
