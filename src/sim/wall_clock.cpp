#include "sim/wall_clock.hpp"

#include <stdexcept>
#include <utility>

namespace mvc::sim {

WallClock::WallClock(std::uint64_t seed)
    : seed_(seed), epoch_(std::chrono::steady_clock::now()) {}

Time WallClock::now() const {
    const auto elapsed = std::chrono::steady_clock::now() - epoch_;
    return Time::ns(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
}

Rng WallClock::rng_stream(std::string_view name) const {
    return Rng{derive_seed(seed_, name)};
}

EventHandle WallClock::arm(Time at, Timer t) {
    const std::uint64_t id = t.id;
    by_id_[id] = timers_.emplace(at, std::move(t));
    return make_handle(id);
}

EventHandle WallClock::schedule_at_erased(Time at, EventFn fn) {
    // Deadlines in the past are legal here: wall time advanced between the
    // caller computing `at` and this call. The timer fires on the next
    // run_due().
    Timer t;
    t.id = next_id_++;
    t.seq = next_seq_++;
    t.once = std::move(fn);
    return arm(at, std::move(t));
}

EventHandle WallClock::schedule_every(Time period, std::function<void()> fn) {
    return schedule_every(period, period, std::move(fn));
}

EventHandle WallClock::schedule_every(Time period, Time phase,
                                      std::function<void()> fn) {
    if (period <= Time::zero())
        throw std::invalid_argument("schedule_every: period must be positive");
    Timer t;
    t.id = next_id_++;
    t.seq = next_seq_++;
    t.every = std::move(fn);
    t.period = period;
    return arm(now() + phase, std::move(t));
}

void WallClock::cancel(EventHandle h) {
    if (!h.valid()) return;
    const std::uint64_t id = handle_id(h);
    if (id == firing_id_) {
        firing_cancelled_ = true;
        return;
    }
    const auto it = by_id_.find(id);
    if (it == by_id_.end()) return;
    timers_.erase(it->second);
    by_id_.erase(it);
}

std::optional<Time> WallClock::next_deadline() const {
    if (timers_.empty()) return std::nullopt;
    return timers_.begin()->first;
}

std::size_t WallClock::run_due() {
    std::size_t ran = 0;
    while (!timers_.empty()) {
        // Among equal deadlines, fire in scheduling order.
        auto it = timers_.begin();
        const Time due = it->first;
        if (due > now()) break;
        auto range = timers_.equal_range(due);
        for (auto cand = range.first; cand != range.second; ++cand) {
            if (cand->second.seq < it->second.seq) it = cand;
        }
        Timer t = std::move(it->second);
        by_id_.erase(t.id);
        timers_.erase(it);
        ++fired_;
        ++ran;
        firing_id_ = t.id;
        firing_cancelled_ = false;
        if (t.every) {
            t.every();
        } else if (t.once) {
            t.once();
        }
        const bool cancelled = firing_cancelled_;
        firing_id_ = 0;
        firing_cancelled_ = false;
        if (t.every && !cancelled) {
            // Re-arm relative to the original deadline while the loop keeps
            // up; skip ahead (no catch-up burst) when it fell behind.
            Time next = due + t.period;
            const Time n = now();
            if (next <= n) next = n + t.period;
            t.seq = next_seq_++;
            arm(next, std::move(t));
        }
    }
    return ran;
}

}  // namespace mvc::sim
