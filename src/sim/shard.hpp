#pragma once
// Sharded parallel simulation engine: N independent Simulator event loops
// ("shards") advanced in lock-step epochs of a fixed conservative lookahead,
// exchanging timestamped cross-shard messages only at epoch boundaries.
//
// The synchronization protocol is classic conservative PDES: during an epoch
// [t, t+L) every shard executes only its own events and may *post* work into
// another shard, timestamped at delivery time. Because any cross-shard
// interaction carries at least L of latency (L = the minimum cross-shard
// link delay), a message produced inside the epoch can never be due before
// the epoch ends, so shards never need to roll back. At the barrier the
// outboxes are drained into the destination shards' event queues in a fixed
// order (source-shard index, then post order), which makes the merged event
// streams — and therefore every metric — byte-identical regardless of how
// many worker threads executed the epoch.
//
// Threads are purely an execution vehicle: shard state is only ever touched
// by the one thread running that shard within an epoch, and the exchange
// runs single-threaded inside the barrier, so the model code needs no locks.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace mvc::sim {

class ShardSet {
public:
    /// `lookahead` is the epoch length; every cross-shard post must be
    /// timestamped at least one epoch ahead (see post()). All shards share
    /// `seed`; they stay uncorrelated through named rng streams.
    ShardSet(std::size_t shard_count, std::uint64_t seed, Time lookahead);

    ShardSet(const ShardSet&) = delete;
    ShardSet& operator=(const ShardSet&) = delete;

    [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
    [[nodiscard]] Simulator& shard(std::size_t i) { return *shards_[i]; }
    [[nodiscard]] const Simulator& shard(std::size_t i) const { return *shards_[i]; }

    [[nodiscard]] Time lookahead() const { return lookahead_; }
    /// Tighten/relax the epoch length. Only legal between runs; the caller
    /// (e.g. core::ShardedWorld) derives it from the minimum cross-shard
    /// link latency before the first run_until.
    void set_lookahead(Time lookahead);

    /// Queue `fn` to run in shard `dst` at absolute time `deliver_at`. Must
    /// be called either during epoch execution from the thread currently
    /// running shard `src`, or from the driving thread before/between runs.
    /// A conservative engine requires `deliver_at` to be at or after the end
    /// of the epoch in which the post is exchanged; earlier timestamps are
    /// counted as lookahead violations and clamped to the boundary so the
    /// run stays causal (and tests can assert the count is zero).
    void post(std::size_t src, std::size_t dst, Time deliver_at,
              std::function<void()> fn);

    /// Advance every shard to `until` in lookahead-sized epochs, using up to
    /// `threads` worker threads (clamped to the shard count; <=1 runs the
    /// identical schedule inline). Returns the number of events executed
    /// across all shards during this call. Results are independent of
    /// `threads` by construction.
    std::size_t run_until(Time until, std::size_t threads = 1);

    /// Engine clock: end of the last completed epoch.
    [[nodiscard]] Time now() const { return now_; }

    /// Observe epoch completion. Fires once per epoch, single-threaded,
    /// after the outbox exchange (so every shard sits exactly at `boundary`
    /// and no worker is running), in both the serial and the parallel path —
    /// the same epoch sequence regardless of thread count. On the parallel
    /// path the observer runs inside the barrier's noexcept completion step:
    /// it MUST NOT throw (session recording drains per-shard trace buffers
    /// here; it catches its own I/O errors). Pass nullptr to clear.
    using EpochObserver = std::function<void(std::uint64_t epoch, Time boundary)>;
    void set_epoch_observer(EpochObserver observer);

    [[nodiscard]] std::uint64_t epochs_run() const { return epochs_; }
    [[nodiscard]] std::uint64_t cross_messages() const { return cross_messages_; }
    [[nodiscard]] std::uint64_t lookahead_violations() const { return violations_; }
    /// Cumulative events executed across all shards.
    [[nodiscard]] std::size_t total_executed() const;

private:
    // Cross-shard messages deliberately travel as std::function, NOT EventFn:
    // an EventFn may hold a block from the source shard's single-threaded
    // EventPool, which must never be released on another shard's thread. A
    // std::function owns its state via the global allocator, and at exchange
    // time it is re-wrapped into the destination shard's EventFn, where its
    // 32 bytes live inline — so pooled blocks never cross threads.
    struct Pending {
        Time at;
        std::function<void()> fn;
    };

    Time lookahead_;
    Time now_{};
    std::vector<std::unique_ptr<Simulator>> shards_;
    /// outboxes_[src][dst]: written only by the thread running shard `src`
    /// during an epoch; drained single-threaded at the barrier.
    std::vector<std::vector<std::vector<Pending>>> outboxes_;
    std::uint64_t epochs_{0};
    std::uint64_t cross_messages_{0};
    std::uint64_t violations_{0};
    bool running_{false};
    EpochObserver epoch_observer_;

    /// Drain all outboxes into destination shard queues; `boundary` is the
    /// end of the epoch just executed (the earliest legal delivery time).
    void exchange(Time boundary);
};

}  // namespace mvc::sim
