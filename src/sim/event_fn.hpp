#pragma once
// Allocation-free event callbacks for the simulator hot path.
//
// EventFn is a move-only type-erased callable with a 64-byte small-buffer:
// the lambdas the model schedules (a few pointers, a Packet, a shared_ptr)
// construct in place inside the event record, so the steady-state loop never
// touches the heap. Captures that do not fit fall back to a fixed-size block
// from the owning Simulator's EventPool free list — recycled on destruction,
// so even oversized events stop allocating once the pool is warm. Captures
// larger than a pool block (rare; cold paths only) use plain operator new.
//
// Thread-safety: an EventPool is single-threaded by design. Pooled blocks
// must be released to the pool that issued them, so an EventFn carrying a
// pooled block must never migrate to another Simulator/thread. Cross-shard
// messages in sim::ShardSet therefore travel as std::function (which owns
// its state via the global allocator) and are re-wrapped into the
// destination shard's EventFn at the exchange barrier — a 32-byte
// std::function always fits the inline buffer.

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace mvc::sim {

/// Free list of fixed-size callback blocks for one Simulator. Blocks are
/// kBlockBytes each (header + capture payload); release() pushes onto the
/// list, acquire() pops — O(1), no locks, no system allocator after warmup.
class EventPool {
public:
    /// Total block size. Large enough for every capture the model schedules
    /// today (the biggest is a link-delivery lambda at ~120 bytes); anything
    /// bigger bypasses the pool.
    static constexpr std::size_t kBlockBytes = 192;

    EventPool() = default;
    EventPool(const EventPool&) = delete;
    EventPool& operator=(const EventPool&) = delete;

    ~EventPool() {
        while (free_ != nullptr) {
            Node* next = free_->next;
            ::operator delete(static_cast<void*>(free_));
            free_ = next;
        }
    }

    [[nodiscard]] void* acquire() {
        if (free_ != nullptr) {
            Node* n = free_;
            free_ = n->next;
            ++reused_;
            return n;
        }
        ++fresh_;
        return ::operator new(kBlockBytes);
    }

    void release(void* block) noexcept {
        Node* n = ::new (block) Node{free_};
        free_ = n;
    }

    /// Blocks obtained from the system allocator (pool misses).
    [[nodiscard]] std::uint64_t fresh_blocks() const { return fresh_; }
    /// Blocks served from the free list (pool hits).
    [[nodiscard]] std::uint64_t reused_blocks() const { return reused_; }

private:
    struct Node {
        Node* next;
    };
    Node* free_{nullptr};
    std::uint64_t fresh_{0};
    std::uint64_t reused_{0};
};

/// Move-only callable with small-buffer optimization and pool fallback.
/// See the file comment for the storage strategy.
class EventFn {
    template <class F>
    using decayed = std::remove_cvref_t<F>;

public:
    /// Inline capture capacity. Covers every steady-state lambda in the
    /// model (worst common case: a this-pointer plus a small struct plus a
    /// shared_ptr payload handle).
    static constexpr std::size_t kInlineBytes = 64;

    EventFn() = default;

    template <class F>
        requires(!std::is_same_v<decayed<F>, EventFn> &&
                 std::is_invocable_r_v<void, decayed<F>&>)
    EventFn(F&& f) : EventFn(std::forward<F>(f), nullptr) {}  // NOLINT(google-explicit-constructor)

    /// Construct with a pool for heap-fallback captures. `pool` may be null.
    template <class F>
        requires(!std::is_same_v<decayed<F>, EventFn> &&
                 std::is_invocable_r_v<void, decayed<F>&>)
    EventFn(F&& f, EventPool* pool) {
        using Fn = decayed<F>;
        static_assert(alignof(Fn) <= alignof(std::max_align_t),
                      "over-aligned captures are not supported");
        if constexpr (sizeof(Fn) <= kInlineBytes &&
                      std::is_nothrow_move_constructible_v<Fn>) {
            ::new (static_cast<void*>(storage_.inline_buf)) Fn(std::forward<F>(f));
            ops_ = &InlineOps<Fn>::ops;
        } else {
            constexpr std::size_t total = sizeof(Header) + sizeof(Fn);
            void* block = nullptr;
            EventPool* owner = nullptr;
            if (pool != nullptr && total <= EventPool::kBlockBytes) {
                block = pool->acquire();
                owner = pool;
            } else {
                block = ::operator new(total);
            }
            auto* header = ::new (block) Header{owner};
            ::new (payload_of(header)) Fn(std::forward<F>(f));
            storage_.heap = header;
            ops_ = &HeapOps<Fn>::ops;
        }
    }

    EventFn(EventFn&& other) noexcept : ops_(other.ops_) {
        if (ops_ != nullptr) ops_->relocate(other.storage_, storage_);
        other.ops_ = nullptr;
    }

    EventFn& operator=(EventFn&& other) noexcept {
        if (this != &other) {
            if (ops_ != nullptr) ops_->destroy(storage_);
            ops_ = other.ops_;
            if (ops_ != nullptr) ops_->relocate(other.storage_, storage_);
            other.ops_ = nullptr;
        }
        return *this;
    }

    EventFn(const EventFn&) = delete;
    EventFn& operator=(const EventFn&) = delete;

    ~EventFn() {
        if (ops_ != nullptr) ops_->destroy(storage_);
    }

    void operator()() { ops_->invoke(storage_); }

    explicit operator bool() const { return ops_ != nullptr; }

private:
    /// Heap blocks lead with the pool that owns them (null = operator new).
    /// Padded to max alignment so the capture payload right after is aligned.
    struct alignas(std::max_align_t) Header {
        EventPool* pool;
    };

    union Storage {
        alignas(std::max_align_t) std::byte inline_buf[kInlineBytes];
        Header* heap;
    };

    struct Ops {
        void (*invoke)(Storage&);
        void (*relocate)(Storage& src, Storage& dst) noexcept;
        void (*destroy)(Storage&) noexcept;
    };

    static void* payload_of(Header* h) { return h + 1; }

    template <class Fn>
    struct InlineOps {
        static Fn& self(Storage& s) { return *std::launder(reinterpret_cast<Fn*>(s.inline_buf)); }
        static void invoke(Storage& s) { self(s)(); }
        static void relocate(Storage& src, Storage& dst) noexcept {
            ::new (static_cast<void*>(dst.inline_buf)) Fn(std::move(self(src)));
            self(src).~Fn();
        }
        static void destroy(Storage& s) noexcept { self(s).~Fn(); }
        static constexpr Ops ops{&invoke, &relocate, &destroy};
    };

    template <class Fn>
    struct HeapOps {
        static Fn& self(Storage& s) {
            return *std::launder(static_cast<Fn*>(payload_of(s.heap)));
        }
        static void invoke(Storage& s) { self(s)(); }
        static void relocate(Storage& src, Storage& dst) noexcept { dst.heap = src.heap; }
        static void destroy(Storage& s) noexcept {
            Header* header = s.heap;
            self(s).~Fn();
            EventPool* pool = header->pool;
            header->~Header();
            if (pool != nullptr) {
                pool->release(header);
            } else {
                ::operator delete(static_cast<void*>(header));
            }
        }
        static constexpr Ops ops{&invoke, &relocate, &destroy};
    };

    const Ops* ops_{nullptr};
    Storage storage_;
};

}  // namespace mvc::sim
