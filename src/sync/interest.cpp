#include "sync/interest.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mvc::sync {

InterestGrid::InterestGrid(double cell_size) : cell_size_(cell_size) {
    if (cell_size <= 0.0) throw std::invalid_argument("InterestGrid: cell size > 0");
}

InterestGrid::CellKey InterestGrid::key_for(const math::Vec3& p) const {
    return {static_cast<std::int32_t>(std::floor(p.x / cell_size_)),
            static_cast<std::int32_t>(std::floor(p.y / cell_size_)),
            static_cast<std::int32_t>(std::floor(p.z / cell_size_))};
}

void InterestGrid::detach(EntityId entity, const math::Vec3& old_pos) {
    auto cell = cells_.find(key_for(old_pos));
    if (cell != cells_.end()) {
        std::erase(cell->second, entity);
        if (cell->second.empty()) cells_.erase(cell);
    }
}

void InterestGrid::update(EntityId entity, const math::Vec3& position) {
    const auto it = positions_.find(entity);
    if (it != positions_.end()) {
        const CellKey old_key = key_for(it->second);
        const CellKey new_key = key_for(position);
        if (!(old_key == new_key)) {
            detach(entity, it->second);
            cells_[new_key].push_back(entity);
        }
        it->second = position;
        return;
    }
    positions_.emplace(entity, position);
    cells_[key_for(position)].push_back(entity);
}

void InterestGrid::remove(EntityId entity) {
    const auto it = positions_.find(entity);
    if (it == positions_.end()) return;
    detach(entity, it->second);
    positions_.erase(it);
}

const math::Vec3* InterestGrid::position_of(EntityId entity) const {
    const auto it = positions_.find(entity);
    return it == positions_.end() ? nullptr : &it->second;
}

std::vector<EntityId> InterestGrid::query_radius(const math::Vec3& center,
                                                 double radius) const {
    std::vector<EntityId> out;
    const double r2 = radius * radius;
    const CellKey lo = key_for(center - math::Vec3{radius, radius, radius});
    const CellKey hi = key_for(center + math::Vec3{radius, radius, radius});
    for (std::int32_t x = lo.x; x <= hi.x; ++x) {
        for (std::int32_t y = lo.y; y <= hi.y; ++y) {
            for (std::int32_t z = lo.z; z <= hi.z; ++z) {
                const auto cell = cells_.find(CellKey{x, y, z});
                if (cell == cells_.end()) continue;
                for (const EntityId e : cell->second) {
                    const math::Vec3& p = positions_.at(e);
                    if ((p - center).norm_sq() <= r2) out.push_back(e);
                }
            }
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<EntityId> InterestGrid::query_nearest(const math::Vec3& center, double radius,
                                                  std::size_t max_results) const {
    std::vector<EntityId> in_range = query_radius(center, radius);
    std::sort(in_range.begin(), in_range.end(), [&](EntityId a, EntityId b) {
        const double da = (positions_.at(a) - center).norm_sq();
        const double db = (positions_.at(b) - center).norm_sq();
        if (da != db) return da < db;
        return a < b;
    });
    if (in_range.size() > max_results) in_range.resize(max_results);
    return in_range;
}

InterestPolicy::InterestPolicy() {
    tiers_ = {
        {5.0, 60.0, avatar::LodLevel::High},
        {12.0, 30.0, avatar::LodLevel::Medium},
        {30.0, 15.0, avatar::LodLevel::Low},
        {80.0, 5.0, avatar::LodLevel::Billboard},
    };
}

InterestPolicy::InterestPolicy(std::vector<InterestTier> tiers) : tiers_(std::move(tiers)) {
    if (tiers_.empty()) throw std::invalid_argument("InterestPolicy: need at least one tier");
    for (std::size_t i = 1; i < tiers_.size(); ++i) {
        if (tiers_[i].max_distance_m <= tiers_[i - 1].max_distance_m)
            throw std::invalid_argument("InterestPolicy: tiers must be distance-ascending");
    }
}

const InterestTier* InterestPolicy::tier_for(double distance_m) const {
    for (const auto& t : tiers_) {
        if (distance_m <= t.max_distance_m) return &t;
    }
    return nullptr;
}

}  // namespace mvc::sync
